#include "src/support/event_hook.h"

namespace grapple {
namespace evt {

namespace internal {
std::atomic<Sink> g_sink{nullptr};
std::atomic<Observer> g_observer{nullptr};
}  // namespace internal

namespace {
std::atomic<FlushHook> g_flush_hook{nullptr};
}  // namespace

void SetSink(Sink sink) {
  internal::g_sink.store(sink, std::memory_order_release);
}

void SetObserver(Observer observer) {
  internal::g_observer.store(observer, std::memory_order_release);
}

void SetCrashFlushHook(FlushHook hook) {
  g_flush_hook.store(hook, std::memory_order_release);
}

void RunCrashFlushHook() {
  FlushHook hook = g_flush_hook.load(std::memory_order_acquire);
  if (hook != nullptr) {
    hook();
  }
}

}  // namespace evt
}  // namespace grapple
