#include "src/support/fault_injection.h"

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>

#include "src/support/event_hook.h"
#include "src/support/logging.h"

namespace grapple {
namespace fault {

namespace internal {
std::atomic<bool> g_enabled{false};
}  // namespace internal

namespace {

enum class ClauseKind : uint8_t { kCrash, kFail, kShortWrite, kFlip, kTorn };

struct Clause {
  ClauseKind kind;
  // kCrash: the crash-point name; otherwise unused.
  std::string point;
  Op op = Op::kWrite;
  uint64_t ordinal = 1;      // 1-based attempt/hit number
  bool from_ordinal_on = false;  // `#N+`: every attempt from the Nth
  uint64_t arg = 0;          // shortwrite byte count / flip byte index
  std::string path_substr;   // empty = match any path
  std::atomic<uint64_t> hits{0};

  Clause() = default;
  Clause(const Clause& other)
      : kind(other.kind),
        point(other.point),
        op(other.op),
        ordinal(other.ordinal),
        from_ordinal_on(other.from_ordinal_on),
        arg(other.arg),
        path_substr(other.path_substr),
        hits(other.hits.load(std::memory_order_relaxed)) {}
};

struct Plan {
  std::vector<Clause> clauses;
};

std::mutex g_mutex;
Plan* g_plan = nullptr;  // guarded by g_mutex, as are all clause counters
std::atomic<uint64_t> g_injected{0};

bool ParseOp(const std::string& s, Op* op) {
  if (s == "read") {
    *op = Op::kRead;
  } else if (s == "write") {
    *op = Op::kWrite;
  } else if (s == "fsync") {
    *op = Op::kFsync;
  } else {
    return false;
  }
  return true;
}

bool ParseUint(const std::string& s, uint64_t* out) {
  if (s.empty()) {
    return false;
  }
  uint64_t value = 0;
  for (char c : s) {
    if (c < '0' || c > '9') {
      return false;
    }
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  *out = value;
  return true;
}

// Splits off a trailing `:path=<substr>` filter, if present.
void TakePathFilter(std::string* body, std::string* path_substr) {
  size_t at = body->rfind(":path=");
  if (at != std::string::npos) {
    *path_substr = body->substr(at + 6);
    body->resize(at);
  }
}

bool ParseClause(const std::string& text, Clause* clause, std::string* error) {
  auto fail = [&](const std::string& why) {
    if (error != nullptr) {
      *error = "bad fault clause '" + text + "': " + why;
    }
    return false;
  };
  size_t at = text.find('@');
  if (at == std::string::npos) {
    return fail("missing '@'");
  }
  std::string verb = text.substr(0, at);
  std::string body = text.substr(at + 1);
  TakePathFilter(&body, &clause->path_substr);

  // body is now <target>[#N[+]][:arg]
  std::string target = body;
  std::string ordinal_text;
  std::string arg_text;
  size_t hash = body.find('#');
  if (hash != std::string::npos) {
    target = body.substr(0, hash);
    ordinal_text = body.substr(hash + 1);
    size_t colon = ordinal_text.find(':');
    if (colon != std::string::npos) {
      arg_text = ordinal_text.substr(colon + 1);
      ordinal_text.resize(colon);
    }
    if (!ordinal_text.empty() && ordinal_text.back() == '+') {
      clause->from_ordinal_on = true;
      ordinal_text.pop_back();
    }
    if (!ParseUint(ordinal_text, &clause->ordinal) || clause->ordinal == 0) {
      return fail("ordinal must be a positive integer");
    }
  }

  if (verb == "crash") {
    clause->kind = ClauseKind::kCrash;
    clause->point = target;
    bool known = false;
    for (const std::string& p : AllCrashPoints()) {
      known = known || p == target;
    }
    if (!known) {
      return fail("unknown crash point '" + target + "'");
    }
    return true;
  }
  if (!ParseOp(target, &clause->op)) {
    return fail("op must be read|write|fsync");
  }
  if (verb == "fail") {
    clause->kind = ClauseKind::kFail;
    return true;
  }
  if (verb == "shortwrite") {
    clause->kind = ClauseKind::kShortWrite;
    if (clause->op != Op::kWrite || !ParseUint(arg_text, &clause->arg)) {
      return fail("expected shortwrite@write#N:K");
    }
    return true;
  }
  if (verb == "flip") {
    clause->kind = ClauseKind::kFlip;
    if (clause->op != Op::kRead || !ParseUint(arg_text, &clause->arg)) {
      return fail("expected flip@read#N:B");
    }
    return true;
  }
  if (verb == "torn") {
    clause->kind = ClauseKind::kTorn;
    if (clause->op != Op::kWrite) {
      return fail("torn applies to write only");
    }
    return true;
  }
  return fail("unknown verb '" + verb + "'");
}

const char* OpName(Op op) {
  switch (op) {
    case Op::kRead:
      return "read";
    case Op::kWrite:
      return "write";
    case Op::kFsync:
      return "fsync";
  }
  return "io";
}

// True when this attempt/hit (1-based `count`) matches the clause ordinal.
bool OrdinalMatches(const Clause& clause, uint64_t count) {
  return clause.from_ordinal_on ? count >= clause.ordinal : count == clause.ordinal;
}

// Applies GRAPPLE_FAULTS exactly once, before main() runs, so the plan is in
// place before any engine thread starts and Enabled() never races a writer.
const bool g_env_applied = [] {
  const char* spec = std::getenv("GRAPPLE_FAULTS");
  if (spec != nullptr && spec[0] != '\0') {
    std::string error;
    if (!Configure(spec, &error)) {
      std::fprintf(stderr, "GRAPPLE_FAULTS: %s\n", error.c_str());
      std::abort();
    }
  }
  return true;
}();

}  // namespace

Action OnIo(Op op, const std::string& path) {
  Action action;
  std::lock_guard<std::mutex> lock(g_mutex);
  if (g_plan == nullptr) {
    return action;
  }
  for (Clause& clause : g_plan->clauses) {
    if (clause.kind == ClauseKind::kCrash || clause.op != op) {
      continue;
    }
    if (!clause.path_substr.empty() && path.find(clause.path_substr) == std::string::npos) {
      continue;
    }
    uint64_t count = clause.hits.fetch_add(1, std::memory_order_relaxed) + 1;
    if (!OrdinalMatches(clause, count)) {
      continue;
    }
    switch (clause.kind) {
      case ClauseKind::kFail:
        action.kind = Action::Kind::kFail;
        break;
      case ClauseKind::kShortWrite:
        action.kind = Action::Kind::kShortWrite;
        action.arg = clause.arg;
        break;
      case ClauseKind::kFlip:
        action.kind = Action::Kind::kFlipBit;
        action.arg = clause.arg;
        break;
      case ClauseKind::kTorn:
        action.kind = Action::Kind::kTorn;
        break;
      case ClauseKind::kCrash:
        break;
    }
    if (action.kind != Action::Kind::kNone) {
      g_injected.fetch_add(1, std::memory_order_relaxed);
      evt::Emit(evt::kFaultInjected, static_cast<uint64_t>(action.kind),
                reinterpret_cast<uint64_t>(OpName(op)));
      return action;  // first matching clause wins
    }
  }
  return action;
}

void CrashPoint(const char* name) {
  if (!Enabled()) {
    return;
  }
  std::lock_guard<std::mutex> lock(g_mutex);
  if (g_plan == nullptr) {
    return;
  }
  for (Clause& clause : g_plan->clauses) {
    if (clause.kind != ClauseKind::kCrash || clause.point != name) {
      continue;
    }
    uint64_t count = clause.hits.fetch_add(1, std::memory_order_relaxed) + 1;
    if (OrdinalMatches(clause, count)) {
      g_injected.fetch_add(1, std::memory_order_relaxed);
      // The flight recorder is the one survivor of the simulated kill: record
      // the injected fault and spill the rings to flightrec.bin. Post-mortem
      // state the crash leaves behind, not cooperative shutdown.
      evt::Emit(evt::kFaultInjected, 0, reinterpret_cast<uint64_t>(clause.point.c_str()));
      evt::Emit(evt::kCrashExit, 0, reinterpret_cast<uint64_t>(clause.point.c_str()));
      evt::RunCrashFlushHook();
      // Simulated kill -9: no stack unwinding, no atexit, no other flushing —
      // exactly the state a real SIGKILL leaves behind.
      _exit(kCrashExitCode);
    }
  }
}

const std::vector<std::string>& AllCrashPoints() {
  static const std::vector<std::string> kPoints = {
      "finalize_done",       // base edges expanded, store initialized
      "run_pair_done",       // one partition pair fully processed
      "ckpt_begin",          // checkpoint started, store not yet quiesced
      "ckpt_temp_written",   // manifest temp file written + fsynced
      "ckpt_published",      // manifest renamed into place
      "ckpt_gc_done",        // retired partition files deleted
      "run_complete",        // fixpoint reached, final manifest published
  };
  return kPoints;
}

uint64_t InjectedCount() {
  return g_injected.load(std::memory_order_relaxed);
}

bool Configure(const std::string& spec, std::string* error) {
  auto plan = std::make_unique<Plan>();
  size_t start = 0;
  while (start <= spec.size()) {
    size_t comma = spec.find(',', start);
    std::string text =
        comma == std::string::npos ? spec.substr(start) : spec.substr(start, comma - start);
    if (!text.empty()) {
      Clause clause;
      if (!ParseClause(text, &clause, error)) {
        return false;
      }
      plan->clauses.push_back(clause);
    }
    if (comma == std::string::npos) {
      break;
    }
    start = comma + 1;
  }
  std::lock_guard<std::mutex> lock(g_mutex);
  delete g_plan;
  g_plan = plan->clauses.empty() ? nullptr : plan.release();
  internal::g_enabled.store(g_plan != nullptr, std::memory_order_relaxed);
  return true;
}

void Reset() {
  std::lock_guard<std::mutex> lock(g_mutex);
  delete g_plan;
  g_plan = nullptr;
  internal::g_enabled.store(false, std::memory_order_relaxed);
  g_injected.store(0, std::memory_order_relaxed);
}

}  // namespace fault
}  // namespace grapple
