#include "src/support/socket_server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <cstring>

namespace grapple {

namespace {

const char* StatusText(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 429:
      return "Too Many Requests";
    case 500:
      return "Internal Server Error";
    case 503:
      return "Service Unavailable";
    default:
      return "Unknown";
  }
}

void CloseFd(int* fd) {
  if (*fd >= 0) {
    ::close(*fd);
    *fd = -1;
  }
}

// Writes the full buffer, tolerating EINTR and short writes. Scrape clients
// that hang up early are not an error worth surfacing.
void WriteFully(int fd, const std::string& data) {
  size_t done = 0;
  while (done < data.size()) {
    ssize_t n = ::write(fd, data.data() + done, data.size() - done);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return;
    }
    done += static_cast<size_t>(n);
  }
}

// Case-insensitive Content-Length lookup over the raw header block.
// Returns SIZE_MAX when absent or malformed.
size_t ParseContentLength(const std::string& headers) {
  size_t pos = 0;
  while (pos < headers.size()) {
    size_t eol = headers.find('\n', pos);
    std::string line = headers.substr(pos, eol == std::string::npos ? std::string::npos : eol - pos);
    pos = eol == std::string::npos ? headers.size() : eol + 1;
    size_t colon = line.find(':');
    if (colon == std::string::npos) {
      continue;
    }
    std::string name = line.substr(0, colon);
    std::transform(name.begin(), name.end(), name.begin(),
                   [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
    if (name != "content-length") {
      continue;
    }
    size_t value_begin = line.find_first_not_of(" \t", colon + 1);
    if (value_begin == std::string::npos) {
      return SIZE_MAX;
    }
    char* end = nullptr;
    unsigned long long value = std::strtoull(line.c_str() + value_begin, &end, 10);
    if (end == line.c_str() + value_begin) {
      return SIZE_MAX;
    }
    return static_cast<size_t>(value);
  }
  return SIZE_MAX;
}

}  // namespace

SocketServer::~SocketServer() { Stop(); }

bool SocketServer::Start(int port, Handler handler, std::string* error, size_t handler_threads) {
  auto fail = [&](const std::string& why) {
    if (error != nullptr) {
      *error = "socket server: " + why;
    }
    return false;
  };
  if (running_.load(std::memory_order_acquire)) {
    return fail("already running");
  }
  if (handler == nullptr) {
    return fail("null handler");
  }
  if (port < 0 || port > 65535) {
    return fail("port " + std::to_string(port) + " out of range");
  }
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return fail(std::string("socket failed: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    std::string why = std::string("bind 127.0.0.1:") + std::to_string(port) +
                      " failed: " + std::strerror(errno);
    ::close(fd);
    return fail(why);
  }
  if (::listen(fd, 64) != 0) {
    std::string why = std::string("listen failed: ") + std::strerror(errno);
    ::close(fd);
    return fail(why);
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    std::string why = std::string("getsockname failed: ") + std::strerror(errno);
    ::close(fd);
    return fail(why);
  }
  if (::pipe(wake_fds_) != 0) {
    std::string why = std::string("pipe failed: ") + std::strerror(errno);
    ::close(fd);
    return fail(why);
  }
  listen_fd_ = fd;
  handler_ = std::move(handler);
  port_.store(ntohs(addr.sin_port), std::memory_order_release);
  running_.store(true, std::memory_order_release);
  size_t pool = std::clamp<size_t>(handler_threads, 1, 64);
  handler_threads_.reserve(pool);
  for (size_t i = 0; i < pool; ++i) {
    handler_threads_.emplace_back([this] { HandlerLoop(); });
  }
  accept_thread_ = std::thread([this] { Serve(); });
  return true;
}

void SocketServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) {
    return;
  }
  // Wake the poll loop; the thread observes running_ == false and exits.
  char byte = 0;
  [[maybe_unused]] ssize_t n = ::write(wake_fds_[1], &byte, 1);
  if (accept_thread_.joinable()) {
    accept_thread_.join();
  }
  conns_cv_.notify_all();
  for (auto& thread : handler_threads_) {
    if (thread.joinable()) {
      thread.join();
    }
  }
  handler_threads_.clear();
  // Connections that were still queued never reached a handler; close them
  // unanswered rather than leaking the fds.
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (int conn : pending_conns_) {
      ::close(conn);
    }
    pending_conns_.clear();
  }
  CloseFd(&listen_fd_);
  CloseFd(&wake_fds_[0]);
  CloseFd(&wake_fds_[1]);
  port_.store(0, std::memory_order_release);
  handler_ = nullptr;
}

void SocketServer::Serve() {
  while (running_.load(std::memory_order_acquire)) {
    pollfd fds[2];
    fds[0] = {listen_fd_, POLLIN, 0};
    fds[1] = {wake_fds_[0], POLLIN, 0};
    int ready = ::poll(fds, 2, -1);
    if (ready < 0) {
      if (errno == EINTR) {
        continue;
      }
      return;
    }
    if (!running_.load(std::memory_order_acquire)) {
      return;
    }
    if ((fds[0].revents & POLLIN) == 0) {
      continue;
    }
    int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) {
      continue;
    }
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      pending_conns_.push_back(conn);
    }
    conns_cv_.notify_one();
  }
}

void SocketServer::HandlerLoop() {
  for (;;) {
    int conn = -1;
    {
      std::unique_lock<std::mutex> lock(conns_mu_);
      conns_cv_.wait(lock, [this] {
        return !pending_conns_.empty() || !running_.load(std::memory_order_acquire);
      });
      if (pending_conns_.empty()) {
        return;  // stopping and nothing left to serve
      }
      conn = pending_conns_.front();
      pending_conns_.pop_front();
    }
    HandleConnection(conn);
    ::close(conn);
  }
}

void SocketServer::HandleConnection(int fd) {
  // Header block first (8 KiB is generous for one request line + headers),
  // then the body per Content-Length, bounded by kMaxBodyBytes.
  timeval timeout{};
  timeout.tv_sec = 5;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  std::string request;
  char buffer[4096];
  size_t header_end = std::string::npos;
  size_t body_begin = 0;
  while (request.size() < 8192 + kMaxBodyBytes) {
    size_t crlf = request.find("\r\n\r\n");
    size_t lf = request.find("\n\n");
    if (crlf != std::string::npos || lf != std::string::npos) {
      if (crlf != std::string::npos && (lf == std::string::npos || crlf < lf)) {
        header_end = crlf;
        body_begin = crlf + 4;
      } else {
        header_end = lf;
        body_begin = lf + 2;
      }
      break;
    }
    if (request.size() >= 8192) {
      break;  // header block too large; reject below
    }
    ssize_t n = ::read(fd, buffer, sizeof(buffer));
    if (n <= 0) {
      if (n < 0 && errno == EINTR) {
        continue;
      }
      break;
    }
    request.append(buffer, static_cast<size_t>(n));
  }

  HttpResponse response;
  bool parsed_ok = false;
  HttpRequest parsed;
  if (header_end != std::string::npos) {
    std::string line;
    size_t line_end = request.find('\n');
    line = line_end == std::string::npos ? request : request.substr(0, line_end);
    if (!line.empty() && line.back() == '\r') {
      line.pop_back();
    }
    size_t sp1 = line.find(' ');
    size_t sp2 = line.rfind(' ');
    if (sp1 != std::string::npos && sp2 != sp1) {
      parsed.method = line.substr(0, sp1);
      std::string target = line.substr(sp1 + 1, sp2 - sp1 - 1);
      size_t question = target.find('?');
      if (question == std::string::npos) {
        parsed.path = target;
      } else {
        parsed.path = target.substr(0, question);
        parsed.query = target.substr(question + 1);
      }
      // Body: everything announced by Content-Length (absent = no body).
      size_t content_length = ParseContentLength(request.substr(0, header_end));
      if (content_length == SIZE_MAX) {
        content_length = 0;
      }
      if (content_length <= kMaxBodyBytes) {
        parsed.body = request.substr(std::min(body_begin, request.size()));
        while (parsed.body.size() < content_length) {
          ssize_t n = ::read(fd, buffer, sizeof(buffer));
          if (n <= 0) {
            if (n < 0 && errno == EINTR) {
              continue;
            }
            break;
          }
          parsed.body.append(buffer, static_cast<size_t>(n));
        }
        if (parsed.body.size() >= content_length) {
          parsed.body.resize(content_length);
          parsed_ok = true;
        }
      }
    }
  }
  if (parsed_ok) {
    response = handler_(parsed);
  } else {
    response.status = 400;
    response.body = "bad request\n";
  }

  std::string head = "HTTP/1.0 " + std::to_string(response.status) + " " +
                     StatusText(response.status) +
                     "\r\nContent-Type: " + response.content_type +
                     "\r\nContent-Length: " + std::to_string(response.body.size()) +
                     "\r\nConnection: close\r\n\r\n";
  WriteFully(fd, head + response.body);
}

}  // namespace grapple
