#include "src/support/socket_server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace grapple {

namespace {

const char* StatusText(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 500:
      return "Internal Server Error";
    default:
      return "Unknown";
  }
}

void CloseFd(int* fd) {
  if (*fd >= 0) {
    ::close(*fd);
    *fd = -1;
  }
}

// Writes the full buffer, tolerating EINTR and short writes. Scrape clients
// that hang up early are not an error worth surfacing.
void WriteFully(int fd, const std::string& data) {
  size_t done = 0;
  while (done < data.size()) {
    ssize_t n = ::write(fd, data.data() + done, data.size() - done);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return;
    }
    done += static_cast<size_t>(n);
  }
}

}  // namespace

SocketServer::~SocketServer() { Stop(); }

bool SocketServer::Start(int port, Handler handler, std::string* error) {
  auto fail = [&](const std::string& why) {
    if (error != nullptr) {
      *error = "socket server: " + why;
    }
    return false;
  };
  if (running_.load(std::memory_order_acquire)) {
    return fail("already running");
  }
  if (handler == nullptr) {
    return fail("null handler");
  }
  if (port < 0 || port > 65535) {
    return fail("port " + std::to_string(port) + " out of range");
  }
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return fail(std::string("socket failed: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    std::string why = std::string("bind 127.0.0.1:") + std::to_string(port) +
                      " failed: " + std::strerror(errno);
    ::close(fd);
    return fail(why);
  }
  if (::listen(fd, 16) != 0) {
    std::string why = std::string("listen failed: ") + std::strerror(errno);
    ::close(fd);
    return fail(why);
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    std::string why = std::string("getsockname failed: ") + std::strerror(errno);
    ::close(fd);
    return fail(why);
  }
  if (::pipe(wake_fds_) != 0) {
    std::string why = std::string("pipe failed: ") + std::strerror(errno);
    ::close(fd);
    return fail(why);
  }
  listen_fd_ = fd;
  handler_ = std::move(handler);
  port_.store(ntohs(addr.sin_port), std::memory_order_release);
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { Serve(); });
  return true;
}

void SocketServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) {
    return;
  }
  // Wake the poll loop; the thread observes running_ == false and exits.
  char byte = 0;
  [[maybe_unused]] ssize_t n = ::write(wake_fds_[1], &byte, 1);
  if (thread_.joinable()) {
    thread_.join();
  }
  CloseFd(&listen_fd_);
  CloseFd(&wake_fds_[0]);
  CloseFd(&wake_fds_[1]);
  port_.store(0, std::memory_order_release);
  handler_ = nullptr;
}

void SocketServer::Serve() {
  while (running_.load(std::memory_order_acquire)) {
    pollfd fds[2];
    fds[0] = {listen_fd_, POLLIN, 0};
    fds[1] = {wake_fds_[0], POLLIN, 0};
    int ready = ::poll(fds, 2, -1);
    if (ready < 0) {
      if (errno == EINTR) {
        continue;
      }
      return;
    }
    if (!running_.load(std::memory_order_acquire)) {
      return;
    }
    if ((fds[0].revents & POLLIN) == 0) {
      continue;
    }
    int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) {
      continue;
    }
    HandleConnection(conn);
    ::close(conn);
  }
}

void SocketServer::HandleConnection(int fd) {
  // Scrape requests are one short line plus headers; 8 KiB is generous.
  // Stop reading at the header terminator — bodies are ignored.
  timeval timeout{};
  timeout.tv_sec = 2;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  std::string request;
  char buffer[1024];
  while (request.size() < 8192 && request.find("\r\n\r\n") == std::string::npos &&
         request.find("\n\n") == std::string::npos) {
    ssize_t n = ::read(fd, buffer, sizeof(buffer));
    if (n <= 0) {
      if (n < 0 && errno == EINTR) {
        continue;
      }
      break;
    }
    request.append(buffer, static_cast<size_t>(n));
  }

  HttpResponse response;
  size_t line_end = request.find('\n');
  std::string line = line_end == std::string::npos ? request : request.substr(0, line_end);
  if (!line.empty() && line.back() == '\r') {
    line.pop_back();
  }
  size_t sp1 = line.find(' ');
  size_t sp2 = line.rfind(' ');
  if (sp1 == std::string::npos || sp2 == sp1) {
    response.status = 400;
    response.body = "bad request\n";
  } else {
    HttpRequest parsed;
    parsed.method = line.substr(0, sp1);
    std::string target = line.substr(sp1 + 1, sp2 - sp1 - 1);
    size_t question = target.find('?');
    if (question == std::string::npos) {
      parsed.path = target;
    } else {
      parsed.path = target.substr(0, question);
      parsed.query = target.substr(question + 1);
    }
    response = handler_(parsed);
  }

  std::string head = "HTTP/1.0 " + std::to_string(response.status) + " " +
                     StatusText(response.status) +
                     "\r\nContent-Type: " + response.content_type +
                     "\r\nContent-Length: " + std::to_string(response.body.size()) +
                     "\r\nConnection: close\r\n\r\n";
  WriteFully(fd, head + response.body);
}

}  // namespace grapple
