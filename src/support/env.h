// Environment-variable configuration for the observability layer (and any
// other runtime toggle that must work without touching call sites).
//
// Grapple reads:
//   GRAPPLE_LOG_LEVEL        debug|info|warning|error|fatal (or 0..4)
//   GRAPPLE_TRACE            path: enable span tracing, flush Chrome trace
//                            JSON there at process exit
//   GRAPPLE_TRACE_MAX_EVENTS per-thread span buffer cap (default 262144)
//   GRAPPLE_METRICS          path ("-" = stdout): the Grapple facade writes
//                            the machine-readable run report there
//   GRAPPLE_REPORT_DIR       directory: every bench writes its
//                            BENCH_<name>.json report there (obs/report.h)
//   GRAPPLE_WITNESS          off|bugs|full: how much derivation provenance
//                            to record and decode into per-bug witnesses
//                            (obs/provenance.h; default bugs)
//   GRAPPLE_SCALE            bench workload scale (read by bench_util.h)
//   GRAPPLE_THREADS          positive integer: overrides every engine-level
//                            worker-thread option (EngineOptions.num_threads,
//                            GrappleOptions::Scheduling::num_threads) at the
//                            point workers are sized; see ResolveThreadCount.
//                            It does NOT touch checker_parallelism: the
//                            session's TaskRuntime is sized as
//                            resolve(checker_parallelism) x
//                            resolve(num_threads) + 1, so this knob scales
//                            the per-checker factor only (DESIGN.md §14)
//   GRAPPLE_STEAL            locality|always|pinned: overrides the task
//                            runtime's steal policy
//                            (GrappleOptions::Scheduling::steal_policy)
//                            outright. "pinned" disables stealing and
//                            reproduces the legacy two-pool execution for
//                            A/B timing; results are byte-identical under
//                            every policy; see ResolveStealPolicy in
//                            support/task_runtime.h
//   GRAPPLE_IO_PIPELINE      on|off: overrides the pipelined-partition-I/O
//                            option (EngineOptions.io_pipeline) outright at
//                            the point the store is built; results are
//                            byte-identical either way — the knob exists for
//                            A/B timing and for disabling the background I/O
//                            thread; see ResolveIoPipeline
//   GRAPPLE_CHECKPOINT       on|off: overrides whether crash-safe
//                            checkpointing is enabled (DESIGN.md §11). "on"
//                            with no interval configured selects the default
//                            cadence; see ResolveCheckpointInterval
//   GRAPPLE_CHECKPOINT_INTERVAL
//                            positive integer: checkpoint every N processed
//                            partition pairs, overriding the option outright
//   GRAPPLE_CHECKPOINT_SPACING
//                            non-negative seconds: minimum wall-clock gap
//                            between interval-triggered manifests (bounds
//                            checkpoint overhead when pairs are cheap);
//                            0 = publish on every interval hit
//   GRAPPLE_IO_RETRIES       non-negative integer: overrides the bounded
//                            retry count for transient I/O failures
//                            (support/byte_io.h IoRetryPolicy.max_retries)
//   GRAPPLE_IO_BACKOFF_US    non-negative integer: base microseconds of the
//                            exponential backoff between I/O retries
//                            (IoRetryPolicy.backoff_base_us; 0 = no sleep)
//   GRAPPLE_FAULTS           fault-injection spec (tests/CI only): see
//                            support/fault_injection.h for the grammar
//   GRAPPLE_STATUSZ          integer: start the live-introspection HTTP
//                            listener (obs/statusz.h) on 127.0.0.1:<port>
//                            (0 = ephemeral port), overriding
//                            GrappleOptions::Observability::statusz_port;
//                            -1 or unset leaves the option in charge
//   GRAPPLE_EVENTLOG_EVENTS  positive integer: flight-recorder ring size in
//                            events per thread (obs/event_log.h; default
//                            4096), overriding
//                            Observability::event_log_capacity
//   GRAPPLE_SAMPLE_INTERVAL_MS
//                            positive integer: background metrics-sampler
//                            cadence in milliseconds (obs/sampler.h),
//                            overriding Observability::sample_interval_ms
//   GRAPPLE_PROFILE          on|off: overrides whether the wall-clock
//                            sampling profiler (obs/profiler.h, DESIGN.md
//                            §13) runs; when on, the Grapple facade starts
//                            it and writes <work_dir>/profile.bin after
//                            each Check(); see ResolveProfile
//   GRAPPLE_PROFILE_HZ       integer 1..1000: sampling frequency in Hz
//                            (default 97 — prime, avoids lockstep with
//                            periodic work), overriding
//                            Observability::profile_hz; see ResolveProfileHz
//   GRAPPLE_SERVICE_PORT     integer: the grappled analysis daemon's
//                            loopback listen port (0 = ephemeral),
//                            overriding ServiceOptions::port
//                            (src/service/service.h, DESIGN.md §15)
//   GRAPPLE_MAX_RESIDENT_SESSIONS
//                            positive integer: cap on warm Grapple sessions
//                            the daemon keeps resident (LRU-evicted beyond
//                            this; in-flight sessions are never dropped),
//                            overriding ServiceOptions::max_resident_sessions
//                            (default 8)
//   GRAPPLE_ADMISSION_QUEUE  positive integer: bound on queued-but-unstarted
//                            check requests across all tenants; requests
//                            beyond it are rejected with HTTP 429,
//                            overriding ServiceOptions::admission_capacity
//                            (default 64)
//
// Thread-count convention: a thread-count option of 0 means "use the
// hardware concurrency" — uniformly, wherever a pool is sized. Call sites
// resolve option values through ResolveThreadCount() so the env override
// and the 0-means-hardware rule apply in exactly one place.
#ifndef GRAPPLE_SRC_SUPPORT_ENV_H_
#define GRAPPLE_SRC_SUPPORT_ENV_H_

#include <cstdint>
#include <string>

namespace grapple {

// Raw getenv; nullptr when unset. Empty values count as unset.
const char* EnvRaw(const char* name);

std::string EnvString(const char* name, const std::string& default_value = "");

// Parses a decimal integer; malformed or unset values yield the default.
int64_t EnvInt64(const char* name, int64_t default_value);

// Truthy: "1", "true", "yes", "on" (case-insensitive).
bool EnvBool(const char* name, bool default_value = false);

// std::thread::hardware_concurrency(), never less than 1.
size_t HardwareThreads();

// Resolves a worker-thread-count option: GRAPPLE_THREADS (positive integer)
// overrides `requested` outright; otherwise 0 selects HardwareThreads().
size_t ResolveThreadCount(size_t requested);

// Resolves the pipelined-I/O option: GRAPPLE_IO_PIPELINE (on/off) overrides
// `requested` outright when set.
bool ResolveIoPipeline(bool requested);

// Resolves the checkpoint cadence (0 = disabled):
// GRAPPLE_CHECKPOINT_INTERVAL (positive integer) overrides `requested`
// outright; else GRAPPLE_CHECKPOINT=on enables the default cadence
// (kDefaultCheckpointInterval) when `requested` is 0, and =off forces 0.
inline constexpr uint32_t kDefaultCheckpointInterval = 8;
uint32_t ResolveCheckpointInterval(uint32_t requested);

// Resolves the minimum wall-clock spacing (seconds) between
// interval-triggered checkpoint manifests: GRAPPLE_CHECKPOINT_SPACING
// (non-negative seconds, fractions allowed) overrides `requested` when set
// and parseable.
double ResolveCheckpointSpacing(double requested);

// Resolves the sampling-profiler toggle: GRAPPLE_PROFILE (on/off) overrides
// `requested` outright when set.
bool ResolveProfile(bool requested);

// Resolves the profiler sampling rate: GRAPPLE_PROFILE_HZ (integer,
// clamped to 1..1000) overrides `requested` when set and positive.
inline constexpr uint32_t kDefaultProfileHz = 97;
uint32_t ResolveProfileHz(uint32_t requested);

}  // namespace grapple

#endif  // GRAPPLE_SRC_SUPPORT_ENV_H_
