#include "src/support/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <iostream>
#include <mutex>

namespace grapple {

namespace {

std::atomic<int> g_min_level{static_cast<int>(LogLevel::kInfo)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kFatal:
      return "F";
  }
  return "?";
}

std::mutex& OutputMutex() {
  static std::mutex mu;
  return mu;
}

}  // namespace

LogLevel GetMinLogLevel() { return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed)); }

void SetMinLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogMessage::LogMessage(LogLevel level, const char* file, int line) : level_(level) {
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') {
      base = p + 1;
    }
  }
  stream_ << LevelName(level) << " [" << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  stream_ << "\n";
  {
    std::lock_guard<std::mutex> lock(OutputMutex());
    std::cerr << stream_.str();
    std::cerr.flush();
  }
  if (level_ == LogLevel::kFatal) {
    std::abort();
  }
}

}  // namespace grapple
