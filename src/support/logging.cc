#include "src/support/logging.h"

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <iostream>
#include <mutex>

#include "src/support/env.h"
#include "src/support/event_hook.h"

namespace grapple {

namespace {

// GRAPPLE_LOG_LEVEL accepts a name (debug..fatal) or a number (0..4).
int InitialMinLevel() {
  std::string value = EnvString("GRAPPLE_LOG_LEVEL");
  if (value.empty()) {
    return static_cast<int>(LogLevel::kInfo);
  }
  for (char& c : value) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  if (value == "debug") return static_cast<int>(LogLevel::kDebug);
  if (value == "info") return static_cast<int>(LogLevel::kInfo);
  if (value == "warning" || value == "warn") return static_cast<int>(LogLevel::kWarning);
  if (value == "error") return static_cast<int>(LogLevel::kError);
  if (value == "fatal") return static_cast<int>(LogLevel::kFatal);
  int64_t numeric = EnvInt64("GRAPPLE_LOG_LEVEL", static_cast<int>(LogLevel::kInfo));
  if (numeric < static_cast<int>(LogLevel::kDebug) || numeric > static_cast<int>(LogLevel::kFatal)) {
    return static_cast<int>(LogLevel::kInfo);
  }
  return static_cast<int>(numeric);
}

std::atomic<int> g_min_level{InitialMinLevel()};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kFatal:
      return "F";
  }
  return "?";
}

std::mutex& OutputMutex() {
  static std::mutex mu;
  return mu;
}

}  // namespace

LogLevel GetMinLogLevel() { return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed)); }

void SetMinLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogMessage::LogMessage(LogLevel level, const char* file, int line) : level_(level) {
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') {
      base = p + 1;
    }
  }
  stream_ << LevelName(level) << " [" << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  stream_ << "\n";
  {
    std::lock_guard<std::mutex> lock(OutputMutex());
    std::cerr << stream_.str();
    std::cerr.flush();
  }
  if (level_ == LogLevel::kFatal) {
    // Spill the flight recorder before dying so the abort is diagnosable
    // from flightrec.bin even when stderr is lost.
    evt::RunCrashFlushHook();
    std::abort();
  }
}

}  // namespace grapple
