#include "src/support/byte_io.h"

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <system_error>

#include "src/support/logging.h"

namespace grapple {

void PutVarint64(std::vector<uint8_t>* out, uint64_t value) {
  while (value >= 0x80) {
    out->push_back(static_cast<uint8_t>(value) | 0x80);
    value >>= 7;
  }
  out->push_back(static_cast<uint8_t>(value));
}

void PutVarintSigned64(std::vector<uint8_t>* out, int64_t value) {
  uint64_t zigzag = (static_cast<uint64_t>(value) << 1) ^ static_cast<uint64_t>(value >> 63);
  PutVarint64(out, zigzag);
}

void PutFixed32(std::vector<uint8_t>* out, uint32_t value) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<uint8_t>(value >> (8 * i)));
  }
}

void PutFixed64(std::vector<uint8_t>* out, uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<uint8_t>(value >> (8 * i)));
  }
}

uint64_t ByteReader::GetVarint64() {
  uint64_t result = 0;
  int shift = 0;
  while (ok_) {
    if (pos_ >= size_ || shift > 63) {
      ok_ = false;
      return 0;
    }
    uint8_t byte = data_[pos_++];
    result |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      return result;
    }
    shift += 7;
  }
  return 0;
}

int64_t ByteReader::GetVarintSigned64() {
  uint64_t zigzag = GetVarint64();
  return static_cast<int64_t>((zigzag >> 1) ^ (~(zigzag & 1) + 1));
}

uint32_t ByteReader::GetFixed32() {
  if (!ok_ || pos_ + 4 > size_) {
    ok_ = false;
    return 0;
  }
  uint32_t value = 0;
  for (int i = 0; i < 4; ++i) {
    value |= static_cast<uint32_t>(data_[pos_ + i]) << (8 * i);
  }
  pos_ += 4;
  return value;
}

uint64_t ByteReader::GetFixed64() {
  if (!ok_ || pos_ + 8 > size_) {
    ok_ = false;
    return 0;
  }
  uint64_t value = 0;
  for (int i = 0; i < 8; ++i) {
    value |= static_cast<uint64_t>(data_[pos_ + i]) << (8 * i);
  }
  pos_ += 8;
  return value;
}

bool ByteReader::GetRaw(uint8_t* out, size_t n) {
  if (!ok_ || pos_ + n > size_) {
    ok_ = false;
    return false;
  }
  std::memcpy(out, data_ + pos_, n);
  pos_ += n;
  return true;
}

bool ByteReader::Skip(size_t n) {
  if (!ok_ || pos_ + n > size_) {
    ok_ = false;
    return false;
  }
  pos_ += n;
  return true;
}

bool WriteFileBytes(const std::string& path, const std::vector<uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return false;
  }
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  return static_cast<bool>(out);
}

bool AppendFileBytes(const std::string& path, const std::vector<uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::app);
  if (!out) {
    return false;
  }
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  return static_cast<bool>(out);
}

bool ReadFileBytes(const std::string& path, std::vector<uint8_t>* bytes) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) {
    return false;
  }
  std::streamsize size = in.tellg();
  in.seekg(0, std::ios::beg);
  bytes->resize(static_cast<size_t>(size));
  if (size > 0) {
    in.read(reinterpret_cast<char*>(bytes->data()), size);
  }
  return static_cast<bool>(in);
}

bool FileExists(const std::string& path) {
  std::error_code ec;
  return std::filesystem::exists(path, ec);
}

int64_t FileSizeBytes(const std::string& path) {
  std::error_code ec;
  auto size = std::filesystem::file_size(path, ec);
  return ec ? -1 : static_cast<int64_t>(size);
}

bool RemoveFile(const std::string& path) {
  std::error_code ec;
  return std::filesystem::remove(path, ec);
}

TempDir::TempDir(const std::string& tag) {
  static std::atomic<uint64_t> counter{0};
  uint64_t id = counter.fetch_add(1);
  std::error_code ec;
  auto base = std::filesystem::temp_directory_path(ec);
  GRAPPLE_CHECK(!ec) << "no temp directory available";
  for (int attempt = 0; attempt < 100; ++attempt) {
    std::string name = tag + "-" + std::to_string(::getpid()) + "-" + std::to_string(id) + "-" +
                       std::to_string(attempt);
    auto candidate = base / name;
    if (std::filesystem::create_directory(candidate, ec)) {
      path_ = candidate.string();
      return;
    }
  }
  GRAPPLE_LOG(FATAL) << "failed to create temp dir for tag " << tag;
}

TempDir::~TempDir() {
  if (!path_.empty()) {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
}

}  // namespace grapple
