#include "src/support/byte_io.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <mutex>
#include <system_error>
#include <thread>

#include "src/support/event_hook.h"
#include "src/support/fault_injection.h"
#include "src/support/logging.h"
#include "src/support/rng.h"

namespace grapple {

void PutVarint64(std::vector<uint8_t>* out, uint64_t value) {
  while (value >= 0x80) {
    out->push_back(static_cast<uint8_t>(value) | 0x80);
    value >>= 7;
  }
  out->push_back(static_cast<uint8_t>(value));
}

void PutVarintSigned64(std::vector<uint8_t>* out, int64_t value) {
  uint64_t zigzag = (static_cast<uint64_t>(value) << 1) ^ static_cast<uint64_t>(value >> 63);
  PutVarint64(out, zigzag);
}

void PutFixed32(std::vector<uint8_t>* out, uint32_t value) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<uint8_t>(value >> (8 * i)));
  }
}

void PutFixed64(std::vector<uint8_t>* out, uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<uint8_t>(value >> (8 * i)));
  }
}

uint64_t ByteReader::GetVarint64() {
  uint64_t result = 0;
  int shift = 0;
  while (ok_) {
    if (pos_ >= size_ || shift > 63) {
      ok_ = false;
      return 0;
    }
    uint8_t byte = data_[pos_++];
    result |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      return result;
    }
    shift += 7;
  }
  return 0;
}

int64_t ByteReader::GetVarintSigned64() {
  uint64_t zigzag = GetVarint64();
  return static_cast<int64_t>((zigzag >> 1) ^ (~(zigzag & 1) + 1));
}

uint32_t ByteReader::GetFixed32() {
  if (!ok_ || pos_ + 4 > size_) {
    ok_ = false;
    return 0;
  }
  uint32_t value = 0;
  for (int i = 0; i < 4; ++i) {
    value |= static_cast<uint32_t>(data_[pos_ + i]) << (8 * i);
  }
  pos_ += 4;
  return value;
}

uint64_t ByteReader::GetFixed64() {
  if (!ok_ || pos_ + 8 > size_) {
    ok_ = false;
    return 0;
  }
  uint64_t value = 0;
  for (int i = 0; i < 8; ++i) {
    value |= static_cast<uint64_t>(data_[pos_ + i]) << (8 * i);
  }
  pos_ += 8;
  return value;
}

bool ByteReader::GetRaw(uint8_t* out, size_t n) {
  if (!ok_ || pos_ + n > size_) {
    ok_ = false;
    return false;
  }
  std::memcpy(out, data_ + pos_, n);
  pos_ += n;
  return true;
}

bool ByteReader::Skip(size_t n) {
  if (!ok_ || pos_ + n > size_) {
    ok_ = false;
    return false;
  }
  pos_ += n;
  return true;
}

namespace {

std::mutex g_policy_mutex;
IoRetryPolicy g_policy;  // guarded by g_policy_mutex
std::atomic<uint64_t> g_io_retries{0};
// Stream position for jitter draws; combined with the policy seed so
// backoff spreading is deterministic per process given a fixed seed.
std::atomic<uint64_t> g_jitter_draws{0};

std::string ErrnoText(int err) { return std::system_category().message(err); }

bool SetError(std::string* error, const char* op, const std::string& path,
              const std::string& detail) {
  if (error != nullptr) {
    *error = std::string(op) + " " + path + ": " + detail;
  }
  return false;
}

void BackoffSleep(const IoRetryPolicy& policy, uint32_t retry_index) {
  if (policy.backoff_base_us == 0) {
    return;
  }
  uint32_t shift = retry_index < 10 ? retry_index : 10;
  uint64_t base = static_cast<uint64_t>(policy.backoff_base_us) << shift;
  Rng rng(policy.jitter_seed + g_jitter_draws.fetch_add(1, std::memory_order_relaxed));
  uint64_t jitter = rng.Below(static_cast<uint64_t>(policy.backoff_base_us) + 1);
  std::this_thread::sleep_for(std::chrono::microseconds(base + jitter));
}

// Bumps the retry counter and drops a flight-recorder event. `op` must have
// static storage duration (all call sites pass literals).
void NoteIoRetry(uint32_t attempt, const char* op) {
  g_io_retries.fetch_add(1, std::memory_order_relaxed);
  evt::Emit(evt::kIoRetry, attempt, reinterpret_cast<uint64_t>(op));
}

// Opens with EINTR retry. Returns -1 and sets *error on failure.
int OpenRetrying(const std::string& path, int flags, const char* op, std::string* error) {
  IoRetryPolicy policy = GetIoRetryPolicy();
  for (uint32_t retry = 0;; ++retry) {
    int fd = ::open(path.c_str(), flags | O_CLOEXEC, 0644);
    if (fd >= 0) {
      return fd;
    }
    if (errno != EINTR || retry >= policy.max_retries) {
      SetError(error, op, path, "open failed: " + ErrnoText(errno));
      return -1;
    }
    NoteIoRetry(retry + 1, op);
    BackoffSleep(policy, retry + 1);
  }
}

// Writes all of `data` to fd, retrying transient conditions (EINTR, EAGAIN,
// short writes, injected faults) with bounded exponential backoff. One
// fault-shim consultation per attempt, so `fail@write#N` is absorbed by a
// retry while `fail@write#N+` exhausts the budget and surfaces.
bool WriteAllFd(int fd, const uint8_t* data, size_t size, const std::string& path, const char* op,
                std::string* error) {
  IoRetryPolicy policy = GetIoRetryPolicy();
  size_t done = 0;
  uint32_t retries = 0;
  while (done < size) {
    size_t want = size - done;
    bool injected_fail = false;
    bool torn = false;
    if (fault::Enabled()) {
      fault::Action action = fault::OnIo(fault::Op::kWrite, path);
      switch (action.kind) {
        case fault::Action::Kind::kFail:
          injected_fail = true;
          break;
        case fault::Action::Kind::kShortWrite:
          if (action.arg == 0) {
            injected_fail = true;
          } else if (action.arg < want) {
            want = static_cast<size_t>(action.arg);
          }
          break;
        case fault::Action::Kind::kTorn:
          want = want > 1 ? want / 2 : want;
          torn = true;
          break;
        default:
          break;
      }
    }
    ssize_t n;
    if (injected_fail) {
      n = -1;
      errno = EINTR;
    } else {
      n = ::write(fd, data + done, want);
    }
    if (torn) {
      ::fsync(fd);
      // Torn write = simulated power cut mid-write; spill the flight
      // recorder so the post-mortem shows what the process was doing.
      evt::Emit(evt::kCrashExit, 0, reinterpret_cast<uint64_t>("torn_write"));
      evt::RunCrashFlushHook();
      _exit(fault::kCrashExitCode);
    }
    if (n > 0) {
      done += static_cast<size_t>(n);
    }
    if (done >= size) {
      break;
    }
    // Any attempt that left bytes unwritten consumes a retry: a short write
    // (n >= 0) or a transient errno.
    bool transient = n >= 0 || errno == EINTR || errno == EAGAIN;
    if (!transient) {
      return SetError(error, op, path,
                      "write failed after " + std::to_string(done) + "/" + std::to_string(size) +
                          " bytes: " + ErrnoText(errno));
    }
    if (retries >= policy.max_retries) {
      return SetError(error, op, path,
                      "transient write failures exhausted " + std::to_string(policy.max_retries) +
                          " retries (" + std::to_string(done) + "/" + std::to_string(size) +
                          " bytes written)");
    }
    ++retries;
    NoteIoRetry(retries, op);
    BackoffSleep(policy, retries);
  }
  return true;
}

}  // namespace

void SetIoRetryPolicy(const IoRetryPolicy& policy) {
  std::lock_guard<std::mutex> lock(g_policy_mutex);
  g_policy = policy;
}

IoRetryPolicy GetIoRetryPolicy() {
  std::lock_guard<std::mutex> lock(g_policy_mutex);
  return g_policy;
}

uint64_t IoRetriesTotal() { return g_io_retries.load(std::memory_order_relaxed); }

bool WriteFileBytes(const std::string& path, const std::vector<uint8_t>& bytes,
                    std::string* error) {
  int fd = OpenRetrying(path, O_WRONLY | O_CREAT | O_TRUNC, "write", error);
  if (fd < 0) {
    return false;
  }
  bool ok = WriteAllFd(fd, bytes.data(), bytes.size(), path, "write", error);
  ::close(fd);
  return ok;
}

bool AppendFileBytes(const std::string& path, const std::vector<uint8_t>& bytes,
                     std::string* error) {
  int fd = OpenRetrying(path, O_WRONLY | O_CREAT | O_APPEND, "append", error);
  if (fd < 0) {
    return false;
  }
  bool ok = WriteAllFd(fd, bytes.data(), bytes.size(), path, "append", error);
  ::close(fd);
  return ok;
}

bool ReadFileBytes(const std::string& path, std::vector<uint8_t>* bytes, std::string* error) {
  int fd = OpenRetrying(path, O_RDONLY, "read", error);
  if (fd < 0) {
    return false;
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    SetError(error, "read", path, "fstat failed: " + ErrnoText(errno));
    ::close(fd);
    return false;
  }
  bytes->resize(static_cast<size_t>(st.st_size));
  IoRetryPolicy policy = GetIoRetryPolicy();
  size_t done = 0;
  uint32_t retries = 0;
  bool flip_pending = false;
  uint64_t flip_index = 0;
  bool ok = true;
  while (done < bytes->size()) {
    bool injected_fail = false;
    if (fault::Enabled()) {
      fault::Action action = fault::OnIo(fault::Op::kRead, path);
      if (action.kind == fault::Action::Kind::kFail) {
        injected_fail = true;
      } else if (action.kind == fault::Action::Kind::kFlipBit) {
        flip_pending = true;
        flip_index = action.arg;
      }
    }
    ssize_t n;
    if (injected_fail) {
      n = -1;
      errno = EINTR;
    } else {
      n = ::read(fd, bytes->data() + done, bytes->size() - done);
    }
    if (n > 0) {
      done += static_cast<size_t>(n);
      continue;
    }
    // n == 0 (file shrank mid-read) and transient errors both land here.
    bool transient = n == 0 || errno == EINTR || errno == EAGAIN;
    if (!transient) {
      ok = SetError(error, "read", path, "read failed: " + ErrnoText(errno));
      break;
    }
    if (retries >= policy.max_retries) {
      ok = SetError(error, "read", path,
                    "transient read failures exhausted " + std::to_string(policy.max_retries) +
                        " retries (" + std::to_string(done) + "/" +
                        std::to_string(bytes->size()) + " bytes read)");
      break;
    }
    ++retries;
    NoteIoRetry(retries, "read");
    BackoffSleep(policy, retries);
  }
  ::close(fd);
  if (ok && flip_pending && !bytes->empty()) {
    (*bytes)[static_cast<size_t>(flip_index % bytes->size())] ^= 0x01;
  }
  return ok;
}

bool TruncateFile(const std::string& path, uint64_t size, std::string* error) {
  IoRetryPolicy policy = GetIoRetryPolicy();
  for (uint32_t retry = 0;; ++retry) {
    if (::truncate(path.c_str(), static_cast<off_t>(size)) == 0) {
      return true;
    }
    if (errno != EINTR || retry >= policy.max_retries) {
      return SetError(error, "truncate", path,
                      "truncate to " + std::to_string(size) + " failed: " + ErrnoText(errno));
    }
    NoteIoRetry(retry + 1, "truncate");
    BackoffSleep(policy, retry + 1);
  }
}

bool SyncFile(const std::string& path, std::string* error) {
  int fd = OpenRetrying(path, O_RDONLY, "fsync", error);
  if (fd < 0) {
    return false;
  }
  IoRetryPolicy policy = GetIoRetryPolicy();
  bool ok = true;
  for (uint32_t retry = 0;; ++retry) {
    bool injected_fail = false;
    if (fault::Enabled() &&
        fault::OnIo(fault::Op::kFsync, path).kind == fault::Action::Kind::kFail) {
      injected_fail = true;
    }
    int rc;
    if (injected_fail) {
      rc = -1;
      errno = EINTR;
    } else {
      rc = ::fsync(fd);
    }
    if (rc == 0) {
      break;
    }
    if (errno != EINTR || retry >= policy.max_retries) {
      ok = SetError(error, "fsync", path, "fsync failed: " + ErrnoText(errno));
      break;
    }
    NoteIoRetry(retry + 1, "fsync");
    BackoffSleep(policy, retry + 1);
  }
  ::close(fd);
  return ok;
}

bool RenameFile(const std::string& from, const std::string& to, std::string* error) {
  if (std::rename(from.c_str(), to.c_str()) != 0) {
    return SetError(error, "rename", from, "rename to " + to + " failed: " + ErrnoText(errno));
  }
  return true;
}

bool FileExists(const std::string& path) {
  std::error_code ec;
  return std::filesystem::exists(path, ec);
}

int64_t FileSizeBytes(const std::string& path) {
  std::error_code ec;
  auto size = std::filesystem::file_size(path, ec);
  return ec ? -1 : static_cast<int64_t>(size);
}

bool RemoveFile(const std::string& path) {
  std::error_code ec;
  return std::filesystem::remove(path, ec);
}

TempDir::TempDir(const std::string& tag) {
  static std::atomic<uint64_t> counter{0};
  uint64_t id = counter.fetch_add(1);
  std::error_code ec;
  auto base = std::filesystem::temp_directory_path(ec);
  GRAPPLE_CHECK(!ec) << "no temp directory available";
  for (int attempt = 0; attempt < 100; ++attempt) {
    std::string name = tag + "-" + std::to_string(::getpid()) + "-" + std::to_string(id) + "-" +
                       std::to_string(attempt);
    auto candidate = base / name;
    if (std::filesystem::create_directory(candidate, ec)) {
      path_ = candidate.string();
      return;
    }
  }
  GRAPPLE_LOG(FATAL) << "failed to create temp dir for tag " << tag;
}

TempDir::~TempDir() {
  if (!path_.empty()) {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
}

}  // namespace grapple
