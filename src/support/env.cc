#include "src/support/env.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <thread>

namespace grapple {

const char* EnvRaw(const char* name) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') {
    return nullptr;
  }
  return value;
}

std::string EnvString(const char* name, const std::string& default_value) {
  const char* value = EnvRaw(name);
  return value == nullptr ? default_value : std::string(value);
}

int64_t EnvInt64(const char* name, int64_t default_value) {
  const char* value = EnvRaw(name);
  if (value == nullptr) {
    return default_value;
  }
  char* end = nullptr;
  long long parsed = std::strtoll(value, &end, 10);
  if (end == value || (end != nullptr && *end != '\0')) {
    return default_value;
  }
  return static_cast<int64_t>(parsed);
}

bool EnvBool(const char* name, bool default_value) {
  const char* value = EnvRaw(name);
  if (value == nullptr) {
    return default_value;
  }
  std::string lowered;
  for (const char* p = value; *p != '\0'; ++p) {
    lowered.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(*p))));
  }
  if (lowered == "1" || lowered == "true" || lowered == "yes" || lowered == "on") {
    return true;
  }
  if (lowered == "0" || lowered == "false" || lowered == "no" || lowered == "off") {
    return false;
  }
  return default_value;
}

size_t HardwareThreads() {
  return std::max<size_t>(1, std::thread::hardware_concurrency());
}

size_t ResolveThreadCount(size_t requested) {
  int64_t forced = EnvInt64("GRAPPLE_THREADS", 0);
  if (forced > 0) {
    return static_cast<size_t>(forced);
  }
  return requested == 0 ? HardwareThreads() : requested;
}

bool ResolveIoPipeline(bool requested) { return EnvBool("GRAPPLE_IO_PIPELINE", requested); }

uint32_t ResolveCheckpointInterval(uint32_t requested) {
  int64_t forced = EnvInt64("GRAPPLE_CHECKPOINT_INTERVAL", 0);
  if (forced > 0) {
    return static_cast<uint32_t>(forced);
  }
  bool enabled = EnvBool("GRAPPLE_CHECKPOINT", requested > 0);
  if (!enabled) {
    return 0;
  }
  return requested > 0 ? requested : kDefaultCheckpointInterval;
}

bool ResolveProfile(bool requested) { return EnvBool("GRAPPLE_PROFILE", requested); }

uint32_t ResolveProfileHz(uint32_t requested) {
  int64_t forced = EnvInt64("GRAPPLE_PROFILE_HZ", 0);
  if (forced > 0) {
    return static_cast<uint32_t>(std::min<int64_t>(forced, 1000));
  }
  return requested;
}

double ResolveCheckpointSpacing(double requested) {
  const char* value = EnvRaw("GRAPPLE_CHECKPOINT_SPACING");
  if (value == nullptr) {
    return requested;
  }
  char* end = nullptr;
  double parsed = std::strtod(value, &end);
  if (end == value || (end != nullptr && *end != '\0') || parsed < 0) {
    return requested;
  }
  return parsed;
}

}  // namespace grapple
