#include "src/support/budget_arbiter.h"

#include <algorithm>

#include "src/support/event_hook.h"
#include "src/support/logging.h"

namespace grapple {

BudgetLease::~BudgetLease() { Release(); }

BudgetLease::BudgetLease(BudgetLease&& other) noexcept
    : arbiter_(other.arbiter_), bytes_(other.bytes_) {
  other.arbiter_ = nullptr;
  other.bytes_ = 0;
}

BudgetLease& BudgetLease::operator=(BudgetLease&& other) noexcept {
  if (this != &other) {
    Release();
    arbiter_ = other.arbiter_;
    bytes_ = other.bytes_;
    other.arbiter_ = nullptr;
    other.bytes_ = 0;
  }
  return *this;
}

bool BudgetLease::TryGrowTo(uint64_t target_bytes) {
  if (target_bytes <= bytes_) {
    return true;
  }
  if (arbiter_ == nullptr) {
    return false;
  }
  uint64_t extra = target_bytes - bytes_;
  if (!arbiter_->TryGrow(extra)) {
    return false;
  }
  bytes_ += extra;
  return true;
}

void BudgetLease::Release() {
  if (arbiter_ != nullptr && bytes_ > 0) {
    arbiter_->Return(bytes_);
  }
  arbiter_ = nullptr;
  bytes_ = 0;
}

BudgetArbiter::BudgetArbiter(uint64_t total_bytes) : total_(total_bytes) {
  GRAPPLE_CHECK(total_bytes > 0) << "budget arbiter needs a positive total";
}

BudgetLease BudgetArbiter::Acquire(uint64_t bytes) {
  bytes = std::min(bytes, total_);
  std::unique_lock<std::mutex> lock(mu_);
  uint64_t ticket = next_ticket_++;
  if (!(serving_ == ticket && total_ - used_ >= bytes)) {
    evt::Emit(evt::kArbiterWait, bytes);
  }
  cv_.wait(lock, [&] { return serving_ == ticket && total_ - used_ >= bytes; });
  ++serving_;
  used_ += bytes;
  peak_used_ = std::max(peak_used_, used_);
  evt::Emit(evt::kArbiterAcquire, bytes);
  // Wake the next ticket holder; it may be satisfiable already.
  cv_.notify_all();
  return BudgetLease(this, bytes);
}

uint64_t BudgetArbiter::used_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return used_;
}

uint64_t BudgetArbiter::free_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_ - used_;
}

uint64_t BudgetArbiter::peak_used_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return peak_used_;
}

bool BudgetArbiter::has_waiters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_ticket_ != serving_;
}

uint64_t BudgetArbiter::waiter_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_ticket_ - serving_;
}

bool BudgetArbiter::TryGrow(uint64_t extra) {
  std::lock_guard<std::mutex> lock(mu_);
  // Queued acquirers have first claim on free budget.
  if (next_ticket_ != serving_) {
    return false;
  }
  if (total_ - used_ < extra) {
    return false;
  }
  used_ += extra;
  peak_used_ = std::max(peak_used_, used_);
  evt::Emit(evt::kArbiterBorrow, extra);
  return true;
}

void BudgetArbiter::Return(uint64_t bytes) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    GRAPPLE_CHECK(bytes <= used_) << "budget lease returned more than acquired";
    used_ -= bytes;
  }
  cv_.notify_all();
}

}  // namespace grapple
