// Minimal leveled logging for Grapple.
//
// Usage:
//   GRAPPLE_LOG(INFO) << "loaded " << n << " edges";
//   GRAPPLE_CHECK(x > 0) << "x must be positive, got " << x;
//
// Log output goes to stderr. The minimum level is process-global and can be
// raised to silence benchmarks / tests.
#ifndef GRAPPLE_SRC_SUPPORT_LOGGING_H_
#define GRAPPLE_SRC_SUPPORT_LOGGING_H_

#include <cstdlib>
#include <sstream>
#include <string>

namespace grapple {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kFatal = 4,
};

// Returns/sets the process-wide minimum level that is actually emitted.
LogLevel GetMinLogLevel();
void SetMinLogLevel(LogLevel level);

// One in-flight log statement. Flushes (and aborts for kFatal) in the
// destructor.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

// Swallows the streamed expression when the level is below the threshold.
class LogMessageVoidify {
 public:
  void operator&(std::ostream&) {}
};

}  // namespace grapple

#define GRAPPLE_LOG_DEBUG ::grapple::LogLevel::kDebug
#define GRAPPLE_LOG_INFO ::grapple::LogLevel::kInfo
#define GRAPPLE_LOG_WARNING ::grapple::LogLevel::kWarning
#define GRAPPLE_LOG_ERROR ::grapple::LogLevel::kError
#define GRAPPLE_LOG_FATAL ::grapple::LogLevel::kFatal

#define GRAPPLE_LOG(severity)                                              \
  (GRAPPLE_LOG_##severity < ::grapple::GetMinLogLevel())                    \
      ? (void)0                                                             \
      : ::grapple::LogMessageVoidify() &                                    \
            ::grapple::LogMessage(GRAPPLE_LOG_##severity, __FILE__, __LINE__) \
                .stream()

#define GRAPPLE_CHECK(cond)                                                  \
  (cond) ? (void)0                                                           \
         : ::grapple::LogMessageVoidify() &                                  \
               ::grapple::LogMessage(::grapple::LogLevel::kFatal, __FILE__,  \
                                     __LINE__)                               \
                   .stream()                                                 \
               << "Check failed: " #cond " "

#define GRAPPLE_CHECK_EQ(a, b) GRAPPLE_CHECK((a) == (b))
#define GRAPPLE_CHECK_NE(a, b) GRAPPLE_CHECK((a) != (b))
#define GRAPPLE_CHECK_LT(a, b) GRAPPLE_CHECK((a) < (b))
#define GRAPPLE_CHECK_LE(a, b) GRAPPLE_CHECK((a) <= (b))
#define GRAPPLE_CHECK_GT(a, b) GRAPPLE_CHECK((a) > (b))
#define GRAPPLE_CHECK_GE(a, b) GRAPPLE_CHECK((a) >= (b))

#endif  // GRAPPLE_SRC_SUPPORT_LOGGING_H_
