// Deterministic pseudo-random number generator (splitmix64).
//
// The workload generator must be reproducible across runs and platforms so
// that bug ground truth stays stable; std::mt19937 distributions are not
// guaranteed identical across standard libraries, so we roll our own
// primitives.
#ifndef GRAPPLE_SRC_SUPPORT_RNG_H_
#define GRAPPLE_SRC_SUPPORT_RNG_H_

#include <cstdint>

namespace grapple {

class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  // Next raw 64-bit value (splitmix64).
  uint64_t Next() {
    state_ += 0x9E3779B97F4A7C15ULL;
    uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  // Uniform integer in [0, bound). bound must be > 0.
  uint64_t Below(uint64_t bound) { return Next() % bound; }

  // Uniform integer in [lo, hi] inclusive.
  int64_t Range(int64_t lo, int64_t hi) {
    if (hi <= lo) {
      return lo;
    }
    return lo + static_cast<int64_t>(Below(static_cast<uint64_t>(hi - lo + 1)));
  }

  // True with probability p (clamped to [0,1]).
  bool Chance(double p) {
    if (p <= 0.0) {
      return false;
    }
    if (p >= 1.0) {
      return true;
    }
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0) < p;
  }

  // A derived generator with an independent stream.
  Rng Fork() { return Rng(Next() ^ 0xD1B54A32D192ED03ULL); }

 private:
  uint64_t state_;
};

}  // namespace grapple

#endif  // GRAPPLE_SRC_SUPPORT_RNG_H_
