// Cross-engine memory-budget arbitration for concurrent checker runs.
//
// One Grapple analysis may run several graph engines at once (one per
// property checker). Each engine treats its memory budget as a soft cap on
// resident edge data; with N engines live the caps must not add up to more
// than the analysis-wide budget. The arbiter owns that global number and
// hands out leases:
//
//   BudgetArbiter arbiter(total_bytes);
//   BudgetLease lease = arbiter.Acquire(slice_bytes);   // blocks until free
//   ... run the engine against lease.bytes() ...
//   lease.Release();                                    // or let it destruct
//
// Acquire is FIFO-fair: requests are granted in arrival order, so a large
// request cannot be starved by a stream of small ones. A running engine
// that outgrows its lease may TryGrowTo() — a non-blocking borrow that only
// succeeds when headroom is free *and* no acquirer is queued (waiters have
// first claim on released budget). The sum of live leases never exceeds the
// total, which is how "N concurrent engines never exceed the analysis
// budget" is enforced.
#ifndef GRAPPLE_SRC_SUPPORT_BUDGET_ARBITER_H_
#define GRAPPLE_SRC_SUPPORT_BUDGET_ARBITER_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>

namespace grapple {

class BudgetArbiter;

// One engine's slice of the global budget. Move-only; returns its bytes to
// the arbiter on Release()/destruction. bytes() is stable except through
// TryGrowTo(), so the owning engine may read it without synchronization;
// leases must not be shared across threads.
class BudgetLease {
 public:
  BudgetLease() = default;
  ~BudgetLease();

  BudgetLease(BudgetLease&& other) noexcept;
  BudgetLease& operator=(BudgetLease&& other) noexcept;
  BudgetLease(const BudgetLease&) = delete;
  BudgetLease& operator=(const BudgetLease&) = delete;

  bool valid() const { return arbiter_ != nullptr; }
  uint64_t bytes() const { return bytes_; }

  // Non-blocking borrow: grows the lease until bytes() >= target_bytes.
  // Returns true when the lease already covers the target or enough free
  // headroom exists; false (lease unchanged) when the arbiter is committed
  // elsewhere or an acquirer is waiting.
  bool TryGrowTo(uint64_t target_bytes);

  // Returns every byte to the arbiter and detaches the lease.
  void Release();

 private:
  friend class BudgetArbiter;
  BudgetLease(BudgetArbiter* arbiter, uint64_t bytes) : arbiter_(arbiter), bytes_(bytes) {}

  BudgetArbiter* arbiter_ = nullptr;
  uint64_t bytes_ = 0;
};

class BudgetArbiter {
 public:
  // `total_bytes` must be positive.
  explicit BudgetArbiter(uint64_t total_bytes);

  BudgetArbiter(const BudgetArbiter&) = delete;
  BudgetArbiter& operator=(const BudgetArbiter&) = delete;

  // Blocks until `bytes` of budget are free and every earlier Acquire has
  // been served. `bytes` is capped to the total (a request larger than the
  // whole budget degrades to "the whole budget" rather than deadlocking).
  BudgetLease Acquire(uint64_t bytes);

  uint64_t total_bytes() const { return total_; }
  uint64_t used_bytes() const;
  uint64_t free_bytes() const;
  // High-water mark of the sum of live leases (always <= total_bytes()).
  uint64_t peak_used_bytes() const;
  // True while any Acquire is queued. Momentarily true inside every Acquire;
  // meaningful for observation (metrics, tests), not for flow control.
  bool has_waiters() const;
  // Number of queued Acquire calls; same observational caveat as has_waiters.
  uint64_t waiter_count() const;

 private:
  friend class BudgetLease;

  // Called by BudgetLease. `extra` > 0.
  bool TryGrow(uint64_t extra);
  void Return(uint64_t bytes);

  const uint64_t total_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  uint64_t used_ = 0;
  uint64_t peak_used_ = 0;
  // FIFO ticket lock over Acquire: tickets are granted strictly in order.
  uint64_t next_ticket_ = 0;
  uint64_t serving_ = 0;
};

}  // namespace grapple

#endif  // GRAPPLE_SRC_SUPPORT_BUDGET_ARBITER_H_
