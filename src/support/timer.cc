#include "src/support/timer.h"

#include <cmath>
#include <cstdio>

namespace grapple {

void PhaseProfiler::Add(const std::string& phase, double seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  seconds_[phase] += seconds;
}

double PhaseProfiler::Seconds(const std::string& phase) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = seconds_.find(phase);
  return it == seconds_.end() ? 0.0 : it->second;
}

std::map<std::string, double> PhaseProfiler::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return seconds_;
}

double PhaseProfiler::TotalSeconds() const {
  std::lock_guard<std::mutex> lock(mu_);
  double total = 0.0;
  for (const auto& [name, secs] : seconds_) {
    total += secs;
  }
  return total;
}

double PhaseProfiler::Fraction(const std::string& phase) const {
  std::lock_guard<std::mutex> lock(mu_);
  double total = 0.0;
  double wanted = 0.0;
  for (const auto& [name, secs] : seconds_) {
    total += secs;
    if (name == phase) {
      wanted = secs;
    }
  }
  return total <= 0.0 ? 0.0 : wanted / total;
}

void PhaseProfiler::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  seconds_.clear();
}

void PhaseProfiler::Merge(const PhaseProfiler& other) {
  auto snapshot = other.Snapshot();
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, secs] : snapshot) {
    seconds_[name] += secs;
  }
}

std::string FormatDuration(double seconds) {
  if (seconds < 0.0) {
    seconds = 0.0;
  }
  int64_t total = static_cast<int64_t>(std::llround(seconds));
  int64_t hours = total / 3600;
  int64_t minutes = (total % 3600) / 60;
  int64_t secs = total % 60;
  char buf[64];
  if (hours > 0) {
    std::snprintf(buf, sizeof(buf), "%02ldh%02ldm%02lds", static_cast<long>(hours),
                  static_cast<long>(minutes), static_cast<long>(secs));
  } else if (minutes > 0) {
    std::snprintf(buf, sizeof(buf), "%ldm%02lds", static_cast<long>(minutes),
                  static_cast<long>(secs));
  } else if (total >= 1) {
    std::snprintf(buf, sizeof(buf), "%lds", static_cast<long>(secs));
  } else {
    std::snprintf(buf, sizeof(buf), "%.3fs", seconds);
  }
  return buf;
}

}  // namespace grapple
