#include "src/support/timer.h"

#include <cmath>
#include <cstdio>
#include <functional>
#include <thread>

namespace grapple {

namespace {

// Stable per-thread stripe index; threads spread over stripes so concurrent
// Adds to the same phase land on different cache lines.
size_t ThreadStripe() {
  thread_local const size_t stripe =
      std::hash<std::thread::id>()(std::this_thread::get_id()) % PhaseProfiler::kStripes;
  return stripe;
}

uint64_t SecondsToNanos(double seconds) {
  if (seconds <= 0) {
    return 0;
  }
  return static_cast<uint64_t>(std::llround(seconds * 1e9));
}

constexpr double kNanosPerSecond = 1e9;

}  // namespace

uint64_t PhaseProfiler::Bucket::TotalNanos() const {
  uint64_t total = 0;
  for (const Stripe& stripe : stripes) {
    total += stripe.nanos.load(std::memory_order_relaxed);
  }
  return total;
}

PhaseProfiler::Bucket* PhaseProfiler::Find(const std::string& phase) const {
  size_t n = num_buckets_.load(std::memory_order_acquire);
  for (size_t i = 0; i < n; ++i) {
    if (buckets_[i].name == phase) {
      return &buckets_[i];
    }
  }
  return nullptr;
}

PhaseProfiler::Bucket* PhaseProfiler::FindOrCreate(const std::string& phase) {
  if (Bucket* found = Find(phase)) {
    return found;
  }
  std::lock_guard<std::mutex> lock(mu_);
  // Re-check: another thread may have registered it while we waited.
  if (Bucket* found = Find(phase)) {
    return found;
  }
  size_t n = num_buckets_.load(std::memory_order_relaxed);
  // Reserve the last slot for the overflow bucket so registration can never
  // fail on the hot path.
  if (n + 1 >= kMaxPhases && phase != "other") {
    if (Bucket* other = Find("other")) {
      return other;
    }
    buckets_[n].name = "other";
    num_buckets_.store(n + 1, std::memory_order_release);
    return &buckets_[n];
  }
  buckets_[n].name = phase;
  num_buckets_.store(n + 1, std::memory_order_release);
  return &buckets_[n];
}

void PhaseProfiler::Add(const std::string& phase, double seconds) {
  uint64_t nanos = SecondsToNanos(seconds);
  Bucket* bucket = FindOrCreate(phase);
  bucket->stripes[ThreadStripe()].nanos.fetch_add(nanos, std::memory_order_relaxed);
}

double PhaseProfiler::Seconds(const std::string& phase) const {
  const Bucket* bucket = Find(phase);
  return bucket == nullptr ? 0.0 : static_cast<double>(bucket->TotalNanos()) / kNanosPerSecond;
}

std::map<std::string, double> PhaseProfiler::Snapshot() const {
  std::map<std::string, double> out;
  size_t n = num_buckets_.load(std::memory_order_acquire);
  for (size_t i = 0; i < n; ++i) {
    out[buckets_[i].name] = static_cast<double>(buckets_[i].TotalNanos()) / kNanosPerSecond;
  }
  return out;
}

double PhaseProfiler::TotalSeconds() const {
  uint64_t total = 0;
  size_t n = num_buckets_.load(std::memory_order_acquire);
  for (size_t i = 0; i < n; ++i) {
    total += buckets_[i].TotalNanos();
  }
  return static_cast<double>(total) / kNanosPerSecond;
}

double PhaseProfiler::Fraction(const std::string& phase) const {
  uint64_t total = 0;
  uint64_t wanted = 0;
  size_t n = num_buckets_.load(std::memory_order_acquire);
  for (size_t i = 0; i < n; ++i) {
    uint64_t nanos = buckets_[i].TotalNanos();
    total += nanos;
    if (buckets_[i].name == phase) {
      wanted = nanos;
    }
  }
  return total == 0 ? 0.0 : static_cast<double>(wanted) / static_cast<double>(total);
}

void PhaseProfiler::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = num_buckets_.load(std::memory_order_relaxed);
  for (size_t i = 0; i < n; ++i) {
    for (Stripe& stripe : buckets_[i].stripes) {
      stripe.nanos.store(0, std::memory_order_relaxed);
    }
  }
}

void PhaseProfiler::Merge(const PhaseProfiler& other) {
  for (const auto& [name, secs] : other.Snapshot()) {
    Add(name, secs);
  }
}

std::string FormatDuration(double seconds) {
  if (seconds < 0.0) {
    seconds = 0.0;
  }
  int64_t total = static_cast<int64_t>(std::llround(seconds));
  int64_t hours = total / 3600;
  int64_t minutes = (total % 3600) / 60;
  int64_t secs = total % 60;
  char buf[64];
  if (hours > 0) {
    std::snprintf(buf, sizeof(buf), "%02ldh%02ldm%02lds", static_cast<long>(hours),
                  static_cast<long>(minutes), static_cast<long>(secs));
  } else if (minutes > 0) {
    std::snprintf(buf, sizeof(buf), "%ldm%02lds", static_cast<long>(minutes),
                  static_cast<long>(secs));
  } else if (total >= 1) {
    std::snprintf(buf, sizeof(buf), "%lds", static_cast<long>(secs));
  } else {
    std::snprintf(buf, sizeof(buf), "%.3fs", seconds);
  }
  return buf;
}

}  // namespace grapple
