// Fixed-capacity least-recently-used cache.
//
// Grapple memoizes constraint-solving results keyed by the encoded path
// (§4.3, "Constraint Memoization"): before decoding and solving a constraint
// the engine probes this cache; hits skip both the ICFET walk and the SMT
// call. Table 4 of the paper measures the effect.
#ifndef GRAPPLE_SRC_SUPPORT_LRU_CACHE_H_
#define GRAPPLE_SRC_SUPPORT_LRU_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <list>
#include <optional>
#include <unordered_map>
#include <utility>

namespace grapple {

template <typename Key, typename Value, typename Hash = std::hash<Key>>
class LruCache {
 public:
  explicit LruCache(size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {}

  // Returns the cached value and marks the entry most-recently-used.
  std::optional<Value> Get(const Key& key) {
    auto it = index_.find(key);
    if (it == index_.end()) {
      ++misses_;
      return std::nullopt;
    }
    ++hits_;
    order_.splice(order_.begin(), order_, it->second);
    return it->second->second;
  }

  // Inserts or overwrites; evicts the least-recently-used entry when full.
  void Put(const Key& key, Value value) {
    auto it = index_.find(key);
    if (it != index_.end()) {
      it->second->second = std::move(value);
      order_.splice(order_.begin(), order_, it->second);
      return;
    }
    if (index_.size() >= capacity_) {
      auto& victim = order_.back();
      index_.erase(victim.first);
      order_.pop_back();
      ++evictions_;
    }
    order_.emplace_front(key, std::move(value));
    index_.emplace(key, order_.begin());
  }

  size_t size() const { return index_.size(); }
  size_t capacity() const { return capacity_; }
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  uint64_t evictions() const { return evictions_; }

  double HitRate() const {
    uint64_t total = hits_ + misses_;
    return total == 0 ? 0.0 : static_cast<double>(hits_) / static_cast<double>(total);
  }

  void Clear() {
    order_.clear();
    index_.clear();
  }

  void ResetStats() {
    hits_ = 0;
    misses_ = 0;
    evictions_ = 0;
  }

 private:
  size_t capacity_;
  std::list<std::pair<Key, Value>> order_;
  std::unordered_map<Key, typename std::list<std::pair<Key, Value>>::iterator, Hash> index_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
};

}  // namespace grapple

#endif  // GRAPPLE_SRC_SUPPORT_LRU_CACHE_H_
