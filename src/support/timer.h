// Wall-clock timing utilities and a named phase profiler.
//
// The phase profiler is how Grapple produces the Figure-9 style cost
// breakdowns: worker threads accumulate time into named buckets ("io",
// "decode", "solve", "join") and the engine reports per-bucket totals.
#ifndef GRAPPLE_SRC_SUPPORT_TIMER_H_
#define GRAPPLE_SRC_SUPPORT_TIMER_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace grapple {

// A simple monotonic stopwatch measuring elapsed wall time.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() - start_).count();
  }

  uint64_t ElapsedNanos() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - start_).count());
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

// Accumulates wall time into named buckets. Thread-safe and lock-free on the
// hot path: each bucket is striped into per-thread cache-line-aligned atomic
// slots, so Add() is one relaxed fetch_add with no mutex and no cross-thread
// cache-line ping-pong. The mutex is only taken to register a new phase name
// and to snapshot.
class PhaseProfiler {
 public:
  // Distinct phase names per profiler; further names fold into "other".
  static constexpr size_t kMaxPhases = 32;
  // Stripes per bucket; threads hash onto stripes.
  static constexpr size_t kStripes = 8;

  void Add(const std::string& phase, double seconds);
  void AddMicros(const std::string& phase, int64_t micros) {
    Add(phase, static_cast<double>(micros) * 1e-6);
  }

  // Total accumulated seconds for one phase (0.0 if never recorded).
  double Seconds(const std::string& phase) const;

  // All phases with their totals, sorted by name.
  std::map<std::string, double> Snapshot() const;

  // Sum over all phases.
  double TotalSeconds() const;

  // Fraction (0..1) of the total attributed to `phase`; 0 when empty.
  double Fraction(const std::string& phase) const;

  void Reset();

  // Merges another profiler's buckets into this one.
  void Merge(const PhaseProfiler& other);

 private:
  struct alignas(64) Stripe {
    std::atomic<uint64_t> nanos{0};
  };
  struct Bucket {
    std::string name;
    std::array<Stripe, kStripes> stripes;
    uint64_t TotalNanos() const;
  };

  // Lock-free lookup of a published bucket; nullptr when absent.
  Bucket* Find(const std::string& phase) const;
  // Registers `phase` (mutex) and returns its bucket; folds overflow into a
  // reserved "other" bucket rather than failing.
  Bucket* FindOrCreate(const std::string& phase);

  mutable std::mutex mu_;  // registration and snapshot only
  std::atomic<size_t> num_buckets_{0};
  mutable std::array<Bucket, kMaxPhases> buckets_;
};

// RAII helper: adds the scope's elapsed time to a profiler bucket.
class ScopedPhase {
 public:
  ScopedPhase(PhaseProfiler* profiler, std::string phase)
      : profiler_(profiler), phase_(std::move(phase)) {}
  ~ScopedPhase() {
    if (profiler_ != nullptr) {
      profiler_->Add(phase_, timer_.ElapsedSeconds());
    }
  }

  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  PhaseProfiler* profiler_;
  std::string phase_;
  WallTimer timer_;
};

// Formats seconds as e.g. "01h06m15s", "51m49s", or "47s" to match the
// paper's table formatting.
std::string FormatDuration(double seconds);

}  // namespace grapple

#endif  // GRAPPLE_SRC_SUPPORT_TIMER_H_
