// Wall-clock timing utilities and a named phase profiler.
//
// The phase profiler is how Grapple produces the Figure-9 style cost
// breakdowns: worker threads accumulate time into named buckets ("io",
// "decode", "solve", "join") and the engine reports per-bucket totals.
#ifndef GRAPPLE_SRC_SUPPORT_TIMER_H_
#define GRAPPLE_SRC_SUPPORT_TIMER_H_

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace grapple {

// A simple monotonic stopwatch measuring elapsed wall time.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

// Accumulates wall time into named buckets. Thread-safe; the per-call cost is
// one mutex acquisition, so callers should batch (time a whole partition scan,
// not a single edge).
class PhaseProfiler {
 public:
  void Add(const std::string& phase, double seconds);
  void AddMicros(const std::string& phase, int64_t micros) {
    Add(phase, static_cast<double>(micros) * 1e-6);
  }

  // Total accumulated seconds for one phase (0.0 if never recorded).
  double Seconds(const std::string& phase) const;

  // All phases with their totals, sorted by name.
  std::map<std::string, double> Snapshot() const;

  // Sum over all phases.
  double TotalSeconds() const;

  // Fraction (0..1) of the total attributed to `phase`; 0 when empty.
  double Fraction(const std::string& phase) const;

  void Reset();

  // Merges another profiler's buckets into this one.
  void Merge(const PhaseProfiler& other);

 private:
  mutable std::mutex mu_;
  std::map<std::string, double> seconds_;
};

// RAII helper: adds the scope's elapsed time to a profiler bucket.
class ScopedPhase {
 public:
  ScopedPhase(PhaseProfiler* profiler, std::string phase)
      : profiler_(profiler), phase_(std::move(phase)) {}
  ~ScopedPhase() {
    if (profiler_ != nullptr) {
      profiler_->Add(phase_, timer_.ElapsedSeconds());
    }
  }

  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  PhaseProfiler* profiler_;
  std::string phase_;
  WallTimer timer_;
};

// Formats seconds as e.g. "01h06m15s", "51m49s", or "47s" to match the
// paper's table formatting.
std::string FormatDuration(double seconds);

}  // namespace grapple

#endif  // GRAPPLE_SRC_SUPPORT_TIMER_H_
