// Fixed-size worker pool used by the edge-induction loop.
//
// The engine hands the pool shards of an in-memory edge scan; ParallelFor
// blocks until every shard is processed, which matches the per-iteration
// barrier of the edge-pair-centric model (§4.3).
#ifndef GRAPPLE_SRC_SUPPORT_THREAD_POOL_H_
#define GRAPPLE_SRC_SUPPORT_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace grapple {

class ThreadPool {
 public:
  // `num_threads` == 0 selects the hardware concurrency (min 1), matching
  // the repo-wide thread-count convention in support/env.h. The pool itself
  // never consults GRAPPLE_THREADS — callers that want the env override
  // resolve their option through ResolveThreadCount() first.
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return threads_.size(); }

  // Enqueues one task; does not block.
  void Schedule(std::function<void()> task);

  // Blocks until every scheduled task has completed.
  void Wait();

  // Runs fn(shard_index, begin, end) over [0, n) split into num_threads()
  // contiguous shards, then waits. `fn` must be safe to call concurrently.
  void ParallelFor(size_t n, const std::function<void(size_t, size_t, size_t)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> threads_;
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::queue<std::function<void()>> queue_;
  size_t in_flight_ = 0;
  bool shutdown_ = false;
};

}  // namespace grapple

#endif  // GRAPPLE_SRC_SUPPORT_THREAD_POOL_H_
