#include "src/support/task_runtime.h"

#include <chrono>
#include <cstdlib>

#include "src/support/env.h"
#include "src/support/event_hook.h"
#include "src/support/timer.h"

namespace grapple {
namespace {

// FNV-1a over the strand key: strands with the same key must map to the
// same home worker so per-key FIFO order survives pinned-mode scheduling.
uint64_t HashKey(const std::string& key) {
  uint64_t h = 1469598103934665603ull;
  for (unsigned char c : key) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h == 0 ? 1 : h;  // 0 means "no affinity"
}

void MaxRelaxed(std::atomic<uint64_t>* slot, uint64_t value) {
  uint64_t seen = slot->load(std::memory_order_relaxed);
  while (value > seen &&
         !slot->compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
}

}  // namespace

const char* StealPolicyName(StealPolicy policy) {
  switch (policy) {
    case StealPolicy::kLocalityAware:
      return "locality";
    case StealPolicy::kAlways:
      return "always";
    case StealPolicy::kPinned:
      return "pinned";
  }
  return "unknown";
}

bool ParseStealPolicy(const std::string& text, StealPolicy* out) {
  if (text == "locality") {
    *out = StealPolicy::kLocalityAware;
  } else if (text == "always") {
    *out = StealPolicy::kAlways;
  } else if (text == "pinned") {
    *out = StealPolicy::kPinned;
  } else {
    return false;
  }
  return true;
}

StealPolicy ResolveStealPolicy(StealPolicy requested) {
  const char* env = std::getenv("GRAPPLE_STEAL");
  if (env != nullptr && *env != '\0') {
    StealPolicy parsed;
    if (ParseStealPolicy(env, &parsed)) {
      return parsed;
    }
  }
  return requested;
}

void TaskGroup::Submit(TaskLane lane, uint64_t affinity, std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++outstanding_;
  }
  TaskRuntime::Task task;
  task.fn = std::move(fn);
  task.group = this;
  task.affinity = affinity;
  task.lane = static_cast<uint8_t>(lane);
  runtime_->Enqueue(std::move(task));
}

void TaskGroup::Wait() {
  // Help-execute this group's unclaimed tasks first: even when every
  // worker is occupied (e.g. by the checker tasks that submitted us), the
  // waiting thread drains its own fan-out instead of deadlocking.
  while (true) {
    TaskRuntime::Task task;
    if (runtime_->PopGroupTask(this, &task)) {
      runtime_->RunTask(task, /*executor=*/0, /*inline_help=*/true);
      continue;
    }
    // Nothing left to claim. Tasks are only submitted before Wait(), so
    // every remaining one is running on a worker; sleep until the count
    // hits zero. Notify happens under mu_, so waking and returning (and
    // the caller destroying the group) cannot race the finisher.
    std::unique_lock<std::mutex> lock(mu_);
    if (outstanding_ == 0) {
      return;
    }
    evt::Emit(evt::kWaitBegin, evt::kWaitTask);
    done_cv_.wait(lock, [this] { return outstanding_ == 0; });
    evt::Emit(evt::kWaitEnd, evt::kWaitTask);
    return;
  }
}

TaskRuntime::TaskRuntime(TaskRuntimeOptions options) : options_(options) {
  size_t count = options_.workers == 0 ? HardwareThreads() : options_.workers;
  if (count == 0) {
    count = 1;
  }
  for (auto& weight : options_.lane_weights) {
    if (weight == 0) {
      weight = 1;
    }
  }
  workers_.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  for (size_t i = 0; i < count; ++i) {
    workers_[i]->thread = std::thread([this, i] { WorkerLoop(i); });
  }
}

TaskRuntime::~TaskRuntime() {
  {
    std::lock_guard<std::mutex> lock(sleep_mu_);
    stop_.store(true, std::memory_order_release);
  }
  for (auto& worker : workers_) {
    worker->wake_cv.notify_all();
  }
  for (auto& worker : workers_) {
    if (worker->thread.joinable()) {
      worker->thread.join();
    }
  }
}

void TaskRuntime::Submit(TaskLane lane, uint64_t affinity, std::function<void()> fn) {
  Task task;
  task.fn = std::move(fn);
  task.affinity = affinity;
  task.lane = static_cast<uint8_t>(lane);
  Enqueue(std::move(task));
}

void TaskRuntime::Enqueue(Task task) {
  size_t count = workers_.size();
  size_t home = task.affinity != 0
                    ? static_cast<size_t>(task.affinity % count)
                    : static_cast<size_t>(
                          next_home_.fetch_add(1, std::memory_order_relaxed) % count);
  task.home = static_cast<uint32_t>(home);
  if (task.affinity != 0) {
    stat_affine_tasks_.fetch_add(1, std::memory_order_relaxed);
  }
  {
    std::lock_guard<std::mutex> lock(workers_[home]->mu);
    workers_[home]->lanes[task.lane].push_back(std::move(task));
  }
  // queued_ counts queued *and running* tasks; it is decremented only
  // after a task body (including any continuation it submits) returns, so
  // workers never observe a transient zero and exit mid-drain.
  uint64_t depth = queued_.fetch_add(1, std::memory_order_relaxed) + 1;
  MaxRelaxed(&stat_queue_peak_, depth);
  // Publish before the wake decision: a worker that parks concurrently
  // rechecks unclaimed_ under sleep_mu_, so either it sees this task and
  // rescans, or it registers as sleeping first and WakeOne targets it.
  unclaimed_.fetch_add(1, std::memory_order_release);
  WakeOne(home);
}

void TaskRuntime::WakeOne(size_t home) {
  // Waking exactly one parked worker (instead of broadcasting) matters on
  // small machines: every futex wake is a preemption point for the
  // submitting thread, and a herd of woken workers charges their warm-up
  // scans to whatever the submitter was doing.
  Worker* target = nullptr;
  {
    std::lock_guard<std::mutex> lock(sleep_mu_);
    if (workers_[home]->sleeping) {
      target = workers_[home].get();
    } else if (options_.steal_policy != StealPolicy::kPinned) {
      for (auto& worker : workers_) {
        if (worker->sleeping) {
          target = worker.get();
          break;
        }
      }
    }
    // Under kPinned only the home worker can run the task; everyone else
    // would scan, take nothing, and park again. If home is awake it will
    // rescan before parking (unclaimed_ is already published), so not
    // waking anyone here is never a lost wakeup.
    if (target != nullptr) {
      // Clear the flag on the waker's side so a second Enqueue racing in
      // picks a different sleeper instead of double-notifying this one.
      target->sleeping = false;
    }
  }
  if (target != nullptr) {
    target->wake_cv.notify_one();
  }
}

void TaskRuntime::WorkerLoop(size_t self) {
  Worker& me = *workers_[self];
  while (true) {
    Task task;
    if (PopLocal(self, &task) || Steal(self, &task)) {
      RunTask(task, self, /*inline_help=*/false);
      continue;
    }
    std::unique_lock<std::mutex> lock(sleep_mu_);
    if (stop_.load(std::memory_order_acquire) &&
        queued_.load(std::memory_order_acquire) == 0) {
      return;
    }
    // Recheck for work this thread can actually reach before parking — a
    // push may have landed between the failed scan and taking sleep_mu_,
    // and its targeted wake may already have fired. Under kPinned only the
    // own deque counts (a global check would busy-spin on other workers'
    // unstealable backlogs); sleep_mu_ orders this against WakeOne, so a
    // push is either seen here or finds `sleeping` set and notifies.
    bool reachable;
    if (options_.steal_policy == StealPolicy::kPinned) {
      std::lock_guard<std::mutex> deque_lock(me.mu);
      reachable = false;
      for (const auto& lane : me.lanes) {
        if (!lane.empty()) {
          reachable = true;
          break;
        }
      }
    } else {
      reachable = unclaimed_.load(std::memory_order_acquire) > 0;
    }
    if (reachable) {
      continue;
    }
    me.sleeping = true;
    // Timed wait as a backstop: in pinned mode another worker's backlog is
    // not stealable, so this worker may sleep while queued_ > 0; the
    // timeout also re-checks shutdown.
    me.wake_cv.wait_for(lock, std::chrono::milliseconds(10));
    me.sleeping = false;
  }
}

bool TaskRuntime::PopLocal(size_t self, Task* out) {
  Worker& w = *workers_[self];
  std::lock_guard<std::mutex> lock(w.mu);
  // Weighted round-robin: serve up to weight[l] tasks from the highest
  // non-empty lane whose credit remains, so foreground work preempts
  // background lanes without ever starving them outright.
  for (int attempt = 0; attempt < 2; ++attempt) {
    bool any = false;
    for (size_t lane = 0; lane < kNumTaskLanes; ++lane) {
      if (w.lanes[lane].empty()) {
        continue;
      }
      any = true;
      if (w.credits[lane] == 0) {
        continue;
      }
      --w.credits[lane];
      *out = std::move(w.lanes[lane].front());
      w.lanes[lane].pop_front();
      unclaimed_.fetch_sub(1, std::memory_order_relaxed);
      return true;
    }
    if (!any) {
      return false;
    }
    // Every non-empty lane has exhausted its credit: start a new round.
    w.credits = options_.lane_weights;
  }
  return false;
}

bool TaskRuntime::Steal(size_t self, Task* out) {
  switch (options_.steal_policy) {
    case StealPolicy::kPinned:
      return false;
    case StealPolicy::kAlways:
      return StealScan(self, /*locality_pass=*/false, out);
    case StealPolicy::kLocalityAware:
      // Pass 1 takes only unhinted tasks — stealing a pair-affine task
      // wastes the prefetch its home worker's Hint() issued. Pass 2 takes
      // anything rather than idling.
      return StealScan(self, /*locality_pass=*/true, out) ||
             StealScan(self, /*locality_pass=*/false, out);
  }
  return false;
}

bool TaskRuntime::StealScan(size_t self, bool locality_pass, Task* out) {
  size_t count = workers_.size();
  for (size_t k = 1; k < count; ++k) {
    Worker& victim = *workers_[(self + k) % count];
    std::lock_guard<std::mutex> lock(victim.mu);
    for (size_t lane = 0; lane < kNumTaskLanes; ++lane) {
      auto& queue = victim.lanes[lane];
      for (auto it = queue.begin(); it != queue.end(); ++it) {
        if (locality_pass && it->affinity != 0) {
          continue;
        }
        *out = std::move(*it);
        queue.erase(it);
        unclaimed_.fetch_sub(1, std::memory_order_relaxed);
        return true;
      }
    }
  }
  return false;
}

bool TaskRuntime::PopGroupTask(TaskGroup* group, Task* out) {
  for (auto& worker : workers_) {
    std::lock_guard<std::mutex> lock(worker->mu);
    for (size_t lane = 0; lane < kNumTaskLanes; ++lane) {
      auto& queue = worker->lanes[lane];
      for (auto it = queue.begin(); it != queue.end(); ++it) {
        if (it->group == group) {
          *out = std::move(*it);
          queue.erase(it);
          unclaimed_.fetch_sub(1, std::memory_order_relaxed);
          return true;
        }
      }
    }
  }
  return false;
}

void TaskRuntime::RunTask(Task& task, size_t executor, bool inline_help) {
  if (inline_help) {
    stat_inline_.fetch_add(1, std::memory_order_relaxed);
  } else if (executor != task.home) {
    stat_steals_.fetch_add(1, std::memory_order_relaxed);
  } else if (task.affinity != 0) {
    stat_affine_hits_.fetch_add(1, std::memory_order_relaxed);
  }
  WallTimer timer;
  task.fn();
  stat_busy_ns_[task.lane].fetch_add(timer.ElapsedNanos(), std::memory_order_relaxed);
  stat_tasks_[task.lane].fetch_add(1, std::memory_order_relaxed);
  if (task.group != nullptr) {
    FinishGroupTask(task.group);
  }
  if (queued_.fetch_sub(1, std::memory_order_acq_rel) == 1 &&
      stop_.load(std::memory_order_acquire)) {
    // Last task during shutdown: wake every parked worker so all observe
    // queued_ == 0 and exit without waiting out the 10ms backstop.
    { std::lock_guard<std::mutex> lock(sleep_mu_); }
    for (auto& worker : workers_) {
      worker->wake_cv.notify_all();
    }
  }
}

void TaskRuntime::FinishGroupTask(TaskGroup* group) {
  // Notify under the lock: the waiter re-acquires mu_ before returning (and
  // possibly destroying the group), which orders it after our unlock.
  std::lock_guard<std::mutex> lock(group->mu_);
  if (--group->outstanding_ == 0) {
    group->done_cv_.notify_all();
  }
}

void TaskRuntime::SubmitSerial(const std::string& key, TaskLane lane,
                               std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(strands_mu_);
    strands_[key].q.push_back(std::move(fn));
  }
  // One pump per queued fn; each pump runs at most one strand task. A pump
  // that finds the strand owned no-ops — the owner resubmits a pump for
  // any backlog it leaves behind, so nothing is stranded.
  std::string pump_key = key;
  Submit(lane, HashKey(key), [this, pump_key] { PumpStrand(pump_key, /*from_worker=*/true); });
}

void TaskRuntime::PumpStrand(const std::string& key, bool from_worker) {
  std::unique_lock<std::mutex> lock(strands_mu_);
  auto it = strands_.find(key);
  if (it == strands_.end() || it->second.owned || it->second.q.empty()) {
    return;
  }
  it->second.owned = true;
  std::function<void()> fn = std::move(it->second.q.front());
  it->second.q.pop_front();
  lock.unlock();
  stat_strand_tasks_.fetch_add(1, std::memory_order_relaxed);
  fn();
  lock.lock();
  it = strands_.find(key);  // rehash may have moved the bucket
  it->second.owned = false;
  bool backlog = !it->second.q.empty();
  if (!backlog) {
    strands_.erase(it);
  }
  lock.unlock();
  strand_cv_.notify_all();
  if (backlog && from_worker) {
    std::string pump_key = key;
    Submit(TaskLane::kWriteBehind, HashKey(key),
           [this, pump_key] { PumpStrand(pump_key, /*from_worker=*/true); });
  }
}

void TaskRuntime::WaitSerial(const std::string& key, evt::WaitKind wait_kind) {
  std::unique_lock<std::mutex> lock(strands_mu_);
  while (true) {
    auto it = strands_.find(key);
    if (it == strands_.end() || (it->second.q.empty() && !it->second.owned)) {
      return;
    }
    if (!it->second.owned && !it->second.q.empty()) {
      // Unclaimed backlog: drain it inline rather than waiting for a
      // worker (every worker may be busy with checker tasks).
      it->second.owned = true;
      std::function<void()> fn = std::move(it->second.q.front());
      it->second.q.pop_front();
      lock.unlock();
      stat_strand_tasks_.fetch_add(1, std::memory_order_relaxed);
      stat_inline_.fetch_add(1, std::memory_order_relaxed);
      fn();
      lock.lock();
      it = strands_.find(key);
      it->second.owned = false;
      strand_cv_.notify_all();
      continue;
    }
    // Owned by a worker pump (or another waiter): it runs exactly one task
    // and notifies when it releases ownership.
    evt::Emit(evt::kWaitBegin, wait_kind);
    strand_cv_.wait(lock);
    evt::Emit(evt::kWaitEnd, wait_kind);
  }
}

TaskRuntimeStats TaskRuntime::Stats() const {
  TaskRuntimeStats stats;
  for (size_t lane = 0; lane < kNumTaskLanes; ++lane) {
    stats.tasks[lane] = stat_tasks_[lane].load(std::memory_order_relaxed);
    stats.busy_ns[lane] = stat_busy_ns_[lane].load(std::memory_order_relaxed);
  }
  stats.steals = stat_steals_.load(std::memory_order_relaxed);
  stats.affine_tasks = stat_affine_tasks_.load(std::memory_order_relaxed);
  stats.affine_hits = stat_affine_hits_.load(std::memory_order_relaxed);
  stats.inline_tasks = stat_inline_.load(std::memory_order_relaxed);
  stats.strand_tasks = stat_strand_tasks_.load(std::memory_order_relaxed);
  stats.queue_peak = stat_queue_peak_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace grapple
