// Deterministic fault injection for the I/O stack.
//
// Recovery correctness cannot be tested by hoping for real disk errors, so
// every byte_io file operation and every engine crash point consults this
// shim. A fault plan is a comma-separated spec, normally supplied via the
// GRAPPLE_FAULTS environment variable (parsed once at process start) or via
// Configure() in tests:
//
//   crash@<point>[#N]            _exit(137) at the Nth hit of a named crash
//                                point (default N=1), simulating `kill -9`
//   fail@<op>#N[+]               fail the Nth <op> attempt (with `+`: every
//                                attempt from the Nth on, so retries exhaust)
//   shortwrite@write#N:K         the Nth write attempt persists only K bytes
//   flip@read#N:B                flip one bit of byte B (mod size) in the
//                                result of the Nth read
//   torn@write#N                 persist half the bytes of the Nth write,
//                                then _exit(137) (a torn write under power
//                                loss)
//
// <op> is one of read|write|fsync. Any clause may end with `:path=<substr>`
// to apply only to files whose path contains the substring; attempts that do
// not match the filter do not advance that clause's counter. Example:
//
//   GRAPPLE_FAULTS='fail@write#2,crash@ckpt_published#1:path=typestate-io'
//
// Counters are per-clause and process-global (atomic). Ordinals are counted
// per *attempt* (one syscall round inside byte_io's retry loop), which makes
// `fail@<op>#N` a transient error absorbed by the retry path and
// `fail@<op>#N+` a hard failure that exhausts it.
//
// Cost when disabled: Enabled() is a single relaxed atomic load, so hot
// read/write paths pay one predicted branch and nothing else.
#ifndef GRAPPLE_SRC_SUPPORT_FAULT_INJECTION_H_
#define GRAPPLE_SRC_SUPPORT_FAULT_INJECTION_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace grapple {
namespace fault {

// Exit code used by injected crashes; matches the shell's code for a process
// killed by SIGKILL so scripted harnesses can treat both the same way.
inline constexpr int kCrashExitCode = 137;

enum class Op : uint8_t { kRead = 0, kWrite = 1, kFsync = 2 };

// Decision for one I/O attempt. kFail means "pretend the syscall failed with
// a transient errno"; kShortWrite means "persist only `arg` bytes"; kFlipBit
// means "corrupt bit 0 of byte `arg` (mod size) of the data read"; kTorn
// means "persist half, then crash".
struct Action {
  enum class Kind : uint8_t { kNone, kFail, kShortWrite, kFlipBit, kTorn };
  Kind kind = Kind::kNone;
  uint64_t arg = 0;
};

namespace internal {
extern std::atomic<bool> g_enabled;
}  // namespace internal

// True when a fault plan is active. The only cost on hot paths.
inline bool Enabled() {
  return internal::g_enabled.load(std::memory_order_relaxed);
}

// Consulted once per I/O attempt; returns the injected action, if any.
// Callers must check Enabled() first. Thread-safe.
Action OnIo(Op op, const std::string& path);

// Named crash point: calls _exit(kCrashExitCode) when a matching crash@
// clause reaches its ordinal. The name must be registered in
// AllCrashPoints(). No-op (one predicted branch) when disabled.
void CrashPoint(const char* name);

// The canonical list of registered crash points, in the order the engine
// reaches them. Recovery sweep tests iterate this list so a newly added
// point is automatically covered.
const std::vector<std::string>& AllCrashPoints();

// Process-wide count of non-kNone decisions handed out (exported as the
// faults_injected gauge).
uint64_t InjectedCount();

// (Re)installs a fault plan; an empty spec disables injection. Returns false
// and sets *error on a malformed spec. Intended for tests; production runs
// configure via GRAPPLE_FAULTS, applied automatically at process start.
bool Configure(const std::string& spec, std::string* error = nullptr);

// Disables injection and clears all counters.
void Reset();

}  // namespace fault
}  // namespace grapple

#endif  // GRAPPLE_SRC_SUPPORT_FAULT_INJECTION_H_
