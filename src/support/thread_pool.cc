#include "src/support/thread_pool.h"

#include <algorithm>

#include "src/support/env.h"

namespace grapple {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = HardwareThreads();
  }
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& thread : threads_) {
    thread.join();
  }
}

void ThreadPool::Schedule(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push(std::move(task));
    ++in_flight_;
  }
  work_cv_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t, size_t, size_t)>& fn) {
  if (n == 0) {
    return;
  }
  size_t shards = std::min(n, threads_.size());
  size_t chunk = (n + shards - 1) / shards;
  for (size_t s = 0; s < shards; ++s) {
    size_t begin = s * chunk;
    size_t end = std::min(n, begin + chunk);
    if (begin >= end) {
      break;
    }
    Schedule([&fn, s, begin, end] { fn(s, begin, end); });
  }
  Wait();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // shutdown with drained queue
      }
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) {
        done_cv_.notify_all();
      }
    }
  }
}

}  // namespace grapple
