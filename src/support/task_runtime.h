// Unified work-stealing task runtime for the superstep pipeline
// (DESIGN.md §14).
//
// One scheduler replaces the twin ad-hoc executors that used to split the
// machine — the generic join ThreadPool plus the partition store's private
// FIFO I/O worker. Every unit of work (join shards, prefetch reads,
// write-behind encodes, whole checker runs) becomes a task on per-worker
// deques, so solve-heavy partition pairs overlap I/O-heavy ones instead of
// fighting over disjoint thread sets.
//
// Scheduling model:
//   * Per-worker deques, one FIFO per priority lane. Submission homes a
//     task on its preferred worker (affinity % workers) or round-robin.
//   * Three priority lanes, serviced by weighted round-robin so foreground
//     solve work preempts prefetch which preempts write-behind — but lower
//     lanes are never starved (a worker with only write-behind work runs
//     write-behind work).
//   * Stealing is policy-controlled. kLocalityAware (default) prefers
//     tasks without a locality hint, or hinted to the thief itself, and
//     takes somebody else's hinted work only when nothing better exists —
//     a stolen pair-affine task wastes the Hint() prefetch its home worker
//     issued. kAlways steals the first runnable task (stress/testing).
//     kPinned never steals: tasks run only on their home worker, which
//     reproduces the legacy two-pool execution for A/B benchmarking.
//   * Waits help-execute. TaskGroup::Wait() runs the group's own unclaimed
//     tasks inline and WaitSerial() pumps the awaited strand inline, so a
//     blocked caller — even a checker task occupying the last worker —
//     always makes progress. This is what makes it safe to run whole
//     checker trees on the same workers as their leaf tasks.
//   * Serialized-per-key strands (SubmitSerial) give the partition store
//     its per-file I/O ordering: tasks that share a key run FIFO and
//     mutually excluded; distinct keys (files) run concurrently.
//
// Blocking waits are bracketed with evt::kWaitBegin/kWaitEnd(kWaitTask) so
// the sampling profiler attributes scheduler idle time; callers wrap task
// bodies in their own obs::Prof* markers for per-task-kind attribution
// (this layer sits below src/obs and cannot do it for them).
#ifndef GRAPPLE_SRC_SUPPORT_TASK_RUNTIME_H_
#define GRAPPLE_SRC_SUPPORT_TASK_RUNTIME_H_

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/support/event_hook.h"

namespace grapple {

// Priority lanes, highest priority first. Values index lane arrays.
enum class TaskLane : uint8_t {
  kForeground = 0,  // join shards, checker trees — latency critical
  kPrefetch = 1,    // speculative partition reads ahead of the cursor
  kWriteBehind = 2, // background encodes + writes, deferred deletes
};
inline constexpr size_t kNumTaskLanes = 3;

enum class StealPolicy : uint8_t {
  kLocalityAware = 0,  // default: respect affinity hints when stealing
  kAlways = 1,         // steal anything runnable (contention stress)
  kPinned = 2,         // never steal: legacy two-pool-equivalent mode
};

// "locality", "always", or "pinned".
const char* StealPolicyName(StealPolicy policy);
// Parses the names above (case-sensitive). False on anything else.
bool ParseStealPolicy(const std::string& text, StealPolicy* out);
// GRAPPLE_STEAL, when set to a valid policy name, overrides `requested`
// outright (same contract as ResolveThreadCount / GRAPPLE_THREADS).
StealPolicy ResolveStealPolicy(StealPolicy requested);

struct TaskRuntimeOptions {
  // Worker threads. 0 = hardware concurrency. Callers resolve env
  // overrides (ResolveThreadCount) before constructing.
  size_t workers = 0;
  StealPolicy steal_policy = StealPolicy::kLocalityAware;
  // Weighted round-robin service credits per lane; a worker serves up to
  // weight[l] tasks from lane l before looking at lane l+1. All >= 1.
  std::array<uint32_t, kNumTaskLanes> lane_weights = {4, 2, 1};
};

// Monotonic counters, snapshotted with Stats(). All totals since
// construction; "affine" means submitted with a nonzero affinity key.
struct TaskRuntimeStats {
  uint64_t tasks[kNumTaskLanes] = {0, 0, 0};
  uint64_t busy_ns[kNumTaskLanes] = {0, 0, 0};  // in-task wall time per lane
  uint64_t steals = 0;        // tasks executed by a non-home worker
  uint64_t affine_tasks = 0;  // tasks carrying a locality hint
  uint64_t affine_hits = 0;   // affine tasks that ran on their home worker
  uint64_t inline_tasks = 0;  // tasks help-executed inside a Wait
  uint64_t strand_tasks = 0;  // serialized tasks run through SubmitSerial
  uint64_t queue_peak = 0;    // max queued tasks observed at submission
};

class TaskRuntime;

// Fan-out/join handle: submit N tasks, Wait() for all of them. Wait()
// help-executes unclaimed tasks of *this group only* — it never pulls
// unrelated work (e.g. another checker's tree) onto the waiting stack.
// Safe to call from worker threads and external threads alike.
class TaskGroup {
 public:
  explicit TaskGroup(TaskRuntime* runtime) : runtime_(runtime) {}
  ~TaskGroup() { Wait(); }
  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  // Schedules `fn`; affinity 0 = no locality hint (round-robin home).
  void Submit(TaskLane lane, uint64_t affinity, std::function<void()> fn);
  // Blocks until every task submitted to this group has finished.
  void Wait();

 private:
  friend class TaskRuntime;
  TaskRuntime* runtime_;
  std::mutex mu_;
  std::condition_variable done_cv_;
  size_t outstanding_ = 0;  // guarded by mu_
};

class TaskRuntime {
 public:
  explicit TaskRuntime(TaskRuntimeOptions options = {});
  // Drains every queued task (groups, strands), then joins the workers.
  ~TaskRuntime();
  TaskRuntime(const TaskRuntime&) = delete;
  TaskRuntime& operator=(const TaskRuntime&) = delete;

  size_t workers() const { return workers_.size(); }
  StealPolicy steal_policy() const { return options_.steal_policy; }
  // Thread id of worker `index`. Introspection for tests and debugging:
  // lets a caller map an observed std::this_thread::get_id() back to the
  // worker that executed a task.
  std::thread::id WorkerThreadId(size_t index) const {
    return workers_[index]->thread.get_id();
  }

  // Fire-and-forget submission (group-less). affinity 0 = no hint.
  void Submit(TaskLane lane, uint64_t affinity, std::function<void()> fn);

  // Serialized-per-key strand: tasks sharing `key` run strictly FIFO and
  // mutually excluded; distinct keys run concurrently. The partition store
  // keys strands by file path, preserving the old single-I/O-worker
  // ordering guarantee per file while letting different files overlap.
  void SubmitSerial(const std::string& key, TaskLane lane, std::function<void()> fn);

  // Blocks until every task queued on `key`'s strand before this call has
  // run. Help-executes the strand inline when no worker has claimed it.
  // Blocked time is bracketed with `wait_kind` (default kWaitTask) so a
  // caller with a more specific cause — e.g. the partition store's I/O
  // barrier — keeps its established wait attribution.
  void WaitSerial(const std::string& key, evt::WaitKind wait_kind = evt::kWaitTask);

  TaskRuntimeStats Stats() const;

 private:
  friend class TaskGroup;

  struct Task {
    std::function<void()> fn;
    TaskGroup* group = nullptr;
    uint64_t affinity = 0;
    uint8_t lane = 0;
    uint32_t home = 0;
  };

  struct Worker {
    std::mutex mu;
    std::array<std::deque<Task>, kNumTaskLanes> lanes;  // guarded by mu
    // Remaining weighted-round-robin service credits (guarded by mu).
    std::array<uint32_t, kNumTaskLanes> credits = {0, 0, 0};
    // Per-worker sleep slot (guarded by sleep_mu_): lets Enqueue wake
    // exactly the worker it wants — the task's home worker when it is
    // parked — instead of broadcasting to the whole pool.
    std::condition_variable wake_cv;
    bool sleeping = false;
    std::thread thread;
  };

  // One per-key FIFO. `owned` is true while some thread (worker pump or
  // inline helper) is executing this strand's front task.
  struct Strand {
    std::deque<std::function<void()>> q;
    bool owned = false;
  };

  void Enqueue(Task task);
  void WorkerLoop(size_t self);
  // Pops the next task from `self`'s own deques honoring lane weights.
  bool PopLocal(size_t self, Task* out);
  // Steal pass per the configured policy. False when nothing was taken.
  bool Steal(size_t self, Task* out);
  bool StealScan(size_t self, bool locality_pass, Task* out);
  // Finds and removes an unclaimed task of `group` from any deque.
  bool PopGroupTask(TaskGroup* group, Task* out);
  void RunTask(Task& task, size_t executor, bool inline_help);
  void FinishGroupTask(TaskGroup* group);
  // Runs at most one queued strand task if the strand is unowned. Returns
  // false when the strand is idle (or owned by someone else and `wait` is
  // false). Used by both the worker pump and WaitSerial.
  void PumpStrand(const std::string& key, bool from_worker);

  // Wakes one sleeping worker able to reach a task homed at `home` (the
  // home worker itself under kPinned; any sleeper otherwise, preferring
  // home). No-op when every worker is awake — they rescan before parking.
  void WakeOne(size_t home);

  TaskRuntimeOptions options_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::atomic<uint64_t> next_home_{0};
  std::atomic<size_t> queued_{0};
  // Tasks pushed to a deque but not yet popped by anyone. A worker whose
  // scan came up empty rechecks this under sleep_mu_ before parking, which
  // closes the push-vs-park race without waking already-busy workers.
  std::atomic<uint64_t> unclaimed_{0};
  std::atomic<bool> stop_{false};

  std::mutex sleep_mu_;

  std::mutex strands_mu_;
  std::condition_variable strand_cv_;
  std::unordered_map<std::string, Strand> strands_;  // guarded by strands_mu_

  // Stats (relaxed atomics; snapshotted by Stats()).
  std::atomic<uint64_t> stat_tasks_[kNumTaskLanes] = {};
  std::atomic<uint64_t> stat_busy_ns_[kNumTaskLanes] = {};
  std::atomic<uint64_t> stat_steals_{0};
  std::atomic<uint64_t> stat_affine_tasks_{0};
  std::atomic<uint64_t> stat_affine_hits_{0};
  std::atomic<uint64_t> stat_inline_{0};
  std::atomic<uint64_t> stat_strand_tasks_{0};
  std::atomic<uint64_t> stat_queue_peak_{0};
};

}  // namespace grapple

#endif  // GRAPPLE_SRC_SUPPORT_TASK_RUNTIME_H_
