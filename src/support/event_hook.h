// Process-wide structured-event hook: the support layer's half of the
// flight recorder (DESIGN.md §12).
//
// Low-level code (byte_io retries, fault injection, the budget arbiter)
// sits below src/obs in the link order, so it cannot call the event log
// directly. Instead it emits through an installable sink function pointer:
// when no sink is installed (unit tests, tools that never touch obs), Emit
// is a single relaxed atomic load and a branch. src/obs/event_log installs
// itself as the sink at first use, after which every Emit lands in the
// per-thread flight-recorder rings.
//
// The same indirection carries the crash-flush hook: fault-injection
// `_exit` paths and GRAPPLE_CHECK aborts call RunCrashFlushHook() so the
// recorder can spill `flightrec.bin` before the process dies. The hook must
// be async-signal-ish: no locks it could self-deadlock on, no allocation on
// the failure path beyond what the dump itself needs.
#ifndef GRAPPLE_SRC_SUPPORT_EVENT_HOOK_H_
#define GRAPPLE_SRC_SUPPORT_EVENT_HOOK_H_

#include <atomic>
#include <cstdint>

namespace grapple {
namespace evt {

// Stable binary event-type ids. These values are written verbatim into
// flightrec.bin records — append new types, never renumber existing ones.
enum Type : uint16_t {
  kNone = 0,
  kRunStart = 1,          // a1 = partition count
  kRunEnd = 2,            // a1 = pairs processed
  kPairStart = 3,         // a1 = partition i, a2 = partition j
  kPairEnd = 4,           // a1 = partition i, a2 = partition j
  kPartitionLoad = 5,     // a1 = partition index, a2 = bytes
  kPartitionEvict = 6,    // a1 = cached bytes released
  kPartitionSpill = 7,    // a1 = partition index, a2 = bytes (a0: 1 = append)
  kPartitionSplit = 8,    // a1 = partition index, a2 = pieces
  kPrefetchHit = 9,       // a1 = bytes served from cache
  kPrefetchWaste = 10,    // a1 = bytes fetched but never used
  kArbiterAcquire = 11,   // a1 = lease bytes
  kArbiterBorrow = 12,    // a1 = extra bytes granted
  kArbiterWait = 13,      // a1 = requested bytes (emitted when Acquire blocks)
  kCheckpointPublish = 14,  // a1 = manifest bytes
  kIoRetry = 15,          // a1 = attempt number, a2 = (const char*) op name
  kFaultInjected = 16,    // a1 = action kind, a2 = (const char*) target name
  kCheckerStart = 17,     // a1 = interned checker-name id
  kCheckerDone = 18,      // a1 = interned checker-name id, a2 = report count
  kCheckerDegraded = 19,  // a1 = interned checker-name id
  kWitnessDecode = 20,    // a1 = decode wall time (ns)
  kCrashExit = 21,        // a2 = (const char*) crash-point name
  kWaitBegin = 22,        // a1 = wait kind (WaitKind below)
  kWaitEnd = 23,          // a1 = wait kind (WaitKind below)
};

// Wait kinds carried in kWaitBegin/kWaitEnd `a1`. Stable binary values:
// they are written into flightrec.bin and profile.bin records. The arbiter
// has no kWaitBegin emit of its own — kArbiterWait/kArbiterAcquire already
// bracket a blocking Acquire, and the profiler maps those onto kArbiter.
enum WaitKind : uint64_t {
  kWaitNone = 0,
  kWaitArbiter = 1,    // BudgetArbiter::Acquire blocked on budget
  kWaitIoBarrier = 2,  // PartitionStore::Sync() draining the I/O strands
  kWaitIoQueue = 3,    // Load() waiting on a pending prefetch/write
  kWaitSolve = 4,      // simulated out-of-process solve block
  kWaitTask = 5,       // task-runtime join/strand wait (TaskGroup::Wait,
                       // TaskRuntime::WaitSerial) blocked on a worker
};

// Sink signature. For kIoRetry / kFaultInjected / kCrashExit, `a2` carries a
// pointer to a string with static storage duration (crash-point names and op
// names are literals); the sink interns it immediately.
using Sink = void (*)(uint16_t type, uint32_t a0, uint64_t a1, uint64_t a2);

// Observer signature: a second, independent tap on the same event stream.
// The sampling profiler installs one to track per-thread wait state
// (DESIGN.md §13) without the flight recorder and the profiler having to
// know about each other. Same static-string contract as Sink.
using Observer = Sink;

namespace internal {
extern std::atomic<Sink> g_sink;
extern std::atomic<Observer> g_observer;
}  // namespace internal

// Installs (or clears, with nullptr) the process-wide sink.
void SetSink(Sink sink);

// Installs (or clears, with nullptr) the process-wide observer.
void SetObserver(Observer observer);

// Emits one event; near-free when neither sink nor observer is installed.
inline void Emit(uint16_t type, uint64_t a1 = 0, uint64_t a2 = 0, uint32_t a0 = 0) {
  Sink sink = internal::g_sink.load(std::memory_order_acquire);
  if (sink != nullptr) {
    sink(type, a0, a1, a2);
  }
  Observer observer = internal::g_observer.load(std::memory_order_acquire);
  if (observer != nullptr) {
    observer(type, a0, a1, a2);
  }
}

// Crash-flush hook: invoked on simulated-kill `_exit` paths and fatal-check
// aborts, before the process dies. At most one hook; last install wins.
using FlushHook = void (*)();
void SetCrashFlushHook(FlushHook hook);
// Runs the installed hook once per call site; safe to call with none set.
void RunCrashFlushHook();

}  // namespace evt
}  // namespace grapple

#endif  // GRAPPLE_SRC_SUPPORT_EVENT_HOOK_H_
