// Minimal blocking HTTP/1.0 listener for the live introspection endpoint
// (DESIGN.md §12). Deliberately tiny: one accept loop on a background
// thread, one request per connection, `Connection: close` on every
// response. That is all /statusz-style scrape traffic needs, and it keeps
// the support layer free of any real HTTP dependency.
//
//   SocketServer server;
//   std::string error;
//   server.Start(0, [](const HttpRequest& req) {            // port 0 = ephemeral
//     HttpResponse resp;
//     resp.body = "ok\n";
//     return resp;
//   }, &error);
//   ... scrape http://127.0.0.1:<server.port()>/ ...
//   server.Stop();
//
// Binds 127.0.0.1 only — introspection is host-local by design; fronting it
// with auth/TLS is a reverse proxy's job, not this class's.
#ifndef GRAPPLE_SRC_SUPPORT_SOCKET_SERVER_H_
#define GRAPPLE_SRC_SUPPORT_SOCKET_SERVER_H_

#include <atomic>
#include <functional>
#include <string>
#include <thread>

namespace grapple {

struct HttpRequest {
  std::string method;  // "GET", "HEAD", ...
  std::string path;    // "/statusz" (no query string)
  std::string query;   // "name=rss_bytes" (text after '?', may be empty)
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

class SocketServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  SocketServer() = default;
  ~SocketServer();

  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  // Binds 127.0.0.1:`port` (0 picks an ephemeral port; read it back via
  // port()) and serves `handler` on a background thread. Returns false and
  // sets *error when the bind fails or the server is already running. The
  // handler runs on the serving thread and must be thread-safe with respect
  // to whatever state it reads.
  bool Start(int port, Handler handler, std::string* error);

  // Stops the serving thread and closes the listening socket. Idempotent;
  // blocks until the thread has joined, so the handler is never invoked
  // after Stop() returns.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  // Bound port; 0 when not running.
  int port() const { return port_.load(std::memory_order_acquire); }

 private:
  void Serve();
  void HandleConnection(int fd);

  Handler handler_;
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<int> port_{0};
  int listen_fd_ = -1;
  int wake_fds_[2] = {-1, -1};  // self-pipe: Stop() wakes the poll loop
};

}  // namespace grapple

#endif  // GRAPPLE_SRC_SUPPORT_SOCKET_SERVER_H_
