// Minimal HTTP/1.0 listener for loopback service traffic: the live
// introspection endpoint (DESIGN.md §12) and the grappled analysis daemon
// (DESIGN.md §15). Deliberately tiny — one accept loop feeding a small pool
// of handler threads, one request per connection, `Connection: close` on
// every response. That covers /statusz-style scrapes and grappled's check
// requests without pulling in a real HTTP dependency.
//
//   SocketServer server;
//   std::string error;
//   server.Start(0, [](const HttpRequest& req) {            // port 0 = ephemeral
//     HttpResponse resp;
//     resp.body = "ok\n";
//     return resp;
//   }, &error);
//   ... scrape http://127.0.0.1:<server.port()>/ ...
//   server.Stop();
//
// Connections are accepted into a backlog and dispatched to `handler_threads`
// workers, so a request that arrives while a long render (e.g. /tracez) is
// in flight waits its turn instead of observing a connection reset. POST
// bodies up to kMaxBodyBytes are read per Content-Length into
// HttpRequest::body.
//
// Binds 127.0.0.1 only — the service surface is host-local by design;
// fronting it with auth/TLS is a reverse proxy's job, not this class's.
#ifndef GRAPPLE_SRC_SUPPORT_SOCKET_SERVER_H_
#define GRAPPLE_SRC_SUPPORT_SOCKET_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace grapple {

struct HttpRequest {
  std::string method;  // "GET", "POST", ...
  std::string path;    // "/statusz" (no query string)
  std::string query;   // "name=rss_bytes" (text after '?', may be empty)
  std::string body;    // request body per Content-Length (may be empty)
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

class SocketServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  // Largest accepted request body; larger requests get a 400. Grapple IR
  // subjects are text and comfortably under this.
  static constexpr size_t kMaxBodyBytes = size_t{16} << 20;

  SocketServer() = default;
  ~SocketServer();

  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  // Binds 127.0.0.1:`port` (0 picks an ephemeral port; read it back via
  // port()) and serves `handler` on `handler_threads` background threads
  // (clamped to [1, 64]). Returns false and sets *error when the bind fails
  // or the server is already running. The handler runs concurrently on the
  // serving threads and must be thread-safe with respect to whatever state
  // it reads.
  bool Start(int port, Handler handler, std::string* error, size_t handler_threads = 4);

  // Stops the accept loop and handler pool and closes the listening socket.
  // Idempotent; blocks until every thread has joined, so the handler is
  // never invoked after Stop() returns. Connections still queued when Stop
  // is called are closed unanswered.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  // Bound port; 0 when not running.
  int port() const { return port_.load(std::memory_order_acquire); }

 private:
  void Serve();
  void HandlerLoop();
  void HandleConnection(int fd);

  Handler handler_;
  std::thread accept_thread_;
  std::vector<std::thread> handler_threads_;
  std::atomic<bool> running_{false};
  std::atomic<int> port_{0};
  int listen_fd_ = -1;
  int wake_fds_[2] = {-1, -1};  // self-pipe: Stop() wakes the poll loop

  // Accepted connections waiting for a handler thread.
  std::mutex conns_mu_;
  std::condition_variable conns_cv_;
  std::deque<int> pending_conns_;  // guarded by conns_mu_
};

}  // namespace grapple

#endif  // GRAPPLE_SRC_SUPPORT_SOCKET_SERVER_H_
