// Binary serialization helpers used by the on-disk partition format.
//
// Edge records are variable-length (the interval-sequence path encoding is
// inlined into the record per §4.3 of the paper), so everything here is
// byte-vector oriented: append to a std::vector<uint8_t>, read back with a
// cursor. Varints keep small CFET node IDs at 1-2 bytes.
#ifndef GRAPPLE_SRC_SUPPORT_BYTE_IO_H_
#define GRAPPLE_SRC_SUPPORT_BYTE_IO_H_

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace grapple {

// Unrecoverable I/O failure after retries are exhausted. The file helpers
// below report errors via bool + message; layers that cannot continue in
// place (partition store, engine) rethrow the message as IoError so the
// core facade can isolate the failing checker instead of aborting the
// whole process.
class IoError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// Retry policy for transient I/O failures (EINTR/EAGAIN, short writes,
// short reads, injected faults): up to `max_retries` additional attempts,
// exponential backoff starting at `backoff_base_us` with deterministic
// jitter drawn from a splitmix64 stream seeded by `jitter_seed`.
// `backoff_base_us = 0` disables sleeping (tests). Installed process-wide
// by GrappleOptions::Robustness (GRAPPLE_IO_RETRIES / GRAPPLE_IO_BACKOFF_US
// override).
struct IoRetryPolicy {
  uint32_t max_retries = 4;
  uint32_t backoff_base_us = 50;
  uint64_t jitter_seed = 0x9E3779B97F4A7C15ULL;
};

void SetIoRetryPolicy(const IoRetryPolicy& policy);
IoRetryPolicy GetIoRetryPolicy();

// Process-wide count of retried I/O attempts, exported as the io_retries
// gauge by the engine.
uint64_t IoRetriesTotal();

// Appends an unsigned LEB128 varint.
void PutVarint64(std::vector<uint8_t>* out, uint64_t value);

// Appends a zigzag-encoded signed varint.
void PutVarintSigned64(std::vector<uint8_t>* out, int64_t value);

// Appends a fixed-width little-endian u32/u64.
void PutFixed32(std::vector<uint8_t>* out, uint32_t value);
void PutFixed64(std::vector<uint8_t>* out, uint64_t value);

// Sequential reader over a byte span. All Get* methods check bounds and
// report failure via ok(); after a failed read the cursor is poisoned.
class ByteReader {
 public:
  ByteReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  explicit ByteReader(const std::vector<uint8_t>& bytes)
      : ByteReader(bytes.data(), bytes.size()) {}

  bool ok() const { return ok_; }
  size_t position() const { return pos_; }
  size_t remaining() const { return ok_ ? size_ - pos_ : 0; }
  bool AtEnd() const { return pos_ >= size_; }

  uint64_t GetVarint64();
  int64_t GetVarintSigned64();
  uint32_t GetFixed32();
  uint64_t GetFixed64();
  // Copies `n` raw bytes; returns false (and poisons) on underrun.
  bool GetRaw(uint8_t* out, size_t n);
  // Advances without copying.
  bool Skip(size_t n);

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
  bool ok_ = true;
};

// Whole-file helpers (binary). Return false on I/O errors; when `error` is
// non-null it receives a message naming the operation and the file.
// Transient failures retry per the installed IoRetryPolicy; all of them
// consult the fault-injection shim once per attempt.
bool WriteFileBytes(const std::string& path, const std::vector<uint8_t>& bytes,
                    std::string* error = nullptr);
bool AppendFileBytes(const std::string& path, const std::vector<uint8_t>& bytes,
                     std::string* error = nullptr);
bool ReadFileBytes(const std::string& path, std::vector<uint8_t>* bytes,
                   std::string* error = nullptr);
// Truncates (or extends with zeros) to exactly `size` bytes. Recovery uses
// this to drop partition bytes written past the last checkpoint manifest.
bool TruncateFile(const std::string& path, uint64_t size, std::string* error = nullptr);
// fsync() the file contents (not the containing directory).
bool SyncFile(const std::string& path, std::string* error = nullptr);
// rename(2); atomic within a filesystem. The manifest publish step.
bool RenameFile(const std::string& from, const std::string& to, std::string* error = nullptr);
bool FileExists(const std::string& path);
int64_t FileSizeBytes(const std::string& path);
bool RemoveFile(const std::string& path);

// Creates a unique scratch directory under the system temp dir and removes it
// (recursively) on destruction. Used for partition spill files in tests and
// benchmarks.
class TempDir {
 public:
  // `tag` becomes part of the directory name for debuggability.
  explicit TempDir(const std::string& tag = "grapple");
  ~TempDir();

  TempDir(const TempDir&) = delete;
  TempDir& operator=(const TempDir&) = delete;

  const std::string& path() const { return path_; }
  std::string File(const std::string& name) const { return path_ + "/" + name; }

 private:
  std::string path_;
};

}  // namespace grapple

#endif  // GRAPPLE_SRC_SUPPORT_BYTE_IO_H_
