// Text format for FSM property specifications, so new checkers can be
// defined without recompiling (used by examples/analyze_file --fsm).
//
// Format (line-oriented; '#' starts a comment):
//
//   fsm io
//   types FileWriter FileReader
//   state Init accept initial
//   state Open
//   state Closed accept
//   event Init open Open          # from-state, event-name, to-state
//   event Open write Open
//   event Open close Closed
//
// The first `state` line is the initial state unless another carries
// `initial`. Undefined (state, event) pairs are erroneous, exactly as with
// the built-in checkers (checker.h completes the FSM with an error sink).
#ifndef GRAPPLE_SRC_CHECKER_FSM_PARSER_H_
#define GRAPPLE_SRC_CHECKER_FSM_PARSER_H_

#include <string>

#include "src/checker/fsm.h"

namespace grapple {

struct FsmParseResult {
  bool ok = false;
  std::string error;  // "line N: message" when !ok
  FsmSpec spec{Fsm("invalid"), {}};
};

FsmParseResult ParseFsmSpec(const std::string& text);

// Renders a spec back to the text format (round-trips through ParseFsmSpec).
std::string FsmSpecToString(const FsmSpec& spec);

}  // namespace grapple

#endif  // GRAPPLE_SRC_CHECKER_FSM_PARSER_H_
