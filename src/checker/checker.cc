#include "src/checker/checker.h"

#include <algorithm>
#include <memory>
#include <set>
#include <sstream>
#include <tuple>
#include <unordered_map>

#include "src/pathenc/witness_decoder.h"
#include "src/support/event_hook.h"
#include "src/support/logging.h"
#include "src/support/timer.h"

namespace grapple {

Fsm CompleteFsm(const Fsm& fsm) {
  Fsm completed = fsm;
  FsmStateId error = completed.AddState("ERROR", /*accepting=*/false);
  completed.SetError(error);
  for (FsmStateId q = 0; q < error; ++q) {
    for (FsmEventId e = 0; e < completed.NumEvents(); ++e) {
      if (!completed.Next(q, e).has_value()) {
        completed.AddTransition(q, e, error);
      }
    }
  }
  return completed;
}

std::string BugReport::ToString() const {
  std::ostringstream out;
  out << "[" << checker << "] ";
  if (kind == Kind::kErroneousEvent) {
    out << "erroneous event '" << event << "'";
    if (event_line >= 0) {
      out << " (line " << event_line << ")";
    }
    out << " in state " << state;
  } else {
    out << "object may end in non-accepting state " << state;
  }
  out << " on object " << object_desc;
  if (alloc_line >= 0) {
    out << " allocated at line " << alloc_line;
  }
  if (!constraint.empty() && constraint != "true") {
    out << " [path: " << constraint << "]";
  }
  return out.str();
}

std::vector<BugReport> ExtractReports(const std::string& checker_name, const Fsm& fsm,
                                      const TypestateLabels& labels, const TypestateGraph& ts,
                                      const AliasGraph& alias_graph, GraphEngine* engine,
                                      IntervalOracle* oracle, obs::WitnessMode witness_mode) {
  // Reverse map: label -> state id.
  std::unordered_map<Label, FsmStateId> state_of_label;
  for (size_t q = 0; q < labels.state.size(); ++q) {
    state_of_label[labels.state[q]] = static_cast<FsmStateId>(q);
  }
  // Seed vertex -> tracked position for attribution.
  std::unordered_map<VertexId, uint32_t> seed_to_pos;
  for (uint32_t pos = 0; pos < ts.tracked().size(); ++pos) {
    seed_to_pos[ts.SeedOf(pos)] = pos;
  }

  std::vector<BugReport> reports;
  // Dedup keys use the allocation *statement* (not the occurrence): bounded
  // loop unrolling and CFET branch duplication give one textual allocation
  // many tracked occurrences, which would otherwise repeat every warning.
  std::set<std::tuple<const Stmt*, const Stmt*, FsmStateId>> seen_events;
  std::set<std::pair<const Stmt*, FsmStateId>> seen_exits;

  // Witness decoding: lazily index the engine's provenance log and walk
  // derivation chains for the violating edges. The violating edge's content
  // hash (the provenance key) is recomputed from the same fields the engine
  // hashed when it recorded the edge.
  std::unique_ptr<obs::ProvenanceReader> prov_reader;
  std::unique_ptr<WitnessDecoder> witness_decoder;
  // Degradation marker: when non-empty, witnesses could not (or might not)
  // be decoded for the reason given; reports carry it as `witness_error`
  // instead of silently lacking a witness.
  std::string witness_unavailable;
  if (engine->has_provenance() && witness_mode != obs::WitnessMode::kOff) {
    auto reader = std::make_unique<obs::ProvenanceReader>();
    bool clean = reader->Open(engine->provenance_path());
    if (clean || reader->NumRecords() > 0) {
      if (!clean) {
        witness_unavailable = "witness_unavailable: provenance log " +
                              engine->provenance_path() +
                              " is corrupt past a readable prefix";
        GRAPPLE_LOG(WARNING) << witness_unavailable;
      }
      prov_reader = std::move(reader);
      WitnessDecoder::Options wopts;
      wopts.replay_steps = witness_mode == obs::WitnessMode::kFull;
      witness_decoder =
          std::make_unique<WitnessDecoder>(&alias_graph.icfet(), prov_reader.get(), wopts);
    } else {
      witness_unavailable = "witness_unavailable: provenance log " +
                            engine->provenance_path() + " is missing or corrupt";
      GRAPPLE_LOG(WARNING) << witness_unavailable;
    }
  }

  auto make_base_report = [&](uint32_t pos) {
    const TrackedObject& obj = alias_graph.objects()[ts.tracked()[pos]];
    BugReport report;
    report.checker = checker_name;
    report.object_index = ts.tracked()[pos];
    report.object_desc = alias_graph.DescribeVertex(obj.object_vertex);
    report.type = obj.type;
    report.alloc_line = obj.alloc_stmt->source_line;
    return report;
  };

  // Pass 1: gather the seed-originating state edges (a small fraction of the
  // final graph). Pre-states at event in-vertices are needed to attribute an
  // error edge at the out-vertex to the state the object was in.
  struct StateFact {
    uint32_t pos;
    VertexId dst;
    FsmStateId state;
    std::vector<uint8_t> payload;
  };
  std::vector<StateFact> facts;
  std::unordered_map<VertexId, std::vector<FsmStateId>> states_at;
  engine->ForEachEdge([&](const EdgeRecord& edge) {
    auto lit = state_of_label.find(edge.label);
    if (lit == state_of_label.end()) {
      return;
    }
    auto sit = seed_to_pos.find(edge.src);
    if (sit == seed_to_pos.end()) {
      return;
    }
    facts.push_back({sit->second, edge.dst, lit->second, edge.payload});
    states_at[edge.dst].push_back(lit->second);
  });

  auto attach_witness = [&](BugReport* report, const StateFact& fact) {
    if (witness_decoder == nullptr) {
      report->witness_error = witness_unavailable;
      return;
    }
    WallTimer timer;
    uint64_t hash = EdgeContentHash(ts.SeedOf(fact.pos), fact.dst, labels.state[fact.state],
                                    fact.payload.data(), fact.payload.size());
    DerivationChain chain = witness_decoder->Decode(hash);
    if (chain.empty()) {
      report->witness_error =
          witness_unavailable.empty()
              ? "witness_unavailable: no derivation record for the violating edge"
              : witness_unavailable;
      return;
    }
    report->witness = BuildWitness(chain, fsm, labels, ts);
    report->has_witness = !report->witness.empty();
    uint64_t decode_nanos = timer.ElapsedNanos();
    engine->ObserveWitnessDecode(decode_nanos);
    evt::Emit(evt::kWitnessDecode, decode_nanos);
  };

  // Pass 2: classify.
  for (const auto& fact : facts) {
    const TsVertexInfo& dst = ts.vertex_info()[fact.dst];
    if (fsm.IsError(fact.state)) {
      if (dst.kind != TsVertexInfo::Kind::kEventOut) {
        continue;
      }
      // The in-vertex is allocated immediately before the out-vertex (see
      // TypestateGraph::Walker::EventVerticesFor).
      VertexId in_vertex = fact.dst - 1;
      auto event = fsm.FindEvent(dst.stmt->event);
      // The pre-states that make this event erroneous.
      std::vector<FsmStateId> pre_states;
      auto it = states_at.find(in_vertex);
      if (it != states_at.end() && event.has_value()) {
        for (FsmStateId q : it->second) {
          if (fsm.Next(q, *event) == fsm.error_state()) {
            pre_states.push_back(q);
          }
        }
      }
      if (pre_states.empty()) {
        pre_states.push_back(fact.state);  // fallback: report the sink
      }
      const Stmt* alloc_stmt = alias_graph.objects()[ts.tracked()[fact.pos]].alloc_stmt;
      for (FsmStateId q : pre_states) {
        if (!seen_events.insert({alloc_stmt, dst.stmt, q}).second) {
          continue;
        }
        BugReport report = make_base_report(fact.pos);
        report.kind = BugReport::Kind::kErroneousEvent;
        report.event = dst.stmt->event;
        report.event_line = dst.stmt->source_line;
        report.state = fsm.StateName(q);
        report.constraint =
            oracle->DecodePayload(fact.payload.data(), fact.payload.size()).ToString();
        ByteReader reader(fact.payload.data(), fact.payload.size());
        report.witness_path = PathEncoding::Deserialize(&reader).ToString();
        attach_witness(&report, fact);
        reports.push_back(std::move(report));
      }
      continue;
    }
    if (dst.kind == TsVertexInfo::Kind::kExit && !fsm.IsAccepting(fact.state)) {
      const Stmt* alloc_stmt = alias_graph.objects()[ts.tracked()[fact.pos]].alloc_stmt;
      if (!seen_exits.insert({alloc_stmt, fact.state}).second) {
        continue;
      }
      BugReport report = make_base_report(fact.pos);
      report.kind = BugReport::Kind::kBadExitState;
      report.state = fsm.StateName(fact.state);
      report.constraint =
          oracle->DecodePayload(fact.payload.data(), fact.payload.size()).ToString();
      ByteReader reader(fact.payload.data(), fact.payload.size());
      report.witness_path = PathEncoding::Deserialize(&reader).ToString();
      attach_witness(&report, fact);
      reports.push_back(std::move(report));
    }
  }
  // Deterministic order regardless of thread count / partition layout: edge
  // iteration order varies with how partitions split, so sort by subject and
  // site before anything (goldens, report diffs, JSON) consumes the list.
  auto sort_key = [](const BugReport& r) {
    return std::make_tuple(r.alloc_line, r.object_desc, static_cast<int>(r.kind), r.event_line,
                           r.event, r.state);
  };
  std::stable_sort(reports.begin(), reports.end(),
                   [&](const BugReport& a, const BugReport& b) { return sort_key(a) < sort_key(b); });
  return reports;
}

}  // namespace grapple
