// Finite-state-machine property specifications.
//
// An FSM describes the legal lifecycle of objects of some set of types
// (Figure 2/3a of the paper): states, an initial state, accepting states
// (legal states for an object to be in when the program exits), and labelled
// transitions. Two kinds of violation exist:
//   * an event fires in a state with no transition for it (or a transition
//     into an explicit error state) — an "erroneous event", and
//   * the program can exit while the object is in a non-accepting state —
//     e.g. an opened-but-never-closed resource.
#ifndef GRAPPLE_SRC_CHECKER_FSM_H_
#define GRAPPLE_SRC_CHECKER_FSM_H_

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace grapple {

using FsmStateId = uint16_t;
using FsmEventId = uint16_t;

inline constexpr FsmStateId kNoFsmState = 0xFFFF;

class Fsm {
 public:
  explicit Fsm(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  FsmStateId AddState(const std::string& state_name, bool accepting);
  FsmEventId AddEvent(const std::string& event_name);
  void SetInitial(FsmStateId state) { initial_ = state; }
  // Marks a state as the explicit error sink; reaching it is a violation
  // even before program exit.
  void SetError(FsmStateId state) { error_ = state; }
  void AddTransition(FsmStateId from, FsmEventId event, FsmStateId to);

  FsmStateId initial() const { return initial_; }
  FsmStateId error_state() const { return error_; }
  size_t NumStates() const { return state_names_.size(); }
  size_t NumEvents() const { return event_names_.size(); }
  bool IsAccepting(FsmStateId state) const { return accepting_[state] != 0; }
  bool IsError(FsmStateId state) const { return state == error_ && error_ != kNoFsmState; }
  const std::string& StateName(FsmStateId state) const { return state_names_[state]; }
  const std::string& EventName(FsmEventId event) const { return event_names_[event]; }
  std::optional<FsmEventId> FindEvent(const std::string& event_name) const;

  // The target state, or nullopt when the event is undefined in `from`
  // (an implicit violation).
  std::optional<FsmStateId> Next(FsmStateId from, FsmEventId event) const;

 private:
  std::string name_;
  std::vector<std::string> state_names_;
  std::vector<std::string> event_names_;
  std::vector<uint8_t> accepting_;
  std::unordered_map<std::string, FsmEventId> event_by_name_;
  std::unordered_map<uint32_t, FsmStateId> transitions_;  // (from<<16|event) -> to
  FsmStateId initial_ = kNoFsmState;
  FsmStateId error_ = kNoFsmState;
};

// The binding of an FSM to the object types it governs.
struct FsmSpec {
  Fsm fsm;
  // Object type names whose instances this FSM tracks.
  std::vector<std::string> tracked_types;
};

}  // namespace grapple

#endif  // GRAPPLE_SRC_CHECKER_FSM_H_
