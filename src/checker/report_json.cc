#include "src/checker/report_json.h"

#include <cstdio>
#include <sstream>

namespace grapple {

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 8);
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string ReportToJson(const BugReport& report) {
  std::ostringstream out;
  out << "{";
  out << "\"checker\":\"" << JsonEscape(report.checker) << "\",";
  out << "\"kind\":\""
      << (report.kind == BugReport::Kind::kErroneousEvent ? "erroneous_event"
                                                          : "bad_exit_state")
      << "\",";
  out << "\"object\":\"" << JsonEscape(report.object_desc) << "\",";
  out << "\"type\":\"" << JsonEscape(report.type) << "\",";
  out << "\"alloc_line\":" << report.alloc_line << ",";
  if (report.kind == BugReport::Kind::kErroneousEvent) {
    out << "\"event\":\"" << JsonEscape(report.event) << "\",";
    out << "\"event_line\":" << report.event_line << ",";
  }
  out << "\"state\":\"" << JsonEscape(report.state) << "\",";
  out << "\"constraint\":\"" << JsonEscape(report.constraint) << "\",";
  out << "\"witness_path\":\"" << JsonEscape(report.witness_path) << "\"";
  out << "}";
  return out.str();
}

std::string ReportsToJson(const std::vector<BugReport>& reports) {
  std::ostringstream out;
  out << "[";
  for (size_t i = 0; i < reports.size(); ++i) {
    if (i > 0) {
      out << ",";
    }
    out << "\n  " << ReportToJson(reports[i]);
  }
  out << "\n]";
  return out.str();
}

}  // namespace grapple
