#include "src/checker/report_json.h"

#include <sstream>

#include "src/obs/json.h"

namespace grapple {

std::string JsonEscape(const std::string& text) { return obs::JsonEscapeString(text); }

std::string ReportToJson(const BugReport& report) {
  obs::JsonWriter w;
  w.BeginObject();
  w.Key("checker").String(report.checker);
  w.Key("kind").String(report.kind == BugReport::Kind::kErroneousEvent ? "erroneous_event"
                                                                       : "bad_exit_state");
  w.Key("object").String(report.object_desc);
  w.Key("type").String(report.type);
  w.Key("alloc_line").Int(report.alloc_line);
  if (report.kind == BugReport::Kind::kErroneousEvent) {
    w.Key("event").String(report.event);
    w.Key("event_line").Int(report.event_line);
  }
  w.Key("state").String(report.state);
  w.Key("constraint").String(report.constraint);
  w.Key("witness_path").String(report.witness_path);
  w.EndObject();
  return w.Take();
}

std::string ReportsToJson(const std::vector<BugReport>& reports) {
  // One report per line: still valid JSON, still readable in a terminal.
  std::ostringstream out;
  out << "[";
  for (size_t i = 0; i < reports.size(); ++i) {
    if (i > 0) {
      out << ",";
    }
    out << "\n  " << ReportToJson(reports[i]);
  }
  out << "\n]";
  return out.str();
}

}  // namespace grapple
