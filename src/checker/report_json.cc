#include "src/checker/report_json.h"

#include <sstream>

#include "src/obs/json.h"

namespace grapple {

std::string JsonEscape(const std::string& text) { return obs::JsonEscapeString(text); }

std::string ReportToJson(const BugReport& report) {
  obs::JsonWriter w;
  w.BeginObject();
  w.Key("checker").String(report.checker);
  w.Key("kind").String(report.kind == BugReport::Kind::kErroneousEvent ? "erroneous_event"
                                                                       : "bad_exit_state");
  w.Key("object").String(report.object_desc);
  w.Key("type").String(report.type);
  w.Key("alloc_line").Int(report.alloc_line);
  if (report.kind == BugReport::Kind::kErroneousEvent) {
    w.Key("event").String(report.event);
    w.Key("event_line").Int(report.event_line);
  }
  w.Key("state").String(report.state);
  w.Key("constraint").String(report.constraint);
  w.Key("witness_path").String(report.witness_path);
  if (!report.witness_error.empty()) {
    w.Key("witness_error").String(report.witness_error);
  }
  if (report.has_witness) {
    const Witness& witness = report.witness;
    w.Key("witness");
    w.BeginObject();
    w.Key("complete").Bool(witness.complete);
    w.Key("truncated").Bool(witness.truncated);
    w.Key("final_constraint").String(witness.final_constraint);
    w.Key("final_replay").String(witness.final_replay);
    // decode_nanos is deliberately not serialized: report JSON is a
    // deterministic artifact (byte-identical across reruns and scheduling
    // modes); decode timing lives in the "witness_decode_ns" histogram.
    w.Key("steps");
    w.BeginArray();
    for (const WitnessStep& step : witness.steps) {
      w.BeginObject();
      switch (step.kind) {
        case WitnessStep::Kind::kAlloc:
          w.Key("kind").String("alloc");
          break;
        case WitnessStep::Kind::kEvent:
          w.Key("kind").String("event");
          break;
        case WitnessStep::Kind::kFlow:
          w.Key("kind").String("flow");
          break;
      }
      if (step.kind != WitnessStep::Kind::kAlloc) {
        w.Key("from_state").String(step.from_state);
      }
      w.Key("to_state").String(step.to_state);
      if (step.kind == WitnessStep::Kind::kEvent) {
        w.Key("event").String(step.event);
      }
      w.Key("line").Int(step.source_line);
      w.Key("point").String(step.point);
      w.Key("clone").UInt(step.clone);
      w.Key("icfet_node").UInt(step.icfet_node);
      w.Key("constraint").String(step.constraint);
      if (!step.replay.empty()) {
        w.Key("replay").String(step.replay);
      }
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
  }
  w.EndObject();
  return w.Take();
}

std::string ReportsToJson(const std::vector<BugReport>& reports) {
  // One report per line: still valid JSON, still readable in a terminal.
  std::ostringstream out;
  out << "[";
  for (size_t i = 0; i < reports.size(); ++i) {
    if (i > 0) {
      out << ",";
    }
    out << "\n  " << ReportToJson(reports[i]);
  }
  out << "\n]";
  return out.str();
}

}  // namespace grapple
