// JSON rendering of bug reports, for editor/CI integration
// (examples/analyze_file --json).
#ifndef GRAPPLE_SRC_CHECKER_REPORT_JSON_H_
#define GRAPPLE_SRC_CHECKER_REPORT_JSON_H_

#include <string>
#include <vector>

#include "src/checker/checker.h"

namespace grapple {

// Escapes a string for inclusion in a JSON string literal.
std::string JsonEscape(const std::string& text);

// One report as a JSON object.
std::string ReportToJson(const BugReport& report);

// An array of reports.
std::string ReportsToJson(const std::vector<BugReport>& reports);

}  // namespace grapple

#endif  // GRAPPLE_SRC_CHECKER_REPORT_JSON_H_
