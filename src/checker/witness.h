// Semantic bug witnesses: derivation chains interpreted against the FSM.
//
// The pathenc witness decoder yields raw derivation steps (edges, path
// encodings, constraints). This layer — which knows the property FSM, the
// typestate labels, and the per-vertex program coordinates — turns them
// into the ordered (statement, ICFET node, FSM transition, constraint
// decision) steps a human reads during triage: allocation first, each
// event/flow step with the state transition it performed and the path
// constraint that admitted it, the violation last.
#ifndef GRAPPLE_SRC_CHECKER_WITNESS_H_
#define GRAPPLE_SRC_CHECKER_WITNESS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/analysis/typestate_graph.h"
#include "src/checker/fsm.h"
#include "src/grammar/typestate_grammar.h"
#include "src/pathenc/witness_decoder.h"

namespace grapple {

struct WitnessStep {
  enum class Kind : uint8_t { kAlloc, kEvent, kFlow };

  Kind kind = Kind::kFlow;
  // FSM transition this step performed: from_state --event--> to_state.
  // Flow steps keep the state; the alloc step has no from-state.
  FsmStateId from_state_id = kNoFsmState;
  FsmStateId to_state_id = kNoFsmState;
  std::string from_state;
  std::string to_state;
  std::string event;  // kEvent only
  // Program coordinates of the point reached: source line, statement
  // description, and the ICFET (clone, node) pair.
  int32_t source_line = -1;
  std::string point;
  uint32_t clone = 0;
  uint32_t icfet_node = 0;
  // Path constraint established up to this step (pretty-printed), and —
  // when GRAPPLE_WITNESS=full replayed the step — the solver verdict.
  std::string constraint;
  std::string replay;

  std::string ToString() const;
};

struct Witness {
  // The derivation chain reached the base (allocation) record.
  bool complete = false;
  // The chain walk stopped early (missing record / step cap).
  bool truncated = false;
  std::vector<WitnessStep> steps;
  // The violating edge's full path constraint and the replayed SMT verdict
  // that established its feasibility ("sat" / "unknown").
  std::string final_constraint;
  std::string final_replay;
  uint64_t decode_nanos = 0;

  bool empty() const { return steps.empty(); }

  // Validates the step sequence against `fsm`: the first step allocates
  // into the initial state, every event transition is legal, flow steps
  // preserve the state, and the final state is a violation (error state or
  // non-accepting). On failure, `why` (if non-null) says which step broke.
  bool TypeChecks(const Fsm& fsm, std::string* why = nullptr) const;

  // Multi-line annotated trace for terminals (grapple-explain).
  std::string ToString() const;
};

// Interprets a raw derivation chain using the FSM, the grammar's label
// assignment, and the typestate graph's vertex map. Steps whose labels or
// vertices cannot be resolved mark the witness truncated but are kept.
Witness BuildWitness(const DerivationChain& chain, const Fsm& fsm, const TypestateLabels& labels,
                     const TypestateGraph& ts);

}  // namespace grapple

#endif  // GRAPPLE_SRC_CHECKER_WITNESS_H_
