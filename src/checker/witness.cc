#include "src/checker/witness.h"

#include <sstream>
#include <unordered_map>

namespace grapple {

namespace {

const char* PointName(TsVertexInfo::Kind kind) {
  switch (kind) {
    case TsVertexInfo::Kind::kSeed:
      return "seed";
    case TsVertexInfo::Kind::kEventIn:
      return "before event";
    case TsVertexInfo::Kind::kEventOut:
      return "event";
    case TsVertexInfo::Kind::kAllocOut:
      return "alloc";
    case TsVertexInfo::Kind::kExit:
      return "exit";
  }
  return "?";
}

}  // namespace

Witness BuildWitness(const DerivationChain& chain, const Fsm& fsm, const TypestateLabels& labels,
                     const TypestateGraph& ts) {
  Witness witness;
  witness.complete = chain.complete;
  witness.truncated = chain.truncated;
  witness.final_constraint = chain.final_constraint.ToString();
  witness.final_replay = SolveResultName(chain.final_replay);
  witness.decode_nanos = chain.decode_nanos;

  std::unordered_map<Label, FsmStateId> state_of_label;
  for (size_t q = 0; q < labels.state.size(); ++q) {
    state_of_label[labels.state[q]] = static_cast<FsmStateId>(q);
  }
  std::unordered_map<Label, FsmEventId> event_of_label;
  for (size_t e = 0; e < labels.event.size(); ++e) {
    event_of_label[labels.event[e]] = static_cast<FsmEventId>(e);
  }

  for (const DerivationStep& d : chain.steps) {
    WitnessStep step;
    // The derived spine edge carries the post-step FSM state.
    auto sit = state_of_label.find(d.edge.label);
    if (sit != state_of_label.end()) {
      step.to_state_id = sit->second;
      step.to_state = fsm.StateName(sit->second);
    } else {
      witness.truncated = true;
    }
    if (!witness.steps.empty()) {
      step.from_state_id = witness.steps.back().to_state_id;
      step.from_state = witness.steps.back().to_state;
    }
    if (d.kind == obs::ProvKind::kBase) {
      step.kind = WitnessStep::Kind::kAlloc;
    } else if (d.consumed.label == labels.flow) {
      step.kind = WitnessStep::Kind::kFlow;
    } else {
      auto eit = event_of_label.find(d.consumed.label);
      if (eit != event_of_label.end()) {
        step.kind = WitnessStep::Kind::kEvent;
        step.event = fsm.EventName(eit->second);
      } else {
        // Unary/mirror rewrite or an unmapped label: state-preserving.
        step.kind = WitnessStep::Kind::kFlow;
      }
    }
    if (d.edge.dst < ts.vertex_info().size()) {
      const TsVertexInfo& info = ts.vertex_info()[d.edge.dst];
      step.point = PointName(info.kind);
      step.clone = info.clone;
      step.icfet_node = info.node;
      if (info.stmt != nullptr) {
        step.source_line = info.stmt->source_line;
        if (!info.stmt->event.empty() && step.event.empty() &&
            step.kind != WitnessStep::Kind::kAlloc) {
          step.point = std::string(PointName(info.kind)) + " " + info.stmt->event;
        }
      }
    } else {
      witness.truncated = true;
    }
    step.constraint = d.constraint.ToString();
    if (d.replayed) {
      step.replay = SolveResultName(d.replay);
    }
    witness.steps.push_back(std::move(step));
  }
  return witness;
}

bool Witness::TypeChecks(const Fsm& fsm, std::string* why) const {
  auto fail = [&](const std::string& reason) {
    if (why != nullptr) {
      *why = reason;
    }
    return false;
  };
  if (steps.empty()) {
    return fail("witness has no steps");
  }
  if (steps.front().kind != WitnessStep::Kind::kAlloc) {
    return fail("witness does not start at the allocation");
  }
  if (steps.front().to_state_id != fsm.initial()) {
    return fail("allocation step does not enter the initial state");
  }
  FsmStateId state = steps.front().to_state_id;
  for (size_t i = 1; i < steps.size(); ++i) {
    const WitnessStep& step = steps[i];
    std::ostringstream at;
    at << "step " << (i + 1);
    if (step.from_state_id != state) {
      return fail(at.str() + " starts in state '" + step.from_state + "' but the chain is in '" +
                  fsm.StateName(state) + "'");
    }
    switch (step.kind) {
      case WitnessStep::Kind::kAlloc:
        return fail(at.str() + " re-allocates mid-chain");
      case WitnessStep::Kind::kFlow:
        if (step.to_state_id != state) {
          return fail(at.str() + " changes state on a flow edge");
        }
        break;
      case WitnessStep::Kind::kEvent: {
        auto event = fsm.FindEvent(step.event);
        if (!event.has_value()) {
          return fail(at.str() + " fires unknown event '" + step.event + "'");
        }
        auto next = fsm.Next(state, *event);
        if (!next.has_value() || *next != step.to_state_id) {
          return fail(at.str() + " takes an illegal transition '" + fsm.StateName(state) +
                      "' --" + step.event + "--> '" + step.to_state + "'");
        }
        break;
      }
    }
    state = step.to_state_id;
  }
  if (!fsm.IsError(state) && fsm.IsAccepting(state)) {
    return fail("witness ends in accepting state '" + fsm.StateName(state) + "'");
  }
  return true;
}

std::string WitnessStep::ToString() const {
  std::ostringstream out;
  switch (kind) {
    case Kind::kAlloc:
      out << "alloc";
      break;
    case Kind::kEvent:
      out << "event " << event;
      break;
    case Kind::kFlow:
      out << (point.empty() ? "flow" : point);
      break;
  }
  if (source_line >= 0) {
    out << " (line " << source_line << ")";
  }
  out << ": ";
  if (kind == Kind::kAlloc) {
    out << "=> " << to_state;
  } else {
    out << from_state << " -> " << to_state;
  }
  if (!constraint.empty() && constraint != "true") {
    out << "  [" << constraint << "]";
  }
  if (!replay.empty()) {
    out << "  {replay: " << replay << "}";
  }
  return out.str();
}

std::string Witness::ToString() const {
  std::ostringstream out;
  out << "witness (" << steps.size() << " step" << (steps.size() == 1 ? "" : "s");
  if (!complete) {
    out << ", incomplete";
  }
  if (truncated) {
    out << ", truncated";
  }
  out << "):\n";
  for (size_t i = 0; i < steps.size(); ++i) {
    out << "  " << (i + 1) << ". " << steps[i].ToString() << "\n";
  }
  out << "  feasibility: " << final_replay;
  if (!final_constraint.empty() && final_constraint != "true") {
    out << "  [" << final_constraint << "]";
  }
  return out.str();
}

}  // namespace grapple
