#include "src/checker/fsm.h"

#include "src/support/logging.h"

namespace grapple {

FsmStateId Fsm::AddState(const std::string& state_name, bool accepting) {
  FsmStateId id = static_cast<FsmStateId>(state_names_.size());
  state_names_.push_back(state_name);
  accepting_.push_back(accepting ? 1 : 0);
  if (initial_ == kNoFsmState) {
    initial_ = id;
  }
  return id;
}

FsmEventId Fsm::AddEvent(const std::string& event_name) {
  auto it = event_by_name_.find(event_name);
  if (it != event_by_name_.end()) {
    return it->second;
  }
  FsmEventId id = static_cast<FsmEventId>(event_names_.size());
  event_names_.push_back(event_name);
  event_by_name_.emplace(event_name, id);
  return id;
}

void Fsm::AddTransition(FsmStateId from, FsmEventId event, FsmStateId to) {
  GRAPPLE_CHECK_LT(from, state_names_.size());
  GRAPPLE_CHECK_LT(to, state_names_.size());
  GRAPPLE_CHECK_LT(event, event_names_.size());
  transitions_[(static_cast<uint32_t>(from) << 16) | event] = to;
}

std::optional<FsmEventId> Fsm::FindEvent(const std::string& event_name) const {
  auto it = event_by_name_.find(event_name);
  if (it == event_by_name_.end()) {
    return std::nullopt;
  }
  return it->second;
}

std::optional<FsmStateId> Fsm::Next(FsmStateId from, FsmEventId event) const {
  auto it = transitions_.find((static_cast<uint32_t>(from) << 16) | event);
  if (it == transitions_.end()) {
    return std::nullopt;
  }
  return it->second;
}

}  // namespace grapple
