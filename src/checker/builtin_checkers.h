// The four finite-state property checkers evaluated in the paper (§5):
// Java-I/O-style resources, lock usage, exception handling, and socket
// usage. Each is just data — an FSM plus the object types it tracks — run
// through the generic pipeline; adding a fifth checker is a dozen lines
// (see examples/custom_checker.cpp).
#ifndef GRAPPLE_SRC_CHECKER_BUILTIN_CHECKERS_H_
#define GRAPPLE_SRC_CHECKER_BUILTIN_CHECKERS_H_

#include <string>
#include <vector>

#include "src/checker/fsm.h"

namespace grapple {

// I/O resource checker (Figure 3a):
//   Init(acc) -open-> Open -write-> Open -close-> Closed(acc)
//   write/close on Init, write on Closed, double close: erroneous.
//   Exit while Open: resource leak.
FsmSpec MakeIoCheckerSpec();

// Lock-usage checker:
//   Unlocked(acc) -lock-> Locked -unlock-> Unlocked
//   unlock while Unlocked (mis-ordering), double lock: erroneous.
//   Exit while Locked: lock never released.
FsmSpec MakeLockCheckerSpec();

// Exception-handling checker (after Yuan et al., "Simple Testing Can
// Prevent Most Critical Failures"):
//   Created(acc) -throw-> Thrown -handle-> Handled(acc)
//   Exit while Thrown: an explicitly thrown exception with no handler.
FsmSpec MakeExceptionCheckerSpec();

// Socket-usage checker (Figure 2):
//   Init(acc) -open-> Open -bind-> Bound; configure/accept on Bound;
//   close from Open/Bound -> Closed(acc).
//   bind before open, accept before bind, etc.: erroneous.
//   Exit while Open/Bound: socket leak.
FsmSpec MakeSocketCheckerSpec();

// All four, in the order the paper's tables list them.
std::vector<FsmSpec> AllBuiltinCheckers();

}  // namespace grapple

#endif  // GRAPPLE_SRC_CHECKER_BUILTIN_CHECKERS_H_
