#include "src/checker/builtin_checkers.h"

namespace grapple {

FsmSpec MakeIoCheckerSpec() {
  Fsm fsm("io");
  FsmStateId init = fsm.AddState("Init", /*accepting=*/true);
  FsmStateId open = fsm.AddState("Open", /*accepting=*/false);
  FsmStateId closed = fsm.AddState("Closed", /*accepting=*/true);
  FsmEventId ev_open = fsm.AddEvent("open");
  FsmEventId ev_write = fsm.AddEvent("write");
  FsmEventId ev_read = fsm.AddEvent("read");
  FsmEventId ev_close = fsm.AddEvent("close");
  fsm.SetInitial(init);
  fsm.AddTransition(init, ev_open, open);
  fsm.AddTransition(open, ev_write, open);
  fsm.AddTransition(open, ev_read, open);
  fsm.AddTransition(open, ev_close, closed);
  return FsmSpec{std::move(fsm),
                 {"FileWriter", "FileReader", "FileOutputStream", "FileInputStream"}};
}

FsmSpec MakeLockCheckerSpec() {
  Fsm fsm("lock");
  FsmStateId unlocked = fsm.AddState("Unlocked", /*accepting=*/true);
  FsmStateId locked = fsm.AddState("Locked", /*accepting=*/false);
  FsmEventId ev_lock = fsm.AddEvent("lock");
  FsmEventId ev_unlock = fsm.AddEvent("unlock");
  fsm.SetInitial(unlocked);
  fsm.AddTransition(unlocked, ev_lock, locked);
  fsm.AddTransition(locked, ev_unlock, unlocked);
  return FsmSpec{std::move(fsm), {"Lock", "Mutex"}};
}

FsmSpec MakeExceptionCheckerSpec() {
  Fsm fsm("except");
  FsmStateId created = fsm.AddState("Created", /*accepting=*/true);
  FsmStateId thrown = fsm.AddState("Thrown", /*accepting=*/false);
  FsmStateId handled = fsm.AddState("Handled", /*accepting=*/true);
  FsmEventId ev_throw = fsm.AddEvent("throw");
  FsmEventId ev_handle = fsm.AddEvent("handle");
  fsm.SetInitial(created);
  fsm.AddTransition(created, ev_throw, thrown);
  fsm.AddTransition(thrown, ev_handle, handled);
  return FsmSpec{std::move(fsm), {"Exception", "IOException", "InterruptedException"}};
}

FsmSpec MakeSocketCheckerSpec() {
  Fsm fsm("socket");
  FsmStateId init = fsm.AddState("Init", /*accepting=*/true);
  FsmStateId open = fsm.AddState("Open", /*accepting=*/false);
  FsmStateId bound = fsm.AddState("Bound", /*accepting=*/false);
  FsmStateId closed = fsm.AddState("Closed", /*accepting=*/true);
  FsmEventId ev_open = fsm.AddEvent("open");
  FsmEventId ev_bind = fsm.AddEvent("bind");
  FsmEventId ev_configure = fsm.AddEvent("configure");
  FsmEventId ev_accept = fsm.AddEvent("accept");
  FsmEventId ev_close = fsm.AddEvent("close");
  fsm.SetInitial(init);
  fsm.AddTransition(init, ev_open, open);
  fsm.AddTransition(open, ev_bind, bound);
  fsm.AddTransition(open, ev_close, closed);
  fsm.AddTransition(bound, ev_configure, bound);
  fsm.AddTransition(bound, ev_accept, bound);
  fsm.AddTransition(bound, ev_close, closed);
  return FsmSpec{std::move(fsm), {"Socket", "ServerSocketChannel"}};
}

std::vector<FsmSpec> AllBuiltinCheckers() {
  std::vector<FsmSpec> specs;
  specs.push_back(MakeIoCheckerSpec());
  specs.push_back(MakeLockCheckerSpec());
  specs.push_back(MakeExceptionCheckerSpec());
  specs.push_back(MakeSocketCheckerSpec());
  return specs;
}

}  // namespace grapple
