#include "src/checker/fsm_parser.h"

#include <algorithm>
#include <sstream>
#include <unordered_map>
#include <vector>

namespace grapple {

namespace {

std::vector<std::string> Tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream stream(line);
  std::string token;
  while (stream >> token) {
    if (token[0] == '#') {
      break;
    }
    tokens.push_back(token);
  }
  return tokens;
}

}  // namespace

FsmParseResult ParseFsmSpec(const std::string& text) {
  FsmParseResult result;
  std::string name = "unnamed";
  std::vector<std::string> types;
  struct StateDecl {
    std::string name;
    bool accept = false;
    bool initial = false;
  };
  std::vector<StateDecl> states;
  struct TransitionDecl {
    std::string from;
    std::string event;
    std::string to;
    int line;
  };
  std::vector<TransitionDecl> transitions;

  std::istringstream stream(text);
  std::string line;
  int line_no = 0;
  auto fail = [&](const std::string& message) {
    result.ok = false;
    result.error = "line " + std::to_string(line_no) + ": " + message;
    return result;
  };
  while (std::getline(stream, line)) {
    ++line_no;
    std::vector<std::string> tokens = Tokenize(line);
    if (tokens.empty()) {
      continue;
    }
    const std::string& keyword = tokens[0];
    if (keyword == "fsm") {
      if (tokens.size() != 2) {
        return fail("expected: fsm <name>");
      }
      name = tokens[1];
    } else if (keyword == "types") {
      if (tokens.size() < 2) {
        return fail("expected: types <Type>...");
      }
      types.insert(types.end(), tokens.begin() + 1, tokens.end());
    } else if (keyword == "state") {
      if (tokens.size() < 2) {
        return fail("expected: state <Name> [accept] [initial]");
      }
      StateDecl decl;
      decl.name = tokens[1];
      for (size_t i = 2; i < tokens.size(); ++i) {
        if (tokens[i] == "accept") {
          decl.accept = true;
        } else if (tokens[i] == "initial") {
          decl.initial = true;
        } else {
          return fail("unknown state attribute '" + tokens[i] + "'");
        }
      }
      for (const auto& existing : states) {
        if (existing.name == decl.name) {
          return fail("duplicate state '" + decl.name + "'");
        }
      }
      states.push_back(decl);
    } else if (keyword == "event") {
      if (tokens.size() != 4) {
        return fail("expected: event <FromState> <eventName> <ToState>");
      }
      transitions.push_back({tokens[1], tokens[2], tokens[3], line_no});
    } else {
      return fail("unknown keyword '" + keyword + "'");
    }
  }

  if (states.empty()) {
    line_no = 0;
    return fail("no states declared");
  }
  if (types.empty()) {
    line_no = 0;
    return fail("no tracked types declared");
  }

  Fsm fsm(name);
  std::unordered_map<std::string, FsmStateId> state_ids;
  for (const auto& decl : states) {
    state_ids[decl.name] = fsm.AddState(decl.name, decl.accept);
  }
  for (const auto& decl : states) {
    if (decl.initial) {
      fsm.SetInitial(state_ids[decl.name]);
    }
  }
  for (const auto& transition : transitions) {
    line_no = transition.line;
    auto from = state_ids.find(transition.from);
    if (from == state_ids.end()) {
      return fail("unknown state '" + transition.from + "'");
    }
    auto to = state_ids.find(transition.to);
    if (to == state_ids.end()) {
      return fail("unknown state '" + transition.to + "'");
    }
    FsmEventId event = fsm.AddEvent(transition.event);
    if (fsm.Next(from->second, event).has_value()) {
      return fail("duplicate transition for (" + transition.from + ", " + transition.event +
                  ")");
    }
    fsm.AddTransition(from->second, event, to->second);
  }

  result.ok = true;
  result.spec = FsmSpec{std::move(fsm), std::move(types)};
  return result;
}

std::string FsmSpecToString(const FsmSpec& spec) {
  std::ostringstream out;
  const Fsm& fsm = spec.fsm;
  out << "fsm " << fsm.name() << "\n";
  out << "types";
  for (const auto& type : spec.tracked_types) {
    out << " " << type;
  }
  out << "\n";
  for (FsmStateId q = 0; q < fsm.NumStates(); ++q) {
    out << "state " << fsm.StateName(q);
    if (fsm.IsAccepting(q)) {
      out << " accept";
    }
    if (q == fsm.initial()) {
      out << " initial";
    }
    out << "\n";
  }
  // Canonical order (state id, then event *name*) so output is independent
  // of event-interning order and round-trips byte-identically.
  for (FsmStateId q = 0; q < fsm.NumStates(); ++q) {
    std::vector<std::pair<std::string, std::string>> rows;
    for (FsmEventId e = 0; e < fsm.NumEvents(); ++e) {
      auto next = fsm.Next(q, e);
      if (next.has_value()) {
        rows.emplace_back(fsm.EventName(e), fsm.StateName(*next));
      }
    }
    std::sort(rows.begin(), rows.end());
    for (const auto& [event, to] : rows) {
      out << "event " << fsm.StateName(q) << " " << event << " " << to << "\n";
    }
  }
  return out.str();
}

}  // namespace grapple
