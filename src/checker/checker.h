// Phase 3: FSM checking and bug-report extraction (§2.2).
//
// After the typestate closure finishes, two classes of warning are read off
// the final state edges:
//   * erroneous event — a state[ERROR] edge whose destination is an event's
//     out-vertex: some feasible path drives the object into a state where
//     the event is undefined (write-after-close, unlock-without-lock, ...);
//   * bad exit state — a state[q] edge reaching a program-exit vertex with
//     q non-accepting: the object can still be "live" when the program
//     finishes (resource leak, unreleased lock, unhandled exception, ...).
#ifndef GRAPPLE_SRC_CHECKER_CHECKER_H_
#define GRAPPLE_SRC_CHECKER_CHECKER_H_

#include <string>
#include <vector>

#include "src/analysis/alias_graph.h"
#include "src/analysis/typestate_graph.h"
#include "src/checker/fsm.h"
#include "src/checker/witness.h"
#include "src/grammar/typestate_grammar.h"
#include "src/graph/constraint_oracle.h"
#include "src/graph/engine.h"
#include "src/obs/provenance.h"

namespace grapple {

// Returns a copy of `fsm` completed with a non-accepting ERROR sink: every
// (state, event) pair without a transition now moves to ERROR, and ERROR has
// no outgoing transitions. The sink is registered via Fsm::SetError.
Fsm CompleteFsm(const Fsm& fsm);

struct BugReport {
  enum class Kind { kErroneousEvent, kBadExitState };

  std::string checker;
  Kind kind = Kind::kBadExitState;
  // The tracked allocation the warning is about.
  uint32_t object_index = 0;  // index into AliasGraph::objects()
  std::string object_desc;
  std::string type;
  int32_t alloc_line = -1;
  // kErroneousEvent: the offending event.
  std::string event;
  int32_t event_line = -1;
  // State the object was in (before the event / at exit).
  std::string state;
  // Pretty-printed witness path constraint.
  std::string constraint;
  // The witness path's interval encoding (ICFET coordinates), for debugging
  // and IDE integration.
  std::string witness_path;
  // Decoded derivation witness (when the engine recorded provenance and
  // GRAPPLE_WITNESS != off): the step-by-step counterexample.
  bool has_witness = false;
  Witness witness;
  // Graceful degradation: witness decoding was expected but impossible
  // (provenance log missing, corrupt, or lacking the violating edge's
  // record). Non-empty => has_witness is false and this says why; the bug
  // itself is still reported.
  std::string witness_error;

  std::string ToString() const;
};

// Scans the finished typestate engine run and extracts deduplicated
// warnings, sorted into a thread-count-independent order (allocation site,
// object, kind, event site). `fsm` must be the completed FSM used to build
// the grammar and graph; `oracle` decodes witness constraints. When the
// engine recorded provenance and `witness_mode` != kOff, each report also
// carries a decoded derivation Witness (kFull additionally replays the SMT
// query at every step).
std::vector<BugReport> ExtractReports(const std::string& checker_name, const Fsm& fsm,
                                      const TypestateLabels& labels, const TypestateGraph& ts,
                                      const AliasGraph& alias_graph, GraphEngine* engine,
                                      IntervalOracle* oracle,
                                      obs::WitnessMode witness_mode = obs::WitnessMode::kBugs);

}  // namespace grapple

#endif  // GRAPPLE_SRC_CHECKER_CHECKER_H_
