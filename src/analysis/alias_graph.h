// Program-graph generation for the path-sensitive alias analysis (§4.1).
//
// Vertices are (variable, CFET node) occurrences per *clone*: a variable
// appearing in several extended basic blocks gets one vertex per block, and
// artificial assign edges carrying the interval encoding [parent, child]
// connect the copies (Figure 5b). Allocation sites get one object vertex per
// (clone, node) occurrence. Context sensitivity comes from aggressive
// bottom-up inlining: every call site to a non-recursive callee embeds a
// fresh clone of the callee's graph, with parameter-passing edges annotated
// {call-site id} and value-return edges annotated {return id} (§4.1).
// Methods in call-graph SCCs are instantiated once and connected context
// insensitively with true-constraint edges.
//
// Alongside the edges, generation records the *clone tree* and per-clone
// event/allocation occurrences — the bookkeeping phase 2 (typestate graph)
// and phase 3 (bug reports) need.
#ifndef GRAPPLE_SRC_ANALYSIS_ALIAS_GRAPH_H_
#define GRAPPLE_SRC_ANALYSIS_ALIAS_GRAPH_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/cfg/call_graph.h"
#include "src/grammar/pointsto_grammar.h"
#include "src/graph/engine.h"
#include "src/ir/ir.h"
#include "src/symexec/cfet.h"

namespace grapple {

inline constexpr uint32_t kNoClone = 0xFFFFFFFFu;

// Where a vertex came from (for bug reports and debugging).
struct AliasVertexInfo {
  enum class Kind : uint8_t { kVar, kObject };
  Kind kind = Kind::kVar;
  MethodId method = kNoMethod;
  CfetNodeId node = kCfetRoot;
  uint32_t clone = kNoClone;
  LocalId var = kNoLocal;         // kVar
  const Stmt* alloc = nullptr;    // kObject
};

// An FSM event statement occurrence inside one clone.
struct EventOccurrence {
  CfetNodeId node = kCfetRoot;
  // Position of the statement within the CFET node's stmt list (gives intra
  // block event ordering for the typestate walk).
  uint32_t stmt_index = 0;
  const Stmt* stmt = nullptr;
  VertexId receiver_vertex = 0;
};

// A tracked allocation occurrence (one per clone x node containing the
// alloc statement).
struct TrackedObject {
  uint32_t clone = kNoClone;
  CfetNodeId node = kCfetRoot;
  uint32_t stmt_index = 0;
  const Stmt* alloc_stmt = nullptr;
  VertexId object_vertex = 0;
  std::string type;
};

// One instantiated method instance.
struct CloneNode {
  MethodId method = kNoMethod;
  uint32_t parent = kNoClone;
  CallSiteId via_site = kNoCallSite;
  bool shared = false;  // recursive (SCC) instance, context-insensitive
  // Call-site id -> child clone (only for inlined, non-recursive callees;
  // calls into shared instances map to the shared clone index).
  std::unordered_map<CallSiteId, uint32_t> children;
  std::vector<EventOccurrence> events;
};

class AliasGraph {
 public:
  // Builds the full cloned program graph, feeding base edges directly into
  // `engine` (which must not be finalized yet). Call engine->Finalize(
  // graph.num_vertices()) afterwards.
  AliasGraph(const Program& program, const CallGraph& call_graph, const Icfet& icfet,
             const PointsToLabels& labels, EdgeSink* engine);
  ~AliasGraph();

  VertexId num_vertices() const { return next_vertex_; }
  uint64_t num_base_edges() const { return emitted_edges_; }

  const std::vector<AliasVertexInfo>& vertex_info() const { return vertex_info_; }
  const std::vector<CloneNode>& clones() const { return clones_; }
  const std::vector<uint32_t>& entry_clones() const { return entry_clones_; }
  const std::vector<TrackedObject>& objects() const { return objects_; }
  const Icfet& icfet() const { return icfet_; }
  const Program& program() const { return program_; }

  // Entry instantiation (root clone) containing a clone.
  uint32_t EntryOf(uint32_t clone) const;

  std::string DescribeVertex(VertexId v) const;

 private:
  struct MethodShape;
  struct ShapeVertex;

  void BuildShape(MethodId m);
  uint32_t Instantiate(MethodId m, uint32_t parent, CallSiteId via_site, bool shared);
  void Emit(VertexId src, VertexId dst, Label label, const PathEncoding& enc);

  const Program& program_;
  const CallGraph& call_graph_;
  const Icfet& icfet_;
  PointsToLabels labels_;
  EdgeSink* engine_;
  std::unordered_map<std::string, size_t> field_index_;

  std::vector<MethodShape> shapes_;
  std::vector<AliasVertexInfo> vertex_info_;
  std::vector<CloneNode> clones_;
  std::vector<uint32_t> entry_clones_;
  std::vector<VertexId> clone_base_;
  std::vector<TrackedObject> objects_;
  std::unordered_map<MethodId, uint32_t> shared_instance_;
  VertexId next_vertex_ = 0;
  uint64_t emitted_edges_ = 0;
  uint32_t depth_ = 0;
};

}  // namespace grapple

#endif  // GRAPPLE_SRC_ANALYSIS_ALIAS_GRAPH_H_
