#include "src/analysis/alias_query.h"

#include <algorithm>
#include <set>

namespace grapple {

AliasQuery::AliasQuery(const AliasGraph& graph, GraphEngine* engine, Label flows_to)
    : graph_(graph) {
  engine->ForEachEdgeWithLabel(flows_to, [&](const EdgeRecord& edge) {
    by_var_[edge.dst].push_back(edge.src);
  });
  for (auto& [var, objects] : by_var_) {
    std::sort(objects.begin(), objects.end());
    objects.erase(std::unique(objects.begin(), objects.end()), objects.end());
    facts_ += objects.size();
  }
}

std::vector<PointsToFact> AliasQuery::Collect(const std::string& method_name,
                                              const std::string& var_name,
                                              uint32_t clone_filter) const {
  std::vector<PointsToFact> results;
  const auto& info = graph_.vertex_info();
  for (VertexId v = 0; v < info.size(); ++v) {
    const AliasVertexInfo& vertex = info[v];
    if (vertex.kind != AliasVertexInfo::Kind::kVar) {
      continue;
    }
    if (clone_filter != kNoClone && vertex.clone != clone_filter) {
      continue;
    }
    const Method& method = graph_.program().MethodAt(vertex.method);
    if (method.name != method_name || method.locals[vertex.var].name != var_name) {
      continue;
    }
    auto it = by_var_.find(v);
    if (it == by_var_.end()) {
      continue;
    }
    for (VertexId object : it->second) {
      PointsToFact fact;
      fact.object_vertex = object;
      fact.object_clone = info[object].clone;
      fact.var_vertex = v;
      fact.var_clone = vertex.clone;
      fact.description = graph_.DescribeVertex(object) + " -> " + graph_.DescribeVertex(v);
      results.push_back(std::move(fact));
    }
  }
  // Dedup per (object, var occurrence).
  std::sort(results.begin(), results.end(), [](const PointsToFact& a, const PointsToFact& b) {
    return std::tie(a.object_vertex, a.var_vertex) < std::tie(b.object_vertex, b.var_vertex);
  });
  results.erase(std::unique(results.begin(), results.end(),
                            [](const PointsToFact& a, const PointsToFact& b) {
                              return a.object_vertex == b.object_vertex &&
                                     a.var_vertex == b.var_vertex;
                            }),
                results.end());
  return results;
}

std::vector<PointsToFact> AliasQuery::PointsTo(const std::string& method_name,
                                               const std::string& var_name) const {
  return Collect(method_name, var_name, kNoClone);
}

std::vector<PointsToFact> AliasQuery::PointsToInClone(const std::string& method_name,
                                                      const std::string& var_name,
                                                      uint32_t clone) const {
  return Collect(method_name, var_name, clone);
}

bool AliasQuery::MayAlias(const std::string& method_a, const std::string& var_a,
                          const std::string& method_b, const std::string& var_b) const {
  std::set<VertexId> objects_a;
  for (const auto& fact : PointsTo(method_a, var_a)) {
    objects_a.insert(fact.object_vertex);
  }
  for (const auto& fact : PointsTo(method_b, var_b)) {
    if (objects_a.find(fact.object_vertex) != objects_a.end()) {
      return true;
    }
  }
  return false;
}

}  // namespace grapple
