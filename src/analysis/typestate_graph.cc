#include "src/analysis/typestate_graph.h"

#include "src/support/logging.h"

namespace grapple {

namespace {

inline constexpr VertexId kNoTsVertex = 0xFFFFFFFFu;

uint64_t OccKey(CfetNodeId node, uint32_t stmt_index) {
  return (node << 20) ^ stmt_index;
}

}  // namespace

struct TypestateGraph::Walker {
  TypestateGraph* graph;
  const AliasGraph& ag;
  uint32_t object_pos = 0;  // position within graph->tracked_
  const TrackedObject* obj = nullptr;

  std::unordered_set<VertexId> receivers;       // receiver vertices aliased to obj
  std::unordered_set<uint32_t> alloc_ancestors;  // clones on the alloc's parent chain
  std::unordered_map<uint32_t, int> interesting_memo;
  std::unordered_set<uint32_t> on_stack;
  // (clone, node, stmt) -> event in/out vertices, shared across re-visits of
  // shared clones.
  std::unordered_map<uint32_t, std::unordered_map<uint64_t, std::pair<VertexId, VertexId>>>
      event_vertices;

  VertexId seed = kNoTsVertex;

  struct Frame {
    uint32_t clone;
    CfetNodeId node;
    uint32_t stmt_index;
    CallSiteId ret_site;
    bool insensitive;
  };

  VertexId NewVertex(TsVertexInfo::Kind kind, const Stmt* stmt, uint32_t clone,
                     CfetNodeId node) {
    TsVertexInfo info;
    info.kind = kind;
    info.object = object_pos;
    info.stmt = stmt;
    info.clone = clone;
    info.node = node;
    graph->info_.push_back(info);
    return graph->next_vertex_++;
  }

  void Emit(VertexId src, VertexId dst, Label label, const PathEncoding& enc) {
    graph->engine_->AddBaseEdge(src, dst, label, enc);
    ++graph->emitted_edges_;
  }

  bool RelevantEvent(const EventOccurrence& occ) const {
    if (receivers.find(occ.receiver_vertex) == receivers.end()) {
      return false;
    }
    return graph->fsm_.FindEvent(occ.stmt->event).has_value();
  }

  // Does the clone's spliced subtree contain any relevant event or the
  // tracked allocation? Memoized; cycles (shared instances) read as "not
  // interesting" while in progress, which only skips constraint-free
  // repetition.
  bool Interesting(uint32_t clone) {
    auto it = interesting_memo.find(clone);
    if (it != interesting_memo.end()) {
      return it->second != 0;
    }
    interesting_memo[clone] = 0;  // in-progress / cycle default
    bool result = alloc_ancestors.find(clone) != alloc_ancestors.end();
    if (!result) {
      for (const auto& occ : ag.clones()[clone].events) {
        if (RelevantEvent(occ)) {
          result = true;
          break;
        }
      }
    }
    if (!result) {
      for (const auto& [site, child] : ag.clones()[clone].children) {
        if (Interesting(child)) {
          result = true;
          break;
        }
      }
    }
    interesting_memo[clone] = result ? 1 : 0;
    return result;
  }

  // With event qualification: can the object-to-receiver flow hold on any
  // path through the current walk position? `acc` covers the segment since
  // the last interesting point; if even that fragment contradicts every
  // flow encoding, no full path can apply the event here.
  bool EventApplicableHere(const EventOccurrence& occ, const PathEncoding& acc) {
    if (!graph->qualify_events_) {
      return true;
    }
    const auto& flows = graph->aliases_.FlowEncodings(occ.receiver_vertex, obj->object_vertex);
    if (flows.empty()) {
      return true;  // unknown pair: conservatively apply
    }
    for (const PathEncoding& flow : flows) {
      PathEncoding full = PathEncoding::Append(flow, acc);
      if (graph->solver_.Solve(graph->decoder_.Decode(full)) != SolveResult::kUnsat) {
        return true;
      }
    }
    return false;
  }

  std::pair<VertexId, VertexId> EventVerticesFor(uint32_t clone, const EventOccurrence& occ) {
    auto& per_clone = event_vertices[clone];
    uint64_t key = OccKey(occ.node, occ.stmt_index);
    auto it = per_clone.find(key);
    if (it != per_clone.end()) {
      return it->second;
    }
    VertexId in = NewVertex(TsVertexInfo::Kind::kEventIn, occ.stmt, clone, occ.node);
    VertexId out = NewVertex(TsVertexInfo::Kind::kEventOut, occ.stmt, clone, occ.node);
    per_clone.emplace(key, std::make_pair(in, out));
    // The event edge(s). With event qualification, each distinct
    // object-to-receiver flow path contributes one edge carrying that
    // flow's encoding: the event only applies where the aliasing is
    // feasible (conjunction happens at the engine's state x event join).
    FsmEventId event = *graph->fsm_.FindEvent(occ.stmt->event);
    MethodId m = ag.clones()[clone].method;
    PathEncoding here = PathEncoding::Interval(m, occ.node, occ.node);
    bool emitted = false;
    if (graph->qualify_events_) {
      for (const PathEncoding& flow :
           graph->aliases_.FlowEncodings(occ.receiver_vertex, obj->object_vertex)) {
        Emit(in, out, graph->labels_.event[event], PathEncoding::Append(flow, here));
        emitted = true;
      }
    }
    if (!emitted) {
      Emit(in, out, graph->labels_.event[event], here);
    }
    return {in, out};
  }

  const EventOccurrence* FindOccurrence(uint32_t clone, CfetNodeId node, uint32_t stmt_index) {
    for (const auto& occ : ag.clones()[clone].events) {
      if (occ.node == node && occ.stmt_index == stmt_index) {
        return &occ;
      }
    }
    return nullptr;
  }

  void Run() {
    // Receivers aliased to the object.
    // (Populated by TypestateGraph before calling Run.)
    seed = NewVertex(TsVertexInfo::Kind::kSeed, obj->alloc_stmt, obj->clone, obj->node);
    graph->seeds_.push_back(seed);
    for (uint32_t c = obj->clone; c != kNoClone; c = ag.clones()[c].parent) {
      alloc_ancestors.insert(c);
    }
    uint32_t entry = ag.EntryOf(obj->clone);
    MethodId m = ag.clones()[entry].method;
    WalkStmts(entry, kCfetRoot, 0, {}, kNoTsVertex,
              PathEncoding::Interval(m, kCfetRoot, kCfetRoot));
  }

  void WalkStmts(uint32_t clone, CfetNodeId node_id, uint32_t stmt_begin,
                 std::vector<Frame> cont, VertexId current, PathEncoding acc) {
    MethodId m = ag.clones()[clone].method;
    const MethodCfet& cfet = ag.icfet().OfMethod(m);
    const CfetNode* node = cfet.FindNode(node_id);
    if (node == nullptr) {
      return;
    }
    for (uint32_t si = stmt_begin; si < node->stmts.size(); ++si) {
      const CfetStmtRef& ref = node->stmts[si];
      switch (ref.stmt->kind) {
        case StmtKind::kAlloc:
          if (clone == obj->clone && node_id == obj->node && si == obj->stmt_index) {
            VertexId alloc_out =
                NewVertex(TsVertexInfo::Kind::kAllocOut, obj->alloc_stmt, clone, node_id);
            Emit(seed, alloc_out, graph->labels_.state[graph->fsm_.initial()], acc);
            current = alloc_out;
            acc = PathEncoding::Interval(m, node_id, node_id);
          }
          break;
        case StmtKind::kEvent: {
          const EventOccurrence* occ = FindOccurrence(clone, node_id, si);
          if (occ == nullptr || !RelevantEvent(*occ) || current == kNoTsVertex) {
            break;
          }
          if (!EventApplicableHere(*occ, acc)) {
            // The aliasing that would make this event apply is infeasible
            // along every walk path through this tree position: skip the
            // event, let the object's state flow past it.
            break;
          }
          auto [in, out] = EventVerticesFor(clone, *occ);
          Emit(current, in, graph->labels_.flow, acc);
          current = out;
          acc = PathEncoding::Interval(m, node_id, node_id);
          break;
        }
        case StmtKind::kCall: {
          if (ref.call_site == kNoCallSite) {
            break;
          }
          auto cit = ag.clones()[clone].children.find(ref.call_site);
          if (cit == ag.clones()[clone].children.end()) {
            break;
          }
          uint32_t child = cit->second;
          if (!Interesting(child) || on_stack.find(child) != on_stack.end()) {
            break;  // constraint-free skip (case-3 cancellation semantics)
          }
          bool insensitive = ag.clones()[child].shared;
          on_stack.insert(child);
          Frame frame{clone, node_id, si + 1, ref.call_site, insensitive};
          cont.push_back(frame);
          PathEncoding call_acc =
              insensitive ? acc
                          : PathEncoding::Append(acc, PathEncoding::CallEdge(ref.call_site));
          MethodId callee = ag.clones()[child].method;
          call_acc = PathEncoding::Append(
              call_acc, PathEncoding::Interval(callee, kCfetRoot, kCfetRoot));
          WalkStmts(child, kCfetRoot, 0, std::move(cont), current, std::move(call_acc));
          on_stack.erase(child);
          return;  // continuation resumed inside the callee walk
        }
        default:
          break;
      }
    }
    if (node->has_children) {
      for (CfetNodeId child :
           {MethodCfet::FalseChild(node_id), MethodCfet::TrueChild(node_id)}) {
        if (cfet.FindNode(child) == nullptr) {
          continue;
        }
        PathEncoding child_acc =
            PathEncoding::Append(acc, PathEncoding::Interval(m, node_id, child));
        WalkStmts(clone, child, 0, cont, current, std::move(child_acc));
      }
      return;
    }
    // Leaf: resume the continuation, or emit the program-exit point.
    if (cont.empty()) {
      if (current != kNoTsVertex) {
        VertexId exit_vertex = NewVertex(TsVertexInfo::Kind::kExit, nullptr, clone, node_id);
        Emit(current, exit_vertex, graph->labels_.flow, acc);
      }
      return;
    }
    Frame frame = cont.back();
    cont.pop_back();
    PathEncoding ret_acc =
        frame.insensitive ? acc : PathEncoding::Append(acc, PathEncoding::RetEdge(frame.ret_site));
    WalkStmts(frame.clone, frame.node, frame.stmt_index, std::move(cont), current,
              std::move(ret_acc));
  }
};

TypestateGraph::TypestateGraph(const AliasGraph& alias_graph, const AliasIndex& aliases,
                               const Fsm& fsm, const TypestateLabels& labels,
                               const std::vector<uint32_t>& tracked, EdgeSink* engine,
                               bool qualify_events)
    : alias_graph_(alias_graph),
      aliases_(aliases),
      fsm_(fsm),
      labels_(labels),
      engine_(engine),
      qualify_events_(qualify_events),
      decoder_(&alias_graph.icfet()),
      tracked_(tracked) {
  auto by_object = aliases.InvertToObjects();
  for (uint32_t pos = 0; pos < tracked_.size(); ++pos) {
    const TrackedObject& obj = alias_graph_.objects()[tracked_[pos]];
    Walker walker{this, alias_graph_};
    walker.object_pos = pos;
    walker.obj = &obj;
    auto it = by_object.find(obj.object_vertex);
    if (it != by_object.end()) {
      walker.receivers.insert(it->second.begin(), it->second.end());
    }
    walker.Run();
  }
}

}  // namespace grapple
