// Phase-2 program graph: path-sensitive typestate dataflow (§2.2).
//
// For every tracked allocation occurrence o, we walk the *spliced* execution
// tree of its entry instantiation (the clone tree stitched over the ICFET)
// and materialize a condensed per-object point graph:
//
//   seed(o) --state[q0]--> allocOut(o)                 (constraint: the path
//                                                       from entry to the alloc)
//   x_out --flow--> y_in                               (constraint: the CFET
//                                                       path between them)
//   y_in --event[e]--> y_out                           (at each event on an
//                                                       alias of o)
//   z_out --flow--> exit                               (at entry-method leaves)
//
// Running the typestate grammar (src/grammar/typestate_grammar.h) on this
// graph to closure yields state[q] edges seed(o) -> point, i.e. "o may be in
// state q at this point along a feasible path" — exactly the dataflow facts
// the checker inspects. Callee subtrees containing no event on an alias of o
// are skipped (their constraints cancel, mirroring the matched-call/return
// cancellation of §4.2 case 3); shared (recursive) instances are walked
// context-insensitively with a cycle guard.
#ifndef GRAPPLE_SRC_ANALYSIS_TYPESTATE_GRAPH_H_
#define GRAPPLE_SRC_ANALYSIS_TYPESTATE_GRAPH_H_

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/analysis/alias_graph.h"
#include "src/analysis/alias_index.h"
#include "src/checker/fsm.h"
#include "src/grammar/typestate_grammar.h"
#include "src/graph/engine.h"
#include "src/pathenc/constraint_decoder.h"
#include "src/smt/solver.h"

namespace grapple {

struct TsVertexInfo {
  enum class Kind : uint8_t { kSeed, kEventIn, kEventOut, kAllocOut, kExit };
  Kind kind = Kind::kSeed;
  // Index into the tracked-objects list passed to the builder.
  uint32_t object = 0;
  const Stmt* stmt = nullptr;  // event statement / alloc statement
  uint32_t clone = kNoClone;
  CfetNodeId node = kCfetRoot;
};

class TypestateGraph {
 public:
  // `tracked` holds indices into alias_graph.objects(). The FSM must be
  // "completed" (every (state, event) defined; see checker::CompleteFsm) for
  // erroneous-event detection to surface as error-state edges. Feeds base
  // edges into `engine`; call engine->Finalize(num_vertices()) after.
  // With `qualify_events` set, each event edge carries the encoding of the
  // object-to-receiver flow that makes the event apply (one edge per
  // distinct flow path), so events whose aliasing is infeasible on the
  // explored path are pruned by the solver instead of applying
  // unconditionally.
  TypestateGraph(const AliasGraph& alias_graph, const AliasIndex& aliases, const Fsm& fsm,
                 const TypestateLabels& labels, const std::vector<uint32_t>& tracked,
                 EdgeSink* engine, bool qualify_events = true);

  VertexId num_vertices() const { return next_vertex_; }
  const std::vector<TsVertexInfo>& vertex_info() const { return info_; }
  const std::vector<uint32_t>& tracked() const { return tracked_; }
  // Seed vertex of tracked object i (by position in `tracked`).
  VertexId SeedOf(uint32_t i) const { return seeds_[i]; }
  uint64_t num_base_edges() const { return emitted_edges_; }

 private:
  struct Walker;

  const AliasGraph& alias_graph_;
  const AliasIndex& aliases_;
  const Fsm& fsm_;
  TypestateLabels labels_;
  EdgeSink* engine_;
  bool qualify_events_;
  // For walk-time event-applicability checks (see the .cc).
  PathDecoder decoder_;
  Solver solver_;
  std::vector<uint32_t> tracked_;
  std::vector<TsVertexInfo> info_;
  std::vector<VertexId> seeds_;
  VertexId next_vertex_ = 0;
  uint64_t emitted_edges_ = 0;
};

}  // namespace grapple

#endif  // GRAPPLE_SRC_ANALYSIS_TYPESTATE_GRAPH_H_
