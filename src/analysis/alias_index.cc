#include "src/analysis/alias_index.h"

#include <algorithm>

namespace grapple {

AliasIndex::AliasIndex(GraphEngine* engine, Label flows_to,
                       const std::unordered_set<VertexId>& receivers,
                       size_t max_encodings_per_pair) {
  engine->ForEachEdgeWithLabel(flows_to, [&](const EdgeRecord& edge) {
    if (receivers.find(edge.dst) == receivers.end()) {
      return;
    }
    by_receiver_[edge.dst].push_back(edge.src);
    auto& encs = encodings_[PairKey(edge.dst, edge.src)];
    ByteReader reader(edge.payload.data(), edge.payload.size());
    PathEncoding enc = PathEncoding::Deserialize(&reader);
    if (std::find(encs.begin(), encs.end(), enc) != encs.end()) {
      return;
    }
    if (encs.size() >= max_encodings_per_pair) {
      // Too many distinct flow paths: weaken the whole pair to `true` so no
      // feasible flow is ever dropped.
      encs.clear();
      encs.push_back(PathEncoding::Empty());
      return;
    }
    if (encs.size() == 1 && encs[0] == PathEncoding::Empty() && !enc.empty()) {
      return;  // already weakened
    }
    encs.push_back(std::move(enc));
  });
  for (auto& [receiver, objects] : by_receiver_) {
    std::sort(objects.begin(), objects.end());
    objects.erase(std::unique(objects.begin(), objects.end()), objects.end());
    pairs_ += objects.size();
  }
}

const std::vector<VertexId>& AliasIndex::ObjectsFlowingTo(VertexId receiver) const {
  auto it = by_receiver_.find(receiver);
  return it == by_receiver_.end() ? empty_ : it->second;
}

const std::vector<PathEncoding>& AliasIndex::FlowEncodings(VertexId receiver,
                                                           VertexId object) const {
  auto it = encodings_.find(PairKey(receiver, object));
  return it == encodings_.end() ? no_encodings_ : it->second;
}

std::unordered_map<VertexId, std::vector<VertexId>> AliasIndex::InvertToObjects() const {
  std::unordered_map<VertexId, std::vector<VertexId>> by_object;
  for (const auto& [receiver, objects] : by_receiver_) {
    for (VertexId object : objects) {
      by_object[object].push_back(receiver);
    }
  }
  return by_object;
}

}  // namespace grapple
