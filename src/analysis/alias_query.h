// Context-sensitive points-to queries over a finished alias computation.
//
// The paper motivates cloning-based context sensitivity over summary-based
// approaches precisely because the former "can answer queries such as 'what
// objects does a variable point to under a particular context?'" (§2.1).
// This utility makes that concrete: it indexes the final flowsTo edges once
// and answers per-variable (and per-clone, i.e. per-calling-context)
// points-to queries.
#ifndef GRAPPLE_SRC_ANALYSIS_ALIAS_QUERY_H_
#define GRAPPLE_SRC_ANALYSIS_ALIAS_QUERY_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "src/analysis/alias_graph.h"
#include "src/graph/engine.h"

namespace grapple {

struct PointsToFact {
  // The allocation occurrence.
  VertexId object_vertex = 0;
  uint32_t object_clone = kNoClone;
  // The variable occurrence the object flows to.
  VertexId var_vertex = 0;
  uint32_t var_clone = kNoClone;
  std::string description;  // "obj -> var", human readable
};

class AliasQuery {
 public:
  // Scans the engine's final flowsTo edges once. The alias graph and the
  // engine's partitions must outlive nothing here (everything is copied).
  AliasQuery(const AliasGraph& graph, GraphEngine* engine, Label flows_to);

  // Objects any occurrence of `method::var` may reference, across all
  // calling contexts (clones). Unknown names return empty.
  std::vector<PointsToFact> PointsTo(const std::string& method_name,
                                     const std::string& var_name) const;

  // Same, restricted to one clone of the variable's method — one calling
  // context in the cloned program graph.
  std::vector<PointsToFact> PointsToInClone(const std::string& method_name,
                                            const std::string& var_name, uint32_t clone) const;

  // May two variables alias (share a flowsTo source object) in any context?
  bool MayAlias(const std::string& method_a, const std::string& var_a,
                const std::string& method_b, const std::string& var_b) const;

  size_t NumFlowFacts() const { return facts_; }

 private:
  std::vector<PointsToFact> Collect(const std::string& method_name, const std::string& var_name,
                                    uint32_t clone_filter) const;

  const AliasGraph& graph_;
  // var vertex -> object vertices flowing to it.
  std::unordered_map<VertexId, std::vector<VertexId>> by_var_;
  size_t facts_ = 0;
};

}  // namespace grapple

#endif  // GRAPPLE_SRC_ANALYSIS_ALIAS_QUERY_H_
