// In-memory alias query index (phase 1 -> phase 2 hand-off, §2.2).
//
// After the alias computation finishes, the flowsTo edges relevant to event
// receivers are harvested from the engine's final partitions and held in
// memory so the dataflow phase can answer "which tracked objects may this
// event's receiver reference?" in O(1). The flow *encodings* are retained
// too: phase 2 can qualify each event edge with the constraint of the
// object-to-receiver flow, pruning events whose aliasing is infeasible on
// the path being explored.
#ifndef GRAPPLE_SRC_ANALYSIS_ALIAS_INDEX_H_
#define GRAPPLE_SRC_ANALYSIS_ALIAS_INDEX_H_

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/graph/engine.h"
#include "src/pathenc/path_encoding.h"

namespace grapple {

class AliasIndex {
 public:
  // Scans the engine's final edges once; keeps flowsTo edges whose
  // destination is in `receivers`, retaining up to `max_encodings_per_pair`
  // distinct flow-path encodings per (receiver, object) pair (beyond the
  // cap the pair's encodings degrade to the always-true encoding).
  AliasIndex(GraphEngine* engine, Label flows_to,
             const std::unordered_set<VertexId>& receivers,
             size_t max_encodings_per_pair = 12);

  // Object vertices that may flow to `receiver` (deduplicated).
  const std::vector<VertexId>& ObjectsFlowingTo(VertexId receiver) const;

  // Distinct flow-path encodings for the (receiver, object) pair; empty
  // when the pair is unknown.
  const std::vector<PathEncoding>& FlowEncodings(VertexId receiver, VertexId object) const;

  // receiver -> objects, inverted: objects -> receivers.
  std::unordered_map<VertexId, std::vector<VertexId>> InvertToObjects() const;

  size_t NumPairs() const { return pairs_; }

 private:
  static uint64_t PairKey(VertexId receiver, VertexId object) {
    return (static_cast<uint64_t>(receiver) << 32) | object;
  }

  std::unordered_map<VertexId, std::vector<VertexId>> by_receiver_;
  std::unordered_map<uint64_t, std::vector<PathEncoding>> encodings_;
  std::vector<VertexId> empty_;
  std::vector<PathEncoding> no_encodings_;
  size_t pairs_ = 0;
};

}  // namespace grapple

#endif  // GRAPPLE_SRC_ANALYSIS_ALIAS_INDEX_H_
