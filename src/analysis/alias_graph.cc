#include "src/analysis/alias_graph.h"

#include <algorithm>
#include <set>

#include "src/support/logging.h"

namespace grapple {

namespace {

// Recursion guard for clone instantiation; beyond this depth call sites fall
// back to the callee's shared (context-insensitive) instance.
constexpr uint32_t kMaxInlineDepth = 40;

using VarSet = std::set<LocalId>;

bool Contains(const VarSet& set, LocalId v) { return set.find(v) != set.end(); }

}  // namespace

struct AliasGraph::ShapeVertex {
  AliasVertexInfo::Kind kind = AliasVertexInfo::Kind::kVar;
  CfetNodeId node = kCfetRoot;
  LocalId var = kNoLocal;
  const Stmt* alloc = nullptr;
};

struct AliasGraph::MethodShape {
  std::vector<ShapeVertex> vertices;

  struct ShapeEdge {
    uint32_t src;
    uint32_t dst;
    Label label;
    PathEncoding enc;
  };
  std::vector<ShapeEdge> edges;

  // Anchors used during instantiation.
  std::vector<uint32_t> param_vertex;  // per param index; UINT32_MAX if non-object
  struct LeafReturn {
    CfetNodeId leaf;
    uint32_t ret_vertex;
  };
  std::vector<LeafReturn> leaf_returns;
  struct CallAnchor {
    CallSiteId site;
    CfetNodeId node;
    std::vector<std::pair<size_t, uint32_t>> obj_args;  // (param idx, arg occurrence)
    uint32_t dst_vertex = UINT32_MAX;
  };
  std::vector<CallAnchor> calls;
  struct EventAnchor {
    CfetNodeId node;
    uint32_t stmt_index;
    const Stmt* stmt;
    uint32_t receiver_vertex;
  };
  std::vector<EventAnchor> events;
  struct AllocAnchor {
    CfetNodeId node;
    uint32_t stmt_index;
    const Stmt* stmt;
    uint32_t obj_vertex;
  };
  std::vector<AllocAnchor> allocs;
};

AliasGraph::~AliasGraph() = default;

AliasGraph::AliasGraph(const Program& program, const CallGraph& call_graph, const Icfet& icfet,
                       const PointsToLabels& labels, EdgeSink* engine)
    : program_(program),
      call_graph_(call_graph),
      icfet_(icfet),
      labels_(labels),
      engine_(engine) {
  for (size_t i = 0; i < labels_.fields.size(); ++i) {
    field_index_[labels_.fields[i]] = i;
  }
  shapes_.resize(program_.NumMethods());
  for (MethodId m = 0; m < program_.NumMethods(); ++m) {
    BuildShape(m);
  }
  // Shared instances for every recursive method, registered before their
  // bodies instantiate so SCC cycles terminate.
  for (MethodId m : call_graph_.BottomUpOrder()) {
    if (call_graph_.IsRecursive(m) && shared_instance_.find(m) == shared_instance_.end()) {
      Instantiate(m, kNoClone, kNoCallSite, /*shared=*/true);
    }
  }
  for (MethodId m : call_graph_.EntryMethods()) {
    if (call_graph_.IsRecursive(m)) {
      entry_clones_.push_back(shared_instance_.at(m));
    } else {
      entry_clones_.push_back(Instantiate(m, kNoClone, kNoCallSite, /*shared=*/false));
    }
  }
}

void AliasGraph::BuildShape(MethodId m) {
  const Method& method = program_.MethodAt(m);
  const MethodCfet& cfet = icfet_.OfMethod(m);
  MethodShape& shape = shapes_[m];

  auto is_obj = [&](LocalId v) { return v != kNoLocal && method.locals[v].is_object; };

  // --- 1. per-node referenced object variables ---
  std::unordered_map<CfetNodeId, VarSet> referenced;
  for (const auto& [id, node] : cfet.nodes()) {
    VarSet& set = referenced[id];
    for (const auto& ref : node.stmts) {
      const Stmt& stmt = *ref.stmt;
      if (is_obj(stmt.dst)) {
        set.insert(stmt.dst);
      }
      if (is_obj(stmt.src)) {
        set.insert(stmt.src);
      }
      if (is_obj(stmt.base)) {
        set.insert(stmt.base);
      }
      for (LocalId arg : stmt.args) {
        if (is_obj(arg)) {
          set.insert(arg);
        }
      }
    }
    if (node.is_exit && node.return_obj != kNoLocal) {
      set.insert(node.return_obj);
    }
  }
  // Object parameters are defined at the root.
  for (size_t p = 0; p < method.num_params; ++p) {
    if (method.locals[p].is_object) {
      referenced[kCfetRoot].insert(static_cast<LocalId>(p));
    }
  }

  // --- 2. liveness: above = union over ancestors-or-self; below = union
  // over subtree. relevant(v, n) = v in above[n] && v in below[n]. ---
  std::unordered_map<CfetNodeId, VarSet> below;
  std::unordered_map<CfetNodeId, VarSet> relevant;
  // Post-order computation of below (explicit stack over the binary tree).
  struct WalkFrame {
    CfetNodeId id;
    bool expanded;
  };
  std::vector<WalkFrame> stack{{kCfetRoot, false}};
  while (!stack.empty()) {
    WalkFrame frame = stack.back();
    stack.pop_back();
    const CfetNode* node = cfet.FindNode(frame.id);
    if (node == nullptr) {
      continue;
    }
    if (!frame.expanded) {
      stack.push_back({frame.id, true});
      if (node->has_children) {
        stack.push_back({MethodCfet::FalseChild(frame.id), false});
        stack.push_back({MethodCfet::TrueChild(frame.id), false});
      }
      continue;
    }
    VarSet set = referenced[frame.id];
    if (node->has_children) {
      for (CfetNodeId child :
           {MethodCfet::FalseChild(frame.id), MethodCfet::TrueChild(frame.id)}) {
        auto it = below.find(child);
        if (it != below.end()) {
          set.insert(it->second.begin(), it->second.end());
        }
      }
    }
    below[frame.id] = std::move(set);
  }
  // Pre-order: carry `above` down; relevant = above ∩ below.
  struct AboveFrame {
    CfetNodeId id;
    VarSet above;
  };
  std::vector<AboveFrame> astack{{kCfetRoot, referenced[kCfetRoot]}};
  while (!astack.empty()) {
    AboveFrame frame = std::move(astack.back());
    astack.pop_back();
    const CfetNode* node = cfet.FindNode(frame.id);
    if (node == nullptr) {
      continue;
    }
    VarSet& rel = relevant[frame.id];
    const VarSet& sub = below[frame.id];
    for (LocalId v : frame.above) {
      if (Contains(sub, v)) {
        rel.insert(v);
      }
    }
    if (node->has_children) {
      for (CfetNodeId child :
           {MethodCfet::FalseChild(frame.id), MethodCfet::TrueChild(frame.id)}) {
        VarSet child_above = frame.above;
        auto it = referenced.find(child);
        if (it != referenced.end()) {
          child_above.insert(it->second.begin(), it->second.end());
        }
        astack.push_back({child, std::move(child_above)});
      }
    }
  }

  // --- 3. vertices for relevant (node, var) pairs ---
  std::unordered_map<uint64_t, uint32_t> var_vertex;  // (node<<8|var-ish) -> local idx
  auto key_of = [](CfetNodeId node, LocalId var) {
    return (node << 16) ^ (static_cast<uint64_t>(var) + 0x9E3779B9u);
  };
  auto vertex_of = [&](CfetNodeId node, LocalId var) -> uint32_t {
    uint64_t key = key_of(node, var);
    auto it = var_vertex.find(key);
    GRAPPLE_CHECK(it != var_vertex.end())
        << "missing occurrence vertex for var " << method.locals[var].name << " at node "
        << node << " in " << method.name;
    return it->second;
  };
  for (const auto& [id, vars] : relevant) {
    for (LocalId v : vars) {
      ShapeVertex vertex;
      vertex.kind = AliasVertexInfo::Kind::kVar;
      vertex.node = id;
      vertex.var = v;
      var_vertex[key_of(id, v)] = static_cast<uint32_t>(shape.vertices.size());
      shape.vertices.push_back(vertex);
    }
  }

  // --- 4. artificial assign edges along tree edges ---
  for (const auto& [id, vars] : relevant) {
    if (id == kCfetRoot) {
      continue;
    }
    CfetNodeId parent = MethodCfet::ParentOf(id);
    auto pit = relevant.find(parent);
    if (pit == relevant.end()) {
      continue;
    }
    for (LocalId v : vars) {
      if (Contains(pit->second, v)) {
        shape.edges.push_back({vertex_of(parent, v), vertex_of(id, v), labels_.assign,
                               PathEncoding::Interval(m, parent, id)});
      }
    }
  }

  // --- 5. statement edges and anchors ---
  for (const auto& [id, node] : cfet.nodes()) {
    PathEncoding here = PathEncoding::Interval(m, id, id);
    for (uint32_t si = 0; si < node.stmts.size(); ++si) {
      const Stmt& stmt = *node.stmts[si].stmt;
      switch (stmt.kind) {
        case StmtKind::kAlloc: {
          ShapeVertex obj;
          obj.kind = AliasVertexInfo::Kind::kObject;
          obj.node = id;
          obj.alloc = &stmt;
          uint32_t obj_idx = static_cast<uint32_t>(shape.vertices.size());
          shape.vertices.push_back(obj);
          shape.edges.push_back({obj_idx, vertex_of(id, stmt.dst), labels_.new_label, here});
          shape.allocs.push_back({id, si, &stmt, obj_idx});
          break;
        }
        case StmtKind::kAssign:
          if (is_obj(stmt.dst) && is_obj(stmt.src)) {
            shape.edges.push_back(
                {vertex_of(id, stmt.src), vertex_of(id, stmt.dst), labels_.assign, here});
          }
          break;
        case StmtKind::kLoad:
          if (is_obj(stmt.dst) && is_obj(stmt.base)) {
            auto fit = field_index_.find(stmt.field);
            GRAPPLE_CHECK(fit != field_index_.end()) << "unknown field " << stmt.field;
            shape.edges.push_back({vertex_of(id, stmt.base), vertex_of(id, stmt.dst),
                                   labels_.load[fit->second], here});
          }
          break;
        case StmtKind::kStore:
          if (is_obj(stmt.base) && is_obj(stmt.src)) {
            auto fit = field_index_.find(stmt.field);
            GRAPPLE_CHECK(fit != field_index_.end()) << "unknown field " << stmt.field;
            shape.edges.push_back({vertex_of(id, stmt.src), vertex_of(id, stmt.base),
                                   labels_.store[fit->second], here});
          }
          break;
        case StmtKind::kEvent:
          if (is_obj(stmt.src)) {
            shape.events.push_back({id, si, &stmt, vertex_of(id, stmt.src)});
          }
          break;
        case StmtKind::kCall: {
          if (node.stmts[si].call_site == kNoCallSite) {
            break;  // external call
          }
          MethodShape::CallAnchor anchor;
          anchor.site = node.stmts[si].call_site;
          anchor.node = id;
          const CallSite& site = icfet_.CallSiteAt(anchor.site);
          const Method& callee = program_.MethodAt(site.callee);
          for (size_t p = 0; p < callee.num_params && p < stmt.args.size(); ++p) {
            if (callee.locals[p].is_object && is_obj(stmt.args[p])) {
              anchor.obj_args.emplace_back(p, vertex_of(id, stmt.args[p]));
            }
          }
          if (is_obj(stmt.dst)) {
            anchor.dst_vertex = vertex_of(id, stmt.dst);
          }
          shape.calls.push_back(std::move(anchor));
          break;
        }
        default:
          break;
      }
    }
    if (node.is_exit && node.return_obj != kNoLocal && is_obj(node.return_obj)) {
      shape.leaf_returns.push_back({id, vertex_of(id, node.return_obj)});
    }
  }

  // --- 6. parameter anchors ---
  shape.param_vertex.assign(method.num_params, UINT32_MAX);
  for (size_t p = 0; p < method.num_params; ++p) {
    if (method.locals[p].is_object) {
      shape.param_vertex[p] = vertex_of(kCfetRoot, static_cast<LocalId>(p));
    }
  }
}

uint32_t AliasGraph::Instantiate(MethodId m, uint32_t parent, CallSiteId via_site, bool shared) {
  const MethodShape& shape = shapes_[m];
  uint32_t clone_id = static_cast<uint32_t>(clones_.size());
  {
    CloneNode clone;
    clone.method = m;
    clone.parent = parent;
    clone.via_site = via_site;
    clone.shared = shared;
    clones_.push_back(std::move(clone));
  }
  if (shared) {
    shared_instance_[m] = clone_id;
  }
  VertexId base = next_vertex_;
  clone_base_.push_back(base);
  next_vertex_ += static_cast<VertexId>(shape.vertices.size());
  for (const auto& sv : shape.vertices) {
    AliasVertexInfo info;
    info.kind = sv.kind;
    info.method = m;
    info.node = sv.node;
    info.clone = clone_id;
    info.var = sv.var;
    info.alloc = sv.alloc;
    vertex_info_.push_back(info);
  }
  for (const auto& edge : shape.edges) {
    Emit(base + edge.src, base + edge.dst, edge.label, edge.enc);
  }
  for (const auto& event : shape.events) {
    clones_[clone_id].events.push_back(
        {event.node, event.stmt_index, event.stmt, base + event.receiver_vertex});
  }
  for (const auto& alloc : shape.allocs) {
    TrackedObject object;
    object.clone = clone_id;
    object.node = alloc.node;
    object.stmt_index = alloc.stmt_index;
    object.alloc_stmt = alloc.stmt;
    object.object_vertex = base + alloc.obj_vertex;
    object.type = alloc.stmt->type_name;
    objects_.push_back(std::move(object));
  }

  ++depth_;
  for (const auto& anchor : shape.calls) {
    const CallSite& site = icfet_.CallSiteAt(anchor.site);
    bool insensitive = site.context_insensitive || depth_ > kMaxInlineDepth;
    uint32_t child;
    if (insensitive) {
      auto it = shared_instance_.find(site.callee);
      child = (it != shared_instance_.end())
                  ? it->second
                  : Instantiate(site.callee, kNoClone, kNoCallSite, /*shared=*/true);
    } else {
      child = Instantiate(site.callee, clone_id, site.id, /*shared=*/false);
    }
    clones_[clone_id].children[anchor.site] = child;
    VertexId child_base = clone_base_[child];
    const MethodShape& callee_shape = shapes_[site.callee];
    PathEncoding call_enc =
        insensitive ? PathEncoding::Empty() : PathEncoding::CallEdge(site.id);
    PathEncoding ret_enc = insensitive ? PathEncoding::Empty() : PathEncoding::RetEdge(site.id);
    for (const auto& [param_idx, arg_vertex] : anchor.obj_args) {
      uint32_t param_vertex = callee_shape.param_vertex[param_idx];
      if (param_vertex != UINT32_MAX) {
        Emit(base + arg_vertex, child_base + param_vertex, labels_.assign, call_enc);
      }
    }
    if (anchor.dst_vertex != UINT32_MAX) {
      for (const auto& leaf_return : callee_shape.leaf_returns) {
        Emit(child_base + leaf_return.ret_vertex, base + anchor.dst_vertex, labels_.assign,
             ret_enc);
      }
    }
  }
  --depth_;
  return clone_id;
}

void AliasGraph::Emit(VertexId src, VertexId dst, Label label, const PathEncoding& enc) {
  engine_->AddBaseEdge(src, dst, label, enc);
  ++emitted_edges_;
}

uint32_t AliasGraph::EntryOf(uint32_t clone) const {
  while (clones_[clone].parent != kNoClone) {
    clone = clones_[clone].parent;
  }
  return clone;
}

std::string AliasGraph::DescribeVertex(VertexId v) const {
  if (v >= vertex_info_.size()) {
    return "v" + std::to_string(v);
  }
  const AliasVertexInfo& info = vertex_info_[v];
  const Method& method = program_.MethodAt(info.method);
  std::string out = method.name;
  if (info.kind == AliasVertexInfo::Kind::kVar) {
    out += "::" + method.locals[info.var].name;
  } else {
    out += "::new " + info.alloc->type_name;
  }
  out += "@n" + std::to_string(info.node) + "#c" + std::to_string(info.clone);
  return out;
}

}  // namespace grapple
