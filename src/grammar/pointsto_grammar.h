// The Sridharan–Bodik points-to grammar (Figure 4 of the paper), normalized
// to binary rules over a finite field set:
//
//   flowsTo  ::= new (assign | store[f] alias load[f])*
//   alias    ::= flowsToBar flowsTo
//   flowsToBar ::= (assignBar | loadBar[f] alias storeBar[f])* newBar
//
// Binary normalization (per field f):
//   FT  := new            | FT assign | FT SAL_f
//   SA_f  := store_f alias      SAL_f := SA_f load_f
//   FTB := newBar         | assignBar FTB | LAS_f FTB
//   LA_f  := loadBar_f alias    LAS_f := LA_f storeBar_f
//   alias := FTB FT                       (alias mirrors itself)
//
// Base graphs must emit each new/assign/store/load edge together with its
// bar mirror (the graph generator does; see src/analysis).
#ifndef GRAPPLE_SRC_GRAMMAR_POINTSTO_GRAMMAR_H_
#define GRAPPLE_SRC_GRAMMAR_POINTSTO_GRAMMAR_H_

#include <string>
#include <vector>

#include "src/grammar/grammar.h"

namespace grapple {

struct PointsToLabels {
  // The field universe, in label-index order (store[i]/load[i] belong to
  // fields[i]).
  std::vector<std::string> fields;
  Label new_label = kNoLabel;
  Label new_bar = kNoLabel;
  Label assign = kNoLabel;
  Label assign_bar = kNoLabel;
  Label flows_to = kNoLabel;
  Label flows_to_bar = kNoLabel;
  Label alias = kNoLabel;
  // Indexed by field id (position in the `fields` vector passed in).
  std::vector<Label> store;
  std::vector<Label> store_bar;
  std::vector<Label> load;
  std::vector<Label> load_bar;
};

// Populates `grammar` with the points-to rules for the given field names and
// returns the label handles.
PointsToLabels BuildPointsToGrammar(Grammar* grammar, const std::vector<std::string>& fields);

}  // namespace grapple

#endif  // GRAPPLE_SRC_GRAMMAR_POINTSTO_GRAMMAR_H_
