#include "src/grammar/typestate_grammar.h"

namespace grapple {

TypestateLabels BuildTypestateGrammar(Grammar* grammar, const Fsm& fsm) {
  TypestateLabels labels;
  labels.flow = grammar->Intern("flow");
  labels.event.reserve(fsm.NumEvents());
  for (size_t e = 0; e < fsm.NumEvents(); ++e) {
    labels.event.push_back(grammar->Intern("event[" + fsm.EventName(static_cast<FsmEventId>(e)) + "]"));
  }
  labels.state.reserve(fsm.NumStates());
  for (size_t q = 0; q < fsm.NumStates(); ++q) {
    labels.state.push_back(grammar->Intern("state[" + fsm.StateName(static_cast<FsmStateId>(q)) + "]"));
  }
  for (size_t q = 0; q < fsm.NumStates(); ++q) {
    // state[q] := state[q] flow. The explicit error sink (if any) gets no
    // flow rule: an error edge stays pinned at the event that caused it, so
    // the checker reports the transition point, not every downstream vertex.
    if (!fsm.IsError(static_cast<FsmStateId>(q))) {
      grammar->AddBinary(labels.state[q], labels.flow, labels.state[q]);
    }
    for (size_t e = 0; e < fsm.NumEvents(); ++e) {
      auto next = fsm.Next(static_cast<FsmStateId>(q), static_cast<FsmEventId>(e));
      if (next.has_value()) {
        // state[q'] := state[q] event[e]
        grammar->AddBinary(labels.state[q], labels.event[e], labels.state[*next]);
      }
    }
  }
  return labels;
}

}  // namespace grapple
