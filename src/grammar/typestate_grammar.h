// The typestate-propagation grammar for phase 2 (dataflow analysis, §2.2).
//
// Dataflow facts are FSM states. Vertices of the phase-2 graph are program
// (event) points; base edges are `flow` (control-flow successor) and one
// event label per FSM input symbol; a seed edge labelled state[q0'] connects
// the allocation vertex to its program point. The regular rules
//
//   state[q'] := state[q] event[e]   for every transition d(q, e) = q'
//   state[q]  := state[q] flow
//
// then propagate reachable states — grammar-guided reachability where the
// grammar happens to be regular, running on the same engine as phase 1.
#ifndef GRAPPLE_SRC_GRAMMAR_TYPESTATE_GRAMMAR_H_
#define GRAPPLE_SRC_GRAMMAR_TYPESTATE_GRAMMAR_H_

#include <vector>

#include "src/checker/fsm.h"
#include "src/grammar/grammar.h"

namespace grapple {

struct TypestateLabels {
  Label flow = kNoLabel;
  // Indexed by FSM event id.
  std::vector<Label> event;
  // Indexed by FSM state id.
  std::vector<Label> state;
};

TypestateLabels BuildTypestateGrammar(Grammar* grammar, const Fsm& fsm);

}  // namespace grapple

#endif  // GRAPPLE_SRC_GRAMMAR_TYPESTATE_GRAMMAR_H_
