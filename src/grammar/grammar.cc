#include "src/grammar/grammar.h"

#include "src/support/logging.h"

namespace grapple {

Label Grammar::Intern(const std::string& name) {
  auto it = by_name_.find(name);
  if (it != by_name_.end()) {
    return it->second;
  }
  Label label = static_cast<Label>(names_.size());
  GRAPPLE_CHECK_LT(names_.size(), size_t{kNoLabel}) << "label space exhausted";
  names_.push_back(name);
  by_name_.emplace(name, label);
  mirror_.push_back(kNoLabel);
  begins_binary_.push_back(0);
  return label;
}

std::optional<Label> Grammar::Find(const std::string& name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    return std::nullopt;
  }
  return it->second;
}

const std::string& Grammar::NameOf(Label label) const {
  GRAPPLE_CHECK_LT(label, names_.size());
  return names_[label];
}

void Grammar::AddUnary(Label single, Label result) { unary_[single].push_back(result); }

void Grammar::AddBinary(Label first, Label second, Label result) {
  binary_[PairKey(first, second)].push_back(result);
  begins_binary_[first] = 1;
}

void Grammar::SetMirror(Label label, Label mirror) {
  mirror_[label] = mirror;
  mirror_[mirror] = label;
}

const std::vector<Label>& Grammar::UnaryResults(Label single) const {
  auto it = unary_.find(single);
  return it == unary_.end() ? empty_ : it->second;
}

const std::vector<Label>& Grammar::BinaryResults(Label first, Label second) const {
  auto it = binary_.find(PairKey(first, second));
  return it == binary_.end() ? empty_ : it->second;
}

Label Grammar::MirrorOf(Label label) const { return mirror_[label]; }

bool Grammar::CanBeginBinary(Label first) const { return begins_binary_[first] != 0; }

}  // namespace grapple
