#include "src/grammar/pointsto_grammar.h"

namespace grapple {

PointsToLabels BuildPointsToGrammar(Grammar* grammar, const std::vector<std::string>& fields) {
  PointsToLabels labels;
  labels.fields = fields;
  labels.new_label = grammar->Intern("new");
  labels.new_bar = grammar->Intern("newBar");
  labels.assign = grammar->Intern("assign");
  labels.assign_bar = grammar->Intern("assignBar");
  labels.flows_to = grammar->Intern("flowsTo");
  labels.flows_to_bar = grammar->Intern("flowsToBar");
  labels.alias = grammar->Intern("alias");

  grammar->SetMirror(labels.new_label, labels.new_bar);
  grammar->SetMirror(labels.assign, labels.assign_bar);
  grammar->SetMirror(labels.flows_to, labels.flows_to_bar);
  grammar->SetMirror(labels.alias, labels.alias);

  // FT := new ; FT := FT assign
  grammar->AddUnary(labels.new_label, labels.flows_to);
  grammar->AddBinary(labels.flows_to, labels.assign, labels.flows_to);
  // FTB := newBar ; FTB := assignBar FTB
  grammar->AddUnary(labels.new_bar, labels.flows_to_bar);
  grammar->AddBinary(labels.assign_bar, labels.flows_to_bar, labels.flows_to_bar);
  // alias := FTB FT (self-mirrored: u~v implies v~u)
  grammar->AddBinary(labels.flows_to_bar, labels.flows_to, labels.alias);

  for (const auto& field : fields) {
    Label store = grammar->Intern("store[" + field + "]");
    Label store_bar = grammar->Intern("storeBar[" + field + "]");
    Label load = grammar->Intern("load[" + field + "]");
    Label load_bar = grammar->Intern("loadBar[" + field + "]");
    grammar->SetMirror(store, store_bar);
    grammar->SetMirror(load, load_bar);
    labels.store.push_back(store);
    labels.store_bar.push_back(store_bar);
    labels.load.push_back(load);
    labels.load_bar.push_back(load_bar);

    // SA_f := store_f alias ; SAL_f := SA_f load_f ; FT := FT SAL_f
    Label sa = grammar->Intern("SA[" + field + "]");
    Label sal = grammar->Intern("SAL[" + field + "]");
    grammar->AddBinary(store, labels.alias, sa);
    grammar->AddBinary(sa, load, sal);
    grammar->AddBinary(labels.flows_to, sal, labels.flows_to);

    // LA_f := loadBar_f alias ; LAS_f := LA_f storeBar_f ; FTB := LAS_f FTB
    Label la = grammar->Intern("LA[" + field + "]");
    Label las = grammar->Intern("LAS[" + field + "]");
    grammar->AddBinary(load_bar, labels.alias, la);
    grammar->AddBinary(la, store_bar, las);
    grammar->AddBinary(las, labels.flows_to_bar, labels.flows_to_bar);
  }
  return labels;
}

}  // namespace grapple
