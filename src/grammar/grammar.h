// Normalized context-free grammars for grammar-guided reachability (§2.1).
//
// The engine checks one pair of consecutive edges at a time, so every rule is
// at most binary (the paper notes any CFG can be normalized this way, as in
// Chomsky normal form). A grammar also records "mirror" labels: when an edge
// u -L-> v is added and L has a mirror M, the engine materializes v -M-> u
// with the same payload (how reverse/bar edges such as flowsTo-bar stay in
// sync with their forward counterparts).
#ifndef GRAPPLE_SRC_GRAMMAR_GRAMMAR_H_
#define GRAPPLE_SRC_GRAMMAR_GRAMMAR_H_

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace grapple {

using Label = uint16_t;
inline constexpr Label kNoLabel = 0xFFFF;

class Grammar {
 public:
  // Registers (or returns the existing) label with this name.
  Label Intern(const std::string& name);
  std::optional<Label> Find(const std::string& name) const;
  const std::string& NameOf(Label label) const;
  size_t NumLabels() const { return names_.size(); }

  // result := single
  void AddUnary(Label single, Label result);
  // result := first second
  void AddBinary(Label first, Label second, Label result);
  // Adding u -label-> v also adds v -mirror-> u. Symmetric labels (alias)
  // may mirror themselves.
  void SetMirror(Label label, Label mirror);

  const std::vector<Label>& UnaryResults(Label single) const;
  const std::vector<Label>& BinaryResults(Label first, Label second) const;
  Label MirrorOf(Label label) const;  // kNoLabel when none

  // True when `first` can start some binary rule — a cheap pre-filter for
  // the join loop.
  bool CanBeginBinary(Label first) const;

 private:
  static uint32_t PairKey(Label a, Label b) {
    return (static_cast<uint32_t>(a) << 16) | b;
  }

  std::vector<std::string> names_;
  std::unordered_map<std::string, Label> by_name_;
  std::unordered_map<Label, std::vector<Label>> unary_;
  std::unordered_map<uint32_t, std::vector<Label>> binary_;
  std::vector<Label> mirror_;
  std::vector<uint8_t> begins_binary_;
  std::vector<Label> empty_;
};

}  // namespace grapple

#endif  // GRAPPLE_SRC_GRAMMAR_GRAMMAR_H_
