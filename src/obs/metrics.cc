#include "src/obs/metrics.h"

#include <algorithm>
#include <bit>

#include "src/obs/json.h"
#include "src/support/logging.h"

namespace grapple {
namespace obs {

namespace {

// Monotonic id source making (address, generation) pairs unique for the
// lifetime of the process, so thread-local shard caches can never confuse a
// dead registry with a new one allocated at the same address.
std::atomic<uint64_t> g_registry_generation{1};

size_t BucketOf(uint64_t value) {
  // floor(log2(value)) with 0 -> bucket 0; clamped to the last bucket.
  if (value == 0) {
    return 0;
  }
  size_t bucket = static_cast<size_t>(std::bit_width(value)) - 1;
  return std::min(bucket, kHistogramBuckets - 1);
}

void AtomicMin(std::atomic<uint64_t>* slot, uint64_t value) {
  uint64_t cur = slot->load(std::memory_order_relaxed);
  while (value < cur && !slot->compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<uint64_t>* slot, uint64_t value) {
  uint64_t cur = slot->load(std::memory_order_relaxed);
  while (value > cur && !slot->compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

}  // namespace

uint64_t HistogramSnapshot::ApproxPercentile(double p) const {
  if (count == 0) {
    return 0;
  }
  double rank = p / 100.0 * static_cast<double>(count);
  uint64_t seen = 0;
  for (size_t b = 0; b < kHistogramBuckets; ++b) {
    seen += buckets[b];
    if (static_cast<double>(seen) >= rank) {
      // Upper bound of bucket b is 2^(b+1) - 1.
      return b + 1 >= 64 ? UINT64_MAX : (uint64_t{1} << (b + 1)) - 1;
    }
  }
  return max;
}

void HistogramSnapshot::Merge(const HistogramSnapshot& other) {
  if (other.count == 0) {
    return;
  }
  if (count == 0) {
    min = other.min;
    max = other.max;
  } else {
    min = std::min(min, other.min);
    max = std::max(max, other.max);
  }
  count += other.count;
  sum += other.sum;
  for (size_t b = 0; b < kHistogramBuckets; ++b) {
    buckets[b] += other.buckets[b];
  }
}

uint64_t MetricsSnapshot::CounterOr(const std::string& name, uint64_t default_value) const {
  auto it = counters.find(name);
  return it == counters.end() ? default_value : it->second;
}

double MetricsSnapshot::GaugeOr(const std::string& name, double default_value) const {
  auto it = gauges.find(name);
  return it == gauges.end() ? default_value : it->second;
}

double MetricsSnapshot::SecondsOf(const std::string& name) const {
  return static_cast<double>(CounterOr(name)) * 1e-9;
}

void MetricsSnapshot::Merge(const MetricsSnapshot& other) {
  for (const auto& [name, value] : other.counters) {
    counters[name] += value;
  }
  for (const auto& [name, value] : other.gauges) {
    auto it = gauges.find(name);
    if (it == gauges.end() || value > it->second) {
      gauges[name] = value;
    }
  }
  for (const auto& [name, hist] : other.histograms) {
    histograms[name].Merge(hist);
  }
}

std::string MetricsSnapshot::ToJson() const {
  JsonWriter w;
  w.BeginObject();
  w.Key("counters").BeginObject();
  for (const auto& [name, value] : counters) {
    w.Key(name).UInt(value);
  }
  w.EndObject();
  w.Key("gauges").BeginObject();
  for (const auto& [name, value] : gauges) {
    w.Key(name).Double(value);
  }
  w.EndObject();
  w.Key("histograms").BeginObject();
  for (const auto& [name, hist] : histograms) {
    w.Key(name).BeginObject();
    w.Key("count").UInt(hist.count);
    w.Key("sum").UInt(hist.sum);
    w.Key("min").UInt(hist.min);
    w.Key("max").UInt(hist.max);
    w.Key("mean").Double(hist.Mean());
    w.Key("p50").UInt(hist.ApproxPercentile(50));
    w.Key("p99").UInt(hist.ApproxPercentile(99));
    // Sparse bucket encoding: [log2_lower_bound, count] pairs.
    w.Key("buckets").BeginArray();
    for (size_t b = 0; b < kHistogramBuckets; ++b) {
      if (hist.buckets[b] != 0) {
        w.BeginArray().UInt(b).UInt(hist.buckets[b]).EndArray();
      }
    }
    w.EndArray();
    w.EndObject();
  }
  w.EndObject();
  w.EndObject();
  return w.Take();
}

struct MetricsRegistry::Shard {
  std::array<std::atomic<uint64_t>, kMaxCounters> counters{};

  struct Hist {
    std::atomic<uint64_t> count{0};
    std::atomic<uint64_t> sum{0};
    std::atomic<uint64_t> min{UINT64_MAX};
    std::atomic<uint64_t> max{0};
    std::array<std::atomic<uint64_t>, kHistogramBuckets> buckets{};
  };
  std::array<Hist, kMaxHistograms> hists{};
};

namespace {

// Thread-local shard cache. An entry is valid only while both the registry
// address and its generation match, so destroyed registries are never
// dereferenced. Bounded: stale entries are evicted round-robin.
struct TlsShardCache {
  struct Entry {
    const void* registry = nullptr;
    uint64_t generation = 0;
    void* shard = nullptr;
  };
  std::array<Entry, 8> entries{};
  size_t next_evict = 0;
};

thread_local TlsShardCache t_shard_cache;

}  // namespace

MetricsRegistry::MetricsRegistry()
    : generation_(g_registry_generation.fetch_add(1, std::memory_order_relaxed)) {}

MetricsRegistry::~MetricsRegistry() = default;

MetricId MetricsRegistry::Counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t i = 0; i < counter_names_.size(); ++i) {
    if (counter_names_[i] == name) {
      return static_cast<MetricId>(i);
    }
  }
  GRAPPLE_CHECK(counter_names_.size() < kMaxCounters) << "counter capacity exceeded: " << name;
  counter_names_.push_back(name);
  return static_cast<MetricId>(counter_names_.size() - 1);
}

MetricId MetricsRegistry::Histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t i = 0; i < histogram_names_.size(); ++i) {
    if (histogram_names_[i] == name) {
      return static_cast<MetricId>(i);
    }
  }
  GRAPPLE_CHECK(histogram_names_.size() < kMaxHistograms)
      << "histogram capacity exceeded: " << name;
  histogram_names_.push_back(name);
  return static_cast<MetricId>(histogram_names_.size() - 1);
}

MetricsRegistry::Shard* MetricsRegistry::LocalShard() const {
  TlsShardCache& cache = t_shard_cache;
  for (const auto& entry : cache.entries) {
    if (entry.registry == this && entry.generation == generation_) {
      return static_cast<Shard*>(entry.shard);
    }
  }
  // Slow path: register a shard for this thread.
  Shard* shard = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    shards_.push_back(std::make_unique<Shard>());
    shard = shards_.back().get();
  }
  TlsShardCache::Entry& slot = cache.entries[cache.next_evict];
  cache.next_evict = (cache.next_evict + 1) % cache.entries.size();
  slot.registry = this;
  slot.generation = generation_;
  slot.shard = shard;
  return shard;
}

void MetricsRegistry::Add(MetricId id, uint64_t delta) {
  if (id >= kMaxCounters) {
    return;
  }
  LocalShard()->counters[id].fetch_add(delta, std::memory_order_relaxed);
}

void MetricsRegistry::Observe(MetricId id, uint64_t value) {
  if (id >= kMaxHistograms) {
    return;
  }
  Shard::Hist& hist = LocalShard()->hists[id];
  hist.count.fetch_add(1, std::memory_order_relaxed);
  hist.sum.fetch_add(value, std::memory_order_relaxed);
  AtomicMin(&hist.min, value);
  AtomicMax(&hist.max, value);
  hist.buckets[BucketOf(value)].fetch_add(1, std::memory_order_relaxed);
}

void MetricsRegistry::SetGauge(const std::string& name, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  gauges_[name] = value;
}

void MetricsRegistry::MaxGauge(const std::string& name, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end() || value > it->second) {
    gauges_[name] = value;
  }
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snapshot;
  for (size_t i = 0; i < counter_names_.size(); ++i) {
    uint64_t total = 0;
    for (const auto& shard : shards_) {
      total += shard->counters[i].load(std::memory_order_relaxed);
    }
    snapshot.counters[counter_names_[i]] = total;
  }
  for (size_t i = 0; i < histogram_names_.size(); ++i) {
    HistogramSnapshot hist;
    for (const auto& shard : shards_) {
      const Shard::Hist& h = shard->hists[i];
      uint64_t count = h.count.load(std::memory_order_relaxed);
      if (count == 0) {
        continue;
      }
      HistogramSnapshot part;
      part.count = count;
      part.sum = h.sum.load(std::memory_order_relaxed);
      part.min = h.min.load(std::memory_order_relaxed);
      part.max = h.max.load(std::memory_order_relaxed);
      for (size_t b = 0; b < kHistogramBuckets; ++b) {
        part.buckets[b] = h.buckets[b].load(std::memory_order_relaxed);
      }
      hist.Merge(part);
    }
    snapshot.histograms[histogram_names_[i]] = hist;
  }
  snapshot.gauges = gauges_;
  return snapshot;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& shard : shards_) {
    for (auto& counter : shard->counters) {
      counter.store(0, std::memory_order_relaxed);
    }
    for (auto& hist : shard->hists) {
      hist.count.store(0, std::memory_order_relaxed);
      hist.sum.store(0, std::memory_order_relaxed);
      hist.min.store(UINT64_MAX, std::memory_order_relaxed);
      hist.max.store(0, std::memory_order_relaxed);
      for (auto& bucket : hist.buckets) {
        bucket.store(0, std::memory_order_relaxed);
      }
    }
  }
  gauges_.clear();
}

}  // namespace obs
}  // namespace grapple
