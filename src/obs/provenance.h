// Derivation provenance for induced edges (bug-witness support).
//
// The graph engine's transitive closure induces edges by joining two parent
// edges against a grammar production. When witness recording is enabled,
// every *new* edge (one record per unique content hash) appends a compact
// derivation record to an out-of-core log that lives alongside the engine's
// partition files: memory stays bounded during the run, and the full
// derivation DAG is only materialized at decode time — which happens per
// reported bug, not per edge.
//
// Record kinds:
//   * base    — an edge fed into the engine before the closure (leaf);
//   * join    — induced by a binary production from parents (a, b);
//   * rewrite — derived from a single parent by a unary production or a
//               mirror label.
//
// Edges are identified by their 64-bit content hash (src, dst, label,
// payload) — the same hash the engine's global dedup index uses, so exactly
// one record exists per materialized edge and parent references are stable.
// Records inline the child's payload (the interval path encoding) plus both
// parents' (src, dst, label) identities, so a decoder can walk the chain
// backwards and recover the per-step path constraints without re-reading
// partitions.
//
// This layer is deliberately typeless about the graph: vertices are raw
// uint32s and labels raw uint16s, so src/obs keeps depending only on
// src/support.
#ifndef GRAPPLE_SRC_OBS_PROVENANCE_H_
#define GRAPPLE_SRC_OBS_PROVENANCE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/obs/metrics.h"

namespace grapple {
namespace obs {

// GRAPPLE_WITNESS={off,bugs,full} — how much derivation provenance a run
// records (see WitnessModeFromEnv; the facade maps modes onto phases).
enum class WitnessMode : uint8_t {
  kOff = 0,   // record nothing; bug reports carry no witnesses
  kBugs = 1,  // record during bug-finding (typestate) phases only [default]
  kFull = 2,  // record during every phase and replay each witness step
};

const char* WitnessModeName(WitnessMode mode);
// Parses GRAPPLE_WITNESS; unset or unrecognized values yield `fallback`.
WitnessMode WitnessModeFromEnv(WitnessMode fallback = WitnessMode::kBugs);

enum class ProvKind : uint8_t {
  kBase = 0,
  kJoin = 1,
  kRewrite = 2,
};

// Raw edge identity as the provenance layer sees it.
struct ProvEdge {
  uint32_t src = 0;
  uint32_t dst = 0;
  uint16_t label = 0;
};

struct ProvRecord {
  ProvKind kind = ProvKind::kBase;
  bool widened = false;  // payload was replaced by the always-true payload
  uint64_t hash = 0;     // content hash of the recorded edge
  ProvEdge edge;
  std::vector<uint8_t> payload;  // the edge's (possibly widened) payload
  // kJoin: both parents; kRewrite: parent_a only.
  uint64_t parent_a = 0;
  uint64_t parent_b = 0;
  ProvEdge a_edge;
  ProvEdge b_edge;
};

// Append-only, buffered writer for one engine run's provenance log. Not
// thread-safe: the engine only records from its sequential integration and
// finalize paths. Counters ("provenance_records_total", "provenance_bytes")
// register in `metrics` when provided.
class ProvenanceWriter {
 public:
  ProvenanceWriter(std::string path, MetricsRegistry* metrics);
  ~ProvenanceWriter();  // flushes

  const std::string& path() const { return path_; }

  void RecordBase(uint64_t hash, const ProvEdge& edge, const uint8_t* payload, size_t len);
  void RecordJoin(uint64_t hash, const ProvEdge& edge, const uint8_t* payload, size_t len,
                  uint64_t parent_a, const ProvEdge& a_edge, uint64_t parent_b,
                  const ProvEdge& b_edge, bool widened);
  void RecordRewrite(uint64_t hash, const ProvEdge& edge, const uint8_t* payload, size_t len,
                     uint64_t parent, const ProvEdge& parent_edge);

  // Appends the buffered tail to the log file. Returns false on I/O failure
  // (also logged; recording continues best-effort).
  bool Flush();

  // Checkpoint-resume support: declares that `bytes`/`records` of log are
  // already on disk (the caller truncated the file to that high-water mark),
  // so subsequent flushes append after them instead of truncating. Must be
  // called before the first Record*.
  void ResumeAt(uint64_t bytes, uint64_t records);

  uint64_t records_written() const { return records_; }
  uint64_t bytes_written() const { return bytes_; }

 private:
  void Put(ProvKind kind, uint64_t hash, const ProvEdge& edge, const uint8_t* payload,
           size_t len, uint64_t parent_a, const ProvEdge& a_edge, uint64_t parent_b,
           const ProvEdge& b_edge, bool widened);

  std::string path_;
  MetricsRegistry* metrics_;
  MetricId c_records_ = kInvalidMetric;
  MetricId c_bytes_ = kInvalidMetric;
  std::vector<uint8_t> buffer_;
  uint64_t records_ = 0;
  uint64_t bytes_ = 0;
  bool file_started_ = false;
};

// Loads a provenance log and indexes it by edge hash. Built at decode time
// (per phase with reported bugs), not during the run.
class ProvenanceReader {
 public:
  // Returns false when the file is missing or corrupt past the first
  // readable prefix (records read so far are kept).
  bool Open(const std::string& path);

  const ProvRecord* Lookup(uint64_t hash) const;
  size_t NumRecords() const { return records_.size(); }
  uint64_t FileBytes() const { return file_bytes_; }

 private:
  std::unordered_map<uint64_t, ProvRecord> records_;
  uint64_t file_bytes_ = 0;
};

}  // namespace obs
}  // namespace grapple

#endif  // GRAPPLE_SRC_OBS_PROVENANCE_H_
