#include "src/obs/sampler.h"

#include <chrono>

#include "src/obs/statusz.h"

namespace grapple {
namespace obs {

namespace {

uint64_t NowMs() {
  static const std::chrono::steady_clock::time_point start = std::chrono::steady_clock::now();
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::milliseconds>(
                                   std::chrono::steady_clock::now() - start)
                                   .count());
}

}  // namespace

Sampler& Sampler::Get() {
  static Sampler* sampler = new Sampler;
  return *sampler;
}

void Sampler::Start(uint32_t interval_ms) {
  std::lock_guard<std::mutex> lock(mu_);
  if (running_.load(std::memory_order_acquire)) {
    return;
  }
  interval_ms_.store(interval_ms == 0 ? 1 : interval_ms, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { Loop(); });
}

void Sampler::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_.exchange(false, std::memory_order_acq_rel)) {
      return;
    }
    cv_.notify_all();
  }
  if (thread_.joinable()) {
    thread_.join();
  }
}

void Sampler::Loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (running_.load(std::memory_order_acquire)) {
    lock.unlock();
    SampleNow();
    lock.lock();
    cv_.wait_for(lock, std::chrono::milliseconds(interval_ms_.load(std::memory_order_acquire)),
                 [this] { return !running_.load(std::memory_order_acquire); });
  }
}

void Sampler::SampleNow() {
  // Collect outside mu_: source callbacks can be slow, and Series() readers
  // should not wait on them.
  MetricsSnapshot snapshot = Introspection::MergedMetrics();
  std::map<std::string, double> gauges = Introspection::RuntimeGauges();
  Sample sample;
  sample.ts_ms = NowMs();
  for (const auto& [name, value] : snapshot.counters) {
    sample.values[name] = static_cast<double>(value);
  }
  for (const auto& [name, value] : snapshot.gauges) {
    sample.values[name] = value;
  }
  for (const auto& [name, value] : gauges) {
    sample.values[name] = value;
  }
  std::lock_guard<std::mutex> lock(mu_);
  ring_.push_back(std::move(sample));
  while (ring_.size() > ring_capacity_) {
    ring_.pop_front();
  }
}

std::vector<Sampler::Point> Sampler::Series(const std::string& name) const {
  std::vector<Point> series;
  std::lock_guard<std::mutex> lock(mu_);
  for (const Sample& sample : ring_) {
    auto it = sample.values.find(name);
    if (it != sample.values.end()) {
      series.push_back(Point{sample.ts_ms, it->second});
    }
  }
  return series;
}

std::vector<std::string> Sampler::SeriesNames() const {
  std::map<std::string, bool> seen;
  std::lock_guard<std::mutex> lock(mu_);
  for (const Sample& sample : ring_) {
    for (const auto& [name, value] : sample.values) {
      seen[name] = true;
    }
  }
  std::vector<std::string> names;
  names.reserve(seen.size());
  for (const auto& [name, unused] : seen) {
    names.push_back(name);
  }
  return names;
}

size_t Sampler::sample_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

void Sampler::SetRingCapacity(size_t samples) {
  std::lock_guard<std::mutex> lock(mu_);
  ring_capacity_ = samples == 0 ? 1 : samples;
  while (ring_.size() > ring_capacity_) {
    ring_.pop_front();
  }
}

void Sampler::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
}

}  // namespace obs
}  // namespace grapple
