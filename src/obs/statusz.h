// Live introspection endpoint (DESIGN.md §12): a process-wide registry of
// metrics / gauge / status sources, and the HTTP pages served over
// src/support/socket_server.
//
// Components register what they can report while they are alive:
//
//   class GraphEngine {
//     ...
//     obs::Introspection::Handle metrics_handle_;   // declared last: the
//     obs::Introspection::Handle status_handle_;    // handle unregisters
//   };                                              // before members die
//   // ctor body:
//   metrics_handle_ = Introspection::RegisterMetricsSource(
//       "engine", [this] { return metrics_.Snapshot(); });
//
// Handles are move-only RAII registrations. Unregistering blocks while a
// scrape is inside the callback (same lock), so a destructor that releases
// its handle first can safely tear down the state the callback reads.
// Callbacks run on the scrape/sampler thread and must be thread-safe; they
// must not re-enter Introspection.
//
// Pages (enabled via GrappleOptions::Observability::statusz_port or
// GRAPPLE_STATUSZ; port 0 picks an ephemeral port, readable via
// StatuszPort()):
//   /healthz   200 "ok" while the server runs
//   /statusz   JSON: session/status sources + runtime gauges
//   /metricsz  Prometheus text exposition of the merged registries
//   /tracez    recent flight-recorder tail (JSON)
//   /varz?name=<series>  one sampler time-series as JSON
#ifndef GRAPPLE_SRC_OBS_STATUSZ_H_
#define GRAPPLE_SRC_OBS_STATUSZ_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "src/obs/metrics.h"

namespace grapple {
namespace obs {

class Introspection {
 public:
  // Move-only registration; unregisters on destruction or Release().
  class Handle {
   public:
    Handle() = default;
    ~Handle() { Release(); }
    Handle(Handle&& other) noexcept : id_(other.id_) { other.id_ = 0; }
    Handle& operator=(Handle&& other) noexcept;
    Handle(const Handle&) = delete;
    Handle& operator=(const Handle&) = delete;

    bool valid() const { return id_ != 0; }
    // Unregisters now; blocks until no scrape is inside the callback.
    void Release();

   private:
    friend class Introspection;
    explicit Handle(uint64_t id) : id_(id) {}
    uint64_t id_ = 0;
  };

  // A full registry snapshot, merged across sources for /metricsz.
  static Handle RegisterMetricsSource(const std::string& name,
                                      std::function<MetricsSnapshot()> fn);
  // A single live number (queue depth, cache bytes, waiter count). Sources
  // sharing a name are summed — N engines' queue depths add up.
  static Handle RegisterGaugeSource(const std::string& name, std::function<double()> fn);
  // A JSON object (rendered text) describing live state: the session's
  // active checkers, an engine's pair cursor. Duplicate names get a "#k"
  // suffix in StatusJson().
  static Handle RegisterStatusSource(const std::string& name,
                                     std::function<std::string()> fn);

  static MetricsSnapshot MergedMetrics();
  // Evaluated gauge sources plus built-in process gauges (rss_bytes).
  static std::map<std::string, double> RuntimeGauges();
  static std::string StatusJson();
};

// Resident set size from /proc/self/statm; 0 where unavailable.
uint64_t ProcessRssBytes();

// Prometheus text exposition (counters, gauges, histogram _count/_sum),
// every name prefixed "grapple_". Exposed for tests and /metricsz.
std::string RenderPrometheus(const MetricsSnapshot& snapshot,
                             const std::map<std::string, double>& runtime_gauges);

// One rendered introspection page; what the HTTP handler serves.
struct IntrospectionPage {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};
IntrospectionPage RenderIntrospectionPage(const std::string& path, const std::string& query);

// Starts/stops the process-wide statusz server. Start is idempotent (a
// second call while running succeeds and keeps the first server); Stop is
// idempotent. Port 0 binds an ephemeral port.
bool StartStatusz(int port, std::string* error);
void StopStatusz();
bool StatuszRunning();
// Bound port; 0 when not running.
int StatuszPort();

}  // namespace obs
}  // namespace grapple

#endif  // GRAPPLE_SRC_OBS_STATUSZ_H_
