// Always-on flight recorder (DESIGN.md §12): per-thread lock-free ring
// buffers of fixed-size binary events, merged on demand into a JSON or
// Chrome-trace tail, and spilled to `flightrec.bin` on crash paths.
//
// Writers record through the support-layer hook (`evt::Emit`), which this
// module installs itself behind via EventLogInstall(). The hot path is one
// relaxed enabled-check, a timestamp read, and three stores into the
// calling thread's own ring slot, bracketed by a per-slot sequence counter
// (seqlock): readers that race a writer detect the torn slot and drop it
// rather than reporting garbage. Rings overwrite oldest-first; the recorder
// never blocks, never allocates after a thread's first event, and never
// grows — bounded overhead is the contract that lets it stay on in
// production runs.
//
// The merger (EventLogTail*) snapshots every thread's ring, discards torn
// or empty slots, sorts by timestamp, and keeps the newest `max_events`.
// On a fault-injection `_exit`, torn-write power cut, or GRAPPLE_CHECK
// abort, the crash-flush hook writes the same merged tail to the path set
// by EventLogSetCrashDumpPath() using raw O_CLOEXEC syscalls — the fault
// shim instruments the byte_io layer, so the dump path must not go through
// it (a crash dump that re-enters fault injection would recurse).
#ifndef GRAPPLE_SRC_OBS_EVENT_LOG_H_
#define GRAPPLE_SRC_OBS_EVENT_LOG_H_

#include <cstdint>
#include <string>
#include <vector>

namespace grapple {
namespace obs {

// One recorded event; 32 bytes, written verbatim into flightrec.bin.
// `type` is an evt::Type value; per-type argument semantics live in the
// table in event_log.cc (EventTypeName / EventArgIsString).
struct FlightEvent {
  uint64_t ts_ns = 0;  // steady-clock nanoseconds since process start
  uint16_t type = 0;
  uint16_t tid = 0;    // recorder-local thread id (registration order)
  uint32_t arg0 = 0;
  uint64_t arg1 = 0;
  uint64_t arg2 = 0;
};
static_assert(sizeof(FlightEvent) == 32, "flightrec.bin record layout");

// Installs the recorder behind evt::Emit and the crash-flush hook.
// Idempotent; called by the Grapple facade and GraphEngine constructors so
// any entry point gets a live recorder.
void EventLogInstall();

// Recording switch, default on. Off = Emit returns after one relaxed load;
// existing ring contents are kept (SetEnabled(false) is "pause", not
// "clear"). Used by the obs_overhead A/B bench.
void EventLogSetEnabled(bool enabled);
bool EventLogEnabled();

// Per-thread ring capacity in events, rounded up to a power of two
// (default 4096, env GRAPPLE_EVENTLOG_EVENTS). Applies to rings created
// after the call; existing rings keep their size.
void EventLogSetCapacity(size_t events_per_thread);

// Interns `s` into the process-wide string table and returns its stable
// id, for event args that name things (checker names, crash points).
uint32_t EventLogInternString(const std::string& s);
// Reverse lookup; empty string for unknown ids.
std::string EventLogStringOf(uint32_t id);
// Snapshot of the whole table (ids are indices). With `try_only` the call
// refuses to block — crash paths use it so a fault that struck while the
// table lock was held skips the snapshot instead of deadlocking; returns
// false and leaves `out` untouched in that case.
bool EventLogStringsSnapshot(std::vector<std::string>* out, bool try_only = false);

// Merged tail: the newest `max_events` events across all rings, oldest
// first. Torn slots (reader raced a writer) are dropped, not repaired.
std::vector<FlightEvent> EventLogTail(size_t max_events);
// {"events":[{"ts_ns":..,"type":"pair_start","tid":..,...},...]}
std::string EventLogTailJson(size_t max_events);
// Chrome trace-viewer JSON: each event rendered as an instant ('i').
std::string EventLogTailChromeTrace(size_t max_events);

// Where crash paths spill the recorder. Empty disables the dump.
// `only_if_unset` lets inner components (engines) propose a path without
// overriding the facade's run-work-dir choice.
void EventLogSetCrashDumpPath(const std::string& path, bool only_if_unset = false);
std::string EventLogCrashDumpPath();

// Writes the merged tail (every live slot) to `path` in flightrec format.
// Safe on crash paths: raw syscalls, no byte_io, no allocation beyond the
// merge buffer. Returns false on I/O failure.
bool EventLogFlush(const std::string& path);

// Registers an additional dump to run on every crash path — injected
// `crash@` exits, fatal checks, and real fatal signals — after the event
// rings are spilled. The sampling profiler registers one so profile.bin
// lands next to flightrec.bin. Spillers must be best-effort crash-safe:
// try-lock only, raw syscalls, no byte_io. At most 8; later registrations
// are dropped.
using CrashSpiller = void (*)();
void EventLogAddCrashSpiller(CrashSpiller spiller);

// Decoded flightrec.bin: events plus the string table snapshot that
// resolves string-carrying args.
struct FlightRecording {
  std::vector<FlightEvent> events;
  std::vector<std::string> strings;
};
bool DecodeFlightRecording(const std::string& path, FlightRecording* out, std::string* error);
// Human-readable JSON rendering of a decoded recording (same shape as
// EventLogTailJson).
std::string FlightRecordingToJson(const FlightRecording& recording);

// Stable lowercase name for an event type ("pair_start", ...); "unknown"
// for ids this build does not know.
const char* EventTypeName(uint16_t type);

}  // namespace obs
}  // namespace grapple

#endif  // GRAPPLE_SRC_OBS_EVENT_LOG_H_
