#include "src/obs/statusz.h"

#include <unistd.h>

#include <cstdio>
#include <mutex>
#include <vector>

#include "src/obs/event_log.h"
#include "src/obs/json.h"
#include "src/obs/profiler.h"
#include "src/obs/sampler.h"
#include "src/support/socket_server.h"

namespace grapple {
namespace obs {

namespace {

enum class SourceKind { kMetrics, kGauge, kStatus };

struct Source {
  SourceKind kind;
  std::string name;
  std::function<MetricsSnapshot()> metrics_fn;
  std::function<double()> gauge_fn;
  std::function<std::string()> status_fn;
};

struct HubState {
  std::mutex mu;
  uint64_t next_id = 1;
  std::map<uint64_t, Source> sources;
};

HubState& Hub() {
  static HubState* state = new HubState;
  return *state;
}

uint64_t RegisterSource(Source source) {
  HubState& hub = Hub();
  std::lock_guard<std::mutex> lock(hub.mu);
  uint64_t id = hub.next_id++;
  hub.sources.emplace(id, std::move(source));
  return id;
}

// Prometheus metric names: [a-zA-Z_:][a-zA-Z0-9_:]*.
std::string PrometheusName(const std::string& name) {
  std::string out = "grapple_";
  for (char c : name) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') ||
              c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

// One-line # HELP text per metric. Exact names first; otherwise derived from
// the naming convention (DESIGN.md §8) so every exposed series gets *some*
// help line rather than none.
std::string PrometheusHelp(const std::string& name) {
  static const std::map<std::string, std::string>* overrides =
      new std::map<std::string, std::string>{
          {"rss_bytes", "Resident set size of the process."},
          {"budget_arbiter_waiters", "Checkers currently blocked in BudgetArbiter::Acquire."},
          {"obs_overhead", "Relative wall-clock cost of observability (on/off - 1)."},
          {"prof_overhead", "Relative wall-clock cost of the sampling profiler (on/off - 1)."},
      };
  auto it = overrides->find(name);
  if (it != overrides->end()) {
    return it->second;
  }
  auto ends_with = [&name](const char* suffix) {
    size_t n = std::char_traits<char>::length(suffix);
    return name.size() >= n && name.compare(name.size() - n, n, suffix) == 0;
  };
  if (ends_with("_total")) {
    return "Monotonic count of " + name.substr(0, name.size() - 6) + " events.";
  }
  if (ends_with("_ns")) {
    return "Cumulative " + name.substr(0, name.size() - 3) + " time in nanoseconds.";
  }
  if (ends_with("_bytes")) {
    return "Size of " + name.substr(0, name.size() - 6) + " in bytes.";
  }
  if (ends_with("_seconds")) {
    return "Duration of " + name.substr(0, name.size() - 8) + " in seconds.";
  }
  return "Grapple metric " + name + ".";
}

std::string FormatDouble(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

// Percent-decodes enough of a query value for metric names (%xx and '+').
std::string UrlDecode(const std::string& text) {
  std::string out;
  for (size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '+') {
      out.push_back(' ');
    } else if (text[i] == '%' && i + 2 < text.size()) {
      auto hex = [](char c) -> int {
        if (c >= '0' && c <= '9') return c - '0';
        if (c >= 'a' && c <= 'f') return c - 'a' + 10;
        if (c >= 'A' && c <= 'F') return c - 'A' + 10;
        return -1;
      };
      int hi = hex(text[i + 1]);
      int lo = hex(text[i + 2]);
      if (hi >= 0 && lo >= 0) {
        out.push_back(static_cast<char>(hi * 16 + lo));
        i += 2;
        continue;
      }
      out.push_back(text[i]);
    } else {
      out.push_back(text[i]);
    }
  }
  return out;
}

std::string QueryParam(const std::string& query, const std::string& key) {
  size_t start = 0;
  while (start <= query.size()) {
    size_t amp = query.find('&', start);
    std::string pair =
        amp == std::string::npos ? query.substr(start) : query.substr(start, amp - start);
    size_t eq = pair.find('=');
    if (eq != std::string::npos && pair.substr(0, eq) == key) {
      return UrlDecode(pair.substr(eq + 1));
    }
    if (amp == std::string::npos) {
      break;
    }
    start = amp + 1;
  }
  return std::string();
}

struct ServerState {
  std::mutex mu;
  SocketServer server;
};

ServerState& Server() {
  static ServerState* state = new ServerState;
  return *state;
}

}  // namespace

Introspection::Handle& Introspection::Handle::operator=(Handle&& other) noexcept {
  if (this != &other) {
    Release();
    id_ = other.id_;
    other.id_ = 0;
  }
  return *this;
}

void Introspection::Handle::Release() {
  if (id_ == 0) {
    return;
  }
  HubState& hub = Hub();
  std::lock_guard<std::mutex> lock(hub.mu);
  hub.sources.erase(id_);
  id_ = 0;
}

Introspection::Handle Introspection::RegisterMetricsSource(const std::string& name,
                                                           std::function<MetricsSnapshot()> fn) {
  Source source;
  source.kind = SourceKind::kMetrics;
  source.name = name;
  source.metrics_fn = std::move(fn);
  return Handle(RegisterSource(std::move(source)));
}

Introspection::Handle Introspection::RegisterGaugeSource(const std::string& name,
                                                         std::function<double()> fn) {
  Source source;
  source.kind = SourceKind::kGauge;
  source.name = name;
  source.gauge_fn = std::move(fn);
  return Handle(RegisterSource(std::move(source)));
}

Introspection::Handle Introspection::RegisterStatusSource(const std::string& name,
                                                          std::function<std::string()> fn) {
  Source source;
  source.kind = SourceKind::kStatus;
  source.name = name;
  source.status_fn = std::move(fn);
  return Handle(RegisterSource(std::move(source)));
}

MetricsSnapshot Introspection::MergedMetrics() {
  MetricsSnapshot merged;
  HubState& hub = Hub();
  std::lock_guard<std::mutex> lock(hub.mu);
  for (const auto& [id, source] : hub.sources) {
    if (source.kind == SourceKind::kMetrics) {
      merged.Merge(source.metrics_fn());
    }
  }
  return merged;
}

std::map<std::string, double> Introspection::RuntimeGauges() {
  std::map<std::string, double> gauges;
  gauges["rss_bytes"] = static_cast<double>(ProcessRssBytes());
  HubState& hub = Hub();
  std::lock_guard<std::mutex> lock(hub.mu);
  for (const auto& [id, source] : hub.sources) {
    if (source.kind == SourceKind::kGauge) {
      gauges[source.name] += source.gauge_fn();
    }
  }
  return gauges;
}

std::string Introspection::StatusJson() {
  JsonWriter w;
  w.BeginObject();
  w.Key("pid").Int(static_cast<int64_t>(::getpid()));
  w.Key("sources").BeginObject();
  {
    HubState& hub = Hub();
    std::lock_guard<std::mutex> lock(hub.mu);
    std::map<std::string, int> name_uses;
    for (const auto& [id, source] : hub.sources) {
      if (source.kind != SourceKind::kStatus) {
        continue;
      }
      int use = name_uses[source.name]++;
      std::string key = use == 0 ? source.name : source.name + "#" + std::to_string(use);
      std::string body = source.status_fn();
      w.Key(key);
      std::string error;
      if (ParseJson(body, &error).has_value()) {
        w.Raw(body);
      } else {
        w.String(body);  // defensive: a non-JSON source becomes a string
      }
    }
  }
  w.EndObject();
  w.Key("gauges").BeginObject();
  for (const auto& [name, value] : RuntimeGauges()) {
    w.Key(name).Double(value);
  }
  w.EndObject();
  w.EndObject();
  return w.Take();
}

uint64_t ProcessRssBytes() {
#if defined(__linux__)
  std::FILE* file = std::fopen("/proc/self/statm", "r");
  if (file == nullptr) {
    return 0;
  }
  unsigned long long total_pages = 0;
  unsigned long long resident_pages = 0;
  int fields = std::fscanf(file, "%llu %llu", &total_pages, &resident_pages);
  std::fclose(file);
  if (fields != 2) {
    return 0;
  }
  long page = ::sysconf(_SC_PAGESIZE);
  return static_cast<uint64_t>(resident_pages) * static_cast<uint64_t>(page > 0 ? page : 4096);
#else
  return 0;
#endif
}

std::string RenderPrometheus(const MetricsSnapshot& snapshot,
                             const std::map<std::string, double>& runtime_gauges) {
  std::string out;
  for (const auto& [name, value] : snapshot.counters) {
    std::string metric = PrometheusName(name);
    out += "# HELP " + metric + " " + PrometheusHelp(name) + "\n";
    out += "# TYPE " + metric + " counter\n";
    out += metric + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : snapshot.gauges) {
    std::string metric = PrometheusName(name);
    out += "# HELP " + metric + " " + PrometheusHelp(name) + "\n";
    out += "# TYPE " + metric + " gauge\n";
    out += metric + " " + FormatDouble(value) + "\n";
  }
  for (const auto& [name, value] : runtime_gauges) {
    std::string metric = PrometheusName(name);
    out += "# HELP " + metric + " " + PrometheusHelp(name) + "\n";
    out += "# TYPE " + metric + " gauge\n";
    out += metric + " " + FormatDouble(value) + "\n";
  }
  for (const auto& [name, hist] : snapshot.histograms) {
    std::string metric = PrometheusName(name);
    out += "# HELP " + metric + " " + PrometheusHelp(name) + "\n";
    out += "# TYPE " + metric + " summary\n";
    out += metric + "_count " + std::to_string(hist.count) + "\n";
    out += metric + "_sum " + std::to_string(hist.sum) + "\n";
  }
  return out;
}

IntrospectionPage RenderIntrospectionPage(const std::string& path, const std::string& query) {
  IntrospectionPage page;
  if (path == "/healthz") {
    page.body = "ok\n";
    return page;
  }
  if (path == "/statusz") {
    page.content_type = "application/json";
    page.body = Introspection::StatusJson();
    return page;
  }
  if (path == "/metricsz") {
    page.content_type = "text/plain; version=0.0.4; charset=utf-8";
    page.body = RenderPrometheus(Introspection::MergedMetrics(), Introspection::RuntimeGauges());
    return page;
  }
  if (path == "/tracez") {
    page.content_type = "application/json";
    page.body = EventLogTailJson(256);
    return page;
  }
  if (path == "/profilez") {
    page.content_type = "application/json";
    page.body = ProfileToJson(ProfilerSnapshot());
    return page;
  }
  if (path == "/varz") {
    std::string name = QueryParam(query, "name");
    if (name.empty()) {
      page.status = 400;
      page.body = "missing ?name=<series>\n";
      return page;
    }
    std::vector<Sampler::Point> series = Sampler::Get().Series(name);
    JsonWriter w;
    w.BeginObject();
    w.Key("name").String(name);
    w.Key("samples").BeginArray();
    for (const Sampler::Point& point : series) {
      w.BeginArray();
      w.UInt(point.ts_ms);
      w.Double(point.value);
      w.EndArray();
    }
    w.EndArray();
    w.EndObject();
    page.content_type = "application/json";
    page.body = w.Take();
    return page;
  }
  page.status = 404;
  page.body = "not found; try /healthz /statusz /metricsz /tracez /profilez /varz?name=\n";
  return page;
}

bool StartStatusz(int port, std::string* error) {
  ServerState& state = Server();
  std::lock_guard<std::mutex> lock(state.mu);
  if (state.server.running()) {
    return true;
  }
  return state.server.Start(
      port,
      [](const HttpRequest& request) {
        IntrospectionPage page = RenderIntrospectionPage(request.path, request.query);
        HttpResponse response;
        response.status = page.status;
        response.content_type = page.content_type;
        response.body = std::move(page.body);
        return response;
      },
      error);
}

void StopStatusz() {
  ServerState& state = Server();
  std::lock_guard<std::mutex> lock(state.mu);
  state.server.Stop();
}

bool StatuszRunning() {
  ServerState& state = Server();
  std::lock_guard<std::mutex> lock(state.mu);
  return state.server.running();
}

int StatuszPort() {
  ServerState& state = Server();
  std::lock_guard<std::mutex> lock(state.mu);
  return state.server.port();
}

}  // namespace obs
}  // namespace grapple
