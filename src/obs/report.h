// Machine-readable run reports.
//
// A RunReport is the serializable record of one Grapple analysis: per-phase
// engine/oracle metrics snapshots plus the Figure-9 cost breakdown, with one
// JSON form (regression tracking, dashboards) and one text form (stdout).
// Both render from the same MetricsSnapshot data, so the numbers in the
// human table and the JSON report cannot disagree.
//
// Benches wrap one RunReport per subject into a BenchReport and write
// BENCH_<name>.json next to their stdout table (target directory
// overridable with GRAPPLE_REPORT_DIR).
#ifndef GRAPPLE_SRC_OBS_REPORT_H_
#define GRAPPLE_SRC_OBS_REPORT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/obs/metrics.h"

namespace grapple {
namespace obs {

// Counter names shared between the engine/oracle instrumentation and the
// report renderers. Phase timer buckets fold in as kPhaseNsPrefix + name.
inline constexpr char kPhaseNsPrefix[] = "phase_";
inline constexpr char kPhaseNsSuffix[] = "_ns";

// Figure-9 style cost split: I/O, constraint lookup (encode/decode + cache
// probing), SMT solving, and edge computation (join time not attributed to
// the oracle).
struct CostBreakdown {
  double io = 0;
  double lookup = 0;
  double solve = 0;
  double edge = 0;

  double Total() const { return io + lookup + solve + edge; }
  double Pct(double part) const { return Total() > 0 ? 100.0 * part / Total() : 0.0; }

  // Adds one engine run's contribution, derived from its merged snapshot.
  void Accumulate(const MetricsSnapshot& snapshot);
};

// One engine run (graph generation + fixpoint) within an analysis.
struct PhaseReport {
  std::string name;  // "alias", "typestate:io", ...
  uint64_t num_vertices = 0;
  uint64_t edges_before = 0;
  uint64_t edges_after = 0;
  double seconds = 0;
  MetricsSnapshot metrics;
};

struct RunReport {
  std::string subject;  // optional label (bench subject, input file)
  double frontend_seconds = 0;
  double total_seconds = 0;
  uint64_t total_reports = 0;
  std::vector<PhaseReport> phases;

  CostBreakdown Breakdown() const;
  // Full report as a JSON object.
  std::string ToJson() const;
  // Unified multi-line human-readable summary.
  std::string ToText() const;
};

// Renders the engine/oracle counters of one snapshot as the classic
// multi-line stats block (EngineStats::ToString delegates here).
std::string RenderEngineSummary(const MetricsSnapshot& snapshot);

// Writes `content` to `path` atomically enough for reports (single write).
bool WriteTextFile(const std::string& path, const std::string& content);

// Collects one RunReport per subject and serializes them as one bench
// report file.
class BenchReport {
 public:
  explicit BenchReport(std::string bench_name);

  void Add(RunReport report);
  // Convenience for engine-only benches: wraps a snapshot into a
  // single-phase RunReport.
  void AddSnapshot(const std::string& subject, const std::string& phase_name,
                   MetricsSnapshot snapshot);

  std::string ToJson() const;
  // Target path: <GRAPPLE_REPORT_DIR or .>/BENCH_<name>.json
  std::string Path() const;
  // Serializes and writes; logs a warning and returns false on I/O failure.
  bool Write() const;

 private:
  std::string name_;
  std::vector<RunReport> subjects_;
};

}  // namespace obs
}  // namespace grapple

#endif  // GRAPPLE_SRC_OBS_REPORT_H_
