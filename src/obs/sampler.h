// Background metrics sampler (DESIGN.md §12): a single process-wide thread
// that, every `interval_ms`, snapshots the merged metrics registries and
// runtime gauges from Introspection into an in-memory time-series ring.
// `/varz?name=<series>` serves one series; nothing is ever written to disk.
//
// Series names are counter/gauge names from the registries plus the
// runtime gauges (rss_bytes, io_queue_depth, write_cache_bytes,
// budget_arbiter_waiters, ...). The ring holds the newest `ring_capacity`
// samples (default 512); at the default 250 ms interval that is about two
// minutes of history, which is what a human tailing a run actually reads.
#ifndef GRAPPLE_SRC_OBS_SAMPLER_H_
#define GRAPPLE_SRC_OBS_SAMPLER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace grapple {
namespace obs {

class Sampler {
 public:
  struct Point {
    uint64_t ts_ms = 0;  // steady-clock milliseconds since process start
    double value = 0;
  };

  static Sampler& Get();

  // Starts the sampling thread. Idempotent: a second Start while running is
  // a no-op (the first interval wins until Stop).
  void Start(uint32_t interval_ms);
  // Stops and joins the thread. Idempotent. Sampled history is kept.
  void Stop();
  bool running() const { return running_.load(std::memory_order_acquire); }
  uint32_t interval_ms() const { return interval_ms_.load(std::memory_order_acquire); }

  // Takes one sample synchronously (also what the thread calls each tick).
  void SampleNow();

  // Newest-last points for one series; empty when the name was never seen.
  std::vector<Point> Series(const std::string& name) const;
  // Every series name present in the current ring.
  std::vector<std::string> SeriesNames() const;
  size_t sample_count() const;

  // Ring size in samples; applies on the next SampleNow. Also clamps the
  // existing ring.
  void SetRingCapacity(size_t samples);
  // Drops all sampled history (tests).
  void Clear();

 private:
  Sampler() = default;

  struct Sample {
    uint64_t ts_ms = 0;
    std::map<std::string, double> values;
  };

  void Loop();

  mutable std::mutex mu_;
  std::condition_variable cv_;  // wakes the loop early on Stop
  std::deque<Sample> ring_;
  size_t ring_capacity_ = 512;
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<uint32_t> interval_ms_{0};
};

}  // namespace obs
}  // namespace grapple

#endif  // GRAPPLE_SRC_OBS_SAMPLER_H_
