#include "src/obs/report.h"

#include <cstdio>
#include <sstream>

#include "src/obs/json.h"
#include "src/obs/profiler.h"
#include "src/support/env.h"
#include "src/support/logging.h"

namespace grapple {
namespace obs {

void CostBreakdown::Accumulate(const MetricsSnapshot& snapshot) {
  double io_s = snapshot.SecondsOf("phase_io_ns");
  double join_s = snapshot.SecondsOf("phase_join_ns");
  double lookup_s = snapshot.SecondsOf("oracle_lookup_ns");
  double solve_s = snapshot.SecondsOf("oracle_solve_ns");
  io += io_s;
  lookup += lookup_s;
  solve += solve_s;
  double edge_s = join_s - lookup_s - solve_s;
  edge += edge_s > 0 ? edge_s : 0;
}

CostBreakdown RunReport::Breakdown() const {
  CostBreakdown breakdown;
  for (const PhaseReport& phase : phases) {
    breakdown.Accumulate(phase.metrics);
  }
  return breakdown;
}

std::string RunReport::ToJson() const {
  JsonWriter w;
  w.BeginObject();
  w.Key("schema").String("grapple.run_report.v1");
  if (!subject.empty()) {
    w.Key("subject").String(subject);
  }
  w.Key("frontend_seconds").Double(frontend_seconds);
  w.Key("total_seconds").Double(total_seconds);
  w.Key("total_reports").UInt(total_reports);
  CostBreakdown b = Breakdown();
  w.Key("breakdown").BeginObject();
  w.Key("io_seconds").Double(b.io);
  w.Key("lookup_seconds").Double(b.lookup);
  w.Key("solve_seconds").Double(b.solve);
  w.Key("edge_seconds").Double(b.edge);
  w.EndObject();
  w.Key("phases").BeginArray();
  for (const PhaseReport& phase : phases) {
    w.BeginObject();
    w.Key("name").String(phase.name);
    w.Key("num_vertices").UInt(phase.num_vertices);
    w.Key("edges_before").UInt(phase.edges_before);
    w.Key("edges_after").UInt(phase.edges_after);
    w.Key("seconds").Double(phase.seconds);
    w.Key("metrics").Raw(phase.metrics.ToJson());
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.Take();
}

std::string RenderEngineSummary(const MetricsSnapshot& s) {
  std::ostringstream out;
  uint64_t base = s.CounterOr("engine_base_edges_total");
  uint64_t final_edges = s.CounterOr("engine_final_edges_total");
  uint64_t added = s.CounterOr("engine_edges_added_total");
  uint64_t pruned = s.CounterOr("engine_unsat_pruned_total") + s.CounterOr("oracle_unsat_total");
  out << "edges: " << base << " -> " << final_edges << " (+" << added << " induced, " << pruned
      << " pruned unsat)\n";
  out << "partitions: " << static_cast<uint64_t>(s.GaugeOr("engine_num_partitions")) << " (peak "
      << static_cast<uint64_t>(s.GaugeOr("engine_peak_partitions")) << ", "
      << s.CounterOr("engine_partition_splits_total") << " splits); pair loads: "
      << s.CounterOr("engine_pair_loads_total") << ", join rounds: "
      << s.CounterOr("engine_join_rounds_total") << ", joins: "
      << s.CounterOr("engine_joins_attempted_total") << "\n";
  uint64_t solved = s.CounterOr("oracle_constraints_checked_total");
  uint64_t hits = s.CounterOr("oracle_cache_hits_total");
  out << "constraints: " << s.CounterOr("oracle_merges_total") << " merges, " << solved << " solved, "
      << hits << " cache hits";
  uint64_t lookups = solved + hits;
  if (lookups > 0) {
    out << " (" << (100 * hits / lookups) << "% hit rate)";
  }
  out << "\n";
  char buffer[200];
  std::snprintf(buffer, sizeof(buffer),
                "time: preprocess %.3fs, compute %.3fs (io %.3fs, lookup %.3fs, solve %.3fs)",
                s.SecondsOf("engine_preprocess_ns"), s.SecondsOf("engine_compute_ns"),
                s.SecondsOf("phase_io_ns"), s.SecondsOf("oracle_lookup_ns"),
                s.SecondsOf("oracle_solve_ns"));
  out << buffer;
  if (s.GaugeOr("engine_timed_out") > 0) {
    out << " [TIMED OUT]";
  }
  out << "\n";
  return out.str();
}

std::string RunReport::ToText() const {
  std::ostringstream out;
  if (!subject.empty()) {
    out << "subject: " << subject << "\n";
  }
  char line[160];
  std::snprintf(line, sizeof(line), "frontend %.3fs, total %.3fs, %llu reports\n",
                frontend_seconds, total_seconds,
                static_cast<unsigned long long>(total_reports));
  out << line;
  CostBreakdown b = Breakdown();
  std::snprintf(line, sizeof(line),
                "breakdown: io %.1f%%, lookup %.1f%%, solve %.1f%%, edge %.1f%%\n", b.Pct(b.io),
                b.Pct(b.lookup), b.Pct(b.solve), b.Pct(b.edge));
  out << line;
  for (const PhaseReport& phase : phases) {
    out << "-- " << phase.name << " --\n" << RenderEngineSummary(phase.metrics);
  }
  return out.str();
}

bool WriteTextFile(const std::string& path, const std::string& content) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return false;
  }
  size_t written = std::fwrite(content.data(), 1, content.size(), file);
  std::fclose(file);
  return written == content.size();
}

BenchReport::BenchReport(std::string bench_name) : name_(std::move(bench_name)) {}

void BenchReport::Add(RunReport report) { subjects_.push_back(std::move(report)); }

void BenchReport::AddSnapshot(const std::string& subject, const std::string& phase_name,
                              MetricsSnapshot snapshot) {
  RunReport report;
  report.subject = subject;
  PhaseReport phase;
  phase.name = phase_name;
  phase.metrics = std::move(snapshot);
  report.phases.push_back(std::move(phase));
  subjects_.push_back(std::move(report));
}

std::string BenchReport::ToJson() const {
  JsonWriter w;
  w.BeginObject();
  w.Key("schema").String("grapple.bench_report.v1");
  w.Key("bench").String(name_);
  w.Key("subjects").BeginArray();
  for (const RunReport& report : subjects_) {
    w.Raw(report.ToJson());
  }
  w.EndArray();
  // Stamp the sampling profiler's view of the run (sample counts + phase
  // fractions) into every bench report. Goes here, NOT into RunReport: run
  // reports must stay byte-identical with profiling on or off.
  w.Key("profile").Raw(ProfileSummaryJson());
  w.EndObject();
  return w.Take();
}

std::string BenchReport::Path() const {
  std::string dir = EnvString("GRAPPLE_REPORT_DIR", ".");
  return dir + "/BENCH_" + name_ + ".json";
}

bool BenchReport::Write() const {
  std::string path = Path();
  if (!WriteTextFile(path, ToJson())) {
    GRAPPLE_LOG(WARNING) << "failed to write bench report " << path;
    return false;
  }
  return true;
}

}  // namespace obs
}  // namespace grapple
