#include "src/obs/profiler.h"

#include <fcntl.h>
#include <pthread.h>
#include <signal.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <thread>
#include <tuple>

#include "src/obs/event_log.h"
#include "src/obs/json.h"
#include "src/support/byte_io.h"
#include "src/support/event_hook.h"

namespace grapple {
namespace obs {

namespace profiler_internal {

namespace {
// 1024 slots per thread: the ticker harvests every tick, so at the 1000 Hz
// ceiling at most a handful of samples are ever outstanding; the headroom
// absorbs a stalled ticker without losing the recent tail.
constexpr size_t kRingSlots = 1024;
}  // namespace

// One 32-byte sample slot, same Boehm-style seqlock as the event_log rings:
// the writer (the SIGPROF handler, always the owning thread) publishes an
// odd generation-unique sequence before the payload and an even one after,
// so the harvesting ticker detects torn or overwritten slots and counts
// them as dropped instead of misattributing them.
struct ProfSlot {
  std::atomic<uint64_t> seq{0};
  std::atomic<uint64_t> w0{0};  // CLOCK_MONOTONIC ns
  std::atomic<uint64_t> w1{0};  // pair (kProfileNoPair = none)
  std::atomic<uint64_t> w2{0};  // phase | checker << 32
  std::atomic<uint64_t> w3{0};  // wait_kind | tid << 32
};

// Per-thread profiler context + sample ring. Never freed: crash spills
// read whatever the dead thread left behind.
struct ThreadProf {
  explicit ThreadProf(uint32_t tid) : slots(kRingSlots), tid(tid) {}
  std::atomic<uint32_t> phase{0};
  std::atomic<uint32_t> checker{0};
  std::atomic<uint64_t> pair{kProfileNoPair};
  std::atomic<uint32_t> wait{0};
  // Cleared (under the registry mutex) by the owning thread's TLS guard
  // just before thread exit, so the ticker never pthread_kills a stale
  // pthread_t.
  std::atomic<bool> alive{true};
  pthread_t self{};
  std::vector<ProfSlot> slots;
  uint32_t tid;
  std::atomic<uint64_t> next{0};  // samples ever written by the handler
  uint64_t harvested = 0;         // ticker-owned cursor
};

namespace {

using LedgerKey = std::tuple<uint32_t, uint32_t, uint64_t, uint32_t>;

struct ProfState {
  std::mutex mu;
  std::vector<ThreadProf*> threads;
  std::map<LedgerKey, uint64_t> ledger;
  uint64_t total_samples = 0;
  uint64_t dropped_samples = 0;
  uint64_t period_ns = 0;
  uint64_t accum_wall_ns = 0;  // profiled wall from completed Start/Stop spans
  uint64_t run_start_ns = 0;   // nonzero while running
  std::string dump_path;
  std::thread ticker;
  std::condition_variable cv;
  bool running = false;
};

ProfState& State() {
  static ProfState* state = new ProfState;
  return *state;
}

// True once ProfilerStart has ever run: markers on unregistered threads
// stay a single branch until then.
std::atomic<bool> g_ever_started{false};

thread_local ThreadProf* t_prof = nullptr;

// Marks the context dead at thread exit, under the registry mutex so the
// ticker (which holds it while signalling) cannot race the exit.
struct ThreadProfGuard {
  ThreadProf* tp = nullptr;
  ~ThreadProfGuard() {
    if (tp != nullptr) {
      ProfState& state = State();
      std::lock_guard<std::mutex> lock(state.mu);
      tp->alive.store(false, std::memory_order_relaxed);
    }
  }
};
thread_local ThreadProfGuard t_guard;

// Raw clock read, usable from the signal handler (no magic-static guard,
// clock_gettime is async-signal-safe).
uint64_t MonotonicNs() {
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<uint64_t>(ts.tv_sec) * 1000000000ull + static_cast<uint64_t>(ts.tv_nsec);
}

ThreadProf* EnsureThreadProf() {
  ThreadProf* tp = t_prof;
  if (tp != nullptr) {
    return tp;
  }
  ProfState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  tp = new ThreadProf(static_cast<uint32_t>(state.threads.size()));
  tp->self = pthread_self();
  state.threads.push_back(tp);
  t_prof = tp;
  t_guard.tp = tp;
  return tp;
}

// The async-signal-safe core: reads the interrupted thread's own context
// atomics and seqlock-writes one sample into its own ring. No locks, no
// allocation, no library calls beyond clock_gettime; errno preserved.
void SigprofHandler(int /*sig*/) {
  int saved_errno = errno;
  ThreadProf* tp = t_prof;
  if (tp != nullptr) {
    uint64_t n = tp->next.load(std::memory_order_relaxed);
    ProfSlot& slot = tp->slots[n & (kRingSlots - 1)];
    slot.seq.store(2 * n + 1, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_release);
    slot.w0.store(MonotonicNs(), std::memory_order_relaxed);
    slot.w1.store(tp->pair.load(std::memory_order_relaxed), std::memory_order_relaxed);
    slot.w2.store(static_cast<uint64_t>(tp->phase.load(std::memory_order_relaxed)) |
                      (static_cast<uint64_t>(tp->checker.load(std::memory_order_relaxed)) << 32),
                  std::memory_order_relaxed);
    slot.w3.store(static_cast<uint64_t>(tp->wait.load(std::memory_order_relaxed)) |
                      (static_cast<uint64_t>(tp->tid) << 32),
                  std::memory_order_relaxed);
    slot.seq.store(2 * n + 2, std::memory_order_release);
    tp->next.store(n + 1, std::memory_order_release);
  }
  errno = saved_errno;
}

// evt::Emit observer: maintains the per-thread off-CPU wait kind. The
// arbiter's existing kArbiterWait/kArbiterAcquire pair brackets a blocking
// Acquire; kWaitBegin/kWaitEnd carry the kind explicitly. kWaitEnd (and
// kArbiterAcquire, which is also emitted for non-blocking acquires) only
// clears the state it set, so unrelated nesting stays intact.
void ProfObserver(uint16_t type, uint32_t /*a0*/, uint64_t a1, uint64_t /*a2*/) {
  switch (type) {
    case evt::kWaitBegin:
      EnsureThreadProf()->wait.store(static_cast<uint32_t>(a1), std::memory_order_relaxed);
      break;
    case evt::kWaitEnd: {
      ThreadProf* tp = t_prof;
      if (tp != nullptr && tp->wait.load(std::memory_order_relaxed) == static_cast<uint32_t>(a1)) {
        tp->wait.store(evt::kWaitNone, std::memory_order_relaxed);
      }
      break;
    }
    case evt::kArbiterWait:
      EnsureThreadProf()->wait.store(evt::kWaitArbiter, std::memory_order_relaxed);
      break;
    case evt::kArbiterAcquire: {
      ThreadProf* tp = t_prof;
      if (tp != nullptr && tp->wait.load(std::memory_order_relaxed) == evt::kWaitArbiter) {
        tp->wait.store(evt::kWaitNone, std::memory_order_relaxed);
      }
      break;
    }
    default:
      break;
  }
}

// Drains every ring's unharvested samples into the ledger. Caller holds
// state.mu. Slots the handler overwrote before we got to them (ticker
// stalled for > kRingSlots / hz) and slots torn mid-write count as dropped.
void HarvestLocked(ProfState& state) {
  for (ThreadProf* tp : state.threads) {
    uint64_t n = tp->next.load(std::memory_order_acquire);
    uint64_t cursor = tp->harvested;
    if (n - cursor > kRingSlots) {
      state.dropped_samples += n - cursor - kRingSlots;
      cursor = n - kRingSlots;
    }
    for (uint64_t i = cursor; i < n; ++i) {
      ProfSlot& slot = tp->slots[i & (kRingSlots - 1)];
      uint64_t s1 = slot.seq.load(std::memory_order_acquire);
      if (s1 != 2 * i + 2) {
        ++state.dropped_samples;
        continue;
      }
      uint64_t pair = slot.w1.load(std::memory_order_relaxed);
      uint64_t w2 = slot.w2.load(std::memory_order_relaxed);
      uint64_t w3 = slot.w3.load(std::memory_order_relaxed);
      std::atomic_thread_fence(std::memory_order_acquire);
      if (slot.seq.load(std::memory_order_relaxed) != s1) {
        ++state.dropped_samples;
        continue;
      }
      LedgerKey key{static_cast<uint32_t>(w2 >> 32), static_cast<uint32_t>(w2 & 0xffffffffu),
                    pair, static_cast<uint32_t>(w3 & 0xffffffffu)};
      ++state.ledger[key];
      ++state.total_samples;
    }
    tp->harvested = n;
  }
}

ProfileData SnapshotLocked(ProfState& state, uint64_t now_ns) {
  ProfileData data;
  data.sample_period_ns = state.period_ns;
  data.total_samples = state.total_samples;
  data.dropped_samples = state.dropped_samples;
  data.wall_ns = state.accum_wall_ns +
                 (state.run_start_ns != 0 ? now_ns - state.run_start_ns : 0);
  data.entries.reserve(state.ledger.size());
  for (const auto& kv : state.ledger) {
    ProfileEntry entry;
    entry.checker = std::get<0>(kv.first);
    entry.phase = std::get<1>(kv.first);
    entry.pair = std::get<2>(kv.first);
    entry.wait_kind = std::get<3>(kv.first);
    entry.samples = kv.second;
    data.entries.push_back(entry);
  }
  return data;
}

void TickerMain() {
  ProfState& state = State();
  std::unique_lock<std::mutex> lock(state.mu);
  const auto period = std::chrono::nanoseconds(state.period_ns);
  while (state.running) {
    state.cv.wait_for(lock, period, [&state] { return !state.running; });
    if (!state.running) {
      break;
    }
    // Holding mu here is what makes the pthread_kill safe: a thread's TLS
    // guard must take mu to mark itself dead, so no pthread_t we signal
    // can belong to an already-exited thread.
    for (ThreadProf* tp : state.threads) {
      if (tp->alive.load(std::memory_order_relaxed)) {
        pthread_kill(tp->self, SIGPROF);
      }
    }
    HarvestLocked(state);
  }
  HarvestLocked(state);
}

// FNV-1a over the payload, the checkpoint codec's checksum discipline.
uint64_t Fnv1a64(const std::string& bytes) {
  uint64_t hash = 14695981039346656037ull;
  for (unsigned char c : bytes) {
    hash ^= c;
    hash *= 1099511628211ull;
  }
  return hash;
}

constexpr char kProfileMagic[4] = {'G', 'P', 'R', 'F'};
constexpr uint32_t kProfileVersion = 1;

void AppendU32(std::string* out, uint32_t value) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((value >> (8 * i)) & 0xff));
  }
}

void AppendU64(std::string* out, uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((value >> (8 * i)) & 0xff));
  }
}

uint32_t TakeU32(const uint8_t* data) {
  uint32_t value = 0;
  for (int i = 3; i >= 0; --i) {
    value = (value << 8) | data[i];
  }
  return value;
}

uint64_t TakeU64(const uint8_t* data) {
  uint64_t value = 0;
  for (int i = 7; i >= 0; --i) {
    value = (value << 8) | data[i];
  }
  return value;
}

std::string EncodeProfile(const ProfileData& data) {
  std::string payload;
  payload.reserve(36 + data.entries.size() * 28);
  AppendU64(&payload, data.sample_period_ns);
  AppendU64(&payload, data.total_samples);
  AppendU64(&payload, data.dropped_samples);
  AppendU64(&payload, data.wall_ns);
  AppendU32(&payload, static_cast<uint32_t>(data.entries.size()));
  for (const ProfileEntry& entry : data.entries) {
    AppendU32(&payload, entry.checker);
    AppendU32(&payload, entry.phase);
    AppendU64(&payload, entry.pair);
    AppendU32(&payload, entry.wait_kind);
    AppendU64(&payload, entry.samples);
  }
  AppendU32(&payload, static_cast<uint32_t>(data.strings.size()));
  for (const std::string& s : data.strings) {
    AppendU32(&payload, static_cast<uint32_t>(s.size()));
    payload.append(s);
  }
  std::string blob;
  blob.reserve(16 + payload.size() + 8);
  blob.append(kProfileMagic, sizeof(kProfileMagic));
  AppendU32(&blob, kProfileVersion);
  AppendU64(&blob, payload.size());
  blob.append(payload);
  AppendU64(&blob, Fnv1a64(payload));
  return blob;
}

// Raw syscalls: shared by the normal write (below, via tmp + rename) and
// the crash spiller, which must not re-enter byte_io's fault shim.
bool RawWriteFile(const std::string& path, const std::string& blob) {
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    return false;
  }
  size_t done = 0;
  while (done < blob.size()) {
    ssize_t n = ::write(fd, blob.data() + done, blob.size() - done);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      ::close(fd);
      return false;
    }
    done += static_cast<size_t>(n);
  }
  ::fsync(fd);
  ::close(fd);
  return true;
}

// Crash spiller, registered with the event log's fatal paths: refuses to
// block (try_lock) so a fault that struck while the registry mutex was
// held skips the spill instead of hanging the dying process.
void ProfilerCrashSpill() {
  ProfState& state = State();
  if (!state.mu.try_lock()) {
    return;
  }
  HarvestLocked(state);
  ProfileData data = SnapshotLocked(state, MonotonicNs());
  std::string path = state.dump_path;
  state.mu.unlock();
  if (path.empty() || data.total_samples == 0) {
    return;
  }
  // Best-effort string table: an empty snapshot (table lock contended)
  // still decodes, ids just resolve to "".
  EventLogStringsSnapshot(&data.strings, /*try_only=*/true);
  RawWriteFile(path, EncodeProfile(data));
}

std::string ResolveId(const ProfileData& data, uint32_t id) {
  if (id == 0) {
    return std::string();
  }
  uint32_t index = id - 1;
  return index < data.strings.size() ? data.strings[index] : std::string();
}

}  // namespace

ThreadProf* CurrentThreadProf() {
  ThreadProf* tp = t_prof;
  if (tp != nullptr) {
    return tp;
  }
  if (!g_ever_started.load(std::memory_order_relaxed)) {
    return nullptr;
  }
  return EnsureThreadProf();
}

uint32_t SwapPhase(ThreadProf* tp, uint32_t value) {
  uint32_t prev = tp->phase.load(std::memory_order_relaxed);
  tp->phase.store(value, std::memory_order_relaxed);
  return prev;
}

uint32_t SwapChecker(ThreadProf* tp, uint32_t value) {
  uint32_t prev = tp->checker.load(std::memory_order_relaxed);
  tp->checker.store(value, std::memory_order_relaxed);
  return prev;
}

uint32_t ReadChecker(ThreadProf* tp) {
  return tp->checker.load(std::memory_order_relaxed);
}

uint64_t SwapPair(ThreadProf* tp, uint64_t value) {
  uint64_t prev = tp->pair.load(std::memory_order_relaxed);
  tp->pair.store(value, std::memory_order_relaxed);
  return prev;
}

}  // namespace profiler_internal

using profiler_internal::CurrentThreadProf;
using profiler_internal::ThreadProf;

ProfPhase::ProfPhase(const char* name) {
  ThreadProf* tp = CurrentThreadProf();
  if (tp == nullptr) {
    return;
  }
  tp_ = tp;
  prev_ = profiler_internal::SwapPhase(tp, EventLogInternString(name) + 1);
}

ProfPhase::~ProfPhase() {
  if (tp_ != nullptr) {
    profiler_internal::SwapPhase(tp_, prev_);
  }
}

uint32_t ProfCurrentChecker() {
  ThreadProf* tp = CurrentThreadProf();
  if (tp == nullptr) {
    return kProfNoChecker;
  }
  uint32_t value = profiler_internal::ReadChecker(tp);
  return value == 0 ? kProfNoChecker : value - 1;
}

ProfChecker::ProfChecker(uint32_t name_id) {
  ThreadProf* tp = CurrentThreadProf();
  if (tp == nullptr) {
    return;
  }
  tp_ = tp;
  prev_ = profiler_internal::SwapChecker(tp, name_id == kProfNoChecker ? 0 : name_id + 1);
}

ProfChecker::~ProfChecker() {
  if (tp_ != nullptr) {
    profiler_internal::SwapChecker(tp_, prev_);
  }
}

ProfPair::ProfPair(uint32_t i, uint32_t j) {
  ThreadProf* tp = CurrentThreadProf();
  if (tp == nullptr) {
    return;
  }
  tp_ = tp;
  prev_ = profiler_internal::SwapPair(
      tp, (static_cast<uint64_t>(i) << 32) | static_cast<uint64_t>(j));
}

ProfPair::~ProfPair() {
  if (tp_ != nullptr) {
    profiler_internal::SwapPair(tp_, prev_);
  }
}

void ProfilerInstall() {
  static const bool installed = [] {
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_handler = &profiler_internal::SigprofHandler;
    sa.sa_flags = SA_RESTART;
    sigemptyset(&sa.sa_mask);
    sigaction(SIGPROF, &sa, nullptr);
    EventLogAddCrashSpiller(&profiler_internal::ProfilerCrashSpill);
    return true;
  }();
  (void)installed;
}

bool ProfilerStart(uint32_t hz) {
  if (hz == 0) {
    return false;
  }
  hz = std::min<uint32_t>(hz, 1000);
  ProfilerInstall();
  auto& state = profiler_internal::State();
  {
    std::lock_guard<std::mutex> lock(state.mu);
    if (state.running) {
      return false;
    }
    state.period_ns = 1000000000ull / hz;
    state.run_start_ns = profiler_internal::MonotonicNs();
    state.running = true;
    profiler_internal::g_ever_started.store(true, std::memory_order_release);
    evt::SetObserver(&profiler_internal::ProfObserver);
    state.ticker = std::thread(&profiler_internal::TickerMain);
  }
  return true;
}

void ProfilerStop() {
  auto& state = profiler_internal::State();
  std::thread ticker;
  {
    std::lock_guard<std::mutex> lock(state.mu);
    if (!state.running) {
      return;
    }
    state.running = false;
    state.accum_wall_ns += profiler_internal::MonotonicNs() - state.run_start_ns;
    state.run_start_ns = 0;
    ticker = std::move(state.ticker);
  }
  state.cv.notify_all();
  if (ticker.joinable()) {
    ticker.join();
  }
  evt::SetObserver(nullptr);
}

bool ProfilerRunning() {
  auto& state = profiler_internal::State();
  std::lock_guard<std::mutex> lock(state.mu);
  return state.running;
}

void ProfilerSetDumpPath(const std::string& path, bool only_if_unset) {
  auto& state = profiler_internal::State();
  std::lock_guard<std::mutex> lock(state.mu);
  if (only_if_unset && !state.dump_path.empty()) {
    return;
  }
  state.dump_path = path;
}

std::string ProfilerDumpPath() {
  auto& state = profiler_internal::State();
  std::lock_guard<std::mutex> lock(state.mu);
  return state.dump_path;
}

ProfileData ProfilerSnapshot() {
  auto& state = profiler_internal::State();
  ProfileData data;
  {
    std::lock_guard<std::mutex> lock(state.mu);
    profiler_internal::HarvestLocked(state);
    data = profiler_internal::SnapshotLocked(state, profiler_internal::MonotonicNs());
  }
  EventLogStringsSnapshot(&data.strings);
  return data;
}

void ProfilerResetForTest() {
  auto& state = profiler_internal::State();
  std::lock_guard<std::mutex> lock(state.mu);
  for (ThreadProf* tp : state.threads) {
    tp->harvested = tp->next.load(std::memory_order_acquire);
  }
  state.ledger.clear();
  state.total_samples = 0;
  state.dropped_samples = 0;
  state.accum_wall_ns = 0;
  if (state.run_start_ns != 0) {
    state.run_start_ns = profiler_internal::MonotonicNs();
  }
}

bool ProfilerWriteFile(const std::string& path) {
  std::string blob = profiler_internal::EncodeProfile(ProfilerSnapshot());
  std::string tmp = path + ".tmp";
  if (!profiler_internal::RawWriteFile(tmp, blob)) {
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

bool DecodeProfile(const std::string& path, ProfileData* out, std::string* error) {
  auto fail = [&](const std::string& why) {
    if (error != nullptr) {
      *error = "profile '" + path + "': " + why;
    }
    return false;
  };
  std::vector<uint8_t> bytes;
  std::string io_error;
  if (!ReadFileBytes(path, &bytes, &io_error)) {
    return fail(io_error);
  }
  if (bytes.size() < 16 ||
      std::memcmp(bytes.data(), profiler_internal::kProfileMagic, 4) != 0) {
    return fail("bad magic (not a profile)");
  }
  uint32_t version = profiler_internal::TakeU32(bytes.data() + 4);
  if (version != profiler_internal::kProfileVersion) {
    return fail("unsupported version " + std::to_string(version));
  }
  uint64_t payload_len = profiler_internal::TakeU64(bytes.data() + 8);
  if (bytes.size() < 16 + payload_len + 8) {
    return fail("truncated payload");
  }
  std::string payload(reinterpret_cast<const char*>(bytes.data() + 16),
                      static_cast<size_t>(payload_len));
  uint64_t stored = profiler_internal::TakeU64(bytes.data() + 16 + payload_len);
  if (profiler_internal::Fnv1a64(payload) != stored) {
    return fail("checksum mismatch");
  }
  const uint8_t* p = bytes.data() + 16;
  if (payload_len < 36) {
    return fail("truncated header");
  }
  out->sample_period_ns = profiler_internal::TakeU64(p);
  out->total_samples = profiler_internal::TakeU64(p + 8);
  out->dropped_samples = profiler_internal::TakeU64(p + 16);
  out->wall_ns = profiler_internal::TakeU64(p + 24);
  uint32_t entry_count = profiler_internal::TakeU32(p + 32);
  size_t offset = 36;
  if (payload_len < offset + static_cast<uint64_t>(entry_count) * 28) {
    return fail("truncated entry section");
  }
  out->entries.clear();
  out->entries.reserve(entry_count);
  for (uint32_t i = 0; i < entry_count; ++i) {
    const uint8_t* rec = p + offset;
    ProfileEntry entry;
    entry.checker = profiler_internal::TakeU32(rec);
    entry.phase = profiler_internal::TakeU32(rec + 4);
    entry.pair = profiler_internal::TakeU64(rec + 8);
    entry.wait_kind = profiler_internal::TakeU32(rec + 16);
    entry.samples = profiler_internal::TakeU64(rec + 20);
    out->entries.push_back(entry);
    offset += 28;
  }
  if (payload_len < offset + 4) {
    return fail("truncated string table");
  }
  uint32_t string_count = profiler_internal::TakeU32(p + offset);
  offset += 4;
  out->strings.clear();
  out->strings.reserve(string_count);
  for (uint32_t i = 0; i < string_count; ++i) {
    if (payload_len < offset + 4) {
      return fail("truncated string table entry");
    }
    uint32_t length = profiler_internal::TakeU32(p + offset);
    offset += 4;
    if (payload_len < offset + length) {
      return fail("truncated string table entry");
    }
    out->strings.emplace_back(reinterpret_cast<const char*>(p + offset), length);
    offset += length;
  }
  return true;
}

namespace {

std::vector<ProfileEntry> SortedBySamples(const ProfileData& data) {
  std::vector<ProfileEntry> sorted = data.entries;
  std::sort(sorted.begin(), sorted.end(), [](const ProfileEntry& a, const ProfileEntry& b) {
    if (a.samples != b.samples) {
      return a.samples > b.samples;
    }
    return std::tie(a.checker, a.phase, a.pair, a.wait_kind) <
           std::tie(b.checker, b.phase, b.pair, b.wait_kind);
  });
  return sorted;
}

void RenderPhaseFractions(JsonWriter* w, const ProfileData& data) {
  w->Key("phase_fractions").BeginObject();
  for (const auto& kv : ProfilePhaseFractions(data)) {
    w->Key(kv.first).Double(kv.second);
  }
  w->EndObject();
}

}  // namespace

std::string ProfileToJson(const ProfileData& data) {
  const double period_s = static_cast<double>(data.sample_period_ns) / 1e9;
  JsonWriter w;
  w.BeginObject();
  w.Key("schema").String("grapple.profile.v1");
  w.Key("sample_period_ns").UInt(data.sample_period_ns);
  w.Key("total_samples").UInt(data.total_samples);
  w.Key("dropped_samples").UInt(data.dropped_samples);
  w.Key("wall_seconds").Double(static_cast<double>(data.wall_ns) / 1e9);
  RenderPhaseFractions(&w, data);
  w.Key("entries").BeginArray();
  for (const ProfileEntry& entry : SortedBySamples(data)) {
    w.BeginObject();
    w.Key("checker").String(profiler_internal::ResolveId(data, entry.checker));
    w.Key("phase").String(profiler_internal::ResolveId(data, entry.phase));
    if (entry.pair != kProfileNoPair) {
      w.Key("pair_i").UInt(entry.pair >> 32);
      w.Key("pair_j").UInt(entry.pair & 0xffffffffu);
    }
    w.Key("wait").String(ProfileWaitKindName(entry.wait_kind));
    w.Key("samples").UInt(entry.samples);
    w.Key("seconds").Double(static_cast<double>(entry.samples) * period_s);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.Take();
}

std::string ProfileToCollapsed(const ProfileData& data) {
  std::vector<std::string> lines;
  lines.reserve(data.entries.size());
  for (const ProfileEntry& entry : data.entries) {
    std::string checker = profiler_internal::ResolveId(data, entry.checker);
    std::string phase = profiler_internal::ResolveId(data, entry.phase);
    std::string line = checker.empty() ? std::string("(none)") : checker;
    line += ";";
    line += phase.empty() ? std::string("(none)") : phase;
    if (entry.pair != kProfileNoPair) {
      line += ";pair:";
      line += std::to_string(entry.pair >> 32);
      line += '-';
      line += std::to_string(entry.pair & 0xffffffffu);
    }
    if (entry.wait_kind != evt::kWaitNone) {
      line += ";offcpu:";
      line += ProfileWaitKindName(entry.wait_kind);
    }
    line += ' ';
    line += std::to_string(entry.samples);
    line += '\n';
    lines.push_back(std::move(line));
  }
  std::sort(lines.begin(), lines.end());
  std::string out;
  for (const std::string& line : lines) {
    out += line;
  }
  return out;
}

std::map<std::string, double> ProfilePhaseFractions(const ProfileData& data) {
  std::map<std::string, uint64_t> per_phase;
  uint64_t tagged = 0;
  for (const ProfileEntry& entry : data.entries) {
    if (entry.phase == 0) {
      continue;
    }
    std::string name = profiler_internal::ResolveId(data, entry.phase);
    if (name.empty()) {
      continue;
    }
    per_phase[name] += entry.samples;
    tagged += entry.samples;
  }
  std::map<std::string, double> fractions;
  for (const auto& kv : per_phase) {
    fractions[kv.first] =
        tagged == 0 ? 0.0 : static_cast<double>(kv.second) / static_cast<double>(tagged);
  }
  return fractions;
}

std::string ProfileSummaryJson() {
  ProfileData data = ProfilerSnapshot();
  JsonWriter w;
  w.BeginObject();
  w.Key("samples").UInt(data.total_samples);
  w.Key("dropped").UInt(data.dropped_samples);
  RenderPhaseFractions(&w, data);
  w.EndObject();
  return w.Take();
}

const char* ProfileWaitKindName(uint32_t kind) {
  switch (kind) {
    case evt::kWaitNone:
      return "none";
    case evt::kWaitArbiter:
      return "arbiter";
    case evt::kWaitIoBarrier:
      return "io_barrier";
    case evt::kWaitIoQueue:
      return "io_queue";
    case evt::kWaitSolve:
      return "solve";
    case evt::kWaitTask:
      return "task";
    default:
      return "unknown";
  }
}

}  // namespace obs
}  // namespace grapple
