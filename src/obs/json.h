// Minimal JSON infrastructure for the observability layer: a streaming
// writer (used by run reports, Chrome traces, and bug-report JSON) and a
// small DOM parser (used by golden tests and report tooling to validate
// what we emit). No external dependencies.
#ifndef GRAPPLE_SRC_OBS_JSON_H_
#define GRAPPLE_SRC_OBS_JSON_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace grapple {
namespace obs {

// Escapes `text` for inclusion inside a JSON string literal (no quotes).
std::string JsonEscapeString(const std::string& text);

// Streaming JSON writer. Handles commas and nesting; the caller is
// responsible for pairing Begin*/End* and for calling Key() before every
// value inside an object.
class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();
  JsonWriter& Key(const std::string& key);
  JsonWriter& String(const std::string& value);
  JsonWriter& Int(int64_t value);
  JsonWriter& UInt(uint64_t value);
  JsonWriter& Double(double value);
  JsonWriter& Bool(bool value);
  JsonWriter& Null();
  // Appends pre-rendered JSON verbatim (must be a complete value).
  JsonWriter& Raw(const std::string& json);

  const std::string& str() const { return out_; }
  std::string Take() { return std::move(out_); }

 private:
  void BeforeValue();

  std::string out_;
  // One entry per open container: true until the first element is written.
  std::vector<bool> first_;
  bool pending_key_ = false;
};

// Parsed JSON value (DOM). Numbers are stored as double; integers up to
// 2^53 round-trip exactly, which covers every counter this system emits in
// practice (and the parser is for validation, not archival).
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool bool_value = false;
  double number_value = 0;
  std::string string_value;
  std::vector<JsonValue> items;                // kArray
  std::map<std::string, JsonValue> members;    // kObject

  bool IsObject() const { return kind == Kind::kObject; }
  bool IsArray() const { return kind == Kind::kArray; }
  bool IsNumber() const { return kind == Kind::kNumber; }
  bool IsString() const { return kind == Kind::kString; }

  // Object member lookup; nullptr when absent or not an object.
  const JsonValue* Find(const std::string& key) const;
  // Convenience: Find + numeric/string access with defaults.
  double NumberOr(const std::string& key, double default_value) const;
  std::string StringOr(const std::string& key, const std::string& default_value) const;
};

// Parses a complete JSON document. Returns nullopt and fills `error` (if
// non-null) on malformed input or trailing garbage.
std::optional<JsonValue> ParseJson(const std::string& text, std::string* error = nullptr);

}  // namespace obs
}  // namespace grapple

#endif  // GRAPPLE_SRC_OBS_JSON_H_
