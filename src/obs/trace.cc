#include "src/obs/trace.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>
#include <set>
#include <vector>

#include "src/obs/json.h"
#include "src/support/env.h"

namespace grapple {
namespace obs {

namespace {

using Clock = std::chrono::steady_clock;

struct Event {
  const char* name;
  const char* category;
  uint64_t ts_ns;
  uint64_t dur_ns;
  char phase;  // 'X' complete, 'i' instant
};

// Per-thread event buffer. Buffers are registered once per thread and kept
// alive for the whole process so cached thread-local pointers can never
// dangle; events are cleared when a new session starts. The per-buffer
// mutex is only ever contended by the flusher, so recording stays cheap.
struct ThreadBuf {
  std::mutex mu;
  std::vector<Event> events;
  uint64_t dropped = 0;
  uint32_t tid = 0;
};

struct TraceState {
  std::mutex mu;
  std::vector<std::unique_ptr<ThreadBuf>> buffers;
  Clock::time_point start;
  TraceOptions options;
};

std::atomic<bool> g_enabled{false};

TraceState& State() {
  static TraceState* state = new TraceState();
  return *state;
}

thread_local ThreadBuf* t_buf = nullptr;

ThreadBuf* LocalBuf() {
  if (t_buf == nullptr) {
    TraceState& state = State();
    std::lock_guard<std::mutex> lock(state.mu);
    state.buffers.push_back(std::make_unique<ThreadBuf>());
    t_buf = state.buffers.back().get();
    t_buf->tid = static_cast<uint32_t>(state.buffers.size());
  }
  return t_buf;
}

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - State().start)
          .count());
}

void Record(const char* name, const char* category, uint64_t ts_ns, uint64_t dur_ns,
            char phase) {
  ThreadBuf* buf = LocalBuf();
  std::lock_guard<std::mutex> lock(buf->mu);
  if (buf->events.size() >= State().options.max_events_per_thread) {
    ++buf->dropped;
    return;
  }
  buf->events.push_back(Event{name, category, ts_ns, dur_ns, phase});
}

}  // namespace

bool TracingEnabled() { return g_enabled.load(std::memory_order_relaxed); }

void StartTracing(TraceOptions options) {
  TraceState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  if (g_enabled.load(std::memory_order_relaxed)) {
    return;
  }
  state.options = options;
  state.start = Clock::now();
  for (auto& buf : state.buffers) {
    std::lock_guard<std::mutex> buf_lock(buf->mu);
    buf->events.clear();
    buf->dropped = 0;
  }
  g_enabled.store(true, std::memory_order_release);
}

std::string StopTracingToJson() {
  g_enabled.store(false, std::memory_order_release);
  TraceState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);

  JsonWriter w;
  w.BeginObject();
  w.Key("displayTimeUnit").String("ms");
  w.Key("traceEvents").BeginArray();
  // Process metadata.
  w.BeginObject();
  w.Key("ph").String("M").Key("pid").Int(1).Key("name").String("process_name");
  w.Key("args").BeginObject().Key("name").String("grapple").EndObject();
  w.EndObject();
  // Drain every shard first, then emit one timestamp-sorted stream: shard
  // drain order is thread-registration order, and interleaving threads'
  // events by ts is what makes the merged trace (and its golden tests)
  // deterministic regardless of which thread registered first.
  uint64_t total_dropped = 0;
  struct TaggedEvent {
    Event event;
    int tid;
  };
  std::vector<TaggedEvent> merged;
  for (auto& buf : state.buffers) {
    std::lock_guard<std::mutex> buf_lock(buf->mu);
    w.BeginObject();
    w.Key("ph").String("M").Key("pid").Int(1).Key("tid").Int(buf->tid);
    w.Key("name").String("thread_name");
    w.Key("args").BeginObject().Key("name").String("worker-" + std::to_string(buf->tid)).EndObject();
    w.EndObject();
    for (const Event& event : buf->events) {
      merged.push_back(TaggedEvent{event, static_cast<int>(buf->tid)});
    }
    total_dropped += buf->dropped;
    buf->events.clear();
    buf->events.shrink_to_fit();
    buf->dropped = 0;
  }
  // stable_sort keeps a thread's simultaneous events (ts ties, e.g. nested
  // spans opened in the same tick) in their original emission order.
  std::stable_sort(merged.begin(), merged.end(), [](const TaggedEvent& a, const TaggedEvent& b) {
    return a.event.ts_ns < b.event.ts_ns;
  });
  for (const TaggedEvent& tagged : merged) {
    const Event& event = tagged.event;
    w.BeginObject();
    w.Key("name").String(event.name);
    w.Key("cat").String(event.category);
    w.Key("ph").String(std::string(1, event.phase));
    w.Key("pid").Int(1);
    w.Key("tid").Int(tagged.tid);
    // Chrome expects microseconds.
    w.Key("ts").Double(static_cast<double>(event.ts_ns) / 1000.0);
    if (event.phase == 'X') {
      w.Key("dur").Double(static_cast<double>(event.dur_ns) / 1000.0);
    } else {
      w.Key("s").String("t");
    }
    w.EndObject();
  }
  w.EndArray();
  w.Key("otherData").BeginObject();
  w.Key("dropped_events").UInt(total_dropped);
  w.EndObject();
  w.EndObject();
  return w.Take();
}

bool StopTracing(const std::string& path) {
  std::string json = StopTracingToJson();
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return false;
  }
  size_t written = std::fwrite(json.data(), 1, json.size(), file);
  std::fclose(file);
  return written == json.size();
}

namespace {
std::string* g_env_trace_path = nullptr;
}  // namespace

void InitTracingFromEnv() {
  static std::once_flag once;
  std::call_once(once, [] {
    std::string path = EnvString("GRAPPLE_TRACE");
    if (path.empty()) {
      return;
    }
    g_env_trace_path = new std::string(std::move(path));
    TraceOptions options;
    int64_t cap = EnvInt64("GRAPPLE_TRACE_MAX_EVENTS", 0);
    if (cap > 0) {
      options.max_events_per_thread = static_cast<size_t>(cap);
    }
    StartTracing(options);
    std::atexit([] {
      // Plain stderr: logging statics may already be destroyed at exit.
      if (TracingEnabled() && !StopTracing(*g_env_trace_path)) {
        std::fprintf(stderr, "grapple: failed to write trace to %s\n",
                     g_env_trace_path->c_str());
      }
    });
  });
}

const char* InternSpanName(const std::string& name) {
  static std::mutex mu;
  static std::set<std::string>* names = new std::set<std::string>();
  std::lock_guard<std::mutex> lock(mu);
  return names->insert(name).first->c_str();
}

ScopedSpan::ScopedSpan(const char* name, const char* category)
    : name_(name), category_(category) {
  if (g_enabled.load(std::memory_order_relaxed)) {
    active_ = true;
    start_ns_ = NowNs();
  }
}

ScopedSpan::~ScopedSpan() {
  if (!active_ || !g_enabled.load(std::memory_order_relaxed)) {
    return;
  }
  uint64_t end_ns = NowNs();
  Record(name_, category_, start_ns_, end_ns - start_ns_, 'X');
}

void TraceInstant(const char* name, const char* category) {
  if (!g_enabled.load(std::memory_order_relaxed)) {
    return;
  }
  Record(name, category, NowNs(), 0, 'i');
}

}  // namespace obs
}  // namespace grapple
