// Lock-cheap metrics registry (counters, gauges, log-scale histograms).
//
// Design: every registry keeps one fixed-capacity shard of atomic slots per
// reporting thread. Registration (name -> id) takes a mutex; the hot path —
// Add()/Observe() with a pre-registered id — touches only the calling
// thread's shard with relaxed atomics, so worker threads never contend on a
// lock or on each other's cache lines. Snapshot() aggregates all shards.
//
// Conventions:
//   * counter names ending in "_ns" hold nanoseconds; MetricsSnapshot
//     exposes them as seconds via SecondsOf().
//   * gauges are doubles with last-write or max semantics (cold path).
//   * histograms bucket by floor(log2(value)), 64 buckets, and track
//     count/sum/min/max exactly.
#ifndef GRAPPLE_SRC_OBS_METRICS_H_
#define GRAPPLE_SRC_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace grapple {
namespace obs {

using MetricId = uint32_t;
inline constexpr MetricId kInvalidMetric = UINT32_MAX;

// Fixed shard capacities. Registration past the cap fails a check — bump
// these if a subsystem ever needs more.
inline constexpr size_t kMaxCounters = 192;
inline constexpr size_t kMaxHistograms = 24;
inline constexpr size_t kHistogramBuckets = 64;

struct HistogramSnapshot {
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t min = 0;
  uint64_t max = 0;
  std::array<uint64_t, kHistogramBuckets> buckets{};

  double Mean() const { return count > 0 ? static_cast<double>(sum) / static_cast<double>(count) : 0.0; }
  // Approximate percentile (0..100): upper bound of the bucket containing
  // the p-th observation.
  uint64_t ApproxPercentile(double p) const;
  void Merge(const HistogramSnapshot& other);
};

// A point-in-time aggregation of a registry (or a merge of several). This is
// the single structure every human-readable table and JSON report renders
// from.
struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  uint64_t CounterOr(const std::string& name, uint64_t default_value = 0) const;
  double GaugeOr(const std::string& name, double default_value = 0) const;
  // Counter `name` interpreted as nanoseconds, in seconds.
  double SecondsOf(const std::string& name) const;

  // Sums counters and histograms; gauges take the max (merged snapshots come
  // from disjoint or same-meaning sources, where max is the useful answer
  // for peaks and last-writes alike).
  void Merge(const MetricsSnapshot& other);

  // JSON object: {"counters":{...},"gauges":{...},"histograms":{...}}.
  std::string ToJson() const;
};

class MetricsRegistry {
 public:
  MetricsRegistry();
  ~MetricsRegistry();

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Registers (or looks up) a metric by name. Safe from any thread; takes
  // the registry mutex. Call once at setup and keep the id.
  MetricId Counter(const std::string& name);
  MetricId Histogram(const std::string& name);

  // Hot path: thread-sharded relaxed add / observe.
  void Add(MetricId id, uint64_t delta = 1);
  void AddNanos(MetricId id, uint64_t nanos) { Add(id, nanos); }
  void Observe(MetricId id, uint64_t value);

  // Gauges (cold path, mutex-guarded).
  void SetGauge(const std::string& name, double value);
  void MaxGauge(const std::string& name, double value);

  // Aggregates every thread shard. Concurrent Adds may or may not be
  // included (relaxed); totals are exact once writers have quiesced.
  MetricsSnapshot Snapshot() const;

  // Zeroes all shards and gauges (names/ids stay registered).
  void Reset();

 private:
  struct Shard;

  Shard* LocalShard() const;

  const uint64_t generation_;  // process-unique, for TLS cache validation
  mutable std::mutex mu_;
  std::vector<std::string> counter_names_;
  std::vector<std::string> histogram_names_;
  std::map<std::string, double> gauges_;
  mutable std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace obs
}  // namespace grapple

#endif  // GRAPPLE_SRC_OBS_METRICS_H_
