#include "src/obs/event_log.h"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <map>
#include <mutex>

#include "src/obs/json.h"
#include "src/support/byte_io.h"
#include "src/support/env.h"
#include "src/support/event_hook.h"

namespace grapple {
namespace obs {

namespace {

constexpr char kMagic[4] = {'G', 'F', 'R', '1'};
constexpr uint32_t kFormatVersion = 1;
constexpr size_t kDefaultCapacity = 4096;
constexpr size_t kMinCapacity = 64;
constexpr size_t kMaxCapacity = 1u << 20;

// One ring slot. The payload is four relaxed-atomic words bracketed by a
// per-slot sequence counter (Boehm-style seqlock): the writer publishes
// 2n+1 (odd, generation-unique) before touching the payload and 2n+2 after,
// so a reader that observes an odd or changed sequence knows the slot was
// torn mid-write and drops it. Generation-unique values also defeat ABA
// when the ring wraps between the reader's two sequence loads.
struct Slot {
  std::atomic<uint64_t> seq{0};
  std::atomic<uint64_t> w0{0};  // ts_ns
  std::atomic<uint64_t> w1{0};  // type | tid << 16 | arg0 << 32
  std::atomic<uint64_t> w2{0};  // arg1
  std::atomic<uint64_t> w3{0};  // arg2
};

struct Ring {
  Ring(size_t capacity, uint16_t tid) : slots(capacity), tid(tid) {}
  std::vector<Slot> slots;         // power-of-two length
  std::atomic<uint64_t> next{0};   // events ever written by the owner thread
  uint16_t tid;
};

struct LogState {
  std::mutex mu;
  // Rings are never freed: a thread that exits mid-run leaves its tail
  // behind for the post-mortem, which is the point of a flight recorder.
  std::vector<Ring*> rings;
  size_t capacity = 0;  // 0 = not yet resolved from env/default
  std::vector<std::string> strings;
  std::map<std::string, uint32_t> string_ids;
  std::string crash_dump_path;
};

LogState& State() {
  static LogState* state = new LogState;
  return *state;
}

std::atomic<bool> g_enabled{true};
thread_local Ring* t_ring = nullptr;

uint64_t NowNs() {
  static const std::chrono::steady_clock::time_point start = std::chrono::steady_clock::now();
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                   std::chrono::steady_clock::now() - start)
                                   .count());
}

size_t RoundUpPow2(size_t value) {
  size_t pow2 = 1;
  while (pow2 < value) {
    pow2 <<= 1;
  }
  return pow2;
}

Ring* RegisterThreadRing() {
  LogState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  if (state.capacity == 0) {
    int64_t from_env = EnvInt64("GRAPPLE_EVENTLOG_EVENTS", static_cast<int64_t>(kDefaultCapacity));
    size_t capacity = from_env < static_cast<int64_t>(kMinCapacity)
                          ? kMinCapacity
                          : std::min<size_t>(static_cast<size_t>(from_env), kMaxCapacity);
    state.capacity = RoundUpPow2(capacity);
  }
  Ring* ring = new Ring(state.capacity, static_cast<uint16_t>(state.rings.size() & 0xffff));
  state.rings.push_back(ring);
  t_ring = ring;
  return ring;
}

void Record(uint16_t type, uint32_t a0, uint64_t a1, uint64_t a2) {
  Ring* ring = t_ring;
  if (ring == nullptr) {
    ring = RegisterThreadRing();
  }
  uint64_t n = ring->next.load(std::memory_order_relaxed);
  Slot& slot = ring->slots[n & (ring->slots.size() - 1)];
  slot.seq.store(2 * n + 1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  slot.w0.store(NowNs(), std::memory_order_relaxed);
  slot.w1.store(static_cast<uint64_t>(type) | (static_cast<uint64_t>(ring->tid) << 16) |
                    (static_cast<uint64_t>(a0) << 32),
                std::memory_order_relaxed);
  slot.w2.store(a1, std::memory_order_relaxed);
  slot.w3.store(a2, std::memory_order_relaxed);
  slot.seq.store(2 * n + 2, std::memory_order_release);
  ring->next.store(n + 1, std::memory_order_release);
}

// True for types whose support-layer emitters pass a `const char*` in a2
// (they sit below the string table); the sink interns it at record time.
bool ArgIsRawStringPointer(uint16_t type) {
  return type == evt::kIoRetry || type == evt::kFaultInjected || type == evt::kCrashExit;
}

// Which arg (if any) holds an interned-string id after recording.
enum class StringArg { kNone, kArg1, kArg2 };
StringArg StringArgOf(uint16_t type) {
  switch (type) {
    case evt::kIoRetry:
    case evt::kFaultInjected:
    case evt::kCrashExit:
      return StringArg::kArg2;
    case evt::kCheckerStart:
    case evt::kCheckerDone:
    case evt::kCheckerDegraded:
      return StringArg::kArg1;
    default:
      return StringArg::kNone;
  }
}

void RecordSink(uint16_t type, uint32_t a0, uint64_t a1, uint64_t a2) {
  if (!g_enabled.load(std::memory_order_relaxed)) {
    return;
  }
  if (ArgIsRawStringPointer(type)) {
    const char* text = reinterpret_cast<const char*>(a2);
    a2 = text == nullptr ? 0 : EventLogInternString(text);
  }
  Record(type, a0, a1, a2);
}

// Reads one slot; returns false for empty or torn slots.
bool ReadSlot(const Slot& slot, FlightEvent* out) {
  uint64_t s1 = slot.seq.load(std::memory_order_acquire);
  if (s1 == 0 || (s1 & 1) != 0) {
    return false;
  }
  uint64_t w0 = slot.w0.load(std::memory_order_relaxed);
  uint64_t w1 = slot.w1.load(std::memory_order_relaxed);
  uint64_t w2 = slot.w2.load(std::memory_order_relaxed);
  uint64_t w3 = slot.w3.load(std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_acquire);
  uint64_t s2 = slot.seq.load(std::memory_order_relaxed);
  if (s1 != s2) {
    return false;
  }
  out->ts_ns = w0;
  out->type = static_cast<uint16_t>(w1 & 0xffff);
  out->tid = static_cast<uint16_t>((w1 >> 16) & 0xffff);
  out->arg0 = static_cast<uint32_t>(w1 >> 32);
  out->arg1 = w2;
  out->arg2 = w3;
  return true;
}

// Snapshots every ring, drops torn slots, sorts by timestamp, keeps the
// newest `max_events` (0 = everything live).
std::vector<FlightEvent> MergeTail(size_t max_events) {
  std::vector<FlightEvent> merged;
  {
    LogState& state = State();
    std::lock_guard<std::mutex> lock(state.mu);
    for (Ring* ring : state.rings) {
      for (const Slot& slot : ring->slots) {
        FlightEvent event;
        if (ReadSlot(slot, &event)) {
          merged.push_back(event);
        }
      }
    }
  }
  std::stable_sort(merged.begin(), merged.end(),
                   [](const FlightEvent& a, const FlightEvent& b) { return a.ts_ns < b.ts_ns; });
  if (max_events > 0 && merged.size() > max_events) {
    merged.erase(merged.begin(), merged.end() - static_cast<ptrdiff_t>(max_events));
  }
  return merged;
}

// Renders events as a JSON array; `resolve` maps interned ids to names
// (live table or a decoded file's snapshot).
template <typename Resolve>
void RenderEvents(JsonWriter* w, const std::vector<FlightEvent>& events, Resolve resolve) {
  w->Key("events").BeginArray();
  for (const FlightEvent& event : events) {
    w->BeginObject();
    w->Key("ts_ns").UInt(event.ts_ns);
    w->Key("type").String(EventTypeName(event.type));
    w->Key("tid").Int(event.tid);
    w->Key("arg0").UInt(event.arg0);
    w->Key("arg1").UInt(event.arg1);
    w->Key("arg2").UInt(event.arg2);
    StringArg arg = StringArgOf(event.type);
    if (arg != StringArg::kNone) {
      uint64_t id = arg == StringArg::kArg1 ? event.arg1 : event.arg2;
      w->Key("name").String(resolve(static_cast<uint32_t>(id)));
    }
    w->EndObject();
  }
  w->EndArray();
}

std::string ResolveLive(uint32_t id) { return EventLogStringOf(id); }

// Guard against recursive crash flushes (an abort inside the flush itself
// must not re-enter it).
std::atomic<bool> g_crash_flush_ran{false};

// Additional crash-path dumps (the profiler's profile.bin spill). A fixed
// lock-free array so the fatal-signal path can walk it without taking any
// lock.
constexpr int kMaxCrashSpillers = 8;
std::atomic<CrashSpiller> g_spillers[kMaxCrashSpillers] = {};
std::atomic<int> g_spiller_count{0};

void RunCrashSpillers() {
  int count = std::min(g_spiller_count.load(std::memory_order_acquire), kMaxCrashSpillers);
  for (int i = 0; i < count; ++i) {
    CrashSpiller spiller = g_spillers[i].load(std::memory_order_acquire);
    if (spiller != nullptr) {
      spiller();
    }
  }
}

void CrashFlushNow() {
  if (g_crash_flush_ran.exchange(true, std::memory_order_acq_rel)) {
    return;
  }
  std::string path = EventLogCrashDumpPath();
  if (!path.empty()) {
    EventLogFlush(path);
  }
  RunCrashSpillers();
}

// Fatal-signal handler (SIGSEGV/SIGBUS/SIGABRT): best-effort spill, then
// restore the default disposition and re-raise so the process still dies
// with the original signal (exit status, core dumps, and waitpid semantics
// are unchanged). Not strictly async-signal-safe — the merge allocates —
// but the process is already dying; the one hazard worth engineering away
// is a self-deadlock on the recorder mutex, so the path refuses to block:
// if the fault struck while this thread held the lock, the dump is skipped.
// (std::mutex::try_lock by the owning thread is formally undefined; on
// glibc it returns false for the default non-recursive type, which is
// exactly the behavior this path needs.)
void FatalSignalSpill(int sig) {
  if (!g_crash_flush_ran.exchange(true, std::memory_order_acq_rel)) {
    LogState& state = State();
    if (state.mu.try_lock()) {
      std::string path = state.crash_dump_path;
      state.mu.unlock();
      if (!path.empty()) {
        EventLogFlush(path);
      }
      RunCrashSpillers();
    }
  }
  struct sigaction dfl;
  std::memset(&dfl, 0, sizeof(dfl));
  dfl.sa_handler = SIG_DFL;
  sigaction(sig, &dfl, nullptr);
  raise(sig);
}

// Installs FatalSignalSpill for `sig` unless something else (a sanitizer
// runtime, a death-test harness) already claimed it.
void InstallFatalHandler(int sig) {
  struct sigaction current;
  if (sigaction(sig, nullptr, &current) != 0) {
    return;
  }
  if (current.sa_handler != SIG_DFL || (current.sa_flags & SA_SIGINFO) != 0) {
    return;
  }
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = &FatalSignalSpill;
  sigemptyset(&sa.sa_mask);
  sigaction(sig, &sa, nullptr);
}

void AppendU32(std::string* out, uint32_t value) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((value >> (8 * i)) & 0xff));
  }
}

void AppendU64(std::string* out, uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((value >> (8 * i)) & 0xff));
  }
}

uint32_t TakeU32(const uint8_t* data) {
  uint32_t value = 0;
  for (int i = 3; i >= 0; --i) {
    value = (value << 8) | data[i];
  }
  return value;
}

uint64_t TakeU64(const uint8_t* data) {
  uint64_t value = 0;
  for (int i = 7; i >= 0; --i) {
    value = (value << 8) | data[i];
  }
  return value;
}

}  // namespace

void EventLogInstall() {
  static const bool installed = [] {
    evt::SetSink(&RecordSink);
    evt::SetCrashFlushHook(&CrashFlushNow);
    InstallFatalHandler(SIGSEGV);
    InstallFatalHandler(SIGBUS);
    InstallFatalHandler(SIGABRT);
    return true;
  }();
  (void)installed;
}

void EventLogAddCrashSpiller(CrashSpiller spiller) {
  int index = g_spiller_count.fetch_add(1, std::memory_order_acq_rel);
  if (index < kMaxCrashSpillers) {
    g_spillers[index].store(spiller, std::memory_order_release);
  }
}

void EventLogSetEnabled(bool enabled) {
  g_enabled.store(enabled, std::memory_order_relaxed);
}

bool EventLogEnabled() { return g_enabled.load(std::memory_order_relaxed); }

void EventLogSetCapacity(size_t events_per_thread) {
  LogState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  size_t clamped = std::min(std::max(events_per_thread, kMinCapacity), kMaxCapacity);
  state.capacity = RoundUpPow2(clamped);
}

uint32_t EventLogInternString(const std::string& s) {
  LogState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  auto it = state.string_ids.find(s);
  if (it != state.string_ids.end()) {
    return it->second;
  }
  uint32_t id = static_cast<uint32_t>(state.strings.size());
  state.strings.push_back(s);
  state.string_ids.emplace(s, id);
  return id;
}

std::string EventLogStringOf(uint32_t id) {
  LogState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  return id < state.strings.size() ? state.strings[id] : std::string();
}

bool EventLogStringsSnapshot(std::vector<std::string>* out, bool try_only) {
  LogState& state = State();
  if (try_only) {
    if (!state.mu.try_lock()) {
      return false;
    }
    *out = state.strings;
    state.mu.unlock();
    return true;
  }
  std::lock_guard<std::mutex> lock(state.mu);
  *out = state.strings;
  return true;
}

std::vector<FlightEvent> EventLogTail(size_t max_events) { return MergeTail(max_events); }

std::string EventLogTailJson(size_t max_events) {
  std::vector<FlightEvent> events = MergeTail(max_events);
  JsonWriter w;
  w.BeginObject();
  w.Key("event_count").UInt(events.size());
  RenderEvents(&w, events, ResolveLive);
  w.EndObject();
  return w.Take();
}

std::string EventLogTailChromeTrace(size_t max_events) {
  std::vector<FlightEvent> events = MergeTail(max_events);
  JsonWriter w;
  w.BeginObject();
  w.Key("traceEvents").BeginArray();
  for (const FlightEvent& event : events) {
    w.BeginObject();
    w.Key("name").String(EventTypeName(event.type));
    w.Key("cat").String("flightrec");
    w.Key("ph").String("i");
    w.Key("s").String("t");
    w.Key("pid").Int(1);
    w.Key("tid").Int(event.tid);
    w.Key("ts").Double(static_cast<double>(event.ts_ns) / 1000.0);
    w.EndObject();
  }
  w.EndArray();
  w.Key("otherData").BeginObject();
  w.Key("source").String("grapple_flight_recorder");
  w.EndObject();
  w.EndObject();
  return w.Take();
}

void EventLogSetCrashDumpPath(const std::string& path, bool only_if_unset) {
  LogState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  if (only_if_unset && !state.crash_dump_path.empty()) {
    return;
  }
  state.crash_dump_path = path;
}

std::string EventLogCrashDumpPath() {
  LogState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  return state.crash_dump_path;
}

bool EventLogFlush(const std::string& path) {
  std::vector<FlightEvent> events = MergeTail(0);
  std::vector<std::string> strings;
  {
    LogState& state = State();
    std::lock_guard<std::mutex> lock(state.mu);
    strings = state.strings;
  }
  std::string blob;
  blob.reserve(24 + events.size() * sizeof(FlightEvent));
  blob.append(kMagic, sizeof(kMagic));
  AppendU32(&blob, kFormatVersion);
  AppendU64(&blob, events.size());
  for (const FlightEvent& event : events) {
    AppendU64(&blob, event.ts_ns);
    AppendU32(&blob, static_cast<uint32_t>(event.type) |
                         (static_cast<uint32_t>(event.tid) << 16));
    AppendU32(&blob, event.arg0);
    AppendU64(&blob, event.arg1);
    AppendU64(&blob, event.arg2);
  }
  AppendU32(&blob, static_cast<uint32_t>(strings.size()));
  for (const std::string& s : strings) {
    AppendU32(&blob, static_cast<uint32_t>(s.size()));
    blob.append(s);
  }
  // Raw syscalls on purpose: this runs on crash paths where the byte_io
  // layer (and its fault shim) must not be re-entered.
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    return false;
  }
  size_t done = 0;
  while (done < blob.size()) {
    ssize_t n = ::write(fd, blob.data() + done, blob.size() - done);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      ::close(fd);
      return false;
    }
    done += static_cast<size_t>(n);
  }
  ::fsync(fd);
  ::close(fd);
  return true;
}

bool DecodeFlightRecording(const std::string& path, FlightRecording* out, std::string* error) {
  auto fail = [&](const std::string& why) {
    if (error != nullptr) {
      *error = "flightrec '" + path + "': " + why;
    }
    return false;
  };
  std::vector<uint8_t> bytes;
  std::string io_error;
  if (!ReadFileBytes(path, &bytes, &io_error)) {
    return fail(io_error);
  }
  if (bytes.size() < 16 || std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    return fail("bad magic (not a flight recording)");
  }
  uint32_t version = TakeU32(bytes.data() + 4);
  if (version != kFormatVersion) {
    return fail("unsupported version " + std::to_string(version));
  }
  uint64_t event_count = TakeU64(bytes.data() + 8);
  size_t offset = 16;
  if (bytes.size() < offset + event_count * 32) {
    return fail("truncated event section");
  }
  out->events.clear();
  out->events.reserve(static_cast<size_t>(event_count));
  for (uint64_t i = 0; i < event_count; ++i) {
    const uint8_t* rec = bytes.data() + offset;
    FlightEvent event;
    event.ts_ns = TakeU64(rec);
    uint32_t packed = TakeU32(rec + 8);
    event.type = static_cast<uint16_t>(packed & 0xffff);
    event.tid = static_cast<uint16_t>(packed >> 16);
    event.arg0 = TakeU32(rec + 12);
    event.arg1 = TakeU64(rec + 16);
    event.arg2 = TakeU64(rec + 24);
    out->events.push_back(event);
    offset += 32;
  }
  if (bytes.size() < offset + 4) {
    return fail("truncated string table");
  }
  uint32_t string_count = TakeU32(bytes.data() + offset);
  offset += 4;
  out->strings.clear();
  out->strings.reserve(string_count);
  for (uint32_t i = 0; i < string_count; ++i) {
    if (bytes.size() < offset + 4) {
      return fail("truncated string table entry");
    }
    uint32_t length = TakeU32(bytes.data() + offset);
    offset += 4;
    if (bytes.size() < offset + length) {
      return fail("truncated string table entry");
    }
    out->strings.emplace_back(reinterpret_cast<const char*>(bytes.data() + offset), length);
    offset += length;
  }
  return true;
}

std::string FlightRecordingToJson(const FlightRecording& recording) {
  JsonWriter w;
  w.BeginObject();
  w.Key("event_count").UInt(recording.events.size());
  RenderEvents(&w, recording.events, [&recording](uint32_t id) {
    return id < recording.strings.size() ? recording.strings[id] : std::string();
  });
  w.EndObject();
  return w.Take();
}

const char* EventTypeName(uint16_t type) {
  switch (type) {
    case evt::kRunStart:
      return "run_start";
    case evt::kRunEnd:
      return "run_end";
    case evt::kPairStart:
      return "pair_start";
    case evt::kPairEnd:
      return "pair_end";
    case evt::kPartitionLoad:
      return "partition_load";
    case evt::kPartitionEvict:
      return "partition_evict";
    case evt::kPartitionSpill:
      return "partition_spill";
    case evt::kPartitionSplit:
      return "partition_split";
    case evt::kPrefetchHit:
      return "prefetch_hit";
    case evt::kPrefetchWaste:
      return "prefetch_waste";
    case evt::kArbiterAcquire:
      return "arbiter_acquire";
    case evt::kArbiterBorrow:
      return "arbiter_borrow";
    case evt::kArbiterWait:
      return "arbiter_wait";
    case evt::kCheckpointPublish:
      return "checkpoint_publish";
    case evt::kIoRetry:
      return "io_retry";
    case evt::kFaultInjected:
      return "fault_injected";
    case evt::kCheckerStart:
      return "checker_start";
    case evt::kCheckerDone:
      return "checker_done";
    case evt::kCheckerDegraded:
      return "checker_degraded";
    case evt::kWitnessDecode:
      return "witness_decode";
    case evt::kCrashExit:
      return "crash_exit";
    case evt::kWaitBegin:
      return "wait_begin";
    case evt::kWaitEnd:
      return "wait_end";
    default:
      return "unknown";
  }
}

}  // namespace obs
}  // namespace grapple
