#include "src/obs/json.h"

#include <cmath>
#include <cstdio>
#include <cstring>

namespace grapple {
namespace obs {

std::string JsonEscapeString(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 8);
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::BeforeValue() {
  if (pending_key_) {
    pending_key_ = false;
    return;
  }
  if (!first_.empty()) {
    if (!first_.back()) {
      out_ += ',';
    }
    first_.back() = false;
  }
}

JsonWriter& JsonWriter::BeginObject() {
  BeforeValue();
  out_ += '{';
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  first_.pop_back();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  BeforeValue();
  out_ += '[';
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  first_.pop_back();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::Key(const std::string& key) {
  if (!first_.empty()) {
    if (!first_.back()) {
      out_ += ',';
    }
    first_.back() = false;
  }
  out_ += '"';
  out_ += JsonEscapeString(key);
  out_ += "\":";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::String(const std::string& value) {
  BeforeValue();
  out_ += '"';
  out_ += JsonEscapeString(value);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::Int(int64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::UInt(uint64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::Double(double value) {
  BeforeValue();
  if (!std::isfinite(value)) {
    // JSON has no NaN/Inf; clamp to null so the document stays parseable.
    out_ += "null";
    return *this;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", value);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::Bool(bool value) {
  BeforeValue();
  out_ += value ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::Null() {
  BeforeValue();
  out_ += "null";
  return *this;
}

JsonWriter& JsonWriter::Raw(const std::string& json) {
  BeforeValue();
  out_ += json;
  return *this;
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (kind != Kind::kObject) {
    return nullptr;
  }
  auto it = members.find(key);
  return it == members.end() ? nullptr : &it->second;
}

double JsonValue::NumberOr(const std::string& key, double default_value) const {
  const JsonValue* v = Find(key);
  return (v != nullptr && v->IsNumber()) ? v->number_value : default_value;
}

std::string JsonValue::StringOr(const std::string& key, const std::string& default_value) const {
  const JsonValue* v = Find(key);
  return (v != nullptr && v->IsString()) ? v->string_value : default_value;
}

namespace {

class Parser {
 public:
  Parser(const std::string& text, std::string* error) : text_(text), error_(error) {}

  std::optional<JsonValue> Parse() {
    SkipWs();
    JsonValue value;
    if (!ParseValue(&value)) {
      return std::nullopt;
    }
    SkipWs();
    if (pos_ != text_.size()) {
      return Fail("trailing characters after document");
    }
    return value;
  }

 private:
  std::optional<JsonValue> Fail(const std::string& message) {
    if (error_ != nullptr && error_->empty()) {
      *error_ = message + " at offset " + std::to_string(pos_);
    }
    return std::nullopt;
  }

  bool Error(const std::string& message) {
    Fail(message);
    return false;
  }

  void SkipWs() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ParseValue(JsonValue* out) {
    if (pos_ >= text_.size()) {
      return Error("unexpected end of input");
    }
    char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(out);
      case '[':
        return ParseArray(out);
      case '"':
        out->kind = JsonValue::Kind::kString;
        return ParseString(&out->string_value);
      case 't':
      case 'f':
        return ParseKeyword(out);
      case 'n':
        return ParseKeyword(out);
      default:
        return ParseNumber(out);
    }
  }

  bool ParseKeyword(JsonValue* out) {
    auto match = [&](const char* word) {
      size_t len = std::strlen(word);
      if (text_.compare(pos_, len, word) == 0) {
        pos_ += len;
        return true;
      }
      return false;
    };
    if (match("true")) {
      out->kind = JsonValue::Kind::kBool;
      out->bool_value = true;
      return true;
    }
    if (match("false")) {
      out->kind = JsonValue::Kind::kBool;
      out->bool_value = false;
      return true;
    }
    if (match("null")) {
      out->kind = JsonValue::Kind::kNull;
      return true;
    }
    return Error("invalid literal");
  }

  bool ParseNumber(JsonValue* out) {
    size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    bool digits = false;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' || c == '-' || c == '+') {
        digits = digits || (c >= '0' && c <= '9');
        ++pos_;
      } else {
        break;
      }
    }
    if (!digits) {
      return Error("invalid number");
    }
    out->kind = JsonValue::Kind::kNumber;
    out->number_value = std::strtod(text_.c_str() + start, nullptr);
    return true;
  }

  bool ParseString(std::string* out) {
    if (!Consume('"')) {
      return Error("expected string");
    }
    out->clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') {
        return true;
      }
      if (c != '\\') {
        *out += c;
        continue;
      }
      if (pos_ >= text_.size()) {
        break;
      }
      char esc = text_[pos_++];
      switch (esc) {
        case '"':
          *out += '"';
          break;
        case '\\':
          *out += '\\';
          break;
        case '/':
          *out += '/';
          break;
        case 'b':
          *out += '\b';
          break;
        case 'f':
          *out += '\f';
          break;
        case 'n':
          *out += '\n';
          break;
        case 'r':
          *out += '\r';
          break;
        case 't':
          *out += '\t';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            return Error("truncated \\u escape");
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Error("invalid \\u escape");
            }
          }
          // UTF-8 encode the BMP code point (surrogate pairs are not
          // produced by our writer; decode them as-is if seen).
          if (code < 0x80) {
            *out += static_cast<char>(code);
          } else if (code < 0x800) {
            *out += static_cast<char>(0xC0 | (code >> 6));
            *out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            *out += static_cast<char>(0xE0 | (code >> 12));
            *out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            *out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          return Error("invalid escape");
      }
    }
    return Error("unterminated string");
  }

  bool ParseObject(JsonValue* out) {
    Consume('{');
    out->kind = JsonValue::Kind::kObject;
    SkipWs();
    if (Consume('}')) {
      return true;
    }
    for (;;) {
      SkipWs();
      std::string key;
      if (!ParseString(&key)) {
        return false;
      }
      SkipWs();
      if (!Consume(':')) {
        return Error("expected ':' in object");
      }
      SkipWs();
      JsonValue value;
      if (!ParseValue(&value)) {
        return false;
      }
      out->members.emplace(std::move(key), std::move(value));
      SkipWs();
      if (Consume(',')) {
        continue;
      }
      if (Consume('}')) {
        return true;
      }
      return Error("expected ',' or '}' in object");
    }
  }

  bool ParseArray(JsonValue* out) {
    Consume('[');
    out->kind = JsonValue::Kind::kArray;
    SkipWs();
    if (Consume(']')) {
      return true;
    }
    for (;;) {
      SkipWs();
      JsonValue value;
      if (!ParseValue(&value)) {
        return false;
      }
      out->items.push_back(std::move(value));
      SkipWs();
      if (Consume(',')) {
        continue;
      }
      if (Consume(']')) {
        return true;
      }
      return Error("expected ',' or ']' in array");
    }
  }

  const std::string& text_;
  std::string* error_;
  size_t pos_ = 0;
};

}  // namespace

std::optional<JsonValue> ParseJson(const std::string& text, std::string* error) {
  Parser parser(text, error);
  return parser.Parse();
}

}  // namespace obs
}  // namespace grapple
