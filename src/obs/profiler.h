// Always-on wall-clock sampling profiler with wait attribution and a
// per-partition-pair cost ledger (DESIGN.md §13).
//
// Each worker thread carries a small thread-local context — current phase
// tag, checker id, partition pair, and off-CPU wait kind — maintained by
// cheap RAII markers (ProfPhase/ProfChecker/ProfPair) threaded through the
// engine, the partition store, the oracle, and the checker layer. A ticker
// thread delivers SIGPROF to every registered thread at a fixed rate; the
// async-signal-safe handler snapshots the interrupted thread's context into
// a 32-byte sample in a per-thread seqlock ring (the event_log ring
// pattern), so every sample lands in exactly one
// (checker, phase, pair, on/off-CPU) bucket whether the thread was running
// or blocked. Off-CPU state comes from the evt::Emit observer tap: the
// existing kArbiterWait/kArbiterAcquire bracket plus the kWaitBegin/kWaitEnd
// events emitted at I/O barriers, pending-I/O drains, and simulated solve
// blocks.
//
// The ticker harvests rings each tick into the cost ledger — a map from
// (checker, phase, pair, wait kind) to sample count — which persists as
// <work_dir>/profile.bin ("GPRF", versioned, length-prefixed, FNV-1a
// checksummed; the checkpoint envelope discipline) and is exported as
// collapsed-stack text for flamegraphs (analyze_file --profile,
// tools/grapple-prof), as JSON on the /profilez statusz endpoint, and as
// phase fractions stamped into every BENCH_*.json.
//
// Context ids are event-log string-table ids offset by one: 0 means "no
// context", id-1 indexes the string table. Sampling is off by default;
// GRAPPLE_PROFILE=on (or Observability::profile) turns it on at
// GRAPPLE_PROFILE_HZ (default 97 Hz). With the profiler stopped and a
// thread unregistered, a marker is one thread-local load and a branch.
#ifndef GRAPPLE_SRC_OBS_PROFILER_H_
#define GRAPPLE_SRC_OBS_PROFILER_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace grapple {
namespace obs {

// Sentinel for "no partition pair in scope".
inline constexpr uint64_t kProfileNoPair = ~0ull;

namespace profiler_internal {
struct ThreadProf;
// Returns the calling thread's profiler context, registering the thread on
// first use while the profiler is (or has been) running; nullptr when
// profiling never started and the thread is unregistered.
ThreadProf* CurrentThreadProf();
uint32_t SwapPhase(ThreadProf* tp, uint32_t value);
uint32_t SwapChecker(ThreadProf* tp, uint32_t value);
uint32_t ReadChecker(ThreadProf* tp);
uint64_t SwapPair(ThreadProf* tp, uint64_t value);
}  // namespace profiler_internal

// RAII phase marker; `name` is interned into the event-log string table.
// Nests: the previous phase is restored on destruction.
class ProfPhase {
 public:
  explicit ProfPhase(const char* name);
  ~ProfPhase();
  ProfPhase(const ProfPhase&) = delete;
  ProfPhase& operator=(const ProfPhase&) = delete;

 private:
  profiler_internal::ThreadProf* tp_ = nullptr;
  uint32_t prev_ = 0;
};

// Sentinel for "no checker context". Accepted by ProfChecker (installs the
// empty context) and returned by ProfCurrentChecker when none is live.
inline constexpr uint32_t kProfNoChecker = ~0u;

// The innermost live ProfChecker's name id on the calling thread, or
// kProfNoChecker. Task-runtime submitters capture this and re-install it
// (via ProfChecker) inside task bodies, so work executed on a shared
// worker thread is still attributed to the checker that scheduled it.
uint32_t ProfCurrentChecker();

// RAII checker marker; takes an EventLogInternString id (the checker layer
// already interns checker names for kCheckerStart events) or kProfNoChecker
// to explicitly install "no checker".
class ProfChecker {
 public:
  explicit ProfChecker(uint32_t name_id);
  ~ProfChecker();
  ProfChecker(const ProfChecker&) = delete;
  ProfChecker& operator=(const ProfChecker&) = delete;

 private:
  profiler_internal::ThreadProf* tp_ = nullptr;
  uint32_t prev_ = 0;
};

// RAII partition-pair marker.
class ProfPair {
 public:
  ProfPair(uint32_t i, uint32_t j);
  ~ProfPair();
  ProfPair(const ProfPair&) = delete;
  ProfPair& operator=(const ProfPair&) = delete;

 private:
  profiler_internal::ThreadProf* tp_ = nullptr;
  uint64_t prev_ = kProfileNoPair;
};

// One cost-ledger bucket. `checker` and `phase` are 1-based string-table
// ids (0 = none); `wait_kind` is an evt::WaitKind (0 = on-CPU).
struct ProfileEntry {
  uint32_t checker = 0;
  uint32_t phase = 0;
  uint64_t pair = kProfileNoPair;
  uint32_t wait_kind = 0;
  uint64_t samples = 0;
};

// A decoded (or live-snapshotted) profile: the ledger plus the string-table
// snapshot that resolves checker/phase ids.
struct ProfileData {
  uint64_t sample_period_ns = 0;
  uint64_t total_samples = 0;
  uint64_t dropped_samples = 0;  // ring overwrites + torn slots
  uint64_t wall_ns = 0;          // profiled wall time across Start/Stop spans
  std::vector<ProfileEntry> entries;
  std::vector<std::string> strings;
};

// Installs the SIGPROF handler and registers the crash spiller that writes
// profile.bin next to flightrec.bin on fatal paths. Idempotent; implied by
// ProfilerStart.
void ProfilerInstall();

// Starts the ticker at `hz` samples/sec (clamped to 1..1000) and installs
// the evt observer for wait attribution. Returns false (and does nothing)
// when already running or hz == 0.
bool ProfilerStart(uint32_t hz);
// Stops the ticker, runs a final harvest, removes the observer. The ledger
// and thread registrations survive for later snapshots and restarts.
void ProfilerStop();
bool ProfilerRunning();

// Where crash paths (and the Grapple facade) persist the ledger. Empty
// disables the crash spill. `only_if_unset` mirrors
// EventLogSetCrashDumpPath: inner components propose, the facade decides.
void ProfilerSetDumpPath(const std::string& path, bool only_if_unset = false);
std::string ProfilerDumpPath();

// Harvests all rings now and returns the aggregated ledger.
ProfileData ProfilerSnapshot();

// Clears the ledger, sample counters, and profiled-wall clock, and skips
// any unharvested ring samples. Thread registrations stay. Tests only.
void ProfilerResetForTest();

// Persists a snapshot to `path` in GPRF format (tmp + fsync + rename).
// Returns false on I/O failure.
bool ProfilerWriteFile(const std::string& path);

// Strict decoder with named errors ("bad magic", "checksum mismatch",
// "truncated ...", each prefixed with the path).
bool DecodeProfile(const std::string& path, ProfileData* out, std::string* error);

// {"schema":"grapple.profile.v1",...,"entries":[...]} — entries sorted by
// descending sample count.
std::string ProfileToJson(const ProfileData& data);

// Collapsed-stack text for flamegraph tooling, one bucket per line:
//   <checker>;<phase>[;pair:<i>-<j>][;offcpu:<kind>] <count>
// with "(none)" for absent checker/phase frames. Lines sorted.
std::string ProfileToCollapsed(const ProfileData& data);

// Fraction of phase-tagged samples per phase name. The profiler-side
// counterpart of PhaseProfiler::Fraction for fig9 cross-validation.
std::map<std::string, double> ProfilePhaseFractions(const ProfileData& data);

// Live-snapshot summary stamped into BENCH_*.json:
// {"samples":N,"dropped":N,"phase_fractions":{...}}. samples == 0 when the
// profiler never ran.
std::string ProfileSummaryJson();

// "none", "arbiter", "io_barrier", "io_queue", "solve", or "unknown".
const char* ProfileWaitKindName(uint32_t kind);

}  // namespace obs
}  // namespace grapple

#endif  // GRAPPLE_SRC_OBS_PROFILER_H_
