#include "src/obs/provenance.h"

#include <cstring>

#include "src/support/byte_io.h"
#include "src/support/env.h"
#include "src/support/logging.h"

namespace grapple {
namespace obs {

namespace {

// Flush the write buffer once it crosses this size; keeps the in-memory
// footprint of recording independent of run length.
constexpr size_t kFlushThreshold = size_t{1} << 20;

void PutEdge(std::vector<uint8_t>* out, const ProvEdge& edge) {
  PutVarint64(out, edge.src);
  PutVarint64(out, edge.dst);
  PutVarint64(out, edge.label);
}

bool GetEdge(ByteReader* reader, ProvEdge* edge) {
  edge->src = static_cast<uint32_t>(reader->GetVarint64());
  edge->dst = static_cast<uint32_t>(reader->GetVarint64());
  edge->label = static_cast<uint16_t>(reader->GetVarint64());
  return reader->ok();
}

}  // namespace

const char* WitnessModeName(WitnessMode mode) {
  switch (mode) {
    case WitnessMode::kOff:
      return "off";
    case WitnessMode::kBugs:
      return "bugs";
    case WitnessMode::kFull:
      return "full";
  }
  return "?";
}

WitnessMode WitnessModeFromEnv(WitnessMode fallback) {
  std::string value = EnvString("GRAPPLE_WITNESS");
  if (value.empty()) {
    return fallback;
  }
  if (value == "off" || value == "0" || value == "none") {
    return WitnessMode::kOff;
  }
  if (value == "bugs") {
    return WitnessMode::kBugs;
  }
  if (value == "full") {
    return WitnessMode::kFull;
  }
  GRAPPLE_LOG(WARNING) << "unrecognized GRAPPLE_WITNESS value '" << value
                       << "' (want off|bugs|full); using " << WitnessModeName(fallback);
  return fallback;
}

ProvenanceWriter::ProvenanceWriter(std::string path, MetricsRegistry* metrics)
    : path_(std::move(path)), metrics_(metrics) {
  if (metrics_ != nullptr) {
    c_records_ = metrics_->Counter("provenance_records_total");
    c_bytes_ = metrics_->Counter("provenance_bytes");
  }
}

ProvenanceWriter::~ProvenanceWriter() { Flush(); }

// Wire format per record: u8 kind, u8 widened, fixed64 child hash, child
// edge (3 varints), varint payload length + payload bytes, then per kind:
// join — fixed64 + edge for each parent; rewrite — fixed64 + edge for the
// single parent. A leading varint carries the record's byte length so a
// reader can resynchronize-or-stop on a torn tail.
void ProvenanceWriter::Put(ProvKind kind, uint64_t hash, const ProvEdge& edge,
                           const uint8_t* payload, size_t len, uint64_t parent_a,
                           const ProvEdge& a_edge, uint64_t parent_b, const ProvEdge& b_edge,
                           bool widened) {
  std::vector<uint8_t> record;
  record.push_back(static_cast<uint8_t>(kind));
  record.push_back(widened ? 1 : 0);
  PutFixed64(&record, hash);
  PutEdge(&record, edge);
  PutVarint64(&record, len);
  record.insert(record.end(), payload, payload + len);
  if (kind == ProvKind::kJoin || kind == ProvKind::kRewrite) {
    PutFixed64(&record, parent_a);
    PutEdge(&record, a_edge);
  }
  if (kind == ProvKind::kJoin) {
    PutFixed64(&record, parent_b);
    PutEdge(&record, b_edge);
  }
  PutVarint64(&buffer_, record.size());
  buffer_.insert(buffer_.end(), record.begin(), record.end());
  ++records_;
  if (metrics_ != nullptr) {
    metrics_->Add(c_records_);
  }
  if (buffer_.size() >= kFlushThreshold) {
    Flush();
  }
}

void ProvenanceWriter::RecordBase(uint64_t hash, const ProvEdge& edge, const uint8_t* payload,
                                  size_t len) {
  Put(ProvKind::kBase, hash, edge, payload, len, 0, ProvEdge(), 0, ProvEdge(), false);
}

void ProvenanceWriter::RecordJoin(uint64_t hash, const ProvEdge& edge, const uint8_t* payload,
                                  size_t len, uint64_t parent_a, const ProvEdge& a_edge,
                                  uint64_t parent_b, const ProvEdge& b_edge, bool widened) {
  Put(ProvKind::kJoin, hash, edge, payload, len, parent_a, a_edge, parent_b, b_edge, widened);
}

void ProvenanceWriter::RecordRewrite(uint64_t hash, const ProvEdge& edge,
                                     const uint8_t* payload, size_t len, uint64_t parent,
                                     const ProvEdge& parent_edge) {
  Put(ProvKind::kRewrite, hash, edge, payload, len, parent, parent_edge, 0, ProvEdge(), false);
}

void ProvenanceWriter::ResumeAt(uint64_t bytes, uint64_t records) {
  buffer_.clear();
  bytes_ = bytes;
  records_ = records;
  // The on-disk prefix is live: later flushes must append, never truncate.
  file_started_ = true;
  if (metrics_ != nullptr) {
    metrics_->Add(c_records_, records);
    metrics_->Add(c_bytes_, bytes);
  }
}

bool ProvenanceWriter::Flush() {
  if (buffer_.empty()) {
    // A phase that recorded nothing still leaves an (empty) log behind, so
    // readers can distinguish "no derivations" from "recording was off".
    if (!file_started_) {
      file_started_ = WriteFileBytes(path_, buffer_);
    }
    return file_started_;
  }
  bool ok = file_started_ ? AppendFileBytes(path_, buffer_) : WriteFileBytes(path_, buffer_);
  if (!ok) {
    GRAPPLE_LOG(WARNING) << "failed to flush provenance log " << path_;
    buffer_.clear();
    return false;
  }
  file_started_ = true;
  bytes_ += buffer_.size();
  if (metrics_ != nullptr) {
    metrics_->Add(c_bytes_, buffer_.size());
  }
  buffer_.clear();
  return true;
}

bool ProvenanceReader::Open(const std::string& path) {
  std::vector<uint8_t> bytes;
  if (!ReadFileBytes(path, &bytes)) {
    return false;
  }
  file_bytes_ = bytes.size();
  ByteReader reader(bytes);
  while (!reader.AtEnd()) {
    uint64_t record_len = reader.GetVarint64();
    if (!reader.ok() || record_len > reader.remaining()) {
      return false;  // torn tail; keep what parsed
    }
    size_t record_end = reader.position() + record_len;
    ProvRecord record;
    uint8_t kind = 0;
    uint8_t widened = 0;
    if (!reader.GetRaw(&kind, 1) || !reader.GetRaw(&widened, 1) ||
        kind > static_cast<uint8_t>(ProvKind::kRewrite)) {
      return false;
    }
    record.kind = static_cast<ProvKind>(kind);
    record.widened = widened != 0;
    record.hash = reader.GetFixed64();
    if (!GetEdge(&reader, &record.edge)) {
      return false;
    }
    uint64_t payload_len = reader.GetVarint64();
    if (!reader.ok() || payload_len > reader.remaining()) {
      return false;
    }
    record.payload.resize(payload_len);
    if (payload_len > 0 && !reader.GetRaw(record.payload.data(), payload_len)) {
      return false;
    }
    if (record.kind == ProvKind::kJoin || record.kind == ProvKind::kRewrite) {
      record.parent_a = reader.GetFixed64();
      if (!GetEdge(&reader, &record.a_edge)) {
        return false;
      }
    }
    if (record.kind == ProvKind::kJoin) {
      record.parent_b = reader.GetFixed64();
      if (!GetEdge(&reader, &record.b_edge)) {
        return false;
      }
    }
    if (!reader.ok() || reader.position() != record_end) {
      return false;
    }
    uint64_t hash = record.hash;
    records_.emplace(hash, std::move(record));
  }
  return true;
}

const ProvRecord* ProvenanceReader::Lookup(uint64_t hash) const {
  auto it = records_.find(hash);
  return it == records_.end() ? nullptr : &it->second;
}

}  // namespace obs
}  // namespace grapple
