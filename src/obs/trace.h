// Nested timed spans with Chrome trace_event JSON export.
//
// Usage:
//   { obs::ScopedSpan span("process_pair", "engine"); ... }
//
// Tracing is process-global and off by default; when off, a span costs one
// relaxed atomic load. Enable programmatically (StartTracing/StopTracing)
// or by setting GRAPPLE_TRACE=<path>, which arms tracing at first use and
// flushes the Chrome-loadable JSON (chrome://tracing, Perfetto) to <path>
// at process exit.
//
// Each thread buffers its own events (complete "X" events: name, category,
// ts, dur), so recording never contends across threads. Buffers are capped
// (GRAPPLE_TRACE_MAX_EVENTS, default 262144 per thread); overflow events
// are counted and reported as metadata instead of growing without bound.
#ifndef GRAPPLE_SRC_OBS_TRACE_H_
#define GRAPPLE_SRC_OBS_TRACE_H_

#include <cstdint>
#include <string>

namespace grapple {
namespace obs {

struct TraceOptions {
  size_t max_events_per_thread = size_t{1} << 18;
};

// True while a trace session is recording.
bool TracingEnabled();

// Starts an in-memory trace session (no-op when already recording).
void StartTracing(TraceOptions options = TraceOptions());

// Stops recording and returns the session as Chrome trace JSON
// ({"traceEvents":[...]}). Buffers are cleared for the next session.
std::string StopTracingToJson();

// StopTracingToJson + write to `path`. Returns false on I/O failure.
bool StopTracing(const std::string& path);

// Reads GRAPPLE_TRACE; when set, starts tracing (once per process) and
// registers an atexit hook that flushes to the given path. Safe to call
// from multiple subsystems; only the first call does work.
void InitTracingFromEnv();

// Interns a dynamic span name, returning a pointer that stays valid for the
// process lifetime (span names are usually string literals; use this for
// names built at runtime, e.g. per-checker phases).
const char* InternSpanName(const std::string& name);

// RAII span. Records one complete event on destruction when tracing is on.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name, const char* category = "grapple");
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_;
  const char* category_;
  uint64_t start_ns_ = 0;
  bool active_ = false;
};

// Records a zero-duration instant event.
void TraceInstant(const char* name, const char* category = "grapple");

}  // namespace obs
}  // namespace grapple

#endif  // GRAPPLE_SRC_OBS_TRACE_H_
