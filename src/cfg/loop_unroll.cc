#include "src/cfg/loop_unroll.h"

#include <utility>
#include <vector>

#include "src/support/logging.h"

namespace grapple {

namespace {

void UnrollBlock(std::vector<Stmt>* block, size_t bound);

// Builds the k-times unrolled form of `while (cond) { body }`:
//   if (cond) { body; if (cond) { body; ... } }
Stmt BuildUnrolled(const Stmt& loop, size_t remaining) {
  Stmt guard;
  guard.kind = StmtKind::kIf;
  guard.cond = loop.cond;
  guard.source_line = loop.source_line;
  guard.then_block = loop.then_block;  // body copy (already loop-free)
  if (remaining > 1) {
    guard.then_block.push_back(BuildUnrolled(loop, remaining - 1));
  }
  return guard;
}

void UnrollBlock(std::vector<Stmt>* block, size_t bound) {
  for (auto& stmt : *block) {
    UnrollBlock(&stmt.then_block, bound);
    UnrollBlock(&stmt.else_block, bound);
    if (stmt.kind == StmtKind::kWhile) {
      // The body has already been unrolled above, so nesting copies of it is
      // safe even for nested loops.
      stmt = BuildUnrolled(stmt, bound);
    }
  }
}

bool BlockHasLoops(const std::vector<Stmt>& block) {
  for (const auto& stmt : block) {
    if (stmt.kind == StmtKind::kWhile) {
      return true;
    }
    if (BlockHasLoops(stmt.then_block) || BlockHasLoops(stmt.else_block)) {
      return true;
    }
  }
  return false;
}

}  // namespace

void UnrollLoops(Method* method, size_t bound) {
  GRAPPLE_CHECK_GE(bound, 1u);
  UnrollBlock(&method->body, bound);
}

void UnrollLoops(Program* program, size_t bound) {
  for (size_t i = 0; i < program->NumMethods(); ++i) {
    UnrollLoops(&program->MutableMethod(static_cast<MethodId>(i)), bound);
  }
}

bool HasLoops(const Method& method) { return BlockHasLoops(method.body); }

}  // namespace grapple
