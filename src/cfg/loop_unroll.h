// Bounded loop unrolling (§3.1 of the paper).
//
// The CFET must be cycle-free for the interval encoding to identify paths
// uniquely, so "we statically unroll the loop a certain number of times,
// effectively transforming each loop into a piece of cycle-free code". A
// `while (c) { B }` with bound k becomes k nested `if (c) { B ... }`
// conditionals; executions needing more than k iterations are truncated
// (they fall out of the innermost conditional), which under-approximates
// deep-iteration behaviour exactly as the paper does.
#ifndef GRAPPLE_SRC_CFG_LOOP_UNROLL_H_
#define GRAPPLE_SRC_CFG_LOOP_UNROLL_H_

#include <cstddef>

#include "src/ir/ir.h"

namespace grapple {

// Rewrites every kWhile in the method body (recursively) into nested kIf
// statements. `bound` >= 1.
void UnrollLoops(Method* method, size_t bound);

// Applies UnrollLoops to every method.
void UnrollLoops(Program* program, size_t bound);

// True if any kWhile remains (used by invariants/tests).
bool HasLoops(const Method& method);

}  // namespace grapple

#endif  // GRAPPLE_SRC_CFG_LOOP_UNROLL_H_
