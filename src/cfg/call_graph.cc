#include "src/cfg/call_graph.h"

#include <algorithm>

#include "src/support/logging.h"

namespace grapple {

namespace {

void CollectCalls(const Program& program, const std::vector<Stmt>& block,
                  std::vector<MethodId>* out) {
  for (const auto& stmt : block) {
    if (stmt.kind == StmtKind::kCall) {
      auto callee = program.FindMethod(stmt.callee);
      if (callee.has_value()) {
        out->push_back(*callee);
      }
    }
    CollectCalls(program, stmt.then_block, out);
    CollectCalls(program, stmt.else_block, out);
  }
}

}  // namespace

CallGraph::CallGraph(const Program& program) {
  size_t n = program.NumMethods();
  callees_.resize(n);
  callers_.resize(n);
  for (MethodId m = 0; m < n; ++m) {
    std::vector<MethodId> calls;
    CollectCalls(program, program.MethodAt(m).body, &calls);
    std::sort(calls.begin(), calls.end());
    calls.erase(std::unique(calls.begin(), calls.end()), calls.end());
    callees_[m] = std::move(calls);
    for (MethodId callee : callees_[m]) {
      callers_[callee].push_back(m);
    }
  }
  ComputeSccs();
}

void CallGraph::ComputeSccs() {
  size_t n = callees_.size();
  scc_of_.assign(n, 0);
  recursive_.assign(n, 0);

  // Iterative Tarjan.
  std::vector<uint32_t> index(n, UINT32_MAX);
  std::vector<uint32_t> lowlink(n, 0);
  std::vector<uint8_t> on_stack(n, 0);
  std::vector<MethodId> stack;
  uint32_t next_index = 0;
  num_sccs_ = 0;

  struct Frame {
    MethodId node;
    size_t child = 0;
  };

  // SCC ids assigned in Tarjan completion order (reverse topological), so
  // callees get smaller SCC ids than callers.
  for (MethodId root = 0; root < n; ++root) {
    if (index[root] != UINT32_MAX) {
      continue;
    }
    std::vector<Frame> frames;
    frames.push_back(Frame{root});
    index[root] = lowlink[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = 1;
    while (!frames.empty()) {
      Frame& frame = frames.back();
      MethodId v = frame.node;
      if (frame.child < callees_[v].size()) {
        MethodId w = callees_[v][frame.child++];
        if (index[w] == UINT32_MAX) {
          index[w] = lowlink[w] = next_index++;
          stack.push_back(w);
          on_stack[w] = 1;
          frames.push_back(Frame{w});
        } else if (on_stack[w]) {
          lowlink[v] = std::min(lowlink[v], index[w]);
        }
        continue;
      }
      if (lowlink[v] == index[v]) {
        uint32_t scc = static_cast<uint32_t>(num_sccs_++);
        size_t members = 0;
        for (;;) {
          MethodId w = stack.back();
          stack.pop_back();
          on_stack[w] = 0;
          scc_of_[w] = scc;
          ++members;
          if (w == v) {
            break;
          }
        }
        if (members > 1) {
          // Mark every member recursive; resolved below once all SCC ids
          // are final.
        }
      }
      frames.pop_back();
      if (!frames.empty()) {
        MethodId parent = frames.back().node;
        lowlink[parent] = std::min(lowlink[parent], lowlink[v]);
      }
    }
  }

  // Recursive methods: SCC with >1 member, or a direct self-call.
  std::vector<uint32_t> scc_size(num_sccs_, 0);
  for (MethodId m = 0; m < n; ++m) {
    ++scc_size[scc_of_[m]];
  }
  for (MethodId m = 0; m < n; ++m) {
    if (scc_size[scc_of_[m]] > 1) {
      recursive_[m] = 1;
    }
    for (MethodId callee : callees_[m]) {
      if (callee == m) {
        recursive_[m] = 1;
      }
    }
  }

  // Bottom-up order: ascending SCC id (Tarjan finishes callees first).
  bottom_up_.resize(n);
  for (MethodId m = 0; m < n; ++m) {
    bottom_up_[m] = m;
  }
  std::sort(bottom_up_.begin(), bottom_up_.end(), [this](MethodId a, MethodId b) {
    if (scc_of_[a] != scc_of_[b]) {
      return scc_of_[a] < scc_of_[b];
    }
    return a < b;
  });
}

std::vector<MethodId> CallGraph::EntryMethods() const {
  std::vector<MethodId> entries;
  for (MethodId m = 0; m < callers_.size(); ++m) {
    if (callers_[m].empty()) {
      entries.push_back(m);
    }
  }
  return entries;
}

}  // namespace grapple
