// Context-insensitive call graph with SCC condensation.
//
// The call graph drives two things (paper §2.1):
//   * reverse-topological (bottom-up) inlining order for context-sensitive
//     cloning of the program graph, and
//   * detection of recursion: methods in a non-trivial SCC are collapsed and
//     treated context-insensitively.
#ifndef GRAPPLE_SRC_CFG_CALL_GRAPH_H_
#define GRAPPLE_SRC_CFG_CALL_GRAPH_H_

#include <cstdint>
#include <vector>

#include "src/ir/ir.h"

namespace grapple {

class CallGraph {
 public:
  // Builds the graph by scanning every call statement. Calls to methods not
  // present in the program (external APIs) are ignored.
  explicit CallGraph(const Program& program);

  size_t NumMethods() const { return callees_.size(); }
  const std::vector<MethodId>& CalleesOf(MethodId method) const { return callees_[method]; }
  const std::vector<MethodId>& CallersOf(MethodId method) const { return callers_[method]; }

  // SCC id of a method (computed with Tarjan's algorithm). Ids are dense.
  uint32_t SccOf(MethodId method) const { return scc_of_[method]; }
  size_t NumSccs() const { return num_sccs_; }

  // True when the method participates in recursion: its SCC has more than
  // one member, or it calls itself directly.
  bool IsRecursive(MethodId method) const { return recursive_[method] != 0; }

  // Methods ordered so that every (non-recursive) callee precedes its
  // callers — the order in which bottom-up inlining proceeds.
  const std::vector<MethodId>& BottomUpOrder() const { return bottom_up_; }

  // Methods with no in-program callers (analysis entry points).
  std::vector<MethodId> EntryMethods() const;

 private:
  void ComputeSccs();

  std::vector<std::vector<MethodId>> callees_;
  std::vector<std::vector<MethodId>> callers_;
  std::vector<uint32_t> scc_of_;
  std::vector<uint8_t> recursive_;
  std::vector<MethodId> bottom_up_;
  size_t num_sccs_ = 0;
};

}  // namespace grapple

#endif  // GRAPPLE_SRC_CFG_CALL_GRAPH_H_
