// Atoms and conjunctive constraints.
//
// A decoded Grapple path constraint is a conjunction of atoms: linear
// comparisons from branch conditions (with polarity) plus linear equalities
// modeling parameter passing (§3.2). Opaque atoms stand in for conditions the
// frontend could not express linearly; the solver treats them as satisfiable,
// which over-approximates feasibility (a warning is never suppressed by an
// unsound "unsat").
#ifndef GRAPPLE_SRC_SMT_CONSTRAINT_H_
#define GRAPPLE_SRC_SMT_CONSTRAINT_H_

#include <string>
#include <vector>

#include "src/smt/linear_expr.h"

namespace grapple {

enum class Cmp {
  kEq,  // expr == 0
  kNe,  // expr != 0
  kLe,  // expr <= 0
  kLt,  // expr <  0
  kGe,  // expr >= 0
  kGt,  // expr >  0
};

const char* CmpName(Cmp cmp);
Cmp NegateCmp(Cmp cmp);

// One atomic condition `expr cmp 0`.
struct Atom {
  LinearExpr expr;
  Cmp cmp = Cmp::kEq;
  bool opaque = false;  // non-linear / unknown condition: assumed satisfiable

  // Builds the atom `lhs cmp rhs`.
  static Atom Compare(const LinearExpr& lhs, Cmp cmp, const LinearExpr& rhs);
  static Atom True();
  static Atom Opaque();

  Atom Negated() const;

  // Trivially true / false under constant folding; nullopt when undecided.
  // Opaque atoms are never trivially false.
  std::optional<bool> TrivialValue() const;

  bool operator==(const Atom& other) const {
    return cmp == other.cmp && opaque == other.opaque && expr == other.expr;
  }

  std::string ToString(const std::function<std::string(VarId)>& name_of = nullptr) const;
};

// A conjunction of atoms.
class Constraint {
 public:
  Constraint() = default;

  static Constraint True() { return Constraint(); }

  void And(Atom atom);
  void And(const Constraint& other);

  const std::vector<Atom>& atoms() const { return atoms_; }
  bool IsTriviallyTrue() const { return atoms_.empty(); }
  size_t size() const { return atoms_.size(); }

  // Applies a variable renaming to every atom.
  Constraint RenameVars(const std::function<VarId(VarId)>& f) const;

  std::string ToString(const std::function<std::string(VarId)>& name_of = nullptr) const;

 private:
  std::vector<Atom> atoms_;
};

}  // namespace grapple

#endif  // GRAPPLE_SRC_SMT_CONSTRAINT_H_
