#include "src/smt/solver.h"

#include <algorithm>
#include <numeric>
#include <set>
#include <vector>

#include "src/obs/trace.h"

namespace grapple {

namespace {

// Internal inequality: expr <= 0. Equalities and disequalities are tracked
// separately until lowered.
struct System {
  std::vector<LinearExpr> eqs;  // expr == 0
  std::vector<LinearExpr> les;  // expr <= 0
  std::vector<LinearExpr> nes;  // expr != 0
  bool saw_opaque = false;
};

// Integer floor division.
int64_t FloorDiv(int64_t a, int64_t b) {
  int64_t q = a / b;
  if ((a % b != 0) && ((a < 0) != (b < 0))) {
    --q;
  }
  return q;
}

// Divides an inequality expr <= 0 by the gcd of its term coefficients and
// floors the constant ("integer tightening"). Returns nullopt when the
// inequality is constant: caller must then check the constant directly.
LinearExpr TightenLe(const LinearExpr& expr) {
  int64_t g = expr.TermGcd();
  if (g <= 1) {
    return expr;
  }
  // sum(g*ti*vi) + c <= 0  <=>  sum(ti*vi) <= floor(-c/g)
  int64_t bound = FloorDiv(-expr.constant(), g);
  LinearExpr result = LinearExpr::Constant(-bound);
  for (const auto& [var, coeff] : expr.terms()) {
    result = result.Add(LinearExpr::Term(var, coeff / g));
  }
  return result;
}

constexpr int64_t kCoeffLimit = int64_t{1} << 40;

bool CoefficientsInRange(const LinearExpr& expr) {
  if (expr.constant() > kCoeffLimit || expr.constant() < -kCoeffLimit) {
    return false;
  }
  for (const auto& [var, coeff] : expr.terms()) {
    if (coeff > kCoeffLimit || coeff < -kCoeffLimit) {
      return false;
    }
  }
  return true;
}

class ConjunctionSolver {
 public:
  ConjunctionSolver(const SolverLimits& limits, SolverStats* stats)
      : limits_(limits), stats_(stats) {}

  SolveResult Solve(System system) {
    size_t splits_used = 0;
    return SolveRec(std::move(system), &splits_used);
  }

 private:
  SolveResult SolveRec(System system, size_t* splits_used) {
    // --- Phase 1: equality elimination. ---
    bool changed = true;
    while (changed) {
      changed = false;
      for (size_t i = 0; i < system.eqs.size(); ++i) {
        LinearExpr eq = system.eqs[i];
        if (eq.IsConstant()) {
          if (eq.constant() != 0) {
            return SolveResult::kUnsat;
          }
          system.eqs.erase(system.eqs.begin() + static_cast<ptrdiff_t>(i));
          --i;
          changed = true;
          continue;
        }
        // Find a unit-coefficient variable to substitute away.
        VarId unit_var = kInvalidVar;
        int64_t unit_coeff = 0;
        for (const auto& [var, coeff] : eq.terms()) {
          if (coeff == 1 || coeff == -1) {
            unit_var = var;
            unit_coeff = coeff;
            break;
          }
        }
        if (unit_var == kInvalidVar) {
          // gcd divisibility check: sum(ci*vi) == -c solvable iff
          // gcd(ci) | c.
          int64_t g = eq.TermGcd();
          if (g > 1 && (eq.constant() % g) != 0) {
            return SolveResult::kUnsat;
          }
          continue;
        }
        // unit_coeff * unit_var + rest == 0  =>  unit_var = -rest/unit_coeff
        LinearExpr rest = eq.Substitute(unit_var, LinearExpr::Constant(0));
        LinearExpr replacement = rest.Scale(unit_coeff == 1 ? -1 : 1);
        system.eqs.erase(system.eqs.begin() + static_cast<ptrdiff_t>(i));
        SubstituteEverywhere(&system, unit_var, replacement);
        changed = true;
        break;  // restart scan; indices shifted
      }
    }
    // Any equalities we could not substitute become a pair of inequalities.
    for (const auto& eq : system.eqs) {
      system.les.push_back(eq);
      system.les.push_back(eq.Negate());
    }
    system.eqs.clear();

    // --- Phase 2: disequality case-splitting. ---
    for (size_t i = 0; i < system.nes.size(); ++i) {
      LinearExpr ne = system.nes[i];
      if (ne.IsConstant()) {
        if (ne.constant() == 0) {
          return SolveResult::kUnsat;
        }
        continue;  // trivially true
      }
      if (*splits_used >= limits_.max_ne_splits) {
        // Drop the disequality: over-approximates to SAT-side.
        system.saw_opaque = true;
        continue;
      }
      ++*splits_used;
      ++stats_->ne_splits;
      System less = system;
      less.nes.erase(less.nes.begin() + static_cast<ptrdiff_t>(i));
      less.les.push_back(ne.AddConstant(1));  // ne < 0
      System greater = std::move(system);
      greater.nes.erase(greater.nes.begin() + static_cast<ptrdiff_t>(i));
      greater.les.push_back(ne.Negate().AddConstant(1));  // ne > 0
      SolveResult a = SolveRec(std::move(less), splits_used);
      if (a == SolveResult::kSat) {
        return SolveResult::kSat;
      }
      SolveResult b = SolveRec(std::move(greater), splits_used);
      if (b == SolveResult::kSat) {
        return SolveResult::kSat;
      }
      if (a == SolveResult::kUnknown || b == SolveResult::kUnknown) {
        return SolveResult::kUnknown;
      }
      return SolveResult::kUnsat;
    }
    system.nes.clear();

    // --- Phase 3: Fourier-Motzkin on the <= system. ---
    return FourierMotzkin(std::move(system.les), system.saw_opaque);
  }

  static void SubstituteEverywhere(System* system, VarId var, const LinearExpr& replacement) {
    for (auto& e : system->eqs) {
      e = e.Substitute(var, replacement);
    }
    for (auto& e : system->les) {
      e = e.Substitute(var, replacement);
    }
    for (auto& e : system->nes) {
      e = e.Substitute(var, replacement);
    }
  }

  SolveResult FourierMotzkin(std::vector<LinearExpr> les, bool saw_opaque) {
    bool capped = saw_opaque;
    for (;;) {
      // Normalize: tighten, drop/flag constants, dedupe.
      std::vector<LinearExpr> live;
      live.reserve(les.size());
      for (auto& expr : les) {
        if (expr.IsConstant()) {
          if (expr.constant() > 0) {
            return SolveResult::kUnsat;
          }
          continue;
        }
        if (!CoefficientsInRange(expr)) {
          capped = true;
          continue;
        }
        live.push_back(TightenLe(expr));
      }
      std::sort(live.begin(), live.end(), [](const LinearExpr& a, const LinearExpr& b) {
        if (a.constant() != b.constant()) {
          return a.constant() < b.constant();
        }
        return a.terms() < b.terms();
      });
      live.erase(std::unique(live.begin(), live.end()), live.end());

      if (live.empty()) {
        return capped ? SolveResult::kUnknown : SolveResult::kSat;
      }
      if (live.size() > limits_.max_inequalities) {
        return SolveResult::kUnknown;
      }

      // Choose the elimination variable with the smallest uppers*lowers
      // product (classic FM heuristic).
      std::set<VarId> vars;
      for (const auto& expr : live) {
        for (const auto& [var, coeff] : expr.terms()) {
          vars.insert(var);
        }
      }
      if (vars.size() > limits_.max_variables) {
        return SolveResult::kUnknown;
      }
      VarId best_var = kInvalidVar;
      size_t best_cost = SIZE_MAX;
      size_t best_total = 0;
      for (VarId var : vars) {
        size_t uppers = 0;
        size_t lowers = 0;
        for (const auto& expr : live) {
          int64_t coeff = expr.CoefficientOf(var);
          if (coeff > 0) {
            ++uppers;
          } else if (coeff < 0) {
            ++lowers;
          }
        }
        size_t cost = uppers * lowers;
        if (cost < best_cost) {
          best_cost = cost;
          best_var = var;
          best_total = uppers + lowers;
        }
      }
      (void)best_total;
      ++stats_->fm_eliminations;

      // Eliminate best_var.
      std::vector<LinearExpr> uppers;  // coeff > 0
      std::vector<LinearExpr> lowers;  // coeff < 0
      std::vector<LinearExpr> rest;
      for (auto& expr : live) {
        int64_t coeff = expr.CoefficientOf(best_var);
        if (coeff > 0) {
          uppers.push_back(std::move(expr));
        } else if (coeff < 0) {
          lowers.push_back(std::move(expr));
        } else {
          rest.push_back(std::move(expr));
        }
      }
      if (uppers.empty() || lowers.empty()) {
        // best_var is unbounded on one side: every constraint mentioning it
        // can be satisfied by pushing the variable far enough.
        les = std::move(rest);
        continue;
      }
      if (uppers.size() * lowers.size() + rest.size() > limits_.max_inequalities) {
        return SolveResult::kUnknown;
      }
      for (const auto& u : uppers) {
        int64_t a = u.CoefficientOf(best_var);  // a > 0
        for (const auto& l : lowers) {
          int64_t b = -l.CoefficientOf(best_var);  // b > 0
          // b*u + a*l eliminates best_var.
          LinearExpr combined = u.Scale(b).Add(l.Scale(a));
          rest.push_back(std::move(combined));
        }
      }
      les = std::move(rest);
    }
  }

  const SolverLimits& limits_;
  SolverStats* stats_;
};

}  // namespace

const char* SolveResultName(SolveResult result) {
  switch (result) {
    case SolveResult::kSat:
      return "sat";
    case SolveResult::kUnsat:
      return "unsat";
    case SolveResult::kUnknown:
      return "unknown";
  }
  return "?";
}

SolveResult Solver::Solve(const Constraint& constraint) {
  obs::ScopedSpan span("solve", "solver");
  ++stats_.solves;
  System system;
  for (const auto& atom : constraint.atoms()) {
    if (atom.opaque) {
      system.saw_opaque = true;
      continue;
    }
    auto trivial = atom.TrivialValue();
    if (trivial.has_value()) {
      if (!*trivial) {
        ++stats_.unsat;
        return SolveResult::kUnsat;
      }
      continue;
    }
    switch (atom.cmp) {
      case Cmp::kEq:
        system.eqs.push_back(atom.expr);
        break;
      case Cmp::kNe:
        system.nes.push_back(atom.expr);
        break;
      case Cmp::kLe:
        system.les.push_back(atom.expr);
        break;
      case Cmp::kLt:
        system.les.push_back(atom.expr.AddConstant(1));
        break;
      case Cmp::kGe:
        system.les.push_back(atom.expr.Negate());
        break;
      case Cmp::kGt:
        system.les.push_back(atom.expr.Negate().AddConstant(1));
        break;
    }
  }
  ConjunctionSolver solver(limits_, &stats_);
  SolveResult result = solver.Solve(std::move(system));
  switch (result) {
    case SolveResult::kSat:
      ++stats_.sat;
      break;
    case SolveResult::kUnsat:
      ++stats_.unsat;
      break;
    case SolveResult::kUnknown:
      ++stats_.unknown;
      break;
  }
  return result;
}

}  // namespace grapple
