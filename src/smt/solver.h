// Grapple's built-in constraint solver.
//
// The paper uses Z3; this reproduction ships a self-contained decision
// procedure for the fragment Grapple actually emits: conjunctions of linear
// integer comparisons (branch conditions and their negations) plus linear
// equalities (parameter passing). The procedure is:
//
//   1. equality elimination: substitute away variables with unit
//      coefficients; gcd-check remaining equalities,
//   2. disequality case-splitting: x != y becomes (x < y) or (x > y),
//      capped to avoid exponential blow-up,
//   3. Fourier-Motzkin elimination with integer tightening
//      (divide each inequality by the gcd of its coefficients and floor the
//      constant) for the remaining <= system.
//
// UNSAT answers are exact for this fragment up to FM's integer
// incompleteness (rational-feasible but integer-infeasible systems are
// answered kSat); blow-up caps and opaque (non-linear) atoms yield kUnknown.
// The graph engine keeps a path unless the solver proves it infeasible, so
// both approximations only ever keep warnings, never suppress them.
#ifndef GRAPPLE_SRC_SMT_SOLVER_H_
#define GRAPPLE_SRC_SMT_SOLVER_H_

#include <cstdint>

#include "src/smt/constraint.h"

namespace grapple {

enum class SolveResult {
  kSat,
  kUnsat,
  kUnknown,  // resource cap or opaque-only uncertainty; callers treat as sat
};

const char* SolveResultName(SolveResult result);

struct SolverLimits {
  // Maximum number of disequality case-splits explored per solve.
  size_t max_ne_splits = 12;
  // Maximum number of live inequalities during Fourier-Motzkin.
  size_t max_inequalities = 4096;
  // Maximum distinct variables considered before giving up.
  size_t max_variables = 512;
};

struct SolverStats {
  uint64_t solves = 0;
  uint64_t sat = 0;
  uint64_t unsat = 0;
  uint64_t unknown = 0;
  uint64_t fm_eliminations = 0;
  uint64_t ne_splits = 0;

  void Merge(const SolverStats& other) {
    solves += other.solves;
    sat += other.sat;
    unsat += other.unsat;
    unknown += other.unknown;
    fm_eliminations += other.fm_eliminations;
    ne_splits += other.ne_splits;
  }
};

class Solver {
 public:
  explicit Solver(SolverLimits limits = SolverLimits()) : limits_(limits) {}

  // Decides satisfiability of the conjunction. Thread-compatible: use one
  // Solver per worker thread.
  SolveResult Solve(const Constraint& constraint);

  const SolverStats& stats() const { return stats_; }
  void ResetStats() { stats_ = SolverStats(); }

 private:
  SolverLimits limits_;
  SolverStats stats_;
};

}  // namespace grapple

#endif  // GRAPPLE_SRC_SMT_SOLVER_H_
