#include "src/smt/constraint.h"

#include <sstream>

namespace grapple {

const char* CmpName(Cmp cmp) {
  switch (cmp) {
    case Cmp::kEq:
      return "==";
    case Cmp::kNe:
      return "!=";
    case Cmp::kLe:
      return "<=";
    case Cmp::kLt:
      return "<";
    case Cmp::kGe:
      return ">=";
    case Cmp::kGt:
      return ">";
  }
  return "?";
}

Cmp NegateCmp(Cmp cmp) {
  switch (cmp) {
    case Cmp::kEq:
      return Cmp::kNe;
    case Cmp::kNe:
      return Cmp::kEq;
    case Cmp::kLe:
      return Cmp::kGt;
    case Cmp::kLt:
      return Cmp::kGe;
    case Cmp::kGe:
      return Cmp::kLt;
    case Cmp::kGt:
      return Cmp::kLe;
  }
  return Cmp::kEq;
}

Atom Atom::Compare(const LinearExpr& lhs, Cmp cmp, const LinearExpr& rhs) {
  Atom atom;
  atom.expr = lhs.Sub(rhs);
  atom.cmp = cmp;
  return atom;
}

Atom Atom::True() {
  Atom atom;
  atom.expr = LinearExpr::Constant(0);
  atom.cmp = Cmp::kEq;
  return atom;
}

Atom Atom::Opaque() {
  Atom atom;
  atom.opaque = true;
  return atom;
}

Atom Atom::Negated() const {
  Atom result = *this;
  if (!opaque) {
    result.cmp = NegateCmp(cmp);
  }
  return result;
}

std::optional<bool> Atom::TrivialValue() const {
  if (opaque) {
    return std::nullopt;
  }
  if (!expr.IsConstant()) {
    return std::nullopt;
  }
  int64_t value = expr.constant();
  switch (cmp) {
    case Cmp::kEq:
      return value == 0;
    case Cmp::kNe:
      return value != 0;
    case Cmp::kLe:
      return value <= 0;
    case Cmp::kLt:
      return value < 0;
    case Cmp::kGe:
      return value >= 0;
    case Cmp::kGt:
      return value > 0;
  }
  return std::nullopt;
}

std::string Atom::ToString(const std::function<std::string(VarId)>& name_of) const {
  if (opaque) {
    return "<opaque>";
  }
  return expr.ToString(name_of) + " " + CmpName(cmp) + " 0";
}

void Constraint::And(Atom atom) {
  auto trivial = atom.TrivialValue();
  if (trivial.has_value() && *trivial) {
    return;  // drop tautologies so constraint keys stay small
  }
  atoms_.push_back(std::move(atom));
}

void Constraint::And(const Constraint& other) {
  for (const auto& atom : other.atoms_) {
    And(atom);
  }
}

Constraint Constraint::RenameVars(const std::function<VarId(VarId)>& f) const {
  Constraint result;
  for (const auto& atom : atoms_) {
    Atom renamed = atom;
    renamed.expr = atom.expr.RenameVars(f);
    result.atoms_.push_back(std::move(renamed));
  }
  return result;
}

std::string Constraint::ToString(const std::function<std::string(VarId)>& name_of) const {
  if (atoms_.empty()) {
    return "true";
  }
  std::ostringstream out;
  for (size_t i = 0; i < atoms_.size(); ++i) {
    if (i > 0) {
      out << " & ";
    }
    out << atoms_[i].ToString(name_of);
  }
  return out.str();
}

}  // namespace grapple
