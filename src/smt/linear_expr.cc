#include "src/smt/linear_expr.h"

#include <algorithm>
#include <numeric>
#include <sstream>

#include "src/support/logging.h"

namespace grapple {

LinearExpr LinearExpr::Constant(int64_t value) {
  LinearExpr e;
  e.constant_ = value;
  return e;
}

LinearExpr LinearExpr::Var(VarId var) { return Term(var, 1); }

LinearExpr LinearExpr::Term(VarId var, int64_t coeff) {
  LinearExpr e;
  if (coeff != 0) {
    e.terms_.emplace_back(var, coeff);
  }
  return e;
}

int64_t LinearExpr::CoefficientOf(VarId var) const {
  auto it = std::lower_bound(terms_.begin(), terms_.end(), var,
                             [](const auto& term, VarId v) { return term.first < v; });
  if (it != terms_.end() && it->first == var) {
    return it->second;
  }
  return 0;
}

LinearExpr LinearExpr::Add(const LinearExpr& other) const {
  LinearExpr result;
  result.constant_ = constant_ + other.constant_;
  result.terms_.reserve(terms_.size() + other.terms_.size());
  auto a = terms_.begin();
  auto b = other.terms_.begin();
  while (a != terms_.end() || b != other.terms_.end()) {
    if (b == other.terms_.end() || (a != terms_.end() && a->first < b->first)) {
      result.terms_.push_back(*a++);
    } else if (a == terms_.end() || b->first < a->first) {
      result.terms_.push_back(*b++);
    } else {
      int64_t coeff = a->second + b->second;
      if (coeff != 0) {
        result.terms_.emplace_back(a->first, coeff);
      }
      ++a;
      ++b;
    }
  }
  return result;
}

LinearExpr LinearExpr::Sub(const LinearExpr& other) const { return Add(other.Negate()); }

LinearExpr LinearExpr::Scale(int64_t factor) const {
  LinearExpr result;
  if (factor == 0) {
    return result;
  }
  result.constant_ = constant_ * factor;
  result.terms_.reserve(terms_.size());
  for (const auto& [var, coeff] : terms_) {
    result.terms_.emplace_back(var, coeff * factor);
  }
  return result;
}

LinearExpr LinearExpr::AddConstant(int64_t value) const {
  LinearExpr result = *this;
  result.constant_ += value;
  return result;
}

LinearExpr LinearExpr::Substitute(VarId var, const LinearExpr& replacement) const {
  int64_t coeff = CoefficientOf(var);
  if (coeff == 0) {
    return *this;
  }
  LinearExpr without = *this;
  auto it = std::lower_bound(without.terms_.begin(), without.terms_.end(), var,
                             [](const auto& term, VarId v) { return term.first < v; });
  without.terms_.erase(it);
  return without.Add(replacement.Scale(coeff));
}

LinearExpr LinearExpr::RenameVars(const std::function<VarId(VarId)>& f) const {
  LinearExpr result;
  result.constant_ = constant_;
  result.terms_.reserve(terms_.size());
  for (const auto& [var, coeff] : terms_) {
    result.terms_.emplace_back(f(var), coeff);
  }
  result.Canonicalize();
  return result;
}

std::optional<int64_t> LinearExpr::Evaluate(
    const std::function<std::optional<int64_t>(VarId)>& value_of) const {
  int64_t total = constant_;
  for (const auto& [var, coeff] : terms_) {
    auto value = value_of(var);
    if (!value.has_value()) {
      return std::nullopt;
    }
    total += coeff * *value;
  }
  return total;
}

int64_t LinearExpr::TermGcd() const {
  int64_t g = 0;
  for (const auto& [var, coeff] : terms_) {
    g = std::gcd(g, coeff < 0 ? -coeff : coeff);
  }
  return g;
}

std::string LinearExpr::ToString(const std::function<std::string(VarId)>& name_of) const {
  std::ostringstream out;
  bool first = true;
  for (const auto& [var, coeff] : terms_) {
    std::string name = name_of ? name_of(var) : ("v" + std::to_string(var));
    if (first) {
      if (coeff == 1) {
        out << name;
      } else if (coeff == -1) {
        out << "-" << name;
      } else {
        out << coeff << "*" << name;
      }
      first = false;
    } else {
      int64_t abs = coeff < 0 ? -coeff : coeff;
      out << (coeff < 0 ? " - " : " + ");
      if (abs == 1) {
        out << name;
      } else {
        out << abs << "*" << name;
      }
    }
  }
  if (first) {
    out << constant_;
  } else if (constant_ > 0) {
    out << " + " << constant_;
  } else if (constant_ < 0) {
    out << " - " << -constant_;
  }
  return out.str();
}

size_t LinearExpr::HashValue() const {
  size_t h = std::hash<int64_t>{}(constant_);
  for (const auto& [var, coeff] : terms_) {
    h = h * 1000003u + std::hash<uint64_t>{}((static_cast<uint64_t>(var) << 32) ^
                                             static_cast<uint64_t>(coeff));
  }
  return h;
}

void LinearExpr::Canonicalize() {
  std::sort(terms_.begin(), terms_.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<std::pair<VarId, int64_t>> merged;
  merged.reserve(terms_.size());
  for (const auto& [var, coeff] : terms_) {
    if (!merged.empty() && merged.back().first == var) {
      merged.back().second += coeff;
    } else {
      merged.emplace_back(var, coeff);
    }
  }
  merged.erase(std::remove_if(merged.begin(), merged.end(),
                              [](const auto& term) { return term.second == 0; }),
               merged.end());
  terms_ = std::move(merged);
}

VarId VarPool::Fresh(std::string name) {
  VarId id = static_cast<VarId>(names_.size());
  if (name.empty()) {
    name = "v" + std::to_string(id);
  }
  names_.push_back(std::move(name));
  return id;
}

const std::string& VarPool::NameOf(VarId var) const {
  GRAPPLE_CHECK_LT(var, names_.size());
  return names_[var];
}

}  // namespace grapple
