// Linear integer expressions: c0 + sum(ci * vi).
//
// This is the term language of Grapple's constraint solver. Branch
// conditions produced by symbolic execution, and the parameter-passing
// equations attached to ICFET call/return edges, are all comparisons between
// linear expressions over symbolic variables; anything non-linear is modeled
// by a fresh opaque variable (see SymStore in src/symexec).
#ifndef GRAPPLE_SRC_SMT_LINEAR_EXPR_H_
#define GRAPPLE_SRC_SMT_LINEAR_EXPR_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace grapple {

// Identifies a symbolic integer variable. IDs are minted by VarPool.
using VarId = uint32_t;

inline constexpr VarId kInvalidVar = 0xFFFFFFFFu;

// Immutable-ish linear expression. Terms are kept sorted by VarId with no
// zero coefficients, so equal expressions have equal representations (which
// makes hashing/memoization exact).
class LinearExpr {
 public:
  LinearExpr() = default;

  static LinearExpr Constant(int64_t value);
  static LinearExpr Var(VarId var);
  static LinearExpr Term(VarId var, int64_t coeff);

  int64_t constant() const { return constant_; }
  const std::vector<std::pair<VarId, int64_t>>& terms() const { return terms_; }

  bool IsConstant() const { return terms_.empty(); }
  // The coefficient of `var` (0 when absent).
  int64_t CoefficientOf(VarId var) const;

  LinearExpr Add(const LinearExpr& other) const;
  LinearExpr Sub(const LinearExpr& other) const;
  LinearExpr Scale(int64_t factor) const;
  LinearExpr Negate() const { return Scale(-1); }
  LinearExpr AddConstant(int64_t value) const;

  // Replaces `var` with `replacement` throughout.
  LinearExpr Substitute(VarId var, const LinearExpr& replacement) const;

  // Applies `f` to every variable ID (used to re-frame callee variables per
  // call occurrence during path decoding).
  LinearExpr RenameVars(const std::function<VarId(VarId)>& f) const;

  // Evaluates under a total assignment; nullopt if any variable is missing.
  std::optional<int64_t> Evaluate(const std::function<std::optional<int64_t>(VarId)>& value_of) const;

  bool operator==(const LinearExpr& other) const {
    return constant_ == other.constant_ && terms_ == other.terms_;
  }
  bool operator!=(const LinearExpr& other) const { return !(*this == other); }

  // GCD of all term coefficients (0 when there are no terms).
  int64_t TermGcd() const;

  std::string ToString(const std::function<std::string(VarId)>& name_of = nullptr) const;

  size_t HashValue() const;

 private:
  void Canonicalize();

  int64_t constant_ = 0;
  std::vector<std::pair<VarId, int64_t>> terms_;
};

// Mints fresh variable IDs, optionally with debug names. Thread-compatible
// (callers serialize; the decoder owns a private pool per decode).
class VarPool {
 public:
  VarId Fresh(std::string name = "");
  size_t size() const { return names_.size(); }
  const std::string& NameOf(VarId var) const;

 private:
  std::vector<std::string> names_;
};

}  // namespace grapple

#endif  // GRAPPLE_SRC_SMT_LINEAR_EXPR_H_
