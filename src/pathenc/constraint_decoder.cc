#include "src/pathenc/constraint_decoder.h"

#include <unordered_map>
#include <vector>

#include "src/support/logging.h"

namespace grapple {

namespace {

using FrameId = uint32_t;
inline constexpr FrameId kNoFrame = 0xFFFFFFFFu;

// One activation of a method: maps the method's template variables to
// decode-global fresh variables.
struct Frame {
  MethodId method = kNoMethod;
  std::unordered_map<VarId, VarId> rename;
};

class DecodeContext {
 public:
  explicit DecodeContext(const Icfet* icfet) : icfet_(icfet) {}

  Constraint Run(const PathEncoding& encoding, DecodeStats* stats) {
    for (const auto& item : encoding.items()) {
      switch (item.kind) {
        case PathItemKind::kInterval:
          DecodeInterval(item, stats);
          break;
        case PathItemKind::kCall:
          DecodeCall(item.site);
          break;
        case PathItemKind::kRet:
          DecodeRet(item.site);
          break;
        case PathItemKind::kOpaque:
          // Dropped fragments: no constraint contribution. The frame state
          // is also unknown past this point; reset the current frame so the
          // next fragment starts its own activation.
          current_ = kNoFrame;
          last_interval_valid_ = false;
          break;
      }
    }
    stats->atoms += constraint_.size();
    return std::move(constraint_);
  }

 private:
  FrameId NewFrame(MethodId method) {
    frames_.push_back(Frame{method, {}});
    return static_cast<FrameId>(frames_.size() - 1);
  }

  // The frame an item of `method` should evaluate in: the current frame if
  // it already belongs to that method, else the most recent frame for the
  // method, else a fresh activation.
  FrameId FrameFor(MethodId method) {
    if (current_ != kNoFrame && frames_[current_].method == method) {
      return current_;
    }
    auto it = latest_.find(method);
    if (it != latest_.end()) {
      return it->second;
    }
    FrameId frame = NewFrame(method);
    latest_[method] = frame;
    return frame;
  }

  VarId GlobalOf(FrameId frame, VarId template_var) {
    auto& rename = frames_[frame].rename;
    auto it = rename.find(template_var);
    if (it != rename.end()) {
      return it->second;
    }
    VarId fresh = pool_.Fresh();
    rename.emplace(template_var, fresh);
    return fresh;
  }

  LinearExpr Reframe(FrameId frame, const LinearExpr& expr) {
    return expr.RenameVars([&](VarId v) { return GlobalOf(frame, v); });
  }

  Atom Reframe(FrameId frame, const Atom& atom) {
    Atom result = atom;
    if (!atom.opaque) {
      result.expr = Reframe(frame, atom.expr);
    }
    return result;
  }

  void DecodeInterval(const PathItem& item, DecodeStats* stats) {
    if (item.method >= icfet_->NumMethods()) {
      ++stats->invalid_intervals;
      constraint_.And(Atom::Opaque());
      return;
    }
    const MethodCfet& cfet = icfet_->OfMethod(item.method);
    FrameId frame = FrameFor(item.method);
    current_ = frame;
    latest_[item.method] = frame;
    // Backward walk (Algorithm 1): from `end` to `start`, conjoining each
    // parent's branch condition with the polarity of the child taken.
    CfetNodeId cur = item.end;
    bool valid = true;
    while (cur != item.start) {
      if (cur == kCfetRoot) {
        valid = false;
        break;
      }
      CfetNodeId parent = MethodCfet::ParentOf(cur);
      const CfetNode* parent_node = cfet.FindNode(parent);
      if (parent_node == nullptr || !parent_node->has_children) {
        valid = false;
        break;
      }
      Atom atom = MethodCfet::IsTrueChild(cur) ? parent_node->cond : parent_node->cond.Negated();
      constraint_.And(Reframe(frame, atom));
      cur = parent;
    }
    if (!valid) {
      // Inconsistent interval (should not happen for encodings produced by
      // this system); weaken to `true` rather than mis-prune.
      ++stats->invalid_intervals;
      constraint_.And(Atom::Opaque());
    }
    last_interval_valid_ = true;
    last_interval_method_ = item.method;
    last_interval_end_ = item.end;
  }

  void DecodeCall(CallSiteId site_id) {
    if (site_id >= icfet_->NumCallSites()) {
      current_ = kNoFrame;
      return;
    }
    const CallSite& site = icfet_->CallSiteAt(site_id);
    FrameId caller = FrameFor(site.caller);
    FrameId callee = NewFrame(site.callee);
    latest_[site.callee] = callee;
    // Parameter passing: callee param (fresh activation) == caller expr.
    for (const auto& [param_var, caller_expr] : site.param_eqs) {
      LinearExpr lhs = LinearExpr::Var(GlobalOf(callee, param_var));
      constraint_.And(Atom::Compare(lhs, Cmp::kEq, Reframe(caller, caller_expr)));
    }
    call_stack_.push_back(caller);
    current_ = callee;
    last_interval_valid_ = false;
  }

  void DecodeRet(CallSiteId site_id) {
    if (site_id >= icfet_->NumCallSites()) {
      current_ = kNoFrame;
      return;
    }
    const CallSite& site = icfet_->CallSiteAt(site_id);
    FrameId callee = FrameFor(site.callee);
    FrameId caller;
    if (!call_stack_.empty() && frames_[call_stack_.back()].method == site.caller) {
      caller = call_stack_.back();
      call_stack_.pop_back();
    } else {
      // Return without a matching call in this encoding (the flow started
      // inside the callee): open a fresh caller activation.
      caller = NewFrame(site.caller);
    }
    latest_[site.caller] = caller;
    // Bind the caller's call-result variable to the callee's symbolic return
    // value at the leaf the preceding interval ended at.
    if (site.result_var != kInvalidVar && last_interval_valid_ &&
        last_interval_method_ == site.callee) {
      const CfetNode* leaf = icfet_->OfMethod(site.callee).FindNode(last_interval_end_);
      if (leaf != nullptr && leaf->return_int.has_value()) {
        LinearExpr lhs = LinearExpr::Var(GlobalOf(caller, site.result_var));
        constraint_.And(Atom::Compare(lhs, Cmp::kEq, Reframe(callee, *leaf->return_int)));
      }
    }
    current_ = caller;
    last_interval_valid_ = false;
  }

  const Icfet* icfet_;
  Constraint constraint_;
  VarPool pool_;
  std::vector<Frame> frames_;
  std::unordered_map<MethodId, FrameId> latest_;
  std::vector<FrameId> call_stack_;
  FrameId current_ = kNoFrame;
  bool last_interval_valid_ = false;
  MethodId last_interval_method_ = kNoMethod;
  CfetNodeId last_interval_end_ = kCfetRoot;
};

}  // namespace

Constraint PathDecoder::Decode(const PathEncoding& encoding) {
  ++stats_.decodes;
  DecodeContext context(icfet_);
  return context.Run(encoding, &stats_);
}

}  // namespace grapple
