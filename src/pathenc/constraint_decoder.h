// Path decoding: interval encoding -> path constraint (§3.1 Algorithm 1,
// extended interprocedurally per §3.2).
//
// Decoding an interval [start, end] walks parent links from `end` back to
// `start`; each step contributes the parent's branch condition, with
// polarity recovered from the child's parity (true child IDs are even).
// Crossing a call edge opens a *fresh variable frame* for the callee so two
// sequential calls to the same method do not alias symbolic variables, and
// conjoins the call site's parameter-passing equations; crossing a return
// edge restores the caller frame and binds the call-result variable to the
// callee's symbolic return value.
#ifndef GRAPPLE_SRC_PATHENC_CONSTRAINT_DECODER_H_
#define GRAPPLE_SRC_PATHENC_CONSTRAINT_DECODER_H_

#include <cstdint>

#include "src/pathenc/path_encoding.h"
#include "src/smt/constraint.h"
#include "src/symexec/cfet.h"

namespace grapple {

struct DecodeStats {
  uint64_t decodes = 0;
  uint64_t atoms = 0;
  uint64_t invalid_intervals = 0;

  void Merge(const DecodeStats& other) {
    decodes += other.decodes;
    atoms += other.atoms;
    invalid_intervals += other.invalid_intervals;
  }
};

// Thread-compatible: create one decoder per worker thread. The Icfet must
// outlive the decoder.
class PathDecoder {
 public:
  explicit PathDecoder(const Icfet* icfet) : icfet_(icfet) {}

  // Decodes the encoding into its path constraint. Fresh (frame-scoped)
  // variables are minted per call; variable IDs are only meaningful within
  // the returned constraint.
  Constraint Decode(const PathEncoding& encoding);

  const DecodeStats& stats() const { return stats_; }
  void ResetStats() { stats_ = DecodeStats(); }

 private:
  const Icfet* icfet_;
  DecodeStats stats_;
};

}  // namespace grapple

#endif  // GRAPPLE_SRC_PATHENC_CONSTRAINT_DECODER_H_
