// Interval-based path-constraint encoding (§3, §4.2).
//
// Instead of attaching a boolean formula to every program-graph edge,
// Grapple attaches a compact *encoding* of the control-flow path the edge
// summarizes: a sequence of CFET intervals connected by ICFET call/return
// edge IDs. The encoding is lossless — the decoder (constraint_decoder.h)
// walks the in-memory ICFET to recover the path's constraint on demand.
//
// Merging two encodings when a transitive edge is induced follows the
// paper's four cases:
//   1. {[a,b]} + {[b,c]}                 -> {[a,c]}             (fusion)
//   2. {[a,b]} + {c_i}                   -> {[a,b], c_i, [0,0]}
//   3. {[a,b], c_i, [0,0]} + {[0,d], r_i, [b,c]} -> {[a,c]}    (cancellation)
//   4. unmatched calls simply extend the sequence.
// Non-contiguous juxtapositions (e.g. the two flows joined by an `alias`
// edge) stay as separate fragments whose constraints are conjoined at
// decode time.
#ifndef GRAPPLE_SRC_PATHENC_PATH_ENCODING_H_
#define GRAPPLE_SRC_PATHENC_PATH_ENCODING_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/support/byte_io.h"
#include "src/symexec/cfet.h"

namespace grapple {

enum class PathItemKind : uint8_t {
  kInterval = 0,  // [start, end] within one method's CFET
  kCall = 1,      // ICFET call edge (call-site ID)
  kRet = 2,       // ICFET return edge (call-site ID)
  kOpaque = 3,    // dropped fragments (encoding-length cap); decodes to true
};

struct PathItem {
  PathItemKind kind = PathItemKind::kOpaque;
  MethodId method = kNoMethod;  // kInterval
  CfetNodeId start = 0;         // kInterval
  CfetNodeId end = 0;           // kInterval
  CallSiteId site = kNoCallSite;  // kCall / kRet

  bool operator==(const PathItem& other) const {
    return kind == other.kind && method == other.method && start == other.start &&
           end == other.end && site == other.site;
  }
};

class PathEncoding {
 public:
  PathEncoding() = default;

  // The trivially-true encoding (used for e.g. context-insensitive SCC
  // parameter edges).
  static PathEncoding Empty() { return PathEncoding(); }
  static PathEncoding Interval(MethodId method, CfetNodeId start, CfetNodeId end);
  static PathEncoding CallEdge(CallSiteId site);
  static PathEncoding RetEdge(CallSiteId site);
  static PathEncoding Opaque();

  const std::vector<PathItem>& items() const { return items_; }
  bool empty() const { return items_.empty(); }
  size_t size() const { return items_.size(); }

  // Concatenates a then b, fusing contiguous intervals — the *full* path,
  // whose decoded constraint is what feasibility is checked against (the
  // paper's "compute combined constraints", §4.2). `max_items` caps the
  // result length: overlong encodings drop middle fragments behind a
  // kOpaque marker (constraints weaken toward `true`, which
  // over-approximates feasibility).
  static PathEncoding Append(const PathEncoding& a, const PathEncoding& b,
                             size_t max_items = 64);

  // The paper's "compute a new encoding" step: cancels matched
  // (call_i, [root-anchored interval], ret_i) groups — completed callees —
  // and re-fuses. This is what gets *stored* on the induced edge; the
  // cancelled callee constraints were already checked when this edge was
  // induced, and dropping them bounds encoding growth by call depth.
  PathEncoding Compact() const;

  // Append followed by Compact (the end-to-end merge of §4.2's four cases).
  static PathEncoding Merge(const PathEncoding& a, const PathEncoding& b,
                            size_t max_items = 64);

  // Wire format: varint item count, then per-item tag + varint payload.
  void Serialize(std::vector<uint8_t>* out) const;
  static PathEncoding Deserialize(ByteReader* reader);

  bool operator==(const PathEncoding& other) const { return items_ == other.items_; }
  size_t HashValue() const;

  std::string ToString() const;

 private:
  std::vector<PathItem> items_;
};

struct PathEncodingHash {
  size_t operator()(const PathEncoding& enc) const { return enc.HashValue(); }
};

}  // namespace grapple

#endif  // GRAPPLE_SRC_PATHENC_PATH_ENCODING_H_
