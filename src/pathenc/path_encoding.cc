#include "src/pathenc/path_encoding.h"

#include <sstream>

#include "src/support/logging.h"

namespace grapple {

namespace {

// One fusion pass: merges adjacent contiguous intervals of the same method.
// Returns true when anything changed.
bool FusePass(std::vector<PathItem>* items) {
  bool changed = false;
  std::vector<PathItem> out;
  out.reserve(items->size());
  for (const auto& item : *items) {
    if (!out.empty() && item.kind == PathItemKind::kInterval &&
        out.back().kind == PathItemKind::kInterval && out.back().method == item.method &&
        out.back().end == item.start) {
      out.back().end = item.end;
      changed = true;
      continue;
    }
    // Collapse runs of opaque markers.
    if (!out.empty() && item.kind == PathItemKind::kOpaque &&
        out.back().kind == PathItemKind::kOpaque) {
      changed = true;
      continue;
    }
    out.push_back(item);
  }
  *items = std::move(out);
  return changed;
}

// One cancellation pass: removes matched (call_i, [callee-root interval],
// ret_i) groups — the callee part is "completed" (§4.2 case 3).
bool CancelPass(std::vector<PathItem>* items) {
  for (size_t i = 0; i + 1 < items->size(); ++i) {
    const PathItem& call = (*items)[i];
    if (call.kind != PathItemKind::kCall) {
      continue;
    }
    // call immediately followed by matching ret
    if ((*items)[i + 1].kind == PathItemKind::kRet && (*items)[i + 1].site == call.site) {
      items->erase(items->begin() + static_cast<ptrdiff_t>(i),
                   items->begin() + static_cast<ptrdiff_t>(i) + 2);
      return true;
    }
    // call, root-anchored interval, matching ret
    if (i + 2 < items->size() && (*items)[i + 1].kind == PathItemKind::kInterval &&
        (*items)[i + 1].start == kCfetRoot && (*items)[i + 2].kind == PathItemKind::kRet &&
        (*items)[i + 2].site == call.site) {
      items->erase(items->begin() + static_cast<ptrdiff_t>(i),
                   items->begin() + static_cast<ptrdiff_t>(i) + 3);
      return true;
    }
  }
  return false;
}

}  // namespace

PathEncoding PathEncoding::Interval(MethodId method, CfetNodeId start, CfetNodeId end) {
  PathEncoding enc;
  PathItem item;
  item.kind = PathItemKind::kInterval;
  item.method = method;
  item.start = start;
  item.end = end;
  enc.items_.push_back(item);
  return enc;
}

PathEncoding PathEncoding::CallEdge(CallSiteId site) {
  PathEncoding enc;
  PathItem item;
  item.kind = PathItemKind::kCall;
  item.site = site;
  enc.items_.push_back(item);
  return enc;
}

PathEncoding PathEncoding::RetEdge(CallSiteId site) {
  PathEncoding enc;
  PathItem item;
  item.kind = PathItemKind::kRet;
  item.site = site;
  enc.items_.push_back(item);
  return enc;
}

PathEncoding PathEncoding::Opaque() {
  PathEncoding enc;
  PathItem item;
  item.kind = PathItemKind::kOpaque;
  enc.items_.push_back(item);
  return enc;
}

PathEncoding PathEncoding::Append(const PathEncoding& a, const PathEncoding& b,
                                  size_t max_items) {
  PathEncoding result;
  result.items_.reserve(a.items_.size() + b.items_.size());
  result.items_.insert(result.items_.end(), a.items_.begin(), a.items_.end());
  result.items_.insert(result.items_.end(), b.items_.begin(), b.items_.end());
  FusePass(&result.items_);
  if (result.items_.size() > max_items) {
    // Keep a prefix and suffix; stand in for the dropped middle with an
    // opaque marker.
    size_t keep = max_items / 2;
    std::vector<PathItem> capped(result.items_.begin(),
                                 result.items_.begin() + static_cast<ptrdiff_t>(keep));
    PathItem opaque;
    opaque.kind = PathItemKind::kOpaque;
    capped.push_back(opaque);
    capped.insert(capped.end(), result.items_.end() - static_cast<ptrdiff_t>(keep),
                  result.items_.end());
    result.items_ = std::move(capped);
  }
  return result;
}

PathEncoding PathEncoding::Compact() const {
  PathEncoding result = *this;
  // Fixed point of fuse + cancel. Each pass strictly shrinks or stops, so
  // this terminates in O(n) passes.
  for (;;) {
    bool fused = FusePass(&result.items_);
    bool cancelled = CancelPass(&result.items_);
    if (!fused && !cancelled) {
      break;
    }
  }
  return result;
}

PathEncoding PathEncoding::Merge(const PathEncoding& a, const PathEncoding& b,
                                 size_t max_items) {
  return Append(a, b, max_items).Compact();
}

void PathEncoding::Serialize(std::vector<uint8_t>* out) const {
  PutVarint64(out, items_.size());
  for (const auto& item : items_) {
    out->push_back(static_cast<uint8_t>(item.kind));
    switch (item.kind) {
      case PathItemKind::kInterval:
        PutVarint64(out, item.method);
        PutVarint64(out, item.start);
        PutVarint64(out, item.end);
        break;
      case PathItemKind::kCall:
      case PathItemKind::kRet:
        PutVarint64(out, item.site);
        break;
      case PathItemKind::kOpaque:
        break;
    }
  }
}

PathEncoding PathEncoding::Deserialize(ByteReader* reader) {
  PathEncoding enc;
  uint64_t count = reader->GetVarint64();
  for (uint64_t i = 0; i < count && reader->ok(); ++i) {
    PathItem item;
    uint8_t tag = 0;
    if (!reader->GetRaw(&tag, 1)) {
      break;
    }
    item.kind = static_cast<PathItemKind>(tag);
    switch (item.kind) {
      case PathItemKind::kInterval:
        item.method = static_cast<MethodId>(reader->GetVarint64());
        item.start = reader->GetVarint64();
        item.end = reader->GetVarint64();
        break;
      case PathItemKind::kCall:
      case PathItemKind::kRet:
        item.site = static_cast<CallSiteId>(reader->GetVarint64());
        break;
      case PathItemKind::kOpaque:
        break;
    }
    enc.items_.push_back(item);
  }
  return enc;
}

size_t PathEncoding::HashValue() const {
  size_t h = 0xcbf29ce484222325ULL;
  for (const auto& item : items_) {
    h = (h ^ static_cast<size_t>(item.kind)) * 0x100000001b3ULL;
    h = (h ^ item.method) * 0x100000001b3ULL;
    h = (h ^ item.start) * 0x100000001b3ULL;
    h = (h ^ item.end) * 0x100000001b3ULL;
    h = (h ^ item.site) * 0x100000001b3ULL;
  }
  return h;
}

std::string PathEncoding::ToString() const {
  std::ostringstream out;
  out << "{";
  for (size_t i = 0; i < items_.size(); ++i) {
    if (i > 0) {
      out << ", ";
    }
    const auto& item = items_[i];
    switch (item.kind) {
      case PathItemKind::kInterval:
        out << "m" << item.method << "[" << item.start << "," << item.end << "]";
        break;
      case PathItemKind::kCall:
        out << "(c" << item.site;
        break;
      case PathItemKind::kRet:
        out << ")c" << item.site;
        break;
      case PathItemKind::kOpaque:
        out << "...";
        break;
    }
  }
  out << "}";
  return out.str();
}

}  // namespace grapple
