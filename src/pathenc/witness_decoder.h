// Derivation-chain decoding: provenance DAG -> ordered witness steps.
//
// The engine's provenance log (src/obs/provenance.h) records, per unique
// edge, the two parents its join consumed. In Grapple's regular typestate
// grammar every state edge is induced left-recursively — the *left* parent
// is the previous state edge, the *right* parent the event/flow edge the
// step consumed — so walking left parents from a violating edge back to its
// base record linearizes the derivation into the execution order a human
// reads: allocation first, violation last.
//
// This layer is deliberately FSM-agnostic (it lives below the checker): it
// yields raw derivation steps with the per-step interval path encoding
// decoded to a Constraint (reusing PathDecoder) plus an SMT feasibility
// replay of the final path. The checker interprets the steps against the
// property FSM and the typestate vertex map to build the semantic Witness.
#ifndef GRAPPLE_SRC_PATHENC_WITNESS_DECODER_H_
#define GRAPPLE_SRC_PATHENC_WITNESS_DECODER_H_

#include <cstdint>
#include <vector>

#include "src/obs/provenance.h"
#include "src/pathenc/constraint_decoder.h"
#include "src/pathenc/path_encoding.h"
#include "src/smt/constraint.h"
#include "src/smt/solver.h"
#include "src/symexec/cfet.h"

namespace grapple {

// One derivation step, leaf-first program order.
struct DerivationStep {
  obs::ProvKind kind = obs::ProvKind::kBase;
  // The derived edge this step materialized.
  obs::ProvEdge edge;
  // The right parent the join consumed (event/flow edge); for kBase and
  // kRewrite steps it equals `edge`.
  obs::ProvEdge consumed;
  bool widened = false;
  // This step's derived-edge path encoding and its decoded constraint.
  PathEncoding encoding;
  Constraint constraint;
  // Per-step feasibility replay (Options.replay_steps, GRAPPLE_WITNESS=full
  // territory); `replayed` distinguishes "not run" from a kUnknown verdict.
  bool replayed = false;
  SolveResult replay = SolveResult::kUnknown;
};

struct DerivationChain {
  // The walk reached a base record (a complete derivation).
  bool complete = false;
  // The walk stopped early: missing parent record or max_steps exceeded.
  bool truncated = false;
  std::vector<DerivationStep> steps;  // leaf (base edge) first
  // Constraint of the violating edge itself and the replayed SMT verdict
  // that established the path's feasibility.
  Constraint final_constraint;
  SolveResult final_replay = SolveResult::kUnknown;
  uint64_t decode_nanos = 0;

  bool empty() const { return steps.empty(); }
};

class WitnessDecoder {
 public:
  struct Options {
    // Backstop against a (content-hash-collision-induced) cycle or an
    // absurdly long chain; DAG construction order makes real chains finite.
    size_t max_steps = 1 << 16;
    // Re-solve every step's constraint, not just the final one.
    bool replay_steps = false;
    SolverLimits solver_limits;
  };

  // `icfet` and `reader` must outlive the decoder.
  WitnessDecoder(const Icfet* icfet, const obs::ProvenanceReader* reader);
  WitnessDecoder(const Icfet* icfet, const obs::ProvenanceReader* reader, Options options);

  // Decodes the derivation chain of the edge whose content hash is `hash`.
  // Returns an empty chain when the hash has no provenance record.
  DerivationChain Decode(uint64_t hash);

 private:
  const obs::ProvenanceReader* reader_;
  PathDecoder decoder_;
  Solver solver_;
  Options options_;
};

}  // namespace grapple

#endif  // GRAPPLE_SRC_PATHENC_WITNESS_DECODER_H_
