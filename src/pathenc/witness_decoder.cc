#include "src/pathenc/witness_decoder.h"

#include <algorithm>

#include "src/support/timer.h"

namespace grapple {

namespace {

PathEncoding DecodePayload(const std::vector<uint8_t>& payload) {
  ByteReader reader(payload);
  return PathEncoding::Deserialize(&reader);
}

}  // namespace

WitnessDecoder::WitnessDecoder(const Icfet* icfet, const obs::ProvenanceReader* reader)
    : WitnessDecoder(icfet, reader, Options()) {}

WitnessDecoder::WitnessDecoder(const Icfet* icfet, const obs::ProvenanceReader* reader,
                               Options options)
    : reader_(reader), decoder_(icfet), solver_(options.solver_limits), options_(options) {}

DerivationChain WitnessDecoder::Decode(uint64_t hash) {
  DerivationChain chain;
  WallTimer timer;

  // Walk left parents back to the base record. Parents are recorded before
  // children, so the chain is acyclic by construction; max_steps guards the
  // pathological hash-collision case.
  std::vector<const obs::ProvRecord*> spine;
  const obs::ProvRecord* cur = reader_->Lookup(hash);
  while (cur != nullptr) {
    spine.push_back(cur);
    if (cur->kind == obs::ProvKind::kBase) {
      chain.complete = true;
      break;
    }
    if (spine.size() >= options_.max_steps) {
      chain.truncated = true;
      break;
    }
    const obs::ProvRecord* parent = reader_->Lookup(cur->parent_a);
    if (parent == nullptr) {
      // The left parent was never recorded (e.g. it predates enabling
      // recording, or a widened sibling's pre-widening payload): keep the
      // partial chain rather than dropping the witness entirely.
      chain.truncated = true;
    }
    cur = parent;
  }
  std::reverse(spine.begin(), spine.end());

  for (const obs::ProvRecord* record : spine) {
    DerivationStep step;
    step.kind = record->kind;
    step.edge = record->edge;
    step.consumed = record->kind == obs::ProvKind::kJoin ? record->b_edge : record->edge;
    step.widened = record->widened;
    step.encoding = DecodePayload(record->payload);
    step.constraint = decoder_.Decode(step.encoding);
    if (options_.replay_steps) {
      step.replayed = true;
      step.replay = solver_.Solve(step.constraint);
    }
    chain.steps.push_back(std::move(step));
  }

  if (!chain.steps.empty()) {
    // Replay the feasibility query of the violating edge itself — the SMT
    // call whose kSat/kUnknown admitted the final join.
    chain.final_constraint = chain.steps.back().constraint;
    chain.final_replay = solver_.Solve(chain.final_constraint);
  }
  chain.decode_nanos = timer.ElapsedNanos();
  return chain;
}

}  // namespace grapple
