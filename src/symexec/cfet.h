// The (interprocedural) control-flow execution tree — ICFET (§3).
//
// One CFET per method: a binary tree of "extended basic blocks" produced by
// symbolic execution. Each non-leaf node ends at a branch conditional whose
// symbolic condition (in terms of the method's template variables) is stored
// at the node; its two children are the false/true continuations. Node IDs
// follow Eytzinger numbering — root 0, false child 2n+1, true child 2n+2 —
// so the parent is (id-1)>>1 and the branch polarity is recoverable from the
// child's parity. An intraprocedural path is then the interval
// [id_start, id_end]; interprocedural paths add call/return edge IDs.
//
// The ICFET is *not* cloned for context sensitivity (unlike the program
// graph): it is an in-memory index, kept small, and calls/returns are
// matched during path decoding instead (§3.3).
//
// Lifetime: CFET nodes hold `const Stmt*` pointers into the Program, so the
// Program must outlive the Icfet and must not be mutated after construction
// (run loop unrolling first).
#ifndef GRAPPLE_SRC_SYMEXEC_CFET_H_
#define GRAPPLE_SRC_SYMEXEC_CFET_H_

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/ir/ir.h"
#include "src/smt/constraint.h"
#include "src/smt/linear_expr.h"

namespace grapple {

using CfetNodeId = uint64_t;
using CallSiteId = uint32_t;

inline constexpr CfetNodeId kCfetRoot = 0;
inline constexpr CallSiteId kNoCallSite = 0xFFFFFFFFu;

// A graph-relevant statement placed in a CFET node, in execution order.
// For kCall statements, `call_site` identifies the CallSite record.
struct CfetStmtRef {
  const Stmt* stmt = nullptr;
  CallSiteId call_site = kNoCallSite;
};

struct CfetNode {
  CfetNodeId id = kCfetRoot;
  // Statements executed in this extended basic block.
  std::vector<CfetStmtRef> stmts;
  // Non-leaf: the branch conditional terminating the block, expressed over
  // the method's template variables (Atom::opaque for unmodelable
  // conditions). The false child is 2*id+1, the true child 2*id+2.
  bool has_children = false;
  Atom cond;
  // Leaf: execution reaches the procedure exit here.
  bool is_exit = false;
  // Symbolic integer return value at this exit (nullopt for void/object).
  std::optional<LinearExpr> return_int;
  // Returned object local (kNoLocal when none).
  LocalId return_obj = kNoLocal;
};

// One call site: the ICFET's call edge (caller node -> callee root) and the
// matching return edges (callee leaves -> caller node) share this record.
struct CallSite {
  CallSiteId id = kNoCallSite;
  MethodId caller = kNoMethod;
  MethodId callee = kNoMethod;
  CfetNodeId caller_node = kCfetRoot;
  const Stmt* stmt = nullptr;
  // Parameter passing: callee template variable == caller-side expression
  // (over the caller's template variables).
  std::vector<std::pair<VarId, LinearExpr>> param_eqs;
  // Caller template variable bound to the callee's integer return value
  // (kInvalidVar when the result is unused or not an integer).
  VarId result_var = kInvalidVar;
  // True when the call is part of a call-graph SCC and is treated context
  // insensitively (no cloning in the program graph).
  bool context_insensitive = false;
};

class MethodCfet {
 public:
  static CfetNodeId FalseChild(CfetNodeId id) { return 2 * id + 1; }
  static CfetNodeId TrueChild(CfetNodeId id) { return 2 * id + 2; }
  static CfetNodeId ParentOf(CfetNodeId id) { return (id - 1) >> 1; }
  // True children have even IDs (2n+2).
  static bool IsTrueChild(CfetNodeId id) { return id != kCfetRoot && (id & 1) == 0; }
  static uint32_t DepthOf(CfetNodeId id);

  MethodId method_id() const { return method_id_; }
  const CfetNode* FindNode(CfetNodeId id) const;
  const CfetNode& NodeAt(CfetNodeId id) const;
  size_t NumNodes() const { return nodes_.size(); }
  const std::vector<CfetNodeId>& leaves() const { return leaves_; }
  const std::unordered_map<CfetNodeId, CfetNode>& nodes() const { return nodes_; }

  // Template variables of this method (params, havocs, call results, ...).
  const VarPool& vars() const { return vars_; }
  // Template variable of integer parameter `index` (kInvalidVar for object
  // parameters).
  VarId ParamVar(size_t index) const { return param_vars_[index]; }

  // True when `ancestor` lies on the root path of `node`.
  bool IsAncestorOrSelf(CfetNodeId ancestor, CfetNodeId node) const;

 private:
  friend class IcfetBuilder;

  MethodId method_id_ = kNoMethod;
  std::unordered_map<CfetNodeId, CfetNode> nodes_;
  std::vector<CfetNodeId> leaves_;
  VarPool vars_;
  std::vector<VarId> param_vars_;
};

class Icfet {
 public:
  const MethodCfet& OfMethod(MethodId method) const { return per_method_[method]; }
  size_t NumMethods() const { return per_method_.size(); }
  const CallSite& CallSiteAt(CallSiteId id) const { return call_sites_[id]; }
  size_t NumCallSites() const { return call_sites_.size(); }

  // Total node count across methods (the in-memory index size driver).
  size_t TotalNodes() const;

  std::string DebugString(const Program& program) const;

 private:
  friend class IcfetBuilder;

  std::vector<MethodCfet> per_method_;
  std::vector<CallSite> call_sites_;
};

}  // namespace grapple

#endif  // GRAPPLE_SRC_SYMEXEC_CFET_H_
