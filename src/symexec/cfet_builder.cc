#include "src/symexec/cfet_builder.h"

#include <optional>
#include <utility>
#include <vector>

#include "src/cfg/loop_unroll.h"
#include "src/support/logging.h"

namespace grapple {

namespace {

Cmp MapCmp(IrCmpOp op) {
  switch (op) {
    case IrCmpOp::kEq:
      return Cmp::kEq;
    case IrCmpOp::kNe:
      return Cmp::kNe;
    case IrCmpOp::kLt:
      return Cmp::kLt;
    case IrCmpOp::kLe:
      return Cmp::kLe;
    case IrCmpOp::kGt:
      return Cmp::kGt;
    case IrCmpOp::kGe:
      return Cmp::kGe;
  }
  return Cmp::kEq;
}

// Symbolic integer store for one method execution path.
class SymStore {
 public:
  explicit SymStore(size_t num_locals) : values_(num_locals) {}

  // Reads a local; uninitialized reads mint a fresh "unknown" variable so
  // that later reads of the same local agree.
  const LinearExpr& Read(LocalId local, const Method& method, VarPool* vars) {
    auto& slot = values_[local];
    if (!slot.has_value()) {
      VarId fresh = vars->Fresh(method.name + "::" + method.locals[local].name + "#u");
      slot = LinearExpr::Var(fresh);
    }
    return *slot;
  }

  void Write(LocalId local, LinearExpr value) { values_[local] = std::move(value); }

 private:
  std::vector<std::optional<LinearExpr>> values_;
};

// A continuation: the statement streams still to execute, innermost last.
struct ContFrame {
  const std::vector<Stmt>* block;
  size_t index;
};
using Continuation = std::vector<ContFrame>;

}  // namespace

class IcfetBuilder {
 public:
  IcfetBuilder(const Program& program, const CallGraph& call_graph, const IcfetOptions& options)
      : program_(program), call_graph_(call_graph), options_(options) {}

  Icfet Build() {
    icfet_.per_method_.resize(program_.NumMethods());
    // Pre-pass: mint parameter template variables for every method so that
    // call sites in any method can reference callee parameter variables.
    for (MethodId m = 0; m < program_.NumMethods(); ++m) {
      const Method& method = program_.MethodAt(m);
      GRAPPLE_CHECK(!HasLoops(method)) << "unroll loops before BuildIcfet: " << method.name;
      MethodCfet& cfet = icfet_.per_method_[m];
      cfet.method_id_ = m;
      cfet.param_vars_.assign(method.locals.size(), kInvalidVar);
      for (size_t p = 0; p < method.num_params; ++p) {
        if (!method.locals[p].is_object) {
          cfet.param_vars_[p] = cfet.vars_.Fresh(method.name + "::" + method.locals[p].name);
        }
      }
    }
    for (MethodId m = 0; m < program_.NumMethods(); ++m) {
      BuildMethod(m);
    }
    return std::move(icfet_);
  }

 private:
  void BuildMethod(MethodId m) {
    const Method& method = program_.MethodAt(m);
    cur_method_ = m;
    cur_cfet_ = &icfet_.per_method_[m];
    capped_warned_ = false;
    SymStore store(method.locals.size());
    for (size_t p = 0; p < method.num_params; ++p) {
      if (cur_cfet_->param_vars_[p] != kInvalidVar) {
        store.Write(static_cast<LocalId>(p), LinearExpr::Var(cur_cfet_->param_vars_[p]));
      }
    }
    Continuation cont;
    cont.push_back(ContFrame{&method.body, 0});
    Exec(kCfetRoot, std::move(store), std::move(cont));
  }

  CfetNode& GetOrCreateNode(CfetNodeId id) {
    auto [it, inserted] = cur_cfet_->nodes_.try_emplace(id);
    if (inserted) {
      it->second.id = id;
    }
    return it->second;
  }

  LinearExpr EvalOperand(const Operand& op, SymStore* store) {
    if (op.is_const) {
      return LinearExpr::Constant(op.value);
    }
    return store->Read(op.local, program_.MethodAt(cur_method_), &cur_cfet_->vars_);
  }

  Atom EvalCond(const CondExpr& cond, SymStore* store) {
    if (cond.kind == CondExpr::Kind::kOpaque) {
      return Atom::Opaque();
    }
    return Atom::Compare(EvalOperand(cond.lhs, store), MapCmp(cond.op),
                         EvalOperand(cond.rhs, store));
  }

  // Pops the next statement off the continuation; nullptr when exhausted.
  static const Stmt* NextStmt(Continuation* cont) {
    while (!cont->empty()) {
      ContFrame& frame = cont->back();
      if (frame.index < frame.block->size()) {
        return &(*frame.block)[frame.index++];
      }
      cont->pop_back();
    }
    return nullptr;
  }

  void MarkExit(CfetNode* node, const Stmt* return_stmt, SymStore* store) {
    node->is_exit = true;
    const Method& method = program_.MethodAt(cur_method_);
    if (return_stmt != nullptr && return_stmt->src != kNoLocal) {
      if (method.locals[return_stmt->src].is_object) {
        node->return_obj = return_stmt->src;
      } else {
        node->return_int =
            store->Read(return_stmt->src, method, &cur_cfet_->vars_);
      }
    }
    cur_cfet_->leaves_.push_back(node->id);
  }

  void Exec(CfetNodeId node_id, SymStore store, Continuation cont) {
    CfetNode& node = GetOrCreateNode(node_id);
    const Method& method = program_.MethodAt(cur_method_);
    for (;;) {
      const Stmt* stmt = NextStmt(&cont);
      if (stmt == nullptr) {
        MarkExit(&node, nullptr, &store);
        return;
      }
      switch (stmt->kind) {
        case StmtKind::kWhile:
          GRAPPLE_LOG(FATAL) << "kWhile reached symbolic execution; run UnrollLoops first";
          return;
        case StmtKind::kIf: {
          bool can_split = MethodCfet::DepthOf(node_id) < options_.max_depth &&
                           cur_cfet_->nodes_.size() + 2 <= options_.max_nodes_per_method;
          if (!can_split) {
            if (!capped_warned_) {
              capped_warned_ = true;
              GRAPPLE_LOG(WARNING) << "CFET cap hit in method " << method.name
                                   << "; exploring true branches only";
            }
            // Saturate: follow the then-branch only, condition dropped.
            cont.push_back(ContFrame{&stmt->then_block, 0});
            continue;
          }
          node.has_children = true;
          node.cond = EvalCond(stmt->cond, &store);
          {
            Continuation true_cont = cont;
            true_cont.push_back(ContFrame{&stmt->then_block, 0});
            Exec(MethodCfet::TrueChild(node_id), store, std::move(true_cont));
          }
          {
            Continuation false_cont = std::move(cont);
            if (!stmt->else_block.empty()) {
              false_cont.push_back(ContFrame{&stmt->else_block, 0});
            }
            Exec(MethodCfet::FalseChild(node_id), std::move(store), std::move(false_cont));
          }
          return;
        }
        case StmtKind::kReturn: {
          // Re-fetch the node reference: the recursive Exec calls above may
          // have rehashed the node map, but control never reaches here after
          // a split, so `node` is still valid. Defensive refetch anyway.
          CfetNode& n = GetOrCreateNode(node_id);
          MarkExit(&n, stmt, &store);
          return;
        }
        case StmtKind::kConstInt:
          store.Write(stmt->dst, LinearExpr::Constant(stmt->const_value));
          break;
        case StmtKind::kHavoc: {
          VarId fresh =
              cur_cfet_->vars_.Fresh(method.name + "::" + method.locals[stmt->dst].name + "#h");
          store.Write(stmt->dst, LinearExpr::Var(fresh));
          break;
        }
        case StmtKind::kBinOp: {
          LinearExpr lhs = EvalOperand(stmt->lhs, &store);
          LinearExpr rhs = EvalOperand(stmt->rhs, &store);
          LinearExpr result;
          switch (stmt->bin_op) {
            case IrBinOp::kAdd:
              result = lhs.Add(rhs);
              break;
            case IrBinOp::kSub:
              result = lhs.Sub(rhs);
              break;
            case IrBinOp::kMul:
              if (lhs.IsConstant()) {
                result = rhs.Scale(lhs.constant());
              } else if (rhs.IsConstant()) {
                result = lhs.Scale(rhs.constant());
              } else {
                VarId fresh = cur_cfet_->vars_.Fresh(
                    method.name + "::" + method.locals[stmt->dst].name + "#m");
                result = LinearExpr::Var(fresh);
              }
              break;
          }
          store.Write(stmt->dst, std::move(result));
          break;
        }
        case StmtKind::kAssign:
          // Object copy (graph-relevant). Integer copies are kBinOp(+0) by
          // construction, but tolerate int kAssign from hand-built IR.
          if (!method.locals[stmt->dst].is_object) {
            LinearExpr value =
                store.Read(stmt->src, method, &cur_cfet_->vars_);
            store.Write(stmt->dst, std::move(value));
            break;
          }
          node.stmts.push_back(CfetStmtRef{stmt, kNoCallSite});
          break;
        case StmtKind::kAlloc:
        case StmtKind::kLoad:
        case StmtKind::kStore:
        case StmtKind::kEvent:
          node.stmts.push_back(CfetStmtRef{stmt, kNoCallSite});
          break;
        case StmtKind::kCall: {
          auto callee = program_.FindMethod(stmt->callee);
          if (!callee.has_value()) {
            // External API: havoc the integer result; object results keep
            // whatever the local previously referenced (conservative no-op).
            if (stmt->dst != kNoLocal && !method.locals[stmt->dst].is_object) {
              VarId fresh = cur_cfet_->vars_.Fresh(
                  method.name + "::" + method.locals[stmt->dst].name + "#x");
              store.Write(stmt->dst, LinearExpr::Var(fresh));
            }
            break;
          }
          CallSite site;
          site.id = static_cast<CallSiteId>(icfet_.call_sites_.size());
          site.caller = cur_method_;
          site.callee = *callee;
          site.caller_node = node_id;
          site.stmt = stmt;
          site.context_insensitive = call_graph_.IsRecursive(*callee);
          const Method& callee_method = program_.MethodAt(*callee);
          const MethodCfet& callee_cfet = icfet_.per_method_[*callee];
          for (size_t p = 0; p < callee_method.num_params && p < stmt->args.size(); ++p) {
            VarId param_var = callee_cfet.param_vars_[p];
            if (param_var == kInvalidVar) {
              continue;  // object parameter: handled by the program graph
            }
            LinearExpr arg =
                store.Read(stmt->args[p], method, &cur_cfet_->vars_);
            site.param_eqs.emplace_back(param_var, std::move(arg));
          }
          if (stmt->dst != kNoLocal && !method.locals[stmt->dst].is_object) {
            VarId result = cur_cfet_->vars_.Fresh(
                method.name + "::" + method.locals[stmt->dst].name + "#r" +
                std::to_string(site.id));
            site.result_var = result;
            store.Write(stmt->dst, LinearExpr::Var(result));
          }
          node.stmts.push_back(CfetStmtRef{stmt, site.id});
          icfet_.call_sites_.push_back(std::move(site));
          break;
        }
        case StmtKind::kNop:
          break;
      }
    }
  }

  const Program& program_;
  const CallGraph& call_graph_;
  IcfetOptions options_;
  Icfet icfet_;
  MethodId cur_method_ = kNoMethod;
  MethodCfet* cur_cfet_ = nullptr;
  bool capped_warned_ = false;
};

Icfet BuildIcfet(const Program& program, const CallGraph& call_graph,
                 const IcfetOptions& options) {
  IcfetBuilder builder(program, call_graph, options);
  return builder.Build();
}

}  // namespace grapple
