// ICFET construction via symbolic execution (§3.3).
//
// For each method we symbolically execute the (loop-unrolled, structured)
// body using the method's formal parameters as symbolic variables: straight
// line integer code updates a symbolic store, and every branch conditional
// splits the current extended basic block into false/true children carrying
// the symbolic condition. Call sites record the symbolic parameter-passing
// equations that ICFET call/return edges are annotated with.
#ifndef GRAPPLE_SRC_SYMEXEC_CFET_BUILDER_H_
#define GRAPPLE_SRC_SYMEXEC_CFET_BUILDER_H_

#include "src/cfg/call_graph.h"
#include "src/ir/ir.h"
#include "src/symexec/cfet.h"

namespace grapple {

struct IcfetOptions {
  // Hard cap on nodes per method CFET; beyond it branches stop splitting
  // (the true branch is followed, a warning is logged once per method).
  size_t max_nodes_per_method = size_t{1} << 16;
  // Hard cap on tree depth so Eytzinger IDs fit in 64 bits.
  uint32_t max_depth = 58;
};

// Requires: loops already unrolled (HasLoops(m) is false for every method).
// The returned Icfet holds pointers into `program`.
Icfet BuildIcfet(const Program& program, const CallGraph& call_graph,
                 const IcfetOptions& options = IcfetOptions());

}  // namespace grapple

#endif  // GRAPPLE_SRC_SYMEXEC_CFET_BUILDER_H_
