#include "src/symexec/cfet.h"

#include <algorithm>
#include <sstream>

#include "src/support/logging.h"

namespace grapple {

uint32_t MethodCfet::DepthOf(CfetNodeId id) {
  uint32_t depth = 0;
  while (id != kCfetRoot) {
    id = ParentOf(id);
    ++depth;
  }
  return depth;
}

const CfetNode* MethodCfet::FindNode(CfetNodeId id) const {
  auto it = nodes_.find(id);
  return it == nodes_.end() ? nullptr : &it->second;
}

const CfetNode& MethodCfet::NodeAt(CfetNodeId id) const {
  const CfetNode* node = FindNode(id);
  GRAPPLE_CHECK(node != nullptr) << "missing CFET node " << id << " in method " << method_id_;
  return *node;
}

bool MethodCfet::IsAncestorOrSelf(CfetNodeId ancestor, CfetNodeId node) const {
  CfetNodeId cur = node;
  for (;;) {
    if (cur == ancestor) {
      return true;
    }
    if (cur == kCfetRoot) {
      return false;
    }
    cur = ParentOf(cur);
  }
}

size_t Icfet::TotalNodes() const {
  size_t total = 0;
  for (const auto& cfet : per_method_) {
    total += cfet.NumNodes();
  }
  return total;
}

std::string Icfet::DebugString(const Program& program) const {
  std::ostringstream out;
  for (const auto& cfet : per_method_) {
    const Method& method = program.MethodAt(cfet.method_id());
    out << "cfet " << method.name << " (" << cfet.NumNodes() << " nodes)\n";
    // Stable order for debuggability.
    std::vector<CfetNodeId> ids;
    ids.reserve(cfet.nodes().size());
    for (const auto& [id, node] : cfet.nodes()) {
      ids.push_back(id);
    }
    std::sort(ids.begin(), ids.end());
    for (CfetNodeId id : ids) {
      const CfetNode& node = cfet.NodeAt(id);
      out << "  node " << id << ": " << node.stmts.size() << " stmts";
      if (node.has_children) {
        out << ", cond " << node.cond.ToString([&](VarId v) { return cfet.vars().NameOf(v); });
      }
      if (node.is_exit) {
        out << ", exit";
        if (node.return_int.has_value()) {
          out << " ret=" << node.return_int->ToString([&](VarId v) {
            return cfet.vars().NameOf(v);
          });
        }
      }
      out << "\n";
    }
  }
  out << call_sites_.size() << " call sites\n";
  return out.str();
}

}  // namespace grapple
