#include "src/service/service.h"

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <future>
#include <utility>

#include "src/checker/report_json.h"
#include "src/ir/parser.h"
#include "src/obs/json.h"
#include "src/support/byte_io.h"
#include "src/support/env.h"

namespace grapple {

namespace {

using SteadyClock = std::chrono::steady_clock;

double MsSince(SteadyClock::time_point begin) {
  return std::chrono::duration<double, std::milli>(SteadyClock::now() - begin).count();
}

// mkdir -p. Returns false (errno preserved) on failure other than EEXIST.
bool MakeDirs(const std::string& path) {
  std::string prefix;
  size_t pos = 0;
  while (pos <= path.size()) {
    size_t slash = path.find('/', pos);
    if (slash == std::string::npos) {
      slash = path.size();
    }
    prefix = path.substr(0, slash);
    pos = slash + 1;
    if (prefix.empty()) {
      continue;
    }
    if (::mkdir(prefix.c_str(), 0755) != 0 && errno != EEXIST) {
      return false;
    }
  }
  return true;
}

// rm -rf. Best effort; the work root lives under /tmp, so a leftover file
// is a leak the CI smoke checks for, not a correctness problem.
void RemoveTree(const std::string& path) {
  DIR* dir = ::opendir(path.c_str());
  if (dir != nullptr) {
    while (dirent* entry = ::readdir(dir)) {
      if (std::strcmp(entry->d_name, ".") == 0 || std::strcmp(entry->d_name, "..") == 0) {
        continue;
      }
      std::string child = path + "/" + entry->d_name;
      struct stat st {};
      if (::lstat(child.c_str(), &st) == 0 && S_ISDIR(st.st_mode)) {
        RemoveTree(child);
      } else {
        ::unlink(child.c_str());
      }
    }
    ::closedir(dir);
  }
  ::rmdir(path.c_str());
}

// Tenant ids become path components; anything outside [A-Za-z0-9_.-]
// flattens to '_' so a hostile tenant string cannot escape the work root.
std::string SanitizeTenant(const std::string& tenant) {
  std::string out = tenant.empty() ? "default" : tenant;
  for (char& c : out) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') ||
              c == '_' || c == '-';
    if (!ok) {
      c = '_';
    }
  }
  if (out == "." || out == "..") {
    out = "_";
  }
  return out;
}

std::string FingerprintHex(uint64_t fp) {
  char buffer[17];
  std::snprintf(buffer, sizeof(buffer), "%016llx", static_cast<unsigned long long>(fp));
  return buffer;
}

// Simple query-string parse: key=value pairs split on '&'. Values are used
// as opaque tokens (tenant ids, checker names); no percent-decoding.
std::map<std::string, std::string> ParseQuery(const std::string& query) {
  std::map<std::string, std::string> params;
  size_t pos = 0;
  while (pos < query.size()) {
    size_t amp = query.find('&', pos);
    std::string pair = query.substr(pos, amp == std::string::npos ? std::string::npos : amp - pos);
    pos = amp == std::string::npos ? query.size() : amp + 1;
    size_t eq = pair.find('=');
    if (eq == std::string::npos) {
      params[pair] = "";
    } else {
      params[pair.substr(0, eq)] = pair.substr(eq + 1);
    }
  }
  return params;
}

// Resolves `names` ("io,lock", empty = all builtins, matching the
// analyze_file default) against the builtin checker set.
bool ResolveCheckers(const std::string& names, std::vector<FsmSpec>* specs, std::string* why) {
  if (names.empty()) {
    *specs = AllBuiltinCheckers();
    return true;
  }
  size_t pos = 0;
  while (pos <= names.size()) {
    size_t comma = names.find(',', pos);
    std::string name =
        names.substr(pos, comma == std::string::npos ? std::string::npos : comma - pos);
    pos = comma == std::string::npos ? names.size() + 1 : comma + 1;
    if (name.empty()) {
      continue;
    }
    bool found = false;
    for (auto& spec : AllBuiltinCheckers()) {
      if (spec.fsm.name() == name) {
        specs->push_back(std::move(spec));
        found = true;
      }
    }
    if (!found) {
      *why = "no such checker '" + name + "'; choose from io lock except socket";
      return false;
    }
  }
  if (specs->empty()) {
    *why = "empty checker list";
    return false;
  }
  return true;
}

HttpResponse JsonError(int status, const std::string& message) {
  HttpResponse response;
  response.status = status;
  response.content_type = "application/json";
  obs::JsonWriter json;
  json.BeginObject().Key("error").String(message).EndObject();
  response.body = json.Take() + "\n";
  return response;
}

double ExactPercentile(std::vector<double> values, double percentile) {
  if (values.empty()) {
    return 0;
  }
  std::sort(values.begin(), values.end());
  size_t index = static_cast<size_t>(percentile / 100.0 * static_cast<double>(values.size()));
  index = std::min(index, values.size() - 1);
  return values[index];
}

// Recent-latency window. Large enough for a stable p99, small enough that
// /statusz reflects the current load, not the daemon's whole life.
constexpr size_t kLatencyWindow = 2048;

}  // namespace

uint64_t SubjectFingerprint(const std::string& tenant, const std::string& subject_text) {
  uint64_t hash = 1469598103934665603ULL;  // FNV-1a 64
  auto mix = [&hash](const std::string& text) {
    for (unsigned char c : text) {
      hash ^= c;
      hash *= 1099511628211ULL;
    }
  };
  mix(tenant);
  hash ^= 0;  // explicit separator byte
  hash *= 1099511628211ULL;
  mix(subject_text);
  return hash;
}

ServiceOptions ServiceOptions::FromEnv() {
  ServiceOptions options;
  options.port = static_cast<int>(EnvInt64("GRAPPLE_SERVICE_PORT", options.port));
  options.max_resident_sessions = static_cast<size_t>(std::max<int64_t>(
      1, EnvInt64("GRAPPLE_MAX_RESIDENT_SESSIONS",
                  static_cast<int64_t>(options.max_resident_sessions))));
  options.admission_capacity = static_cast<size_t>(std::max<int64_t>(
      1, EnvInt64("GRAPPLE_ADMISSION_QUEUE", static_cast<int64_t>(options.admission_capacity))));
  return options;
}

GrappleService::GrappleService(ServiceOptions options)
    : options_(options),
      admission_(options.admission_capacity),
      slots_(options.checker_slots),
      cache_(options.max_resident_sessions) {
  c_requests_ = metrics_.Counter("service_requests_total");
  c_rejected_ = metrics_.Counter("service_rejected_total");
  c_warm_hits_ = metrics_.Counter("service_warm_hits_total");
  c_cold_misses_ = metrics_.Counter("service_cold_misses_total");
  c_bypass_ = metrics_.Counter("service_bypass_total");
  c_errors_ = metrics_.Counter("service_errors_total");
  c_queue_wait_ns_ = metrics_.Counter("service_queue_wait_ns");
  c_check_ns_ = metrics_.Counter("service_check_ns");
  h_latency_ms_ = metrics_.Histogram("service_latency_ms");
  cache_.set_evict_hook([](uint64_t, Session* session) {
    if (session != nullptr && !session->dir.empty()) {
      // The Grapple destructor has not run yet, but eviction only happens
      // for unpinned (idle) sessions, so nothing is writing to the dir.
      // Destroy the session first, then its spill files.
      session->grapple.reset();
      RemoveTree(session->dir);
    }
  });
}

GrappleService::~GrappleService() { Shutdown(); }

bool GrappleService::Start(std::string* error) {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  if (started_) {
    if (error != nullptr) {
      *error = "service already started";
    }
    return false;
  }
  if (options_.work_root.empty()) {
    work_root_ = "/tmp/grappled-" + std::to_string(static_cast<long>(::getpid()));
    owns_work_root_ = true;
  } else {
    work_root_ = options_.work_root;
    owns_work_root_ = false;
  }
  if (!MakeDirs(work_root_)) {
    if (error != nullptr) {
      *error = "cannot create work root " + work_root_ + ": " + std::strerror(errno);
    }
    return false;
  }
  draining_.store(false, std::memory_order_release);
  if (!server_.Start(
          options_.port, [this](const HttpRequest& request) { return Handle(request); }, error,
          options_.handler_threads)) {
    return false;
  }
  size_t workers = std::max<size_t>(1, options_.worker_threads);
  workers_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  introspect_metrics_ =
      obs::Introspection::RegisterMetricsSource("service", [this] { return metrics_.Snapshot(); });
  introspect_status_ =
      obs::Introspection::RegisterStatusSource("service", [this] { return StatusSourceJson(); });
  introspect_queue_depth_ = obs::Introspection::RegisterGaugeSource(
      "service.queue_depth", [this] { return static_cast<double>(admission_.Stats().depth); });
  introspect_resident_ = obs::Introspection::RegisterGaugeSource(
      "service.resident_sessions", [this] { return static_cast<double>(cache_.resident()); });
  started_ = true;
  return true;
}

void GrappleService::Shutdown() {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  if (!started_) {
    return;
  }
  // Order matters: fail queued work first so no HTTP handler is left
  // waiting on a promise, then retire the workers, then the listener.
  draining_.store(true, std::memory_order_release);
  std::vector<AdmissionItem> leftover = admission_.ShutdownAndDrain();
  for (auto& item : leftover) {
    item.fn();  // sees draining_ and fails the request with 503
  }
  for (auto& worker : workers_) {
    if (worker.joinable()) {
      worker.join();
    }
  }
  workers_.clear();
  server_.Stop();
  // Unregister introspection before tearing down the state it reads.
  introspect_metrics_.Release();
  introspect_status_.Release();
  introspect_queue_depth_.Release();
  introspect_resident_.Release();
  // All checks are done, so every session is unpinned and evictable; the
  // evict hook removes each session's work dir.
  cache_.TrimTo(0);
  if (owns_work_root_) {
    RemoveTree(work_root_);
  }
  started_ = false;
}

void GrappleService::WorkerLoop() {
  AdmissionItem item;
  while (admission_.Dequeue(&item)) {
    item.fn();
    item.fn = nullptr;
  }
}

HttpResponse GrappleService::Handle(const HttpRequest& request) {
  if (request.path == "/check") {
    return HandleCheck(request);
  }
  obs::IntrospectionPage page = obs::RenderIntrospectionPage(request.path, request.query);
  HttpResponse response;
  response.status = page.status;
  response.content_type = page.content_type;
  response.body = std::move(page.body);
  return response;
}

HttpResponse GrappleService::HandleCheck(const HttpRequest& request) {
  auto fail = [this](int status, const std::string& message) {
    metrics_.Add(c_errors_);
    {
      std::lock_guard<std::mutex> lock(latency_mu_);
      ++errors_;
    }
    return JsonError(status, message);
  };
  metrics_.Add(c_requests_);
  if (request.method != "POST") {
    return fail(400, "/check requires POST with the subject IR as the body");
  }
  if (request.body.empty()) {
    return fail(400, "empty subject: POST the IR program text as the request body");
  }
  std::map<std::string, std::string> params = ParseQuery(request.query);
  std::string tenant = SanitizeTenant(params["tenant"]);
  int priority = params["priority"] == "batch" ? kPriorityBatch : kPriorityInteractive;
  std::vector<FsmSpec> specs;
  std::string why;
  if (!ResolveCheckers(params["checkers"], &specs, &why)) {
    return fail(400, why);
  }
  bool reports_only = params["fields"] == "reports";

  SteadyClock::time_point admitted_at = SteadyClock::now();
  auto state = std::make_shared<std::promise<HttpResponse>>();
  std::future<HttpResponse> future = state->get_future();
  auto subject = std::make_shared<std::string>(request.body);
  auto run = [this, state, subject, tenant, specs = std::move(specs), reports_only,
              admitted_at]() mutable {
    if (draining_.load(std::memory_order_acquire)) {
      metrics_.Add(c_errors_);
      state->set_value(JsonError(503, "service is shutting down"));
      return;
    }
    double queue_ms = MsSince(admitted_at);
    metrics_.Add(c_queue_wait_ns_, static_cast<uint64_t>(queue_ms * 1e6));

    SlotLease lease = slots_.Acquire();
    uint64_t fingerprint = SubjectFingerprint(tenant, *subject);
    std::string factory_error;
    auto factory = [&]() -> std::unique_ptr<Session> {
      ParseResult parsed = ParseProgram(*subject);
      if (!parsed.ok) {
        factory_error = "parse error: " + parsed.error;
        return nullptr;
      }
      auto session = std::make_unique<Session>();
      session->tenant = tenant;
      session->fingerprint = fingerprint;
      session->dir = work_root_ + "/" + tenant + "/" + FingerprintHex(fingerprint);
      if (!MakeDirs(session->dir)) {
        factory_error = "cannot create session work dir " + session->dir;
        return nullptr;
      }
      GrappleOptions options = options_.session;
      options.work_dir = session->dir;
      try {
        session->grapple = std::make_unique<Grapple>(std::move(parsed.program), options);
      } catch (const std::exception& e) {
        factory_error = std::string("session construction failed: ") + e.what();
        RemoveTree(session->dir);
        return nullptr;
      }
      return session;
    };
    SessionCache<Session>::Handle handle = cache_.Acquire(fingerprint, factory);
    if (!handle.valid()) {
      metrics_.Add(c_errors_);
      {
        std::lock_guard<std::mutex> lock(latency_mu_);
        ++errors_;
      }
      state->set_value(
          JsonError(400, factory_error.empty() ? "session creation failed" : factory_error));
      return;
    }
    if (!handle.cached()) {
      metrics_.Add(c_bypass_);
    } else if (handle.warm()) {
      metrics_.Add(c_warm_hits_);
    } else {
      metrics_.Add(c_cold_misses_);
    }

    GrappleResult result;
    uint64_t session_checks = 0;
    {
      // Sessions are not safe for concurrent Check; serialize per session.
      std::lock_guard<std::mutex> run_lock(handle.run_mu());
      SteadyClock::time_point check_begin = SteadyClock::now();
      result = handle.session()->grapple->Check(specs);
      metrics_.Add(c_check_ns_, static_cast<uint64_t>(MsSince(check_begin) * 1e6));
      session_checks = ++handle.session()->checks;
    }

    // Aggregate reports exactly like examples/analyze_file --json so the
    // `fields=reports` body is byte-identical to the one-shot CLI.
    std::vector<BugReport> all_reports;
    for (const auto& checker : result.checkers) {
      for (const auto& report : checker.reports) {
        all_reports.push_back(report);
      }
    }
    HttpResponse response;
    response.content_type = "application/json";
    if (reports_only) {
      response.body = ReportsToJson(all_reports) + "\n";
    } else {
      obs::JsonWriter json;
      json.BeginObject();
      json.Key("tenant").String(tenant);
      json.Key("warm").Bool(handle.warm());
      json.Key("cached").Bool(handle.cached());
      json.Key("session_checks").UInt(session_checks);
      json.Key("queue_ms").Double(queue_ms);
      json.Key("check_seconds").Double(result.total_seconds);
      json.Key("total_reports").UInt(result.TotalReports());
      json.Key("reports").Raw(ReportsToJson(all_reports));
      json.Key("report").Raw(result.report.ToJson());
      json.EndObject();
      response.body = json.Take() + "\n";
    }
    double total_ms = MsSince(admitted_at);
    RecordLatency(total_ms, handle.warm());
    state->set_value(std::move(response));
  };

  uint64_t ticket = admission_.TryEnqueue(tenant, priority, std::move(run), &why);
  if (ticket == 0) {
    metrics_.Add(c_rejected_);
    bool shutting_down = why.find("shutting down") != std::string::npos;
    return fail(shutting_down ? 503 : 429, why);
  }
  return future.get();
}

void GrappleService::RecordLatency(double total_ms, bool warm) {
  metrics_.Observe(h_latency_ms_, static_cast<uint64_t>(total_ms));
  std::lock_guard<std::mutex> lock(latency_mu_);
  recent_latency_ms_.push_back(total_ms);
  while (recent_latency_ms_.size() > kLatencyWindow) {
    recent_latency_ms_.pop_front();
  }
  (void)warm;
}

ServiceStats GrappleService::Stats() const {
  ServiceStats stats;
  stats.admission = admission_.Stats();
  obs::MetricsSnapshot snapshot = metrics_.Snapshot();
  stats.warm_hits = snapshot.CounterOr("service_warm_hits_total");
  stats.cold_misses = snapshot.CounterOr("service_cold_misses_total");
  stats.bypasses = snapshot.CounterOr("service_bypass_total");
  stats.errors = snapshot.CounterOr("service_errors_total");
  auto cache_stats = cache_.stats();
  stats.evictions = cache_stats.evictions;
  stats.resident_sessions = cache_stats.resident;
  stats.slots_in_use = slots_.in_use();
  std::vector<double> window;
  {
    std::lock_guard<std::mutex> lock(latency_mu_);
    window.assign(recent_latency_ms_.begin(), recent_latency_ms_.end());
  }
  stats.p50_ms = ExactPercentile(window, 50);
  stats.p99_ms = ExactPercentile(window, 99);
  return stats;
}

std::string GrappleService::StatusSourceJson() const {
  ServiceStats stats = Stats();
  obs::JsonWriter json;
  json.BeginObject();
  json.Key("queue").BeginObject();
  json.Key("depth").UInt(stats.admission.depth);
  json.Key("depth_peak").UInt(stats.admission.depth_peak);
  json.Key("capacity").UInt(admission_.capacity());
  json.Key("admitted").UInt(stats.admission.admitted);
  json.Key("rejected").UInt(stats.admission.rejected);
  json.Key("dispatched").UInt(stats.admission.dispatched);
  json.EndObject();
  json.Key("sessions").BeginObject();
  json.Key("resident").UInt(stats.resident_sessions);
  json.Key("max_resident").UInt(options_.max_resident_sessions);
  json.Key("warm_hits").UInt(stats.warm_hits);
  json.Key("cold_misses").UInt(stats.cold_misses);
  json.Key("bypasses").UInt(stats.bypasses);
  json.Key("evictions").UInt(stats.evictions);
  json.EndObject();
  json.Key("slots").BeginObject();
  json.Key("total").UInt(slots_.slots());
  json.Key("in_use").UInt(stats.slots_in_use);
  json.Key("peak_in_use").UInt(slots_.peak_in_use());
  json.Key("waiters").UInt(slots_.waiters());
  json.EndObject();
  json.Key("tenants").BeginObject();
  for (const auto& [tenant, admitted] : stats.admission.per_tenant_admitted) {
    json.Key(tenant).UInt(admitted);
  }
  json.EndObject();
  json.Key("latency").BeginObject();
  json.Key("p50_ms").Double(stats.p50_ms);
  json.Key("p99_ms").Double(stats.p99_ms);
  size_t window = 0;
  {
    std::lock_guard<std::mutex> lock(latency_mu_);
    window = recent_latency_ms_.size();
  }
  json.Key("window").UInt(window);
  json.EndObject();
  json.Key("errors").UInt(stats.errors);
  json.EndObject();
  return json.Take();
}

}  // namespace grapple
