#include "src/service/admission_queue.h"

#include <algorithm>

namespace grapple {

AdmissionQueue::AdmissionQueue(size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {}

uint64_t AdmissionQueue::TryEnqueue(const std::string& tenant, int priority,
                                    std::function<void()> fn, std::string* why) {
  priority = std::clamp(priority, 0, kNumPriorities - 1);
  std::lock_guard<std::mutex> lock(mu_);
  if (shutdown_) {
    if (why != nullptr) {
      *why = "service is shutting down";
    }
    return 0;
  }
  if (depth_ >= capacity_) {
    ++rejected_;
    if (why != nullptr) {
      *why = "admission queue full (" + std::to_string(capacity_) + " queued)";
    }
    return 0;
  }
  auto [it, inserted] = tenants_.try_emplace(tenant);
  if (inserted) {
    tenant_order_.push_back(tenant);
  }
  AdmissionItem item;
  item.ticket = next_ticket_++;
  item.tenant = tenant;
  item.priority = priority;
  item.fn = std::move(fn);
  uint64_t ticket = item.ticket;
  it->second.by_priority[priority].push_back(std::move(item));
  ++it->second.total;
  ++depth_;
  depth_peak_ = std::max(depth_peak_, depth_);
  ++per_tenant_admitted_[tenant];
  cv_.notify_one();
  return ticket;
}

bool AdmissionQueue::PickLocked(AdmissionItem* out) {
  if (depth_ == 0) {
    return false;
  }
  for (int priority = 0; priority < kNumPriorities; ++priority) {
    size_t n = tenant_order_.size();
    for (size_t step = 0; step < n; ++step) {
      size_t index = (rr_cursor_[priority] + step) % n;
      TenantQueues& queues = tenants_[tenant_order_[index]];
      std::deque<AdmissionItem>& q = queues.by_priority[priority];
      if (q.empty()) {
        continue;
      }
      *out = std::move(q.front());
      q.pop_front();
      --queues.total;
      --depth_;
      ++dispatched_;
      // Next dispatch in this class starts at the following tenant, which
      // is what keeps a flooding tenant at one dispatch per rotation.
      rr_cursor_[priority] = (index + 1) % n;
      return true;
    }
  }
  return false;  // unreachable while depth_ bookkeeping holds
}

bool AdmissionQueue::Dequeue(AdmissionItem* out) {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return depth_ > 0 || shutdown_; });
  return PickLocked(out);
}

std::vector<AdmissionItem> AdmissionQueue::ShutdownAndDrain() {
  std::vector<AdmissionItem> leftover;
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
    AdmissionItem item;
    while (PickLocked(&item)) {
      // Drained, not dispatched: undo the dispatch count so stats reflect
      // what actually ran.
      --dispatched_;
      leftover.push_back(std::move(item));
    }
  }
  cv_.notify_all();
  return leftover;
}

AdmissionStats AdmissionQueue::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  AdmissionStats stats;
  stats.depth = depth_;
  stats.depth_peak = depth_peak_;
  stats.admitted = next_ticket_ - 1;
  stats.rejected = rejected_;
  stats.dispatched = dispatched_;
  stats.per_tenant_admitted = per_tenant_admitted_;
  return stats;
}

}  // namespace grapple
