// FIFO-fair checker-slot arbitration for the analysis service
// (DESIGN.md §15).
//
// The BudgetArbiter (support/budget_arbiter.h) caps *bytes* across
// concurrent engines; this caps *concurrent Check() runs* across resident
// sessions. Each session owns a work-stealing TaskRuntime sized for its own
// checker parallelism (DESIGN.md §14), so N sessions checking at once would
// oversubscribe the machine N-fold. The service takes one slot per request
// before touching a session:
//
//   SlotArbiter slots(2);
//   SlotLease lease = slots.Acquire();   // blocks, FIFO ticket order
//   ... run session->Check(...) ...
//   lease.Release();                     // or let it destruct
//
// Acquire is ticket-fair like BudgetArbiter::Acquire: slots are granted
// strictly in arrival order, so a stream of cheap requests cannot starve an
// expensive one.
#ifndef GRAPPLE_SRC_SERVICE_SLOT_ARBITER_H_
#define GRAPPLE_SRC_SERVICE_SLOT_ARBITER_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>

namespace grapple {

class SlotArbiter;

// One granted checker slot. Move-only; returns the slot on
// Release()/destruction.
class SlotLease {
 public:
  SlotLease() = default;
  ~SlotLease();

  SlotLease(SlotLease&& other) noexcept;
  SlotLease& operator=(SlotLease&& other) noexcept;
  SlotLease(const SlotLease&) = delete;
  SlotLease& operator=(const SlotLease&) = delete;

  bool valid() const { return arbiter_ != nullptr; }
  void Release();

 private:
  friend class SlotArbiter;
  explicit SlotLease(SlotArbiter* arbiter) : arbiter_(arbiter) {}

  SlotArbiter* arbiter_ = nullptr;
};

class SlotArbiter {
 public:
  // `slots` must be positive; 0 degrades to 1.
  explicit SlotArbiter(size_t slots);

  SlotArbiter(const SlotArbiter&) = delete;
  SlotArbiter& operator=(const SlotArbiter&) = delete;

  // Blocks until a slot is free and every earlier Acquire has been served.
  SlotLease Acquire();

  size_t slots() const { return slots_; }
  size_t in_use() const;
  // Currently queued Acquire calls (observational, like BudgetArbiter).
  uint64_t waiters() const;
  size_t peak_in_use() const;

 private:
  friend class SlotLease;

  void Return();

  const size_t slots_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  size_t in_use_ = 0;
  size_t peak_in_use_ = 0;
  // FIFO ticket lock over Acquire, mirroring BudgetArbiter.
  uint64_t next_ticket_ = 0;
  uint64_t serving_ = 0;
};

}  // namespace grapple

#endif  // GRAPPLE_SRC_SERVICE_SLOT_ARBITER_H_
