// GrappleService: the long-lived multi-tenant analysis service behind the
// grappled daemon (DESIGN.md §15).
//
// One process serves check requests from many tenants over the loopback
// HTTP listener (support/socket_server.h):
//
//   POST /check?tenant=<id>[&priority=interactive|batch]
//              [&checkers=io,lock,...][&fields=reports]
//   <body: IR program text (src/ir/parser.h grammar)>
//
// The request flows admission -> slot -> session:
//   * AdmissionQueue bounds queued work and keeps tenants fair (429 on
//     overload, 503 while shutting down — clients see backpressure instead
//     of unbounded latency).
//   * SlotArbiter caps concurrent Check() runs so N resident sessions do
//     not oversubscribe the machine N-fold.
//   * SessionCache keeps hot Grapple sessions resident keyed by a
//     fingerprint of (tenant, subject): a warm hit reuses the cached
//     phase-1 alias analysis and runs phases 2-3 only.
//
// Responses: with `fields=reports` the body is byte-identical to
// `analyze_file <subject> --json` on the same subject and checker set —
// warm or cold, the service is a drop-in for the one-shot CLI. The default
// is a JSON envelope that adds service metadata (ticket, warm/cached,
// queue/check latency) and the per-request obs::RunReport.
//
// Every other path (/healthz /statusz /metricsz /tracez /varz /profilez)
// renders the introspection pages; the service registers a "service" status
// source (queue depth, resident sessions, per-tenant counters, exact
// p50/p99 latency over the recent window) plus service_* metrics so one
// scrape shows daemon and analysis state together.
#ifndef GRAPPLE_SRC_SERVICE_SERVICE_H_
#define GRAPPLE_SRC_SERVICE_SERVICE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/core/grapple.h"
#include "src/obs/metrics.h"
#include "src/obs/statusz.h"
#include "src/service/admission_queue.h"
#include "src/service/session_cache.h"
#include "src/service/slot_arbiter.h"
#include "src/support/socket_server.h"

namespace grapple {

struct ServiceOptions {
  // Listener port; 0 binds an ephemeral one (read it back via port()).
  int port = 0;
  // Sessions kept hot. Eviction is LRU among idle sessions only; in-flight
  // sessions are pinned and never dropped.
  size_t max_resident_sessions = 8;
  // Bound on admitted-but-undispatched requests (beyond this: 429).
  size_t admission_capacity = 64;
  // Concurrent Check() runs across all sessions.
  size_t checker_slots = 2;
  // Dispatch workers draining the admission queue.
  size_t worker_threads = 2;
  // HTTP handler pool (requests park here while queued + checking).
  size_t handler_threads = 8;
  // Root for per-tenant session work dirs; empty = private temp dir.
  // Removed on Shutdown() when the service created it.
  std::string work_root;
  // Template for every session; work_dir is overridden per session.
  GrappleOptions session;

  // Defaults with GRAPPLE_SERVICE_PORT, GRAPPLE_MAX_RESIDENT_SESSIONS and
  // GRAPPLE_ADMISSION_QUEUE applied (support/env.h).
  static ServiceOptions FromEnv();
};

struct ServiceStats {
  AdmissionStats admission;
  uint64_t warm_hits = 0;
  uint64_t cold_misses = 0;
  uint64_t bypasses = 0;
  uint64_t evictions = 0;
  uint64_t errors = 0;       // 4xx/5xx responses on /check
  size_t resident_sessions = 0;
  size_t slots_in_use = 0;
  double p50_ms = 0;  // exact, over the recent-latency window
  double p99_ms = 0;
};

class GrappleService {
 public:
  explicit GrappleService(ServiceOptions options);
  ~GrappleService();

  GrappleService(const GrappleService&) = delete;
  GrappleService& operator=(const GrappleService&) = delete;

  // Binds the listener and starts the worker pool. False (with *error set)
  // when the port is taken or the work root cannot be created.
  bool Start(std::string* error);

  // Graceful stop: rejects new requests, fails queued ones with 503,
  // finishes in-flight checks, drops every session (removing its work
  // dir), then removes the work root if the service created it.
  // Idempotent.
  void Shutdown();

  int port() const { return server_.port(); }
  const std::string& work_root() const { return work_root_; }
  ServiceStats Stats() const;

  // Evicts idle sessions until at most `target` remain resident (pinned,
  // in-flight sessions are skipped). The budget-pressure hook; exposed for
  // tests and the daemon's SIGHUP-style trimming.
  size_t TrimSessions(size_t target) { return cache_.TrimTo(target); }

 private:
  // A resident analysis session plus the bookkeeping the service needs.
  struct Session {
    std::string tenant;
    std::string dir;  // session work dir, removed on eviction
    uint64_t fingerprint = 0;
    uint64_t checks = 0;  // guarded by the cache entry's run mutex
    std::unique_ptr<Grapple> grapple;
  };

  HttpResponse Handle(const HttpRequest& request);
  HttpResponse HandleCheck(const HttpRequest& request);
  void WorkerLoop();
  void RecordLatency(double total_ms, bool warm);
  std::string StatusSourceJson() const;

  ServiceOptions options_;
  std::string work_root_;
  bool owns_work_root_ = false;
  std::atomic<bool> draining_{false};
  bool started_ = false;
  std::mutex lifecycle_mu_;

  AdmissionQueue admission_;
  SlotArbiter slots_;
  SessionCache<Session> cache_;
  SocketServer server_;
  std::vector<std::thread> workers_;

  // service_* counters; merged into /metricsz via the metrics source.
  obs::MetricsRegistry metrics_;
  obs::MetricId c_requests_;
  obs::MetricId c_rejected_;
  obs::MetricId c_warm_hits_;
  obs::MetricId c_cold_misses_;
  obs::MetricId c_bypass_;
  obs::MetricId c_errors_;
  obs::MetricId c_queue_wait_ns_;
  obs::MetricId c_check_ns_;
  obs::MetricId h_latency_ms_;

  // Recent /check latencies for exact p50/p99 in /statusz (the log2
  // histogram above is too coarse to gate on).
  mutable std::mutex latency_mu_;
  std::deque<double> recent_latency_ms_;
  uint64_t errors_ = 0;

  // Declared last: unregister (blocking out in-flight scrapes) before the
  // state their callbacks read is torn down.
  obs::Introspection::Handle introspect_metrics_;
  obs::Introspection::Handle introspect_status_;
  obs::Introspection::Handle introspect_queue_depth_;
  obs::Introspection::Handle introspect_resident_;
};

// Fingerprint for session-cache keys: FNV-1a 64 over tenant + '\0' +
// subject text. Exposed for tests.
uint64_t SubjectFingerprint(const std::string& tenant, const std::string& subject_text);

}  // namespace grapple

#endif  // GRAPPLE_SRC_SERVICE_SERVICE_H_
