// LRU cache of hot analysis sessions for the grappled daemon
// (DESIGN.md §15).
//
// A Grapple session front-loads phase 1 (the alias/points-to pass) and keeps
// its state resident, so the second check of the same subject skips straight
// to phase 2. The service keys sessions by a fingerprint of
// (tenant, subject IR) and keeps the hottest ones here; a warm hit turns a
// multi-second cold check into a phase-2-only run.
//
// Contracts the service leans on:
//   * The factory runs exactly once per resident key, outside the cache
//     lock. Concurrent Acquires for the same key block until the first
//     finishes creating, then share the session.
//   * A Handle pins its entry: pinned entries are never evicted, so budget
//     pressure can never drop a session mid-Check.
//   * When the cache is full and every entry is pinned, Acquire degrades to
//     a *bypass*: it builds an uncached one-shot session owned by the
//     handle. Callers never block on eviction and never fail admission
//     because of cache pressure alone.
//   * Each entry carries a run mutex; sessions are not safe for concurrent
//     Check calls, so the service serializes per-session runs through it.
//
// Header-only template so tests can exercise the policy with a toy session
// type instead of paying for real alias analysis.
#ifndef GRAPPLE_SRC_SERVICE_SESSION_CACHE_H_
#define GRAPPLE_SRC_SERVICE_SESSION_CACHE_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

namespace grapple {

template <typename Session>
class SessionCache {
 private:
  struct Entry;

 public:
  using Factory = std::function<std::unique_ptr<Session>()>;
  // Called (outside the cache lock) with each evicted session, before it is
  // destroyed. Work-dir cleanup hangs off this in the service.
  using EvictHook = std::function<void(uint64_t key, Session* session)>;

  struct Stats {
    uint64_t hits = 0;        // Acquire found a created entry
    uint64_t misses = 0;      // Acquire created a new resident entry
    uint64_t bypasses = 0;    // full + all pinned: uncached one-shot session
    uint64_t evictions = 0;   // entries dropped (capacity or TrimTo)
    size_t resident = 0;
    size_t pinned = 0;        // entries with at least one live handle
  };

  // A pinned session. While any handle to an entry is alive the entry cannot
  // be evicted. Bypass handles own their session outright.
  class Handle {
   public:
    Handle() = default;
    ~Handle() { Release(); }
    Handle(Handle&& other) noexcept { *this = std::move(other); }
    Handle& operator=(Handle&& other) noexcept {
      if (this != &other) {
        Release();
        cache_ = other.cache_;
        entry_ = std::move(other.entry_);
        owned_ = std::move(other.owned_);
        warm_ = other.warm_;
        other.cache_ = nullptr;
        other.warm_ = false;
      }
      return *this;
    }
    Handle(const Handle&) = delete;
    Handle& operator=(const Handle&) = delete;

    bool valid() const { return entry_ != nullptr || owned_ != nullptr; }
    // True when this session had already been created by an earlier Acquire.
    bool warm() const { return warm_; }
    // False for bypass handles (the session dies with the handle).
    bool cached() const { return entry_ != nullptr; }

    Session* session() const {
      if (entry_ != nullptr) {
        return entry_->session.get();
      }
      return owned_.get();
    }

    // Serializes Check runs on a shared session. Bypass sessions are
    // exclusive to this handle but lock the same way so callers need not
    // care which kind they got.
    std::mutex& run_mu() const {
      return entry_ != nullptr ? entry_->run_mu : bypass_run_mu_;
    }

    void Release() {
      if (entry_ != nullptr && cache_ != nullptr) {
        cache_->Unpin(entry_);
      }
      entry_ = nullptr;
      cache_ = nullptr;
      owned_ = nullptr;
      warm_ = false;
    }

   private:
    friend class SessionCache;

    SessionCache* cache_ = nullptr;
    std::shared_ptr<Entry> entry_;
    std::unique_ptr<Session> owned_;
    bool warm_ = false;
    mutable std::mutex bypass_run_mu_;
  };

  // `capacity` bounds resident sessions; 0 degrades to 1.
  explicit SessionCache(size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {}

  ~SessionCache() { TrimTo(0); }

  SessionCache(const SessionCache&) = delete;
  SessionCache& operator=(const SessionCache&) = delete;

  void set_evict_hook(EvictHook hook) {
    std::lock_guard<std::mutex> lock(mu_);
    evict_hook_ = std::move(hook);
  }

  // Returns a pinned handle for `key`, creating the session via `factory`
  // on a miss. Returns an invalid handle only when the factory itself
  // returns null.
  Handle Acquire(uint64_t key, const Factory& factory) {
    std::shared_ptr<Entry> to_destroy;  // evicted entry, freed outside mu_
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      auto it = entries_.find(key);
      if (it != entries_.end()) {
        std::shared_ptr<Entry> entry = it->second;
        if (entry->creating) {
          cv_.wait(lock, [&] { return !entry->creating; });
          // The creator may have failed and removed the entry; re-resolve.
          continue;
        }
        ++entry->pins;
        entry->last_used = ++use_clock_;
        ++hits_;
        Handle handle;
        handle.cache_ = this;
        handle.entry_ = std::move(entry);
        handle.warm_ = true;
        return handle;
      }
      break;
    }
    // Miss. Make room, or bypass when nothing is evictable.
    if (entries_.size() >= capacity_ && !EvictOneLocked(&to_destroy)) {
      ++bypasses_;
      lock.unlock();
      DestroyEvicted(std::move(to_destroy));
      Handle handle;
      handle.owned_ = factory();
      return handle;
    }
    auto entry = std::make_shared<Entry>();
    entry->key = key;
    entry->creating = true;
    entry->pins = 1;
    entry->last_used = ++use_clock_;
    entries_.emplace(key, entry);
    ++misses_;
    lock.unlock();

    DestroyEvicted(std::move(to_destroy));
    std::unique_ptr<Session> session = factory();

    lock.lock();
    entry->creating = false;
    if (session == nullptr) {
      // Creation failed: withdraw the entry so a later Acquire can retry.
      entry->pins = 0;
      entries_.erase(key);
      cv_.notify_all();
      return Handle();
    }
    entry->session = std::move(session);
    cv_.notify_all();
    Handle handle;
    handle.cache_ = this;
    handle.entry_ = std::move(entry);
    handle.warm_ = false;
    return handle;
  }

  // Evicts unpinned entries, least recently used first, until at most
  // `target` remain resident. Pinned (in-flight) entries are skipped, so
  // this can leave more than `target` resident. Returns the evicted count.
  size_t TrimTo(size_t target) {
    size_t evicted = 0;
    for (;;) {
      std::shared_ptr<Entry> victim;
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (entries_.size() <= target || !EvictOneLocked(&victim)) {
          break;
        }
      }
      DestroyEvicted(std::move(victim));
      ++evicted;
    }
    return evicted;
  }

  Stats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    Stats stats;
    stats.hits = hits_;
    stats.misses = misses_;
    stats.bypasses = bypasses_;
    stats.evictions = evictions_;
    stats.resident = entries_.size();
    for (const auto& [key, entry] : entries_) {
      if (entry->pins > 0) {
        ++stats.pinned;
      }
    }
    return stats;
  }

  size_t resident() const {
    std::lock_guard<std::mutex> lock(mu_);
    return entries_.size();
  }

  std::vector<uint64_t> ResidentKeys() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<uint64_t> keys;
    keys.reserve(entries_.size());
    for (const auto& [key, entry] : entries_) {
      keys.push_back(key);
    }
    return keys;
  }

 private:
  struct Entry {
    uint64_t key = 0;
    std::unique_ptr<Session> session;
    bool creating = false;
    size_t pins = 0;
    uint64_t last_used = 0;
    std::mutex run_mu;
  };

  void Unpin(const std::shared_ptr<Entry>& entry) {
    std::lock_guard<std::mutex> lock(mu_);
    --entry->pins;
  }

  // Removes the least recently used unpinned, fully created entry under mu_.
  // The caller destroys *victim outside the lock via DestroyEvicted.
  bool EvictOneLocked(std::shared_ptr<Entry>* victim) {
    auto best = entries_.end();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      const auto& entry = it->second;
      if (entry->pins > 0 || entry->creating) {
        continue;
      }
      if (best == entries_.end() || entry->last_used < best->second->last_used) {
        best = it;
      }
    }
    if (best == entries_.end()) {
      return false;
    }
    *victim = std::move(best->second);
    entries_.erase(best);
    ++evictions_;
    return true;
  }

  void DestroyEvicted(std::shared_ptr<Entry> victim) {
    if (victim == nullptr) {
      return;
    }
    EvictHook hook;
    {
      std::lock_guard<std::mutex> lock(mu_);
      hook = evict_hook_;
    }
    if (hook) {
      hook(victim->key, victim->session.get());
    }
  }

  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::unordered_map<uint64_t, std::shared_ptr<Entry>> entries_;
  uint64_t use_clock_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t bypasses_ = 0;
  uint64_t evictions_ = 0;
  EvictHook evict_hook_;
};

}  // namespace grapple

#endif  // GRAPPLE_SRC_SERVICE_SESSION_CACHE_H_
