// Bounded, tenant-fair admission queue for the grappled analysis daemon
// (DESIGN.md §15).
//
// Every check request entering the service passes through one of these:
// admission either assigns the request a globally monotonic ticket and
// queues it, or rejects it outright when the queue is full (backpressure the
// client can see, instead of unbounded memory growth under overload).
//
// Dispatch order is the fairness contract of the service:
//   * FIFO per (tenant, priority): a tenant's requests of equal priority are
//     dispatched strictly in ticket order.
//   * Round-robin across tenants within a priority class: a tenant flooding
//     the queue gets one dispatch per rotation like everyone else, so it
//     cannot starve the other tenants.
//   * Priority classes are strict across tenants: any queued interactive
//     (priority 0) request dispatches before any batch (priority 1) one.
//     Starvation of batch work is bounded by the queue capacity — a flood of
//     interactive requests hits the admission bound and gets rejected.
//
// Thread-safe; any number of producers (HTTP handler threads) and consumers
// (service workers) may call concurrently.
#ifndef GRAPPLE_SRC_SERVICE_ADMISSION_QUEUE_H_
#define GRAPPLE_SRC_SERVICE_ADMISSION_QUEUE_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace grapple {

// Priority classes. Lower value = served first.
inline constexpr int kPriorityInteractive = 0;
inline constexpr int kPriorityBatch = 1;
inline constexpr int kNumPriorities = 2;

// One admitted request as handed to a dispatcher.
struct AdmissionItem {
  uint64_t ticket = 0;  // globally monotonic admission order, starts at 1
  std::string tenant;
  int priority = kPriorityBatch;
  std::function<void()> fn;  // the work; run by the dispatching worker
};

struct AdmissionStats {
  size_t depth = 0;          // currently queued
  size_t depth_peak = 0;     // high-water mark of depth
  uint64_t admitted = 0;     // total tickets issued
  uint64_t rejected = 0;     // total TryEnqueue failures (queue full)
  uint64_t dispatched = 0;   // total items handed to Dequeue callers
  std::map<std::string, uint64_t> per_tenant_admitted;
};

class AdmissionQueue {
 public:
  // `capacity` bounds the number of queued (admitted, not yet dispatched)
  // requests; 0 degrades to 1.
  explicit AdmissionQueue(size_t capacity);

  AdmissionQueue(const AdmissionQueue&) = delete;
  AdmissionQueue& operator=(const AdmissionQueue&) = delete;

  // Admits the request and returns its ticket (> 0), or returns 0 with
  // *why set when the queue is at capacity or shut down. Priorities outside
  // [0, kNumPriorities) are clamped.
  uint64_t TryEnqueue(const std::string& tenant, int priority, std::function<void()> fn,
                      std::string* why);

  // Blocks for the next request per the fairness policy above. Returns
  // false when the queue is shut down and drained.
  bool Dequeue(AdmissionItem* out);

  // Stops admission and wakes every blocked Dequeue. Items still queued are
  // returned to the caller (their fns have NOT run) so the service can fail
  // them explicitly instead of dropping them on the floor.
  std::vector<AdmissionItem> ShutdownAndDrain();

  size_t capacity() const { return capacity_; }
  AdmissionStats Stats() const;

 private:
  struct TenantQueues {
    std::deque<AdmissionItem> by_priority[kNumPriorities];
    size_t total = 0;
  };

  // Picks the next item under mu_; false when nothing is queued.
  bool PickLocked(AdmissionItem* out);

  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool shutdown_ = false;
  uint64_t next_ticket_ = 1;
  size_t depth_ = 0;
  size_t depth_peak_ = 0;
  uint64_t rejected_ = 0;
  uint64_t dispatched_ = 0;
  std::map<std::string, uint64_t> per_tenant_admitted_;
  std::map<std::string, TenantQueues> tenants_;
  // Round-robin rotation: tenant names in first-seen order plus one cursor
  // per priority class, so each class rotates independently.
  std::vector<std::string> tenant_order_;
  size_t rr_cursor_[kNumPriorities] = {0, 0};
};

}  // namespace grapple

#endif  // GRAPPLE_SRC_SERVICE_ADMISSION_QUEUE_H_
