#include "src/service/slot_arbiter.h"

#include <algorithm>
#include <utility>

namespace grapple {

SlotLease::~SlotLease() { Release(); }

SlotLease::SlotLease(SlotLease&& other) noexcept : arbiter_(other.arbiter_) {
  other.arbiter_ = nullptr;
}

SlotLease& SlotLease::operator=(SlotLease&& other) noexcept {
  if (this != &other) {
    Release();
    arbiter_ = other.arbiter_;
    other.arbiter_ = nullptr;
  }
  return *this;
}

void SlotLease::Release() {
  if (arbiter_ != nullptr) {
    arbiter_->Return();
    arbiter_ = nullptr;
  }
}

SlotArbiter::SlotArbiter(size_t slots) : slots_(slots == 0 ? 1 : slots) {}

SlotLease SlotArbiter::Acquire() {
  std::unique_lock<std::mutex> lock(mu_);
  uint64_t ticket = next_ticket_++;
  cv_.wait(lock, [&] { return serving_ == ticket && in_use_ < slots_; });
  ++serving_;
  ++in_use_;
  peak_in_use_ = std::max(peak_in_use_, in_use_);
  // Wake the next ticket holder; it re-checks slot availability itself.
  cv_.notify_all();
  return SlotLease(this);
}

void SlotArbiter::Return() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    --in_use_;
  }
  cv_.notify_all();
}

size_t SlotArbiter::in_use() const {
  std::lock_guard<std::mutex> lock(mu_);
  return in_use_;
}

uint64_t SlotArbiter::waiters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_ticket_ - serving_;
}

size_t SlotArbiter::peak_in_use() const {
  std::lock_guard<std::mutex> lock(mu_);
  return peak_in_use_;
}

}  // namespace grapple
