// The traditional (non-systemized) baseline of §5.3: a worklist-based,
// fully in-memory path-sensitive alias analysis with explicit constraint
// objects attached to edges via pointers.
//
// The paper implemented this as the obvious alternative to Grapple and
// reports that it "could not successfully analyze any program in our set —
// it ran out of memory quickly after several iterations". This module
// reproduces that design point with a byte budget standing in for physical
// RAM: every edge carries a heap-allocated constraint, nothing is widened
// or spilled, and the run aborts with out_of_memory=true when the
// accounted footprint crosses the budget.
#ifndef GRAPPLE_SRC_BASELINE_TRADITIONAL_H_
#define GRAPPLE_SRC_BASELINE_TRADITIONAL_H_

#include <cstdint>

#include "src/ir/ir.h"
#include "src/smt/solver.h"

namespace grapple {

struct TraditionalOptions {
  // Simulated physical-memory budget (the paper's desktop had 16 GB; the
  // benchmarks scale this down with the workloads).
  uint64_t memory_budget_bytes = uint64_t{256} << 20;
  // Wall-clock cap; exceeding it reports timed_out.
  double max_seconds = 300.0;
  size_t loop_unroll = 2;
  SolverLimits solver_limits;
};

struct TraditionalResult {
  bool out_of_memory = false;
  bool timed_out = false;
  uint64_t edges = 0;
  uint64_t peak_bytes = 0;
  uint64_t constraints_solved = 0;
  double seconds = 0;
};

TraditionalResult RunTraditionalAliasAnalysis(const Program& program,
                                              const TraditionalOptions& options);

}  // namespace grapple

#endif  // GRAPPLE_SRC_BASELINE_TRADITIONAL_H_
