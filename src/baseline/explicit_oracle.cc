#include "src/baseline/explicit_oracle.h"

#include "src/support/byte_io.h"
#include "src/support/timer.h"

namespace grapple {

void SerializeConstraint(const Constraint& constraint, std::vector<uint8_t>* out) {
  PutVarint64(out, constraint.atoms().size());
  for (const auto& atom : constraint.atoms()) {
    uint8_t flags = static_cast<uint8_t>(atom.cmp) | (atom.opaque ? 0x80 : 0);
    out->push_back(flags);
    if (atom.opaque) {
      continue;
    }
    PutVarintSigned64(out, atom.expr.constant());
    PutVarint64(out, atom.expr.terms().size());
    for (const auto& [var, coeff] : atom.expr.terms()) {
      PutVarint64(out, var);
      PutVarintSigned64(out, coeff);
    }
  }
}

Constraint DeserializeConstraint(const uint8_t* data, size_t len) {
  Constraint constraint;
  ByteReader reader(data, len);
  uint64_t count = reader.GetVarint64();
  for (uint64_t i = 0; i < count && reader.ok(); ++i) {
    uint8_t flags = 0;
    if (!reader.GetRaw(&flags, 1)) {
      break;
    }
    if ((flags & 0x80) != 0) {
      constraint.And(Atom::Opaque());
      continue;
    }
    Atom atom;
    atom.cmp = static_cast<Cmp>(flags & 0x7F);
    LinearExpr expr = LinearExpr::Constant(reader.GetVarintSigned64());
    uint64_t terms = reader.GetVarint64();
    for (uint64_t t = 0; t < terms && reader.ok(); ++t) {
      VarId var = static_cast<VarId>(reader.GetVarint64());
      int64_t coeff = reader.GetVarintSigned64();
      expr = expr.Add(LinearExpr::Term(var, coeff));
    }
    atom.expr = std::move(expr);
    constraint.And(std::move(atom));
  }
  return constraint;
}

ExplicitOracle::ExplicitOracle(const Icfet* icfet) : ExplicitOracle(icfet, Options()) {}

ExplicitOracle::ExplicitOracle(const Icfet* icfet, Options options)
    : options_(options),
      decoder_(icfet),
      solver_(options.solver_limits),
      cache_(options.cache_capacity) {}

std::vector<uint8_t> ExplicitOracle::BasePayload(const PathEncoding& enc) {
  std::vector<uint8_t> out;
  enc.Serialize(&out);
  return out;
}

std::vector<uint8_t> ExplicitOracle::TruePayload() {
  std::vector<uint8_t> out;
  PathEncoding::Empty().Serialize(&out);
  return out;
}

std::optional<std::vector<uint8_t>> ExplicitOracle::MergeAndCheck(const uint8_t* a, size_t a_len,
                                                                  const uint8_t* b,
                                                                  size_t b_len) {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.merges;
  WallTimer lookup_timer;
  // Plain byte-level concatenation of the two item sequences: adjust the
  // leading item count, keep everything else verbatim. No fusion, no
  // cancellation — the formula grows with path length.
  ByteReader ra(a, a_len);
  ByteReader rb(b, b_len);
  uint64_t count_a = ra.GetVarint64();
  uint64_t count_b = rb.GetVarint64();
  std::vector<uint8_t> bytes;
  if (count_a + count_b > options_.max_items) {
    // Backstop: keep the first formula, weaken the rest to `true`.
    ByteReader full_a(a, a_len);
    PathEncoding left = PathEncoding::Deserialize(&full_a);
    PathEncoding capped = PathEncoding::Append(left, PathEncoding::Opaque(), options_.max_items);
    capped.Serialize(&bytes);
  } else {
    PutVarint64(&bytes, count_a + count_b);
    bytes.insert(bytes.end(), a + ra.position(), a + a_len);
    bytes.insert(bytes.end(), b + rb.position(), b + b_len);
  }
  std::string key(reinterpret_cast<const char*>(bytes.data()), bytes.size());
  stats_.lookup_seconds += lookup_timer.ElapsedSeconds();

  SolveResult result;
  bool cached = false;
  if (options_.enable_cache) {
    auto hit = cache_.Get(key);
    if (hit.has_value()) {
      ++stats_.cache_hits;
      result = *hit;
      cached = true;
    }
  }
  if (!cached) {
    ++stats_.constraints_checked;
    WallTimer decode_timer;
    ByteReader reader(bytes.data(), bytes.size());
    PathEncoding full = PathEncoding::Deserialize(&reader);
    Constraint constraint = decoder_.Decode(full);
    stats_.lookup_seconds += decode_timer.ElapsedSeconds();
    WallTimer solve_timer;
    result = solver_.Solve(constraint);
    stats_.solve_seconds += solve_timer.ElapsedSeconds();
    if (options_.enable_cache) {
      cache_.Put(key, result);
    }
  }
  if (result == SolveResult::kUnsat) {
    ++stats_.unsat;
    return std::nullopt;
  }
  if (result == SolveResult::kUnknown) {
    ++stats_.unknown;
  }
  return bytes;
}

OracleStats ExplicitOracle::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void ExplicitOracle::ResetStats() {
  std::lock_guard<std::mutex> lock(mu_);
  stats_ = OracleStats();
  cache_.ResetStats();
}

}  // namespace grapple
