#include "src/baseline/traditional.h"

#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/analysis/alias_graph.h"
#include "src/baseline/explicit_oracle.h"
#include "src/cfg/call_graph.h"
#include "src/cfg/loop_unroll.h"
#include "src/grammar/pointsto_grammar.h"
#include "src/graph/edge.h"
#include "src/pathenc/constraint_decoder.h"
#include "src/support/timer.h"
#include "src/symexec/cfet_builder.h"

namespace grapple {

namespace {

// Cap on the stored formula length — a termination backstop far above what
// a memory-budgeted run ever reaches.
constexpr size_t kMaxFormulaItems = 4096;

// An in-memory edge with its constraint held as a separate heap object
// linked by pointer — the representation the paper's traditional
// implementation used. The path sequence rides along so composition can
// rebuild the conjunction with correct per-activation variables.
struct MemEdge {
  VertexId src;
  VertexId dst;
  Label label;
  PathEncoding enc;
  std::shared_ptr<const Constraint> constraint;
};

uint64_t ConstraintBytes(const Constraint& constraint) {
  uint64_t bytes = sizeof(Constraint) + 32;  // allocation + control block
  for (const auto& atom : constraint.atoms()) {
    bytes += sizeof(Atom) + atom.expr.terms().size() * 16;
  }
  return bytes;
}

}  // namespace

TraditionalResult RunTraditionalAliasAnalysis(const Program& input,
                                              const TraditionalOptions& options) {
  TraditionalResult result;
  WallTimer timer;

  // Frontend, identical to Grapple's.
  Program program = input;
  UnrollLoops(&program, options.loop_unroll);
  CallGraph call_graph(program);
  Icfet icfet = BuildIcfet(program, call_graph);

  Grammar grammar;
  std::vector<std::string> fields;
  {
    std::unordered_set<std::string> set;
    std::function<void(const std::vector<Stmt>&)> scan = [&](const std::vector<Stmt>& block) {
      for (const auto& stmt : block) {
        if (stmt.kind == StmtKind::kLoad || stmt.kind == StmtKind::kStore) {
          set.insert(stmt.field);
        }
        scan(stmt.then_block);
        scan(stmt.else_block);
      }
    };
    for (const auto& method : program.methods()) {
      scan(method.body);
    }
    fields.assign(set.begin(), set.end());
  }
  PointsToLabels labels = BuildPointsToGrammar(&grammar, fields);

  CollectingSink sink;
  AliasGraph alias_graph(program, call_graph, icfet, labels, &sink);

  PathDecoder decoder(&icfet);
  Solver solver(options.solver_limits);

  std::vector<MemEdge> edges;
  std::unordered_map<VertexId, std::vector<uint32_t>> out_index;
  std::unordered_map<VertexId, std::vector<uint32_t>> in_index;
  std::unordered_set<uint64_t> dedup;
  std::deque<uint32_t> worklist;
  uint64_t bytes = 0;

  auto add_edge = [&](VertexId src, VertexId dst, Label label, const PathEncoding& enc,
                      std::shared_ptr<const Constraint> constraint) -> bool {
    uint64_t key = EdgeTripleHash(src, dst, label) ^ enc.HashValue();
    if (!dedup.insert(key).second) {
      return false;
    }
    uint32_t idx = static_cast<uint32_t>(edges.size());
    bytes += sizeof(MemEdge) + 64 + enc.size() * sizeof(PathItem) + ConstraintBytes(*constraint);
    edges.push_back({src, dst, label, enc, std::move(constraint)});
    out_index[src].push_back(idx);
    in_index[dst].push_back(idx);
    worklist.push_back(idx);
    return true;
  };

  // Expands unary productions and mirrors for one (src, dst, label, ...)
  // tuple and inserts the closure.
  auto add_closure = [&](VertexId src, VertexId dst, Label label, const PathEncoding& enc,
                         const std::shared_ptr<const Constraint>& constraint) {
    std::vector<std::tuple<VertexId, VertexId, Label>> queue{{src, dst, label}};
    std::unordered_set<uint64_t> seen;
    while (!queue.empty()) {
      auto [s, d, l] = queue.back();
      queue.pop_back();
      if (!seen.insert(EdgeTripleHash(s, d, l)).second) {
        continue;
      }
      add_edge(s, d, l, enc, constraint);
      for (Label unary : grammar.UnaryResults(l)) {
        queue.emplace_back(s, d, unary);
      }
      Label mirror = grammar.MirrorOf(l);
      if (mirror != kNoLabel) {
        queue.emplace_back(d, s, mirror);
      }
    }
  };

  for (const auto& base : sink.edges()) {
    auto constraint = std::make_shared<const Constraint>(decoder.Decode(base.enc));
    add_closure(base.src, base.dst, base.label, base.enc, constraint);
  }

  auto combine = [&](const MemEdge& first, const MemEdge& second) {
    const auto& results = grammar.BinaryResults(first.label, second.label);
    if (results.empty()) {
      return;
    }
    PathEncoding merged_enc = PathEncoding::Append(first.enc, second.enc, kMaxFormulaItems);
    ++result.constraints_solved;
    auto merged = std::make_shared<const Constraint>(decoder.Decode(merged_enc));
    if (solver.Solve(*merged) == SolveResult::kUnsat) {
      return;
    }
    for (Label label : results) {
      add_closure(first.src, second.dst, label, merged_enc, merged);
    }
  };

  while (!worklist.empty()) {
    if (bytes > options.memory_budget_bytes) {
      result.out_of_memory = true;
      break;
    }
    if (timer.ElapsedSeconds() > options.max_seconds) {
      result.timed_out = true;
      break;
    }
    uint32_t idx = worklist.front();
    worklist.pop_front();
    MemEdge edge = edges[idx];  // copy: the vector may grow during combine
    auto out_it = out_index.find(edge.dst);
    if (out_it != out_index.end()) {
      std::vector<uint32_t> successors = out_it->second;
      for (uint32_t next : successors) {
        combine(edge, edges[next]);
      }
    }
    auto in_it = in_index.find(edge.src);
    if (in_it != in_index.end()) {
      std::vector<uint32_t> predecessors = in_it->second;
      for (uint32_t prev : predecessors) {
        combine(edges[prev], edge);
      }
    }
  }

  result.edges = edges.size();
  result.peak_bytes = bytes;
  result.seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace grapple
