// The Table-5 baseline: constraints represented explicitly on every edge.
//
// The paper compares Grapple's interval encoding against a "systemized
// implementation that represents constraints as strings and embeds them
// directly in edges". The essence of that design point is that an edge's
// payload holds the *full formula of its path* — one entry per branch
// condition / parameter equation — so payloads grow with path length, while
// Grapple's interval encoding stays bounded (fusion keeps an
// intraprocedural fragment at one interval; case-3 cancellation drops
// completed callees).
//
// To keep the two configurations semantically identical (so Table 5
// isolates the representation variable and nothing else), this oracle
// stores the uncompacted, unfused condition sequence and evaluates it with
// the same frame-aware decoder Grapple uses: merging is raw concatenation
// (formula conjunction — no fusion, no cancellation), and every check
// decodes and solves the whole accumulated formula.
#ifndef GRAPPLE_SRC_BASELINE_EXPLICIT_ORACLE_H_
#define GRAPPLE_SRC_BASELINE_EXPLICIT_ORACLE_H_

#include <mutex>
#include <string>

#include "src/graph/constraint_oracle.h"
#include "src/pathenc/constraint_decoder.h"
#include "src/pathenc/path_encoding.h"
#include "src/smt/solver.h"
#include "src/support/lru_cache.h"
#include "src/symexec/cfet.h"

namespace grapple {

// Serialization helpers for explicit constraints (used by the traditional
// in-memory baseline to account for formula memory, and by tests).
void SerializeConstraint(const Constraint& constraint, std::vector<uint8_t>* out);
Constraint DeserializeConstraint(const uint8_t* data, size_t len);

class ExplicitOracle : public ConstraintOracle {
 public:
  struct Options {
    size_t cache_capacity = size_t{1} << 16;
    bool enable_cache = true;
    // Termination backstop: payloads beyond this many items weaken to an
    // opaque marker (far above anything the interval codec would keep).
    size_t max_items = 4096;
    SolverLimits solver_limits;
  };

  explicit ExplicitOracle(const Icfet* icfet);
  ExplicitOracle(const Icfet* icfet, Options options);

  std::vector<uint8_t> BasePayload(const PathEncoding& enc) override;
  std::vector<uint8_t> TruePayload() override;
  std::optional<std::vector<uint8_t>> MergeAndCheck(const uint8_t* a, size_t a_len,
                                                    const uint8_t* b, size_t b_len) override;
  OracleStats Stats() const override;
  void ResetStats() override;

 private:
  Options options_;
  mutable std::mutex mu_;
  PathDecoder decoder_;
  Solver solver_;
  LruCache<std::string, SolveResult> cache_;
  OracleStats stats_;
};

}  // namespace grapple

#endif  // GRAPPLE_SRC_BASELINE_EXPLICIT_ORACLE_H_
