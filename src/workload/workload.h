// Synthetic subject-program generator.
//
// The paper evaluates on ZooKeeper, Hadoop, HDFS and HBase. Those Java
// codebases (and the Soot frontend) are out of scope here, so this module
// generates deterministic subjects *shaped* like them: modules of methods
// with integer branching, bounded loops, helper-call chains, heap plumbing
// through holder objects — and, crucially, injected resource-usage patterns
// with known ground truth for the four checkers. Preset configurations
// (ZooKeeperPreset() etc.) scale statement counts to roughly 1/100 of the
// paper's LoC and reuse the paper's per-checker bug counts (Table 2), so
// the reproduction's Table 2/3 keep the original shape at tractable cost.
//
// Ground truth: every injected pattern gets a unique synthetic source line
// on its allocation statement; GroundTruth::Classify matches reports back
// to patterns mechanically.
#ifndef GRAPPLE_SRC_WORKLOAD_WORKLOAD_H_
#define GRAPPLE_SRC_WORKLOAD_WORKLOAD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/checker/checker.h"
#include "src/ir/ir.h"

namespace grapple {

// One injected resource-usage pattern and its ground truth.
struct InjectedPattern {
  std::string checker;  // "io", "lock", "except", "socket"
  // The unique synthetic source line of the pattern's allocation.
  int32_t alloc_line = -1;
  // True when a report on this allocation is a true bug; false when the
  // pattern is benign (a report on it is a false positive).
  bool is_real_bug = false;
  // Whether a report is expected at all. Real bugs: expected. Benign
  // "fp-trap" patterns (e.g. ownership escaping through an external API,
  // the paper's collection/try-with-resources FPs): expected but false.
  // Benign clean/infeasible patterns: not expected.
  bool report_expected = false;
  std::string kind;  // "leak", "double_close", "unlock_order", ...
};

// Per-checker injection counts.
struct BugProfile {
  size_t real = 0;      // true bugs to inject
  size_t fp_traps = 0;  // benign patterns the checker is expected to flag
  size_t clean = 0;     // correct usages (incl. infeasible-path decoys)
};

struct WorkloadConfig {
  std::string name = "custom";
  uint64_t seed = 1;
  // Rough target for Program::TotalStatements() via filler code.
  size_t filler_statements = 1000;
  // Filler shape knobs.
  size_t methods_per_module = 8;
  size_t branch_depth = 3;        // nesting of if's in filler methods
  size_t straightline_run = 6;    // consecutive simple stmts per block
  // Length of the same-block object-copy relay chain in filler methods.
  // Long chains create quadratically many consecutive same-block edge pairs
  // with identical (trivial) constraints — the Hadoop-shaped workload that
  // makes edge computation dominate (Figure 9).
  size_t object_chain_len = 3;
  double loop_prob = 0.15;
  double helper_call_prob = 0.5;
  size_t modules = 4;
  BugProfile io;
  BugProfile lock;
  BugProfile except;
  BugProfile socket;
};

struct Workload {
  WorkloadConfig config;
  Program program;
  std::vector<InjectedPattern> patterns;
  // Analog of the paper's LoC column.
  size_t total_statements = 0;
};

Workload GenerateWorkload(const WorkloadConfig& config);

// The four paper subjects, scaled. `scale` multiplies filler statement
// counts (1.0 = default reproduction scale).
WorkloadConfig ZooKeeperPreset(double scale = 1.0);
WorkloadConfig HadoopPreset(double scale = 1.0);
WorkloadConfig HdfsPreset(double scale = 1.0);
WorkloadConfig HBasePreset(double scale = 1.0);
std::vector<WorkloadConfig> AllPresets(double scale = 1.0);

// Classification of one checker run against the ground truth.
struct Classification {
  size_t true_positives = 0;
  size_t false_positives = 0;
  // Real bugs with no report (missed).
  size_t false_negatives = 0;
  std::vector<std::string> unmatched_reports;  // reports on non-pattern lines
};

// Matches reports (by alloc_line) against the injected patterns of one
// checker.
Classification ClassifyReports(const Workload& workload, const std::string& checker,
                               const std::vector<BugReport>& reports);

}  // namespace grapple

#endif  // GRAPPLE_SRC_WORKLOAD_WORKLOAD_H_
