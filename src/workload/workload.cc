#include "src/workload/workload.h"

#include <set>
#include <unordered_map>

#include "src/ir/builder.h"
#include "src/support/logging.h"
#include "src/support/rng.h"

namespace grapple {

namespace {

class Generator {
 public:
  explicit Generator(const WorkloadConfig& config) : cfg_(config), rng_(config.seed) {}

  Workload Run() {
    // Pattern schedule: round-robin the injections over modules.
    struct Injection {
      const char* checker;
      bool real;
      bool fp_trap;
    };
    std::vector<Injection> schedule;
    auto add = [&](const char* checker, const BugProfile& profile) {
      for (size_t i = 0; i < profile.real; ++i) {
        schedule.push_back({checker, true, false});
      }
      for (size_t i = 0; i < profile.fp_traps; ++i) {
        schedule.push_back({checker, false, true});
      }
      for (size_t i = 0; i < profile.clean; ++i) {
        schedule.push_back({checker, false, false});
      }
    };
    add("io", cfg_.io);
    add("lock", cfg_.lock);
    add("except", cfg_.except);
    add("socket", cfg_.socket);

    size_t modules = cfg_.modules == 0 ? 1 : cfg_.modules;
    std::vector<std::vector<std::string>> module_methods(modules);

    // Emit pattern methods.
    for (size_t i = 0; i < schedule.size(); ++i) {
      const Injection& inj = schedule[i];
      std::string name;
      if (std::string(inj.checker) == "io") {
        name = EmitIoPattern(inj.real, inj.fp_trap);
      } else if (std::string(inj.checker) == "lock") {
        name = EmitLockPattern(inj.real, inj.fp_trap);
      } else if (std::string(inj.checker) == "except") {
        name = EmitExceptPattern(inj.real, inj.fp_trap);
      } else {
        name = EmitSocketPattern(inj.real, inj.fp_trap);
      }
      module_methods[i % modules].push_back(name);
    }

    // Filler code until the statement target is reached.
    size_t module_cursor = 0;
    std::vector<std::vector<std::string>> module_fillers(modules);
    while (program_.TotalStatements() < cfg_.filler_statements) {
      size_t m = module_cursor % modules;
      std::string callee;
      if (!module_fillers[m].empty() && rng_.Chance(cfg_.helper_call_prob)) {
        callee = module_fillers[m].back();
      }
      module_fillers[m].push_back(EmitFillerMethod(callee));
      if (module_fillers[m].size() >= cfg_.methods_per_module) {
        module_methods[m].push_back(module_fillers[m].back());
        module_fillers[m].clear();
      }
      ++module_cursor;
    }
    for (size_t m = 0; m < modules; ++m) {
      if (!module_fillers[m].empty()) {
        module_methods[m].push_back(module_fillers[m].back());
      }
    }

    // Entry methods.
    for (size_t m = 0; m < modules; ++m) {
      MethodBuilder mb("mod" + std::to_string(m) + "_main");
      LocalId x = mb.Int("x");
      mb.Havoc(x);
      for (const auto& callee : module_methods[m]) {
        // Pattern methods take no arguments; filler methods take one int.
        auto callee_id = program_.FindMethod(callee);
        if (callee_id.has_value() && program_.MethodAt(*callee_id).num_params == 1) {
          mb.CallVoid(callee, {x});
        } else {
          mb.CallVoid(callee, {});
        }
      }
      mb.Ret();
      program_.AddMethod(std::move(mb).Build());
    }

    Workload workload;
    workload.config = cfg_;
    workload.total_statements = program_.TotalStatements();
    workload.program = std::move(program_);
    workload.patterns = std::move(patterns_);
    return workload;
  }

 private:
  int32_t NextLine() { return next_line_++; }

  std::string FreshName(const std::string& prefix) {
    return prefix + "_" + std::to_string(method_counter_++);
  }

  void Register(const char* checker, int32_t line, bool real, bool expected,
                const std::string& kind) {
    InjectedPattern pattern;
    pattern.checker = checker;
    pattern.alloc_line = line;
    pattern.is_real_bug = real;
    pattern.report_expected = expected;
    pattern.kind = kind;
    patterns_.push_back(std::move(pattern));
  }

  // --- I/O patterns -------------------------------------------------------

  std::string EmitIoPattern(bool real, bool fp_trap) {
    std::string name = FreshName("io_pat");
    int32_t line = NextLine();
    MethodBuilder mb(name);
    LocalId f = mb.Obj("f", "FileWriter");
    LocalId x = mb.Int("x");
    mb.Havoc(x);
    if (real) {
      switch (rng_.Below(4)) {
        case 0: {  // branch leak: closed only when x > 5
          mb.Alloc(f, "FileWriter");
          mb.SetLine(line);
          mb.Event(f, "open");
          mb.If(CondExpr::Compare(OpLocal(x), IrCmpOp::kGt, OpConst(5)),
                [&](MethodBuilder& b) { b.Event(f, "close"); });
          Register("io", line, true, true, "leak");
          break;
        }
        case 1: {  // double close on a feasible path
          mb.Alloc(f, "FileWriter");
          mb.SetLine(line);
          mb.Event(f, "open");
          mb.Event(f, "close");
          mb.If(CondExpr::Opaque(), [&](MethodBuilder& b) { b.Event(f, "close"); });
          Register("io", line, true, true, "double_close");
          break;
        }
        case 2: {  // interprocedural leak through a helper
          std::string helper = EmitMaybeCloseHelper("FileWriter");
          mb.Alloc(f, "FileWriter");
          mb.SetLine(line);
          mb.Event(f, "open");
          mb.Call(kNoLocal, helper, {f, x});
          Register("io", line, true, true, "leak_interproc");
          break;
        }
        default: {  // write after close
          mb.Alloc(f, "FileWriter");
          mb.SetLine(line);
          mb.Event(f, "open");
          mb.Event(f, "close");
          mb.If(CondExpr::Opaque(), [&](MethodBuilder& b) { b.Event(f, "write"); });
          Register("io", line, true, true, "use_after_close");
          break;
        }
      }
    } else if (fp_trap) {
      // Ownership escapes through an external API that closes the stream
      // later (the paper's try-with-resources / collection FPs). The
      // checker cannot see the external close: a leak report here is a
      // false positive by ground truth.
      mb.Alloc(f, "FileWriter");
      mb.SetLine(line);
      mb.Event(f, "open");
      mb.CallVoid("external_register_stream", {f});
      Register("io", line, false, true, "fp_external_close");
    } else {
      switch (rng_.Below(4)) {
        case 0: {  // straightforward correct usage
          mb.Alloc(f, "FileWriter");
          mb.SetLine(line);
          mb.Event(f, "open");
          mb.If(CondExpr::Compare(OpLocal(x), IrCmpOp::kGt, OpConst(0)),
                [&](MethodBuilder& b) { b.Event(f, "write"); });
          mb.Event(f, "close");
          break;
        }
        case 1: {  // infeasible-leak decoy: both guarded by x >= 0
          mb.If(CondExpr::Compare(OpLocal(x), IrCmpOp::kGe, OpConst(0)),
                [&](MethodBuilder& b) {
                  b.Alloc(f, "FileWriter");
                  b.SetLine(line);
                  b.Event(f, "open");
                });
          mb.If(CondExpr::Compare(OpLocal(x), IrCmpOp::kGe, OpConst(0)),
                [&](MethodBuilder& b) { b.Event(f, "close"); });
          break;
        }
        case 2: {  // correct close through a heap alias
          LocalId holder = mb.Obj("holder", "Holder");
          LocalId g = mb.Obj("g", "FileWriter");
          mb.Alloc(holder, "Holder");
          mb.Alloc(f, "FileWriter");
          mb.SetLine(line);
          mb.Event(f, "open");
          mb.Store(holder, "stream", f);
          mb.Load(g, holder, "stream");
          mb.Event(g, "write");
          mb.Event(g, "close");
          break;
        }
        default: {  // correct close in a callee
          std::string helper = EmitAlwaysCloseHelper("FileWriter");
          mb.Alloc(f, "FileWriter");
          mb.SetLine(line);
          mb.Event(f, "open");
          mb.Call(kNoLocal, helper, {f});
          break;
        }
      }
      Register("io", line, false, false, "clean");
    }
    mb.Ret();
    program_.AddMethod(std::move(mb).Build());
    return name;
  }

  // Helper that closes its parameter only when c > 0.
  std::string EmitMaybeCloseHelper(const std::string& type) {
    std::string name = FreshName("maybe_close");
    MethodBuilder mb(name);
    LocalId g = mb.ObjParam("g", type);
    LocalId c = mb.IntParam("c");
    mb.If(CondExpr::Compare(OpLocal(c), IrCmpOp::kGt, OpConst(0)),
          [&](MethodBuilder& b) { b.Event(g, "close"); });
    mb.Ret();
    program_.AddMethod(std::move(mb).Build());
    return name;
  }

  std::string EmitAlwaysCloseHelper(const std::string& type) {
    std::string name = FreshName("do_close");
    MethodBuilder mb(name);
    LocalId g = mb.ObjParam("g", type);
    mb.Event(g, "write");
    mb.Event(g, "close");
    mb.Ret();
    program_.AddMethod(std::move(mb).Build());
    return name;
  }

  // --- lock patterns ------------------------------------------------------

  std::string EmitLockPattern(bool real, bool fp_trap) {
    std::string name = FreshName("lock_pat");
    int32_t line = NextLine();
    MethodBuilder mb(name);
    LocalId l = mb.Obj("l", "Lock");
    LocalId x = mb.Int("x");
    mb.Havoc(x);
    mb.Alloc(l, "Lock");
    mb.SetLine(line);
    if (real) {
      if (rng_.Below(2) == 0) {
        // Mis-ordered: unlock before lock (the HDFS bug of §5.1).
        mb.Event(l, "unlock");
        mb.Event(l, "lock");
        Register("lock", line, true, true, "unlock_order");
      } else {
        // Lock not released on an early-return-like path.
        mb.Event(l, "lock");
        mb.If(CondExpr::Compare(OpLocal(x), IrCmpOp::kLe, OpConst(100)),
              [&](MethodBuilder& b) { b.Event(l, "unlock"); });
        Register("lock", line, true, true, "lock_leak");
      }
    } else if (fp_trap) {
      mb.Event(l, "lock");
      mb.CallVoid("external_unlock_later", {l});
      Register("lock", line, false, true, "fp_external_unlock");
    } else {
      mb.Event(l, "lock");
      mb.If(CondExpr::Compare(OpLocal(x), IrCmpOp::kGt, OpConst(0)),
            [&](MethodBuilder& b) { b.Bin(x, OpLocal(x), IrBinOp::kSub, OpConst(1)); });
      mb.Event(l, "unlock");
      Register("lock", line, false, false, "clean");
    }
    mb.Ret();
    program_.AddMethod(std::move(mb).Build());
    return name;
  }

  // --- exception patterns -------------------------------------------------

  std::string EmitExceptPattern(bool real, bool fp_trap) {
    std::string name = FreshName("exc_pat");
    int32_t line = NextLine();
    MethodBuilder mb(name);
    LocalId e = mb.Obj("e", "Exception");
    LocalId x = mb.Int("x");
    mb.Havoc(x);
    if (real) {
      // Explicitly thrown exception with no handler on a feasible path
      // (Figure 8b flavor: the interrupt is swallowed).
      mb.If(CondExpr::Opaque(), [&](MethodBuilder& b) {
        b.Alloc(e, "Exception");
        b.SetLine(line);
        b.Event(e, "throw");
      });
      Register("except", line, true, true, "unhandled");
    } else if (fp_trap) {
      // Handled by an external global handler the analysis cannot see.
      mb.Alloc(e, "Exception");
      mb.SetLine(line);
      mb.Event(e, "throw");
      mb.CallVoid("external_global_handler", {e});
      Register("except", line, false, true, "fp_external_handler");
    } else {
      if (rng_.Below(2) == 0) {
        // Thrown and locally handled.
        mb.Alloc(e, "Exception");
        mb.SetLine(line);
        mb.If(CondExpr::Opaque(), [&](MethodBuilder& b) {
          b.Event(e, "throw");
          b.Event(e, "handle");
        });
      } else {
        // Throw guarded by an infeasible condition: x > 10 && x < 5.
        mb.Alloc(e, "Exception");
        mb.SetLine(line);
        mb.If(CondExpr::Compare(OpLocal(x), IrCmpOp::kGt, OpConst(10)),
              [&](MethodBuilder& b) {
                b.If(CondExpr::Compare(OpLocal(x), IrCmpOp::kLt, OpConst(5)),
                     [&](MethodBuilder& c) { c.Event(e, "throw"); });
              });
      }
      Register("except", line, false, false, "clean");
    }
    mb.Ret();
    program_.AddMethod(std::move(mb).Build());
    return name;
  }

  // --- socket patterns ----------------------------------------------------

  std::string EmitSocketPattern(bool real, bool fp_trap) {
    std::string name = FreshName("sock_pat");
    int32_t line = NextLine();
    MethodBuilder mb(name);
    LocalId s = mb.Obj("s", "ServerSocketChannel");
    LocalId x = mb.Int("x");
    mb.Havoc(x);
    mb.Alloc(s, "ServerSocketChannel");
    mb.SetLine(line);
    mb.Event(s, "open");
    if (real) {
      // The Figure 1 reconfigure leak: an exception between open and close
      // leaves the old channel open forever.
      mb.Event(s, "bind");
      mb.Event(s, "configure");
      mb.If(
          CondExpr::Opaque(), [&](MethodBuilder& b) { b.Bin(x, OpLocal(x), IrBinOp::kAdd, OpConst(1)); },
          [&](MethodBuilder& b) { b.Event(s, "close"); });
      Register("socket", line, true, true, "reconfigure_leak");
    } else if (fp_trap) {
      // Stored in an external pool that closes it on shutdown.
      mb.Event(s, "bind");
      mb.CallVoid("external_pool_add", {s});
      Register("socket", line, false, true, "fp_pool");
    } else {
      mb.Event(s, "bind");
      mb.Event(s, "configure");
      mb.Event(s, "accept");
      mb.Event(s, "close");
      Register("socket", line, false, false, "clean");
    }
    mb.Ret();
    program_.AddMethod(std::move(mb).Build());
    return name;
  }

  // --- filler -------------------------------------------------------------

  std::string EmitFillerMethod(const std::string& callee) {
    std::string name = FreshName("filler");
    MethodBuilder mb(name);
    LocalId a = mb.IntParam("a");
    LocalId x = mb.Int("x");
    LocalId y = mb.Int("y");
    LocalId buf = mb.Obj("buf", "Buffer");
    LocalId holder = mb.Obj("holder", "Holder");
    LocalId tmp = mb.Obj("tmp", "Buffer");
    mb.Havoc(x);
    mb.AssignInt(y, OpLocal(a));
    mb.Alloc(buf, "Buffer");
    mb.Alloc(holder, "Holder");
    mb.Store(holder, "data", buf);
    // Same-block object fan-out: `buf` becomes a high-degree hub whose
    // in-edge x out-edge pairs are enumerated by the join loop every round
    // but mostly fail the grammar check — the cheap consecutive-edge-pair
    // flood that makes edge computation dominate on Hadoop-shaped code.
    for (size_t c = 0; c < cfg_.object_chain_len; ++c) {
      LocalId link = mb.Obj("chain" + std::to_string(c), "Buffer");
      mb.Assign(link, buf);
    }
    EmitFillerBlock(mb, cfg_.branch_depth, x, y, a, buf, holder, tmp, callee);
    mb.Ret();
    program_.AddMethod(std::move(mb).Build());
    return name;
  }

  void EmitFillerBlock(MethodBuilder& mb, size_t depth, LocalId x, LocalId y, LocalId a,
                       LocalId buf, LocalId holder, LocalId tmp, const std::string& callee) {
    for (size_t i = 0; i < cfg_.straightline_run; ++i) {
      switch (rng_.Below(5)) {
        case 0:
          mb.Bin(y, OpLocal(y), IrBinOp::kAdd, OpConst(rng_.Range(1, 7)));
          break;
        case 1:
          mb.Bin(x, OpLocal(x), IrBinOp::kSub, OpConst(rng_.Range(1, 3)));
          break;
        case 2:
          mb.Bin(y, OpLocal(x), IrBinOp::kMul, OpConst(2));
          break;
        case 3:
          mb.Load(tmp, holder, "data");
          break;
        default:
          mb.Assign(tmp, buf);
          break;
      }
    }
    if (!callee.empty() && rng_.Chance(cfg_.helper_call_prob)) {
      mb.Call(kNoLocal, callee, {x});
    }
    if (rng_.Chance(cfg_.loop_prob)) {
      mb.While(CondExpr::Compare(OpLocal(x), IrCmpOp::kGt, OpConst(0)), [&](MethodBuilder& b) {
        b.Bin(x, OpLocal(x), IrBinOp::kSub, OpConst(1));
        b.Bin(y, OpLocal(y), IrBinOp::kAdd, OpConst(1));
      });
    }
    if (depth > 0) {
      IrCmpOp op = rng_.Below(2) == 0 ? IrCmpOp::kGt : IrCmpOp::kLe;
      mb.If(CondExpr::Compare(OpLocal(y), op, OpConst(rng_.Range(-5, 20))),
            [&](MethodBuilder& b) {
              EmitFillerBlock(b, depth - 1, x, y, a, buf, holder, tmp, callee);
            },
            [&](MethodBuilder& b) {
              b.Bin(y, OpLocal(y), IrBinOp::kAdd, OpConst(1));
            });
    }
  }

  WorkloadConfig cfg_;
  Rng rng_;
  Program program_;
  std::vector<InjectedPattern> patterns_;
  int32_t next_line_ = 1000;
  size_t method_counter_ = 0;
};

}  // namespace

Workload GenerateWorkload(const WorkloadConfig& config) {
  Generator generator(config);
  return generator.Run();
}

WorkloadConfig ZooKeeperPreset(double scale) {
  WorkloadConfig cfg;
  cfg.name = "zookeeper";
  cfg.seed = 101;
  cfg.filler_statements = static_cast<size_t>(1200 * scale);
  cfg.modules = 4;
  cfg.branch_depth = 3;
  cfg.straightline_run = 5;
  cfg.io = {2, 0, 4};
  cfg.lock = {0, 0, 3};
  cfg.except = {59, 0, 12};
  cfg.socket = {4, 0, 3};
  return cfg;
}

WorkloadConfig HadoopPreset(double scale) {
  WorkloadConfig cfg;
  cfg.name = "hadoop";
  cfg.seed = 202;
  cfg.filler_statements = static_cast<size_t>(3200 * scale);
  cfg.modules = 6;
  // Shallow branching, long straight-line blocks, and wide object fan-out:
  // few distinct path constraints but many consecutive same-block edge
  // pairs, so edge computation dominates (Figure 9's Hadoop bar).
  cfg.branch_depth = 1;
  cfg.straightline_run = 20;
  cfg.object_chain_len = 96;
  cfg.loop_prob = 0.05;
  cfg.io = {0, 0, 4};
  cfg.lock = {0, 0, 3};
  cfg.except = {54, 2, 12};
  cfg.socket = {0, 0, 2};
  return cfg;
}

WorkloadConfig HdfsPreset(double scale) {
  WorkloadConfig cfg;
  cfg.name = "hdfs";
  cfg.seed = 303;
  cfg.filler_statements = static_cast<size_t>(3000 * scale);
  cfg.modules = 6;
  cfg.branch_depth = 3;
  cfg.straightline_run = 6;
  cfg.io = {1, 1, 4};
  cfg.lock = {1, 0, 3};
  cfg.except = {43, 3, 10};
  cfg.socket = {4, 1, 3};
  return cfg;
}

WorkloadConfig HBasePreset(double scale) {
  WorkloadConfig cfg;
  cfg.name = "hbase";
  cfg.seed = 404;
  cfg.filler_statements = static_cast<size_t>(7500 * scale);
  cfg.modules = 10;
  cfg.branch_depth = 3;
  cfg.straightline_run = 6;
  cfg.io = {15, 2, 6};
  cfg.lock = {0, 0, 4};
  cfg.except = {176, 8, 20};
  cfg.socket = {0, 0, 3};
  return cfg;
}

std::vector<WorkloadConfig> AllPresets(double scale) {
  return {ZooKeeperPreset(scale), HadoopPreset(scale), HdfsPreset(scale), HBasePreset(scale)};
}

Classification ClassifyReports(const Workload& workload, const std::string& checker,
                               const std::vector<BugReport>& reports) {
  std::unordered_map<int32_t, const InjectedPattern*> by_line;
  for (const auto& pattern : workload.patterns) {
    if (pattern.checker == checker) {
      by_line[pattern.alloc_line] = &pattern;
    }
  }
  std::set<int32_t> reported_lines;
  Classification result;
  for (const auto& report : reports) {
    if (!reported_lines.insert(report.alloc_line).second) {
      continue;  // one verdict per allocation
    }
    auto it = by_line.find(report.alloc_line);
    if (it == by_line.end()) {
      ++result.false_positives;
      result.unmatched_reports.push_back(report.ToString());
      continue;
    }
    if (it->second->is_real_bug) {
      ++result.true_positives;
    } else {
      ++result.false_positives;
      if (!it->second->report_expected) {
        result.unmatched_reports.push_back("unexpected (path-sensitivity regression?): " +
                                           report.ToString());
      }
    }
  }
  for (const auto& pattern : workload.patterns) {
    if (pattern.checker == checker && pattern.is_real_bug &&
        reported_lines.find(pattern.alloc_line) == reported_lines.end()) {
      ++result.false_negatives;
    }
  }
  return result;
}

}  // namespace grapple
