// Grapple's edge-pair-centric out-of-core computation (§4.3, Figure 7).
//
// The program graph is partitioned on disk by source-vertex interval. Each
// scheduling step loads two partitions, repeatedly joins consecutive edge
// pairs (u -A-> v, v -B-> w) against the grammar, asks the constraint oracle
// whether the combined path is feasible, and adds the induced edge
// u -C-> w. Edges owned by unloaded partitions are buffered and appended as
// deltas; partitions that outgrow the budget are split eagerly. The global
// fixpoint is reached when every partition pair has been processed against
// the latest version of both sides with no new edges produced.
#ifndef GRAPPLE_SRC_GRAPH_ENGINE_H_
#define GRAPPLE_SRC_GRAPH_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/grammar/grammar.h"
#include "src/graph/constraint_oracle.h"
#include "src/graph/edge.h"
#include "src/graph/partition_store.h"
#include "src/obs/metrics.h"
#include "src/obs/provenance.h"
#include "src/obs/statusz.h"
#include "src/pathenc/path_encoding.h"
#include "src/support/budget_arbiter.h"
#include "src/support/task_runtime.h"
#include "src/support/timer.h"

namespace grapple {

struct EngineOptions {
  // Directory for partition files (must exist; caller owns cleanup).
  std::string work_dir;
  // Soft cap on the bytes of edge data held in memory at once (two loaded
  // partitions + induced edges). Partitions target budget/4 so that a pair
  // plus growth fits.
  uint64_t memory_budget_bytes = uint64_t{64} << 20;
  // Non-owning; when set, the lease is the live memory budget instead of
  // memory_budget_bytes: the engine reads its current size every time it
  // checks the soft cap, and tries to borrow (grow the lease) before
  // spilling early under memory pressure. Used by the facade's concurrent
  // checker scheduler so N engines share one analysis-wide budget. The
  // lease must outlive the engine and not be touched by other threads.
  BudgetLease* budget_lease = nullptr;
  // Join-loop parallelism: the frontier is split into this many contiguous
  // shards per round (1 = sequential, 0 = hardware concurrency;
  // GRAPPLE_THREADS overrides — see support/env.h). This is a sharding
  // factor, not a thread count: shard tasks run on `runtime` (below), and
  // because shards are integrated in index order the results are identical
  // for any worker count or steal policy.
  size_t num_threads = 1;
  // Non-owning task runtime that executes the engine's join shards and the
  // partition store's I/O strands. The facade injects its session runtime
  // so engines never own threads; when null (standalone engines in tests,
  // benches, tools) the engine creates a private runtime sized
  // ResolveThreadCount(num_threads), plus one worker for the background
  // I/O lanes when the pipeline is on. Must outlive the engine.
  TaskRuntime* runtime = nullptr;
  // Pipelined partition I/O: write-behind, schedule-driven prefetch, and
  // the compact block file format (see partition_store.h and DESIGN.md).
  // Results are byte-identical either way; GRAPPLE_IO_PIPELINE overrides.
  bool io_pipeline = true;
  // Per-(src,dst,label) cap on distinct payload variants; reaching it
  // widens the triple to the always-true payload. Guarantees termination
  // and bounds path-variant blow-up (engineering addition; see DESIGN.md).
  size_t max_variants_per_triple = 8;
  // Wall-clock cap for Run(); 0 disables. Exceeding it stops the fixpoint
  // early with stats().timed_out set (used by the Table-5 baseline, whose
  // string-style codec may not terminate in reasonable time).
  double max_seconds = 0;
  // Record a derivation-provenance record for every unique edge (base,
  // join, rewrite) into <work_dir>/provenance.bin so witnesses can be
  // decoded after the run. See src/obs/provenance.h and GRAPPLE_WITNESS.
  bool record_provenance = false;
  // Crash-safe checkpoint/resume (DESIGN.md §11): when > 0, Run() publishes
  // a checkpoint manifest into work_dir every `checkpoint_interval`
  // processed pairs (plus one at completion), and Finalize() resumes from a
  // valid manifest instead of starting over — a run killed at any point and
  // rerun with the same inputs and work_dir produces byte-identical
  // results. 0 disables. GRAPPLE_CHECKPOINT / GRAPPLE_CHECKPOINT_INTERVAL
  // override (see support/env.h).
  uint32_t checkpoint_interval = 0;
  // Wall-clock throttle on interval-triggered manifests: once the pair
  // interval is reached, the checkpoint still waits until this many seconds
  // have passed since the last manifest. Bounds checkpoint overhead at
  // roughly (manifest cost / spacing) regardless of how fast pairs drain —
  // without it, cheap pairs at a small interval can spend >20% of the run
  // re-encoding manifests. Completion manifests are never throttled. 0 =
  // checkpoint on every interval hit. GRAPPLE_CHECKPOINT_SPACING overrides.
  double checkpoint_min_spacing_seconds = 1.0;
};

// Engine run statistics. The metrics registry is the source of truth; the
// named fields are a convenience view populated from the merged snapshot
// when the engine finishes (plus mid-ingestion by Finalize), kept for
// existing call sites. `metrics` carries the full snapshot — engine and
// oracle counters, phase timer buckets as "phase_<name>_ns", histograms.
struct EngineStats {
  uint64_t base_edges = 0;
  uint64_t final_edges = 0;
  uint64_t pair_loads = 0;  // "computational iterations" in Table 5 terms
  uint64_t join_rounds = 0;
  uint64_t joins_attempted = 0;
  uint64_t edges_added = 0;
  uint64_t unsat_pruned = 0;
  uint64_t widened_triples = 0;
  uint64_t partition_splits = 0;
  bool timed_out = false;
  size_t num_partitions = 0;
  size_t peak_partitions = 0;
  double preprocess_seconds = 0;
  double compute_seconds = 0;
  OracleStats oracle;
  // "io" / "lookup" / "solve" / "join" buckets (Figure 9).
  std::map<std::string, double> phase_seconds;
  // Full merged snapshot (engine registry + phase timers + oracle).
  obs::MetricsSnapshot metrics;

  // Rebuilds the named fields from `metrics` (counter names as in
  // obs::RenderEngineSummary).
  void SyncFromMetrics();

  // Multi-line human-readable summary (renders from `metrics`).
  std::string ToString() const;
};

// Receives base edges from graph generators. GraphEngine is the production
// sink; baselines (src/baseline) provide in-memory sinks.
class EdgeSink {
 public:
  virtual ~EdgeSink() = default;
  virtual void AddBaseEdge(VertexId src, VertexId dst, Label label, const PathEncoding& enc) = 0;
};

// Buffers base edges in memory (for baselines and tests).
struct CollectedEdge {
  VertexId src;
  VertexId dst;
  Label label;
  PathEncoding enc;
};

class CollectingSink : public EdgeSink {
 public:
  void AddBaseEdge(VertexId src, VertexId dst, Label label, const PathEncoding& enc) override {
    edges_.push_back({src, dst, label, enc});
  }
  const std::vector<CollectedEdge>& edges() const { return edges_; }

 private:
  std::vector<CollectedEdge> edges_;
};

struct GraphEngineIndexHolder;

class GraphEngine : public EdgeSink {
 public:
  // `grammar` and `oracle` must outlive the engine.
  GraphEngine(const Grammar* grammar, ConstraintOracle* oracle, EngineOptions options);
  ~GraphEngine();

  // --- graph ingestion (before Run) ---
  void AddBaseEdge(VertexId src, VertexId dst, Label label, const PathEncoding& enc) override;
  // Declares the vertex count, expands unary/mirror closures over base
  // edges, and spills the initial partitions. Ingestion ends here.
  void Finalize(VertexId num_vertices);

  // Runs the dynamic transitive closure to fixpoint.
  void Run();

  // --- result access (after Run; streams partitions from disk) ---
  void ForEachEdge(const std::function<void(const EdgeRecord&)>& fn);
  void ForEachEdgeWithLabel(Label label, const std::function<void(const EdgeRecord&)>& fn);

  const EngineStats& stats() const { return stats_; }
  size_t NumPartitions() const { return store_.NumPartitions(); }

  // Derivation provenance (when EngineOptions.record_provenance). The log
  // is complete (flushed) once Run() returns.
  bool has_provenance() const { return provenance_ != nullptr; }
  std::string provenance_path() const { return store_.ProvenancePath(); }
  // Feeds the "witness_decode_ns" histogram / "witnesses_decoded_total" counter;
  // called by the checker so decode cost lands in this engine's phase
  // report alongside the recording-side counters.
  void ObserveWitnessDecode(uint64_t nanos);

  // Merged metrics snapshot: engine registry (counters, io_*, gauges) +
  // phase timer buckets (as "phase_<name>_ns") + the oracle's snapshot.
  // Valid any time; complete after Run().
  obs::MetricsSnapshot Metrics() const;

 private:
  class LoadedPair;

  void ProcessPair(size_t pi, size_t pj);
  // The pair the Run() scheduler would pick next if processing (pi, pj)
  // produces no writes: the first stale pair after it in scan order.
  // Feeds the store's prefetcher; returns false when no such pair exists.
  bool PredictNextPair(size_t pi, size_t pj, size_t* next_i, size_t* next_j) const;
  // Current soft memory cap: the lease size when scheduled under a budget
  // arbiter, the static option otherwise.
  uint64_t BudgetBytes() const;
  // Applies unary-production and mirror closure to an edge, collecting all
  // records (including the original, at index 0) into `out`. When
  // `parent_of` is non-null it receives, per record, the index into `out`
  // of the record it was rewritten from (-1 for the input edge) so the
  // caller can emit rewrite provenance.
  void ExpandEdge(const EdgeRecord& edge, std::vector<EdgeRecord>* out,
                  std::vector<int>* parent_of) const;
  // Attempts to restore scheduler/dedup/store/provenance state from the
  // work dir's checkpoint manifest. False (with the engine still pristine)
  // when no manifest exists, it fails validation, or it was produced by a
  // different input (fingerprint mismatch) — the caller starts fresh.
  bool TryResume(VertexId num_vertices);
  // Quiesces the I/O worker, publishes a manifest of the current state
  // (atomic temp + fsync + rename), then deletes retired partition files.
  void WriteCheckpoint();

  const Grammar* grammar_;
  ConstraintOracle* oracle_;
  EngineOptions options_;
  PhaseProfiler profiler_;
  obs::MetricsRegistry metrics_;
  obs::MetricId c_base_edges_;
  obs::MetricId c_final_edges_;
  obs::MetricId c_pair_loads_;
  obs::MetricId c_join_rounds_;
  obs::MetricId c_joins_attempted_;
  obs::MetricId c_edges_added_;
  obs::MetricId c_unsat_pruned_;
  obs::MetricId c_widened_triples_;
  obs::MetricId c_partition_splits_;
  obs::MetricId c_budget_borrows_;
  obs::MetricId c_preprocess_ns_;
  obs::MetricId c_compute_ns_;
  obs::MetricId h_join_round_joins_;
  obs::MetricId c_witnesses_decoded_;
  obs::MetricId h_witness_decode_ns_;
  obs::MetricId c_ckpt_written_;
  obs::MetricId c_ckpt_bytes_;
  obs::MetricId c_runs_resumed_;
  // Scheduling. `owned_runtime_` is only set when the caller injected none;
  // `runtime_` is the one in use either way. Declared before store_ so the
  // store (whose strands run on the runtime) is destroyed first.
  std::unique_ptr<TaskRuntime> owned_runtime_;
  TaskRuntime* runtime_;
  // Deterministic shard count for the join loop (see EngineOptions).
  size_t join_shards_;
  PartitionStore store_;
  std::unique_ptr<obs::ProvenanceWriter> provenance_;
  EngineStats stats_;

  std::vector<EdgeRecord> pending_base_;
  std::unique_ptr<GraphEngineIndexHolder> index_;
  bool finalized_ = false;

  // Pair-scheduling bookkeeping: versions of (pi, pj) when last processed.
  std::map<std::pair<size_t, size_t>, std::pair<uint64_t, uint64_t>> pair_done_;

  // Checkpoint bookkeeping (only used when options_.checkpoint_interval>0).
  uint64_t base_fingerprint_ = 0;  // identifies the input; pinned in manifests
  uint32_t pairs_since_checkpoint_ = 0;
  WallTimer since_last_checkpoint_;

  // Live cursor for /statusz, written by the Run() thread with relaxed
  // stores and read by the scrape thread. kNoLivePair = idle.
  static constexpr uint64_t kNoLivePair = UINT64_MAX;
  std::atomic<uint64_t> live_pair_{kNoLivePair};  // pi << 32 | pj
  std::atomic<uint64_t> live_pairs_done_{0};
  std::atomic<uint64_t> live_ckpts_published_{0};
  std::atomic<uint64_t> live_budget_bytes_{0};  // mirrors the lease across borrows

  // Introspection registrations. Declared last on purpose: destroyed (and
  // therefore unregistered) before any member their callbacks read.
  obs::Introspection::Handle introspect_metrics_;
  obs::Introspection::Handle introspect_status_;
};

}  // namespace grapple

#endif  // GRAPPLE_SRC_GRAPH_ENGINE_H_
