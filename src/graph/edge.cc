#include "src/graph/edge.h"

namespace grapple {

void SerializeEdge(const EdgeRecord& edge, std::vector<uint8_t>* out) {
  PutVarint64(out, edge.src);
  PutVarint64(out, edge.dst);
  PutVarint64(out, edge.label);
  PutVarint64(out, edge.payload.size());
  out->insert(out->end(), edge.payload.begin(), edge.payload.end());
}

bool DeserializeEdge(ByteReader* reader, EdgeRecord* edge) {
  if (reader->AtEnd() || !reader->ok()) {
    return false;
  }
  edge->src = static_cast<VertexId>(reader->GetVarint64());
  edge->dst = static_cast<VertexId>(reader->GetVarint64());
  edge->label = static_cast<Label>(reader->GetVarint64());
  uint64_t len = reader->GetVarint64();
  // Bounds-check before resize: a corrupt length varint must not drive a
  // multi-gigabyte allocation.
  if (!reader->ok() || len > reader->remaining()) {
    return false;
  }
  edge->payload.resize(len);
  if (len > 0 && !reader->GetRaw(edge->payload.data(), len)) {
    return false;
  }
  return true;
}

namespace {

inline uint64_t Fnv1a(uint64_t h, uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    h = (h ^ ((value >> (8 * i)) & 0xFF)) * 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

uint64_t EdgeContentHash(VertexId src, VertexId dst, Label label, const uint8_t* payload,
                         size_t payload_len) {
  uint64_t h = 0xcbf29ce484222325ULL;
  h = Fnv1a(h, src);
  h = Fnv1a(h, dst);
  h = Fnv1a(h, label);
  for (size_t i = 0; i < payload_len; ++i) {
    h = (h ^ payload[i]) * 0x100000001b3ULL;
  }
  return h;
}

uint64_t EdgeTripleHash(VertexId src, VertexId dst, Label label) {
  uint64_t h = 0x84222325cbf29ce4ULL;
  h = Fnv1a(h, src);
  h = Fnv1a(h, dst);
  h = Fnv1a(h, label);
  return h;
}

}  // namespace grapple
