// Compact on-disk block format for edge-partition files (format v1).
//
// A block-format file is a 5-byte header ("GRPB" magic + format version)
// followed by a sequence of self-checking blocks. Every write (initial
// layout, rewrite, append) emits exactly one block:
//
//   varint edge_count               (> 0; empty writes emit no block)
//   varint payload_count            (unique payloads referenced by the block)
//   varint body_len                 (bytes of the body that follows)
//   body:
//     payload table, payload_count entries, each
//       varint shared_prefix_len    (bytes shared with the previous entry)
//       varint suffix_len, suffix bytes
//     edge list, edge_count entries, each
//       zigzag varint src delta     (vs. the previous edge's src; base 0)
//       zigzag varint dst - src
//       varint label
//       varint payload table index
//   fixed64 FNV-1a checksum of the body bytes
//
// Payloads are deduplicated per block (edges routinely share identical path
// encodings — e.g. every widened triple carries the always-true payload) and
// the table is sorted so prefix compression bites on near-identical
// encodings; that is where most of the size reduction comes from. The delta
// varint edge fields shave the fixed per-record overhead on top.
//
// Decoding auto-detects the legacy raw format (a bare SerializeEdge stream,
// no magic), so a store can always read back whatever an earlier
// configuration wrote. All decode failures are reported as descriptive
// errors naming the file, the byte offset, and the nature of the corruption
// (truncation, checksum mismatch, implausible structure) instead of
// producing garbage edges.
#ifndef GRAPPLE_SRC_GRAPH_PARTITION_CODEC_H_
#define GRAPPLE_SRC_GRAPH_PARTITION_CODEC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/graph/edge.h"

namespace grapple {

inline constexpr uint8_t kBlockFormatVersion = 1;
inline constexpr size_t kBlockFileHeaderSize = 5;  // 4-byte magic + version

// Outcome of decoding a partition file. When !ok, `error` is a full
// diagnostic (path, offset, cause) suitable for a fatal log.
struct PartitionDecodeStatus {
  bool ok = true;
  std::string error;
};

// Appends the block-format file header (magic + version).
void AppendBlockFileHeader(std::vector<uint8_t>* out);

// True when `bytes` starts with the block-format magic.
bool HasBlockFileHeader(const std::vector<uint8_t>& bytes);

// Encodes `edges` as one block appended to `*out`. No-op for empty input.
// When non-null, `*raw_bytes` receives the size the same edges occupy in the
// legacy raw record format (for compression-ratio accounting).
void AppendEdgeBlock(const std::vector<EdgeRecord>& edges, std::vector<uint8_t>* out,
                     uint64_t* raw_bytes);

// Size of `edges` in the legacy raw record format, without serializing.
uint64_t RawFormatBytes(const std::vector<EdgeRecord>& edges);

// Decodes a whole partition file — block format v1 or legacy raw, detected
// by the magic — appending to `*edges`. `path` is used only for error
// messages. On failure `*edges` may hold a decoded prefix; callers should
// treat the file as unusable.
PartitionDecodeStatus DecodePartitionBytes(const std::string& path,
                                           const std::vector<uint8_t>& bytes,
                                           std::vector<EdgeRecord>* edges);

}  // namespace grapple

#endif  // GRAPPLE_SRC_GRAPH_PARTITION_CODEC_H_
