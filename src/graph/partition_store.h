// On-disk edge partitions (§4.3, "Graph Engine").
//
// The vertex space is split into logical intervals; a partition holds every
// edge whose source vertex falls in its interval, as one append-friendly
// binary file under the engine's work directory. New edges destined for a
// partition that is not loaded are appended as deltas; rewriting a partition
// compacts base + deltas. Oversized partitions are split ("repartitioning")
// so that any two partitions still fit the memory budget together.
#ifndef GRAPPLE_SRC_GRAPH_PARTITION_STORE_H_
#define GRAPPLE_SRC_GRAPH_PARTITION_STORE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/graph/edge.h"
#include "src/obs/metrics.h"
#include "src/support/timer.h"

namespace grapple {

struct PartitionInfo {
  VertexId lo = 0;  // interval [lo, hi)
  VertexId hi = 0;
  std::string path;
  uint64_t bytes = 0;
  uint64_t edges = 0;
  uint64_t version = 0;  // bumped on every write/append
  // Append history: (version, cumulative edge count) after each mutation.
  // Lets the engine compute, for a partition-pair last processed at version
  // V, which loaded edges are new since then (delta-frontier joins).
  std::vector<std::pair<uint64_t, uint64_t>> segments;
};

class PartitionStore {
 public:
  // `dir` must exist; `profiler` (optional) receives "io" time; `metrics`
  // (optional) receives io_* counters (bytes and operation counts).
  PartitionStore(std::string dir, PhaseProfiler* profiler,
                 obs::MetricsRegistry* metrics = nullptr);

  // Creates the initial layout from base edges, targeting `target_bytes`
  // per partition. Consumes `edges`.
  void Initialize(std::vector<EdgeRecord> edges, VertexId num_vertices, uint64_t target_bytes);

  size_t NumPartitions() const { return partitions_.size(); }
  const PartitionInfo& Info(size_t index) const { return partitions_[index]; }
  VertexId num_vertices() const { return num_vertices_; }

  // Where the engine's derivation-provenance log lives: next to the
  // partition files, so one work dir holds a run's full on-disk state.
  std::string ProvenancePath() const { return dir_ + "/provenance.bin"; }

  // Index of the partition owning vertex `v`.
  size_t PartitionOf(VertexId v) const;

  // Reads a partition (base file including appended deltas).
  std::vector<EdgeRecord> Load(size_t index);

  // Rewrites a partition's file with exactly `edges`.
  void Rewrite(size_t index, const std::vector<EdgeRecord>& edges);

  // Appends delta edges (already owned by this partition).
  void Append(size_t index, const std::vector<EdgeRecord>& edges);

  // Replaces partition `index` with >= 2 partitions of roughly
  // `target_bytes` each, redistributing `edges` (which must all belong to
  // the partition's interval). No-op (plain rewrite) when the interval has
  // a single vertex or the data fits. Returns the number of partitions the
  // interval now spans.
  size_t SplitAndRewrite(size_t index, std::vector<EdgeRecord> edges, uint64_t target_bytes);

  // Cumulative edge count of partition `index` as of `version` (0 when the
  // partition's history does not reach back that far, e.g. after a split).
  uint64_t EdgesAtVersion(size_t index, uint64_t version) const;

  uint64_t TotalBytes() const;
  uint64_t TotalEdges() const;

 private:
  std::string FileFor(VertexId lo) const;
  void WriteEdges(const std::string& path, const std::vector<EdgeRecord>& edges, uint64_t* bytes);

  std::string dir_;
  PhaseProfiler* profiler_;
  obs::MetricsRegistry* metrics_;
  obs::MetricId c_bytes_read_ = obs::kInvalidMetric;
  obs::MetricId c_bytes_written_ = obs::kInvalidMetric;
  obs::MetricId c_loads_ = obs::kInvalidMetric;
  obs::MetricId c_writes_ = obs::kInvalidMetric;
  obs::MetricId c_appends_ = obs::kInvalidMetric;
  obs::MetricId c_splits_ = obs::kInvalidMetric;
  VertexId num_vertices_ = 0;
  std::vector<PartitionInfo> partitions_;  // sorted by lo, contiguous
  uint64_t file_counter_ = 0;
};

}  // namespace grapple

#endif  // GRAPPLE_SRC_GRAPH_PARTITION_STORE_H_
