// On-disk edge partitions (§4.3, "Graph Engine").
//
// The vertex space is split into logical intervals; a partition holds every
// edge whose source vertex falls in its interval, as one append-friendly
// binary file under the engine's work directory. New edges destined for a
// partition that is not loaded are appended as deltas; rewriting a partition
// compacts base + deltas. Oversized partitions are split ("repartitioning")
// so that any two partitions still fit the memory budget together.
//
// Pipelined mode (see DESIGN.md, "Pipelined partition I/O"): when enabled,
// every disk operation runs as a background task on the shared TaskRuntime
// (DESIGN.md §14) — Rewrite/Append/SplitAndRewrite hand their edges to a
// write-behind task, which encodes them (compact block format,
// src/graph/partition_codec.h) and writes the file; Hint() queues
// prefetch-lane read-ahead of upcoming partitions into a budget-bounded
// cache — the same cache that retains just-written partition images
// (write-back), so a Load of recently written or hinted data never touches
// disk; a cold miss reads in the foreground, waiting first only when the
// file itself has queued writes (tracked per path). Every task is submitted
// onto the runtime's per-file serial strand (SubmitSerial keyed by path),
// so a queued read always observes every earlier queued write to the same
// file — different files proceed in parallel, but per-file order is the
// legacy 1-thread-FIFO order, and results stay byte-identical to the
// synchronous path. Metadata (bytes/edges/version/segments) is updated at
// enqueue time on the caller's thread — charged at raw-format size in both
// modes, so partition layout decisions are mode-independent — and is never
// touched by background tasks.
#ifndef GRAPPLE_SRC_GRAPH_PARTITION_STORE_H_
#define GRAPPLE_SRC_GRAPH_PARTITION_STORE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/graph/checkpoint.h"
#include "src/graph/edge.h"
#include "src/obs/metrics.h"
#include "src/obs/statusz.h"
#include "src/support/budget_arbiter.h"
#include "src/support/task_runtime.h"
#include "src/support/timer.h"

namespace grapple {

struct PartitionInfo {
  VertexId lo = 0;  // interval [lo, hi)
  VertexId hi = 0;
  std::string path;
  uint64_t bytes = 0;
  uint64_t edges = 0;
  uint64_t version = 0;  // bumped on every write/append
  // Append history: (version, cumulative edge count) after each mutation.
  // Lets the engine compute, for a partition-pair last processed at version
  // V, which loaded edges are new since then (delta-frontier joins).
  std::vector<std::pair<uint64_t, uint64_t>> segments;
};

// Pipelining knobs, normally filled in from EngineOptions. Default
// construction means fully synchronous legacy behavior (raw record files,
// no worker thread) — what existing tests construct.
struct PartitionStorePipeline {
  // Enables write-behind + prefetch + the compact block format.
  bool enabled = false;
  // Optional shared budget (must outlive the store; only ever touched from
  // the store's owning thread): the prefetch cache tries to grow the lease
  // before turning a Hint away. May be null even when enabled.
  BudgetLease* budget_lease = nullptr;
  // Fallback budget when no lease is present. The prefetch cache is sized
  // at budget/4 — one partition-target's worth of read-ahead.
  uint64_t budget_bytes = uint64_t{64} << 20;
  // Scheduler that executes the store's per-file I/O strands (non-owning;
  // must outlive the store). Null with `enabled` set means the store spins
  // up a private single-worker runtime — the standalone-test configuration.
  TaskRuntime* runtime = nullptr;
};

class PartitionStore {
 public:
  // `dir` must exist; `profiler` (optional) receives "io" time (foreground
  // blocking time only — background worker time is deliberately excluded);
  // `metrics` (optional) receives io_* counters (bytes and operation
  // counts), which keep their on-disk meaning in both modes.
  PartitionStore(std::string dir, PhaseProfiler* profiler,
                 obs::MetricsRegistry* metrics = nullptr,
                 PartitionStorePipeline pipeline = {});
  ~PartitionStore();

  // Creates the initial layout from base edges, targeting `target_bytes`
  // per partition. Consumes `edges`.
  void Initialize(std::vector<EdgeRecord> edges, VertexId num_vertices, uint64_t target_bytes);

  size_t NumPartitions() const { return partitions_.size(); }
  const PartitionInfo& Info(size_t index) const { return partitions_[index]; }
  VertexId num_vertices() const { return num_vertices_; }
  bool pipeline_enabled() const { return pipeline_.enabled; }

  // Where the engine's derivation-provenance log lives: next to the
  // partition files, so one work dir holds a run's full on-disk state.
  std::string ProvenancePath() const { return dir_ + "/provenance.bin"; }

  // Index of the partition owning vertex `v`.
  size_t PartitionOf(VertexId v) const;

  // Reads a partition (base file including appended deltas). In pipelined
  // mode the prefetch cache is consulted first; a miss waits out the file's
  // own strand (so pending writes to it land) and reads in the foreground.
  std::vector<EdgeRecord> Load(size_t index);

  // Rewrites a partition's file with exactly `edges`.
  void Rewrite(size_t index, const std::vector<EdgeRecord>& edges);

  // Appends delta edges (already owned by this partition).
  void Append(size_t index, const std::vector<EdgeRecord>& edges);

  // Replaces partition `index` with >= 2 partitions of roughly
  // `target_bytes` each, redistributing `edges` (which must all belong to
  // the partition's interval). No-op (plain rewrite) when the interval has
  // a single vertex or the data fits. Returns the number of partitions the
  // interval now spans.
  size_t SplitAndRewrite(size_t index, std::vector<EdgeRecord> edges, uint64_t target_bytes);

  // Read-ahead hint: the engine expects to Load these partitions soon.
  // Queues prefetch-lane reads (behind each file's pending writes, so they
  // see current data) into the cache, as capacity — possibly borrowed from
  // the budget lease — allows. No-op when pipelining is off.
  void Hint(const std::vector<size_t>& next_indices);

  // Barrier: blocks until every queued write/read has hit the filesystem
  // or the cache. Cheap when the queue is empty. No-op when pipelining is
  // off. Counted as foreground "io" time. Throws IoError if any background
  // write failed since the last barrier (see also Load).
  void Sync();

  // --- checkpoint / recovery support (DESIGN.md §11) ---

  // Must be called before Initialize()/RestoreFromCheckpoint(). In
  // checkpoint mode, Rewrite and SplitAndRewrite never mutate or delete a
  // file the last published manifest references (see
  // MarkCheckpointPublished): such files are replaced by fresh generations
  // and retired, deleted only by CollectGarbage() once the next manifest —
  // which no longer references them — has been published. Files no
  // manifest points at are rewritten in place: a crash can only corrupt
  // state recovery never reads (restore deletes unreferenced strays), and
  // skipping the generation churn keeps checkpoint-mode rewrites at
  // non-checkpoint cost between manifests.
  void SetCheckpointMode(bool enabled) { checkpoint_mode_ = enabled; }

  // Pins the current partition files as "referenced by a published
  // manifest". The engine calls this right after a manifest naming exactly
  // these files lands on disk (no mutations happen between the snapshot
  // and the publish). RestoreFromCheckpoint pins the restored files for
  // the same reason: the manifest that described them is still live.
  void MarkCheckpointPublished();

  uint64_t file_counter() const { return file_counter_; }

  // Captures the current layout for a manifest, including each file's
  // on-disk size (the truncation point for recovery). Caller must Sync()
  // first so the sizes are final.
  std::vector<CheckpointPartition> SnapshotForCheckpoint() const;

  // Rebuilds the layout from a manifest: truncates every referenced file
  // back to its recorded size (dropping bytes a crashed run appended past
  // the manifest), deletes unreferenced part-*.edges strays, and restores
  // the counters. On failure (referenced file missing or shorter than
  // recorded) the store is left empty and *error describes the problem —
  // the caller falls back to a clean start.
  bool RestoreFromCheckpoint(const std::vector<CheckpointPartition>& partitions,
                             uint64_t file_counter, VertexId num_vertices, std::string* error);

  // Deletes files retired since the last call. Only valid right after a
  // Sync() + manifest publish: retired paths must have no queued writes,
  // and must no longer be referenced by the on-disk manifest.
  void CollectGarbage();

  // Removes all engine-owned state from the work dir (partition files,
  // manifest + temp, provenance log) so a fresh run cannot be confused by
  // a dead run's leftovers. The fresh-start path when no usable manifest
  // exists.
  void CleanWorkDirForFreshStart();

  // Cumulative edge count of partition `index` as of `version` (0 when the
  // partition's history does not reach back that far, e.g. after a split).
  uint64_t EdgesAtVersion(size_t index, uint64_t version) const;

  uint64_t TotalBytes() const;
  uint64_t TotalEdges() const;

 private:
  // A cached partition image, keyed by file path. Two origins: write-back
  // (Rewrite/Initialize/Split install the just-written content, sharing the
  // vector with the queued encode+write — no copy) and prefetch (Hint
  // queues a read; the worker fills `edges` and flips `ready`). The
  // foreground invalidates entries whose source file is mutated or
  // replaced; the shared_ptr keeps a vector alive for an in-flight encode
  // even after its entry is gone.
  struct CacheEntry {
    uint64_t version = 0;        // partition version captured at insert
    uint64_t charge = 0;         // bytes charged against the cache budget
    bool ready = false;          // content present (always true: write-back)
    bool failed = false;         // prefetch read/decode failed; Load falls back
    bool from_prefetch = false;  // attributes hits/waste to the right counter
    uint64_t hits = 0;
    std::shared_ptr<const std::vector<EdgeRecord>> edges;
  };

  std::string FileFor(VertexId lo) const;
  // Writes `edges` to the file (`rewrite` truncates, else appends) — either
  // synchronously in raw format, or queued to the worker which encodes the
  // block format and writes behind the caller's back. Returns the
  // raw-format byte count in both modes (the metadata charge), so layout
  // decisions never depend on the mode; on-disk counters (io_bytes_written,
  // io_compressed_bytes) are bumped where the write actually happens.
  // `content` (optional, pipelined mode only) receives shared ownership of
  // the written edges, for the caller to install as a write-back cache
  // entry once it knows the new partition version.
  uint64_t WriteOrQueue(const std::string& path, std::vector<EdgeRecord> edges, bool rewrite,
                        const char* span_name,
                        std::shared_ptr<const std::vector<EdgeRecord>>* content = nullptr);
  void WriteEdges(const std::string& path, std::vector<EdgeRecord> edges, uint64_t* bytes,
                  std::shared_ptr<const std::vector<EdgeRecord>>* content = nullptr);
  // Installs a ready write-back entry for `path` at `version`, if the cache
  // has room. No-op in legacy mode or when `content` is null.
  void CachePut(const std::string& path, uint64_t version, uint64_t charge,
                std::shared_ptr<const std::vector<EdgeRecord>> content);
  // Queues `fn` on `path`'s serial strand in `lane`, maintaining the
  // queue-depth gauge and the per-path pending-op count Sync() drains. The
  // task body re-installs the submitting thread's checker context plus an
  // "io" profiler phase so samples taken on a shared worker attribute to
  // the right (checker, io) bucket.
  void Enqueue(const std::string& path, TaskLane lane, std::function<void()> fn);
  // Blocks until `path`'s strand is empty (no-op when it already is).
  // Blocked time is bracketed as kWaitIoQueue — the Load() wait.
  void WaitForPath(const std::string& path);
  // Waits out every path with queued work (bracketed as kWaitIoBarrier).
  // The Sync()/destructor drain.
  void DrainAll();
  // Drops the cache entry for `path` (if any), counting it as wasted when
  // it was never consumed. Caller holds no locks.
  void InvalidateCache(const std::string& path);
  // Decodes partition bytes, throwing IoError with the decoded diagnostic
  // on corruption.
  std::vector<EdgeRecord> DecodeOrThrow(const std::string& path,
                                        const std::vector<uint8_t>& bytes,
                                        uint64_t edges_hint) const;
  uint64_t CacheCapacity() const;
  // Records the first background write failure; surfaced by Sync()/Load().
  void RecordIoError(const std::string& message);
  // Throws IoError carrying the first recorded background failure, if any.
  void ThrowIfIoError();

  std::string dir_;
  PhaseProfiler* profiler_;
  obs::MetricsRegistry* metrics_;
  obs::MetricId c_bytes_read_ = obs::kInvalidMetric;
  obs::MetricId c_bytes_written_ = obs::kInvalidMetric;
  obs::MetricId c_loads_ = obs::kInvalidMetric;
  obs::MetricId c_writes_ = obs::kInvalidMetric;
  obs::MetricId c_appends_ = obs::kInvalidMetric;
  obs::MetricId c_splits_ = obs::kInvalidMetric;
  obs::MetricId c_compressed_bytes_ = obs::kInvalidMetric;
  obs::MetricId c_prefetch_hits_ = obs::kInvalidMetric;
  obs::MetricId c_write_cache_hits_ = obs::kInvalidMetric;
  obs::MetricId c_prefetch_wasted_ = obs::kInvalidMetric;
  obs::MetricId c_prefetch_issued_ = obs::kInvalidMetric;
  obs::MetricId c_cache_borrows_ = obs::kInvalidMetric;
  PartitionStorePipeline pipeline_;
  VertexId num_vertices_ = 0;
  std::vector<PartitionInfo> partitions_;  // sorted by lo, contiguous
  uint64_t file_counter_ = 0;
  bool checkpoint_mode_ = false;
  // Paths replaced while in checkpoint mode, awaiting CollectGarbage().
  std::vector<std::string> retired_;
  // Paths the last published manifest references (foreground-only, like
  // all partition metadata). Only these need copy-on-write rewrites.
  std::unordered_set<std::string> pinned_;
  // First background-write failure message, surfaced at the next barrier
  // instead of being dropped on the worker thread. Guarded by its mutex
  // (the worker writes, the foreground reads).
  std::mutex io_error_mutex_;
  std::string io_error_;

  // --- pipelined-mode state. `cache_mutex_` guards `cache_`,
  // `pending_writes_`, and `pending_ops_`; everything else below is
  // foreground-only. The destructor drains every strand (DrainAll) while
  // the rest of the store is alive; the owned fallback runtime is the last
  // member so its worker joins happen before anything else is torn down.
  std::mutex cache_mutex_;
  std::unordered_map<std::string, CacheEntry> cache_;
  // Count of queued-but-unfinished writes per file. A Load miss only has to
  // wait out the file's strand when it appears here; otherwise the on-disk
  // bytes are complete and the read can proceed immediately.
  std::unordered_map<std::string, uint64_t> pending_writes_;
  // Count of queued-but-unfinished tasks of any kind (write, prefetch read,
  // deferred delete) per file: the work list Sync() and the destructor
  // drain. Superset of pending_writes_.
  std::unordered_map<std::string, uint64_t> pending_ops_;
  uint64_t cache_bytes_ = 0;     // foreground-only: sum of charges
  uint64_t cache_borrowed_ = 0;  // capacity borrowed from the lease
  std::atomic<int64_t> queue_depth_{0};
  // Mirror of cache_bytes_ for the /statusz sampler thread: cache_bytes_
  // itself is foreground-only, so scrapes read this relaxed copy instead.
  std::atomic<uint64_t> live_cache_bytes_{0};
  // Introspection registrations. Declared after the atomics they read (so
  // they unregister first in reverse destruction order) but before the
  // runtime members: the gauge callbacks never touch the runtime.
  obs::Introspection::Handle introspect_queue_depth_;
  obs::Introspection::Handle introspect_cache_bytes_;
  // Strand executor: `runtime_` points at pipeline_.runtime when the owner
  // shared one, else at the private fallback. Null iff pipelining is off.
  std::unique_ptr<TaskRuntime> owned_runtime_;
  TaskRuntime* runtime_ = nullptr;
};

}  // namespace grapple

#endif  // GRAPPLE_SRC_GRAPH_PARTITION_STORE_H_
