#include "src/graph/constraint_oracle.h"

#include <chrono>
#include <cmath>
#include <thread>

#include "src/obs/trace.h"
#include "src/support/event_hook.h"

namespace grapple {

namespace {

uint64_t SecondsToNanos(double seconds) {
  return seconds <= 0 ? 0 : static_cast<uint64_t>(std::llround(seconds * 1e9));
}

}  // namespace

obs::MetricsSnapshot OracleStats::ToSnapshot() const {
  obs::MetricsSnapshot snapshot;
  snapshot.counters["oracle_merges_total"] = merges;
  snapshot.counters["oracle_constraints_checked_total"] = constraints_checked;
  snapshot.counters["oracle_cache_hits_total"] = cache_hits;
  snapshot.counters["oracle_unsat_total"] = unsat;
  snapshot.counters["oracle_unknown_total"] = unknown;
  snapshot.counters["oracle_lookup_ns"] = SecondsToNanos(lookup_seconds);
  snapshot.counters["oracle_solve_ns"] = SecondsToNanos(solve_seconds);
  return snapshot;
}

IntervalOracle::IntervalOracle(const Icfet* icfet) : IntervalOracle(icfet, Options()) {}

IntervalOracle::IntervalOracle(const Icfet* icfet, Options options)
    : options_(options),
      decoder_(icfet),
      solver_(options.solver_limits),
      cache_(options.cache_capacity),
      c_merges_(metrics_.Counter("oracle_merges_total")),
      c_checked_(metrics_.Counter("oracle_constraints_checked_total")),
      c_cache_hits_(metrics_.Counter("oracle_cache_hits_total")),
      c_unsat_(metrics_.Counter("oracle_unsat_total")),
      c_unknown_(metrics_.Counter("oracle_unknown_total")),
      c_lookup_ns_(metrics_.Counter("oracle_lookup_ns")),
      c_solve_ns_(metrics_.Counter("oracle_solve_ns")),
      h_solve_ns_(metrics_.Histogram("oracle_solve_ns")) {}

std::vector<uint8_t> IntervalOracle::BasePayload(const PathEncoding& enc) {
  std::vector<uint8_t> out;
  enc.Serialize(&out);
  return out;
}

std::vector<uint8_t> IntervalOracle::TruePayload() {
  return BasePayload(PathEncoding::Empty());
}

SolveResult IntervalOracle::CheckEncodingLocked(const PathEncoding& enc, const std::string& key) {
  if (options_.enable_cache) {
    auto cached = cache_.Get(key);
    if (cached.has_value()) {
      metrics_.Add(c_cache_hits_);
      return *cached;
    }
  }
  metrics_.Add(c_checked_);
  WallTimer decode_timer;
  Constraint constraint = decoder_.Decode(enc);
  metrics_.AddNanos(c_lookup_ns_, decode_timer.ElapsedNanos());
  WallTimer solve_timer;
  SolveResult result = solver_.Solve(constraint);
  if (options_.simulated_solve_latency_us > 0) {
    if (options_.simulated_solve_blocks) {
      // Sleep: an out-of-process solver holds the request; this core is
      // free for other checkers' work meanwhile. Bracketed as a solve wait
      // so the sampling profiler books the blocked time off-CPU.
      evt::Emit(evt::kWaitBegin, evt::kWaitSolve);
      std::this_thread::sleep_for(std::chrono::microseconds(options_.simulated_solve_latency_us));
      evt::Emit(evt::kWaitEnd, evt::kWaitSolve);
    } else {
      double target = options_.simulated_solve_latency_us * 1e-6;
      while (solve_timer.ElapsedSeconds() < target) {
        // busy-wait: models an in-process solver burning this core
      }
    }
  }
  uint64_t solve_nanos = solve_timer.ElapsedNanos();
  metrics_.AddNanos(c_solve_ns_, solve_nanos);
  metrics_.Observe(h_solve_ns_, solve_nanos);
  if (result == SolveResult::kUnsat) {
    metrics_.Add(c_unsat_);
  } else if (result == SolveResult::kUnknown) {
    metrics_.Add(c_unknown_);
  }
  if (options_.enable_cache) {
    cache_.Put(key, result);
  }
  return result;
}

std::optional<std::vector<uint8_t>> IntervalOracle::MergeAndCheck(const uint8_t* a, size_t a_len,
                                                                  const uint8_t* b,
                                                                  size_t b_len) {
  obs::ScopedSpan span("merge_check", "oracle");
  std::lock_guard<std::mutex> lock(mu_);
  metrics_.Add(c_merges_);
  WallTimer lookup_timer;
  ByteReader reader_a(a, a_len);
  ByteReader reader_b(b, b_len);
  PathEncoding enc_a = PathEncoding::Deserialize(&reader_a);
  PathEncoding enc_b = PathEncoding::Deserialize(&reader_b);
  // Feasibility is decided on the *full* concatenated path (so callee branch
  // conditions and parameter equations all participate, as in the paper's
  // Figure 6 walk-through)...
  PathEncoding full = PathEncoding::Append(enc_a, enc_b, options_.max_encoding_items);
  std::vector<uint8_t> full_bytes;
  full.Serialize(&full_bytes);
  std::string key(reinterpret_cast<const char*>(full_bytes.data()), full_bytes.size());
  metrics_.AddNanos(c_lookup_ns_, lookup_timer.ElapsedNanos());
  SolveResult result = CheckEncodingLocked(full, key);
  if (result == SolveResult::kUnsat) {
    return std::nullopt;
  }
  // ... while the stored encoding drops completed callee segments (§4.2
  // case 3), bounding growth by call depth.
  WallTimer compact_timer;
  std::vector<uint8_t> bytes;
  full.Compact().Serialize(&bytes);
  metrics_.AddNanos(c_lookup_ns_, compact_timer.ElapsedNanos());
  return bytes;
}

SolveResult IntervalOracle::CheckPayload(const uint8_t* payload, size_t len) {
  std::lock_guard<std::mutex> lock(mu_);
  ByteReader reader(payload, len);
  PathEncoding enc = PathEncoding::Deserialize(&reader);
  std::string key(reinterpret_cast<const char*>(payload), len);
  return CheckEncodingLocked(enc, key);
}

Constraint IntervalOracle::DecodePayload(const uint8_t* payload, size_t len) {
  std::lock_guard<std::mutex> lock(mu_);
  ByteReader reader(payload, len);
  PathEncoding enc = PathEncoding::Deserialize(&reader);
  return decoder_.Decode(enc);
}

OracleStats IntervalOracle::Stats() const {
  obs::MetricsSnapshot snapshot = metrics_.Snapshot();
  OracleStats stats;
  stats.merges = snapshot.CounterOr("oracle_merges_total");
  stats.constraints_checked = snapshot.CounterOr("oracle_constraints_checked_total");
  stats.cache_hits = snapshot.CounterOr("oracle_cache_hits_total");
  stats.unsat = snapshot.CounterOr("oracle_unsat_total");
  stats.unknown = snapshot.CounterOr("oracle_unknown_total");
  stats.lookup_seconds = snapshot.SecondsOf("oracle_lookup_ns");
  stats.solve_seconds = snapshot.SecondsOf("oracle_solve_ns");
  return stats;
}

void IntervalOracle::ResetStats() {
  metrics_.Reset();
  std::lock_guard<std::mutex> lock(mu_);
  cache_.ResetStats();
}

}  // namespace grapple
