#include "src/graph/constraint_oracle.h"

namespace grapple {

IntervalOracle::IntervalOracle(const Icfet* icfet) : IntervalOracle(icfet, Options()) {}

IntervalOracle::IntervalOracle(const Icfet* icfet, Options options)
    : options_(options),
      decoder_(icfet),
      solver_(options.solver_limits),
      cache_(options.cache_capacity) {}

std::vector<uint8_t> IntervalOracle::BasePayload(const PathEncoding& enc) {
  std::vector<uint8_t> out;
  enc.Serialize(&out);
  return out;
}

std::vector<uint8_t> IntervalOracle::TruePayload() {
  return BasePayload(PathEncoding::Empty());
}

SolveResult IntervalOracle::CheckEncodingLocked(const PathEncoding& enc, const std::string& key) {
  if (options_.enable_cache) {
    auto cached = cache_.Get(key);
    if (cached.has_value()) {
      ++stats_.cache_hits;
      return *cached;
    }
  }
  ++stats_.constraints_checked;
  WallTimer decode_timer;
  Constraint constraint = decoder_.Decode(enc);
  stats_.lookup_seconds += decode_timer.ElapsedSeconds();
  WallTimer solve_timer;
  SolveResult result = solver_.Solve(constraint);
  if (options_.simulated_solve_latency_us > 0) {
    double target = options_.simulated_solve_latency_us * 1e-6;
    while (solve_timer.ElapsedSeconds() < target) {
      // busy-wait: models a blocking round trip to an external solver
    }
  }
  stats_.solve_seconds += solve_timer.ElapsedSeconds();
  if (result == SolveResult::kUnsat) {
    ++stats_.unsat;
  } else if (result == SolveResult::kUnknown) {
    ++stats_.unknown;
  }
  if (options_.enable_cache) {
    cache_.Put(key, result);
  }
  return result;
}

std::optional<std::vector<uint8_t>> IntervalOracle::MergeAndCheck(const uint8_t* a, size_t a_len,
                                                                  const uint8_t* b,
                                                                  size_t b_len) {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.merges;
  WallTimer lookup_timer;
  ByteReader reader_a(a, a_len);
  ByteReader reader_b(b, b_len);
  PathEncoding enc_a = PathEncoding::Deserialize(&reader_a);
  PathEncoding enc_b = PathEncoding::Deserialize(&reader_b);
  // Feasibility is decided on the *full* concatenated path (so callee branch
  // conditions and parameter equations all participate, as in the paper's
  // Figure 6 walk-through)...
  PathEncoding full = PathEncoding::Append(enc_a, enc_b, options_.max_encoding_items);
  std::vector<uint8_t> full_bytes;
  full.Serialize(&full_bytes);
  std::string key(reinterpret_cast<const char*>(full_bytes.data()), full_bytes.size());
  stats_.lookup_seconds += lookup_timer.ElapsedSeconds();
  SolveResult result = CheckEncodingLocked(full, key);
  if (result == SolveResult::kUnsat) {
    return std::nullopt;
  }
  // ... while the stored encoding drops completed callee segments (§4.2
  // case 3), bounding growth by call depth.
  WallTimer compact_timer;
  std::vector<uint8_t> bytes;
  full.Compact().Serialize(&bytes);
  stats_.lookup_seconds += compact_timer.ElapsedSeconds();
  return bytes;
}

SolveResult IntervalOracle::CheckPayload(const uint8_t* payload, size_t len) {
  std::lock_guard<std::mutex> lock(mu_);
  ByteReader reader(payload, len);
  PathEncoding enc = PathEncoding::Deserialize(&reader);
  std::string key(reinterpret_cast<const char*>(payload), len);
  return CheckEncodingLocked(enc, key);
}

Constraint IntervalOracle::DecodePayload(const uint8_t* payload, size_t len) {
  std::lock_guard<std::mutex> lock(mu_);
  ByteReader reader(payload, len);
  PathEncoding enc = PathEncoding::Deserialize(&reader);
  return decoder_.Decode(enc);
}

OracleStats IntervalOracle::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void IntervalOracle::ResetStats() {
  std::lock_guard<std::mutex> lock(mu_);
  stats_ = OracleStats();
  cache_.ResetStats();
}

}  // namespace grapple
