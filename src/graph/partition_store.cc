#include "src/graph/partition_store.h"

#include <algorithm>

#include "src/obs/trace.h"
#include "src/support/logging.h"

namespace grapple {

PartitionStore::PartitionStore(std::string dir, PhaseProfiler* profiler,
                               obs::MetricsRegistry* metrics)
    : dir_(std::move(dir)), profiler_(profiler), metrics_(metrics) {
  if (metrics_ != nullptr) {
    c_bytes_read_ = metrics_->Counter("io_bytes_read");
    c_bytes_written_ = metrics_->Counter("io_bytes_written");
    c_loads_ = metrics_->Counter("io_partition_loads");
    c_writes_ = metrics_->Counter("io_partition_writes");
    c_appends_ = metrics_->Counter("io_partition_appends");
    c_splits_ = metrics_->Counter("io_partition_splits");
  }
}

std::string PartitionStore::FileFor(VertexId lo) const {
  return dir_ + "/part-" + std::to_string(lo) + "-" + std::to_string(file_counter_) + ".edges";
}

void PartitionStore::WriteEdges(const std::string& path, const std::vector<EdgeRecord>& edges,
                                uint64_t* bytes) {
  ScopedPhase phase(profiler_, "io");
  obs::ScopedSpan span("partition_write", "io");
  std::vector<uint8_t> buffer;
  for (const auto& edge : edges) {
    SerializeEdge(edge, &buffer);
  }
  GRAPPLE_CHECK(WriteFileBytes(path, buffer)) << "failed to write partition " << path;
  *bytes = buffer.size();
  if (metrics_ != nullptr) {
    metrics_->Add(c_writes_);
    metrics_->Add(c_bytes_written_, buffer.size());
  }
}

void PartitionStore::Initialize(std::vector<EdgeRecord> edges, VertexId num_vertices,
                                uint64_t target_bytes) {
  num_vertices_ = num_vertices;
  partitions_.clear();
  std::sort(edges.begin(), edges.end(), [](const EdgeRecord& a, const EdgeRecord& b) {
    if (a.src != b.src) {
      return a.src < b.src;
    }
    return a.dst < b.dst;
  });

  // Greedy fill: cut a partition when its serialized size would exceed the
  // target (never splitting one source vertex across partitions).
  size_t begin = 0;
  VertexId interval_lo = 0;
  while (begin < edges.size() || interval_lo < num_vertices || partitions_.empty()) {
    uint64_t size_estimate = 0;
    size_t end = begin;
    VertexId last_src = interval_lo;
    while (end < edges.size()) {
      uint64_t edge_size = 16 + edges[end].payload.size();
      if (end > begin && size_estimate + edge_size > target_bytes &&
          edges[end].src != last_src) {
        break;
      }
      size_estimate += edge_size;
      last_src = edges[end].src;
      ++end;
    }
    PartitionInfo info;
    info.lo = interval_lo;
    info.hi = (end == edges.size()) ? num_vertices : edges[end].src;
    if (info.hi <= info.lo) {
      info.hi = info.lo + 1;
    }
    ++file_counter_;
    info.path = FileFor(info.lo);
    std::vector<EdgeRecord> chunk(edges.begin() + static_cast<ptrdiff_t>(begin),
                                  edges.begin() + static_cast<ptrdiff_t>(end));
    WriteEdges(info.path, chunk, &info.bytes);
    info.edges = chunk.size();
    info.version = 1;
    info.segments = {{1, info.edges}};
    partitions_.push_back(std::move(info));
    begin = end;
    interval_lo = partitions_.back().hi;
    if (begin >= edges.size() && interval_lo >= num_vertices) {
      break;
    }
  }
  // Make the final partition cover the tail of the vertex space.
  if (!partitions_.empty()) {
    partitions_.back().hi = std::max(partitions_.back().hi, num_vertices);
  }
}

size_t PartitionStore::PartitionOf(VertexId v) const {
  // Binary search over sorted, contiguous intervals.
  size_t lo = 0;
  size_t hi = partitions_.size();
  while (lo < hi) {
    size_t mid = (lo + hi) / 2;
    if (v < partitions_[mid].lo) {
      hi = mid;
    } else if (v >= partitions_[mid].hi) {
      lo = mid + 1;
    } else {
      return mid;
    }
  }
  GRAPPLE_LOG(FATAL) << "vertex " << v << " outside partitioned space";
  return 0;
}

std::vector<EdgeRecord> PartitionStore::Load(size_t index) {
  ScopedPhase phase(profiler_, "io");
  obs::ScopedSpan span("partition_load", "io");
  std::vector<uint8_t> bytes;
  GRAPPLE_CHECK(ReadFileBytes(partitions_[index].path, &bytes))
      << "failed to read partition " << partitions_[index].path;
  if (metrics_ != nullptr) {
    metrics_->Add(c_loads_);
    metrics_->Add(c_bytes_read_, bytes.size());
  }
  std::vector<EdgeRecord> edges;
  edges.reserve(partitions_[index].edges);
  ByteReader reader(bytes);
  EdgeRecord edge;
  while (DeserializeEdge(&reader, &edge)) {
    edges.push_back(std::move(edge));
    edge = EdgeRecord();
  }
  return edges;
}

void PartitionStore::Rewrite(size_t index, const std::vector<EdgeRecord>& edges) {
  PartitionInfo& info = partitions_[index];
  WriteEdges(info.path, edges, &info.bytes);
  info.edges = edges.size();
  ++info.version;
  // Rewrites preserve the prefix order of previously recorded edges (the
  // engine serializes its loaded set in load order), so older segment
  // boundaries stay valid.
  info.segments.emplace_back(info.version, info.edges);
}

void PartitionStore::Append(size_t index, const std::vector<EdgeRecord>& edges) {
  if (edges.empty()) {
    return;
  }
  ScopedPhase phase(profiler_, "io");
  obs::ScopedSpan span("partition_append", "io");
  std::vector<uint8_t> buffer;
  for (const auto& edge : edges) {
    SerializeEdge(edge, &buffer);
  }
  PartitionInfo& info = partitions_[index];
  GRAPPLE_CHECK(AppendFileBytes(info.path, buffer)) << "failed to append to " << info.path;
  if (metrics_ != nullptr) {
    metrics_->Add(c_appends_);
    metrics_->Add(c_bytes_written_, buffer.size());
  }
  info.bytes += buffer.size();
  info.edges += edges.size();
  ++info.version;
  info.segments.emplace_back(info.version, info.edges);
}

size_t PartitionStore::SplitAndRewrite(size_t index, std::vector<EdgeRecord> edges,
                                       uint64_t target_bytes) {
  obs::ScopedSpan span("partition_split", "io");
  PartitionInfo original = partitions_[index];
  if (original.hi - original.lo <= 1) {
    Rewrite(index, edges);
    return 1;
  }
  std::sort(edges.begin(), edges.end(), [](const EdgeRecord& a, const EdgeRecord& b) {
    if (a.src != b.src) {
      return a.src < b.src;
    }
    return a.dst < b.dst;
  });

  std::vector<PartitionInfo> pieces;
  std::vector<std::vector<EdgeRecord>> piece_edges;
  size_t begin = 0;
  VertexId interval_lo = original.lo;
  while (interval_lo < original.hi) {
    uint64_t size_estimate = 0;
    size_t end = begin;
    VertexId last_src = interval_lo;
    while (end < edges.size()) {
      uint64_t edge_size = 16 + edges[end].payload.size();
      if (end > begin && size_estimate + edge_size > target_bytes &&
          edges[end].src != last_src && edges[end].src > interval_lo) {
        break;
      }
      size_estimate += edge_size;
      last_src = edges[end].src;
      ++end;
    }
    PartitionInfo info;
    info.lo = interval_lo;
    info.hi = (end == edges.size()) ? original.hi : edges[end].src;
    if (info.hi <= info.lo) {
      info.hi = info.lo + 1;
    }
    info.hi = std::min(info.hi, original.hi);
    pieces.push_back(info);
    piece_edges.emplace_back(edges.begin() + static_cast<ptrdiff_t>(begin),
                             edges.begin() + static_cast<ptrdiff_t>(end));
    begin = end;
    interval_lo = info.hi;
  }
  pieces.back().hi = original.hi;

  if (pieces.size() == 1) {
    Rewrite(index, edges);
    return 1;
  }

  if (metrics_ != nullptr) {
    metrics_->Add(c_splits_);
  }
  RemoveFile(original.path);
  for (size_t i = 0; i < pieces.size(); ++i) {
    ++file_counter_;
    pieces[i].path = FileFor(pieces[i].lo);
    WriteEdges(pieces[i].path, piece_edges[i], &pieces[i].bytes);
    pieces[i].edges = piece_edges[i].size();
    pieces[i].version = original.version + 1;
    pieces[i].segments = {{pieces[i].version, pieces[i].edges}};
  }
  partitions_.erase(partitions_.begin() + static_cast<ptrdiff_t>(index));
  partitions_.insert(partitions_.begin() + static_cast<ptrdiff_t>(index), pieces.begin(),
                     pieces.end());
  return pieces.size();
}

uint64_t PartitionStore::EdgesAtVersion(size_t index, uint64_t version) const {
  const PartitionInfo& info = partitions_[index];
  uint64_t count = 0;
  for (const auto& [seg_version, seg_count] : info.segments) {
    if (seg_version <= version) {
      count = seg_count;
    } else {
      break;
    }
  }
  return count;
}

uint64_t PartitionStore::TotalBytes() const {
  uint64_t total = 0;
  for (const auto& info : partitions_) {
    total += info.bytes;
  }
  return total;
}

uint64_t PartitionStore::TotalEdges() const {
  uint64_t total = 0;
  for (const auto& info : partitions_) {
    total += info.edges;
  }
  return total;
}

}  // namespace grapple
