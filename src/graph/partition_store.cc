#include "src/graph/partition_store.h"

#include <algorithm>
#include <filesystem>
#include <unordered_set>
#include <utility>

#include "src/graph/partition_codec.h"
#include "src/obs/profiler.h"
#include "src/obs/trace.h"
#include "src/support/event_hook.h"
#include "src/support/logging.h"

namespace grapple {

namespace {

// Floor for the prefetch cache so tiny budgets still allow one read-ahead.
constexpr uint64_t kMinCacheBytes = uint64_t{1} << 20;

}  // namespace

PartitionStore::PartitionStore(std::string dir, PhaseProfiler* profiler,
                               obs::MetricsRegistry* metrics, PartitionStorePipeline pipeline)
    : dir_(std::move(dir)), profiler_(profiler), metrics_(metrics), pipeline_(pipeline) {
  if (metrics_ != nullptr) {
    c_bytes_read_ = metrics_->Counter("io_bytes_read");
    c_bytes_written_ = metrics_->Counter("io_bytes_written");
    c_loads_ = metrics_->Counter("io_partition_loads_total");
    c_writes_ = metrics_->Counter("io_partition_writes_total");
    c_appends_ = metrics_->Counter("io_partition_appends_total");
    c_splits_ = metrics_->Counter("io_partition_splits_total");
    c_compressed_bytes_ = metrics_->Counter("io_compressed_bytes");
    c_prefetch_hits_ = metrics_->Counter("io_prefetch_hits_total");
    c_write_cache_hits_ = metrics_->Counter("io_write_cache_hits_total");
    c_prefetch_wasted_ = metrics_->Counter("io_prefetch_wasted_total");
    c_prefetch_issued_ = metrics_->Counter("io_prefetch_issued_total");
    c_cache_borrows_ = metrics_->Counter("io_cache_budget_borrows_total");
  }
  if (pipeline_.enabled) {
    if (pipeline_.runtime != nullptr) {
      runtime_ = pipeline_.runtime;
    } else {
      // Standalone store (tests, tools): no shared scheduler was provided,
      // so spin up a private single-worker runtime. One worker makes every
      // strand trivially serial, matching the legacy dedicated I/O thread.
      TaskRuntimeOptions options;
      options.workers = 1;
      owned_runtime_ = std::make_unique<TaskRuntime>(options);
      runtime_ = owned_runtime_.get();
    }
  }
  introspect_queue_depth_ = obs::Introspection::RegisterGaugeSource(
      "io_queue_depth", [this] { return static_cast<double>(queue_depth_.load(std::memory_order_relaxed)); });
  introspect_cache_bytes_ = obs::Introspection::RegisterGaugeSource(
      "write_cache_bytes",
      [this] { return static_cast<double>(live_cache_bytes_.load(std::memory_order_relaxed)); });
}

PartitionStore::~PartitionStore() {
  // Drain write-behind so the on-disk state is complete before the store is
  // torn down. The shared runtime outlives the store, so queued tasks that
  // capture `this` must finish here, not in the runtime's destructor.
  DrainAll();
}

std::string PartitionStore::FileFor(VertexId lo) const {
  return dir_ + "/part-" + std::to_string(lo) + "-" + std::to_string(file_counter_) + ".edges";
}

uint64_t PartitionStore::CacheCapacity() const {
  uint64_t budget = pipeline_.budget_lease != nullptr ? pipeline_.budget_lease->bytes()
                                                      : pipeline_.budget_bytes;
  return std::max(budget / 4, kMinCacheBytes) + cache_borrowed_;
}

void PartitionStore::Enqueue(const std::string& path, TaskLane lane,
                             std::function<void()> fn) {
  int64_t depth = queue_depth_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (metrics_ != nullptr) {
    metrics_->MaxGauge("io_queue_depth_peak", static_cast<double>(depth));
  }
  {
    std::lock_guard<std::mutex> lock(cache_mutex_);
    ++pending_ops_[path];
  }
  // Capture the submitting thread's checker so samples taken while this
  // task runs on a shared worker still attribute to the checker whose
  // mutation queued the I/O.
  uint32_t checker = obs::ProfCurrentChecker();
  runtime_->SubmitSerial(path, lane, [this, path, checker, fn = std::move(fn)] {
    obs::ProfChecker prof_checker(checker);
    obs::ProfPhase prof_phase("io");
    fn();
    queue_depth_.fetch_sub(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(cache_mutex_);
    auto it = pending_ops_.find(path);
    if (it != pending_ops_.end() && --it->second == 0) {
      pending_ops_.erase(it);
    }
  });
}

void PartitionStore::WaitForPath(const std::string& path) {
  runtime_->WaitSerial(path, evt::kWaitIoQueue);
}

void PartitionStore::DrainAll() {
  if (runtime_ == nullptr) {
    return;
  }
  // Strands retire their own pending_ops_ entry, so waiting out whichever
  // path is first until the map empties visits every strand exactly once
  // (new work is only ever queued by the foreground thread — this one).
  while (true) {
    std::string path;
    {
      std::lock_guard<std::mutex> lock(cache_mutex_);
      if (pending_ops_.empty()) {
        return;
      }
      path = pending_ops_.begin()->first;
    }
    runtime_->WaitSerial(path, evt::kWaitIoBarrier);
  }
}

void PartitionStore::Sync() {
  if (runtime_ != nullptr) {
    ScopedPhase phase(profiler_, "io");
    obs::ProfPhase prof_phase("io");
    obs::ScopedSpan span("io_sync", "io");
    DrainAll();
  }
  ThrowIfIoError();
}

void PartitionStore::RecordIoError(const std::string& message) {
  std::lock_guard<std::mutex> lock(io_error_mutex_);
  if (io_error_.empty()) {
    io_error_ = message;
  }
  GRAPPLE_LOG(ERROR) << message;
}

void PartitionStore::ThrowIfIoError() {
  std::string message;
  {
    std::lock_guard<std::mutex> lock(io_error_mutex_);
    message = io_error_;
  }
  if (!message.empty()) {
    throw IoError(message);
  }
}

void PartitionStore::InvalidateCache(const std::string& path) {
  if (runtime_ == nullptr) {
    return;
  }
  std::lock_guard<std::mutex> lock(cache_mutex_);
  auto it = cache_.find(path);
  if (it == cache_.end()) {
    return;
  }
  // Only a hint-initiated read that was never consumed counts as wasted
  // prefetch work; write-back entries cost nothing extra to install.
  if (it->second.from_prefetch && it->second.hits == 0) {
    if (metrics_ != nullptr) {
      metrics_->Add(c_prefetch_wasted_);
    }
    evt::Emit(evt::kPrefetchWaste, it->second.charge);
  }
  evt::Emit(evt::kPartitionEvict, it->second.charge);
  cache_bytes_ -= it->second.charge;
  live_cache_bytes_.store(cache_bytes_, std::memory_order_relaxed);
  cache_.erase(it);
}

void PartitionStore::CachePut(const std::string& path, uint64_t version, uint64_t charge,
                              std::shared_ptr<const std::vector<EdgeRecord>> content) {
  if (runtime_ == nullptr || content == nullptr) {
    return;
  }
  charge = std::max<uint64_t>(charge, 1);
  if (cache_bytes_ + charge > CacheCapacity()) {
    return;  // no room: the partition stays disk-only until hinted
  }
  std::lock_guard<std::mutex> lock(cache_mutex_);
  // The caller invalidated any previous entry for this path, so this insert
  // is fresh.
  CacheEntry& entry = cache_[path];
  entry.version = version;
  entry.charge = charge;
  entry.ready = true;
  entry.failed = false;
  entry.from_prefetch = false;
  entry.hits = 0;
  entry.edges = std::move(content);
  cache_bytes_ += charge;
  live_cache_bytes_.store(cache_bytes_, std::memory_order_relaxed);
}

std::vector<EdgeRecord> PartitionStore::DecodeOrThrow(const std::string& path,
                                                      const std::vector<uint8_t>& bytes,
                                                      uint64_t edges_hint) const {
  std::vector<EdgeRecord> edges;
  edges.reserve(edges_hint);
  PartitionDecodeStatus status = DecodePartitionBytes(path, bytes, &edges);
  if (!status.ok) {
    throw IoError("partition file corrupt: " + status.error);
  }
  return edges;
}

uint64_t PartitionStore::WriteOrQueue(const std::string& path, std::vector<EdgeRecord> edges,
                                      bool rewrite, const char* span_name,
                                      std::shared_ptr<const std::vector<EdgeRecord>>* content) {
  obs::ScopedSpan span(span_name, "io");
  if (!pipeline_.enabled) {
    // Only the synchronous fallback blocks on the file system, so only it
    // is charged to the foreground "io" phase. The pipelined handoff below
    // is queue bookkeeping (plus the wake of a parked worker, which on a
    // small machine is a preemption point that runs the flush) and stays
    // in whatever phase the caller is in.
    ScopedPhase phase(profiler_, "io");
    obs::ProfPhase prof_phase("io");
    std::vector<uint8_t> buffer;
    for (const auto& edge : edges) {
      SerializeEdge(edge, &buffer);
    }
    if (metrics_ != nullptr) {
      metrics_->Add(c_bytes_written_, buffer.size());
    }
    std::string error;
    bool ok = rewrite ? WriteFileBytes(path, buffer, &error) : AppendFileBytes(path, buffer, &error);
    if (!ok) {
      throw IoError("partition " + std::string(rewrite ? "write" : "append") + " failed: " +
                    error);
    }
    return buffer.size();
  }
  // Write-behind: the caller only pays for handing the edges over; the
  // block encode and the file write both run as a write-behind-lane task on
  // the file's strand. Ownership is shared between the queued task and the
  // caller's write-back cache entry, so no copy is made on either side.
  // Metadata is charged the raw-format size so partition layout decisions
  // are identical to the synchronous path.
  uint64_t raw_bytes = RawFormatBytes(edges);
  auto shared = std::make_shared<const std::vector<EdgeRecord>>(std::move(edges));
  if (content != nullptr) {
    *content = shared;
  }
  {
    std::lock_guard<std::mutex> lock(cache_mutex_);
    ++pending_writes_[path];
  }
  Enqueue(path, TaskLane::kWriteBehind, [this, path, rewrite, edges = std::move(shared)] {
    obs::ScopedSpan flush_span(rewrite ? "partition_flush_write" : "partition_flush_append",
                               "io");
    std::vector<uint8_t> buffer;
    if (rewrite) {
      AppendBlockFileHeader(&buffer);
    }
    AppendEdgeBlock(*edges, &buffer, nullptr);
    if (metrics_ != nullptr) {
      // Thread-sharded counters; safe off the foreground thread.
      metrics_->Add(c_compressed_bytes_, buffer.size());
      metrics_->Add(c_bytes_written_, buffer.size());
    }
    std::string error;
    bool ok = rewrite ? WriteFileBytes(path, buffer, &error) : AppendFileBytes(path, buffer, &error);
    if (!ok) {
      // Worker thread: aborting here would take down the whole process for
      // one checker's disk problem, and silently dropping the failure would
      // let the run "complete" against missing bytes. Record it; the next
      // foreground barrier (Sync/Load) rethrows it on the engine's thread.
      RecordIoError("background partition " + std::string(rewrite ? "write" : "append") +
                    " failed: " + error);
    }
    std::lock_guard<std::mutex> lock(cache_mutex_);
    auto it = pending_writes_.find(path);
    if (it != pending_writes_.end() && --it->second == 0) {
      pending_writes_.erase(it);
    }
  });
  return raw_bytes;
}

void PartitionStore::WriteEdges(const std::string& path, std::vector<EdgeRecord> edges,
                                uint64_t* bytes,
                                std::shared_ptr<const std::vector<EdgeRecord>>* content) {
  *bytes = WriteOrQueue(path, std::move(edges), /*rewrite=*/true, "partition_write", content);
  if (metrics_ != nullptr) {
    metrics_->Add(c_writes_);
  }
}

void PartitionStore::Initialize(std::vector<EdgeRecord> edges, VertexId num_vertices,
                                uint64_t target_bytes) {
  num_vertices_ = num_vertices;
  partitions_.clear();
  std::sort(edges.begin(), edges.end(), [](const EdgeRecord& a, const EdgeRecord& b) {
    if (a.src != b.src) {
      return a.src < b.src;
    }
    return a.dst < b.dst;
  });

  // Greedy fill: cut a partition when its serialized size would exceed the
  // target (never splitting one source vertex across partitions).
  size_t begin = 0;
  VertexId interval_lo = 0;
  while (begin < edges.size() || interval_lo < num_vertices || partitions_.empty()) {
    uint64_t size_estimate = 0;
    size_t end = begin;
    VertexId last_src = interval_lo;
    while (end < edges.size()) {
      uint64_t edge_size = 16 + edges[end].payload.size();
      if (end > begin && size_estimate + edge_size > target_bytes &&
          edges[end].src != last_src) {
        break;
      }
      size_estimate += edge_size;
      last_src = edges[end].src;
      ++end;
    }
    PartitionInfo info;
    info.lo = interval_lo;
    info.hi = (end == edges.size()) ? num_vertices : edges[end].src;
    if (info.hi <= info.lo) {
      info.hi = info.lo + 1;
    }
    ++file_counter_;
    info.path = FileFor(info.lo);
    std::vector<EdgeRecord> chunk(edges.begin() + static_cast<ptrdiff_t>(begin),
                                  edges.begin() + static_cast<ptrdiff_t>(end));
    info.edges = chunk.size();
    std::shared_ptr<const std::vector<EdgeRecord>> content;
    WriteEdges(info.path, std::move(chunk), &info.bytes, &content);
    info.version = 1;
    info.segments = {{1, info.edges}};
    CachePut(info.path, info.version, info.bytes, std::move(content));
    partitions_.push_back(std::move(info));
    begin = end;
    interval_lo = partitions_.back().hi;
    if (begin >= edges.size() && interval_lo >= num_vertices) {
      break;
    }
  }
  // Make the final partition cover the tail of the vertex space.
  if (!partitions_.empty()) {
    partitions_.back().hi = std::max(partitions_.back().hi, num_vertices);
  }
}

size_t PartitionStore::PartitionOf(VertexId v) const {
  // Binary search over sorted, contiguous intervals.
  size_t lo = 0;
  size_t hi = partitions_.size();
  while (lo < hi) {
    size_t mid = (lo + hi) / 2;
    if (v < partitions_[mid].lo) {
      hi = mid;
    } else if (v >= partitions_[mid].hi) {
      lo = mid + 1;
    } else {
      return mid;
    }
  }
  GRAPPLE_LOG(FATAL) << "vertex " << v << " outside partitioned space";
  return 0;
}

void PartitionStore::Hint(const std::vector<size_t>& next_indices) {
  if (runtime_ == nullptr) {
    return;
  }
  obs::ScopedSpan span("partition_hint", "io");
  for (size_t index : next_indices) {
    if (index >= partitions_.size()) {
      continue;
    }
    const PartitionInfo& info = partitions_[index];
    uint64_t need = std::max<uint64_t>(info.bytes, 1);
    {
      std::lock_guard<std::mutex> lock(cache_mutex_);
      auto it = cache_.find(info.path);
      if (it != cache_.end() && it->second.version == info.version) {
        continue;  // already cached or in flight
      }
    }
    if (cache_bytes_ + need > CacheCapacity()) {
      // Try to borrow headroom from the shared budget before giving up on
      // the read-ahead. The lease is only ever touched from this thread.
      BudgetLease* lease = pipeline_.budget_lease;
      if (lease == nullptr || !lease->TryGrowTo(lease->bytes() + need)) {
        continue;
      }
      cache_borrowed_ += need;
      if (metrics_ != nullptr) {
        metrics_->Add(c_cache_borrows_);
      }
    }
    {
      std::lock_guard<std::mutex> lock(cache_mutex_);
      CacheEntry& entry = cache_[info.path];
      entry.version = info.version;
      entry.charge = need;
      entry.ready = false;
      entry.failed = false;
      entry.from_prefetch = true;
      entry.hits = 0;
      entry.edges.reset();
      cache_bytes_ += need;
      live_cache_bytes_.store(cache_bytes_, std::memory_order_relaxed);
    }
    if (metrics_ != nullptr) {
      metrics_->Add(c_prefetch_issued_);
    }
    // The read runs on the file's strand, behind every pending write to
    // that file, so it observes the partition exactly as a foreground load
    // would. Prefetch lane: workers serve it after foreground joins but
    // ahead of write-behind backlog.
    Enqueue(info.path, TaskLane::kPrefetch,
            [this, path = info.path, version = info.version, edges_hint = info.edges] {
      obs::ScopedSpan prefetch_span("partition_prefetch", "io");
      std::vector<uint8_t> bytes;
      bool read_ok = ReadFileBytes(path, &bytes);
      if (read_ok && metrics_ != nullptr) {
        metrics_->Add(c_bytes_read_, bytes.size());
      }
      std::vector<EdgeRecord> edges;
      edges.reserve(edges_hint);
      bool decode_ok =
          read_ok && DecodePartitionBytes(path, bytes, &edges).ok;
      std::lock_guard<std::mutex> lock(cache_mutex_);
      auto it = cache_.find(path);
      if (it == cache_.end() || it->second.version != version) {
        return;  // invalidated while in flight; drop the result
      }
      it->second.ready = true;
      if (decode_ok) {
        it->second.edges = std::make_shared<const std::vector<EdgeRecord>>(std::move(edges));
      } else {
        // Leave diagnosis to the foreground fallback, which re-reads and
        // fails with the full decode error.
        it->second.failed = true;
      }
    });
  }
}

std::vector<EdgeRecord> PartitionStore::Load(size_t index) {
  ScopedPhase phase(profiler_, "io");
  obs::ProfPhase prof_phase("io");
  obs::ScopedSpan span("partition_load", "io");
  ThrowIfIoError();
  const PartitionInfo& info = partitions_[index];
  if (runtime_ != nullptr) {
    bool pending = false;
    {
      std::lock_guard<std::mutex> lock(cache_mutex_);
      auto it = cache_.find(info.path);
      if (it != cache_.end() && it->second.version == info.version) {
        if (it->second.ready && !it->second.failed) {
          ++it->second.hits;
          if (metrics_ != nullptr) {
            metrics_->Add(it->second.from_prefetch ? c_prefetch_hits_ : c_write_cache_hits_);
            metrics_->Add(c_loads_);
          }
          if (it->second.from_prefetch) {
            evt::Emit(evt::kPrefetchHit, it->second.charge);
          }
          evt::Emit(evt::kPartitionLoad, index, info.bytes);
          return *it->second.edges;  // copy; the entry stays until stale
        }
        pending = !it->second.ready;
      }
    }
    if (pending) {
      // The prefetch read is queued (or running) on this file's strand;
      // wait it out instead of issuing a duplicate foreground read.
      WaitForPath(info.path);
      std::lock_guard<std::mutex> lock(cache_mutex_);
      auto it = cache_.find(info.path);
      if (it != cache_.end() && it->second.version == info.version && it->second.ready &&
          !it->second.failed) {
        ++it->second.hits;
        if (metrics_ != nullptr) {
          metrics_->Add(c_prefetch_hits_);
          metrics_->Add(c_loads_);
        }
        evt::Emit(evt::kPrefetchHit, it->second.charge);
        evt::Emit(evt::kPartitionLoad, index, info.bytes);
        return *it->second.edges;
      }
    }
    // Miss (or failed prefetch): read in the foreground. Only this file's
    // strand has to drain, and only when the file has unfinished queued
    // writes — other files' pending work cannot affect what this read
    // returns, and now no longer delays it either.
    bool pending_write;
    {
      std::lock_guard<std::mutex> lock(cache_mutex_);
      pending_write = pending_writes_.count(info.path) > 0;
    }
    if (pending_write) {
      WaitForPath(info.path);
      ThrowIfIoError();
    }
  }
  std::vector<uint8_t> bytes;
  std::string error;
  if (!ReadFileBytes(info.path, &bytes, &error)) {
    throw IoError("partition load failed: " + error);
  }
  if (metrics_ != nullptr) {
    metrics_->Add(c_loads_);
    metrics_->Add(c_bytes_read_, bytes.size());
  }
  evt::Emit(evt::kPartitionLoad, index, bytes.size());
  return DecodeOrThrow(info.path, bytes, info.edges);
}

void PartitionStore::Rewrite(size_t index, const std::vector<EdgeRecord>& edges) {
  PartitionInfo& info = partitions_[index];
  InvalidateCache(info.path);
  if (checkpoint_mode_ && pinned_.count(info.path) > 0) {
    // Never overwrite a file the last published manifest references:
    // rewrite into a fresh generation and retire the old file until the
    // next manifest (which references the new path) is published.
    // Unpinned files rewrite in place — a crash can only corrupt state no
    // manifest describes, which recovery deletes unread.
    retired_.push_back(info.path);
    ++file_counter_;
    info.path = FileFor(info.lo);
  }
  std::shared_ptr<const std::vector<EdgeRecord>> content;
  WriteEdges(info.path, edges, &info.bytes, &content);
  info.edges = edges.size();
  ++info.version;
  // Rewrites preserve the prefix order of previously recorded edges (the
  // engine serializes its loaded set in load order), so older segment
  // boundaries stay valid.
  info.segments.emplace_back(info.version, info.edges);
  evt::Emit(evt::kPartitionSpill, index, info.bytes);
  CachePut(info.path, info.version, info.bytes, std::move(content));
}

void PartitionStore::Append(size_t index, const std::vector<EdgeRecord>& edges) {
  if (edges.empty()) {
    return;
  }
  PartitionInfo& info = partitions_[index];
  InvalidateCache(info.path);
  uint64_t bytes = WriteOrQueue(info.path, edges, /*rewrite=*/false, "partition_append");
  if (metrics_ != nullptr) {
    metrics_->Add(c_appends_);
  }
  info.bytes += bytes;
  info.edges += edges.size();
  ++info.version;
  info.segments.emplace_back(info.version, info.edges);
  evt::Emit(evt::kPartitionSpill, index, bytes, /*a0=*/1);
}

size_t PartitionStore::SplitAndRewrite(size_t index, std::vector<EdgeRecord> edges,
                                       uint64_t target_bytes) {
  obs::ScopedSpan span("partition_split", "io");
  PartitionInfo original = partitions_[index];
  if (original.hi - original.lo <= 1) {
    Rewrite(index, edges);
    return 1;
  }
  std::sort(edges.begin(), edges.end(), [](const EdgeRecord& a, const EdgeRecord& b) {
    if (a.src != b.src) {
      return a.src < b.src;
    }
    return a.dst < b.dst;
  });

  std::vector<PartitionInfo> pieces;
  std::vector<std::vector<EdgeRecord>> piece_edges;
  size_t begin = 0;
  VertexId interval_lo = original.lo;
  while (interval_lo < original.hi) {
    uint64_t size_estimate = 0;
    size_t end = begin;
    VertexId last_src = interval_lo;
    while (end < edges.size()) {
      uint64_t edge_size = 16 + edges[end].payload.size();
      if (end > begin && size_estimate + edge_size > target_bytes &&
          edges[end].src != last_src && edges[end].src > interval_lo) {
        break;
      }
      size_estimate += edge_size;
      last_src = edges[end].src;
      ++end;
    }
    PartitionInfo info;
    info.lo = interval_lo;
    info.hi = (end == edges.size()) ? original.hi : edges[end].src;
    if (info.hi <= info.lo) {
      info.hi = info.lo + 1;
    }
    info.hi = std::min(info.hi, original.hi);
    pieces.push_back(info);
    piece_edges.emplace_back(edges.begin() + static_cast<ptrdiff_t>(begin),
                             edges.begin() + static_cast<ptrdiff_t>(end));
    begin = end;
    interval_lo = info.hi;
  }
  pieces.back().hi = original.hi;

  if (pieces.size() == 1) {
    Rewrite(index, edges);
    return 1;
  }

  if (metrics_ != nullptr) {
    metrics_->Add(c_splits_);
  }
  evt::Emit(evt::kPartitionSplit, index, pieces.size());
  InvalidateCache(original.path);
  if (checkpoint_mode_ && pinned_.count(original.path) > 0) {
    // Deferred: the last published manifest still references this file.
    retired_.push_back(original.path);
  } else if (pipeline_.enabled) {
    // Queued on the file's own strand so the removal happens after any
    // pending append to it.
    Enqueue(original.path, TaskLane::kWriteBehind,
            [path = original.path] { RemoveFile(path); });
  } else {
    RemoveFile(original.path);
  }
  for (size_t i = 0; i < pieces.size(); ++i) {
    ++file_counter_;
    pieces[i].path = FileFor(pieces[i].lo);
    pieces[i].edges = piece_edges[i].size();
    std::shared_ptr<const std::vector<EdgeRecord>> content;
    WriteEdges(pieces[i].path, std::move(piece_edges[i]), &pieces[i].bytes, &content);
    pieces[i].version = original.version + 1;
    pieces[i].segments = {{pieces[i].version, pieces[i].edges}};
    CachePut(pieces[i].path, pieces[i].version, pieces[i].bytes, std::move(content));
  }
  partitions_.erase(partitions_.begin() + static_cast<ptrdiff_t>(index));
  partitions_.insert(partitions_.begin() + static_cast<ptrdiff_t>(index), pieces.begin(),
                     pieces.end());
  return pieces.size();
}

uint64_t PartitionStore::EdgesAtVersion(size_t index, uint64_t version) const {
  const PartitionInfo& info = partitions_[index];
  uint64_t count = 0;
  for (const auto& [seg_version, seg_count] : info.segments) {
    if (seg_version <= version) {
      count = seg_count;
    } else {
      break;
    }
  }
  return count;
}

std::vector<CheckpointPartition> PartitionStore::SnapshotForCheckpoint() const {
  std::vector<CheckpointPartition> snapshot;
  snapshot.reserve(partitions_.size());
  for (const PartitionInfo& info : partitions_) {
    CheckpointPartition cp;
    cp.lo = info.lo;
    cp.hi = info.hi;
    size_t slash = info.path.rfind('/');
    cp.file = slash == std::string::npos ? info.path : info.path.substr(slash + 1);
    cp.bytes = info.bytes;
    cp.edges = info.edges;
    cp.version = info.version;
    int64_t disk = FileSizeBytes(info.path);
    cp.disk_bytes = disk < 0 ? 0 : static_cast<uint64_t>(disk);
    cp.segments = info.segments;
    snapshot.push_back(std::move(cp));
  }
  return snapshot;
}

bool PartitionStore::RestoreFromCheckpoint(const std::vector<CheckpointPartition>& partitions,
                                           uint64_t file_counter, VertexId num_vertices,
                                           std::string* error) {
  partitions_.clear();
  num_vertices_ = num_vertices;
  file_counter_ = file_counter;
  retired_.clear();
  std::unordered_set<std::string> referenced;
  for (const CheckpointPartition& cp : partitions) {
    std::string path = dir_ + "/" + cp.file;
    int64_t size = FileSizeBytes(path);
    if (size < 0 || static_cast<uint64_t>(size) < cp.disk_bytes) {
      partitions_.clear();
      if (error != nullptr) {
        *error = "checkpointed partition " + path + " is " +
                 (size < 0 ? "missing" : "shorter than the recorded " +
                                             std::to_string(cp.disk_bytes) + " bytes");
      }
      return false;
    }
    // Generation truncation: bytes past the manifest's recorded size were
    // written by the dead run after the manifest published; drop them so
    // the file is exactly the state the manifest describes.
    if (static_cast<uint64_t>(size) > cp.disk_bytes &&
        !TruncateFile(path, cp.disk_bytes, error)) {
      partitions_.clear();
      return false;
    }
    PartitionInfo info;
    info.lo = cp.lo;
    info.hi = cp.hi;
    info.path = path;
    info.bytes = cp.bytes;
    info.edges = cp.edges;
    info.version = cp.version;
    info.segments = cp.segments;
    partitions_.push_back(std::move(info));
    referenced.insert(cp.file);
  }
  // The manifest that described these files is still the live one on disk;
  // until the next publish supersedes it, they must stay byte-stable.
  MarkCheckpointPublished();
  // Strays: partition files the dead run created after the manifest (new
  // generations, split pieces) or retired files it never got to delete.
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir_, ec)) {
    std::string name = entry.path().filename().string();
    if (name.rfind("part-", 0) == 0 && name.size() > 6 &&
        name.compare(name.size() - 6, 6, ".edges") == 0 && referenced.count(name) == 0) {
      RemoveFile(entry.path().string());
    }
  }
  return true;
}

void PartitionStore::MarkCheckpointPublished() {
  pinned_.clear();
  for (const PartitionInfo& info : partitions_) {
    pinned_.insert(info.path);
  }
}

void PartitionStore::CollectGarbage() {
  for (const std::string& path : retired_) {
    RemoveFile(path);
  }
  retired_.clear();
}

void PartitionStore::CleanWorkDirForFreshStart() {
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir_, ec)) {
    std::string name = entry.path().filename().string();
    bool stale = (name.rfind("part-", 0) == 0 && name.size() > 6 &&
                  name.compare(name.size() - 6, 6, ".edges") == 0) ||
                 name == "checkpoint.manifest" || name == "checkpoint.manifest.tmp" ||
                 name == "provenance.bin";
    if (stale) {
      RemoveFile(entry.path().string());
    }
  }
}

uint64_t PartitionStore::TotalBytes() const {
  uint64_t total = 0;
  for (const auto& info : partitions_) {
    total += info.bytes;
  }
  return total;
}

uint64_t PartitionStore::TotalEdges() const {
  uint64_t total = 0;
  for (const auto& info : partitions_) {
    total += info.edges;
  }
  return total;
}

}  // namespace grapple
