#include "src/graph/checkpoint.h"

#include <cstring>

#include "src/support/byte_io.h"
#include "src/support/event_hook.h"
#include "src/support/fault_injection.h"

namespace grapple {

namespace {

// File layout: magic(8) | format version(fixed32) | payload length(fixed64)
// | payload | FNV-1a(payload)(fixed64). The checksum covers the payload
// only; magic/version corruption is caught by their own strict checks.
constexpr char kMagic[8] = {'G', 'R', 'P', 'L', 'C', 'K', 'P', 'T'};

uint64_t Fnv1a(const uint8_t* data, size_t size) {
  uint64_t hash = 1469598103934665603ULL;
  for (size_t i = 0; i < size; ++i) {
    hash ^= data[i];
    hash *= 1099511628211ULL;
  }
  return hash;
}

void PutString(std::vector<uint8_t>* out, const std::string& s) {
  PutVarint64(out, s.size());
  out->insert(out->end(), s.begin(), s.end());
}

bool GetString(ByteReader* reader, std::string* s) {
  uint64_t len = reader->GetVarint64();
  if (!reader->ok() || len > reader->remaining()) {
    return false;
  }
  s->resize(static_cast<size_t>(len));
  return len == 0 ||
         reader->GetRaw(reinterpret_cast<uint8_t*>(s->data()), static_cast<size_t>(len));
}

bool Fail(std::string* error, const std::string& why) {
  if (error != nullptr) {
    *error = "checkpoint manifest invalid: " + why;
  }
  return false;
}

}  // namespace

std::string CheckpointManifestPath(const std::string& work_dir) {
  return work_dir + "/checkpoint.manifest";
}

void EncodeCheckpointManifest(const CheckpointManifest& manifest, std::vector<uint8_t>* out) {
  std::vector<uint8_t> payload;
  PutVarint64(&payload, manifest.num_vertices);
  PutFixed64(&payload, manifest.base_fingerprint);
  PutVarint64(&payload, manifest.base_edges);
  PutVarint64(&payload, manifest.file_counter);

  PutVarint64(&payload, manifest.partitions.size());
  for (const CheckpointPartition& p : manifest.partitions) {
    PutVarint64(&payload, p.lo);
    PutVarint64(&payload, p.hi);
    PutString(&payload, p.file);
    PutVarint64(&payload, p.bytes);
    PutVarint64(&payload, p.edges);
    PutVarint64(&payload, p.version);
    PutVarint64(&payload, p.disk_bytes);
    PutVarint64(&payload, p.segments.size());
    for (const auto& [version, count] : p.segments) {
      PutVarint64(&payload, version);
      PutVarint64(&payload, count);
    }
  }

  PutVarint64(&payload, manifest.pair_done.size());
  for (const CheckpointManifest::PairDone& pd : manifest.pair_done) {
    PutVarint64(&payload, pd.i);
    PutVarint64(&payload, pd.j);
    PutVarint64(&payload, pd.vi);
    PutVarint64(&payload, pd.vj);
  }

  // Sorted hashes delta-encode well: the varint of a gap between uniform
  // random 64-bit values at count n is ~ (64 - log2 n) bits.
  PutVarint64(&payload, manifest.dedup_hashes.size());
  uint64_t prev = 0;
  for (uint64_t hash : manifest.dedup_hashes) {
    PutVarint64(&payload, hash - prev);
    prev = hash;
  }

  PutVarint64(&payload, manifest.variants.size());
  prev = 0;
  for (const auto& [triple, count] : manifest.variants) {
    PutVarint64(&payload, triple - prev);
    PutVarint64(&payload, count);
    prev = triple;
  }

  payload.push_back(manifest.has_provenance ? 1 : 0);
  PutVarint64(&payload, manifest.provenance_bytes);
  PutVarint64(&payload, manifest.provenance_records);

  out->clear();
  out->reserve(sizeof(kMagic) + 4 + 8 + payload.size() + 8);
  out->insert(out->end(), kMagic, kMagic + sizeof(kMagic));
  PutFixed32(out, kCheckpointFormatVersion);
  PutFixed64(out, payload.size());
  out->insert(out->end(), payload.begin(), payload.end());
  PutFixed64(out, Fnv1a(payload.data(), payload.size()));
}

bool DecodeCheckpointManifest(const std::vector<uint8_t>& bytes, CheckpointManifest* manifest,
                              std::string* error) {
  ByteReader header(bytes);
  uint8_t magic[sizeof(kMagic)];
  if (!header.GetRaw(magic, sizeof(magic)) || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Fail(error, "bad magic");
  }
  uint32_t version = header.GetFixed32();
  if (!header.ok()) {
    return Fail(error, "truncated header");
  }
  if (version != kCheckpointFormatVersion) {
    return Fail(error, "format version skew: file has v" + std::to_string(version) +
                           ", this binary expects v" + std::to_string(kCheckpointFormatVersion));
  }
  uint64_t payload_len = header.GetFixed64();
  if (!header.ok() || payload_len + 8 != header.remaining()) {
    return Fail(error, "payload length mismatch (truncated or trailing garbage)");
  }
  const uint8_t* payload = bytes.data() + header.position();
  uint64_t stored_checksum =
      [&] {
        ByteReader tail(payload + payload_len, 8);
        return tail.GetFixed64();
      }();
  uint64_t computed = Fnv1a(payload, static_cast<size_t>(payload_len));
  if (stored_checksum != computed) {
    return Fail(error, "checksum mismatch");
  }

  ByteReader reader(payload, static_cast<size_t>(payload_len));
  CheckpointManifest m;
  m.num_vertices = reader.GetVarint64();
  m.base_fingerprint = reader.GetFixed64();
  m.base_edges = reader.GetVarint64();
  m.file_counter = reader.GetVarint64();

  uint64_t num_partitions = reader.GetVarint64();
  if (!reader.ok() || num_partitions > payload_len) {
    return Fail(error, "bad partition count");
  }
  m.partitions.reserve(static_cast<size_t>(num_partitions));
  for (uint64_t i = 0; i < num_partitions; ++i) {
    CheckpointPartition p;
    p.lo = static_cast<VertexId>(reader.GetVarint64());
    p.hi = static_cast<VertexId>(reader.GetVarint64());
    if (!GetString(&reader, &p.file)) {
      return Fail(error, "bad partition file name");
    }
    p.bytes = reader.GetVarint64();
    p.edges = reader.GetVarint64();
    p.version = reader.GetVarint64();
    p.disk_bytes = reader.GetVarint64();
    uint64_t num_segments = reader.GetVarint64();
    if (!reader.ok() || num_segments > payload_len) {
      return Fail(error, "bad segment count");
    }
    p.segments.reserve(static_cast<size_t>(num_segments));
    for (uint64_t s = 0; s < num_segments; ++s) {
      uint64_t version_s = reader.GetVarint64();
      uint64_t count = reader.GetVarint64();
      p.segments.emplace_back(version_s, count);
    }
    m.partitions.push_back(std::move(p));
  }

  uint64_t num_pairs = reader.GetVarint64();
  if (!reader.ok() || num_pairs > payload_len) {
    return Fail(error, "bad pair count");
  }
  m.pair_done.reserve(static_cast<size_t>(num_pairs));
  for (uint64_t i = 0; i < num_pairs; ++i) {
    CheckpointManifest::PairDone pd;
    pd.i = reader.GetVarint64();
    pd.j = reader.GetVarint64();
    pd.vi = reader.GetVarint64();
    pd.vj = reader.GetVarint64();
    m.pair_done.push_back(pd);
  }

  uint64_t num_hashes = reader.GetVarint64();
  if (!reader.ok() || num_hashes > payload_len) {
    return Fail(error, "bad dedup hash count");
  }
  m.dedup_hashes.reserve(static_cast<size_t>(num_hashes));
  uint64_t prev = 0;
  for (uint64_t i = 0; i < num_hashes; ++i) {
    prev += reader.GetVarint64();
    m.dedup_hashes.push_back(prev);
  }

  uint64_t num_variants = reader.GetVarint64();
  if (!reader.ok() || num_variants > payload_len) {
    return Fail(error, "bad variant count");
  }
  m.variants.reserve(static_cast<size_t>(num_variants));
  prev = 0;
  for (uint64_t i = 0; i < num_variants; ++i) {
    prev += reader.GetVarint64();
    uint64_t count = reader.GetVarint64();
    m.variants.emplace_back(prev, static_cast<uint32_t>(count));
  }

  uint8_t has_prov = 0;
  if (!reader.GetRaw(&has_prov, 1) || has_prov > 1) {
    return Fail(error, "bad provenance flag");
  }
  m.has_provenance = has_prov == 1;
  m.provenance_bytes = reader.GetVarint64();
  m.provenance_records = reader.GetVarint64();

  if (!reader.ok()) {
    return Fail(error, "truncated payload");
  }
  if (!reader.AtEnd()) {
    return Fail(error, "trailing bytes in payload");
  }
  *manifest = std::move(m);
  return true;
}

bool SaveCheckpointManifest(const std::string& work_dir, const CheckpointManifest& manifest,
                            uint64_t* bytes_out, std::string* error) {
  std::vector<uint8_t> encoded;
  EncodeCheckpointManifest(manifest, &encoded);
  if (bytes_out != nullptr) {
    *bytes_out = encoded.size();
  }
  std::string path = CheckpointManifestPath(work_dir);
  std::string tmp = path + ".tmp";
  if (!WriteFileBytes(tmp, encoded, error) || !SyncFile(tmp, error)) {
    return false;
  }
  fault::CrashPoint("ckpt_temp_written");
  if (!RenameFile(tmp, path, error)) {
    return false;
  }
  fault::CrashPoint("ckpt_published");
  evt::Emit(evt::kCheckpointPublish, encoded.size());
  return true;
}

bool LoadCheckpointManifest(const std::string& work_dir, CheckpointManifest* manifest,
                            std::string* error) {
  std::string path = CheckpointManifestPath(work_dir);
  if (error != nullptr) {
    error->clear();
  }
  if (!FileExists(path)) {
    return false;
  }
  std::vector<uint8_t> bytes;
  std::string io_error;
  if (!ReadFileBytes(path, &bytes, &io_error)) {
    return Fail(error, "unreadable: " + io_error);
  }
  return DecodeCheckpointManifest(bytes, manifest, error);
}

}  // namespace grapple
