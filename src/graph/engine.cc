#include "src/graph/engine.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <mutex>
#include <unordered_map>
#include <unordered_set>

#include "src/graph/checkpoint.h"
#include "src/obs/event_log.h"
#include "src/obs/json.h"
#include "src/obs/profiler.h"
#include "src/obs/report.h"
#include "src/obs/trace.h"
#include "src/support/byte_io.h"
#include "src/support/env.h"
#include "src/support/event_hook.h"
#include "src/support/fault_injection.h"
#include "src/support/logging.h"

namespace grapple {

namespace {

struct Candidate {
  VertexId src = 0;
  VertexId dst = 0;
  Label label = kNoLabel;
  std::vector<uint8_t> payload;
  // Provenance (only filled when recording): content hashes + identities of
  // the two parent edges the join consumed.
  uint64_t parent_a = 0;
  uint64_t parent_b = 0;
  obs::ProvEdge a_edge;
  obs::ProvEdge b_edge;
};

obs::ProvEdge ProvEdgeOf(const EdgeRecord& record) {
  obs::ProvEdge edge;
  edge.src = record.src;
  edge.dst = record.dst;
  edge.label = record.label;
  return edge;
}

}  // namespace

// In-memory view of the two loaded partitions plus everything induced while
// they are resident.
class GraphEngine::LoadedPair {
 public:
  struct MemEdge {
    VertexId src;
    VertexId dst;
    Label label;
    uint32_t payload_off;
    uint32_t payload_len;
  };

  LoadedPair(VertexId lo1, VertexId hi1, VertexId lo2, VertexId hi2)
      : lo1_(lo1), hi1_(hi1), lo2_(lo2), hi2_(hi2) {}

  bool Owns(VertexId v) const {
    return (v >= lo1_ && v < hi1_) || (v >= lo2_ && v < hi2_);
  }

  size_t NumEdges() const { return edges_.size(); }
  const MemEdge& EdgeAt(size_t i) const { return edges_[i]; }
  const uint8_t* PayloadOf(const MemEdge& e) const { return arena_.data() + e.payload_off; }
  uint64_t arena_bytes() const { return arena_.size(); }

  const std::vector<uint32_t>& OutOf(VertexId v) const {
    auto it = out_.find(v);
    return it == out_.end() ? empty_ : it->second;
  }
  const std::vector<uint32_t>& InOf(VertexId v) const {
    auto it = in_.find(v);
    return it == in_.end() ? empty_ : it->second;
  }

  // Appends without any checks (caller already dedup'd globally).
  uint32_t Insert(VertexId src, VertexId dst, Label label, const uint8_t* payload, size_t len) {
    uint32_t idx = static_cast<uint32_t>(edges_.size());
    MemEdge e;
    e.src = src;
    e.dst = dst;
    e.label = label;
    e.payload_off = static_cast<uint32_t>(arena_.size());
    e.payload_len = static_cast<uint32_t>(len);
    arena_.insert(arena_.end(), payload, payload + len);
    edges_.push_back(e);
    out_[src].push_back(idx);
    in_[dst].push_back(idx);
    return idx;
  }

  EdgeRecord ToRecord(const MemEdge& e) const {
    EdgeRecord record;
    record.src = e.src;
    record.dst = e.dst;
    record.label = e.label;
    record.payload.assign(PayloadOf(e), PayloadOf(e) + e.payload_len);
    return record;
  }

 private:
  VertexId lo1_, hi1_, lo2_, hi2_;
  std::vector<MemEdge> edges_;
  std::vector<uint8_t> arena_;
  std::unordered_map<VertexId, std::vector<uint32_t>> out_;
  std::unordered_map<VertexId, std::vector<uint32_t>> in_;
  std::vector<uint32_t> empty_;
};

GraphEngine::GraphEngine(const Grammar* grammar, ConstraintOracle* oracle, EngineOptions options)
    : grammar_(grammar),
      oracle_(oracle),
      options_(std::move(options)),
      // Canonical snake_case + unit-suffix names (DESIGN.md §8).
      c_base_edges_(metrics_.Counter("engine_base_edges_total")),
      c_final_edges_(metrics_.Counter("engine_final_edges_total")),
      c_pair_loads_(metrics_.Counter("engine_pair_loads_total")),
      c_join_rounds_(metrics_.Counter("engine_join_rounds_total")),
      c_joins_attempted_(metrics_.Counter("engine_joins_attempted_total")),
      c_edges_added_(metrics_.Counter("engine_edges_added_total")),
      c_unsat_pruned_(metrics_.Counter("engine_unsat_pruned_total")),
      c_widened_triples_(metrics_.Counter("engine_widened_triples_total")),
      c_partition_splits_(metrics_.Counter("engine_partition_splits_total")),
      c_budget_borrows_(metrics_.Counter("engine_budget_borrows_total")),
      c_preprocess_ns_(metrics_.Counter("engine_preprocess_ns")),
      c_compute_ns_(metrics_.Counter("engine_compute_ns")),
      h_join_round_joins_(metrics_.Histogram("engine_join_round_joins")),
      c_witnesses_decoded_(metrics_.Counter("witnesses_decoded_total")),
      h_witness_decode_ns_(metrics_.Histogram("witness_decode_ns")),
      c_ckpt_written_(metrics_.Counter("ckpt_written_total")),
      c_ckpt_bytes_(metrics_.Counter("ckpt_bytes")),
      c_runs_resumed_(metrics_.Counter("runs_resumed_total")),
      owned_runtime_(options_.runtime != nullptr
                         ? nullptr
                         : std::make_unique<TaskRuntime>(TaskRuntimeOptions{
                               // One worker per join shard, plus one to
                               // service the background I/O lanes when the
                               // pipeline is on (mirrors the dedicated I/O
                               // worker the legacy two-pool layout had).
                               ResolveThreadCount(options_.num_threads) +
                                   (ResolveIoPipeline(options_.io_pipeline) ? 1 : 0),
                               ResolveStealPolicy(StealPolicy::kLocalityAware)})),
      runtime_(options_.runtime != nullptr ? options_.runtime : owned_runtime_.get()),
      join_shards_(ResolveThreadCount(options_.num_threads)),
      store_(options_.work_dir, &profiler_, &metrics_,
             PartitionStorePipeline{ResolveIoPipeline(options_.io_pipeline),
                                    options_.budget_lease, options_.memory_budget_bytes,
                                    runtime_}) {
  obs::InitTracingFromEnv();
  obs::EventLogInstall();
  // Propose this engine's work dir as the crash-dump target; the Grapple
  // facade (when present) has already claimed the run work dir.
  obs::EventLogSetCrashDumpPath(options_.work_dir + "/flightrec.bin", /*only_if_unset=*/true);
  metrics_.SetGauge("engine_budget_bytes", static_cast<double>(BudgetBytes()));
  live_budget_bytes_.store(BudgetBytes(), std::memory_order_relaxed);
  if (options_.record_provenance) {
    provenance_ = std::make_unique<obs::ProvenanceWriter>(store_.ProvenancePath(), &metrics_);
  }
  options_.checkpoint_interval = ResolveCheckpointInterval(options_.checkpoint_interval);
  options_.checkpoint_min_spacing_seconds =
      ResolveCheckpointSpacing(options_.checkpoint_min_spacing_seconds);
  if (options_.checkpoint_interval > 0) {
    store_.SetCheckpointMode(true);
  }
  introspect_metrics_ = obs::Introspection::RegisterMetricsSource(
      "engine", [this] { return metrics_.Snapshot(); });
  introspect_status_ = obs::Introspection::RegisterStatusSource("engine", [this] {
    obs::JsonWriter w;
    w.BeginObject();
    w.Key("work_dir").String(options_.work_dir);
    uint64_t pair = live_pair_.load(std::memory_order_relaxed);
    if (pair == kNoLivePair) {
      w.Key("pair_cursor").Null();
    } else {
      w.Key("pair_cursor").BeginArray();
      w.UInt(pair >> 32).UInt(pair & 0xffffffffu);
      w.EndArray();
    }
    w.Key("pairs_done").UInt(live_pairs_done_.load(std::memory_order_relaxed));
    w.Key("checkpoints_published").UInt(live_ckpts_published_.load(std::memory_order_relaxed));
    w.Key("budget_bytes").UInt(live_budget_bytes_.load(std::memory_order_relaxed));
    w.EndObject();
    return w.Take();
  });
}

uint64_t GraphEngine::BudgetBytes() const {
  return options_.budget_lease != nullptr ? options_.budget_lease->bytes()
                                          : options_.memory_budget_bytes;
}

void GraphEngine::ObserveWitnessDecode(uint64_t nanos) {
  metrics_.Add(c_witnesses_decoded_);
  metrics_.Observe(h_witness_decode_ns_, nanos);
}

void GraphEngine::AddBaseEdge(VertexId src, VertexId dst, Label label, const PathEncoding& enc) {
  GRAPPLE_CHECK(!finalized_) << "AddBaseEdge after Finalize";
  EdgeRecord edge;
  edge.src = src;
  edge.dst = dst;
  edge.label = label;
  edge.payload = oracle_->BasePayload(enc);
  pending_base_.push_back(std::move(edge));
}

void GraphEngine::ExpandEdge(const EdgeRecord& edge, std::vector<EdgeRecord>* out,
                             std::vector<int>* parent_of) const {
  // Closure over unary productions and mirror labels; payload shared. Each
  // queued record remembers which `out` slot its source record will occupy,
  // so the closure forms a forest rooted at the input edge.
  struct Item {
    EdgeRecord record;
    int parent;
  };
  std::vector<Item> queue;
  queue.push_back({edge, -1});
  std::unordered_set<uint64_t> seen;
  seen.insert(EdgeTripleHash(edge.src, edge.dst, edge.label));
  while (!queue.empty()) {
    Item item = std::move(queue.back());
    queue.pop_back();
    const EdgeRecord& cur = item.record;
    int my_index = static_cast<int>(out->size());
    for (Label result : grammar_->UnaryResults(cur.label)) {
      uint64_t key = EdgeTripleHash(cur.src, cur.dst, result);
      if (seen.insert(key).second) {
        EdgeRecord derived = cur;
        derived.label = result;
        queue.push_back({std::move(derived), my_index});
      }
    }
    Label mirror = grammar_->MirrorOf(cur.label);
    if (mirror != kNoLabel) {
      uint64_t key = EdgeTripleHash(cur.dst, cur.src, mirror);
      if (seen.insert(key).second) {
        EdgeRecord derived;
        derived.src = cur.dst;
        derived.dst = cur.src;
        derived.label = mirror;
        derived.payload = cur.payload;
        queue.push_back({std::move(derived), my_index});
      }
    }
    out->push_back(std::move(item.record));
    if (parent_of != nullptr) {
      parent_of->push_back(item.parent);
    }
  }
}

// Global dedup and per-triple variant bookkeeping, kept out of the header.
// Hash-based: a 64-bit collision silently drops an edge, with negligible
// probability at the scales this engine targets.
struct GraphEngineIndexHolder {
  std::unordered_set<uint64_t> content;
  std::unordered_map<uint64_t, uint32_t> variants;
};

GraphEngine::~GraphEngine() = default;

void EngineStats::SyncFromMetrics() {
  base_edges = metrics.CounterOr("engine_base_edges_total");
  final_edges = metrics.CounterOr("engine_final_edges_total");
  pair_loads = metrics.CounterOr("engine_pair_loads_total");
  join_rounds = metrics.CounterOr("engine_join_rounds_total");
  joins_attempted = metrics.CounterOr("engine_joins_attempted_total");
  edges_added = metrics.CounterOr("engine_edges_added_total");
  unsat_pruned = metrics.CounterOr("engine_unsat_pruned_total");
  widened_triples = metrics.CounterOr("engine_widened_triples_total");
  partition_splits = metrics.CounterOr("engine_partition_splits_total");
  timed_out = metrics.GaugeOr("engine_timed_out") > 0;
  num_partitions = static_cast<size_t>(metrics.GaugeOr("engine_num_partitions"));
  peak_partitions = static_cast<size_t>(metrics.GaugeOr("engine_peak_partitions"));
  preprocess_seconds = metrics.SecondsOf("engine_preprocess_ns");
  compute_seconds = metrics.SecondsOf("engine_compute_ns");
  oracle.merges = metrics.CounterOr("oracle_merges_total");
  oracle.constraints_checked = metrics.CounterOr("oracle_constraints_checked_total");
  oracle.cache_hits = metrics.CounterOr("oracle_cache_hits_total");
  oracle.unsat = metrics.CounterOr("oracle_unsat_total");
  oracle.unknown = metrics.CounterOr("oracle_unknown_total");
  oracle.lookup_seconds = metrics.SecondsOf("oracle_lookup_ns");
  oracle.solve_seconds = metrics.SecondsOf("oracle_solve_ns");
  phase_seconds.clear();
  const std::string prefix = obs::kPhaseNsPrefix;
  const std::string suffix = obs::kPhaseNsSuffix;
  for (const auto& [name, nanos] : metrics.counters) {
    if (name.size() > prefix.size() + suffix.size() && name.compare(0, prefix.size(), prefix) == 0 &&
        name.compare(name.size() - suffix.size(), suffix.size(), suffix) == 0) {
      std::string phase = name.substr(prefix.size(), name.size() - prefix.size() - suffix.size());
      phase_seconds[phase] = static_cast<double>(nanos) / 1e9;
    }
  }
}

std::string EngineStats::ToString() const { return obs::RenderEngineSummary(metrics); }

void GraphEngine::Finalize(VertexId num_vertices) {
  GRAPPLE_CHECK(!finalized_);
  finalized_ = true;
  obs::ScopedSpan span("finalize", "engine");
  WallTimer timer;
  index_ = std::make_unique<GraphEngineIndexHolder>();
  if (options_.checkpoint_interval > 0) {
    // Fingerprint the input (base edges + vertex count) so a manifest left
    // behind by a run over *different* inputs is rejected, not resumed.
    uint64_t fp = 1469598103934665603ULL;
    auto mix = [&fp](uint64_t v) {
      fp ^= v;
      fp *= 1099511628211ULL;
    };
    mix(num_vertices);
    for (const auto& edge : pending_base_) {
      mix(EdgeContentHash(edge.src, edge.dst, edge.label, edge.payload.data(),
                          edge.payload.size()));
    }
    base_fingerprint_ = fp;
    if (TryResume(num_vertices)) {
      pending_base_.clear();
      pending_base_.shrink_to_fit();
      metrics_.AddNanos(c_preprocess_ns_, timer.ElapsedNanos());
      stats_.preprocess_seconds = timer.ElapsedSeconds();
      stats_.num_partitions = store_.NumPartitions();
      stats_.peak_partitions = store_.NumPartitions();
      metrics_.SetGauge("engine_num_partitions", static_cast<double>(store_.NumPartitions()));
      metrics_.MaxGauge("engine_peak_partitions", static_cast<double>(store_.NumPartitions()));
      fault::CrashPoint("finalize_done");
      return;
    }
    // No usable manifest: scrub any leftovers of a dead run from the work
    // dir so stale partition bytes cannot leak into this run's state.
    store_.CleanWorkDirForFreshStart();
  }
  // Expand unary/mirror closures and dedup.
  std::vector<EdgeRecord> expanded;
  expanded.reserve(pending_base_.size() * 2);
  for (const auto& edge : pending_base_) {
    std::vector<EdgeRecord> closure;
    std::vector<int> parents;
    ExpandEdge(edge, &closure, provenance_ != nullptr ? &parents : nullptr);
    std::vector<uint64_t> hashes(provenance_ != nullptr ? closure.size() : 0, 0);
    for (size_t k = 0; k < closure.size(); ++k) {
      auto& derived = closure[k];
      uint64_t hash = EdgeContentHash(derived.src, derived.dst, derived.label,
                                      derived.payload.data(), derived.payload.size());
      if (provenance_ != nullptr) {
        hashes[k] = hash;
      }
      if (index_->content.insert(hash).second) {
        ++index_->variants[EdgeTripleHash(derived.src, derived.dst, derived.label)];
        if (provenance_ != nullptr) {
          if (parents[k] < 0) {
            provenance_->RecordBase(hash, ProvEdgeOf(derived), derived.payload.data(),
                                    derived.payload.size());
          } else {
            // closure[parents[k]] may have moved to `expanded` already; its
            // scalar identity fields survive the move.
            provenance_->RecordRewrite(hash, ProvEdgeOf(derived), derived.payload.data(),
                                       derived.payload.size(), hashes[parents[k]],
                                       ProvEdgeOf(closure[static_cast<size_t>(parents[k])]));
          }
        }
        expanded.push_back(std::move(derived));
      }
    }
  }
  pending_base_.clear();
  pending_base_.shrink_to_fit();
  stats_.base_edges = expanded.size();
  metrics_.Add(c_base_edges_, expanded.size());
  store_.Initialize(std::move(expanded), num_vertices, BudgetBytes() / 4);
  metrics_.AddNanos(c_preprocess_ns_, timer.ElapsedNanos());
  stats_.preprocess_seconds = timer.ElapsedSeconds();
  stats_.num_partitions = store_.NumPartitions();
  stats_.peak_partitions = store_.NumPartitions();
  metrics_.SetGauge("engine_num_partitions", static_cast<double>(store_.NumPartitions()));
  metrics_.MaxGauge("engine_peak_partitions", static_cast<double>(store_.NumPartitions()));
  fault::CrashPoint("finalize_done");
}

bool GraphEngine::TryResume(VertexId num_vertices) {
  CheckpointManifest manifest;
  std::string error;
  if (!LoadCheckpointManifest(options_.work_dir, &manifest, &error)) {
    if (!error.empty()) {
      GRAPPLE_LOG(WARNING) << "ignoring checkpoint in " << options_.work_dir << ": " << error
                           << "; starting fresh";
    }
    return false;
  }
  if (manifest.num_vertices != num_vertices || manifest.base_fingerprint != base_fingerprint_) {
    GRAPPLE_LOG(WARNING) << "checkpoint in " << options_.work_dir
                         << " was produced by a different input; starting fresh";
    return false;
  }
  if (manifest.has_provenance != (provenance_ != nullptr)) {
    GRAPPLE_LOG(WARNING) << "checkpoint in " << options_.work_dir
                         << " was recorded with provenance "
                         << (manifest.has_provenance ? "on" : "off")
                         << " but this run has it " << (provenance_ != nullptr ? "on" : "off")
                         << "; starting fresh";
    return false;
  }
  // Validate the provenance log up front, before any state is mutated, so
  // most failures leave the engine pristine for the fresh-start path.
  const std::string prov_path = store_.ProvenancePath();
  if (manifest.has_provenance && manifest.provenance_bytes > 0) {
    int64_t on_disk = FileSizeBytes(prov_path);
    if (on_disk < 0 || static_cast<uint64_t>(on_disk) < manifest.provenance_bytes) {
      GRAPPLE_LOG(WARNING) << "provenance log " << prov_path << " is "
                           << (on_disk < 0 ? "missing" : "shorter than the checkpoint recorded")
                           << "; starting fresh";
      return false;
    }
  }
  if (!store_.RestoreFromCheckpoint(manifest.partitions, manifest.file_counter, num_vertices,
                                    &error)) {
    GRAPPLE_LOG(WARNING) << "checkpoint restore failed: " << error << "; starting fresh";
    return false;
  }
  if (manifest.has_provenance) {
    // Drop log bytes the dead run appended past the manifest's high-water
    // mark; the resumed run re-derives (and re-records) everything after it.
    if (FileExists(prov_path) && !TruncateFile(prov_path, manifest.provenance_bytes, &error)) {
      GRAPPLE_LOG(WARNING) << "could not truncate provenance log: " << error
                           << "; starting fresh";
      return false;  // caller scrubs the work dir; Initialize() rebuilds the store
    }
    provenance_->ResumeAt(manifest.provenance_bytes, manifest.provenance_records);
  }
  index_->content.reserve(manifest.dedup_hashes.size());
  index_->content.insert(manifest.dedup_hashes.begin(), manifest.dedup_hashes.end());
  index_->variants.reserve(manifest.variants.size());
  for (const auto& [triple, count] : manifest.variants) {
    index_->variants[triple] = count;
  }
  for (const CheckpointManifest::PairDone& pd : manifest.pair_done) {
    pair_done_[{static_cast<size_t>(pd.i), static_cast<size_t>(pd.j)}] = {pd.vi, pd.vj};
  }
  stats_.base_edges = manifest.base_edges;
  metrics_.Add(c_base_edges_, manifest.base_edges);
  metrics_.Add(c_runs_resumed_);
  GRAPPLE_LOG(INFO) << "resumed from checkpoint in " << options_.work_dir << " ("
                    << manifest.partitions.size() << " partitions, "
                    << manifest.dedup_hashes.size() << " unique edges)";
  return true;
}

void GraphEngine::WriteCheckpoint() {
  fault::CrashPoint("ckpt_begin");
  ScopedPhase ckpt_phase(&profiler_, "ckpt");
  obs::ProfPhase prof_phase("ckpt");
  obs::ScopedSpan span("checkpoint", "engine");
  // Quiesce: every queued write must be on disk (well, in the page cache —
  // the threat model is process death, see checkpoint.h) before the
  // manifest that references those bytes is published.
  store_.Sync();
  if (provenance_ != nullptr) {
    provenance_->Flush();
  }
  CheckpointManifest manifest;
  manifest.num_vertices = store_.num_vertices();
  manifest.base_fingerprint = base_fingerprint_;
  manifest.base_edges = stats_.base_edges;
  manifest.file_counter = store_.file_counter();
  manifest.partitions = store_.SnapshotForCheckpoint();
  manifest.pair_done.reserve(pair_done_.size());
  for (const auto& [pair, versions] : pair_done_) {
    manifest.pair_done.push_back({pair.first, pair.second, versions.first, versions.second});
  }
  manifest.dedup_hashes.assign(index_->content.begin(), index_->content.end());
  std::sort(manifest.dedup_hashes.begin(), manifest.dedup_hashes.end());
  manifest.variants.assign(index_->variants.begin(), index_->variants.end());
  std::sort(manifest.variants.begin(), manifest.variants.end());
  if (provenance_ != nullptr) {
    manifest.has_provenance = true;
    manifest.provenance_bytes = provenance_->bytes_written();
    manifest.provenance_records = provenance_->records_written();
  }
  uint64_t bytes = 0;
  std::string error;
  if (!SaveCheckpointManifest(options_.work_dir, manifest, &bytes, &error)) {
    throw IoError("checkpoint publish failed: " + error);
  }
  metrics_.Add(c_ckpt_written_);
  metrics_.Add(c_ckpt_bytes_, bytes);
  live_ckpts_published_.fetch_add(1, std::memory_order_relaxed);
  since_last_checkpoint_.Reset();
  store_.MarkCheckpointPublished();
  // The files retired since the previous manifest are no longer referenced
  // by anything on disk; now they can actually go.
  store_.CollectGarbage();
  fault::CrashPoint("ckpt_gc_done");
}

void GraphEngine::Run() {
  GRAPPLE_CHECK(finalized_) << "call Finalize before Run";
  obs::ScopedSpan span("engine_run", "engine");
  evt::Emit(evt::kRunStart, store_.NumPartitions());
  bool timed_out = false;
  WallTimer timer;
  for (;;) {
    if (options_.max_seconds > 0 && timer.ElapsedSeconds() > options_.max_seconds) {
      timed_out = true;
      break;
    }
    // Pick the next stale pair (i <= j).
    bool found = false;
    size_t pick_i = 0;
    size_t pick_j = 0;
    size_t n = store_.NumPartitions();
    for (size_t i = 0; i < n && !found; ++i) {
      for (size_t j = i; j < n && !found; ++j) {
        auto versions = std::make_pair(store_.Info(i).version, store_.Info(j).version);
        auto it = pair_done_.find({i, j});
        if (it == pair_done_.end() || it->second != versions) {
          pick_i = i;
          pick_j = j;
          found = true;
        }
      }
    }
    if (!found) {
      break;
    }
    // Read ahead: prefetch the pair the scan would pick next (exact when
    // this pair converges without writes — the common case during the final
    // fixpoint sweep) so its partitions load from cache.
    size_t next_i = 0;
    size_t next_j = 0;
    if (store_.pipeline_enabled() && PredictNextPair(pick_i, pick_j, &next_i, &next_j)) {
      store_.Hint({next_i, next_j});
    }
    live_pair_.store((static_cast<uint64_t>(pick_i) << 32) | static_cast<uint64_t>(pick_j),
                     std::memory_order_relaxed);
    evt::Emit(evt::kPairStart, pick_i, pick_j);
    {
      obs::ProfPair prof_pair(static_cast<uint32_t>(pick_i), static_cast<uint32_t>(pick_j));
      ProcessPair(pick_i, pick_j);
    }
    evt::Emit(evt::kPairEnd, pick_i, pick_j);
    live_pair_.store(kNoLivePair, std::memory_order_relaxed);
    live_pairs_done_.fetch_add(1, std::memory_order_relaxed);
    fault::CrashPoint("run_pair_done");
    // Interval reached AND the spacing window elapsed; otherwise the
    // counter stays saturated and the next pair re-checks the clock.
    if (options_.checkpoint_interval > 0 &&
        ++pairs_since_checkpoint_ >= options_.checkpoint_interval &&
        since_last_checkpoint_.ElapsedSeconds() >= options_.checkpoint_min_spacing_seconds) {
      WriteCheckpoint();
      pairs_since_checkpoint_ = 0;
    }
  }
  // Write-behind barrier: the on-disk state must be complete when Run()
  // returns (result iteration, witness decoding, external readers).
  store_.Sync();
  if (provenance_ != nullptr) {
    provenance_->Flush();
  }
  if (options_.checkpoint_interval > 0) {
    // Final manifest: a kill between here and the caller consuming results
    // resumes into an already-converged fixpoint (the scheduler finds no
    // stale pair) and regenerates identical reports.
    WriteCheckpoint();
    fault::CrashPoint("run_complete");
  }
  evt::Emit(evt::kRunEnd, live_pairs_done_.load(std::memory_order_relaxed));
  metrics_.AddNanos(c_compute_ns_, timer.ElapsedNanos());
  metrics_.Add(c_final_edges_, store_.TotalEdges());
  metrics_.SetGauge("engine_num_partitions", static_cast<double>(store_.NumPartitions()));
  metrics_.MaxGauge("engine_peak_partitions", static_cast<double>(store_.NumPartitions()));
  metrics_.SetGauge("engine_timed_out", timed_out ? 1.0 : 0.0);
  // The registry (merged with phase timers and the oracle) is the source of
  // truth; the legacy named fields become a view over it.
  stats_.metrics = Metrics();
  stats_.SyncFromMetrics();
}

bool GraphEngine::PredictNextPair(size_t pi, size_t pj, size_t* next_i, size_t* next_j) const {
  // Mirror the Run() scan, starting just past (pi, pj): assuming that pair
  // converges (no version bumps, no splits), the first stale pair after it
  // is exactly what the scheduler picks next.
  size_t n = store_.NumPartitions();
  size_t i = pi;
  size_t j = pj + 1;
  for (; i < n; ++i, j = i) {
    for (; j < n; ++j) {
      auto versions = std::make_pair(store_.Info(i).version, store_.Info(j).version);
      auto it = pair_done_.find({i, j});
      if (it == pair_done_.end() || it->second != versions) {
        *next_i = i;
        *next_j = j;
        return true;
      }
    }
  }
  return false;
}

obs::MetricsSnapshot GraphEngine::Metrics() const {
  obs::MetricsSnapshot snapshot = metrics_.Snapshot();
  for (const auto& [name, seconds] : profiler_.Snapshot()) {
    uint64_t nanos = seconds <= 0 ? 0 : static_cast<uint64_t>(std::llround(seconds * 1e9));
    snapshot.counters[std::string(obs::kPhaseNsPrefix) + name + obs::kPhaseNsSuffix] += nanos;
  }
  snapshot.Merge(oracle_->Metrics());
  // Process-wide robustness gauges (byte_io retries, fault shim). Gauges,
  // not counters: several engines in one process observe the same totals,
  // and snapshot merges take the max rather than double-counting.
  snapshot.gauges["io_retries"] = static_cast<double>(IoRetriesTotal());
  snapshot.gauges["faults_injected"] = static_cast<double>(fault::InjectedCount());
  return snapshot;
}

void GraphEngine::ProcessPair(size_t pi, size_t pj) {
  obs::ScopedSpan span("process_pair", "engine");
  metrics_.Add(c_pair_loads_);
  const PartitionInfo& info_i = store_.Info(pi);
  const PartitionInfo& info_j = store_.Info(pj);
  LoadedPair pair(info_i.lo, info_i.hi, pi == pj ? info_i.lo : info_j.lo,
                  pi == pj ? info_i.hi : info_j.hi);

  std::vector<EdgeRecord> loaded = store_.Load(pi);
  size_t count_i = loaded.size();
  if (pi != pj) {
    std::vector<EdgeRecord> more = store_.Load(pj);
    loaded.insert(loaded.end(), std::make_move_iterator(more.begin()),
                  std::make_move_iterator(more.end()));
  }
  for (const auto& edge : loaded) {
    pair.Insert(edge.src, edge.dst, edge.label, edge.payload.data(), edge.payload.size());
  }
  size_t total_loaded = loaded.size();
  loaded.clear();
  loaded.shrink_to_fit();

  ScopedPhase join_phase(&profiler_, "join");
  obs::ProfPhase prof_join_phase("join");
  GraphEngineIndexHolder& index = *index_;
  const bool record_prov = provenance_ != nullptr;
  auto prov_edge_of = [](const LoadedPair::MemEdge& e) {
    obs::ProvEdge pe;
    pe.src = e.src;
    pe.dst = e.dst;
    pe.label = e.label;
    return pe;
  };

  // Delta frontier: if this pair previously reached a local fixpoint at
  // versions (vi, vj), the old x old joins are already done — only edges
  // recorded after those versions seed the frontier. Edge files are append
  // ordered and rewrites preserve prefix order, so "new" is a suffix of
  // each partition's load.
  size_t old_i = 0;
  size_t old_j = 0;
  auto prev_done = pair_done_.find({pi, pj});
  if (prev_done != pair_done_.end()) {
    old_i = store_.EdgesAtVersion(pi, prev_done->second.first);
    if (pi != pj) {
      old_j = store_.EdgesAtVersion(pj, prev_done->second.second);
    }
  }
  std::vector<uint32_t> frontier;
  std::vector<uint8_t> in_frontier(pair.NumEdges(), 0);
  for (size_t e = 0; e < total_loaded; ++e) {
    bool is_new = (e < count_i) ? e >= old_i : (e - count_i) >= old_j;
    if (is_new) {
      frontier.push_back(static_cast<uint32_t>(e));
      in_frontier[e] = 1;
    }
  }
  std::vector<EdgeRecord> external;
  bool changed_i = false;
  bool changed_j = false;
  bool complete = true;

  while (!frontier.empty()) {
    metrics_.Add(c_join_rounds_);
    obs::ScopedSpan round_span("join_round", "engine");
    // --- parallel candidate generation ---
    // Shard count is pinned to the configured join parallelism, not to the
    // runtime's worker count: shards cover contiguous frontier ranges and
    // are integrated in index order below, so the result is identical for
    // any worker count and any steal policy.
    size_t shards = join_shards_;
    std::vector<std::vector<Candidate>> shard_candidates(shards);
    std::atomic<uint64_t> joins{0};
    auto join_shard = [&](size_t shard, size_t begin, size_t end) {
      obs::ScopedSpan shard_span("join_shard", "engine");
      auto& out = shard_candidates[shard];
      uint64_t local_joins = 0;
      for (size_t f = begin; f < end; ++f) {
        uint32_t idx = frontier[f];
        const auto& e1 = pair.EdgeAt(idx);
        // Forward: e1 as the first edge of the pair.
        if (pair.Owns(e1.dst)) {
          for (uint32_t idx2 : pair.OutOf(e1.dst)) {
            const auto& e2 = pair.EdgeAt(idx2);
            const auto& results = grammar_->BinaryResults(e1.label, e2.label);
            if (results.empty()) {
              continue;
            }
            ++local_joins;
            auto payload = oracle_->MergeAndCheck(pair.PayloadOf(e1), e1.payload_len,
                                                  pair.PayloadOf(e2), e2.payload_len);
            if (!payload.has_value()) {
              continue;
            }
            uint64_t hash_a = 0;
            uint64_t hash_b = 0;
            if (record_prov) {
              hash_a = EdgeContentHash(e1.src, e1.dst, e1.label, pair.PayloadOf(e1),
                                       e1.payload_len);
              hash_b = EdgeContentHash(e2.src, e2.dst, e2.label, pair.PayloadOf(e2),
                                       e2.payload_len);
            }
            for (Label result : results) {
              Candidate c;
              c.src = e1.src;
              c.dst = e2.dst;
              c.label = result;
              c.payload = *payload;
              if (record_prov) {
                c.parent_a = hash_a;
                c.parent_b = hash_b;
                c.a_edge = prov_edge_of(e1);
                c.b_edge = prov_edge_of(e2);
              }
              out.push_back(std::move(c));
            }
          }
        }
        // Backward: e1 as the second edge; skip first edges that are in the
        // frontier themselves (their forward pass covers the pair).
        for (uint32_t idx0 : pair.InOf(e1.src)) {
          if (in_frontier[idx0]) {
            continue;
          }
          const auto& e0 = pair.EdgeAt(idx0);
          const auto& results = grammar_->BinaryResults(e0.label, e1.label);
          if (results.empty()) {
            continue;
          }
          ++local_joins;
          auto payload = oracle_->MergeAndCheck(pair.PayloadOf(e0), e0.payload_len,
                                                pair.PayloadOf(e1), e1.payload_len);
          if (!payload.has_value()) {
            continue;
          }
          uint64_t hash_a = 0;
          uint64_t hash_b = 0;
          if (record_prov) {
            hash_a = EdgeContentHash(e0.src, e0.dst, e0.label, pair.PayloadOf(e0),
                                     e0.payload_len);
            hash_b = EdgeContentHash(e1.src, e1.dst, e1.label, pair.PayloadOf(e1),
                                     e1.payload_len);
          }
          for (Label result : results) {
            Candidate c;
            c.src = e0.src;
            c.dst = e1.dst;
            c.label = result;
            c.payload = *payload;
            if (record_prov) {
              c.parent_a = hash_a;
              c.parent_b = hash_b;
              c.a_edge = prov_edge_of(e0);
              c.b_edge = prov_edge_of(e1);
            }
            out.push_back(std::move(c));
          }
        }
      }
      joins.fetch_add(local_joins, std::memory_order_relaxed);
    };
    size_t frontier_size = frontier.size();
    size_t shards_used = std::min(frontier_size, shards);
    if (shards_used <= 1) {
      if (frontier_size > 0) {
        join_shard(0, 0, frontier_size);
      }
    } else {
      // Explicit task objects on the unified runtime: one foreground task
      // per contiguous shard, tagged with this pair's locality key so the
      // locality-aware steal policy prefers to leave them where the pair's
      // Hint()ed partitions are warm. The group wait help-executes
      // unclaimed shards, so this cannot deadlock even when every runtime
      // worker is occupied by a checker task.
      uint32_t checker = obs::ProfCurrentChecker();
      uint64_t pair_key =
          (static_cast<uint64_t>(pi + 1) << 32) | static_cast<uint64_t>(pj + 1);
      size_t chunk = (frontier_size + shards_used - 1) / shards_used;
      TaskGroup group(runtime_);
      for (size_t shard = 0; shard < shards_used; ++shard) {
        size_t begin = shard * chunk;
        size_t end = std::min(frontier_size, begin + chunk);
        if (begin >= end) {
          continue;
        }
        group.Submit(TaskLane::kForeground, pair_key + shard,
                     [&, shard, begin, end, checker] {
                       obs::ProfChecker prof_checker(checker);
                       obs::ProfPair prof_pair(static_cast<uint32_t>(pi),
                                               static_cast<uint32_t>(pj));
                       obs::ProfPhase prof_phase("join");
                       join_shard(shard, begin, end);
                     });
      }
      group.Wait();
    }
    metrics_.Add(c_joins_attempted_, joins.load());
    metrics_.Observe(h_join_round_joins_, joins.load());

    // --- sequential integration ---
    std::fill(in_frontier.begin(), in_frontier.end(), 0);
    std::vector<uint32_t> next_frontier;
    // `out_hash` (when recording) receives the content hash the record ended
    // up stored under — post-widening, and also on dedup (where it names the
    // already-recorded edge) — so closure rewrites can reference it.
    auto integrate = [&](EdgeRecord&& record, uint64_t parent_a, const obs::ProvEdge& a_edge,
                         uint64_t parent_b, const obs::ProvEdge& b_edge, bool is_rewrite,
                         uint64_t* out_hash) {
      uint64_t triple = EdgeTripleHash(record.src, record.dst, record.label);
      uint64_t content = EdgeContentHash(record.src, record.dst, record.label,
                                         record.payload.data(), record.payload.size());
      if (out_hash != nullptr) {
        *out_hash = content;
      }
      if (index.content.count(content) != 0) {
        return;
      }
      bool widened = false;
      uint32_t& variant_count = index.variants[triple];
      if (variant_count >= options_.max_variants_per_triple) {
        // Widen: replace further variants by the always-true payload.
        record.payload = oracle_->TruePayload();
        content = EdgeContentHash(record.src, record.dst, record.label, record.payload.data(),
                                  record.payload.size());
        if (out_hash != nullptr) {
          *out_hash = content;
        }
        if (index.content.count(content) != 0) {
          return;
        }
        widened = true;
        metrics_.Add(c_widened_triples_);
      }
      index.content.insert(content);
      ++variant_count;
      metrics_.Add(c_edges_added_);
      if (record_prov) {
        if (is_rewrite) {
          provenance_->RecordRewrite(content, ProvEdgeOf(record), record.payload.data(),
                                     record.payload.size(), parent_a, a_edge);
        } else {
          provenance_->RecordJoin(content, ProvEdgeOf(record), record.payload.data(),
                                  record.payload.size(), parent_a, a_edge, parent_b, b_edge,
                                  widened);
        }
      }
      if (pair.Owns(record.src)) {
        uint32_t idx = pair.Insert(record.src, record.dst, record.label, record.payload.data(),
                                   record.payload.size());
        next_frontier.push_back(idx);
        in_frontier.push_back(1);
        VertexId src = record.src;
        if (src >= store_.Info(pi).lo && src < store_.Info(pi).hi) {
          changed_i = true;
        } else {
          changed_j = true;
        }
      } else {
        external.push_back(std::move(record));
      }
    };
    const obs::ProvEdge no_edge;
    for (auto& shard : shard_candidates) {
      for (auto& candidate : shard) {
        EdgeRecord record;
        record.src = candidate.src;
        record.dst = candidate.dst;
        record.label = candidate.label;
        record.payload = std::move(candidate.payload);
        std::vector<EdgeRecord> closure;
        std::vector<int> parents;
        ExpandEdge(record, &closure, record_prov ? &parents : nullptr);
        std::vector<uint64_t> hashes(record_prov ? closure.size() : 0, 0);
        for (size_t k = 0; k < closure.size(); ++k) {
          if (!record_prov) {
            integrate(std::move(closure[k]), 0, no_edge, 0, no_edge, false, nullptr);
          } else if (parents[k] < 0) {
            // The join result itself.
            integrate(std::move(closure[k]), candidate.parent_a, candidate.a_edge,
                      candidate.parent_b, candidate.b_edge, false, &hashes[k]);
          } else {
            // Unary/mirror rewrite of an earlier closure record (whose
            // scalar identity fields survive its move).
            size_t p = static_cast<size_t>(parents[k]);
            integrate(std::move(closure[k]), hashes[p], ProvEdgeOf(closure[p]), 0, no_edge,
                      true, &hashes[k]);
          }
        }
      }
    }
    frontier = std::move(next_frontier);
    for (uint32_t idx : frontier) {
      in_frontier[idx] = 1;
    }
    // Eager memory guard: when the resident pair has outgrown the budget,
    // first try to borrow headroom from the shared arbiter (released by
    // engines that already finished); only if that fails stop the local
    // fixpoint early, write back (splitting), and reschedule.
    metrics_.MaxGauge("engine_peak_resident_bytes", static_cast<double>(pair.arena_bytes()));
    if (pair.arena_bytes() > BudgetBytes()) {
      uint64_t want = pair.arena_bytes() + pair.arena_bytes() / 2;
      if (options_.budget_lease != nullptr && options_.budget_lease->TryGrowTo(want)) {
        metrics_.Add(c_budget_borrows_);
        metrics_.SetGauge("engine_budget_bytes", static_cast<double>(BudgetBytes()));
        live_budget_bytes_.store(BudgetBytes(), std::memory_order_relaxed);
      } else {
        complete = false;
        break;
      }
    }
  }

  // --- write back ---
  uint64_t target = BudgetBytes() / 4;
  auto writeback = [&](size_t index_p, bool changed, VertexId lo, VertexId hi) {
    if (!changed) {
      return false;
    }
    std::vector<EdgeRecord> edges;
    uint64_t bytes = 0;
    for (size_t e = 0; e < pair.NumEdges(); ++e) {
      const auto& mem = pair.EdgeAt(e);
      if (mem.src >= lo && mem.src < hi) {
        edges.push_back(pair.ToRecord(mem));
        bytes += 16 + mem.payload_len;
      }
    }
    if (bytes > target * 2 && hi - lo > 1) {
      size_t pieces = store_.SplitAndRewrite(index_p, std::move(edges), target);
      if (pieces > 1) {
        metrics_.Add(c_partition_splits_, pieces - 1);
        return true;  // layout changed
      }
      return false;
    }
    store_.Rewrite(index_p, edges);
    return false;
  };

  // Write the higher-indexed partition first so index pi stays valid if pj
  // splits.
  bool layout_changed = false;
  if (pi != pj) {
    layout_changed |= writeback(pj, changed_j, store_.Info(pj).lo, store_.Info(pj).hi);
  }
  layout_changed |= writeback(pi, changed_i || (pi == pj && changed_j), store_.Info(pi).lo,
                              store_.Info(pi).hi);

  // Flush externals grouped by owner.
  if (!external.empty()) {
    std::sort(external.begin(), external.end(),
              [](const EdgeRecord& a, const EdgeRecord& b) { return a.src < b.src; });
    size_t begin = 0;
    while (begin < external.size()) {
      size_t owner = store_.PartitionOf(external[begin].src);
      size_t end = begin;
      while (end < external.size() &&
             external[end].src < store_.Info(owner).hi) {
        ++end;
      }
      std::vector<EdgeRecord> chunk(external.begin() + static_cast<ptrdiff_t>(begin),
                                    external.begin() + static_cast<ptrdiff_t>(end));
      store_.Append(owner, chunk);
      begin = end;
    }
  }

  metrics_.MaxGauge("engine_peak_partitions", static_cast<double>(store_.NumPartitions()));

  if (layout_changed) {
    // Partition indices shifted; all bookkeeping is stale.
    pair_done_.clear();
    return;
  }
  if (complete) {
    pair_done_[{pi, pj}] = {store_.Info(pi).version, store_.Info(pj).version};
  } else {
    pair_done_.erase({pi, pj});
  }
}

void GraphEngine::ForEachEdge(const std::function<void(const EdgeRecord&)>& fn) {
  for (size_t p = 0; p < store_.NumPartitions(); ++p) {
    std::vector<EdgeRecord> edges = store_.Load(p);
    for (const auto& edge : edges) {
      fn(edge);
    }
  }
}

void GraphEngine::ForEachEdgeWithLabel(Label label,
                                       const std::function<void(const EdgeRecord&)>& fn) {
  ForEachEdge([&](const EdgeRecord& edge) {
    if (edge.label == label) {
      fn(edge);
    }
  });
}

}  // namespace grapple
