// Crash-safe checkpoint manifests for the out-of-core fixpoint (DESIGN.md
// §11).
//
// A manifest is one small, versioned, checksummed file
// (<work_dir>/checkpoint.manifest) that pins everything the engine needs to
// re-enter Run() as if the process had never died:
//
//   * the partition table, including each file's on-disk byte size at
//     publish time — the "generation number" recovery truncates back to,
//     dropping any bytes appended after the manifest;
//   * the pair-scheduling cursor (pair_done_ version map);
//   * the global unique-edge dedup state (content hashes + per-triple
//     variant counts), so a resumed run re-derives exactly the edges the
//     dead run had not yet derived — and records no duplicate provenance;
//   * the provenance-log high-water mark (bytes, records), truncated to on
//     recovery;
//   * a fingerprint of the base edge set, so a manifest left behind by a
//     different program or configuration is rejected instead of resumed.
//
// Publish protocol: encode → write <manifest>.tmp → fsync → rename. The
// rename is the commit point; a crash on either side leaves the previous
// manifest (or none) intact. Partition data itself is deliberately NOT
// fsynced: the threat model is process death (kill -9, OOM), where the
// page cache survives, not power loss.
#ifndef GRAPPLE_SRC_GRAPH_CHECKPOINT_H_
#define GRAPPLE_SRC_GRAPH_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/graph/edge.h"

namespace grapple {

inline constexpr uint32_t kCheckpointFormatVersion = 1;

// Snapshot of one PartitionInfo plus the on-disk size recovery truncates
// the file back to. `file` is the basename; the work dir is implicit so a
// work dir can be relocated between runs.
struct CheckpointPartition {
  VertexId lo = 0;
  VertexId hi = 0;
  std::string file;
  uint64_t bytes = 0;  // raw-format byte charge (layout decisions)
  uint64_t edges = 0;
  uint64_t version = 0;
  uint64_t disk_bytes = 0;  // actual file size at publish time
  std::vector<std::pair<uint64_t, uint64_t>> segments;
};

struct CheckpointManifest {
  uint64_t num_vertices = 0;
  // FNV-1a over the expanded base edge set; guards against resuming state
  // from a different program / grammar / oracle configuration.
  uint64_t base_fingerprint = 0;
  uint64_t base_edges = 0;
  uint64_t file_counter = 0;
  std::vector<CheckpointPartition> partitions;
  // (i, j) -> (version_i, version_j), flattened from the engine's map.
  struct PairDone {
    uint64_t i = 0;
    uint64_t j = 0;
    uint64_t vi = 0;
    uint64_t vj = 0;
  };
  std::vector<PairDone> pair_done;
  std::vector<uint64_t> dedup_hashes;  // sorted ascending
  // (triple hash, variant count), sorted by hash.
  std::vector<std::pair<uint64_t, uint32_t>> variants;
  bool has_provenance = false;
  uint64_t provenance_bytes = 0;
  uint64_t provenance_records = 0;
};

std::string CheckpointManifestPath(const std::string& work_dir);

void EncodeCheckpointManifest(const CheckpointManifest& manifest, std::vector<uint8_t>* out);

// Strict decode: any truncation, checksum mismatch, bad magic, or format
// version skew fails with a description — the caller falls back to a clean
// restart, never to partially restored state.
bool DecodeCheckpointManifest(const std::vector<uint8_t>& bytes, CheckpointManifest* manifest,
                              std::string* error);

// Atomically publishes the manifest (temp + fsync + rename), passing the
// ckpt_temp_written / ckpt_published crash points. `bytes_out` (optional)
// receives the encoded size. Returns false + error on I/O failure.
bool SaveCheckpointManifest(const std::string& work_dir, const CheckpointManifest& manifest,
                            uint64_t* bytes_out, std::string* error);

// Returns false when the manifest is missing (empty *error) or invalid
// (*error describes why). Never returns partially filled state.
bool LoadCheckpointManifest(const std::string& work_dir, CheckpointManifest* manifest,
                            std::string* error);

}  // namespace grapple

#endif  // GRAPPLE_SRC_GRAPH_CHECKPOINT_H_
