#include "src/graph/partition_codec.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <unordered_map>

namespace grapple {

namespace {

constexpr char kBlockMagic[4] = {'G', 'R', 'P', 'B'};

uint64_t Fnv1aBytes(const uint8_t* data, size_t len) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (size_t i = 0; i < len; ++i) {
    h = (h ^ data[i]) * 0x100000001b3ULL;
  }
  return h;
}

size_t VarintLen(uint64_t value) {
  size_t len = 1;
  while (value >= 0x80) {
    value >>= 7;
    ++len;
  }
  return len;
}

std::string At(const std::string& path, size_t offset) {
  return path + " at offset " + std::to_string(offset);
}

PartitionDecodeStatus Corrupt(std::string message) {
  PartitionDecodeStatus status;
  status.ok = false;
  status.error = std::move(message);
  return status;
}

// Hash/equality over payload byte spans so dedup avoids copying payloads
// into map keys.
struct SpanRef {
  const uint8_t* data;
  size_t len;
};
struct SpanHash {
  size_t operator()(const SpanRef& s) const {
    return static_cast<size_t>(Fnv1aBytes(s.data, s.len));
  }
};
struct SpanEq {
  bool operator()(const SpanRef& a, const SpanRef& b) const {
    return a.len == b.len && (a.len == 0 || std::memcmp(a.data, b.data, a.len) == 0);
  }
};

size_t SharedPrefix(const SpanRef& a, const SpanRef& b) {
  size_t n = std::min(a.len, b.len);
  size_t i = 0;
  while (i < n && a.data[i] == b.data[i]) {
    ++i;
  }
  return i;
}

PartitionDecodeStatus DecodeRaw(const std::string& path, const std::vector<uint8_t>& bytes,
                                std::vector<EdgeRecord>* edges) {
  ByteReader reader(bytes);
  while (!reader.AtEnd()) {
    size_t offset = reader.position();
    EdgeRecord edge;
    if (!DeserializeEdge(&reader, &edge)) {
      return Corrupt("truncated or corrupt raw edge record in " + At(path, offset) + " (" +
                     std::to_string(bytes.size()) + " bytes total)");
    }
    edges->push_back(std::move(edge));
  }
  return PartitionDecodeStatus();
}

PartitionDecodeStatus DecodeBlocks(const std::string& path, const std::vector<uint8_t>& bytes,
                                   std::vector<EdgeRecord>* edges) {
  if (bytes.size() < kBlockFileHeaderSize) {
    return Corrupt("truncated block-file header in " + At(path, 0));
  }
  uint8_t version = bytes[4];
  if (version != kBlockFormatVersion) {
    return Corrupt("unsupported block format version " + std::to_string(version) + " in " +
                   At(path, 4) + " (this build reads v" +
                   std::to_string(kBlockFormatVersion) + ")");
  }
  ByteReader reader(bytes);
  reader.Skip(kBlockFileHeaderSize);
  while (!reader.AtEnd()) {
    size_t block_offset = reader.position();
    uint64_t edge_count = reader.GetVarint64();
    uint64_t payload_count = reader.GetVarint64();
    uint64_t body_len = reader.GetVarint64();
    if (!reader.ok()) {
      return Corrupt("truncated block header in " + At(path, block_offset));
    }
    if (edge_count == 0 || payload_count == 0 || payload_count > edge_count) {
      return Corrupt("implausible block header in " + At(path, block_offset) + " (" +
                     std::to_string(edge_count) + " edges, " + std::to_string(payload_count) +
                     " payloads)");
    }
    if (body_len > reader.remaining() || reader.remaining() - body_len < 8) {
      return Corrupt("truncated block body in " + At(path, block_offset) + " (need " +
                     std::to_string(body_len) + "+8 bytes, " +
                     std::to_string(reader.remaining()) + " remain)");
    }
    const uint8_t* body = bytes.data() + reader.position();
    size_t body_offset = reader.position();
    reader.Skip(body_len);
    uint64_t stored_sum = reader.GetFixed64();
    uint64_t actual_sum = Fnv1aBytes(body, body_len);
    if (stored_sum != actual_sum) {
      char expected[24];
      char actual[24];
      std::snprintf(expected, sizeof(expected), "%016llx",
                    static_cast<unsigned long long>(stored_sum));
      std::snprintf(actual, sizeof(actual), "%016llx",
                    static_cast<unsigned long long>(actual_sum));
      return Corrupt("block checksum mismatch in " + At(path, block_offset) + " (stored " +
                     expected + ", computed " + actual + " over " + std::to_string(body_len) +
                     " body bytes)");
    }
    // The body is checksum-verified; remaining failures are structural.
    ByteReader body_reader(body, body_len);
    std::vector<std::vector<uint8_t>> payloads;
    payloads.reserve(payload_count);
    for (uint64_t p = 0; p < payload_count; ++p) {
      size_t entry_offset = body_offset + body_reader.position();
      uint64_t prefix_len = body_reader.GetVarint64();
      uint64_t suffix_len = body_reader.GetVarint64();
      if (!body_reader.ok() || suffix_len > body_reader.remaining() ||
          prefix_len > (payloads.empty() ? 0 : payloads.back().size())) {
        return Corrupt("corrupt payload-table entry in " + At(path, entry_offset));
      }
      std::vector<uint8_t> payload;
      payload.reserve(prefix_len + suffix_len);
      if (prefix_len > 0) {
        payload.insert(payload.end(), payloads.back().begin(),
                       payloads.back().begin() + static_cast<ptrdiff_t>(prefix_len));
      }
      size_t old_size = payload.size();
      payload.resize(old_size + suffix_len);
      if (suffix_len > 0 && !body_reader.GetRaw(payload.data() + old_size, suffix_len)) {
        return Corrupt("corrupt payload-table entry in " + At(path, entry_offset));
      }
      payloads.push_back(std::move(payload));
    }
    uint64_t prev_src = 0;
    for (uint64_t e = 0; e < edge_count; ++e) {
      size_t entry_offset = body_offset + body_reader.position();
      int64_t src_delta = body_reader.GetVarintSigned64();
      int64_t dst_delta = body_reader.GetVarintSigned64();
      uint64_t label = body_reader.GetVarint64();
      uint64_t payload_index = body_reader.GetVarint64();
      int64_t src = static_cast<int64_t>(prev_src) + src_delta;
      int64_t dst = src + dst_delta;
      if (!body_reader.ok() || src < 0 || src > UINT32_MAX || dst < 0 || dst > UINT32_MAX ||
          payload_index >= payloads.size()) {
        return Corrupt("corrupt edge entry in " + At(path, entry_offset));
      }
      EdgeRecord record;
      record.src = static_cast<VertexId>(src);
      record.dst = static_cast<VertexId>(dst);
      record.label = static_cast<Label>(label);
      record.payload = payloads[payload_index];
      prev_src = record.src;
      edges->push_back(std::move(record));
    }
    if (!body_reader.AtEnd()) {
      return Corrupt("trailing garbage in block body in " +
                     At(path, body_offset + body_reader.position()));
    }
  }
  return PartitionDecodeStatus();
}

}  // namespace

void AppendBlockFileHeader(std::vector<uint8_t>* out) {
  out->insert(out->end(), kBlockMagic, kBlockMagic + 4);
  out->push_back(kBlockFormatVersion);
}

bool HasBlockFileHeader(const std::vector<uint8_t>& bytes) {
  return bytes.size() >= 4 && std::memcmp(bytes.data(), kBlockMagic, 4) == 0;
}

uint64_t RawFormatBytes(const std::vector<EdgeRecord>& edges) {
  uint64_t total = 0;
  for (const auto& edge : edges) {
    total += VarintLen(edge.src) + VarintLen(edge.dst) + VarintLen(edge.label) +
             VarintLen(edge.payload.size()) + edge.payload.size();
  }
  return total;
}

void AppendEdgeBlock(const std::vector<EdgeRecord>& edges, std::vector<uint8_t>* out,
                     uint64_t* raw_bytes) {
  if (raw_bytes != nullptr) {
    *raw_bytes = RawFormatBytes(edges);
  }
  if (edges.empty()) {
    return;
  }
  // Per-block payload dedup: collect unique payloads, sort them so that
  // near-identical encodings sit next to each other (maximizing the shared
  // prefix), then reference them by table index from each edge.
  std::unordered_map<SpanRef, uint32_t, SpanHash, SpanEq> unique;
  std::vector<SpanRef> table;
  std::vector<uint32_t> edge_payload(edges.size());
  for (size_t i = 0; i < edges.size(); ++i) {
    SpanRef span{edges[i].payload.data(), edges[i].payload.size()};
    auto [it, inserted] = unique.emplace(span, static_cast<uint32_t>(table.size()));
    if (inserted) {
      table.push_back(span);
    }
    edge_payload[i] = it->second;
  }
  std::vector<uint32_t> order(table.size());
  for (uint32_t i = 0; i < order.size(); ++i) {
    order[i] = i;
  }
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    const SpanRef& sa = table[a];
    const SpanRef& sb = table[b];
    return std::lexicographical_compare(sa.data, sa.data + sa.len, sb.data, sb.data + sb.len);
  });
  std::vector<uint32_t> rank(table.size());
  for (uint32_t pos = 0; pos < order.size(); ++pos) {
    rank[order[pos]] = pos;
  }

  std::vector<uint8_t> body;
  body.reserve(edges.size() * 4);
  for (uint32_t pos = 0; pos < order.size(); ++pos) {
    const SpanRef& span = table[order[pos]];
    size_t prefix = pos == 0 ? 0 : SharedPrefix(table[order[pos - 1]], span);
    PutVarint64(&body, prefix);
    PutVarint64(&body, span.len - prefix);
    body.insert(body.end(), span.data + prefix, span.data + span.len);
  }
  uint64_t prev_src = 0;
  for (size_t i = 0; i < edges.size(); ++i) {
    const EdgeRecord& edge = edges[i];
    PutVarintSigned64(&body, static_cast<int64_t>(edge.src) - static_cast<int64_t>(prev_src));
    PutVarintSigned64(&body, static_cast<int64_t>(edge.dst) - static_cast<int64_t>(edge.src));
    PutVarint64(&body, edge.label);
    PutVarint64(&body, rank[edge_payload[i]]);
    prev_src = edge.src;
  }

  PutVarint64(out, edges.size());
  PutVarint64(out, table.size());
  PutVarint64(out, body.size());
  out->insert(out->end(), body.begin(), body.end());
  PutFixed64(out, Fnv1aBytes(body.data(), body.size()));
}

PartitionDecodeStatus DecodePartitionBytes(const std::string& path,
                                           const std::vector<uint8_t>& bytes,
                                           std::vector<EdgeRecord>* edges) {
  if (HasBlockFileHeader(bytes)) {
    return DecodeBlocks(path, bytes, edges);
  }
  return DecodeRaw(path, bytes, edges);
}

}  // namespace grapple
