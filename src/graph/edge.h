// Edge records for the out-of-core engine.
//
// Edge payloads are variable-length byte strings (the serialized path
// encoding, or — for the Table-5 baseline codec — an explicit constraint).
// Records are inlined into partition files exactly as §4.3 describes: no
// out-of-line constraint objects, sequential access only.
#ifndef GRAPPLE_SRC_GRAPH_EDGE_H_
#define GRAPPLE_SRC_GRAPH_EDGE_H_

#include <cstdint>
#include <vector>

#include "src/grammar/grammar.h"
#include "src/support/byte_io.h"

namespace grapple {

using VertexId = uint32_t;

struct EdgeRecord {
  VertexId src = 0;
  VertexId dst = 0;
  Label label = kNoLabel;
  std::vector<uint8_t> payload;
};

// Record wire format: varint src, varint dst, varint label, varint payload
// length, payload bytes.
void SerializeEdge(const EdgeRecord& edge, std::vector<uint8_t>* out);

// Returns false at end-of-stream or on corruption.
bool DeserializeEdge(ByteReader* reader, EdgeRecord* edge);

// 64-bit content hash of the full record (used for dedup indexing).
uint64_t EdgeContentHash(VertexId src, VertexId dst, Label label, const uint8_t* payload,
                         size_t payload_len);

// Hash of the (src, dst, label) triple only (used for the per-triple
// payload-variant cap).
uint64_t EdgeTripleHash(VertexId src, VertexId dst, Label label);

}  // namespace grapple

#endif  // GRAPPLE_SRC_GRAPH_EDGE_H_
