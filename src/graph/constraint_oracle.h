// The constraint oracle: how the engine asks "is this combined path
// feasible, and what payload does the induced edge carry?".
//
// Two implementations exist:
//   * IntervalOracle (here) — the Grapple design: payloads are interval
//     sequence encodings; merging uses the 4-case algorithm; feasibility
//     decodes against the in-memory ICFET and solves with the built-in SMT
//     solver; results are memoized in an LRU cache keyed by the encoding
//     (§4.3, Table 4).
//   * ExplicitOracle (src/baseline) — the Table-5 baseline: payloads carry
//     the constraint itself, growing with path length.
#ifndef GRAPPLE_SRC_GRAPH_CONSTRAINT_ORACLE_H_
#define GRAPPLE_SRC_GRAPH_CONSTRAINT_ORACLE_H_

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "src/obs/metrics.h"
#include "src/pathenc/constraint_decoder.h"
#include "src/pathenc/path_encoding.h"
#include "src/smt/solver.h"
#include "src/support/lru_cache.h"
#include "src/support/timer.h"

namespace grapple {

struct OracleStats {
  uint64_t merges = 0;
  uint64_t constraints_checked = 0;  // actual decode+solve executions
  uint64_t cache_hits = 0;
  uint64_t unsat = 0;
  uint64_t unknown = 0;
  double lookup_seconds = 0;  // encoding/decoding + cache probing
  double solve_seconds = 0;   // SMT time

  // The same numbers under the registry's counter names ("oracle_merges_total",
  // "oracle_lookup_ns", ...), so snapshot-based consumers work with any
  // oracle implementation.
  obs::MetricsSnapshot ToSnapshot() const;
};

class ConstraintOracle {
 public:
  virtual ~ConstraintOracle() = default;

  // Payload for a base edge carrying `enc`.
  virtual std::vector<uint8_t> BasePayload(const PathEncoding& enc) = 0;

  // Payload representing the always-true constraint (used when widening).
  virtual std::vector<uint8_t> TruePayload() = 0;

  // Combines the payloads of two consecutive edges; returns the payload for
  // the induced transitive edge, or nullopt when the combined constraint is
  // unsatisfiable (the edge must not be added). Must be thread-safe.
  virtual std::optional<std::vector<uint8_t>> MergeAndCheck(const uint8_t* a, size_t a_len,
                                                            const uint8_t* b, size_t b_len) = 0;

  virtual OracleStats Stats() const = 0;
  virtual void ResetStats() = 0;

  // Metrics snapshot under registry counter names. The default renders
  // Stats() through OracleStats::ToSnapshot(); registry-backed oracles
  // override it to expose their full snapshot (histograms included).
  virtual obs::MetricsSnapshot Metrics() const { return Stats().ToSnapshot(); }
};

class IntervalOracle : public ConstraintOracle {
 public:
  struct Options {
    size_t cache_capacity = size_t{1} << 16;
    bool enable_cache = true;
    // Encoding-length cap handed to PathEncoding::Merge.
    size_t max_encoding_items = 64;
    SolverLimits solver_limits;
    // Adds a wait of this many microseconds to every actual solve, modeling
    // the per-call cost of an external SMT solver (the paper used Z3);
    // 0 disables. Used by the Figure-9 bench to reproduce the paper's cost
    // profile (see DESIGN.md substitutions).
    uint32_t simulated_solve_latency_us = 0;
    // How the simulated latency spends its time. False (default): busy-wait,
    // modeling an in-process solver that burns this core. True: sleep,
    // modeling a round trip to an out-of-process solver endpoint — the CPU
    // is free meanwhile, so concurrent checker runs overlap their solver
    // waits (the scheduler speedup bench measures exactly this).
    bool simulated_solve_blocks = false;
  };

  explicit IntervalOracle(const Icfet* icfet);
  IntervalOracle(const Icfet* icfet, Options options);

  std::vector<uint8_t> BasePayload(const PathEncoding& enc) override;
  std::vector<uint8_t> TruePayload() override;
  std::optional<std::vector<uint8_t>> MergeAndCheck(const uint8_t* a, size_t a_len,
                                                    const uint8_t* b, size_t b_len) override;
  OracleStats Stats() const override;
  void ResetStats() override;

  // Decodes and solves one payload directly (used by checkers on final
  // edges, bypassing merge).
  SolveResult CheckPayload(const uint8_t* payload, size_t len);
  Constraint DecodePayload(const uint8_t* payload, size_t len);

  obs::MetricsSnapshot Metrics() const override { return metrics_.Snapshot(); }

 private:
  SolveResult CheckEncodingLocked(const PathEncoding& enc, const std::string& key);

  Options options_;
  mutable std::mutex mu_;
  PathDecoder decoder_;
  Solver solver_;
  LruCache<std::string, SolveResult> cache_;

  obs::MetricsRegistry metrics_;
  obs::MetricId c_merges_;
  obs::MetricId c_checked_;
  obs::MetricId c_cache_hits_;
  obs::MetricId c_unsat_;
  obs::MetricId c_unknown_;
  obs::MetricId c_lookup_ns_;
  obs::MetricId c_solve_ns_;
  obs::MetricId h_solve_ns_;
};

}  // namespace grapple

#endif  // GRAPPLE_SRC_GRAPH_CONSTRAINT_ORACLE_H_
