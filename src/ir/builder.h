// Programmatic IR construction.
//
// Example (the buggy FileWriter program of Figure 3b):
//
//   MethodBuilder mb("main");
//   LocalId out = mb.Obj("out", "FileWriter");
//   LocalId o = mb.Obj("o", "FileWriter");
//   LocalId x = mb.Int("x");
//   LocalId y = mb.Int("y");
//   mb.Havoc(x);
//   mb.AssignInt(y, OpLocal(x));
//   mb.If(CondExpr::Compare(OpLocal(x), IrCmpOp::kGe, OpConst(0)),
//         [&](MethodBuilder& b) {
//           b.Alloc(out, "FileWriter");
//           b.Event(out, "open");
//           b.Assign(o, out);
//           b.Bin(y, OpLocal(x), IrBinOp::kSub, OpConst(1));
//         },
//         [&](MethodBuilder& b) { b.Bin(y, OpLocal(x), IrBinOp::kAdd, OpConst(1)); });
//   ...
//   Method m = std::move(mb).Build();
#ifndef GRAPPLE_SRC_IR_BUILDER_H_
#define GRAPPLE_SRC_IR_BUILDER_H_

#include <functional>
#include <string>
#include <vector>

#include "src/ir/ir.h"

namespace grapple {

inline Operand OpConst(int64_t value) { return Operand::Const(value); }
inline Operand OpLocal(LocalId local) { return Operand::Local(local); }

class MethodBuilder {
 public:
  explicit MethodBuilder(std::string name);

  // --- declarations (parameters must be declared before other locals) ---
  LocalId IntParam(const std::string& name);
  LocalId ObjParam(const std::string& name, const std::string& type);
  LocalId Int(const std::string& name);
  LocalId Obj(const std::string& name, const std::string& type);
  // Declares the method as object-returning.
  void ReturnsObject(const std::string& type);

  // --- statements, appended to the innermost open block ---
  void Alloc(LocalId dst, const std::string& type);
  void Assign(LocalId dst, LocalId src);
  void Load(LocalId dst, LocalId base, const std::string& field);
  void Store(LocalId base, const std::string& field, LocalId src);
  void ConstInt(LocalId dst, int64_t value);
  void Bin(LocalId dst, Operand lhs, IrBinOp op, Operand rhs);
  // dst = lhs (integer copy / operand move).
  void AssignInt(LocalId dst, Operand src);
  void Havoc(LocalId dst);
  void Call(LocalId dst, const std::string& callee, std::vector<LocalId> args);
  void CallVoid(const std::string& callee, std::vector<LocalId> args);
  void Ret();
  void Ret(LocalId src);
  void Event(LocalId receiver, const std::string& event);
  void Nop();

  using BlockFn = std::function<void(MethodBuilder&)>;
  void If(CondExpr cond, const BlockFn& then_fn, const BlockFn& else_fn = nullptr);
  void While(CondExpr cond, const BlockFn& body_fn);

  // Attaches a source line to the most recently appended statement of the
  // innermost block (for bug-report provenance).
  void SetLine(int32_t line);

  Method Build() &&;

 private:
  LocalId Declare(Local local);
  void Append(Stmt stmt);

  Method method_;
  // Stack of open blocks; back() receives appended statements.
  std::vector<std::vector<Stmt>*> blocks_;
  bool params_closed_ = false;
};

}  // namespace grapple

#endif  // GRAPPLE_SRC_IR_BUILDER_H_
