// Text format parser for the Grapple IR.
//
// Grammar (line comments start with "//"):
//
//   program  := method*
//   method   := "method" NAME "(" params? ")" [":" "obj" TYPE] "{" item* "}"
//   param    := "int" NAME | "obj" NAME ":" TYPE
//   item     := decl | stmt
//   decl     := "int" NAME | "obj" NAME ":" TYPE
//   stmt     := NAME "=" rhs
//            | NAME "." FIELD "=" NAME            // store
//            | "event" NAME EVENTNAME             // e.g. event out close
//            | "return" [NAME]
//            | "if" "(" cond ")" "{" item* "}" ["else" "{" item* "}"]
//            | "while" "(" cond ")" "{" item* "}"
//            | "call" NAME "(" args? ")"          // void call
//   rhs      := "new" TYPE
//            | "?"                                // havoc (unknown int)
//            | NUMBER
//            | NAME "." FIELD                     // load
//            | NAME "(" args? ")"                 // call with result
//            | operand (("+"|"-"|"*") operand)?   // binop / copy
//   cond     := "?" | operand CMP operand         // CMP in == != < <= > >=
//   operand  := NUMBER | NAME
//
// Example:
//   method main() {
//     obj out : FileWriter
//     int x
//     x = ?
//     if (x >= 0) { out = new FileWriter  event out open }
//     if (x > 0) { event out close }
//     return
//   }
#ifndef GRAPPLE_SRC_IR_PARSER_H_
#define GRAPPLE_SRC_IR_PARSER_H_

#include <string>

#include "src/ir/ir.h"

namespace grapple {

struct ParseResult {
  bool ok = false;
  std::string error;  // "line N: message" when !ok
  Program program;
};

ParseResult ParseProgram(const std::string& text);

}  // namespace grapple

#endif  // GRAPPLE_SRC_IR_PARSER_H_
