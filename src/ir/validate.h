// Structural validation of IR programs.
//
// The parser guarantees well-formedness for text inputs, but programs can
// also arrive through the builder API or generators; Grapple's frontend
// assumes (and this pass checks) that:
//   * every local reference is in range and kind-correct (object vs int),
//   * loads/stores use object bases, events use object receivers,
//   * calls to in-program methods pass the right number of arguments with
//     matching kinds, and object-returning calls assign to object locals,
//   * return values match the method's declared return kind.
// External calls (unresolved names) are allowed — they model opaque APIs.
#ifndef GRAPPLE_SRC_IR_VALIDATE_H_
#define GRAPPLE_SRC_IR_VALIDATE_H_

#include <string>
#include <vector>

#include "src/ir/ir.h"

namespace grapple {

struct ValidationIssue {
  std::string method;
  int32_t line = -1;  // source line when available
  std::string message;

  std::string ToString() const;
};

// Returns every issue found (empty = valid).
std::vector<ValidationIssue> ValidateProgram(const Program& program);

}  // namespace grapple

#endif  // GRAPPLE_SRC_IR_VALIDATE_H_
