// Grapple's program intermediate representation.
//
// The paper's frontend consumes Java bytecode via Soot; this reproduction
// ships a compact structured IR with exactly the statement forms the
// analyses care about (Figure 4 of the paper, plus integer arithmetic and
// branches for path sensitivity, plus FSM events):
//
//   dst = new T            object allocation        (kAlloc)
//   dst = src              object/int copy          (kAssign)
//   dst = src.field        heap load                (kLoad)
//   dst.field = src        heap store               (kStore)
//   dst = c                integer constant         (kConstInt)
//   dst = a op b           integer arithmetic       (kBinOp)
//   dst = ?                unknown integer input    (kHavoc)
//   [dst =] callee(args)   call                     (kCall)
//   return [src]           return                   (kReturn)
//   recv.event()           FSM event, e.g. close()  (kEvent)
//   if (cond) {..} else {..}                        (kIf)
//   while (cond) {..}      bounded-unrolled later   (kWhile)
//
// Control flow is structured (blocks nest), which keeps CFET construction in
// src/symexec a simple tree walk. Exceptional flow is modeled explicitly by
// frontends/generators as opaque-condition branches (see DESIGN.md).
#ifndef GRAPPLE_SRC_IR_IR_H_
#define GRAPPLE_SRC_IR_IR_H_

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace grapple {

using MethodId = uint32_t;
using LocalId = uint32_t;

inline constexpr LocalId kNoLocal = 0xFFFFFFFFu;
inline constexpr MethodId kNoMethod = 0xFFFFFFFFu;

enum class StmtKind {
  kAlloc,
  kAssign,
  kLoad,
  kStore,
  kConstInt,
  kBinOp,
  kHavoc,
  kCall,
  kReturn,
  kEvent,
  kIf,
  kWhile,
  kNop,
};

const char* StmtKindName(StmtKind kind);

enum class IrBinOp { kAdd, kSub, kMul };
enum class IrCmpOp { kEq, kNe, kLt, kLe, kGt, kGe };

const char* IrBinOpName(IrBinOp op);
const char* IrCmpOpName(IrCmpOp op);

// An integer operand: either a constant or a local variable.
struct Operand {
  bool is_const = true;
  int64_t value = 0;
  LocalId local = kNoLocal;

  static Operand Const(int64_t v) {
    Operand o;
    o.is_const = true;
    o.value = v;
    return o;
  }
  static Operand Local(LocalId l) {
    Operand o;
    o.is_const = false;
    o.local = l;
    return o;
  }
};

// A branch condition: a comparison of two integer operands, or an opaque
// condition the analysis must treat as either-way-feasible (used to model
// exceptional control flow, I/O results, etc.).
struct CondExpr {
  enum class Kind { kCompare, kOpaque };
  Kind kind = Kind::kOpaque;
  IrCmpOp op = IrCmpOp::kEq;
  Operand lhs;
  Operand rhs;

  static CondExpr Compare(Operand lhs, IrCmpOp op, Operand rhs) {
    CondExpr c;
    c.kind = Kind::kCompare;
    c.op = op;
    c.lhs = lhs;
    c.rhs = rhs;
    return c;
  }
  static CondExpr Opaque() { return CondExpr(); }
};

// One IR statement. A plain struct-of-all-fields keeps the IR trivially
// copyable-by-value and easy to serialize; memory is not a concern at IR
// scale (the blow-up happens later, in the cloned program graph).
struct Stmt {
  StmtKind kind = StmtKind::kNop;

  LocalId dst = kNoLocal;       // alloc/assign/load/const/binop/havoc/call result
  LocalId src = kNoLocal;       // assign src, store value, return value, event receiver
  LocalId base = kNoLocal;      // load/store base object
  std::string type_name;        // alloc: allocated type
  std::string field;            // load/store field name
  std::string event;            // event name, e.g. "close"
  int64_t const_value = 0;      // constint
  IrBinOp bin_op = IrBinOp::kAdd;
  Operand lhs;                  // binop operands
  Operand rhs;
  std::string callee;           // call target (by name; resolved via Program)
  std::vector<LocalId> args;    // call arguments
  CondExpr cond;                // if/while condition
  std::vector<Stmt> then_block; // if-then, or while body
  std::vector<Stmt> else_block; // if-else
  int32_t source_line = -1;     // for bug reports
};

// A local variable slot. Parameters occupy the first `Method::num_params`
// slots.
struct Local {
  std::string name;
  bool is_object = false;
  std::string type;  // object type name; empty for ints
};

struct Method {
  std::string name;
  std::vector<Local> locals;
  size_t num_params = 0;
  std::vector<Stmt> body;
  // True for object-returning methods (drives value-return edges).
  bool returns_object = false;
  std::string return_type;

  std::optional<LocalId> FindLocal(const std::string& local_name) const;
  const Local& LocalAt(LocalId id) const { return locals[id]; }
};

class Program {
 public:
  MethodId AddMethod(Method method);
  const Method& MethodAt(MethodId id) const { return methods_[id]; }
  Method& MutableMethod(MethodId id) { return methods_[id]; }
  size_t NumMethods() const { return methods_.size(); }
  std::optional<MethodId> FindMethod(const std::string& name) const;

  const std::vector<Method>& methods() const { return methods_; }

  // Statement count over all methods (recursing into blocks); the
  // reproduction's analog of "lines of code".
  size_t TotalStatements() const;

  std::string ToString() const;

 private:
  std::vector<Method> methods_;
  std::unordered_map<std::string, MethodId> by_name_;
};

}  // namespace grapple

#endif  // GRAPPLE_SRC_IR_IR_H_
