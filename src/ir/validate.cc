#include "src/ir/validate.h"

#include <sstream>

namespace grapple {

namespace {

class Validator {
 public:
  explicit Validator(const Program& program) : program_(program) {}

  std::vector<ValidationIssue> Run() {
    for (const auto& method : program_.methods()) {
      method_ = &method;
      CheckBlock(method.body);
    }
    return std::move(issues_);
  }

 private:
  void Report(const Stmt& stmt, const std::string& message) {
    issues_.push_back({method_->name, stmt.source_line, message});
  }

  bool ValidLocal(LocalId id) const { return id != kNoLocal && id < method_->locals.size(); }

  bool IsObject(LocalId id) const { return ValidLocal(id) && method_->locals[id].is_object; }
  bool IsInt(LocalId id) const { return ValidLocal(id) && !method_->locals[id].is_object; }

  void CheckOperand(const Stmt& stmt, const Operand& op, const char* role) {
    if (!op.is_const && !IsInt(op.local)) {
      Report(stmt, std::string(role) + " operand must be an integer local");
    }
  }

  void CheckCond(const Stmt& stmt, const CondExpr& cond) {
    if (cond.kind == CondExpr::Kind::kCompare) {
      CheckOperand(stmt, cond.lhs, "condition lhs");
      CheckOperand(stmt, cond.rhs, "condition rhs");
    }
  }

  void CheckBlock(const std::vector<Stmt>& block) {
    for (const auto& stmt : block) {
      CheckStmt(stmt);
      CheckBlock(stmt.then_block);
      CheckBlock(stmt.else_block);
    }
  }

  void CheckStmt(const Stmt& stmt) {
    switch (stmt.kind) {
      case StmtKind::kAlloc:
        if (!IsObject(stmt.dst)) {
          Report(stmt, "alloc destination must be an object local");
        }
        if (stmt.type_name.empty()) {
          Report(stmt, "alloc requires a type name");
        }
        break;
      case StmtKind::kAssign:
        if (!ValidLocal(stmt.dst) || !ValidLocal(stmt.src)) {
          Report(stmt, "assign references an invalid local");
        } else if (method_->locals[stmt.dst].is_object != method_->locals[stmt.src].is_object) {
          Report(stmt, "assign mixes object and integer locals");
        }
        break;
      case StmtKind::kLoad:
        if (!IsObject(stmt.base)) {
          Report(stmt, "load base must be an object local");
        }
        if (!ValidLocal(stmt.dst)) {
          Report(stmt, "load destination invalid");
        }
        break;
      case StmtKind::kStore:
        if (!IsObject(stmt.base)) {
          Report(stmt, "store base must be an object local");
        }
        if (!IsObject(stmt.src)) {
          Report(stmt, "store value must be an object local");
        }
        break;
      case StmtKind::kConstInt:
      case StmtKind::kHavoc:
        if (!IsInt(stmt.dst)) {
          Report(stmt, "integer statement writes a non-integer local");
        }
        break;
      case StmtKind::kBinOp:
        if (!IsInt(stmt.dst)) {
          Report(stmt, "binop destination must be an integer local");
        }
        CheckOperand(stmt, stmt.lhs, "binop lhs");
        CheckOperand(stmt, stmt.rhs, "binop rhs");
        break;
      case StmtKind::kEvent:
        if (!IsObject(stmt.src)) {
          Report(stmt, "event receiver must be an object local");
        }
        if (stmt.event.empty()) {
          Report(stmt, "event requires a name");
        }
        break;
      case StmtKind::kReturn:
        if (stmt.src != kNoLocal) {
          if (!ValidLocal(stmt.src)) {
            Report(stmt, "return references an invalid local");
          } else if (method_->returns_object && !IsObject(stmt.src)) {
            Report(stmt, "method declared object-returning but returns an integer");
          }
        }
        break;
      case StmtKind::kCall: {
        for (LocalId arg : stmt.args) {
          if (!ValidLocal(arg)) {
            Report(stmt, "call argument invalid");
          }
        }
        auto callee_id = program_.FindMethod(stmt.callee);
        if (!callee_id.has_value()) {
          break;  // external API
        }
        const Method& callee = program_.MethodAt(*callee_id);
        if (stmt.args.size() != callee.num_params) {
          Report(stmt, "call to " + stmt.callee + " passes " +
                           std::to_string(stmt.args.size()) + " args, expected " +
                           std::to_string(callee.num_params));
          break;
        }
        for (size_t p = 0; p < stmt.args.size(); ++p) {
          if (ValidLocal(stmt.args[p]) &&
              method_->locals[stmt.args[p]].is_object != callee.locals[p].is_object) {
            Report(stmt, "call to " + stmt.callee + ": argument " + std::to_string(p) +
                             " kind mismatch");
          }
        }
        if (stmt.dst != kNoLocal && ValidLocal(stmt.dst)) {
          bool dst_is_object = method_->locals[stmt.dst].is_object;
          if (dst_is_object && !callee.returns_object) {
            Report(stmt, "object result from non-object-returning " + stmt.callee);
          }
        }
        break;
      }
      case StmtKind::kIf:
      case StmtKind::kWhile:
        CheckCond(stmt, stmt.cond);
        break;
      case StmtKind::kNop:
        break;
    }
  }

  const Program& program_;
  const Method* method_ = nullptr;
  std::vector<ValidationIssue> issues_;
};

}  // namespace

std::string ValidationIssue::ToString() const {
  std::ostringstream out;
  out << method;
  if (line >= 0) {
    out << ":" << line;
  }
  out << ": " << message;
  return out.str();
}

std::vector<ValidationIssue> ValidateProgram(const Program& program) {
  Validator validator(program);
  return validator.Run();
}

}  // namespace grapple
