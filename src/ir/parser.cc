#include "src/ir/parser.h"

#include <cctype>
#include <cstdlib>
#include <sstream>
#include <vector>

namespace grapple {

namespace {

enum class TokKind { kIdent, kNumber, kPunct, kEnd };

struct Token {
  TokKind kind = TokKind::kEnd;
  std::string text;
  int line = 0;
};

class Lexer {
 public:
  explicit Lexer(const std::string& text) : text_(text) {}

  Token Next() {
    SkipSpaceAndComments();
    Token tok;
    tok.line = line_;
    if (pos_ >= text_.size()) {
      tok.kind = TokKind::kEnd;
      return tok;
    }
    char c = text_[pos_];
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = pos_;
      while (pos_ < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '_')) {
        ++pos_;
      }
      tok.kind = TokKind::kIdent;
      tok.text = text_.substr(start, pos_ - start);
      return tok;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && pos_ + 1 < text_.size() &&
         std::isdigit(static_cast<unsigned char>(text_[pos_ + 1])))) {
      size_t start = pos_;
      ++pos_;
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
      tok.kind = TokKind::kNumber;
      tok.text = text_.substr(start, pos_ - start);
      return tok;
    }
    // Multi-char comparison operators.
    static const char* kTwoChar[] = {"==", "!=", "<=", ">="};
    for (const char* op : kTwoChar) {
      if (text_.compare(pos_, 2, op) == 0) {
        tok.kind = TokKind::kPunct;
        tok.text = op;
        pos_ += 2;
        return tok;
      }
    }
    tok.kind = TokKind::kPunct;
    tok.text = std::string(1, c);
    ++pos_;
    return tok;
  }

 private:
  void SkipSpaceAndComments() {
    for (;;) {
      while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
        if (text_[pos_] == '\n') {
          ++line_;
        }
        ++pos_;
      }
      if (pos_ + 1 < text_.size() && text_[pos_] == '/' && text_[pos_ + 1] == '/') {
        while (pos_ < text_.size() && text_[pos_] != '\n') {
          ++pos_;
        }
        continue;
      }
      return;
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
  int line_ = 1;
};

class Parser {
 public:
  explicit Parser(const std::string& text) : lexer_(text) {
    cur_ = lexer_.Next();
    next_ = lexer_.Next();
  }

  ParseResult Run() {
    ParseResult result;
    while (ok_ && cur_.kind != TokKind::kEnd) {
      ParseMethod(&result.program);
    }
    result.ok = ok_;
    result.error = error_;
    return result;
  }

 private:
  void Advance() {
    cur_ = next_;
    next_ = lexer_.Next();
  }

  bool NextIsPunct(const std::string& text) const {
    return next_.kind == TokKind::kPunct && next_.text == text;
  }

  bool Fail(const std::string& message) { return FailAtLine(cur_.line, message, cur_.text); }

  bool FailAtLine(int line, const std::string& message, const std::string& context) {
    if (ok_) {
      ok_ = false;
      std::ostringstream out;
      out << "line " << line << ": " << message;
      if (!context.empty()) {
        out << " (at '" << context << "')";
      }
      error_ = out.str();
    }
    return false;
  }

  bool ExpectPunct(const std::string& text) {
    if (!ok_ || cur_.kind != TokKind::kPunct || cur_.text != text) {
      return Fail("expected '" + text + "'");
    }
    Advance();
    return true;
  }

  bool ExpectIdent(std::string* out) {
    if (!ok_ || cur_.kind != TokKind::kIdent) {
      return Fail("expected identifier");
    }
    *out = cur_.text;
    Advance();
    return true;
  }

  bool AtIdent(const std::string& text) const {
    return ok_ && cur_.kind == TokKind::kIdent && cur_.text == text;
  }
  bool AtPunct(const std::string& text) const {
    return ok_ && cur_.kind == TokKind::kPunct && cur_.text == text;
  }

  void ParseMethod(Program* program) {
    if (!AtIdent("method")) {
      Fail("expected 'method'");
      return;
    }
    Advance();
    std::string name;
    if (!ExpectIdent(&name)) {
      return;
    }
    method_ = Method();
    method_.name = name;
    if (!ExpectPunct("(")) {
      return;
    }
    if (!AtPunct(")")) {
      for (;;) {
        if (!ParseDecl(/*is_param=*/true)) {
          return;
        }
        if (AtPunct(",")) {
          Advance();
          continue;
        }
        break;
      }
    }
    if (!ExpectPunct(")")) {
      return;
    }
    method_.num_params = method_.locals.size();
    if (AtPunct(":")) {
      Advance();
      if (!AtIdent("obj")) {
        Fail("expected 'obj' return type");
        return;
      }
      Advance();
      std::string type;
      if (!ExpectIdent(&type)) {
        return;
      }
      method_.returns_object = true;
      method_.return_type = type;
    }
    std::vector<Stmt> body;
    if (!ParseBlock(&body)) {
      return;
    }
    method_.body = std::move(body);
    program->AddMethod(std::move(method_));
  }

  // Parses "{ item* }" into `block`.
  bool ParseBlock(std::vector<Stmt>* block) {
    if (!ExpectPunct("{")) {
      return false;
    }
    while (ok_ && !AtPunct("}")) {
      if (!ParseItem(block)) {
        return false;
      }
    }
    return ExpectPunct("}");
  }

  LocalId DeclareLocal(const std::string& name, bool is_object, const std::string& type) {
    for (size_t i = 0; i < method_.locals.size(); ++i) {
      if (method_.locals[i].name == name) {
        Fail("duplicate local '" + name + "'");
        return kNoLocal;
      }
    }
    method_.locals.push_back(Local{name, is_object, type});
    return static_cast<LocalId>(method_.locals.size() - 1);
  }

  // `line` is the identifier token's line (the cursor may have moved on).
  LocalId LookupLocal(const std::string& name, int line = -1) {
    auto id = method_.FindLocal(name);
    if (!id.has_value()) {
      FailAtLine(line >= 0 ? line : cur_.line, "unknown local '" + name + "'", name);
      return kNoLocal;
    }
    return *id;
  }

  bool ParseDecl(bool is_param) {
    if (AtIdent("int")) {
      Advance();
      std::string name;
      if (!ExpectIdent(&name)) {
        return false;
      }
      (void)is_param;
      return DeclareLocal(name, false, "") != kNoLocal;
    }
    if (AtIdent("obj")) {
      Advance();
      std::string name;
      if (!ExpectIdent(&name)) {
        return false;
      }
      if (!ExpectPunct(":")) {
        return false;
      }
      std::string type;
      if (!ExpectIdent(&type)) {
        return false;
      }
      return DeclareLocal(name, true, type) != kNoLocal;
    }
    return Fail("expected declaration");
  }

  bool ParseOperand(Operand* out) {
    if (cur_.kind == TokKind::kNumber) {
      *out = Operand::Const(std::strtoll(cur_.text.c_str(), nullptr, 10));
      Advance();
      return true;
    }
    if (cur_.kind == TokKind::kIdent) {
      LocalId id = LookupLocal(cur_.text);
      if (id == kNoLocal) {
        return false;
      }
      *out = Operand::Local(id);
      Advance();
      return true;
    }
    return Fail("expected operand");
  }

  bool ParseCond(CondExpr* out) {
    if (AtPunct("?")) {
      Advance();
      *out = CondExpr::Opaque();
      return true;
    }
    Operand lhs;
    if (!ParseOperand(&lhs)) {
      return false;
    }
    IrCmpOp op;
    if (AtPunct("==")) {
      op = IrCmpOp::kEq;
    } else if (AtPunct("!=")) {
      op = IrCmpOp::kNe;
    } else if (AtPunct("<=")) {
      op = IrCmpOp::kLe;
    } else if (AtPunct(">=")) {
      op = IrCmpOp::kGe;
    } else if (AtPunct("<")) {
      op = IrCmpOp::kLt;
    } else if (AtPunct(">")) {
      op = IrCmpOp::kGt;
    } else {
      return Fail("expected comparison operator");
    }
    Advance();
    Operand rhs;
    if (!ParseOperand(&rhs)) {
      return false;
    }
    *out = CondExpr::Compare(lhs, op, rhs);
    return true;
  }

  bool ParseCallArgs(std::vector<LocalId>* args) {
    if (!ExpectPunct("(")) {
      return false;
    }
    if (!AtPunct(")")) {
      for (;;) {
        std::string arg;
        if (!ExpectIdent(&arg)) {
          return false;
        }
        LocalId id = LookupLocal(arg);
        if (id == kNoLocal) {
          return false;
        }
        args->push_back(id);
        if (AtPunct(",")) {
          Advance();
          continue;
        }
        break;
      }
    }
    return ExpectPunct(")");
  }

  bool ParseItem(std::vector<Stmt>* block) {
    int line = cur_.line;
    if (AtIdent("int") || AtIdent("obj")) {
      return ParseDecl(/*is_param=*/false);
    }
    if (AtIdent("event")) {
      Advance();
      std::string recv;
      std::string event;
      if (!ExpectIdent(&recv) || !ExpectIdent(&event)) {
        return false;
      }
      LocalId id = LookupLocal(recv);
      if (id == kNoLocal) {
        return false;
      }
      Stmt s;
      s.kind = StmtKind::kEvent;
      s.src = id;
      s.event = event;
      s.source_line = line;
      block->push_back(std::move(s));
      return true;
    }
    if (AtIdent("return")) {
      Advance();
      Stmt s;
      s.kind = StmtKind::kReturn;
      s.source_line = line;
      // A following identifier is the return value unless it starts the next
      // statement (assignment or store).
      if (cur_.kind == TokKind::kIdent && !IsKeyword(cur_.text) && !NextIsPunct("=") &&
          !NextIsPunct(".") && !NextIsPunct("(")) {
        LocalId id = LookupLocal(cur_.text);
        if (id == kNoLocal) {
          return false;
        }
        s.src = id;
        Advance();
      }
      block->push_back(std::move(s));
      return true;
    }
    if (AtIdent("if")) {
      Advance();
      if (!ExpectPunct("(")) {
        return false;
      }
      Stmt s;
      s.kind = StmtKind::kIf;
      s.source_line = line;
      if (!ParseCond(&s.cond) || !ExpectPunct(")")) {
        return false;
      }
      if (!ParseBlock(&s.then_block)) {
        return false;
      }
      if (AtIdent("else")) {
        Advance();
        if (!ParseBlock(&s.else_block)) {
          return false;
        }
      }
      block->push_back(std::move(s));
      return true;
    }
    if (AtIdent("while")) {
      Advance();
      if (!ExpectPunct("(")) {
        return false;
      }
      Stmt s;
      s.kind = StmtKind::kWhile;
      s.source_line = line;
      if (!ParseCond(&s.cond) || !ExpectPunct(")")) {
        return false;
      }
      if (!ParseBlock(&s.then_block)) {
        return false;
      }
      block->push_back(std::move(s));
      return true;
    }
    if (AtIdent("call")) {
      Advance();
      std::string callee;
      if (!ExpectIdent(&callee)) {
        return false;
      }
      Stmt s;
      s.kind = StmtKind::kCall;
      s.callee = callee;
      s.source_line = line;
      if (!ParseCallArgs(&s.args)) {
        return false;
      }
      block->push_back(std::move(s));
      return true;
    }
    // Assignment-like statements start with an identifier.
    std::string first;
    if (!ExpectIdent(&first)) {
      return false;
    }
    LocalId target = LookupLocal(first);
    if (target == kNoLocal) {
      return false;
    }
    if (AtPunct(".")) {
      // store: base.field = src
      Advance();
      std::string field;
      if (!ExpectIdent(&field) || !ExpectPunct("=")) {
        return false;
      }
      std::string src;
      if (!ExpectIdent(&src)) {
        return false;
      }
      LocalId src_id = LookupLocal(src);
      if (src_id == kNoLocal) {
        return false;
      }
      Stmt s;
      s.kind = StmtKind::kStore;
      s.base = target;
      s.field = field;
      s.src = src_id;
      s.source_line = line;
      block->push_back(std::move(s));
      return true;
    }
    if (!ExpectPunct("=")) {
      return false;
    }
    return ParseRhs(target, line, block);
  }

  bool ParseRhs(LocalId dst, int line, std::vector<Stmt>* block) {
    Stmt s;
    s.dst = dst;
    s.source_line = line;
    if (AtIdent("new")) {
      Advance();
      std::string type;
      if (!ExpectIdent(&type)) {
        return false;
      }
      s.kind = StmtKind::kAlloc;
      s.type_name = type;
      block->push_back(std::move(s));
      return true;
    }
    if (AtPunct("?")) {
      Advance();
      s.kind = StmtKind::kHavoc;
      block->push_back(std::move(s));
      return true;
    }
    if (cur_.kind == TokKind::kNumber) {
      s.kind = StmtKind::kConstInt;
      s.const_value = std::strtoll(cur_.text.c_str(), nullptr, 10);
      Advance();
      // Allow "x = 3 + y" style binops starting with a number.
      if (AtPunct("+") || AtPunct("-") || AtPunct("*")) {
        Operand lhs = Operand::Const(s.const_value);
        return FinishBinOp(dst, line, lhs, block);
      }
      block->push_back(std::move(s));
      return true;
    }
    if (cur_.kind == TokKind::kIdent) {
      std::string name = cur_.text;
      int name_line = cur_.line;
      Advance();
      if (AtPunct("(")) {
        // call with result
        s.kind = StmtKind::kCall;
        s.callee = name;
        if (!ParseCallArgs(&s.args)) {
          return false;
        }
        block->push_back(std::move(s));
        return true;
      }
      LocalId src = LookupLocal(name, name_line);
      if (src == kNoLocal) {
        return false;
      }
      if (AtPunct(".")) {
        // load
        Advance();
        std::string field;
        if (!ExpectIdent(&field)) {
          return false;
        }
        s.kind = StmtKind::kLoad;
        s.base = src;
        s.field = field;
        block->push_back(std::move(s));
        return true;
      }
      if (AtPunct("+") || AtPunct("-") || AtPunct("*")) {
        return FinishBinOp(dst, line, Operand::Local(src), block);
      }
      // Plain copy. Object copies become kAssign; integer copies become a
      // kBinOp with +0 so symbolic execution sees them uniformly.
      if (method_.locals[src].is_object) {
        s.kind = StmtKind::kAssign;
        s.src = src;
      } else {
        s.kind = StmtKind::kBinOp;
        s.lhs = Operand::Local(src);
        s.bin_op = IrBinOp::kAdd;
        s.rhs = Operand::Const(0);
      }
      block->push_back(std::move(s));
      return true;
    }
    return Fail("expected right-hand side");
  }

  bool FinishBinOp(LocalId dst, int line, Operand lhs, std::vector<Stmt>* block) {
    IrBinOp op;
    if (AtPunct("+")) {
      op = IrBinOp::kAdd;
    } else if (AtPunct("-")) {
      op = IrBinOp::kSub;
    } else if (AtPunct("*")) {
      op = IrBinOp::kMul;
    } else {
      return Fail("expected binary operator");
    }
    Advance();
    Operand rhs;
    if (!ParseOperand(&rhs)) {
      return false;
    }
    Stmt s;
    s.kind = StmtKind::kBinOp;
    s.dst = dst;
    s.lhs = lhs;
    s.bin_op = op;
    s.rhs = rhs;
    s.source_line = line;
    block->push_back(std::move(s));
    return true;
  }

  static bool IsKeyword(const std::string& text) {
    return text == "method" || text == "int" || text == "obj" || text == "new" ||
           text == "event" || text == "return" || text == "if" || text == "else" ||
           text == "while" || text == "call";
  }

  Lexer lexer_;
  Token cur_;
  Token next_;
  Method method_;
  bool ok_ = true;
  std::string error_;
};

}  // namespace

ParseResult ParseProgram(const std::string& text) {
  Parser parser(text);
  return parser.Run();
}

}  // namespace grapple
