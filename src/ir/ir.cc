#include "src/ir/ir.h"

#include <sstream>

#include "src/support/logging.h"

namespace grapple {

namespace {

size_t CountStatements(const std::vector<Stmt>& block) {
  size_t count = 0;
  for (const auto& stmt : block) {
    ++count;
    count += CountStatements(stmt.then_block);
    count += CountStatements(stmt.else_block);
  }
  return count;
}

std::string OperandToString(const Method& method, const Operand& op) {
  if (op.is_const) {
    return std::to_string(op.value);
  }
  return method.locals[op.local].name;
}

std::string CondToString(const Method& method, const CondExpr& cond) {
  if (cond.kind == CondExpr::Kind::kOpaque) {
    return "?";
  }
  return OperandToString(method, cond.lhs) + " " + IrCmpOpName(cond.op) + " " +
         OperandToString(method, cond.rhs);
}

void PrintBlock(const Method& method, const std::vector<Stmt>& block, int indent,
                std::ostringstream* out) {
  std::string pad(static_cast<size_t>(indent) * 2, ' ');
  auto name = [&](LocalId id) -> std::string {
    return id == kNoLocal ? "_" : method.locals[id].name;
  };
  for (const auto& stmt : block) {
    switch (stmt.kind) {
      case StmtKind::kAlloc:
        *out << pad << name(stmt.dst) << " = new " << stmt.type_name << "\n";
        break;
      case StmtKind::kAssign:
        *out << pad << name(stmt.dst) << " = " << name(stmt.src) << "\n";
        break;
      case StmtKind::kLoad:
        *out << pad << name(stmt.dst) << " = " << name(stmt.base) << "." << stmt.field << "\n";
        break;
      case StmtKind::kStore:
        *out << pad << name(stmt.base) << "." << stmt.field << " = " << name(stmt.src) << "\n";
        break;
      case StmtKind::kConstInt:
        *out << pad << name(stmt.dst) << " = " << stmt.const_value << "\n";
        break;
      case StmtKind::kBinOp:
        *out << pad << name(stmt.dst) << " = " << OperandToString(method, stmt.lhs) << " "
             << IrBinOpName(stmt.bin_op) << " " << OperandToString(method, stmt.rhs) << "\n";
        break;
      case StmtKind::kHavoc:
        *out << pad << name(stmt.dst) << " = ?\n";
        break;
      case StmtKind::kCall: {
        *out << pad;
        if (stmt.dst != kNoLocal) {
          *out << name(stmt.dst) << " = ";
        }
        *out << "call " << stmt.callee << "(";
        for (size_t i = 0; i < stmt.args.size(); ++i) {
          if (i > 0) {
            *out << ", ";
          }
          *out << name(stmt.args[i]);
        }
        *out << ")\n";
        break;
      }
      case StmtKind::kReturn:
        *out << pad << "return";
        if (stmt.src != kNoLocal) {
          *out << " " << name(stmt.src);
        }
        *out << "\n";
        break;
      case StmtKind::kEvent:
        *out << pad << "event " << name(stmt.src) << " " << stmt.event << "\n";
        break;
      case StmtKind::kIf:
        *out << pad << "if (" << CondToString(method, stmt.cond) << ") {\n";
        PrintBlock(method, stmt.then_block, indent + 1, out);
        if (!stmt.else_block.empty()) {
          *out << pad << "} else {\n";
          PrintBlock(method, stmt.else_block, indent + 1, out);
        }
        *out << pad << "}\n";
        break;
      case StmtKind::kWhile:
        *out << pad << "while (" << CondToString(method, stmt.cond) << ") {\n";
        PrintBlock(method, stmt.then_block, indent + 1, out);
        *out << pad << "}\n";
        break;
      case StmtKind::kNop:
        *out << pad << "nop\n";
        break;
    }
  }
}

}  // namespace

const char* StmtKindName(StmtKind kind) {
  switch (kind) {
    case StmtKind::kAlloc:
      return "alloc";
    case StmtKind::kAssign:
      return "assign";
    case StmtKind::kLoad:
      return "load";
    case StmtKind::kStore:
      return "store";
    case StmtKind::kConstInt:
      return "const";
    case StmtKind::kBinOp:
      return "binop";
    case StmtKind::kHavoc:
      return "havoc";
    case StmtKind::kCall:
      return "call";
    case StmtKind::kReturn:
      return "return";
    case StmtKind::kEvent:
      return "event";
    case StmtKind::kIf:
      return "if";
    case StmtKind::kWhile:
      return "while";
    case StmtKind::kNop:
      return "nop";
  }
  return "?";
}

const char* IrBinOpName(IrBinOp op) {
  switch (op) {
    case IrBinOp::kAdd:
      return "+";
    case IrBinOp::kSub:
      return "-";
    case IrBinOp::kMul:
      return "*";
  }
  return "?";
}

const char* IrCmpOpName(IrCmpOp op) {
  switch (op) {
    case IrCmpOp::kEq:
      return "==";
    case IrCmpOp::kNe:
      return "!=";
    case IrCmpOp::kLt:
      return "<";
    case IrCmpOp::kLe:
      return "<=";
    case IrCmpOp::kGt:
      return ">";
    case IrCmpOp::kGe:
      return ">=";
  }
  return "?";
}

std::optional<LocalId> Method::FindLocal(const std::string& local_name) const {
  for (size_t i = 0; i < locals.size(); ++i) {
    if (locals[i].name == local_name) {
      return static_cast<LocalId>(i);
    }
  }
  return std::nullopt;
}

MethodId Program::AddMethod(Method method) {
  GRAPPLE_CHECK(by_name_.find(method.name) == by_name_.end())
      << "duplicate method name: " << method.name;
  MethodId id = static_cast<MethodId>(methods_.size());
  by_name_.emplace(method.name, id);
  methods_.push_back(std::move(method));
  return id;
}

std::optional<MethodId> Program::FindMethod(const std::string& name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    return std::nullopt;
  }
  return it->second;
}

size_t Program::TotalStatements() const {
  size_t total = 0;
  for (const auto& method : methods_) {
    total += CountStatements(method.body);
  }
  return total;
}

std::string Program::ToString() const {
  std::ostringstream out;
  for (const auto& method : methods_) {
    out << "method " << method.name << "(";
    for (size_t i = 0; i < method.num_params; ++i) {
      if (i > 0) {
        out << ", ";
      }
      const auto& local = method.locals[i];
      out << (local.is_object ? "obj " : "int ") << local.name;
      if (local.is_object) {
        out << " : " << local.type;
      }
    }
    out << ")";
    if (method.returns_object) {
      out << " : obj " << method.return_type;
    }
    out << " {\n";
    for (size_t i = method.num_params; i < method.locals.size(); ++i) {
      const auto& local = method.locals[i];
      if (local.is_object) {
        out << "  obj " << local.name << " : " << local.type << "\n";
      } else {
        out << "  int " << local.name << "\n";
      }
    }
    PrintBlock(method, method.body, 1, &out);
    out << "}\n\n";
  }
  return out.str();
}

}  // namespace grapple
