#include "src/ir/builder.h"

#include "src/support/logging.h"

namespace grapple {

MethodBuilder::MethodBuilder(std::string name) {
  method_.name = std::move(name);
  blocks_.push_back(&method_.body);
}

LocalId MethodBuilder::Declare(Local local) {
  for (const auto& existing : method_.locals) {
    GRAPPLE_CHECK(existing.name != local.name)
        << "duplicate local '" << local.name << "' in method " << method_.name;
  }
  LocalId id = static_cast<LocalId>(method_.locals.size());
  method_.locals.push_back(std::move(local));
  return id;
}

LocalId MethodBuilder::IntParam(const std::string& name) {
  GRAPPLE_CHECK(!params_closed_) << "parameters must be declared first";
  LocalId id = Declare(Local{name, /*is_object=*/false, ""});
  method_.num_params = method_.locals.size();
  return id;
}

LocalId MethodBuilder::ObjParam(const std::string& name, const std::string& type) {
  GRAPPLE_CHECK(!params_closed_) << "parameters must be declared first";
  LocalId id = Declare(Local{name, /*is_object=*/true, type});
  method_.num_params = method_.locals.size();
  return id;
}

LocalId MethodBuilder::Int(const std::string& name) {
  params_closed_ = true;
  return Declare(Local{name, /*is_object=*/false, ""});
}

LocalId MethodBuilder::Obj(const std::string& name, const std::string& type) {
  params_closed_ = true;
  return Declare(Local{name, /*is_object=*/true, type});
}

void MethodBuilder::ReturnsObject(const std::string& type) {
  method_.returns_object = true;
  method_.return_type = type;
}

void MethodBuilder::Append(Stmt stmt) {
  params_closed_ = true;
  blocks_.back()->push_back(std::move(stmt));
}

void MethodBuilder::Alloc(LocalId dst, const std::string& type) {
  Stmt s;
  s.kind = StmtKind::kAlloc;
  s.dst = dst;
  s.type_name = type;
  Append(std::move(s));
}

void MethodBuilder::Assign(LocalId dst, LocalId src) {
  Stmt s;
  s.kind = StmtKind::kAssign;
  s.dst = dst;
  s.src = src;
  Append(std::move(s));
}

void MethodBuilder::Load(LocalId dst, LocalId base, const std::string& field) {
  Stmt s;
  s.kind = StmtKind::kLoad;
  s.dst = dst;
  s.base = base;
  s.field = field;
  Append(std::move(s));
}

void MethodBuilder::Store(LocalId base, const std::string& field, LocalId src) {
  Stmt s;
  s.kind = StmtKind::kStore;
  s.base = base;
  s.field = field;
  s.src = src;
  Append(std::move(s));
}

void MethodBuilder::ConstInt(LocalId dst, int64_t value) {
  Stmt s;
  s.kind = StmtKind::kConstInt;
  s.dst = dst;
  s.const_value = value;
  Append(std::move(s));
}

void MethodBuilder::Bin(LocalId dst, Operand lhs, IrBinOp op, Operand rhs) {
  Stmt s;
  s.kind = StmtKind::kBinOp;
  s.dst = dst;
  s.lhs = lhs;
  s.bin_op = op;
  s.rhs = rhs;
  Append(std::move(s));
}

void MethodBuilder::AssignInt(LocalId dst, Operand src) {
  Bin(dst, src, IrBinOp::kAdd, OpConst(0));
}

void MethodBuilder::Havoc(LocalId dst) {
  Stmt s;
  s.kind = StmtKind::kHavoc;
  s.dst = dst;
  Append(std::move(s));
}

void MethodBuilder::Call(LocalId dst, const std::string& callee, std::vector<LocalId> args) {
  Stmt s;
  s.kind = StmtKind::kCall;
  s.dst = dst;
  s.callee = callee;
  s.args = std::move(args);
  Append(std::move(s));
}

void MethodBuilder::CallVoid(const std::string& callee, std::vector<LocalId> args) {
  Call(kNoLocal, callee, std::move(args));
}

void MethodBuilder::Ret() {
  Stmt s;
  s.kind = StmtKind::kReturn;
  Append(std::move(s));
}

void MethodBuilder::Ret(LocalId src) {
  Stmt s;
  s.kind = StmtKind::kReturn;
  s.src = src;
  Append(std::move(s));
}

void MethodBuilder::Event(LocalId receiver, const std::string& event) {
  Stmt s;
  s.kind = StmtKind::kEvent;
  s.src = receiver;
  s.event = event;
  Append(std::move(s));
}

void MethodBuilder::Nop() {
  Stmt s;
  s.kind = StmtKind::kNop;
  Append(std::move(s));
}

void MethodBuilder::If(CondExpr cond, const BlockFn& then_fn, const BlockFn& else_fn) {
  Stmt s;
  s.kind = StmtKind::kIf;
  s.cond = cond;
  blocks_.push_back(&s.then_block);
  if (then_fn) {
    then_fn(*this);
  }
  blocks_.pop_back();
  if (else_fn) {
    blocks_.push_back(&s.else_block);
    else_fn(*this);
    blocks_.pop_back();
  }
  Append(std::move(s));
}

void MethodBuilder::While(CondExpr cond, const BlockFn& body_fn) {
  Stmt s;
  s.kind = StmtKind::kWhile;
  s.cond = cond;
  blocks_.push_back(&s.then_block);
  if (body_fn) {
    body_fn(*this);
  }
  blocks_.pop_back();
  Append(std::move(s));
}

void MethodBuilder::SetLine(int32_t line) {
  GRAPPLE_CHECK(!blocks_.back()->empty()) << "SetLine with no statement appended";
  blocks_.back()->back().source_line = line;
}

Method MethodBuilder::Build() && {
  GRAPPLE_CHECK_EQ(blocks_.size(), 1u) << "unbalanced blocks in " << method_.name;
  return std::move(method_);
}

}  // namespace grapple
