// The Grapple system facade: frontend -> phase 1 (path-sensitive alias
// analysis) -> phase 2 (path-sensitive typestate dataflow, per checker) ->
// phase 3 (FSM checking), as described in §2.2.
//
// A Grapple instance is a *session* over one program: the frontend runs at
// construction, phase 1 runs once on first use and is cached, and phases
// 2-3 run per property spec — repeatedly, and concurrently when
// Scheduling::checker_parallelism > 1.
//
// Typical use:
//
//   Program program = ...;                 // built or parsed
//   Grapple grapple(std::move(program));
//   GrappleResult result = grapple.Check(AllBuiltinCheckers());
//   for (const auto& checker : result.checkers) {
//     for (const auto& report : checker.reports) {
//       std::cout << report.ToString() << "\n";
//     }
//   }
//   // The session stays usable: add a custom checker later, reusing the
//   // cached alias analysis.
//   CheckerRunResult one = grapple.CheckOne(MyCheckerSpec());
#ifndef GRAPPLE_SRC_CORE_GRAPPLE_H_
#define GRAPPLE_SRC_CORE_GRAPPLE_H_

#include <array>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/analysis/alias_graph.h"
#include "src/analysis/alias_index.h"
#include "src/cfg/call_graph.h"
#include "src/checker/builtin_checkers.h"
#include "src/checker/checker.h"
#include "src/graph/engine.h"
#include "src/ir/ir.h"
#include "src/obs/provenance.h"
#include "src/obs/report.h"
#include "src/obs/statusz.h"
#include "src/smt/solver.h"
#include "src/support/budget_arbiter.h"
#include "src/support/byte_io.h"
#include "src/support/task_runtime.h"
#include "src/symexec/cfet_builder.h"

namespace grapple {

// Analysis options, grouped by concern. Construct, adjust the nested
// fields, and pass to Grapple; the constructor rejects invalid combinations
// with the messages from Validate() (no silent clamping).
struct GrappleOptions {
  // Knobs of the out-of-core engine and its constraint oracle.
  struct EngineTuning {
    // Analysis-wide cap on bytes of edge data resident in memory. With
    // concurrent checkers this is the *total* across all live engines,
    // arbitrated by a BudgetArbiter; sequentially each engine gets all of
    // it. Smaller values force more partitions and exercise the
    // out-of-core machinery.
    uint64_t memory_budget_bytes = uint64_t{64} << 20;
    // Per-(src,dst,label) cap on distinct payload variants; reaching it
    // widens the triple to the always-true payload (see EngineOptions).
    size_t max_variants_per_triple = 8;
    // Constraint-memoization LRU (Table 4). Disable to measure its benefit.
    bool enable_cache = true;
    size_t cache_capacity = size_t{1} << 16;
    size_t max_encoding_items = 64;
    SolverLimits solver_limits;
    // Per-solve wait (µs) modeling an external SMT solver's call cost;
    // 0 = the built-in solver's native speed. See IntervalOracle::Options.
    uint32_t simulated_solve_latency_us = 0;
    // Simulated latency sleeps (out-of-process solver endpoint) instead of
    // busy-waiting (in-process solver). See IntervalOracle::Options.
    bool simulated_solve_blocks = false;
    // Pipelined partition I/O: write-behind, schedule-driven prefetch, and
    // the compact block file format (see EngineOptions.io_pipeline and
    // DESIGN.md). Results are byte-identical either way; GRAPPLE_IO_PIPELINE
    // overrides at engine construction.
    bool io_pipeline = true;
  };

  // Precision/soundness trade-offs of the program abstraction.
  struct Precision {
    // Bounded loop unrolling factor (§3.1); must be >= 1.
    size_t loop_unroll = 2;
    // Qualify each typestate event edge with the encoding of the
    // object-to-receiver flow that makes it apply (extra precision: events
    // whose aliasing is path-infeasible no longer fire). See
    // TypestateGraph's constructor.
    bool qualify_events_with_alias_paths = true;
    IcfetOptions icfet;
  };

  // What the run records about itself.
  struct Observability {
    // How much derivation provenance to record and decode (GRAPPLE_WITNESS
    // overrides the initial value at construction):
    //   kOff  — no recording, reports carry no witnesses;
    //   kBugs — record during typestate phases, decode per reported bug;
    //   kFull — also record the alias phase and replay SMT at every step.
    obs::WitnessMode witness = obs::WitnessMode::kBugs;
    // Flight-recorder ring size, in events per thread (DESIGN.md §12). The
    // ring overwrites oldest-first, so this bounds both memory (32 bytes per
    // slot per thread) and how far back a crash dump reaches. Range
    // [64, 1M]; GRAPPLE_EVENTLOG_EVENTS overrides at construction.
    size_t event_log_capacity = 4096;
    // Cadence of the background metrics sampler that feeds /varz time
    // series. Only consulted when the statusz endpoint is on. Range
    // [10ms, 10min]; GRAPPLE_SAMPLE_INTERVAL_MS overrides.
    uint32_t sample_interval_ms = 250;
    // Live introspection HTTP listener (loopback only): -1 = off,
    // 0 = pick an ephemeral port (see obs::StatuszPort()), else the literal
    // port. Serves /healthz, /statusz, /metricsz, /tracez, /varz,
    // /profilez. GRAPPLE_STATUSZ overrides at construction.
    int statusz_port = -1;
    // Wall-clock sampling profiler (obs/profiler.h, DESIGN.md §13). When
    // on, the session starts the process-wide profiler and persists the
    // per-pair cost ledger as <work_dir>/profile.bin after every Check().
    // GRAPPLE_PROFILE overrides at construction.
    bool profile = false;
    // Sampling frequency in Hz, range [1, 1000]. The default is prime so
    // samples do not run in lockstep with periodic work.
    // GRAPPLE_PROFILE_HZ overrides at construction.
    uint32_t profile_hz = 97;
  };

  // How much hardware one Check() call may use. Every unit of work in the
  // session — whole checker runs, engine join shards, partition prefetch
  // reads, write-behind encodes — executes on one session-owned
  // work-stealing TaskRuntime (support/task_runtime.h, DESIGN.md §14),
  // sized by the formula
  //
  //     workers = resolve(checker_parallelism) * resolve(num_threads) + 1
  //
  // where resolve() applies the 0-means-hardware rule (support/env.h), and
  // — for num_threads only — the GRAPPLE_THREADS override. The +1 keeps a
  // worker available for background I/O lanes even when every sized-for
  // worker is holding a checker task. Results (reports, witnesses, report
  // ordering) are independent of every knob in this group.
  struct Scheduling {
    // Outer concurrency: how many checkers (phase 2+3 engine runs) execute
    // at once. Check() runs at most this many checker tasks concurrently
    // regardless of the worker count.
    size_t checker_parallelism = 1;
    // Inner concurrency: each engine splits its join loop into this many
    // shards (0 = hardware concurrency; GRAPPLE_THREADS overrides). The
    // shard count — not the worker count — is what the engine's
    // deterministic integration order is keyed on, so changing worker
    // counts or steal policy never changes results.
    size_t num_threads = 1;
    // How idle workers take queued work from busy ones. GRAPPLE_STEAL
    // overrides. kPinned disables stealing entirely, reproducing the
    // legacy two-pool execution for A/B comparison.
    StealPolicy steal_policy = StealPolicy::kLocalityAware;
    // Weighted round-robin service credits per lane {foreground, prefetch,
    // write_behind}: a worker serves up to weight[l] lane-l tasks before
    // offering the next lane a turn. All entries must be in [1, 1024].
    std::array<uint32_t, kNumTaskLanes> lane_weights = {4, 2, 1};
  };

  // Crash safety and I/O fault tolerance (DESIGN.md §11).
  struct Robustness {
    // Checkpoint the out-of-core fixpoint every N processed partition pairs
    // (0 = off). With a persistent `work_dir`, an analysis killed mid-run
    // and rerun over the same program and options resumes each engine from
    // its last published manifest and produces byte-identical reports and
    // witnesses. GRAPPLE_CHECKPOINT / GRAPPLE_CHECKPOINT_INTERVAL override
    // at engine construction (support/env.h).
    uint32_t checkpoint_interval = 0;
    // Minimum wall-clock seconds between interval-triggered manifests.
    // Each manifest re-encodes the engine's full resume state, so on
    // workloads whose pairs drain faster than the interval this throttle is
    // what keeps checkpoint overhead bounded (roughly manifest-cost /
    // spacing) instead of proportional to pair throughput. Completion
    // manifests ignore it. 0 = checkpoint on every interval hit (tests use
    // this for dense crash-point coverage). GRAPPLE_CHECKPOINT_SPACING
    // overrides.
    double checkpoint_min_spacing_s = 1.0;
    // Bounded retries for transient I/O failures (EINTR, EAGAIN, short
    // reads/writes) in the byte-I/O layer; GRAPPLE_IO_RETRIES overrides.
    uint32_t max_io_retries = 4;
    // Base microseconds of the exponential backoff between those retries
    // (0 = retry immediately); GRAPPLE_IO_BACKOFF_US overrides.
    uint32_t backoff_base_us = 50;
    // When a checker's engine run dies with an I/O error, Check() records a
    // degraded CheckerRunResult (degraded/degraded_reason set, no reports)
    // and keeps running the remaining checkers instead of propagating the
    // exception. Disable to fail the whole Check() on the first error.
    bool isolate_checker_failures = true;
  };

  EngineTuning engine;
  Precision precision;
  Observability observability;
  Scheduling scheduling;
  Robustness robustness;
  // Partition spill directory; empty creates a private temp dir.
  std::string work_dir;

  // Returns one descriptive message per invalid setting ({} when the
  // options are usable). Grapple's constructor fails on a non-empty result
  // instead of silently clamping values.
  std::vector<std::string> Validate() const;
};

// Statistics of one engine run plus its graph generation.
struct PhaseStats {
  uint64_t num_vertices = 0;
  uint64_t edges_before = 0;  // base edges (after unary/mirror expansion)
  uint64_t edges_after = 0;   // final edges at fixpoint
  EngineStats engine;
  double seconds = 0;
};

struct CheckerRunResult {
  std::string checker;
  size_t tracked_objects = 0;
  std::vector<BugReport> reports;
  PhaseStats typestate;
  // Robustness degradation (GrappleOptions::Robustness
  // isolate_checker_failures): this checker's engine run failed with the
  // recorded reason; `reports` and `typestate` are empty, the other
  // checkers' results are unaffected.
  bool degraded = false;
  std::string degraded_reason;
};

struct GrappleResult {
  double frontend_seconds = 0;  // IR prep + ICFET construction
  PhaseStats alias;
  size_t alias_pairs = 0;  // flowsTo facts held for phase-2 queries
  std::vector<CheckerRunResult> checkers;
  double total_seconds = 0;
  // Machine-readable record of the run: one obs::PhaseReport per engine run
  // ("alias", "typestate:<checker>") with the full metrics snapshot each.
  // Serialized to the path in GRAPPLE_METRICS when that variable is set.
  obs::RunReport report;

  size_t TotalReports() const;
  // Aggregates for Table-3 style reporting.
  uint64_t TotalVerticesAllPhases() const;
  uint64_t TotalEdgesBefore() const;
  uint64_t TotalEdgesAfter() const;
  double PreprocessSeconds() const;
  double ComputeSeconds() const;
};

class Grapple {
 public:
  // Takes ownership of the program; loops are unrolled in place, then the
  // call graph and ICFET are built (the "frontend"). Checks the options
  // (see GrappleOptions::Validate).
  explicit Grapple(Program program);
  Grapple(Program program, GrappleOptions options);
  ~Grapple();

  // Runs the pipeline for the given property specs and aggregates the
  // results. Phase 1 (alias analysis) runs on the first call and is cached
  // for the session; phases 2-3 run per spec — sequentially, or as
  // concurrent tasks on the session's TaskRuntime when
  // scheduling.checker_parallelism > 1, with the engine memory budget split
  // across concurrent runs by a BudgetArbiter.
  // Reports, witnesses, and phase ordering are identical either way.
  // May be called repeatedly. A checker whose engine run fails with an I/O
  // error yields a degraded result slot (see CheckerRunResult) unless
  // Robustness::isolate_checker_failures is off, in which case the IoError
  // propagates.
  GrappleResult Check(const std::vector<FsmSpec>& specs);

  // Runs phases 2-3 for a single spec against the cached alias analysis
  // (computing it first if this is the session's first use). This is the
  // same code path the concurrent scheduler runs per worker; it is safe to
  // call from multiple threads.
  CheckerRunResult CheckOne(const FsmSpec& spec);

  const Program& program() const { return *program_; }
  // Where this session spills partitions, checkpoints, and profiles —
  // either the configured GrappleOptions::work_dir or the session's private
  // temp dir. Stable for the session's lifetime.
  const std::string& work_dir() const { return work_dir_; }
  const Icfet& icfet() const { return icfet_; }
  const CallGraph& call_graph() const { return *call_graph_; }
  double frontend_seconds() const { return frontend_seconds_; }

  // Snapshot of the session scheduler's counters (tasks/busy time per lane,
  // steals, affinity hits, inline helps). The source for the bench-gated
  // io_overlap and steal-efficiency gauges and the /statusz "scheduler"
  // source.
  TaskRuntimeStats RuntimeStats() const { return runtime_->Stats(); }

 private:
  // Cached phase-1 state, built once per session by EnsureAliasPhase().
  struct AliasPhase;

  const AliasPhase& EnsureAliasPhase();
  // Phases 2-3 for one spec. `lease` (may be null) is the engine's slice of
  // the shared memory budget; `phase_out` (may be null) receives the
  // obs::PhaseReport for result aggregation.
  CheckerRunResult CheckOne(const FsmSpec& spec, BudgetLease* lease, obs::PhaseReport* phase_out);

  std::string PhaseDir(const std::string& name);
  // Work subdirectory for one checker run: "typestate-<name>" on the
  // checker's first run in this session, "typestate-<name>-r<k>" on
  // repeats. Thread-safe.
  std::string CheckerDir(const std::string& checker_name);

  GrappleOptions options_;
  std::unique_ptr<Program> program_;
  std::unique_ptr<TempDir> temp_dir_;
  std::string work_dir_;
  std::unique_ptr<CallGraph> call_graph_;
  Icfet icfet_;
  double frontend_seconds_ = 0;

  // The session's unified scheduler (DESIGN.md §14): checker tasks, engine
  // join shards, and partition-store I/O strands all execute here. Sized
  // per Scheduling (see that struct's worker formula). Declared before the
  // alias phase so engines — whose destructors drain queued strand work —
  // are torn down while the runtime is still alive.
  std::unique_ptr<TaskRuntime> runtime_;

  std::once_flag alias_once_;
  std::unique_ptr<AliasPhase> alias_phase_;
  std::mutex checker_dirs_mu_;
  std::map<std::string, size_t> checker_dir_runs_;

  // Live per-checker state for the /statusz "session" source. Guarded by
  // live_mu_; written by checker workers, read by the scrape thread.
  mutable std::mutex live_mu_;
  std::map<std::string, std::string> live_checkers_;
  // True when this session started the process-wide statusz listener /
  // sampler (and so stops them on destruction).
  bool owns_statusz_ = false;
  // Same contract for the process-wide sampling profiler.
  bool owns_profiler_ = false;
  // Declared last so they unregister (blocking out in-flight scrapes)
  // before any state their callbacks read is torn down.
  obs::Introspection::Handle introspect_session_;
  obs::Introspection::Handle introspect_scheduler_;
};

}  // namespace grapple

#endif  // GRAPPLE_SRC_CORE_GRAPPLE_H_
