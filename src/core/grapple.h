// The Grapple system facade: frontend -> phase 1 (path-sensitive alias
// analysis) -> phase 2 (path-sensitive typestate dataflow, per checker) ->
// phase 3 (FSM checking), as described in §2.2.
//
// Typical use:
//
//   Program program = ...;                 // built or parsed
//   Grapple grapple(std::move(program));
//   GrappleResult result = grapple.Check(AllBuiltinCheckers());
//   for (const auto& checker : result.checkers) {
//     for (const auto& report : checker.reports) {
//       std::cout << report.ToString() << "\n";
//     }
//   }
#ifndef GRAPPLE_SRC_CORE_GRAPPLE_H_
#define GRAPPLE_SRC_CORE_GRAPPLE_H_

#include <memory>
#include <string>
#include <vector>

#include "src/analysis/alias_graph.h"
#include "src/analysis/alias_index.h"
#include "src/cfg/call_graph.h"
#include "src/checker/builtin_checkers.h"
#include "src/checker/checker.h"
#include "src/graph/engine.h"
#include "src/ir/ir.h"
#include "src/obs/provenance.h"
#include "src/obs/report.h"
#include "src/smt/solver.h"
#include "src/support/byte_io.h"
#include "src/symexec/cfet_builder.h"

namespace grapple {

struct GrappleOptions {
  // Bounded loop unrolling factor (§3.1).
  size_t loop_unroll = 2;
  // Engine memory budget; smaller values force more partitions and exercise
  // the out-of-core machinery.
  uint64_t memory_budget_bytes = uint64_t{64} << 20;
  size_t num_threads = 1;
  // Constraint-memoization LRU (Table 4). Disable to measure its benefit.
  bool enable_cache = true;
  size_t cache_capacity = size_t{1} << 16;
  size_t max_encoding_items = 64;
  size_t max_variants_per_triple = 8;
  // Partition spill directory; empty creates a private temp dir.
  std::string work_dir;
  IcfetOptions icfet;
  SolverLimits solver_limits;
  // Per-solve busy-wait (µs) modeling an external SMT solver's call cost;
  // 0 = the built-in solver's native speed. See IntervalOracle::Options.
  uint32_t simulated_solve_latency_us = 0;
  // Qualify each typestate event edge with the encoding of the
  // object-to-receiver flow that makes it apply (extra precision: events
  // whose aliasing is path-infeasible no longer fire). See
  // TypestateGraph's constructor.
  bool qualify_events_with_alias_paths = true;
  // How much derivation provenance to record and decode (GRAPPLE_WITNESS
  // overrides the initial value at construction):
  //   kOff  — no recording, reports carry no witnesses;
  //   kBugs — record during typestate phases, decode per reported bug;
  //   kFull — also record the alias phase and replay SMT at every step.
  obs::WitnessMode witness = obs::WitnessMode::kBugs;
};

// Statistics of one engine run plus its graph generation.
struct PhaseStats {
  uint64_t num_vertices = 0;
  uint64_t edges_before = 0;  // base edges (after unary/mirror expansion)
  uint64_t edges_after = 0;   // final edges at fixpoint
  EngineStats engine;
  double seconds = 0;
};

struct CheckerRunResult {
  std::string checker;
  size_t tracked_objects = 0;
  std::vector<BugReport> reports;
  PhaseStats typestate;
};

struct GrappleResult {
  double frontend_seconds = 0;  // IR prep + ICFET construction
  PhaseStats alias;
  size_t alias_pairs = 0;  // flowsTo facts held for phase-2 queries
  std::vector<CheckerRunResult> checkers;
  double total_seconds = 0;
  // Machine-readable record of the run: one obs::PhaseReport per engine run
  // ("alias", "typestate:<checker>") with the full metrics snapshot each.
  // Serialized to the path in GRAPPLE_METRICS when that variable is set.
  obs::RunReport report;

  size_t TotalReports() const;
  // Aggregates for Table-3 style reporting.
  uint64_t TotalVerticesAllPhases() const;
  uint64_t TotalEdgesBefore() const;
  uint64_t TotalEdgesAfter() const;
  double PreprocessSeconds() const;
  double ComputeSeconds() const;
};

class Grapple {
 public:
  // Takes ownership of the program; loops are unrolled in place, then the
  // call graph and ICFET are built (the "frontend").
  explicit Grapple(Program program);
  Grapple(Program program, GrappleOptions options);

  // Runs the full pipeline for the given property specs. Phase 1 runs once;
  // phases 2-3 run per spec. May be called once per Grapple instance.
  GrappleResult Check(const std::vector<FsmSpec>& specs);

  const Program& program() const { return *program_; }
  const Icfet& icfet() const { return icfet_; }
  const CallGraph& call_graph() const { return *call_graph_; }
  double frontend_seconds() const { return frontend_seconds_; }

 private:
  std::string PhaseDir(const std::string& name);

  GrappleOptions options_;
  std::unique_ptr<Program> program_;
  std::unique_ptr<TempDir> temp_dir_;
  std::string work_dir_;
  std::unique_ptr<CallGraph> call_graph_;
  Icfet icfet_;
  double frontend_seconds_ = 0;
  bool used_ = false;
};

}  // namespace grapple

#endif  // GRAPPLE_SRC_CORE_GRAPPLE_H_
