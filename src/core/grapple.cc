#include "src/core/grapple.h"

#include <filesystem>
#include <unordered_set>

#include "src/cfg/loop_unroll.h"
#include "src/grammar/pointsto_grammar.h"
#include "src/grammar/typestate_grammar.h"
#include "src/obs/trace.h"
#include "src/support/env.h"
#include "src/support/logging.h"
#include "src/support/timer.h"

namespace grapple {

namespace {

// The field universe: every field name stored or loaded anywhere.
void CollectFields(const std::vector<Stmt>& block, std::unordered_set<std::string>* out) {
  for (const auto& stmt : block) {
    if (stmt.kind == StmtKind::kLoad || stmt.kind == StmtKind::kStore) {
      out->insert(stmt.field);
    }
    CollectFields(stmt.then_block, out);
    CollectFields(stmt.else_block, out);
  }
}

std::vector<std::string> FieldUniverse(const Program& program) {
  std::unordered_set<std::string> fields;
  for (const auto& method : program.methods()) {
    CollectFields(method.body, &fields);
  }
  std::vector<std::string> sorted(fields.begin(), fields.end());
  std::sort(sorted.begin(), sorted.end());
  return sorted;
}

}  // namespace

size_t GrappleResult::TotalReports() const {
  size_t total = 0;
  for (const auto& checker : checkers) {
    total += checker.reports.size();
  }
  return total;
}

uint64_t GrappleResult::TotalVerticesAllPhases() const {
  uint64_t total = alias.num_vertices;
  for (const auto& checker : checkers) {
    total += checker.typestate.num_vertices;
  }
  return total;
}

uint64_t GrappleResult::TotalEdgesBefore() const {
  uint64_t total = alias.edges_before;
  for (const auto& checker : checkers) {
    total += checker.typestate.edges_before;
  }
  return total;
}

uint64_t GrappleResult::TotalEdgesAfter() const {
  uint64_t total = alias.edges_after;
  for (const auto& checker : checkers) {
    total += checker.typestate.edges_after;
  }
  return total;
}

double GrappleResult::PreprocessSeconds() const {
  double total = frontend_seconds + alias.engine.preprocess_seconds;
  for (const auto& checker : checkers) {
    total += checker.typestate.engine.preprocess_seconds;
  }
  return total;
}

double GrappleResult::ComputeSeconds() const {
  double total = alias.engine.compute_seconds;
  for (const auto& checker : checkers) {
    total += checker.typestate.engine.compute_seconds;
  }
  return total;
}

Grapple::Grapple(Program program) : Grapple(std::move(program), GrappleOptions()) {}

Grapple::Grapple(Program program, GrappleOptions options)
    : options_(std::move(options)), program_(std::make_unique<Program>(std::move(program))) {
  obs::InitTracingFromEnv();
  // The environment knob wins when set; the caller's option is the fallback.
  options_.witness = obs::WitnessModeFromEnv(options_.witness);
  obs::ScopedSpan span("frontend", "phase");
  WallTimer timer;
  UnrollLoops(program_.get(), options_.loop_unroll);
  call_graph_ = std::make_unique<CallGraph>(*program_);
  icfet_ = BuildIcfet(*program_, *call_graph_, options_.icfet);
  frontend_seconds_ = timer.ElapsedSeconds();
  if (options_.work_dir.empty()) {
    temp_dir_ = std::make_unique<TempDir>("grapple-work");
    work_dir_ = temp_dir_->path();
  } else {
    work_dir_ = options_.work_dir;
  }
}

std::string Grapple::PhaseDir(const std::string& name) {
  std::string dir = work_dir_ + "/" + name;
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  GRAPPLE_CHECK(!ec) << "cannot create phase dir " << dir;
  return dir;
}

GrappleResult Grapple::Check(const std::vector<FsmSpec>& specs) {
  GRAPPLE_CHECK(!used_) << "Grapple::Check may be called once per instance";
  used_ = true;
  WallTimer total_timer;
  GrappleResult result;
  result.frontend_seconds = frontend_seconds_;

  IntervalOracle::Options oracle_options;
  oracle_options.cache_capacity = options_.cache_capacity;
  oracle_options.enable_cache = options_.enable_cache;
  oracle_options.max_encoding_items = options_.max_encoding_items;
  oracle_options.solver_limits = options_.solver_limits;
  oracle_options.simulated_solve_latency_us = options_.simulated_solve_latency_us;

  EngineOptions engine_options;
  engine_options.memory_budget_bytes = options_.memory_budget_bytes;
  engine_options.num_threads = options_.num_threads;
  engine_options.max_variants_per_triple = options_.max_variants_per_triple;

  // --- Phase 1: path-sensitive alias analysis ---
  WallTimer alias_timer;
  Grammar pointsto_grammar;
  PointsToLabels pt_labels = BuildPointsToGrammar(&pointsto_grammar, FieldUniverse(*program_));
  IntervalOracle alias_oracle(&icfet_, oracle_options);
  EngineOptions alias_engine_options = engine_options;
  alias_engine_options.work_dir = PhaseDir("alias");
  // Alias-phase provenance only matters for full-fidelity tracing; bug
  // witnesses walk typestate derivations.
  alias_engine_options.record_provenance = options_.witness == obs::WitnessMode::kFull;
  GraphEngine alias_engine(&pointsto_grammar, &alias_oracle, alias_engine_options);
  auto alias_span = std::make_unique<obs::ScopedSpan>("alias_phase", "phase");
  AliasGraph alias_graph(*program_, *call_graph_, icfet_, pt_labels, &alias_engine);
  alias_engine.Finalize(alias_graph.num_vertices());
  alias_engine.Run();
  alias_span.reset();
  result.alias.num_vertices = alias_graph.num_vertices();
  result.alias.edges_before = alias_engine.stats().base_edges;
  result.alias.edges_after = alias_engine.stats().final_edges;
  result.alias.engine = alias_engine.stats();
  result.alias.seconds = alias_timer.ElapsedSeconds();
  {
    obs::PhaseReport phase;
    phase.name = "alias";
    phase.num_vertices = alias_graph.num_vertices();
    phase.edges_before = result.alias.edges_before;
    phase.edges_after = result.alias.edges_after;
    phase.seconds = result.alias.seconds;
    phase.metrics = alias_engine.stats().metrics;
    result.report.phases.push_back(std::move(phase));
  }

  // Harvest aliasing facts for every event receiver once.
  std::unordered_set<VertexId> receivers;
  for (const auto& clone : alias_graph.clones()) {
    for (const auto& occ : clone.events) {
      receivers.insert(occ.receiver_vertex);
    }
  }
  AliasIndex alias_index(&alias_engine, pt_labels.flows_to, receivers);
  result.alias_pairs = alias_index.NumPairs();

  // --- Phases 2 + 3 per checker ---
  for (const auto& spec : specs) {
    WallTimer checker_timer;
    CheckerRunResult checker_result;
    checker_result.checker = spec.fsm.name();
    obs::ScopedSpan checker_span(obs::InternSpanName("typestate:" + spec.fsm.name()), "phase");

    std::unordered_set<std::string> types(spec.tracked_types.begin(), spec.tracked_types.end());
    std::vector<uint32_t> tracked;
    for (uint32_t i = 0; i < alias_graph.objects().size(); ++i) {
      if (types.find(alias_graph.objects()[i].type) != types.end()) {
        tracked.push_back(i);
      }
    }
    checker_result.tracked_objects = tracked.size();

    Fsm completed = CompleteFsm(spec.fsm);
    Grammar ts_grammar;
    TypestateLabels ts_labels = BuildTypestateGrammar(&ts_grammar, completed);
    IntervalOracle ts_oracle(&icfet_, oracle_options);
    EngineOptions ts_engine_options = engine_options;
    ts_engine_options.work_dir = PhaseDir("typestate-" + spec.fsm.name());
    ts_engine_options.record_provenance = options_.witness != obs::WitnessMode::kOff;
    GraphEngine ts_engine(&ts_grammar, &ts_oracle, ts_engine_options);
    TypestateGraph ts_graph(alias_graph, alias_index, completed, ts_labels, tracked, &ts_engine,
                            options_.qualify_events_with_alias_paths);
    ts_engine.Finalize(ts_graph.num_vertices());
    ts_engine.Run();

    checker_result.reports = ExtractReports(spec.fsm.name(), completed, ts_labels, ts_graph,
                                            alias_graph, &ts_engine, &ts_oracle,
                                            options_.witness);
    checker_result.typestate.num_vertices = ts_graph.num_vertices();
    checker_result.typestate.edges_before = ts_engine.stats().base_edges;
    checker_result.typestate.edges_after = ts_engine.stats().final_edges;
    checker_result.typestate.engine = ts_engine.stats();
    checker_result.typestate.seconds = checker_timer.ElapsedSeconds();

    obs::PhaseReport phase;
    phase.name = "typestate:" + spec.fsm.name();
    phase.num_vertices = ts_graph.num_vertices();
    phase.edges_before = checker_result.typestate.edges_before;
    phase.edges_after = checker_result.typestate.edges_after;
    phase.seconds = checker_result.typestate.seconds;
    // Re-snapshot after report extraction so the oracle's CheckPayload work
    // on final edges is included.
    phase.metrics = ts_engine.Metrics();
    result.report.phases.push_back(std::move(phase));

    result.checkers.push_back(std::move(checker_result));
  }

  result.total_seconds = total_timer.ElapsedSeconds() + frontend_seconds_;
  result.report.frontend_seconds = frontend_seconds_;
  result.report.total_seconds = result.total_seconds;
  result.report.total_reports = result.TotalReports();

  // GRAPPLE_METRICS=<path> dumps the machine-readable run report.
  std::string metrics_path = EnvString("GRAPPLE_METRICS");
  if (!metrics_path.empty()) {
    if (!obs::WriteTextFile(metrics_path, result.report.ToJson())) {
      GRAPPLE_LOG(WARNING) << "failed to write run report to " << metrics_path;
    }
  }
  return result;
}

}  // namespace grapple
