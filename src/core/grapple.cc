#include "src/core/grapple.h"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <unordered_set>

#include "src/cfg/loop_unroll.h"
#include "src/grammar/pointsto_grammar.h"
#include "src/grammar/typestate_grammar.h"
#include "src/obs/event_log.h"
#include "src/obs/json.h"
#include "src/obs/profiler.h"
#include "src/obs/sampler.h"
#include "src/obs/trace.h"
#include "src/support/env.h"
#include "src/support/event_hook.h"
#include "src/support/logging.h"
#include "src/support/task_runtime.h"
#include "src/support/timer.h"

namespace grapple {

namespace {

// The field universe: every field name stored or loaded anywhere.
void CollectFields(const std::vector<Stmt>& block, std::unordered_set<std::string>* out) {
  for (const auto& stmt : block) {
    if (stmt.kind == StmtKind::kLoad || stmt.kind == StmtKind::kStore) {
      out->insert(stmt.field);
    }
    CollectFields(stmt.then_block, out);
    CollectFields(stmt.else_block, out);
  }
}

std::vector<std::string> FieldUniverse(const Program& program) {
  std::unordered_set<std::string> fields;
  for (const auto& method : program.methods()) {
    CollectFields(method.body, &fields);
  }
  std::vector<std::string> sorted(fields.begin(), fields.end());
  std::sort(sorted.begin(), sorted.end());
  return sorted;
}

IntervalOracle::Options OracleOptionsFrom(const GrappleOptions& options) {
  IntervalOracle::Options oracle_options;
  oracle_options.cache_capacity = options.engine.cache_capacity;
  oracle_options.enable_cache = options.engine.enable_cache;
  oracle_options.max_encoding_items = options.engine.max_encoding_items;
  oracle_options.solver_limits = options.engine.solver_limits;
  oracle_options.simulated_solve_latency_us = options.engine.simulated_solve_latency_us;
  oracle_options.simulated_solve_blocks = options.engine.simulated_solve_blocks;
  return oracle_options;
}

EngineOptions EngineOptionsFrom(const GrappleOptions& options, TaskRuntime* runtime) {
  EngineOptions engine_options;
  engine_options.memory_budget_bytes = options.engine.memory_budget_bytes;
  engine_options.num_threads = options.scheduling.num_threads;
  engine_options.max_variants_per_triple = options.engine.max_variants_per_triple;
  engine_options.io_pipeline = options.engine.io_pipeline;
  engine_options.checkpoint_interval = options.robustness.checkpoint_interval;
  engine_options.checkpoint_min_spacing_seconds = options.robustness.checkpoint_min_spacing_s;
  engine_options.runtime = runtime;
  return engine_options;
}

}  // namespace

std::vector<std::string> GrappleOptions::Validate() const {
  std::vector<std::string> errors;
  if (engine.memory_budget_bytes == 0) {
    errors.push_back("engine.memory_budget_bytes must be positive (it is the analysis-wide cap "
                     "on resident edge data, not a disable switch)");
  }
  if (engine.max_variants_per_triple == 0) {
    errors.push_back("engine.max_variants_per_triple must be >= 1; the variant cap is what "
                     "guarantees termination of the closure");
  }
  if (engine.max_encoding_items == 0) {
    errors.push_back("engine.max_encoding_items must be >= 1 so merged path encodings can hold "
                     "at least one interval");
  }
  if (engine.enable_cache && engine.cache_capacity == 0) {
    errors.push_back("engine.cache_capacity must be >= 1 when enable_cache is set; disable the "
                     "cache instead of sizing it to zero");
  }
  if (precision.loop_unroll == 0) {
    errors.push_back("precision.loop_unroll must be >= 1 (§3.1: loops are unrolled a bounded "
                     "number of times; 0 iterations would drop loop bodies entirely)");
  }
  if (robustness.max_io_retries > 100) {
    errors.push_back("robustness.max_io_retries must be <= 100; retries bound transient-fault "
                     "absorption, they are not a hang-forever switch");
  }
  if (robustness.backoff_base_us > 1'000'000) {
    errors.push_back("robustness.backoff_base_us must be <= 1000000 (1s); the backoff doubles "
                     "per retry, so larger bases stall the analysis for minutes");
  }
  if (robustness.checkpoint_min_spacing_s < 0 ||
      !std::isfinite(robustness.checkpoint_min_spacing_s)) {
    errors.push_back("robustness.checkpoint_min_spacing_s must be a finite value >= 0 "
                     "(seconds between interval-triggered checkpoint manifests)");
  }
  if (robustness.checkpoint_interval > 0 && work_dir.empty()) {
    errors.push_back("robustness.checkpoint_interval needs a persistent work_dir: with the "
                     "default private temp dir, checkpoints are deleted with the session and "
                     "a rerun could never resume from them");
  }
  if (observability.event_log_capacity < 64 ||
      observability.event_log_capacity > (size_t{1} << 20)) {
    errors.push_back("observability.event_log_capacity must be in [64, 1048576] events per "
                     "thread; below that a crash dump is useless, above it the rings stop "
                     "being bounded-overhead");
  }
  if (observability.sample_interval_ms < 10 || observability.sample_interval_ms > 600'000) {
    errors.push_back("observability.sample_interval_ms must be in [10, 600000]; faster "
                     "sampling contends with the workload it is measuring");
  }
  if (observability.statusz_port < -1 || observability.statusz_port > 65535) {
    errors.push_back("observability.statusz_port must be -1 (off), 0 (ephemeral), or a valid "
                     "TCP port <= 65535");
  }
  if (observability.profile_hz < 1 || observability.profile_hz > 1000) {
    errors.push_back("observability.profile_hz must be in [1, 1000]; above 1 kHz the SIGPROF "
                     "storm perturbs the workload more than it measures");
  }
  if (scheduling.checker_parallelism == 0 && scheduling.num_threads == 0) {
    errors.push_back("scheduling: checker_parallelism and num_threads cannot both be 0; the "
                     "worker formula multiplies them, and hardware-concurrency squared is an "
                     "oversubscription no machine wants — pin at least one of them");
  }
  if (scheduling.checker_parallelism > 0 && scheduling.num_threads > 0 &&
      scheduling.checker_parallelism * scheduling.num_threads > 1024) {
    errors.push_back("scheduling: checker_parallelism * num_threads must be <= 1024 worker "
                     "threads; past that the scheduler is managing thread churn, not work");
  }
  for (size_t lane = 0; lane < kNumTaskLanes; ++lane) {
    uint32_t weight = scheduling.lane_weights[lane];
    if (weight == 0 || weight > 1024) {
      errors.push_back("scheduling.lane_weights[" + std::to_string(lane) +
                       "] must be in [1, 1024]: 0 would starve the lane outright, and huge "
                       "credits defeat the round-robin that keeps lower lanes live");
    }
  }
  return errors;
}

size_t GrappleResult::TotalReports() const {
  size_t total = 0;
  for (const auto& checker : checkers) {
    total += checker.reports.size();
  }
  return total;
}

uint64_t GrappleResult::TotalVerticesAllPhases() const {
  uint64_t total = alias.num_vertices;
  for (const auto& checker : checkers) {
    total += checker.typestate.num_vertices;
  }
  return total;
}

uint64_t GrappleResult::TotalEdgesBefore() const {
  uint64_t total = alias.edges_before;
  for (const auto& checker : checkers) {
    total += checker.typestate.edges_before;
  }
  return total;
}

uint64_t GrappleResult::TotalEdgesAfter() const {
  uint64_t total = alias.edges_after;
  for (const auto& checker : checkers) {
    total += checker.typestate.edges_after;
  }
  return total;
}

double GrappleResult::PreprocessSeconds() const {
  double total = frontend_seconds + alias.engine.preprocess_seconds;
  for (const auto& checker : checkers) {
    total += checker.typestate.engine.preprocess_seconds;
  }
  return total;
}

double GrappleResult::ComputeSeconds() const {
  double total = alias.engine.compute_seconds;
  for (const auto& checker : checkers) {
    total += checker.typestate.engine.compute_seconds;
  }
  return total;
}

// Everything phase 1 produces that later phases read. Owned by the session;
// after EnsureAliasPhase returns, all of it is immutable and safe for
// concurrent reads by checker workers.
struct Grapple::AliasPhase {
  Grammar grammar;
  PointsToLabels labels;
  std::unique_ptr<IntervalOracle> oracle;
  std::unique_ptr<GraphEngine> engine;
  std::unique_ptr<AliasGraph> graph;
  std::unique_ptr<AliasIndex> index;
  PhaseStats stats;
  obs::PhaseReport report;
  size_t pairs = 0;
};

Grapple::Grapple(Program program) : Grapple(std::move(program), GrappleOptions()) {}

Grapple::Grapple(Program program, GrappleOptions options)
    : options_(std::move(options)), program_(std::make_unique<Program>(std::move(program))) {
  std::vector<std::string> errors = options_.Validate();
  if (!errors.empty()) {
    std::string joined;
    for (const auto& error : errors) {
      joined += (joined.empty() ? "" : "; ") + error;
    }
    GRAPPLE_CHECK(false) << "invalid GrappleOptions: " << joined;
  }
  obs::InitTracingFromEnv();
  // One scheduler for the whole session (see Scheduling's worker formula):
  // checker tasks, join shards, and I/O strands share these workers instead
  // of carving the machine into per-purpose pools.
  {
    TaskRuntimeOptions rt_options;
    size_t outer = options_.scheduling.checker_parallelism == 0
                       ? HardwareThreads()
                       : options_.scheduling.checker_parallelism;
    rt_options.workers = outer * ResolveThreadCount(options_.scheduling.num_threads) + 1;
    rt_options.steal_policy = ResolveStealPolicy(options_.scheduling.steal_policy);
    rt_options.lane_weights = options_.scheduling.lane_weights;
    runtime_ = std::make_unique<TaskRuntime>(rt_options);
  }
  // The environment knob wins when set; the caller's option is the fallback.
  options_.observability.witness = obs::WitnessModeFromEnv(options_.observability.witness);
  IoRetryPolicy io_policy = GetIoRetryPolicy();
  io_policy.max_retries = static_cast<uint32_t>(std::max<int64_t>(
      0, EnvInt64("GRAPPLE_IO_RETRIES", options_.robustness.max_io_retries)));
  io_policy.backoff_base_us = static_cast<uint32_t>(std::max<int64_t>(
      0, EnvInt64("GRAPPLE_IO_BACKOFF_US", options_.robustness.backoff_base_us)));
  SetIoRetryPolicy(io_policy);
  obs::ScopedSpan span("frontend", "phase");
  WallTimer timer;
  UnrollLoops(program_.get(), options_.precision.loop_unroll);
  call_graph_ = std::make_unique<CallGraph>(*program_);
  icfet_ = BuildIcfet(*program_, *call_graph_, options_.precision.icfet);
  frontend_seconds_ = timer.ElapsedSeconds();
  if (options_.work_dir.empty()) {
    temp_dir_ = std::make_unique<TempDir>("grapple-work");
    work_dir_ = temp_dir_->path();
  } else {
    work_dir_ = options_.work_dir;
  }

  // Flight recorder: always on (bounded overhead), dumped to the session's
  // work dir on crash paths. The facade claims the dump path outright;
  // engines only fill it in when nobody else has (only_if_unset).
  obs::EventLogInstall();
  obs::EventLogSetCapacity(static_cast<size_t>(std::max<int64_t>(
      1, EnvInt64("GRAPPLE_EVENTLOG_EVENTS",
                  static_cast<int64_t>(options_.observability.event_log_capacity)))));
  obs::EventLogSetCrashDumpPath(work_dir_ + "/flightrec.bin");

  // Live introspection endpoint: off unless the option or GRAPPLE_STATUSZ
  // asks for a port. The listener and sampler are process-wide; the first
  // session to start them owns their shutdown.
  int statusz_port = static_cast<int>(
      EnvInt64("GRAPPLE_STATUSZ", options_.observability.statusz_port));
  if (statusz_port >= 0 && !obs::StatuszRunning()) {
    std::string statusz_error;
    if (obs::StartStatusz(statusz_port, &statusz_error)) {
      owns_statusz_ = true;
      uint32_t interval_ms = static_cast<uint32_t>(std::max<int64_t>(
          1, EnvInt64("GRAPPLE_SAMPLE_INTERVAL_MS",
                      options_.observability.sample_interval_ms)));
      obs::Sampler::Get().Start(interval_ms);
      GRAPPLE_LOG(INFO) << "statusz listening on 127.0.0.1:" << obs::StatuszPort();
    } else {
      GRAPPLE_LOG(WARNING) << "statusz disabled: " << statusz_error;
    }
  }

  // Sampling profiler: off unless the option or GRAPPLE_PROFILE asks for it.
  // Like statusz, the profiler is process-wide and the first session to start
  // it owns its shutdown; every profiled session points the dump at its own
  // work dir (first claim wins) so a crash spill lands next to flightrec.bin.
  if (ResolveProfile(options_.observability.profile)) {
    obs::ProfilerSetDumpPath(work_dir_ + "/profile.bin", /*only_if_unset=*/true);
    if (!obs::ProfilerRunning()) {
      uint32_t hz = ResolveProfileHz(options_.observability.profile_hz);
      if (obs::ProfilerStart(hz)) {
        owns_profiler_ = true;
        GRAPPLE_LOG(INFO) << "sampling profiler on at " << hz << " Hz";
      }
    }
  }

  introspect_session_ = obs::Introspection::RegisterStatusSource("session", [this] {
    obs::JsonWriter w;
    w.BeginObject();
    w.Key("work_dir").String(work_dir_);
    w.Key("frontend_seconds").Double(frontend_seconds_);
    w.Key("witness_mode").String(obs::WitnessModeName(options_.observability.witness));
    w.Key("checkers").BeginObject();
    {
      std::lock_guard<std::mutex> lock(live_mu_);
      for (const auto& [name, state] : live_checkers_) {
        w.Key(name).String(state);
      }
    }
    w.EndObject();
    w.EndObject();
    return w.Take();
  });

  introspect_scheduler_ = obs::Introspection::RegisterStatusSource("scheduler", [this] {
    TaskRuntimeStats stats = runtime_->Stats();
    static constexpr const char* kLaneNames[kNumTaskLanes] = {"foreground", "prefetch",
                                                             "write_behind"};
    obs::JsonWriter w;
    w.BeginObject();
    w.Key("workers").UInt(runtime_->workers());
    w.Key("steal_policy").String(StealPolicyName(runtime_->steal_policy()));
    w.Key("lanes").BeginObject();
    for (size_t lane = 0; lane < kNumTaskLanes; ++lane) {
      w.Key(kLaneNames[lane]).BeginObject();
      w.Key("tasks").UInt(stats.tasks[lane]);
      w.Key("busy_ns").UInt(stats.busy_ns[lane]);
      w.EndObject();
    }
    w.EndObject();
    w.Key("steals").UInt(stats.steals);
    w.Key("affine_tasks").UInt(stats.affine_tasks);
    w.Key("affine_hits").UInt(stats.affine_hits);
    w.Key("inline_tasks").UInt(stats.inline_tasks);
    w.Key("strand_tasks").UInt(stats.strand_tasks);
    w.Key("queue_peak").UInt(stats.queue_peak);
    w.EndObject();
    return w.Take();
  });
}

Grapple::~Grapple() {
  introspect_scheduler_.Release();
  introspect_session_.Release();
  if (owns_statusz_) {
    obs::Sampler::Get().Stop();
    obs::StopStatusz();
  }
  if (owns_profiler_) {
    // Final harvest before teardown so samples taken since the last Check()
    // still reach disk.
    if (!obs::ProfilerDumpPath().empty()) {
      obs::ProfilerWriteFile(obs::ProfilerDumpPath());
    }
    obs::ProfilerStop();
  }
}

std::string Grapple::PhaseDir(const std::string& name) {
  std::string dir = work_dir_ + "/" + name;
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  GRAPPLE_CHECK(!ec) << "cannot create phase dir " << dir;
  return dir;
}

std::string Grapple::CheckerDir(const std::string& checker_name) {
  size_t run;
  {
    std::lock_guard<std::mutex> lock(checker_dirs_mu_);
    run = checker_dir_runs_[checker_name]++;
  }
  std::string name = "typestate-" + checker_name;
  if (run > 0) {
    name += "-r" + std::to_string(run);
  }
  return PhaseDir(name);
}

const Grapple::AliasPhase& Grapple::EnsureAliasPhase() {
  std::call_once(alias_once_, [&] {
    auto alias = std::make_unique<AliasPhase>();
    WallTimer alias_timer;
    alias->labels = BuildPointsToGrammar(&alias->grammar, FieldUniverse(*program_));
    alias->oracle = std::make_unique<IntervalOracle>(&icfet_, OracleOptionsFrom(options_));
    EngineOptions engine_options = EngineOptionsFrom(options_, runtime_.get());
    engine_options.work_dir = PhaseDir("alias");
    // Alias-phase provenance only matters for full-fidelity tracing; bug
    // witnesses walk typestate derivations.
    engine_options.record_provenance =
        options_.observability.witness == obs::WitnessMode::kFull;
    alias->engine =
        std::make_unique<GraphEngine>(&alias->grammar, alias->oracle.get(), engine_options);
    auto alias_span = std::make_unique<obs::ScopedSpan>("alias_phase", "phase");
    alias->graph = std::make_unique<AliasGraph>(*program_, *call_graph_, icfet_, alias->labels,
                                               alias->engine.get());
    alias->engine->Finalize(alias->graph->num_vertices());
    alias->engine->Run();
    alias_span.reset();
    alias->stats.num_vertices = alias->graph->num_vertices();
    alias->stats.edges_before = alias->engine->stats().base_edges;
    alias->stats.edges_after = alias->engine->stats().final_edges;
    alias->stats.engine = alias->engine->stats();
    alias->stats.seconds = alias_timer.ElapsedSeconds();
    alias->report.name = "alias";
    alias->report.num_vertices = alias->graph->num_vertices();
    alias->report.edges_before = alias->stats.edges_before;
    alias->report.edges_after = alias->stats.edges_after;
    alias->report.seconds = alias->stats.seconds;
    alias->report.metrics = alias->engine->stats().metrics;

    // Harvest aliasing facts for every event receiver once.
    std::unordered_set<VertexId> receivers;
    for (const auto& clone : alias->graph->clones()) {
      for (const auto& occ : clone.events) {
        receivers.insert(occ.receiver_vertex);
      }
    }
    alias->index = std::make_unique<AliasIndex>(alias->engine.get(), alias->labels.flows_to,
                                               receivers);
    alias->pairs = alias->index->NumPairs();
    alias_phase_ = std::move(alias);
  });
  return *alias_phase_;
}

CheckerRunResult Grapple::CheckOne(const FsmSpec& spec) {
  EnsureAliasPhase();
  return CheckOne(spec, nullptr, nullptr);
}

CheckerRunResult Grapple::CheckOne(const FsmSpec& spec, BudgetLease* lease,
                                   obs::PhaseReport* phase_out) {
  const AliasPhase& alias = *alias_phase_;
  WallTimer checker_timer;
  CheckerRunResult checker_result;
  checker_result.checker = spec.fsm.name();
  obs::ScopedSpan checker_span(obs::InternSpanName("typestate:" + spec.fsm.name()), "phase");
  uint32_t name_id = obs::EventLogInternString(spec.fsm.name());
  obs::ProfChecker prof_checker(name_id);
  evt::Emit(evt::kCheckerStart, name_id);
  {
    std::lock_guard<std::mutex> lock(live_mu_);
    live_checkers_[spec.fsm.name()] = "running";
  }

  std::unordered_set<std::string> types(spec.tracked_types.begin(), spec.tracked_types.end());
  std::vector<uint32_t> tracked;
  for (uint32_t i = 0; i < alias.graph->objects().size(); ++i) {
    if (types.find(alias.graph->objects()[i].type) != types.end()) {
      tracked.push_back(i);
    }
  }
  checker_result.tracked_objects = tracked.size();

  Fsm completed = CompleteFsm(spec.fsm);
  Grammar ts_grammar;
  TypestateLabels ts_labels = BuildTypestateGrammar(&ts_grammar, completed);
  IntervalOracle ts_oracle(&icfet_, OracleOptionsFrom(options_));
  EngineOptions ts_engine_options = EngineOptionsFrom(options_, runtime_.get());
  ts_engine_options.work_dir = CheckerDir(spec.fsm.name());
  ts_engine_options.record_provenance =
      options_.observability.witness != obs::WitnessMode::kOff;
  ts_engine_options.budget_lease = lease;
  GraphEngine ts_engine(&ts_grammar, &ts_oracle, ts_engine_options);
  TypestateGraph ts_graph(*alias.graph, *alias.index, completed, ts_labels, tracked, &ts_engine,
                          options_.precision.qualify_events_with_alias_paths);
  ts_engine.Finalize(ts_graph.num_vertices());
  ts_engine.Run();

  checker_result.reports = ExtractReports(spec.fsm.name(), completed, ts_labels, ts_graph,
                                          *alias.graph, &ts_engine, &ts_oracle,
                                          options_.observability.witness);
  checker_result.typestate.num_vertices = ts_graph.num_vertices();
  checker_result.typestate.edges_before = ts_engine.stats().base_edges;
  checker_result.typestate.edges_after = ts_engine.stats().final_edges;
  checker_result.typestate.engine = ts_engine.stats();
  checker_result.typestate.seconds = checker_timer.ElapsedSeconds();

  if (phase_out != nullptr) {
    phase_out->name = "typestate:" + spec.fsm.name();
    phase_out->num_vertices = ts_graph.num_vertices();
    phase_out->edges_before = checker_result.typestate.edges_before;
    phase_out->edges_after = checker_result.typestate.edges_after;
    phase_out->seconds = checker_result.typestate.seconds;
    // Re-snapshot after report extraction so the oracle's CheckPayload work
    // on final edges is included.
    phase_out->metrics = ts_engine.Metrics();
  }
  evt::Emit(evt::kCheckerDone, name_id, checker_result.reports.size());
  {
    std::lock_guard<std::mutex> lock(live_mu_);
    live_checkers_[spec.fsm.name()] =
        "done (" + std::to_string(checker_result.reports.size()) + " reports)";
  }
  return checker_result;
}

GrappleResult Grapple::Check(const std::vector<FsmSpec>& specs) {
  WallTimer total_timer;
  const AliasPhase& alias = EnsureAliasPhase();
  GrappleResult result;
  result.frontend_seconds = frontend_seconds_;
  result.alias = alias.stats;
  result.alias_pairs = alias.pairs;
  result.report.phases.push_back(alias.report);

  // --- Phases 2 + 3 per checker ---
  // Workers write into per-spec slots; aggregation below walks the slots in
  // spec order, so the result (checker order, report phases) is identical
  // to the sequential run regardless of completion order.
  std::vector<CheckerRunResult> runs(specs.size());
  std::vector<obs::PhaseReport> phases(specs.size());
  // Failure isolation: one checker's engine dying on an I/O error (disk
  // full, corrupt partition, failed checkpoint) becomes a degraded result
  // slot, not the end of the whole multi-checker run. Checker tasks must
  // never leak exceptions (a throw escaping a runtime task would
  // terminate), so the parallel path always isolates and the no-isolation
  // policy is applied after the barrier.
  auto run_isolated = [&](size_t i, BudgetLease* lease) {
    try {
      runs[i] = CheckOne(specs[i], lease, &phases[i]);
    } catch (const std::exception& e) {
      runs[i] = CheckerRunResult();
      runs[i].checker = specs[i].fsm.name();
      runs[i].degraded = true;
      runs[i].degraded_reason = e.what();
      phases[i] = obs::PhaseReport();
      phases[i].name = "typestate:" + specs[i].fsm.name();
      evt::Emit(evt::kCheckerDegraded, obs::EventLogInternString(runs[i].checker));
      {
        std::lock_guard<std::mutex> lock(live_mu_);
        live_checkers_[runs[i].checker] = "degraded: " + runs[i].degraded_reason;
      }
      GRAPPLE_LOG(ERROR) << "checker " << runs[i].checker
                         << " failed; continuing without it: " << e.what();
    }
  };
  size_t parallelism = options_.scheduling.checker_parallelism == 0
                           ? HardwareThreads()
                           : options_.scheduling.checker_parallelism;
  parallelism = std::min(parallelism, specs.size());
  if (parallelism <= 1) {
    for (size_t i = 0; i < specs.size(); ++i) {
      if (options_.robustness.isolate_checker_failures) {
        run_isolated(i, nullptr);
      } else {
        runs[i] = CheckOne(specs[i], nullptr, &phases[i]);
      }
    }
  } else {
    // Each concurrent engine leases an equal slice of the analysis-wide
    // budget up front (so the sum never exceeds it) and may borrow released
    // headroom as siblings finish.
    BudgetArbiter arbiter(options_.engine.memory_budget_bytes);
    uint64_t slice = std::max<uint64_t>(1, arbiter.total_bytes() / parallelism);
    // Scoped to the parallel section: the handle unregisters (and with it
    // any in-flight scrape completes) before the arbiter goes away.
    obs::Introspection::Handle arbiter_gauge = obs::Introspection::RegisterGaugeSource(
        "budget_arbiter_waiters",
        [&arbiter] { return static_cast<double>(arbiter.waiter_count()); });
    // Checker trees run as top-level foreground tasks on the session
    // runtime: exactly `parallelism` slot tasks, each pulling the next spec
    // from a shared cursor, so at most `parallelism` checkers (and budget
    // slices) are live at once no matter how many workers exist. The slots'
    // engines submit their join shards and I/O strands to the same runtime,
    // so a solve-bound checker's idle workers pick up a neighbor's I/O.
    std::atomic<size_t> next_spec{0};
    TaskGroup slots(runtime_.get());
    for (size_t slot = 0; slot < parallelism; ++slot) {
      slots.Submit(TaskLane::kForeground, /*affinity=*/0,
                   [&run_isolated, &arbiter, &next_spec, &specs, slice] {
                     size_t i;
                     while ((i = next_spec.fetch_add(1)) < specs.size()) {
                       BudgetLease lease = arbiter.Acquire(slice);
                       run_isolated(i, &lease);
                     }
                   });
    }
    slots.Wait();
    if (!options_.robustness.isolate_checker_failures) {
      for (const auto& run : runs) {
        if (run.degraded) {
          throw IoError("checker " + run.checker + " failed: " + run.degraded_reason);
        }
      }
    }
  }
  for (size_t i = 0; i < specs.size(); ++i) {
    result.checkers.push_back(std::move(runs[i]));
    result.report.phases.push_back(std::move(phases[i]));
  }

  result.total_seconds = total_timer.ElapsedSeconds() + frontend_seconds_;
  result.report.frontend_seconds = frontend_seconds_;
  result.report.total_seconds = result.total_seconds;
  result.report.total_reports = result.TotalReports();

  // GRAPPLE_METRICS=<path> dumps the machine-readable run report.
  std::string metrics_path = EnvString("GRAPPLE_METRICS");
  if (!metrics_path.empty()) {
    if (!obs::WriteTextFile(metrics_path, result.report.ToJson())) {
      GRAPPLE_LOG(WARNING) << "failed to write run report to " << metrics_path;
    }
  }
  // Persist the cost ledger after every Check() so the profile is readable
  // even if the process never tears the session down cleanly.
  if (obs::ProfilerRunning() && !obs::ProfilerDumpPath().empty()) {
    if (!obs::ProfilerWriteFile(obs::ProfilerDumpPath())) {
      GRAPPLE_LOG(WARNING) << "failed to write profile to " << obs::ProfilerDumpPath();
    }
  }
  return result;
}

}  // namespace grapple
