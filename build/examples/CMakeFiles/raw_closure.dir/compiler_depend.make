# Empty compiler generated dependencies file for raw_closure.
# This may be replaced when dependencies are built.
