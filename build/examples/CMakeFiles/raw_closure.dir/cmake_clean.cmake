file(REMOVE_RECURSE
  "CMakeFiles/raw_closure.dir/raw_closure.cpp.o"
  "CMakeFiles/raw_closure.dir/raw_closure.cpp.o.d"
  "raw_closure"
  "raw_closure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/raw_closure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
