# Empty dependencies file for socket_reconfigure.
# This may be replaced when dependencies are built.
