file(REMOVE_RECURSE
  "CMakeFiles/socket_reconfigure.dir/socket_reconfigure.cpp.o"
  "CMakeFiles/socket_reconfigure.dir/socket_reconfigure.cpp.o.d"
  "socket_reconfigure"
  "socket_reconfigure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/socket_reconfigure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
