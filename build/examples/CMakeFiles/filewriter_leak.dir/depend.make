# Empty dependencies file for filewriter_leak.
# This may be replaced when dependencies are built.
