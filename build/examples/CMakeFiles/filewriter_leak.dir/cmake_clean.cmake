file(REMOVE_RECURSE
  "CMakeFiles/filewriter_leak.dir/filewriter_leak.cpp.o"
  "CMakeFiles/filewriter_leak.dir/filewriter_leak.cpp.o.d"
  "filewriter_leak"
  "filewriter_leak.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/filewriter_leak.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
