# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(support_test "/root/repo/build/tests/support_test")
set_tests_properties(support_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;13;grapple_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(smt_test "/root/repo/build/tests/smt_test")
set_tests_properties(smt_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;14;grapple_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(ir_test "/root/repo/build/tests/ir_test")
set_tests_properties(ir_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;15;grapple_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cfg_test "/root/repo/build/tests/cfg_test")
set_tests_properties(cfg_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;16;grapple_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(symexec_test "/root/repo/build/tests/symexec_test")
set_tests_properties(symexec_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;17;grapple_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(pathenc_test "/root/repo/build/tests/pathenc_test")
set_tests_properties(pathenc_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;18;grapple_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(grammar_test "/root/repo/build/tests/grammar_test")
set_tests_properties(grammar_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;20;grapple_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(graph_test "/root/repo/build/tests/graph_test")
set_tests_properties(graph_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;21;grapple_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(analysis_test "/root/repo/build/tests/analysis_test")
set_tests_properties(analysis_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;23;grapple_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(checker_test "/root/repo/build/tests/checker_test")
set_tests_properties(checker_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;25;grapple_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(workload_test "/root/repo/build/tests/workload_test")
set_tests_properties(workload_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;27;grapple_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(core_test "/root/repo/build/tests/core_test")
set_tests_properties(core_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;28;grapple_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(e2e_test "/root/repo/build/tests/e2e_test")
set_tests_properties(e2e_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;29;grapple_test;/root/repo/tests/CMakeLists.txt;0;")
