file(REMOVE_RECURSE
  "CMakeFiles/symexec_test.dir/symexec/cfet_test.cc.o"
  "CMakeFiles/symexec_test.dir/symexec/cfet_test.cc.o.d"
  "CMakeFiles/symexec_test.dir/symexec/icfet_paper_example_test.cc.o"
  "CMakeFiles/symexec_test.dir/symexec/icfet_paper_example_test.cc.o.d"
  "symexec_test"
  "symexec_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/symexec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
