# Empty dependencies file for pathenc_test.
# This may be replaced when dependencies are built.
