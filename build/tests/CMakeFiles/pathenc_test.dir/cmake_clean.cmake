file(REMOVE_RECURSE
  "CMakeFiles/pathenc_test.dir/pathenc/decoder_test.cc.o"
  "CMakeFiles/pathenc_test.dir/pathenc/decoder_test.cc.o.d"
  "CMakeFiles/pathenc_test.dir/pathenc/merge_property_test.cc.o"
  "CMakeFiles/pathenc_test.dir/pathenc/merge_property_test.cc.o.d"
  "CMakeFiles/pathenc_test.dir/pathenc/path_encoding_test.cc.o"
  "CMakeFiles/pathenc_test.dir/pathenc/path_encoding_test.cc.o.d"
  "pathenc_test"
  "pathenc_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pathenc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
