file(REMOVE_RECURSE
  "CMakeFiles/e2e_test.dir/e2e/baseline_test.cc.o"
  "CMakeFiles/e2e_test.dir/e2e/baseline_test.cc.o.d"
  "CMakeFiles/e2e_test.dir/e2e/event_qualification_test.cc.o"
  "CMakeFiles/e2e_test.dir/e2e/event_qualification_test.cc.o.d"
  "CMakeFiles/e2e_test.dir/e2e/oracle_equivalence_test.cc.o"
  "CMakeFiles/e2e_test.dir/e2e/oracle_equivalence_test.cc.o.d"
  "CMakeFiles/e2e_test.dir/e2e/pattern_kinds_test.cc.o"
  "CMakeFiles/e2e_test.dir/e2e/pattern_kinds_test.cc.o.d"
  "CMakeFiles/e2e_test.dir/e2e/pipeline_test.cc.o"
  "CMakeFiles/e2e_test.dir/e2e/pipeline_test.cc.o.d"
  "CMakeFiles/e2e_test.dir/e2e/unroll_test.cc.o"
  "CMakeFiles/e2e_test.dir/e2e/unroll_test.cc.o.d"
  "CMakeFiles/e2e_test.dir/e2e/workload_test.cc.o"
  "CMakeFiles/e2e_test.dir/e2e/workload_test.cc.o.d"
  "e2e_test"
  "e2e_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e2e_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
