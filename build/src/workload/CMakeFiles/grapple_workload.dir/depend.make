# Empty dependencies file for grapple_workload.
# This may be replaced when dependencies are built.
