file(REMOVE_RECURSE
  "libgrapple_workload.a"
)
