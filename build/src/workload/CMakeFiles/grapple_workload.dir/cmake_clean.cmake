file(REMOVE_RECURSE
  "CMakeFiles/grapple_workload.dir/workload.cc.o"
  "CMakeFiles/grapple_workload.dir/workload.cc.o.d"
  "libgrapple_workload.a"
  "libgrapple_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grapple_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
