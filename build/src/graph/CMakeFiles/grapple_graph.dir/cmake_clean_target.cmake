file(REMOVE_RECURSE
  "libgrapple_graph.a"
)
