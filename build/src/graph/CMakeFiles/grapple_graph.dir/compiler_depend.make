# Empty compiler generated dependencies file for grapple_graph.
# This may be replaced when dependencies are built.
