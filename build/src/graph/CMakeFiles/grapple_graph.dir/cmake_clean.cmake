file(REMOVE_RECURSE
  "CMakeFiles/grapple_graph.dir/constraint_oracle.cc.o"
  "CMakeFiles/grapple_graph.dir/constraint_oracle.cc.o.d"
  "CMakeFiles/grapple_graph.dir/edge.cc.o"
  "CMakeFiles/grapple_graph.dir/edge.cc.o.d"
  "CMakeFiles/grapple_graph.dir/engine.cc.o"
  "CMakeFiles/grapple_graph.dir/engine.cc.o.d"
  "CMakeFiles/grapple_graph.dir/partition_store.cc.o"
  "CMakeFiles/grapple_graph.dir/partition_store.cc.o.d"
  "libgrapple_graph.a"
  "libgrapple_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grapple_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
