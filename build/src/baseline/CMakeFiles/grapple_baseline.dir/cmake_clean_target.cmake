file(REMOVE_RECURSE
  "libgrapple_baseline.a"
)
