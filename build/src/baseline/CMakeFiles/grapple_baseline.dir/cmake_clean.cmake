file(REMOVE_RECURSE
  "CMakeFiles/grapple_baseline.dir/explicit_oracle.cc.o"
  "CMakeFiles/grapple_baseline.dir/explicit_oracle.cc.o.d"
  "CMakeFiles/grapple_baseline.dir/traditional.cc.o"
  "CMakeFiles/grapple_baseline.dir/traditional.cc.o.d"
  "libgrapple_baseline.a"
  "libgrapple_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grapple_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
