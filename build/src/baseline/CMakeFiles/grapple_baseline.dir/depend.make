# Empty dependencies file for grapple_baseline.
# This may be replaced when dependencies are built.
