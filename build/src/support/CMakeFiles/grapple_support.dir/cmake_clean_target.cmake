file(REMOVE_RECURSE
  "libgrapple_support.a"
)
