
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/support/byte_io.cc" "src/support/CMakeFiles/grapple_support.dir/byte_io.cc.o" "gcc" "src/support/CMakeFiles/grapple_support.dir/byte_io.cc.o.d"
  "/root/repo/src/support/logging.cc" "src/support/CMakeFiles/grapple_support.dir/logging.cc.o" "gcc" "src/support/CMakeFiles/grapple_support.dir/logging.cc.o.d"
  "/root/repo/src/support/thread_pool.cc" "src/support/CMakeFiles/grapple_support.dir/thread_pool.cc.o" "gcc" "src/support/CMakeFiles/grapple_support.dir/thread_pool.cc.o.d"
  "/root/repo/src/support/timer.cc" "src/support/CMakeFiles/grapple_support.dir/timer.cc.o" "gcc" "src/support/CMakeFiles/grapple_support.dir/timer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
