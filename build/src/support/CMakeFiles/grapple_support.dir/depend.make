# Empty dependencies file for grapple_support.
# This may be replaced when dependencies are built.
