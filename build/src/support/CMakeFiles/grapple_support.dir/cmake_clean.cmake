file(REMOVE_RECURSE
  "CMakeFiles/grapple_support.dir/byte_io.cc.o"
  "CMakeFiles/grapple_support.dir/byte_io.cc.o.d"
  "CMakeFiles/grapple_support.dir/logging.cc.o"
  "CMakeFiles/grapple_support.dir/logging.cc.o.d"
  "CMakeFiles/grapple_support.dir/thread_pool.cc.o"
  "CMakeFiles/grapple_support.dir/thread_pool.cc.o.d"
  "CMakeFiles/grapple_support.dir/timer.cc.o"
  "CMakeFiles/grapple_support.dir/timer.cc.o.d"
  "libgrapple_support.a"
  "libgrapple_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grapple_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
