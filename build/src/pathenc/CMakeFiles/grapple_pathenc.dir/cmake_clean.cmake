file(REMOVE_RECURSE
  "CMakeFiles/grapple_pathenc.dir/constraint_decoder.cc.o"
  "CMakeFiles/grapple_pathenc.dir/constraint_decoder.cc.o.d"
  "CMakeFiles/grapple_pathenc.dir/path_encoding.cc.o"
  "CMakeFiles/grapple_pathenc.dir/path_encoding.cc.o.d"
  "libgrapple_pathenc.a"
  "libgrapple_pathenc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grapple_pathenc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
