# Empty dependencies file for grapple_pathenc.
# This may be replaced when dependencies are built.
