file(REMOVE_RECURSE
  "libgrapple_pathenc.a"
)
