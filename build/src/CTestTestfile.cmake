# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("smt")
subdirs("ir")
subdirs("cfg")
subdirs("symexec")
subdirs("pathenc")
subdirs("grammar")
subdirs("graph")
subdirs("analysis")
subdirs("checker")
subdirs("workload")
subdirs("baseline")
subdirs("core")
