# Empty dependencies file for grapple_cfg.
# This may be replaced when dependencies are built.
