file(REMOVE_RECURSE
  "CMakeFiles/grapple_cfg.dir/call_graph.cc.o"
  "CMakeFiles/grapple_cfg.dir/call_graph.cc.o.d"
  "CMakeFiles/grapple_cfg.dir/loop_unroll.cc.o"
  "CMakeFiles/grapple_cfg.dir/loop_unroll.cc.o.d"
  "libgrapple_cfg.a"
  "libgrapple_cfg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grapple_cfg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
