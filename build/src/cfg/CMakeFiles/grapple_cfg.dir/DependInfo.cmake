
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cfg/call_graph.cc" "src/cfg/CMakeFiles/grapple_cfg.dir/call_graph.cc.o" "gcc" "src/cfg/CMakeFiles/grapple_cfg.dir/call_graph.cc.o.d"
  "/root/repo/src/cfg/loop_unroll.cc" "src/cfg/CMakeFiles/grapple_cfg.dir/loop_unroll.cc.o" "gcc" "src/cfg/CMakeFiles/grapple_cfg.dir/loop_unroll.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/grapple_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/grapple_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
