file(REMOVE_RECURSE
  "libgrapple_cfg.a"
)
