
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/symexec/cfet.cc" "src/symexec/CMakeFiles/grapple_symexec.dir/cfet.cc.o" "gcc" "src/symexec/CMakeFiles/grapple_symexec.dir/cfet.cc.o.d"
  "/root/repo/src/symexec/cfet_builder.cc" "src/symexec/CMakeFiles/grapple_symexec.dir/cfet_builder.cc.o" "gcc" "src/symexec/CMakeFiles/grapple_symexec.dir/cfet_builder.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cfg/CMakeFiles/grapple_cfg.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/grapple_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/smt/CMakeFiles/grapple_smt.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/grapple_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
