file(REMOVE_RECURSE
  "CMakeFiles/grapple_symexec.dir/cfet.cc.o"
  "CMakeFiles/grapple_symexec.dir/cfet.cc.o.d"
  "CMakeFiles/grapple_symexec.dir/cfet_builder.cc.o"
  "CMakeFiles/grapple_symexec.dir/cfet_builder.cc.o.d"
  "libgrapple_symexec.a"
  "libgrapple_symexec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grapple_symexec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
