# Empty dependencies file for grapple_symexec.
# This may be replaced when dependencies are built.
