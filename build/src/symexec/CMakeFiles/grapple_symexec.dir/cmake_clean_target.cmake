file(REMOVE_RECURSE
  "libgrapple_symexec.a"
)
