# Empty dependencies file for grapple_ir.
# This may be replaced when dependencies are built.
