file(REMOVE_RECURSE
  "CMakeFiles/grapple_ir.dir/builder.cc.o"
  "CMakeFiles/grapple_ir.dir/builder.cc.o.d"
  "CMakeFiles/grapple_ir.dir/ir.cc.o"
  "CMakeFiles/grapple_ir.dir/ir.cc.o.d"
  "CMakeFiles/grapple_ir.dir/parser.cc.o"
  "CMakeFiles/grapple_ir.dir/parser.cc.o.d"
  "CMakeFiles/grapple_ir.dir/validate.cc.o"
  "CMakeFiles/grapple_ir.dir/validate.cc.o.d"
  "libgrapple_ir.a"
  "libgrapple_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grapple_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
