file(REMOVE_RECURSE
  "libgrapple_ir.a"
)
