file(REMOVE_RECURSE
  "CMakeFiles/grapple_fsm.dir/fsm.cc.o"
  "CMakeFiles/grapple_fsm.dir/fsm.cc.o.d"
  "CMakeFiles/grapple_fsm.dir/fsm_parser.cc.o"
  "CMakeFiles/grapple_fsm.dir/fsm_parser.cc.o.d"
  "libgrapple_fsm.a"
  "libgrapple_fsm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grapple_fsm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
