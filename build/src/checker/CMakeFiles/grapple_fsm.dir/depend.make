# Empty dependencies file for grapple_fsm.
# This may be replaced when dependencies are built.
