file(REMOVE_RECURSE
  "libgrapple_fsm.a"
)
