file(REMOVE_RECURSE
  "libgrapple_checker.a"
)
