# Empty compiler generated dependencies file for grapple_checker.
# This may be replaced when dependencies are built.
