
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/checker/builtin_checkers.cc" "src/checker/CMakeFiles/grapple_checker.dir/builtin_checkers.cc.o" "gcc" "src/checker/CMakeFiles/grapple_checker.dir/builtin_checkers.cc.o.d"
  "/root/repo/src/checker/checker.cc" "src/checker/CMakeFiles/grapple_checker.dir/checker.cc.o" "gcc" "src/checker/CMakeFiles/grapple_checker.dir/checker.cc.o.d"
  "/root/repo/src/checker/report_json.cc" "src/checker/CMakeFiles/grapple_checker.dir/report_json.cc.o" "gcc" "src/checker/CMakeFiles/grapple_checker.dir/report_json.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/grapple_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/checker/CMakeFiles/grapple_fsm.dir/DependInfo.cmake"
  "/root/repo/build/src/grammar/CMakeFiles/grapple_grammar.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/grapple_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/grapple_support.dir/DependInfo.cmake"
  "/root/repo/build/src/pathenc/CMakeFiles/grapple_pathenc.dir/DependInfo.cmake"
  "/root/repo/build/src/symexec/CMakeFiles/grapple_symexec.dir/DependInfo.cmake"
  "/root/repo/build/src/cfg/CMakeFiles/grapple_cfg.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/grapple_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/smt/CMakeFiles/grapple_smt.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
