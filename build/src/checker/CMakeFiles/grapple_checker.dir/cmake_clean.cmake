file(REMOVE_RECURSE
  "CMakeFiles/grapple_checker.dir/builtin_checkers.cc.o"
  "CMakeFiles/grapple_checker.dir/builtin_checkers.cc.o.d"
  "CMakeFiles/grapple_checker.dir/checker.cc.o"
  "CMakeFiles/grapple_checker.dir/checker.cc.o.d"
  "CMakeFiles/grapple_checker.dir/report_json.cc.o"
  "CMakeFiles/grapple_checker.dir/report_json.cc.o.d"
  "libgrapple_checker.a"
  "libgrapple_checker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grapple_checker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
