file(REMOVE_RECURSE
  "libgrapple_analysis.a"
)
