# Empty dependencies file for grapple_analysis.
# This may be replaced when dependencies are built.
