# Empty compiler generated dependencies file for grapple_analysis.
# This may be replaced when dependencies are built.
