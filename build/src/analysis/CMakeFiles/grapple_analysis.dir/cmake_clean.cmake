file(REMOVE_RECURSE
  "CMakeFiles/grapple_analysis.dir/alias_graph.cc.o"
  "CMakeFiles/grapple_analysis.dir/alias_graph.cc.o.d"
  "CMakeFiles/grapple_analysis.dir/alias_index.cc.o"
  "CMakeFiles/grapple_analysis.dir/alias_index.cc.o.d"
  "CMakeFiles/grapple_analysis.dir/alias_query.cc.o"
  "CMakeFiles/grapple_analysis.dir/alias_query.cc.o.d"
  "CMakeFiles/grapple_analysis.dir/typestate_graph.cc.o"
  "CMakeFiles/grapple_analysis.dir/typestate_graph.cc.o.d"
  "libgrapple_analysis.a"
  "libgrapple_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grapple_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
