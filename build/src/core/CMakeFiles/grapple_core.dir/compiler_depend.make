# Empty compiler generated dependencies file for grapple_core.
# This may be replaced when dependencies are built.
