file(REMOVE_RECURSE
  "CMakeFiles/grapple_core.dir/grapple.cc.o"
  "CMakeFiles/grapple_core.dir/grapple.cc.o.d"
  "libgrapple_core.a"
  "libgrapple_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grapple_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
