file(REMOVE_RECURSE
  "libgrapple_core.a"
)
