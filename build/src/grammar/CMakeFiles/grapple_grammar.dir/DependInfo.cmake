
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/grammar/grammar.cc" "src/grammar/CMakeFiles/grapple_grammar.dir/grammar.cc.o" "gcc" "src/grammar/CMakeFiles/grapple_grammar.dir/grammar.cc.o.d"
  "/root/repo/src/grammar/pointsto_grammar.cc" "src/grammar/CMakeFiles/grapple_grammar.dir/pointsto_grammar.cc.o" "gcc" "src/grammar/CMakeFiles/grapple_grammar.dir/pointsto_grammar.cc.o.d"
  "/root/repo/src/grammar/typestate_grammar.cc" "src/grammar/CMakeFiles/grapple_grammar.dir/typestate_grammar.cc.o" "gcc" "src/grammar/CMakeFiles/grapple_grammar.dir/typestate_grammar.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/checker/CMakeFiles/grapple_fsm.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/grapple_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
