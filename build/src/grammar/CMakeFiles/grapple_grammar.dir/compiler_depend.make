# Empty compiler generated dependencies file for grapple_grammar.
# This may be replaced when dependencies are built.
