file(REMOVE_RECURSE
  "libgrapple_grammar.a"
)
