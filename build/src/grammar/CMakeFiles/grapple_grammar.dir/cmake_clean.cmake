file(REMOVE_RECURSE
  "CMakeFiles/grapple_grammar.dir/grammar.cc.o"
  "CMakeFiles/grapple_grammar.dir/grammar.cc.o.d"
  "CMakeFiles/grapple_grammar.dir/pointsto_grammar.cc.o"
  "CMakeFiles/grapple_grammar.dir/pointsto_grammar.cc.o.d"
  "CMakeFiles/grapple_grammar.dir/typestate_grammar.cc.o"
  "CMakeFiles/grapple_grammar.dir/typestate_grammar.cc.o.d"
  "libgrapple_grammar.a"
  "libgrapple_grammar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grapple_grammar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
