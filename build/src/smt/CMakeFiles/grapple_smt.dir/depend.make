# Empty dependencies file for grapple_smt.
# This may be replaced when dependencies are built.
