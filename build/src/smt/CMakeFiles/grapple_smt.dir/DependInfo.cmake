
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/smt/constraint.cc" "src/smt/CMakeFiles/grapple_smt.dir/constraint.cc.o" "gcc" "src/smt/CMakeFiles/grapple_smt.dir/constraint.cc.o.d"
  "/root/repo/src/smt/linear_expr.cc" "src/smt/CMakeFiles/grapple_smt.dir/linear_expr.cc.o" "gcc" "src/smt/CMakeFiles/grapple_smt.dir/linear_expr.cc.o.d"
  "/root/repo/src/smt/solver.cc" "src/smt/CMakeFiles/grapple_smt.dir/solver.cc.o" "gcc" "src/smt/CMakeFiles/grapple_smt.dir/solver.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/grapple_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
