file(REMOVE_RECURSE
  "libgrapple_smt.a"
)
