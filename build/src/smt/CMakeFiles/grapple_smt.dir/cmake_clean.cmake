file(REMOVE_RECURSE
  "CMakeFiles/grapple_smt.dir/constraint.cc.o"
  "CMakeFiles/grapple_smt.dir/constraint.cc.o.d"
  "CMakeFiles/grapple_smt.dir/linear_expr.cc.o"
  "CMakeFiles/grapple_smt.dir/linear_expr.cc.o.d"
  "CMakeFiles/grapple_smt.dir/solver.cc.o"
  "CMakeFiles/grapple_smt.dir/solver.cc.o.d"
  "libgrapple_smt.a"
  "libgrapple_smt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grapple_smt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
