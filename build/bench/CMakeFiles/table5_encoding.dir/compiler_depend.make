# Empty compiler generated dependencies file for table5_encoding.
# This may be replaced when dependencies are built.
