file(REMOVE_RECURSE
  "CMakeFiles/table5_encoding.dir/table5_encoding.cpp.o"
  "CMakeFiles/table5_encoding.dir/table5_encoding.cpp.o.d"
  "table5_encoding"
  "table5_encoding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_encoding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
