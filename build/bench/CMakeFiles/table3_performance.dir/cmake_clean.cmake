file(REMOVE_RECURSE
  "CMakeFiles/table3_performance.dir/table3_performance.cpp.o"
  "CMakeFiles/table3_performance.dir/table3_performance.cpp.o.d"
  "table3_performance"
  "table3_performance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_performance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
