
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/table2_bugs.cpp" "bench/CMakeFiles/table2_bugs.dir/table2_bugs.cpp.o" "gcc" "bench/CMakeFiles/table2_bugs.dir/table2_bugs.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/grapple_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/grapple_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/grapple_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/checker/CMakeFiles/grapple_checker.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/grapple_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/grapple_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/grammar/CMakeFiles/grapple_grammar.dir/DependInfo.cmake"
  "/root/repo/build/src/pathenc/CMakeFiles/grapple_pathenc.dir/DependInfo.cmake"
  "/root/repo/build/src/symexec/CMakeFiles/grapple_symexec.dir/DependInfo.cmake"
  "/root/repo/build/src/cfg/CMakeFiles/grapple_cfg.dir/DependInfo.cmake"
  "/root/repo/build/src/smt/CMakeFiles/grapple_smt.dir/DependInfo.cmake"
  "/root/repo/build/src/checker/CMakeFiles/grapple_fsm.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/grapple_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/grapple_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
