# Empty compiler generated dependencies file for table1_subjects.
# This may be replaced when dependencies are built.
