file(REMOVE_RECURSE
  "CMakeFiles/table1_subjects.dir/table1_subjects.cpp.o"
  "CMakeFiles/table1_subjects.dir/table1_subjects.cpp.o.d"
  "table1_subjects"
  "table1_subjects.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_subjects.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
