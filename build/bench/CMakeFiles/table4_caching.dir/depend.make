# Empty dependencies file for table4_caching.
# This may be replaced when dependencies are built.
