file(REMOVE_RECURSE
  "CMakeFiles/table4_caching.dir/table4_caching.cpp.o"
  "CMakeFiles/table4_caching.dir/table4_caching.cpp.o.d"
  "table4_caching"
  "table4_caching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_caching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
