#!/usr/bin/env python3
"""CI perf-regression gate over BENCH_trajectory.json.

Compares the gauges of a fresh bench trajectory against a committed
baseline (bench/BENCH_baseline.json, schema v1) and fails when a watched
gauge regresses by more than the allowed tolerance. Only gauges named in
the baseline's "watch" list are gated — phase wall-times and byte counters
jitter too much at smoke scale to gate wholesale, so the baseline states
exactly which invariants it protects and in which direction.

Baseline schema (grapple.bench_baseline.v1):

    {
      "schema": "grapple.bench_baseline.v1",
      "scale": 0.1,
      "tolerance": 0.25,
      "watch": [
        {"key": "<bench>/<subject>/<phase>/gauge:<name>",
         "value": 2.9,
         "direction": "higher_is_better",   # or lower_is_better
         "min"?: 1.0,                        # optional hard floor
         "max"?: 0.0,                        # optional hard ceiling
         "min_scale"?: 1.0,                  # skip below this GRAPPLE_SCALE
         "tolerance"?: 0.5}                  # optional per-key override
      ]
    }

A watched key must exist in the trajectory; a missing key fails the gate
(a silently dropped metric is itself a regression). Keys use gauge names
because gauges carry the bench's derived results (speedups, ratios,
identity flags); raw counters stay diffable by hand via the trajectory
file.

Usage:
    check_bench.py --baseline bench/BENCH_baseline.json TRAJECTORY.json
    check_bench.py --write-baseline bench/BENCH_baseline.json TRAJECTORY.json
    check_bench.py --baseline ... --inject-regression 2.0 TRAJECTORY.json

--inject-regression multiplies every watched trajectory value by the given
factor in the regressing direction before checking; CI uses it to prove
the gate actually fails (see scripts/ci.sh bench mode). --write-baseline
emits a fresh baseline from the trajectory, keeping the watch list and
tolerances of an existing baseline when one is present at the target path.

Re-baselining: run scripts/bench.sh at the CI scale, then
    python3 scripts/check_bench.py --write-baseline bench/BENCH_baseline.json \
        <out-dir>/BENCH_trajectory.json
and commit the result together with the change that moved the numbers.
"""

import argparse
import json
import sys

BASELINE_SCHEMA = "grapple.bench_baseline.v1"
TRAJECTORY_SCHEMA = "grapple.bench_trajectory.v1"

# Watch list used when writing a baseline from scratch. Direction encodes
# what "worse" means for each gauge; floors/ceilings are hard acceptance
# criteria that hold regardless of the baseline value.
DEFAULT_WATCH = [
    {
        "key": "table3_performance/scheduler_speedup/scheduler/gauge:sched_speedup",
        "direction": "higher_is_better",
        "min": 1.0,
    },
    {
        "key": "table3_performance/scheduler_speedup/scheduler/gauge:sched_reports_identical",
        "direction": "higher_is_better",
        "min": 1.0,
    },
    {
        "key": "table3_performance/io_pipeline/io_pipeline/gauge:io_speedup",
        "direction": "higher_is_better",
        "min": 1.2,
        # Wall-clock ratio of millisecond-scale phases: allow wide jitter
        # around the baseline, the floor above is the real gate.
        "tolerance": 0.5,
    },
    {
        "key": "table3_performance/io_pipeline/io_pipeline/gauge:io_bytes_written_reduction",
        "direction": "higher_is_better",
        "min": 0.30,
    },
    {
        "key": "table3_performance/io_pipeline/io_pipeline/gauge:io_reports_identical",
        "direction": "higher_is_better",
        "min": 1.0,
    },
    {
        "key": "table3_performance/io_pipeline/io_pipeline/gauge:io_seconds_on",
        "direction": "lower_is_better",
        "tolerance": 1.0,
    },
    {
        # Share of store I/O executed on the task runtime's background
        # lanes instead of blocking the foreground path, measured on the
        # spilling 16KB-budget subject. The floor guards against the store
        # quietly falling back to synchronous I/O; the baseline-relative
        # check guards gradual erosion.
        "key": "table3_performance/task_runtime/task_runtime/gauge:tr_io_overlap",
        "direction": "higher_is_better",
        "min": 0.05,
        "tolerance": 0.5,
    },
    {
        # Share of pair-affine tasks that ran on their home worker with
        # locality-aware stealing enabled. A collapse here means thieves
        # stopped respecting locality hints (wasting the store's prefetch).
        "key": "table3_performance/task_runtime/task_runtime/gauge:tr_steal_efficiency",
        "direction": "higher_is_better",
        "min": 0.05,
        "tolerance": 0.75,
    },
    {
        # Unified scheduling may not change a single report byte vs the
        # pinned (legacy two-pool-equivalent) execution, at any scale.
        "key": "table3_performance/task_runtime/task_runtime/gauge:tr_reports_identical",
        "direction": "higher_is_better",
        "min": 1.0,
    },
    {
        # Acceptance criterion of the checkpoint/resume work: time inside
        # the checkpoint phase (quiesce + manifest encode + fsync + rename
        # + GC) must stay under 5% of the checkpointing run's wall time.
        # A full-scale property — smoke runs finish in tens of milliseconds
        # and are dominated by the fixed per-manifest fsync — so the entry
        # only applies from scale 1.0 up (the nightly sweep); see
        # ckpt_per_manifest_seconds for the smoke-scale guard.
        "key": "table3_performance/checkpointing/checkpointing/gauge:ckpt_phase_fraction",
        "direction": "lower_is_better",
        "max": 0.05,
        "min_scale": 1.0,
        "tolerance": 2.0,
    },
    {
        # Scale-independent smoke guard for the same subsystem: publishing
        # one manifest (quiesce + encode + fsync + rename + GC, amortized)
        # is a few milliseconds; an order-of-magnitude regression (e.g. an
        # encode that stopped being incremental) trips the ceiling.
        "key": "table3_performance/checkpointing/checkpointing/gauge:ckpt_per_manifest_seconds",
        "direction": "lower_is_better",
        "max": 0.05,
        "tolerance": 2.0,
    },
    {
        "key": "table3_performance/checkpointing/checkpointing/gauge:ckpt_reports_identical",
        "direction": "higher_is_better",
        "min": 1.0,
    },
    {
        # A checkpointing run must actually publish manifests (at least the
        # final fixpoint manifest per engine) or the overhead gate above is
        # gating nothing.
        "key": "table3_performance/checkpointing/checkpointing/gauge:ckpt_manifests_written",
        "direction": "higher_is_better",
        "min": 1.0,
        "tolerance": 1.0,
    },
    {
        # Acceptance criterion of the observability work: flight recorder +
        # metrics sampler together cost at most 2% wall time. A full-scale
        # property — smoke runs are dominated by scheduler jitter — so the
        # ceiling applies from scale 1.0 up (the nightly sweep). The gauge
        # is clamped at zero (negative A/B deltas are jitter).
        "key": "table3_performance/obs_overhead/observability/gauge:obs_overhead",
        "direction": "lower_is_better",
        "max": 0.02,
        "min_scale": 1.0,
        "tolerance": 2.0,
    },
    {
        # Reports must stay byte-identical with the recorder on, at any
        # scale.
        "key": "table3_performance/obs_overhead/observability/gauge:obs_reports_identical",
        "direction": "higher_is_better",
        "min": 1.0,
    },
    {
        # Acceptance criterion of the sampling profiler: SIGPROF sampling at
        # the default 97 Hz plus ring harvesting costs at most 2% wall time.
        # Like obs_overhead, a full-scale property (smoke runs are scheduler
        # jitter), clamped at zero.
        "key": "table3_performance/prof_overhead/profiler/gauge:prof_overhead",
        "direction": "lower_is_better",
        "max": 0.02,
        "min_scale": 1.0,
        "tolerance": 2.0,
    },
    {
        # Reports must stay byte-identical with profiling on, at any scale.
        "key": "table3_performance/prof_overhead/profiler/gauge:prof_reports_identical",
        "direction": "higher_is_better",
        "min": 1.0,
    },
    {
        # Warm throughput of the analysis service's two-tenant burst
        # (bench/service_bench.cpp). Wall-clock over loopback HTTP, so the
        # tolerance is wide; the floor catches the service falling back to
        # cold sessions (a warm check is >10x a cold one on any subject).
        "key": "service_bench/zookeeper/service/gauge:svc_checks_per_sec",
        "direction": "higher_is_better",
        "min": 1.0,
        "tolerance": 0.75,
    },
    {
        # Warm tail latency of the same burst. Baseline-relative only
        # (allow 2x jitter): the interesting regressions are order-of-
        # magnitude — a lost session cache or serialized admission.
        "key": "service_bench/zookeeper/service/gauge:svc_p99_ms",
        "direction": "lower_is_better",
        "tolerance": 1.0,
    },
    {
        # Share of /check requests served from a resident session during
        # the bench (2 colds + 24 warms => ~0.92). A collapse means the
        # cache is thrashing or fingerprinting broke.
        "key": "service_bench/zookeeper/service/gauge:svc_warm_hit_rate",
        "direction": "higher_is_better",
        "min": 0.5,
        "tolerance": 0.5,
    },
    {
        # Every service response body — cold, warm, either tenant — must be
        # byte-identical to the one-shot analyze_file --json aggregation,
        # at any scale.
        "key": "service_bench/zookeeper/service/gauge:svc_warm_identical",
        "direction": "higher_is_better",
        "min": 1.0,
    },
]


def load_json(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        sys.exit(f"check_bench: cannot read {path}: {err}")


def trajectory_gauges(trajectory):
    """Flattens a trajectory into {key: value} with keys
    <bench>/<subject>/<phase>/gauge:<name>."""
    if trajectory.get("schema") != TRAJECTORY_SCHEMA:
        sys.exit(
            f"check_bench: unexpected trajectory schema "
            f"{trajectory.get('schema')!r} (want {TRAJECTORY_SCHEMA!r})"
        )
    flat = {}
    for bench in trajectory.get("benches", []):
        bench_name = bench.get("bench", "?")
        for subject in bench.get("subjects", []):
            subject_name = subject.get("subject", "?")
            for phase in subject.get("phases", []):
                phase_name = phase.get("name", "?")
                gauges = phase.get("metrics", {}).get("gauges", {})
                for name, value in gauges.items():
                    key = f"{bench_name}/{subject_name}/{phase_name}/gauge:{name}"
                    flat[key] = float(value)
    return flat


def check(baseline, gauges, inject=None, scale=None, only=None):
    if baseline.get("schema") != BASELINE_SCHEMA:
        sys.exit(
            f"check_bench: unexpected baseline schema "
            f"{baseline.get('schema')!r} (want {BASELINE_SCHEMA!r})"
        )
    default_tolerance = float(baseline.get("tolerance", 0.25))
    failures = []
    checked = 0
    for watch in baseline.get("watch", []):
        key = watch["key"]
        direction = watch.get("direction", "higher_is_better")
        tolerance = float(watch.get("tolerance", default_tolerance))
        if only is not None and only not in key:
            continue
        # Entries can declare the smallest GRAPPLE_SCALE at which they are
        # meaningful (e.g. wall-time fractions that fixed per-run costs
        # dominate at smoke scale); below it they are skipped, not failed.
        if scale is not None and scale < float(watch.get("min_scale", 0)):
            continue
        if key not in gauges:
            failures.append(f"{key}: missing from trajectory (dropped metric)")
            continue
        value = gauges[key]
        if inject is not None:
            value = value / inject if direction == "higher_is_better" else value * inject
        checked += 1
        base = watch.get("value")
        if base is not None:
            base = float(base)
            if direction == "higher_is_better":
                limit = base * (1.0 - tolerance)
                ok = value >= limit
                relation = ">="
            else:
                limit = base * (1.0 + tolerance)
                ok = value <= limit
                relation = "<="
            if not ok:
                failures.append(
                    f"{key}: {value:.4g} violates {relation} {limit:.4g} "
                    f"(baseline {base:.4g}, tolerance {tolerance:.0%})"
                )
        if "min" in watch and value < float(watch["min"]):
            failures.append(f"{key}: {value:.4g} below hard floor {float(watch['min']):.4g}")
        if "max" in watch and value > float(watch["max"]):
            failures.append(f"{key}: {value:.4g} above hard ceiling {float(watch['max']):.4g}")
    return checked, failures


def write_baseline(path, trajectory, gauges):
    # Keep the curated watch list (and its directions/floors/tolerances)
    # when re-baselining; only the recorded values move.
    watch = DEFAULT_WATCH
    try:
        with open(path, "r", encoding="utf-8") as f:
            existing = json.load(f)
        if existing.get("schema") == BASELINE_SCHEMA and existing.get("watch"):
            watch = existing["watch"]
    except (OSError, json.JSONDecodeError):
        pass
    out_watch = []
    for entry in watch:
        entry = dict(entry)
        key = entry["key"]
        if key not in gauges:
            sys.exit(f"check_bench: watched key {key} absent from trajectory; not baselining")
        entry["value"] = round(gauges[key], 6)
        out_watch.append(entry)
    baseline = {
        "schema": BASELINE_SCHEMA,
        "git_sha": trajectory.get("git_sha", "unknown"),
        "scale": trajectory.get("scale", 1),
        "tolerance": 0.25,
        "watch": out_watch,
    }
    with open(path, "w", encoding="utf-8") as f:
        json.dump(baseline, f, indent=2)
        f.write("\n")
    print(f"check_bench: wrote baseline {path} ({len(out_watch)} watched gauges)")


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("trajectory", help="BENCH_trajectory.json to check")
    parser.add_argument("--baseline", help="baseline JSON to compare against")
    parser.add_argument(
        "--write-baseline",
        metavar="PATH",
        help="write a baseline from the trajectory instead of checking",
    )
    parser.add_argument(
        "--inject-regression",
        type=float,
        metavar="FACTOR",
        help="self-test: degrade every watched value by FACTOR before checking",
    )
    parser.add_argument(
        "--only",
        metavar="SUBSTR",
        help="check only watch entries whose key contains SUBSTR "
        "(e.g. 'checkpointing' for the nightly full-scale gate)",
    )
    args = parser.parse_args()

    trajectory = load_json(args.trajectory)
    gauges = trajectory_gauges(trajectory)

    if args.write_baseline:
        write_baseline(args.write_baseline, trajectory, gauges)
        return

    if not args.baseline:
        parser.error("--baseline or --write-baseline is required")
    baseline = load_json(args.baseline)
    scale = trajectory.get("scale")
    checked, failures = check(
        baseline,
        gauges,
        inject=args.inject_regression,
        scale=float(scale) if scale is not None else None,
        only=args.only,
    )
    if failures:
        print(f"check_bench: FAIL ({len(failures)} of {checked + len(failures)} checks):")
        for failure in failures:
            print(f"  - {failure}")
        sys.exit(1)
    print(f"check_bench: OK ({checked} watched gauges within tolerance)")


if __name__ == "__main__":
    main()
