#!/usr/bin/env bash
# CI entry point: configure, build, and test — plain Release plus an
# ASan/UBSan pass. Usage:
#   scripts/ci.sh            # release + sanitize passes
#   scripts/ci.sh release    # plain build + ctest only
#   scripts/ci.sh sanitize   # ASan/UBSan build + ctest only
#   scripts/ci.sh tsan       # ThreadSanitizer build; full ctest, then the
#                            # concurrent-scheduler pipeline on a generated
#                            # workload under GRAPPLE_CHECKER_PARALLELISM=4
#   scripts/ci.sh bench      # smoke-scale bench sweep + trajectory report
#                            # plus a sample witness report (bench-reports/)
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
jobs="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"
mode="${1:-all}"

# Builds with make's directory-change chatter filtered out. The filter runs
# in a compound command whose `|| true` only absolves grep's "no lines
# matched" exit — under pipefail the pipeline still carries the *build's*
# exit status, so a compile error fails the script (a bare
# `... | grep ... || true` would swallow it).
build_filtered() {
  local build_dir="$1"
  cmake --build "${build_dir}" -j "${jobs}" -- --no-print-directory 2>&1 \
    | { grep -Ev '^(make|gmake)\[' || true; }
}

run_pass() {
  local name="$1"
  shift
  local build_dir="${repo_root}/build-ci-${name}"
  echo "==> [${name}] configure"
  cmake -S "${repo_root}" -B "${build_dir}" "$@" > /dev/null
  echo "==> [${name}] build"
  build_filtered "${build_dir}"
  echo "==> [${name}] test"
  ctest --test-dir "${build_dir}" --output-on-failure -j "${jobs}"
}

# Smoke-scale bench sweep: every bench binary at a tiny GRAPPLE_SCALE, the
# aggregated BENCH_trajectory.json gated against the committed baseline,
# and one decoded-witness JSON report from the example front door — the
# artifacts CI uploads.
run_bench_smoke() {
  local build_dir="${repo_root}/build-ci-release"
  local out_dir="${build_dir}/bench-reports"
  echo "==> [bench] configure + build"
  cmake -S "${repo_root}" -B "${build_dir}" -DCMAKE_BUILD_TYPE=Release > /dev/null
  build_filtered "${build_dir}"
  echo "==> [bench] smoke sweep (GRAPPLE_SCALE=${GRAPPLE_SCALE:-0.1})"
  GRAPPLE_SCALE="${GRAPPLE_SCALE:-0.1}" "${repo_root}/scripts/bench.sh" "${build_dir}" "${out_dir}"
  echo "==> [bench] perf-regression gate"
  python3 "${repo_root}/scripts/check_bench.py" \
    --baseline "${repo_root}/bench/BENCH_baseline.json" \
    "${out_dir}/BENCH_trajectory.json"
  # The gate must actually gate: an injected 2x regression has to fail.
  if python3 "${repo_root}/scripts/check_bench.py" \
      --baseline "${repo_root}/bench/BENCH_baseline.json" \
      --inject-regression 2.0 \
      "${out_dir}/BENCH_trajectory.json" > /dev/null 2>&1; then
    echo "check_bench self-test FAILED: injected regression passed the gate" >&2
    exit 1
  fi
  echo "==> [bench] gate self-test ok (injected regression rejected)"
  echo "==> [bench] sample witness report"
  GRAPPLE_WITNESS=bugs "${build_dir}/examples/analyze_file" \
    "${repo_root}/examples/testdata/leaky.grap" --json \
    > "${out_dir}/sample_witness_report.json" || true
  test -s "${out_dir}/sample_witness_report.json"
  grep -q '"witness"' "${out_dir}/sample_witness_report.json"
  echo "==> [bench] reports in ${out_dir}"
}

# ThreadSanitizer pass: the whole suite runs under TSan (the scheduler,
# arbiter, and engine tests all spin up real thread contention), then the
# parallel pipeline is exercised end-to-end on a generated workload via the
# table3 scheduler section, which runs 4 checkers concurrently.
run_tsan() {
  local build_dir="${repo_root}/build-ci-tsan"
  run_pass tsan -DCMAKE_BUILD_TYPE=RelWithDebInfo -DGRAPPLE_SANITIZE=thread
  echo "==> [tsan] concurrent scheduler pipeline (parallelism=4)"
  mkdir -p "${build_dir}/bench-reports"
  GRAPPLE_SCALE="${GRAPPLE_SCALE:-0.1}" GRAPPLE_CHECKER_PARALLELISM=4 \
    GRAPPLE_REPORT_DIR="${build_dir}/bench-reports" \
    "${build_dir}/bench/table3_performance"
}

case "${mode}" in
  release)
    run_pass release -DCMAKE_BUILD_TYPE=Release
    ;;
  bench)
    run_bench_smoke
    ;;
  sanitize)
    run_pass sanitize -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DGRAPPLE_SANITIZE=address,undefined
    ;;
  tsan)
    run_tsan
    ;;
  all)
    run_pass release -DCMAKE_BUILD_TYPE=Release
    run_pass sanitize -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DGRAPPLE_SANITIZE=address,undefined
    ;;
  *)
    echo "usage: scripts/ci.sh [release|sanitize|tsan|bench|all]" >&2
    exit 2
    ;;
esac

echo "==> CI passed (${mode})"
