#!/usr/bin/env bash
# CI entry point: configure, build, and test — plain Release plus an
# ASan/UBSan pass. Usage:
#   scripts/ci.sh            # both passes
#   scripts/ci.sh release    # plain build + ctest only
#   scripts/ci.sh sanitize   # ASan/UBSan build + ctest only
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
jobs="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"
mode="${1:-all}"

run_pass() {
  local name="$1"
  shift
  local build_dir="${repo_root}/build-ci-${name}"
  echo "==> [${name}] configure"
  cmake -S "${repo_root}" -B "${build_dir}" "$@" > /dev/null
  echo "==> [${name}] build"
  cmake --build "${build_dir}" -j "${jobs}" -- --no-print-directory 2>&1 | grep -Ev '^(make|gmake)\[' || true
  echo "==> [${name}] test"
  ctest --test-dir "${build_dir}" --output-on-failure -j "${jobs}"
}

case "${mode}" in
  release)
    run_pass release -DCMAKE_BUILD_TYPE=Release
    ;;
  sanitize)
    run_pass sanitize -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DGRAPPLE_SANITIZE=address,undefined
    ;;
  all)
    run_pass release -DCMAKE_BUILD_TYPE=Release
    run_pass sanitize -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DGRAPPLE_SANITIZE=address,undefined
    ;;
  *)
    echo "usage: scripts/ci.sh [release|sanitize|all]" >&2
    exit 2
    ;;
esac

echo "==> CI passed (${mode})"
