#!/usr/bin/env bash
# CI entry point: configure, build, and test — plain Release plus an
# ASan/UBSan pass. Usage:
#   scripts/ci.sh            # release + sanitize passes
#   scripts/ci.sh release    # plain build + ctest only
#   scripts/ci.sh sanitize   # ASan/UBSan build + ctest only
#   scripts/ci.sh tsan       # ThreadSanitizer build; full ctest, then the
#                            # concurrent-scheduler pipeline on a generated
#                            # workload under GRAPPLE_CHECKER_PARALLELISM=4
#   scripts/ci.sh bench      # smoke-scale bench sweep + trajectory report
#                            # plus a sample witness report (bench-reports/)
#   scripts/ci.sh recovery   # crash/resume smoke: kill the example pipeline
#                            # at a checkpoint crash point (simulated kill
#                            # -9), resume it, and require byte-identical
#                            # report JSON; plus the full in-tree crash
#                            # sweep (recovery_test)
#   scripts/ci.sh soak       # recovery soak: repeated kill -9 at every
#                            # registered crash point and escalating
#                            # ordinals against the example pipeline, each
#                            # resumed and byte-compared (nightly)
#   scripts/ci.sh obs        # live-introspection smoke: a scale-0.3 bench
#                            # run with GRAPPLE_STATUSZ on, all five
#                            # endpoints (/healthz /statusz /metricsz
#                            # /tracez /profilez) scraped and validated
#                            # mid-run
#   scripts/ci.sh profile    # sampling-profiler smoke: a profiled run of
#                            # the example pipeline (GRAPPLE_PROFILE=on),
#                            # profile.bin decoded via grapple-prof (table
#                            # + --json round-trip) and analyze_file
#                            # --profile (collapsed stacks), and the report
#                            # byte-compared against an unprofiled run
#   scripts/ci.sh service    # grappled daemon smoke: ephemeral port, a
#                            # two-tenant burst through grapple-client with
#                            # /statusz + /metricsz scraped mid-run, every
#                            # response byte-compared against a cold
#                            # one-shot analyze_file --json run, then a
#                            # SIGTERM shutdown that must exit 0 and leave
#                            # no work dirs behind
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
jobs="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"
mode="${1:-all}"

# Builds with make's directory-change chatter filtered out. The filter runs
# in a compound command whose `|| true` only absolves grep's "no lines
# matched" exit — under pipefail the pipeline still carries the *build's*
# exit status, so a compile error fails the script (a bare
# `... | grep ... || true` would swallow it).
build_filtered() {
  local build_dir="$1"
  cmake --build "${build_dir}" -j "${jobs}" -- --no-print-directory 2>&1 \
    | { grep -Ev '^(make|gmake)\[' || true; }
}

run_pass() {
  local name="$1"
  shift
  local build_dir="${repo_root}/build-ci-${name}"
  echo "==> [${name}] configure"
  cmake -S "${repo_root}" -B "${build_dir}" "$@" > /dev/null
  echo "==> [${name}] build"
  build_filtered "${build_dir}"
  echo "==> [${name}] test"
  ctest --test-dir "${build_dir}" --output-on-failure -j "${jobs}"
}

# Smoke-scale bench sweep: every bench binary at a tiny GRAPPLE_SCALE, the
# aggregated BENCH_trajectory.json gated against the committed baseline,
# and one decoded-witness JSON report from the example front door — the
# artifacts CI uploads.
run_bench_smoke() {
  local build_dir="${repo_root}/build-ci-release"
  local out_dir="${build_dir}/bench-reports"
  echo "==> [bench] configure + build"
  cmake -S "${repo_root}" -B "${build_dir}" -DCMAKE_BUILD_TYPE=Release > /dev/null
  build_filtered "${build_dir}"
  echo "==> [bench] smoke sweep (GRAPPLE_SCALE=${GRAPPLE_SCALE:-0.1})"
  GRAPPLE_SCALE="${GRAPPLE_SCALE:-0.1}" "${repo_root}/scripts/bench.sh" "${build_dir}" "${out_dir}"
  echo "==> [bench] perf-regression gate"
  python3 "${repo_root}/scripts/check_bench.py" \
    --baseline "${repo_root}/bench/BENCH_baseline.json" \
    "${out_dir}/BENCH_trajectory.json"
  # The gate must actually gate: an injected 2x regression has to fail.
  if python3 "${repo_root}/scripts/check_bench.py" \
      --baseline "${repo_root}/bench/BENCH_baseline.json" \
      --inject-regression 2.0 \
      "${out_dir}/BENCH_trajectory.json" > /dev/null 2>&1; then
    echo "check_bench self-test FAILED: injected regression passed the gate" >&2
    exit 1
  fi
  echo "==> [bench] gate self-test ok (injected regression rejected)"
  echo "==> [bench] sample witness report"
  GRAPPLE_WITNESS=bugs "${build_dir}/examples/analyze_file" \
    "${repo_root}/examples/testdata/leaky.grap" --json \
    > "${out_dir}/sample_witness_report.json" || true
  test -s "${out_dir}/sample_witness_report.json"
  grep -q '"witness"' "${out_dir}/sample_witness_report.json"
  echo "==> [bench] reports in ${out_dir}"
}

# One run of the example front door with checkpointing at every pair.
# Args: expected exit code, GRAPPLE_FAULTS spec ('' = none), output JSON
# path, work dir. Reads ${build_dir} from the caller's scope. Echoes the
# actual exit code on stdout so callers can branch on "crashed vs
# completed"; fails when the code matches neither expectation.
recovery_run() {
  local expect="$1" faults="$2" out="$3" work="$4" alt_expect="${5:-}"
  local status=0
  GRAPPLE_FAULTS="${faults}" GRAPPLE_CHECKPOINT_INTERVAL=1 \
    GRAPPLE_CHECKPOINT_SPACING=0 GRAPPLE_WITNESS=bugs \
    "${build_dir}/examples/analyze_file" \
    "${repo_root}/examples/testdata/leaky.grap" --json --work-dir "${work}" \
    > "${out}" 2> /dev/null || status=$?
  if [[ "${status}" -ne "${expect}" && "${status}" != "${alt_expect}" ]]; then
    echo "recovery: expected exit ${expect}${alt_expect:+ or ${alt_expect}}," \
      "got ${status} (faults='${faults}')" >&2
    return 1
  fi
  echo "${status}"
}

# Crash/resume smoke: the in-tree sweep (fork-based recovery_test +
# checkpoint/corruption suites), then the same acceptance criterion
# end-to-end through the CLI: a run killed by a simulated kill -9 right
# after publishing a manifest, resumed with the same arguments, must emit
# byte-identical report JSON (witnesses included).
run_recovery() {
  local build_dir="${repo_root}/build-ci-release"
  echo "==> [recovery] configure + build"
  cmake -S "${repo_root}" -B "${build_dir}" -DCMAKE_BUILD_TYPE=Release > /dev/null
  build_filtered "${build_dir}"
  echo "==> [recovery] in-tree crash sweep and corruption suites"
  ctest --test-dir "${build_dir}" --output-on-failure \
    -R '^(recovery_test|checkpoint_test|partition_corruption_test)$'
  local scratch="${build_dir}/recovery-smoke"
  rm -rf "${scratch}"
  mkdir -p "${scratch}"
  echo "==> [recovery] reference run (uninterrupted)"
  recovery_run 1 "" "${scratch}/ref.json" "${scratch}/work-ref" > /dev/null
  grep -q '"witness"' "${scratch}/ref.json"
  echo "==> [recovery] kill -9 at ckpt_published, then resume"
  recovery_run 137 "crash@ckpt_published#1" "${scratch}/crash.json" \
    "${scratch}/work-crash" > /dev/null
  recovery_run 1 "" "${scratch}/resumed.json" "${scratch}/work-crash" > /dev/null
  cmp "${scratch}/ref.json" "${scratch}/resumed.json"
  echo "==> [recovery] resumed report byte-identical to the uninterrupted run"
}

# Recovery soak (nightly): kill -9 at every registered crash point, at
# escalating ordinals per round, resume each victim and byte-compare; one
# double-kill (a crash during the resume itself) closes each round. A
# crash clause whose point fires fewer than <ordinal> times lets the run
# complete — then its own output must already match the reference.
run_soak() {
  local build_dir="${repo_root}/build-ci-release"
  echo "==> [soak] configure + build"
  cmake -S "${repo_root}" -B "${build_dir}" -DCMAKE_BUILD_TYPE=Release > /dev/null
  build_filtered "${build_dir}"
  local scratch="${build_dir}/recovery-soak"
  rm -rf "${scratch}"
  mkdir -p "${scratch}"
  recovery_run 1 "" "${scratch}/ref.json" "${scratch}/work-ref" > /dev/null
  # Keep in sync with fault::AllCrashPoints() (fault_injection.cc); the
  # in-tree sweep already fails if a point is added without coverage.
  local points=(finalize_done run_pair_done ckpt_begin ckpt_temp_written
    ckpt_published ckpt_gc_done run_complete)
  local rounds="${GRAPPLE_SOAK_ROUNDS:-5}"
  local total=0 crashed=0
  for round in $(seq 1 "${rounds}"); do
    local ordinal=$((2 * round - 1))
    for point in "${points[@]}"; do
      local work="${scratch}/work-${point}-${round}"
      local out="${scratch}/out-${point}-${round}.json"
      local code
      code="$(recovery_run 137 "crash@${point}#${ordinal}" "${out}" "${work}" 1)"
      total=$((total + 1))
      if [[ "${code}" -eq 137 ]]; then
        crashed=$((crashed + 1))
        recovery_run 1 "" "${out}" "${work}" > /dev/null
      fi
      cmp "${scratch}/ref.json" "${out}" || {
        echo "soak: divergent report after crash@${point}#${ordinal}" >&2
        return 1
      }
    done
    # Double kill: die during the resume of a crashed run, then finish.
    local work="${scratch}/work-double-${round}"
    recovery_run 137 "crash@ckpt_published#${ordinal}" /dev/null "${work}" > /dev/null
    recovery_run 137 "crash@run_pair_done#1" /dev/null "${work}" 1 > /dev/null
    recovery_run 1 "" "${scratch}/double-${round}.json" "${work}" > /dev/null
    cmp "${scratch}/ref.json" "${scratch}/double-${round}.json"
  done
  echo "==> [soak] ${total} kills attempted, ${crashed} mid-run crashes," \
    "every resume byte-identical"
}

# One HTTP GET against the statusz listener; body on stdout, nonzero exit
# when the listener is down or the response is not 200. python3 stands in
# for curl so the smoke has no dependencies beyond what check_bench needs.
obs_get() {
  python3 - "$1" <<'PY'
import sys
import urllib.request

try:
    with urllib.request.urlopen(sys.argv[1], timeout=2) as response:
        if response.status != 200:
            sys.exit(1)
        sys.stdout.buffer.write(response.read())
except Exception:
    sys.exit(1)
PY
}

# Live-introspection smoke: run the bench at scale 0.3 with GRAPPLE_STATUSZ
# set and scrape all five endpoints over real HTTP *while it runs*, then
# validate every payload. The listener is owned by the analysis session of
# the moment (it stops between sessions), so each scrape round retries
# until a session is up; the round must land before the bench exits.
run_obs_smoke() {
  local build_dir="${repo_root}/build-ci-release"
  echo "==> [obs] configure + build"
  cmake -S "${repo_root}" -B "${build_dir}" -DCMAKE_BUILD_TYPE=Release > /dev/null
  build_filtered "${build_dir}"
  local port="${GRAPPLE_STATUSZ_PORT:-8931}"
  local out_dir="${build_dir}/obs-smoke"
  rm -rf "${out_dir}"
  mkdir -p "${out_dir}"
  echo "==> [obs] scale-0.3 bench run with statusz on 127.0.0.1:${port}"
  GRAPPLE_SCALE=0.3 GRAPPLE_STATUSZ="${port}" GRAPPLE_SAMPLE_INTERVAL_MS=25 \
    GRAPPLE_REPORT_DIR="${out_dir}" \
    "${build_dir}/bench/table3_performance" > "${out_dir}/bench.log" 2>&1 &
  local bench_pid=$!
  local base="http://127.0.0.1:${port}"
  local scraped=0
  for _ in $(seq 1 600); do
    if ! kill -0 "${bench_pid}" 2> /dev/null; then
      break
    fi
    if obs_get "${base}/healthz" > "${out_dir}/healthz.txt" \
        && obs_get "${base}/statusz" > "${out_dir}/statusz.json" \
        && obs_get "${base}/metricsz" > "${out_dir}/metricsz.txt" \
        && obs_get "${base}/tracez" > "${out_dir}/tracez.json" \
        && obs_get "${base}/profilez" > "${out_dir}/profilez.json"; then
      scraped=1
      break
    fi
    sleep 0.1
  done
  wait "${bench_pid}" || {
    echo "obs: bench run failed (see ${out_dir}/bench.log)" >&2
    return 1
  }
  if [[ "${scraped}" -ne 1 ]]; then
    echo "obs: never reached all five endpoints while the bench ran" >&2
    return 1
  fi
  grep -qx 'ok' "${out_dir}/healthz.txt"
  python3 -m json.tool "${out_dir}/statusz.json" > /dev/null
  python3 -m json.tool "${out_dir}/tracez.json" > /dev/null
  python3 -m json.tool "${out_dir}/profilez.json" > /dev/null
  grep -q '^# TYPE grapple_' "${out_dir}/metricsz.txt"
  grep -q '^# HELP grapple_' "${out_dir}/metricsz.txt"
  grep -q '^grapple_' "${out_dir}/metricsz.txt"
  echo "==> [obs] all five endpoints scraped and validated mid-run"
}

# Sampling-profiler smoke: one profiled run of the example pipeline, then
# every consumer of profile.bin exercised — the grapple-prof table and
# --json modes (the JSON must parse), analyze_file --profile (collapsed
# stacks with at least one attributed frame), and finally the acceptance
# criterion that profiling never changes results: the report JSON from the
# profiled run must be byte-identical to an unprofiled one.
run_profile_smoke() {
  local build_dir="${repo_root}/build-ci-release"
  echo "==> [profile] configure + build"
  cmake -S "${repo_root}" -B "${build_dir}" -DCMAKE_BUILD_TYPE=Release > /dev/null
  build_filtered "${build_dir}"
  local out_dir="${build_dir}/profile-smoke"
  rm -rf "${out_dir}"
  mkdir -p "${out_dir}"
  echo "==> [profile] unprofiled reference run"
  GRAPPLE_WITNESS=bugs "${build_dir}/examples/analyze_file" \
    "${repo_root}/examples/testdata/leaky.grap" --json \
    --work-dir "${out_dir}/work-off" > "${out_dir}/ref.json" || true
  test -s "${out_dir}/ref.json"
  echo "==> [profile] profiled run (GRAPPLE_PROFILE=on)"
  GRAPPLE_PROFILE=on GRAPPLE_PROFILE_HZ=500 GRAPPLE_WITNESS=bugs \
    "${build_dir}/examples/analyze_file" \
    "${repo_root}/examples/testdata/leaky.grap" --json \
    --work-dir "${out_dir}/work-on" > "${out_dir}/profiled.json" || true
  test -s "${out_dir}/work-on/profile.bin"
  echo "==> [profile] report byte-identity (profiled vs unprofiled)"
  cmp "${out_dir}/ref.json" "${out_dir}/profiled.json"
  echo "==> [profile] grapple-prof table + JSON round-trip"
  "${build_dir}/tools/grapple-prof" "${out_dir}/work-on/profile.bin" \
    > "${out_dir}/profile.txt"
  grep -q 'samples' "${out_dir}/profile.txt"
  "${build_dir}/tools/grapple-prof" --json "${out_dir}/work-on/profile.bin" \
    > "${out_dir}/profile.json"
  python3 -m json.tool "${out_dir}/profile.json" > /dev/null
  echo "==> [profile] collapsed stacks via analyze_file --profile"
  "${build_dir}/examples/analyze_file" --profile \
    "${out_dir}/work-on/profile.bin" > "${out_dir}/profile.collapsed"
  echo "==> [profile] profiled report identical; decoders agree"
}

# Analysis-service smoke: the full daemon lifecycle over real HTTP.
# grappled starts on an ephemeral port (discovered via --port-file), two
# tenants drive a concurrent burst through grapple-client, /statusz and
# /metricsz are scraped while the burst is in flight, and every /check
# response — cold or warm, either tenant — must be byte-identical to what
# a cold one-shot `analyze_file <subject> --json` prints. Afterwards the
# daemon gets SIGTERM and must exit 0, report warm hits in its final
# /statusz, and leave neither its work root nor its port file behind.
run_service_smoke() {
  local build_dir="${repo_root}/build-ci-release"
  echo "==> [service] configure + build"
  cmake -S "${repo_root}" -B "${build_dir}" -DCMAKE_BUILD_TYPE=Release > /dev/null
  build_filtered "${build_dir}"
  local out_dir="${build_dir}/service-smoke"
  rm -rf "${out_dir}"
  mkdir -p "${out_dir}"
  local subject="${repo_root}/examples/testdata/leaky.grap"
  local client="${build_dir}/tools/grapple-client"

  echo "==> [service] cold one-shot reference (analyze_file --json)"
  # Exit 1 just means "reports found", which is the point of leaky.grap;
  # 2 (usage/parse) and 3 (witness replay) are real failures.
  local ref_rc=0
  "${build_dir}/examples/analyze_file" "${subject}" --json \
    > "${out_dir}/ref.json" 2> /dev/null || ref_rc=$?
  if [[ "${ref_rc}" -gt 1 ]]; then
    echo "service: analyze_file failed with rc=${ref_rc}" >&2
    return 1
  fi
  test -s "${out_dir}/ref.json"

  echo "==> [service] start grappled on an ephemeral port"
  "${build_dir}/tools/grappled" --port 0 --port-file "${out_dir}/port" \
    --slots 2 --workers 4 2> "${out_dir}/grappled.log" &
  local daemon_pid=$!
  local port=""
  for _ in $(seq 1 100); do
    if [[ -s "${out_dir}/port" ]]; then
      port="$(cat "${out_dir}/port")"
      break
    fi
    sleep 0.1
  done
  if [[ -z "${port}" ]]; then
    echo "service: grappled never published its port" >&2
    cat "${out_dir}/grappled.log" >&2
    return 1
  fi
  local base="http://127.0.0.1:${port}"
  local work_root
  work_root="$(sed -n 's/.*work_root=//p' "${out_dir}/grappled.log" | head -1)"
  test -d "${work_root}"

  echo "==> [service] two-tenant burst on 127.0.0.1:${port}"
  "${client}" --port "${port}" --tenant alpha --fields reports "${subject}" \
    > "${out_dir}/alpha-cold.json"
  "${client}" --port "${port}" --tenant beta --priority batch --fields reports \
    "${subject}" > "${out_dir}/beta-cold.json"
  local burst_pids=()
  local tenant c i
  for tenant in alpha beta; do
    for c in 1 2; do
      (
        for i in 1 2 3; do
          "${client}" --port "${port}" --tenant "${tenant}" --fields reports \
            "${subject}" > "${out_dir}/${tenant}-${c}-${i}.json"
        done
      ) &
      burst_pids+=("$!")
    done
  done
  echo "==> [service] mid-run /statusz + /metricsz scrape"
  obs_get "${base}/statusz" > "${out_dir}/statusz-mid.json"
  obs_get "${base}/metricsz" > "${out_dir}/metricsz-mid.txt"
  local pid
  for pid in "${burst_pids[@]}"; do
    wait "${pid}"
  done
  python3 -m json.tool "${out_dir}/statusz-mid.json" > /dev/null
  grep -q '"service"' "${out_dir}/statusz-mid.json"
  grep -q '^grapple_service_requests_total' "${out_dir}/metricsz-mid.txt"

  echo "==> [service] responses byte-identical to the one-shot run"
  local response
  for response in "${out_dir}"/alpha-*.json "${out_dir}"/beta-*.json; do
    cmp "${out_dir}/ref.json" "${response}"
  done

  echo "==> [service] warm sessions visible in /statusz"
  obs_get "${base}/statusz" > "${out_dir}/statusz-final.json"
  python3 - "${out_dir}/statusz-final.json" <<'PY'
import json
import sys

with open(sys.argv[1], "r", encoding="utf-8") as f:
    sessions = json.load(f)["sources"]["service"]["sessions"]
assert sessions["warm_hits"] > 0, sessions
assert sessions["resident"] == 2, sessions
PY
  "${client}" --port "${port}" --tenant alpha "${subject}" > "${out_dir}/envelope.json"
  grep -q '"warm":true' "${out_dir}/envelope.json"

  echo "==> [service] SIGTERM shutdown"
  kill -TERM "${daemon_pid}"
  wait "${daemon_pid}"
  grep -q 'grappled: bye' "${out_dir}/grappled.log"
  if [[ -e "${work_root}" ]]; then
    echo "service: leaked work dirs under ${work_root}" >&2
    find "${work_root}" >&2
    return 1
  fi
  if [[ -e "${out_dir}/port" ]]; then
    echo "service: leaked port file" >&2
    return 1
  fi
  echo "==> [service] clean shutdown, no leaked work dirs"
}

# ThreadSanitizer pass: the whole suite runs under TSan (the scheduler,
# arbiter, and engine tests all spin up real thread contention), then the
# parallel pipeline is exercised end-to-end on a generated workload via the
# table3 scheduler section, which runs 4 checkers concurrently.
run_tsan() {
  local build_dir="${repo_root}/build-ci-tsan"
  run_pass tsan -DCMAKE_BUILD_TYPE=RelWithDebInfo -DGRAPPLE_SANITIZE=thread
  echo "==> [tsan] concurrent scheduler pipeline (parallelism=4)"
  mkdir -p "${build_dir}/bench-reports"
  GRAPPLE_SCALE="${GRAPPLE_SCALE:-0.1}" GRAPPLE_CHECKER_PARALLELISM=4 \
    GRAPPLE_REPORT_DIR="${build_dir}/bench-reports" \
    "${build_dir}/bench/table3_performance"
}

case "${mode}" in
  release)
    run_pass release -DCMAKE_BUILD_TYPE=Release
    ;;
  bench)
    run_bench_smoke
    ;;
  sanitize)
    run_pass sanitize -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DGRAPPLE_SANITIZE=address,undefined
    ;;
  tsan)
    run_tsan
    ;;
  recovery)
    run_recovery
    ;;
  soak)
    run_soak
    ;;
  obs)
    run_obs_smoke
    ;;
  profile)
    run_profile_smoke
    ;;
  service)
    run_service_smoke
    ;;
  all)
    run_pass release -DCMAKE_BUILD_TYPE=Release
    run_pass sanitize -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DGRAPPLE_SANITIZE=address,undefined
    ;;
  *)
    echo "usage: scripts/ci.sh [release|sanitize|tsan|bench|recovery|soak|obs|profile|service|all]" >&2
    exit 2
    ;;
esac

echo "==> CI passed (${mode})"
