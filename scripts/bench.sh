#!/usr/bin/env bash
# Runs every paper-reproduction bench binary and aggregates their
# machine-readable BENCH_<name>.json reports into one BENCH_trajectory.json,
# stamped with a schema version and the git SHA, so successive runs can be
# diffed over the repo's history.
#
# Usage:
#   scripts/bench.sh [build-dir] [out-dir]
#
#   build-dir  where the bench binaries live (default: build; configured and
#              built on demand when missing)
#   out-dir    where BENCH_*.json and BENCH_trajectory.json land
#              (default: <build-dir>/bench-reports)
#
# GRAPPLE_SCALE scales the synthetic subjects (e.g. GRAPPLE_SCALE=0.1 for a
# CI smoke run); GRAPPLE_WITNESS picks the provenance mode under test;
# GRAPPLE_CHECKER_PARALLELISM sets the concurrent-checker count used by the
# scheduler speedup section of table3 (default 4).
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-${repo_root}/build}"
out_dir="${2:-${build_dir}/bench-reports}"
jobs="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

benches=(table1_subjects table2_bugs table3_performance fig9_breakdown
  table4_caching table5_encoding service_bench)

if [[ ! -x "${build_dir}/bench/${benches[0]}" ]]; then
  echo "==> configuring and building benches in ${build_dir}"
  cmake -S "${repo_root}" -B "${build_dir}" -DCMAKE_BUILD_TYPE=Release > /dev/null
  cmake --build "${build_dir}" -j "${jobs}" --target "${benches[@]}" > /dev/null
fi

mkdir -p "${out_dir}"
export GRAPPLE_REPORT_DIR="${out_dir}"
export GRAPPLE_CHECKER_PARALLELISM="${GRAPPLE_CHECKER_PARALLELISM:-4}"

for bench in "${benches[@]}"; do
  echo "==> ${bench} (GRAPPLE_SCALE=${GRAPPLE_SCALE:-1})"
  "${build_dir}/bench/${bench}"
done

# Validate every report before embedding it: the trajectory file is built
# by concatenation, so one malformed BENCH_<name>.json would poison the
# whole artifact and only surface later (in check_bench or a dashboard).
# Fail loudly here instead, naming the offending file.
for bench in "${benches[@]}"; do
  report="${out_dir}/BENCH_${bench}.json"
  if [[ ! -f "${report}" ]]; then
    echo "missing bench report: ${report}" >&2
    exit 1
  fi
  if ! python3 -m json.tool "${report}" > /dev/null 2>&1; then
    echo "malformed bench report: ${report}" >&2
    exit 1
  fi
done

# Aggregate: each BENCH_<name>.json was validated above, so the trajectory
# file just embeds them as array elements.
git_sha="$(git -C "${repo_root}" rev-parse HEAD 2>/dev/null || echo unknown)"
trajectory="${out_dir}/BENCH_trajectory.json"
{
  printf '{"schema":"grapple.bench_trajectory.v1","schema_version":1,'
  printf '"git_sha":"%s","scale":%s,"checker_parallelism":%s,"benches":[' \
    "${git_sha}" "${GRAPPLE_SCALE:-1}" "${GRAPPLE_CHECKER_PARALLELISM}"
  first=1
  for bench in "${benches[@]}"; do
    report="${out_dir}/BENCH_${bench}.json"
    if [[ "${first}" -eq 0 ]]; then printf ','; fi
    first=0
    cat "${report}"
  done
  printf ']}\n'
} > "${trajectory}"

if ! python3 -m json.tool "${trajectory}" > /dev/null 2>&1; then
  echo "malformed bench report: ${trajectory}" >&2
  exit 1
fi

echo "==> wrote ${trajectory} ($(wc -c < "${trajectory}") bytes, sha ${git_sha})"
