#include <gtest/gtest.h>

#include "src/analysis/typestate_graph.h"
#include "src/cfg/loop_unroll.h"
#include "src/checker/builtin_checkers.h"
#include "src/symexec/cfet_builder.h"
#include "src/checker/checker.h"
#include "src/ir/parser.h"

namespace grapple {
namespace {

// Builds phase 1 + the typestate graph (into a collecting sink so the base
// edges can be inspected without running the second engine).
struct TsRun {
  Program program;
  std::unique_ptr<CallGraph> call_graph;
  Icfet icfet;
  Grammar pt_grammar;
  PointsToLabels pt_labels;
  std::unique_ptr<TempDir> dir;
  std::unique_ptr<IntervalOracle> oracle;
  std::unique_ptr<GraphEngine> engine;
  std::unique_ptr<AliasGraph> alias_graph;
  std::unique_ptr<AliasIndex> alias_index;
  Fsm fsm{"unset"};
  Grammar ts_grammar;
  TypestateLabels ts_labels;
  CollectingSink sink;
  std::unique_ptr<TypestateGraph> ts;
};

std::unique_ptr<TsRun> BuildTs(const std::string& text) {
  auto run = std::make_unique<TsRun>();
  ParseResult parsed = ParseProgram(text);
  EXPECT_TRUE(parsed.ok) << parsed.error;
  run->program = std::move(parsed.program);
  UnrollLoops(&run->program, 2);
  run->call_graph = std::make_unique<CallGraph>(run->program);
  run->icfet = BuildIcfet(run->program, *run->call_graph);
  run->pt_labels = BuildPointsToGrammar(&run->pt_grammar, {});
  run->dir = std::make_unique<TempDir>("ts-test");
  run->oracle = std::make_unique<IntervalOracle>(&run->icfet);
  EngineOptions options;
  options.work_dir = run->dir->path();
  run->engine = std::make_unique<GraphEngine>(&run->pt_grammar, run->oracle.get(), options);
  run->alias_graph = std::make_unique<AliasGraph>(run->program, *run->call_graph, run->icfet,
                                                  run->pt_labels, run->engine.get());
  run->engine->Finalize(run->alias_graph->num_vertices());
  run->engine->Run();
  std::unordered_set<VertexId> receivers;
  for (const auto& clone : run->alias_graph->clones()) {
    for (const auto& occ : clone.events) {
      receivers.insert(occ.receiver_vertex);
    }
  }
  run->alias_index = std::make_unique<AliasIndex>(run->engine.get(), run->pt_labels.flows_to,
                                                  receivers);
  run->fsm = CompleteFsm(MakeIoCheckerSpec().fsm);
  run->ts_labels = BuildTypestateGrammar(&run->ts_grammar, run->fsm);
  std::vector<uint32_t> tracked;
  for (uint32_t i = 0; i < run->alias_graph->objects().size(); ++i) {
    if (run->alias_graph->objects()[i].type == "FileWriter") {
      tracked.push_back(i);
    }
  }
  run->ts = std::make_unique<TypestateGraph>(*run->alias_graph, *run->alias_index, run->fsm,
                                             run->ts_labels, tracked, &run->sink);
  return run;
}

size_t CountKind(const TsRun& run, TsVertexInfo::Kind kind) {
  size_t count = 0;
  for (const auto& info : run.ts->vertex_info()) {
    if (info.kind == kind) {
      ++count;
    }
  }
  return count;
}

TEST(TypestateGraphTest, StraightLineStructure) {
  auto run = BuildTs(R"(
    method main() {
      obj f : FileWriter
      f = new FileWriter
      event f open
      event f write
      event f close
      return
    }
  )");
  EXPECT_EQ(run->ts->tracked().size(), 1u);
  EXPECT_EQ(CountKind(*run, TsVertexInfo::Kind::kSeed), 1u);
  EXPECT_EQ(CountKind(*run, TsVertexInfo::Kind::kAllocOut), 1u);
  EXPECT_EQ(CountKind(*run, TsVertexInfo::Kind::kEventIn), 3u);
  EXPECT_EQ(CountKind(*run, TsVertexInfo::Kind::kEventOut), 3u);
  EXPECT_EQ(CountKind(*run, TsVertexInfo::Kind::kExit), 1u);
  // seed edge + 3 event edges + 3 flow-into-event edges + 1 exit flow.
  EXPECT_EQ(run->ts->num_base_edges(), 8u);
  // Seed edge carries the initial state label.
  bool seed_edge = false;
  for (const auto& edge : run->sink.edges()) {
    if (edge.src == run->ts->SeedOf(0) &&
        edge.label == run->ts_labels.state[run->fsm.initial()]) {
      seed_edge = true;
    }
  }
  EXPECT_TRUE(seed_edge);
}

TEST(TypestateGraphTest, BranchDuplicatesEventPoints) {
  auto run = BuildTs(R"(
    method main() {
      obj f : FileWriter
      int x
      x = ?
      f = new FileWriter
      event f open
      if (x > 0) {
        event f close
      }
      return
    }
  )");
  // The close appears once (one occurrence), but there are two exits (one
  // per branch side).
  EXPECT_EQ(CountKind(*run, TsVertexInfo::Kind::kEventIn), 2u);  // open + close
  EXPECT_EQ(CountKind(*run, TsVertexInfo::Kind::kExit), 2u);
}

TEST(TypestateGraphTest, EventsOnUntrackedObjectsIgnored) {
  auto run = BuildTs(R"(
    method main() {
      obj f : FileWriter
      obj s : Socket
      f = new FileWriter
      s = new Socket
      event f open
      event s open
      event f close
      event s close
      return
    }
  )");
  // Only FileWriter events materialize (Socket is untracked by this FSM
  // binding).
  EXPECT_EQ(run->ts->tracked().size(), 1u);
  EXPECT_EQ(CountKind(*run, TsVertexInfo::Kind::kEventIn), 2u);
}

TEST(TypestateGraphTest, UnknownEventNamesIgnored) {
  auto run = BuildTs(R"(
    method main() {
      obj f : FileWriter
      f = new FileWriter
      event f open
      event f flushNonFsm
      event f close
      return
    }
  )");
  EXPECT_EQ(CountKind(*run, TsVertexInfo::Kind::kEventIn), 2u);
}

TEST(TypestateGraphTest, CalleeWithoutEventsSkipped) {
  auto run = BuildTs(R"(
    method noise(int n) {
      int z
      if (n > 0) {
        z = 1
      }
      return
    }
    method main() {
      obj f : FileWriter
      int x
      x = ?
      f = new FileWriter
      event f open
      call noise(x)
      event f close
      return
    }
  )");
  // The walk must not create vertices inside `noise` (no relevant events).
  for (const auto& info : run->ts->vertex_info()) {
    EXPECT_EQ(run->alias_graph->clones()[info.clone].method,
              *run->program.FindMethod("main"));
  }
}

TEST(TypestateGraphTest, EventsInsideCalleeReached) {
  auto run = BuildTs(R"(
    method closer(obj g : FileWriter) {
      event g close
      return
    }
    method main() {
      obj f : FileWriter
      f = new FileWriter
      event f open
      call closer(f)
      return
    }
  )");
  // The close event point lives in the callee clone.
  bool saw_callee_event = false;
  for (const auto& info : run->ts->vertex_info()) {
    if (info.kind == TsVertexInfo::Kind::kEventIn &&
        run->alias_graph->clones()[info.clone].method == *run->program.FindMethod("closer")) {
      saw_callee_event = true;
    }
  }
  EXPECT_TRUE(saw_callee_event);
}

TEST(TypestateGraphTest, PerObjectVertexSpacesAreDisjoint) {
  auto run = BuildTs(R"(
    method main() {
      obj f : FileWriter
      obj g : FileWriter
      f = new FileWriter
      g = new FileWriter
      event f open
      event g open
      event f close
      event g close
      return
    }
  )");
  ASSERT_EQ(run->ts->tracked().size(), 2u);
  // Each vertex belongs to exactly one object.
  EXPECT_NE(run->ts->SeedOf(0), run->ts->SeedOf(1));
  // f's events: open+close relevant to f only => 2 event-ins per object.
  size_t per_object[2] = {0, 0};
  for (const auto& info : run->ts->vertex_info()) {
    if (info.kind == TsVertexInfo::Kind::kEventIn) {
      ++per_object[info.object];
    }
  }
  EXPECT_EQ(per_object[0], 2u);
  EXPECT_EQ(per_object[1], 2u);
}

}  // namespace
}  // namespace grapple
