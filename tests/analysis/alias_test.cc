#include <gtest/gtest.h>

#include <set>

#include "src/analysis/alias_graph.h"
#include "src/analysis/alias_index.h"
#include "src/cfg/loop_unroll.h"
#include "src/ir/parser.h"
#include "src/symexec/cfet_builder.h"

#include <map>

namespace grapple {
namespace {

struct AliasRun {
  Program program;
  std::unique_ptr<CallGraph> call_graph;
  Icfet icfet;
  Grammar grammar;
  PointsToLabels labels;
  std::unique_ptr<TempDir> dir;
  std::unique_ptr<IntervalOracle> oracle;
  std::unique_ptr<GraphEngine> engine;
  std::unique_ptr<AliasGraph> graph;

  // All flowsTo pairs as (object description, variable description).
  std::set<std::pair<std::string, std::string>> FlowsToPairs() {
    std::set<std::pair<std::string, std::string>> pairs;
    engine->ForEachEdgeWithLabel(labels.flows_to, [&](const EdgeRecord& e) {
      pairs.insert({graph->DescribeVertex(e.src), graph->DescribeVertex(e.dst)});
    });
    return pairs;
  }
};

std::unique_ptr<AliasRun> RunAlias(const std::string& text,
                                   const std::vector<std::string>& fields = {}) {
  auto run = std::make_unique<AliasRun>();
  ParseResult parsed = ParseProgram(text);
  EXPECT_TRUE(parsed.ok) << parsed.error;
  run->program = std::move(parsed.program);
  UnrollLoops(&run->program, 2);
  run->call_graph = std::make_unique<CallGraph>(run->program);
  run->icfet = BuildIcfet(run->program, *run->call_graph);
  run->labels = BuildPointsToGrammar(&run->grammar, fields);
  run->dir = std::make_unique<TempDir>("alias-test");
  run->oracle = std::make_unique<IntervalOracle>(&run->icfet);
  EngineOptions options;
  options.work_dir = run->dir->path();
  run->engine = std::make_unique<GraphEngine>(&run->grammar, run->oracle.get(), options);
  run->graph = std::make_unique<AliasGraph>(run->program, *run->call_graph, run->icfet,
                                            run->labels, run->engine.get());
  run->engine->Finalize(run->graph->num_vertices());
  run->engine->Run();
  return run;
}

// The Figure 3b/5b program: o and out alias via o = out in the true branch.
TEST(AliasGraphTest, Figure5bLocalAliasing) {
  auto run = RunAlias(R"(
    method main() {
      obj out : FileWriter
      obj o : FileWriter
      int x
      x = ?
      if (x >= 0) {
        out = new FileWriter
        o = out
      }
      return
    }
  )");
  auto pairs = run->FlowsToPairs();
  // The object flows to both out and o occurrences in node 2.
  EXPECT_TRUE(pairs.count({"main::new FileWriter@n2#c0", "main::out@n2#c0"}));
  EXPECT_TRUE(pairs.count({"main::new FileWriter@n2#c0", "main::o@n2#c0"}));
}

TEST(AliasGraphTest, ArtificialEdgesCarryBranchConstraints) {
  // The object flows into a variable read in a *sibling* branch only if the
  // combined constraint is satisfiable. Here the second read is guarded by
  // the same condition (feasible).
  auto feasible = RunAlias(R"(
    method main() {
      obj a : T
      obj b : T
      int x
      x = ?
      if (x >= 0) {
        a = new T
      }
      if (x >= 0) {
        b = a
      }
      return
    }
  )");
  bool found = false;
  for (const auto& [obj, var] : feasible->FlowsToPairs()) {
    if (var.find("main::b") == 0) {
      found = true;
    }
  }
  EXPECT_TRUE(found);

  // When the *flow itself* crosses contradictory branches (the object's
  // value moves through x >= 0 and then x < 0 territory), the composed
  // interval decodes to an unsatisfiable constraint and the flow is pruned.
  // Note the allocation is unconditional: constraints accumulate from the
  // definition point onward (the entry-to-allocation prefix is phase 2's
  // seed-edge job, covered by the pipeline tests).
  auto infeasible = RunAlias(R"(
    method main() {
      obj a : T
      obj b : T
      obj c : T
      int x
      x = ?
      a = new T
      if (x >= 0) {
        c = a
      }
      if (x < 0) {
        b = c
      }
      return
    }
  )");
  for (const auto& [obj, var] : infeasible->FlowsToPairs()) {
    EXPECT_EQ(var.find("main::b"), std::string::npos) << obj << " -> " << var;
  }
}

TEST(AliasGraphTest, HeapAliasingThroughFields) {
  auto run = RunAlias(R"(
    method main() {
      obj h : Holder
      obj f : T
      obj g : T
      h = new Holder
      f = new T
      h.data = f
      g = h.data
      return
    }
  )",
                      {"data"});
  bool g_points_to_f_object = false;
  for (const auto& [obj, var] : run->FlowsToPairs()) {
    if (obj.find("main::new T") == 0 && var.find("main::g") == 0) {
      g_points_to_f_object = true;
    }
  }
  EXPECT_TRUE(g_points_to_f_object);
}

TEST(AliasGraphTest, CloningSeparatesCallSites) {
  auto run = RunAlias(R"(
    method id(obj p : T) : obj T {
      return p
    }
    method main() {
      obj a : T
      obj b : T
      obj ra : T
      obj rb : T
      a = new T
      b = new T
      ra = id(a)
      rb = id(b)
      return
    }
  )");
  // Two clones of `id` exist.
  size_t id_clones = 0;
  for (const auto& clone : run->graph->clones()) {
    if (run->program.MethodAt(clone.method).name == "id" && !clone.shared) {
      ++id_clones;
    }
  }
  EXPECT_EQ(id_clones, 2u);
  // Context sensitivity: ra receives only a's object, rb only b's (a
  // context-insensitive analysis would conflate the two flows through id's
  // parameter). Distinguish allocations by their object vertex IDs.
  std::map<std::string, std::set<VertexId>> objects_of;
  run->engine->ForEachEdgeWithLabel(run->labels.flows_to, [&](const EdgeRecord& e) {
    objects_of[run->graph->DescribeVertex(e.dst)].insert(e.src);
  });
  bool saw_ra = false;
  bool saw_rb = false;
  for (const auto& [var, objs] : objects_of) {
    if (var.find("main::ra") == 0) {
      saw_ra = true;
      EXPECT_EQ(objs.size(), 1u) << var;
    }
    if (var.find("main::rb") == 0) {
      saw_rb = true;
      EXPECT_EQ(objs.size(), 1u) << var;
    }
  }
  EXPECT_TRUE(saw_ra);
  EXPECT_TRUE(saw_rb);
}

TEST(AliasGraphTest, RecursiveMethodsShareOneInstance) {
  auto run = RunAlias(R"(
    method rec(obj p : T, int n) {
      if (n > 0) {
        call rec(p, n)
      }
      return
    }
    method main() {
      obj a : T
      int x
      x = 3
      a = new T
      call rec(a, x)
      return
    }
  )");
  size_t shared = 0;
  for (const auto& clone : run->graph->clones()) {
    if (clone.shared) {
      ++shared;
    }
  }
  EXPECT_EQ(shared, 1u);
  // The object still flows into the shared instance's parameter.
  bool flows_into_rec = false;
  for (const auto& [obj, var] : run->FlowsToPairs()) {
    if (var.find("rec::p") == 0) {
      flows_into_rec = true;
    }
  }
  EXPECT_TRUE(flows_into_rec);
}

TEST(AliasGraphTest, ObjectsAndEventsRecorded) {
  auto run = RunAlias(R"(
    method main() {
      obj f : FileWriter
      f = new FileWriter
      event f open
      event f close
      return
    }
  )");
  ASSERT_EQ(run->graph->objects().size(), 1u);
  EXPECT_EQ(run->graph->objects()[0].type, "FileWriter");
  ASSERT_EQ(run->graph->clones().size(), 1u);
  EXPECT_EQ(run->graph->clones()[0].events.size(), 2u);
  EXPECT_EQ(run->graph->entry_clones().size(), 1u);
  EXPECT_EQ(run->graph->EntryOf(0), 0u);
}

TEST(AliasIndexTest, FiltersToReceivers) {
  auto run = RunAlias(R"(
    method main() {
      obj f : FileWriter
      obj g : FileWriter
      f = new FileWriter
      g = f
      event g close
      return
    }
  )");
  std::unordered_set<VertexId> receivers;
  for (const auto& clone : run->graph->clones()) {
    for (const auto& occ : clone.events) {
      receivers.insert(occ.receiver_vertex);
    }
  }
  ASSERT_EQ(receivers.size(), 1u);
  AliasIndex index(run->engine.get(), run->labels.flows_to, receivers);
  EXPECT_EQ(index.NumPairs(), 1u);
  VertexId receiver = *receivers.begin();
  ASSERT_EQ(index.ObjectsFlowingTo(receiver).size(), 1u);
  auto inverted = index.InvertToObjects();
  EXPECT_EQ(inverted.size(), 1u);
}

}  // namespace
}  // namespace grapple
