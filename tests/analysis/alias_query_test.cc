#include <gtest/gtest.h>

#include "src/analysis/alias_query.h"
#include "src/cfg/loop_unroll.h"
#include "src/ir/parser.h"
#include "src/symexec/cfet_builder.h"

namespace grapple {
namespace {

struct QueryRun {
  Program program;
  std::unique_ptr<CallGraph> call_graph;
  Icfet icfet;
  Grammar grammar;
  PointsToLabels labels;
  std::unique_ptr<TempDir> dir;
  std::unique_ptr<IntervalOracle> oracle;
  std::unique_ptr<GraphEngine> engine;
  std::unique_ptr<AliasGraph> graph;
  std::unique_ptr<AliasQuery> query;
};

std::unique_ptr<QueryRun> RunQuery(const std::string& text) {
  auto run = std::make_unique<QueryRun>();
  ParseResult parsed = ParseProgram(text);
  EXPECT_TRUE(parsed.ok) << parsed.error;
  run->program = std::move(parsed.program);
  UnrollLoops(&run->program, 2);
  run->call_graph = std::make_unique<CallGraph>(run->program);
  run->icfet = BuildIcfet(run->program, *run->call_graph);
  run->labels = BuildPointsToGrammar(&run->grammar, {});
  run->dir = std::make_unique<TempDir>("alias-query");
  run->oracle = std::make_unique<IntervalOracle>(&run->icfet);
  EngineOptions options;
  options.work_dir = run->dir->path();
  run->engine = std::make_unique<GraphEngine>(&run->grammar, run->oracle.get(), options);
  run->graph = std::make_unique<AliasGraph>(run->program, *run->call_graph, run->icfet,
                                            run->labels, run->engine.get());
  run->engine->Finalize(run->graph->num_vertices());
  run->engine->Run();
  run->query =
      std::make_unique<AliasQuery>(*run->graph, run->engine.get(), run->labels.flows_to);
  return run;
}

constexpr char kTwoContexts[] = R"(
  method id(obj p : T) : obj T {
    return p
  }
  method main() {
    obj a : T
    obj b : T
    obj ra : T
    obj rb : T
    a = new T
    b = new T
    ra = id(a)
    rb = id(b)
    return
  }
)";

TEST(AliasQueryTest, PointsToAcrossContexts) {
  auto run = RunQuery(kTwoContexts);
  // `p` in id sees one object per calling context, two overall.
  auto all = run->query->PointsTo("id", "p");
  std::set<VertexId> objects;
  for (const auto& fact : all) {
    objects.insert(fact.object_vertex);
  }
  EXPECT_EQ(objects.size(), 2u);
  // ra/rb each see exactly one object.
  std::set<VertexId> ra_objects;
  for (const auto& fact : run->query->PointsTo("main", "ra")) {
    ra_objects.insert(fact.object_vertex);
  }
  EXPECT_EQ(ra_objects.size(), 1u);
}

TEST(AliasQueryTest, PointsToInOneCloneIsContextSensitive) {
  auto run = RunQuery(kTwoContexts);
  // The paper's motivating query: under one particular calling context, the
  // parameter references exactly one object.
  std::vector<uint32_t> id_clones;
  for (uint32_t c = 0; c < run->graph->clones().size(); ++c) {
    if (run->program.MethodAt(run->graph->clones()[c].method).name == "id") {
      id_clones.push_back(c);
    }
  }
  ASSERT_EQ(id_clones.size(), 2u);
  std::set<VertexId> per_clone_objects;
  for (uint32_t clone : id_clones) {
    auto facts = run->query->PointsToInClone("id", "p", clone);
    std::set<VertexId> objects;
    for (const auto& fact : facts) {
      objects.insert(fact.object_vertex);
      per_clone_objects.insert(fact.object_vertex);
    }
    EXPECT_EQ(objects.size(), 1u) << "clone " << clone;
  }
  // ...and the two contexts see different objects.
  EXPECT_EQ(per_clone_objects.size(), 2u);
}

TEST(AliasQueryTest, MayAlias) {
  auto run = RunQuery(R"(
    method main() {
      obj a : T
      obj b : T
      obj c : T
      a = new T
      b = a
      c = new T
      return
    }
  )");
  EXPECT_TRUE(run->query->MayAlias("main", "a", "main", "b"));
  EXPECT_FALSE(run->query->MayAlias("main", "a", "main", "c"));
  EXPECT_FALSE(run->query->MayAlias("main", "b", "main", "c"));
  // Self-alias trivially holds for pointed-to variables.
  EXPECT_TRUE(run->query->MayAlias("main", "a", "main", "a"));
}

TEST(AliasQueryTest, UnknownNamesReturnEmpty) {
  auto run = RunQuery(kTwoContexts);
  EXPECT_TRUE(run->query->PointsTo("nope", "p").empty());
  EXPECT_TRUE(run->query->PointsTo("id", "nope").empty());
  EXPECT_FALSE(run->query->MayAlias("id", "p", "nope", "x"));
  EXPECT_GT(run->query->NumFlowFacts(), 0u);
}

}  // namespace
}  // namespace grapple
