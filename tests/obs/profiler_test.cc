// Sampling-profiler acceptance (DESIGN.md §13): signal-storm concurrency,
// attribution completeness, the GPRF envelope (round-trip plus truncation
// and corruption decode errors), wait attribution through the evt observer
// tap, fig9 cross-validation against a stopwatch, and the fatal-signal
// crash spill. Own test binary: it installs SIGPROF/SIGSEGV handlers,
// mutates the process-wide profiler singleton, and forks crashing children.
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "src/obs/event_log.h"
#include "src/obs/json.h"
#include "src/obs/profiler.h"
#include "src/support/byte_io.h"
#include "src/support/event_hook.h"
#include "src/support/timer.h"

namespace grapple {
namespace obs {
namespace {

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define GRAPPLE_UNDER_SANITIZER 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define GRAPPLE_UNDER_SANITIZER 1
#endif
#endif
#ifndef GRAPPLE_UNDER_SANITIZER
#define GRAPPLE_UNDER_SANITIZER 0
#endif

// Spins with a checker/phase/pair context installed until `stop` is set.
void SpinWithContext(uint32_t checker_id, const char* phase, uint32_t pair_i, uint32_t pair_j,
                     const std::atomic<bool>* stop) {
  ProfChecker checker(checker_id);
  ProfPhase prof_phase(phase);
  ProfPair pair(pair_i, pair_j);
  volatile uint64_t sink = 0;
  while (!stop->load(std::memory_order_relaxed)) {
    sink = sink * 2654435761u + 1;
  }
}

uint64_t SumSamples(const ProfileData& data) {
  uint64_t sum = 0;
  for (const ProfileEntry& entry : data.entries) {
    sum += entry.samples;
  }
  return sum;
}

std::string NameOf(const ProfileData& data, uint32_t id) {
  if (id == 0 || id > data.strings.size()) {
    return "";
  }
  return data.strings[id - 1];
}

// Runs the profiler at `hz` over `fn`, returns the final snapshot.
ProfileData ProfiledRun(uint32_t hz, const std::function<void()>& fn) {
  ProfilerResetForTest();
  EXPECT_TRUE(ProfilerStart(hz));
  fn();
  ProfileData data = ProfilerSnapshot();
  ProfilerStop();
  return data;
}

TEST(ProfilerTest, StartStopLifecycle) {
  EXPECT_FALSE(ProfilerRunning());
  EXPECT_FALSE(ProfilerStart(0)) << "hz == 0 must refuse to start";
  ASSERT_TRUE(ProfilerStart(200));
  EXPECT_TRUE(ProfilerRunning());
  EXPECT_FALSE(ProfilerStart(200)) << "second start must refuse while running";
  ProfilerStop();
  EXPECT_FALSE(ProfilerRunning());
  ProfilerStop();  // idempotent
  EXPECT_FALSE(ProfilerRunning());
}

// Attribution completeness: every harvested sample lands in exactly one
// ledger bucket (sum of entries == total), and a thread with a known
// context is attributed to that context.
TEST(ProfilerTest, AttributionIsCompleteAndNamed) {
  uint32_t checker_id = EventLogInternString("prof-test-checker");
  std::atomic<bool> stop{false};
  ProfileData data = ProfiledRun(500, [&] {
    std::thread worker(&SpinWithContext, checker_id, "prof-test-phase", 3u, 9u, &stop);
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    stop.store(true, std::memory_order_relaxed);
    worker.join();
  });

  EXPECT_GT(data.total_samples, 0u);
  EXPECT_EQ(SumSamples(data), data.total_samples)
      << "every sample must land in exactly one bucket";
  EXPECT_GT(data.sample_period_ns, 0u);
  EXPECT_GT(data.wall_ns, 0u);

  uint64_t tagged = 0;
  for (const ProfileEntry& entry : data.entries) {
    if (NameOf(data, entry.checker) == "prof-test-checker") {
      EXPECT_EQ(NameOf(data, entry.phase), "prof-test-phase");
      EXPECT_EQ(entry.pair, (uint64_t{3} << 32) | 9u);
      tagged += entry.samples;
    }
  }
  EXPECT_GT(tagged, 0u) << "the spinning worker's context never got sampled";
}

// Signal storm: many threads, maximum rate, nested markers churning while
// SIGPROF lands. The invariants must hold under fire and nothing may crash
// or deadlock.
TEST(ProfilerTest, SignalStormKeepsLedgerConsistent) {
  uint32_t checker_id = EventLogInternString("storm-checker");
  std::atomic<bool> stop{false};
  ProfileData data = ProfiledRun(1000, [&] {
    std::vector<std::thread> workers;
    for (uint32_t t = 0; t < 8; ++t) {
      workers.emplace_back([&, t] {
        ProfChecker checker(checker_id);
        volatile uint64_t sink = 0;
        while (!stop.load(std::memory_order_relaxed)) {
          // Churn nested phase/pair markers so signals land mid-swap.
          ProfPhase phase(t % 2 == 0 ? "storm-even" : "storm-odd");
          for (uint32_t p = 0; p < 64; ++p) {
            ProfPair pair(t, p);
            sink = sink * 2654435761u + p;
          }
        }
      });
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(400));
    stop.store(true, std::memory_order_relaxed);
    for (std::thread& worker : workers) {
      worker.join();
    }
  });

  EXPECT_GT(data.total_samples, 0u);
  EXPECT_EQ(SumSamples(data), data.total_samples);
  // Drops (ring overwrites, torn slots) are legal under a storm but must be
  // accounted, never silently lost.
  for (const ProfileEntry& entry : data.entries) {
    EXPECT_LE(entry.wait_kind, static_cast<uint32_t>(evt::kWaitTask));
  }
}

// Off-CPU attribution: a thread blocked inside a kWaitBegin/kWaitEnd
// bracket keeps accumulating samples, tagged with the wait kind.
TEST(ProfilerTest, WaitBracketsAttributeOffCpuTime) {
  uint32_t checker_id = EventLogInternString("wait-checker");
  ProfileData data = ProfiledRun(500, [&] {
    std::thread worker([&] {
      ProfChecker checker(checker_id);
      ProfPhase phase("wait-phase");
      evt::Emit(evt::kWaitBegin, evt::kWaitSolve);
      std::this_thread::sleep_for(std::chrono::milliseconds(300));
      evt::Emit(evt::kWaitEnd, evt::kWaitSolve);
    });
    worker.join();
  });

  uint64_t solve_samples = 0;
  for (const ProfileEntry& entry : data.entries) {
    if (NameOf(data, entry.checker) == "wait-checker" &&
        entry.wait_kind == evt::kWaitSolve) {
      EXPECT_EQ(NameOf(data, entry.phase), "wait-phase");
      solve_samples += entry.samples;
    }
  }
  EXPECT_GT(solve_samples, 0u) << "blocked time must be booked against the wait kind";
  EXPECT_NE(ProfileToCollapsed(data).find(";offcpu:solve"), std::string::npos);
}

// fig9 cross-validation: the profiler's phase fractions must agree with a
// wall-clock stopwatch over the same run within 10 points (the acceptance
// bound for agreeing with PhaseProfiler in the engine).
TEST(ProfilerTest, PhaseFractionsMatchStopwatch) {
  std::map<std::string, double> stopwatch;
  ProfileData data = ProfiledRun(500, [&] {
    std::thread worker([&] {
      auto burn = [](double seconds) {
        WallTimer timer;
        volatile uint64_t sink = 0;
        while (timer.ElapsedSeconds() < seconds) {
          sink = sink * 2654435761u + 1;
        }
      };
      double total = 0;
      {
        ProfPhase phase("fig9-join");
        WallTimer timer;
        burn(0.45);
        stopwatch["fig9-join"] = timer.ElapsedSeconds();
      }
      {
        ProfPhase phase("fig9-io");
        WallTimer timer;
        burn(0.15);
        stopwatch["fig9-io"] = timer.ElapsedSeconds();
      }
      total = stopwatch["fig9-join"] + stopwatch["fig9-io"];
      for (auto& kv : stopwatch) {
        kv.second /= total;
      }
    });
    worker.join();
  });

  std::map<std::string, double> fractions = ProfilePhaseFractions(data);
  // Only the two synthetic phases carry tags in this run.
  ASSERT_GT(fractions.count("fig9-join"), 0u);
  ASSERT_GT(fractions.count("fig9-io"), 0u);
  EXPECT_NEAR(fractions["fig9-join"], stopwatch["fig9-join"], 0.10);
  EXPECT_NEAR(fractions["fig9-io"], stopwatch["fig9-io"], 0.10);
}

// GPRF envelope: a written ledger round-trips bit-exact through the decoder
// and the JSON/collapsed renderers resolve names from the embedded table.
TEST(ProfilerTest, ProfileFileRoundTrips) {
  uint32_t checker_id = EventLogInternString("roundtrip-checker");
  TempDir dir("prof-roundtrip");
  std::string path = dir.path() + "/profile.bin";
  std::atomic<bool> stop{false};
  ProfilerResetForTest();
  ASSERT_TRUE(ProfilerStart(500));
  std::thread worker(&SpinWithContext, checker_id, "roundtrip-phase", 1u, 2u, &stop);
  std::this_thread::sleep_for(std::chrono::milliseconds(250));
  stop.store(true, std::memory_order_relaxed);
  worker.join();
  ASSERT_TRUE(ProfilerWriteFile(path));
  ProfileData live = ProfilerSnapshot();
  ProfilerStop();

  ProfileData decoded;
  std::string error;
  ASSERT_TRUE(DecodeProfile(path, &decoded, &error)) << error;
  EXPECT_EQ(decoded.sample_period_ns, live.sample_period_ns);
  EXPECT_GT(decoded.total_samples, 0u);
  EXPECT_EQ(decoded.entries.size(), live.entries.size());
  EXPECT_EQ(SumSamples(decoded), decoded.total_samples);

  std::string json = ProfileToJson(decoded);
  std::optional<JsonValue> doc = ParseJson(json, &error);
  ASSERT_TRUE(doc.has_value()) << error << "\n" << json;
  EXPECT_EQ(doc->StringOr("schema", ""), "grapple.profile.v1");
  EXPECT_NE(json.find("roundtrip-checker"), std::string::npos);

  std::string collapsed = ProfileToCollapsed(decoded);
  EXPECT_NE(collapsed.find("roundtrip-checker;roundtrip-phase;pair:1-2"), std::string::npos);
}

// Decode failures are named, not silent: each corruption maps to a distinct
// diagnostic.
TEST(ProfilerTest, DecodeRejectsTruncationAndCorruption) {
  TempDir dir("prof-corrupt");
  std::string path = dir.path() + "/profile.bin";
  ProfilerResetForTest();
  ASSERT_TRUE(ProfilerStart(500));
  {
    ProfPhase phase("corrupt-phase");
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
  }
  ASSERT_TRUE(ProfilerWriteFile(path));
  ProfilerStop();

  std::vector<uint8_t> good;
  ASSERT_TRUE(ReadFileBytes(path, &good));
  ASSERT_GT(good.size(), 44u);

  auto expect_error = [&](const std::vector<uint8_t>& bytes, const std::string& needle) {
    std::string bad = dir.path() + "/bad.bin";
    ASSERT_TRUE(WriteFileBytes(bad, bytes));
    ProfileData out;
    std::string error;
    EXPECT_FALSE(DecodeProfile(bad, &out, &error));
    EXPECT_NE(error.find(needle), std::string::npos) << error;
  };

  ProfileData out;
  std::string error;
  EXPECT_FALSE(DecodeProfile(dir.path() + "/missing.bin", &out, &error));

  std::vector<uint8_t> magic = good;
  magic[0] ^= 0xff;
  expect_error(magic, "bad magic");

  std::vector<uint8_t> version = good;
  version[4] = 0x7f;
  expect_error(version, "unsupported version");

  std::vector<uint8_t> truncated(good.begin(), good.begin() + 20);
  expect_error(truncated, "truncated payload");

  std::vector<uint8_t> flipped = good;
  flipped[20] ^= 0x01;  // inside the payload: checksum must catch it
  expect_error(flipped, "checksum mismatch");

  std::vector<uint8_t> tiny(good.begin(), good.begin() + 8);
  expect_error(tiny, "bad magic");
}

// The BENCH_*.json stamp: valid JSON with sample totals and fractions.
TEST(ProfilerTest, SummaryJsonIsWellFormed) {
  std::string summary = ProfileSummaryJson();
  std::string error;
  std::optional<JsonValue> doc = ParseJson(summary, &error);
  ASSERT_TRUE(doc.has_value()) << error << "\n" << summary;
  EXPECT_GE(doc->NumberOr("samples", -1), 0.0);
  EXPECT_GE(doc->NumberOr("dropped", -1), 0.0);
  EXPECT_NE(doc->Find("phase_fractions"), nullptr);
}

// Fatal-signal spill: a child dies on a real SIGSEGV; the handler must
// flush the flight recorder AND the profiler ledger before the re-raise,
// and the re-raise must preserve death-by-signal for the parent.
TEST(ProfilerTest, FatalSignalSpillsProfileAndFlightrec) {
  if (GRAPPLE_UNDER_SANITIZER) {
    GTEST_SKIP() << "sanitizer runtimes own the fatal-signal handlers";
  }
  TempDir work("prof-fatal");
  pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    EventLogInstall();
    EventLogSetCrashDumpPath(work.path() + "/flightrec.bin");
    ProfilerSetDumpPath(work.path() + "/profile.bin");
    // The fork copied the parent's ledger; clear it so the spilled profile
    // describes only this child's samples.
    ProfilerResetForTest();
    if (!ProfilerStart(500)) {
      _exit(40);
    }
    evt::Emit(evt::kRunStart, 1);
    {
      ProfPhase phase("fatal-phase");
      // Spin until at least one sample exists so the spill has content.
      WallTimer timer;
      while (ProfilerSnapshot().total_samples == 0 && timer.ElapsedSeconds() < 5.0) {
      }
    }
    raise(SIGSEGV);
    _exit(41);  // unreachable if the re-raise preserved the signal
  }
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status)) << "exit status " << status;
  EXPECT_EQ(WTERMSIG(status), SIGSEGV);

  FlightRecording recording;
  std::string error;
  EXPECT_TRUE(DecodeFlightRecording(work.path() + "/flightrec.bin", &recording, &error))
      << error;

  ProfileData profile;
  ASSERT_TRUE(DecodeProfile(work.path() + "/profile.bin", &profile, &error)) << error;
  EXPECT_GT(profile.total_samples, 0u);
  bool saw_fatal_phase = false;
  for (const ProfileEntry& entry : profile.entries) {
    if (NameOf(profile, entry.phase) == "fatal-phase") {
      saw_fatal_phase = true;
    }
  }
  EXPECT_TRUE(saw_fatal_phase);
}

}  // namespace
}  // namespace obs
}  // namespace grapple
