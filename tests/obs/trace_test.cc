// Span tracer: Chrome trace JSON structure, span nesting by ts/dur
// containment, per-thread tids, instants, and overflow accounting. Every
// assertion parses the emitted JSON with the obs parser — these double as
// golden checks that the trace loads as valid JSON.
#include <gtest/gtest.h>

#include <set>
#include <thread>
#include <vector>

#include "src/obs/json.h"
#include "src/obs/trace.h"

namespace grapple {
namespace obs {
namespace {

struct ParsedEvent {
  std::string name;
  std::string cat;
  std::string ph;
  int tid = 0;
  double ts = 0;
  double dur = 0;
};

std::vector<ParsedEvent> EventsOf(const std::string& trace_json) {
  std::string error;
  std::optional<JsonValue> doc = ParseJson(trace_json, &error);
  EXPECT_TRUE(doc.has_value()) << error;
  std::vector<ParsedEvent> events;
  if (!doc.has_value()) {
    return events;
  }
  const JsonValue* array = doc->Find("traceEvents");
  EXPECT_NE(array, nullptr);
  EXPECT_TRUE(array->IsArray());
  for (const JsonValue& item : array->items) {
    ParsedEvent event;
    event.name = item.StringOr("name", "");
    event.cat = item.StringOr("cat", "");
    event.ph = item.StringOr("ph", "");
    event.tid = static_cast<int>(item.NumberOr("tid", -1));
    event.ts = item.NumberOr("ts", 0);
    event.dur = item.NumberOr("dur", 0);
    events.push_back(std::move(event));
  }
  return events;
}

const ParsedEvent* FindByName(const std::vector<ParsedEvent>& events, const std::string& name) {
  for (const ParsedEvent& event : events) {
    if (event.name == name) {
      return &event;
    }
  }
  return nullptr;
}

// a strictly contains b on the trace timeline (same thread, [ts, ts+dur]).
bool Contains(const ParsedEvent& a, const ParsedEvent& b) {
  return a.tid == b.tid && a.ts <= b.ts && b.ts + b.dur <= a.ts + a.dur;
}

TEST(TraceTest, DisabledSpansRecordNothing) {
  ASSERT_FALSE(TracingEnabled());
  { ScopedSpan span("should_not_appear", "test"); }
  StartTracing();
  std::vector<ParsedEvent> events = EventsOf(StopTracingToJson());
  EXPECT_EQ(FindByName(events, "should_not_appear"), nullptr);
  for (const ParsedEvent& event : events) {
    EXPECT_EQ(event.ph, "M");  // only metadata
  }
}

TEST(TraceTest, NestedSpansAreContained) {
  StartTracing();
  {
    ScopedSpan outer("t_outer", "engine");
    {
      ScopedSpan middle("t_middle", "oracle");
      { ScopedSpan leaf("t_leaf", "solver"); }
    }
  }
  std::vector<ParsedEvent> events = EventsOf(StopTracingToJson());
  const ParsedEvent* outer = FindByName(events, "t_outer");
  const ParsedEvent* middle = FindByName(events, "t_middle");
  const ParsedEvent* leaf = FindByName(events, "t_leaf");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(middle, nullptr);
  ASSERT_NE(leaf, nullptr);
  EXPECT_EQ(outer->ph, "X");
  EXPECT_EQ(outer->cat, "engine");
  EXPECT_EQ(middle->cat, "oracle");
  EXPECT_EQ(leaf->cat, "solver");
  EXPECT_TRUE(Contains(*outer, *middle));
  EXPECT_TRUE(Contains(*middle, *leaf));
}

TEST(TraceTest, ThreadsGetDistinctTids) {
  StartTracing();
  { ScopedSpan span("t_main_span", "test"); }
  std::thread worker([] { ScopedSpan span("t_worker_span", "test"); });
  worker.join();
  std::vector<ParsedEvent> events = EventsOf(StopTracingToJson());
  const ParsedEvent* main_span = FindByName(events, "t_main_span");
  const ParsedEvent* worker_span = FindByName(events, "t_worker_span");
  ASSERT_NE(main_span, nullptr);
  ASSERT_NE(worker_span, nullptr);
  EXPECT_NE(main_span->tid, worker_span->tid);
}

TEST(TraceTest, InstantsAndInternedNames) {
  const char* interned = InternSpanName(std::string("t_dyn_") + "name");
  EXPECT_EQ(interned, InternSpanName("t_dyn_name"));  // stable pointer
  StartTracing();
  TraceInstant(interned, "test");
  std::vector<ParsedEvent> events = EventsOf(StopTracingToJson());
  const ParsedEvent* instant = FindByName(events, "t_dyn_name");
  ASSERT_NE(instant, nullptr);
  EXPECT_EQ(instant->ph, "i");
  EXPECT_EQ(instant->dur, 0);
}

TEST(TraceTest, OverflowIsCountedNotGrown) {
  TraceOptions options;
  options.max_events_per_thread = 4;
  StartTracing(options);
  for (int i = 0; i < 10; ++i) {
    ScopedSpan span("t_overflow", "test");
  }
  std::string json = StopTracingToJson();
  std::vector<ParsedEvent> events = EventsOf(json);
  size_t recorded = 0;
  for (const ParsedEvent& event : events) {
    if (event.name == "t_overflow") {
      ++recorded;
    }
  }
  EXPECT_EQ(recorded, 4u);
  std::optional<JsonValue> doc = ParseJson(json);
  ASSERT_TRUE(doc.has_value());
  const JsonValue* other = doc->Find("otherData");
  ASSERT_NE(other, nullptr);
  EXPECT_EQ(other->NumberOr("dropped_events", -1), 6);
}

TEST(TraceTest, StopWritesLoadableFile) {
  StartTracing();
  { ScopedSpan span("t_file_span", "test"); }
  std::string path = ::testing::TempDir() + "/grapple_trace_test.json";
  ASSERT_TRUE(StopTracing(path));
  std::FILE* file = std::fopen(path.c_str(), "rb");
  ASSERT_NE(file, nullptr);
  std::string content;
  char buffer[4096];
  size_t n;
  while ((n = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    content.append(buffer, n);
  }
  std::fclose(file);
  std::remove(path.c_str());
  std::vector<ParsedEvent> events = EventsOf(content);
  EXPECT_NE(FindByName(events, "t_file_span"), nullptr);
}

// Regression: the merged trace used to be emitted shard-by-shard (all of
// thread A's spans, then all of thread B's), which trace viewers tolerate
// but post-processors reading the file as a timeline do not. The merger
// must interleave shards into one timestamp-sorted stream.
TEST(TraceTest, MergedEventsAreTimestampSortedAcrossThreads) {
  StartTracing();
  // Interleave spans across three threads with enforced ordering, so a
  // shard-ordered emission cannot accidentally be time-sorted.
  std::vector<std::thread> threads;
  for (int round = 0; round < 3; ++round) {
    for (int t = 0; t < 3; ++t) {
      threads.emplace_back([] { ScopedSpan span("t_sort_probe", "test"); });
    }
    for (auto& thread : threads) {
      thread.join();
    }
    threads.clear();
    { ScopedSpan main_span("t_sort_probe", "test"); }
  }
  std::vector<ParsedEvent> events = EventsOf(StopTracingToJson());
  double last_ts = -1;
  int span_events = 0;
  std::set<int> tids;
  for (const ParsedEvent& event : events) {
    if (event.ph == "M") {
      continue;  // metadata records carry no timestamp
    }
    ++span_events;
    tids.insert(event.tid);
    EXPECT_GE(event.ts, last_ts) << "trace not globally timestamp-sorted";
    last_ts = event.ts;
  }
  EXPECT_GE(span_events, 12);
  EXPECT_GE(tids.size(), 2u) << "test needs spans from multiple threads to mean anything";
}

}  // namespace
}  // namespace obs
}  // namespace grapple
