// Flight recorder (DESIGN.md §12): seqlock ring invariants under concurrent
// producers, oldest-first overwrite, interning, and the flightrec.bin
// dump/decode round trip. The recorder is process-global and other suites
// in this binary emit events of their own, so every assertion filters by
// argument values no other emitter uses.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "src/obs/event_log.h"
#include "src/obs/json.h"
#include "src/support/byte_io.h"
#include "src/support/event_hook.h"

namespace grapple {
namespace obs {
namespace {

// Arg-space tag no production emitter reaches (partition counts and byte
// sizes in tests stay far below 2^56).
constexpr uint64_t kTag = uint64_t{0xE1E1} << 48;

std::vector<FlightEvent> TaggedTail() {
  std::vector<FlightEvent> mine;
  for (const FlightEvent& event : EventLogTail(0)) {
    if ((event.arg1 & (uint64_t{0xFFFF} << 48)) == kTag) {
      mine.push_back(event);
    }
  }
  return mine;
}

TEST(EventLogTest, EmittedEventsAppearInTail) {
  EventLogInstall();
  for (uint64_t i = 0; i < 16; ++i) {
    evt::Emit(evt::kPairStart, kTag | (100 + i), i * 2, /*a0=*/7);
  }
  std::vector<FlightEvent> mine = TaggedTail();
  std::set<uint64_t> seen;
  for (const FlightEvent& event : mine) {
    if (event.type == evt::kPairStart && event.arg1 >= (kTag | 100) &&
        event.arg1 < (kTag | 116)) {
      seen.insert(event.arg1 & 0xFFFF);
      EXPECT_EQ(event.arg2, ((event.arg1 & 0xFFFF) - 100) * 2);
      EXPECT_EQ(event.arg0, 7u);
    }
  }
  EXPECT_EQ(seen.size(), 16u);
}

TEST(EventLogTest, TailIsTimestampSortedAndBounded) {
  EventLogInstall();
  for (uint64_t i = 0; i < 8; ++i) {
    evt::Emit(evt::kPairEnd, kTag | i);
  }
  std::vector<FlightEvent> tail = EventLogTail(4);
  EXPECT_LE(tail.size(), 4u);
  for (size_t i = 1; i < tail.size(); ++i) {
    EXPECT_GE(tail[i].ts_ns, tail[i - 1].ts_ns);
  }
}

// The ring keeps the newest capacity events per thread: emit 4x capacity
// from a fresh thread (capacity applies at first emit) and verify only the
// newest survive — oldest-first overwrite, no gaps in the surviving suffix.
TEST(EventLogTest, RingOverwritesOldestFirst) {
  EventLogInstall();
  EventLogSetCapacity(64);
  constexpr uint64_t kEmitted = 256;
  std::thread producer([] {
    for (uint64_t i = 0; i < kEmitted; ++i) {
      evt::Emit(evt::kPrefetchHit, kTag | (uint64_t{1} << 40) | i);
    }
  });
  producer.join();
  EventLogSetCapacity(4096);  // restore the default for later suites

  std::set<uint64_t> survivors;
  for (const FlightEvent& event : TaggedTail()) {
    if (event.type == evt::kPrefetchHit && (event.arg1 & (uint64_t{1} << 40)) != 0) {
      survivors.insert(event.arg1 & 0xFFFFFFFF);
    }
  }
  ASSERT_FALSE(survivors.empty());
  EXPECT_LE(survivors.size(), 64u);
  // Survivors are exactly the newest contiguous run (no event older than
  // the earliest survivor, nothing newer than the last emitted).
  uint64_t lo = *survivors.begin();
  uint64_t hi = *survivors.rbegin();
  EXPECT_EQ(hi, kEmitted - 1);
  EXPECT_EQ(survivors.size(), hi - lo + 1);
}

// Concurrent producers + a racing reader: the seqlock must never surface a
// torn slot. Each writer stores arg2 = ~arg1; any mix of two events would
// break the relation.
TEST(EventLogTest, ConcurrentProducersNeverTearReads) {
  EventLogInstall();
  constexpr int kProducers = 4;
  constexpr uint64_t kPerProducer = 5000;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> torn{0};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      for (const FlightEvent& event : EventLogTail(0)) {
        if (event.type == evt::kPartitionLoad &&
            (event.arg1 & (uint64_t{0xFFFF} << 48)) == kTag) {
          if (event.arg2 != ~event.arg1) {
            torn.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    }
  });
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([p] {
      for (uint64_t i = 0; i < kPerProducer; ++i) {
        uint64_t arg = kTag | (static_cast<uint64_t>(p) << 32) | i;
        evt::Emit(evt::kPartitionLoad, arg, ~arg);
      }
    });
  }
  for (auto& t : producers) {
    t.join();
  }
  stop.store(true, std::memory_order_release);
  reader.join();
  EXPECT_EQ(torn.load(), 0u);
}

TEST(EventLogTest, InternStringIsStableAndReversible) {
  EventLogInstall();
  uint32_t id = EventLogInternString("event_log_test_checker");
  EXPECT_EQ(EventLogInternString("event_log_test_checker"), id);
  EXPECT_EQ(EventLogStringOf(id), "event_log_test_checker");
  EXPECT_EQ(EventLogStringOf(UINT32_MAX), "");
}

TEST(EventLogTest, TailJsonParsesAndNamesTypes) {
  EventLogInstall();
  // arg0 (u32) is exactly representable as a JSON double; the 64-bit tag in
  // arg1 would not be.
  evt::Emit(evt::kRunStart, kTag | 9, 0, /*a0=*/909001);
  std::string error;
  std::optional<JsonValue> doc = ParseJson(EventLogTailJson(64), &error);
  ASSERT_TRUE(doc.has_value()) << error;
  const JsonValue* events = doc->Find("events");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->IsArray());
  bool found = false;
  for (const JsonValue& item : events->items) {
    if (item.StringOr("type", "") == "run_start" && item.NumberOr("arg0", 0) == 909001.0) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(EventLogTest, ChromeTraceTailIsValidJson) {
  EventLogInstall();
  evt::Emit(evt::kRunEnd, kTag | 11);
  std::string error;
  std::optional<JsonValue> doc = ParseJson(EventLogTailChromeTrace(64), &error);
  ASSERT_TRUE(doc.has_value()) << error;
  const JsonValue* events = doc->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  EXPECT_TRUE(events->IsArray());
}

TEST(EventLogTest, FlushAndDecodeRoundTrip) {
  EventLogInstall();
  // A string-carrying event: the sink interns the pointer at record time
  // and the dump carries the table.
  static const char kMarker[] = "event_log_test_crash_marker";
  evt::Emit(evt::kCrashExit, kTag | 21, reinterpret_cast<uint64_t>(kMarker));
  TempDir dir("event-log-test");
  std::string path = dir.path() + "/flightrec.bin";
  ASSERT_TRUE(EventLogFlush(path));

  FlightRecording recording;
  std::string error;
  ASSERT_TRUE(DecodeFlightRecording(path, &recording, &error)) << error;
  ASSERT_FALSE(recording.events.empty());
  bool found = false;
  for (const FlightEvent& event : recording.events) {
    if (event.type == evt::kCrashExit && event.arg1 == (kTag | 21)) {
      ASSERT_LT(event.arg2, recording.strings.size());
      EXPECT_EQ(recording.strings[static_cast<size_t>(event.arg2)], kMarker);
      found = true;
    }
  }
  EXPECT_TRUE(found);
  // Per-event timestamps survive the round trip in order.
  for (size_t i = 1; i < recording.events.size(); ++i) {
    EXPECT_GE(recording.events[i].ts_ns, recording.events[i - 1].ts_ns);
  }
  EXPECT_FALSE(FlightRecordingToJson(recording).empty());
}

TEST(EventLogTest, DecodeRejectsCorruptDumps) {
  TempDir dir("event-log-test");
  std::string path = dir.path() + "/bogus.bin";
  std::vector<uint8_t> garbage = {'N', 'O', 'P', 'E', 1, 2, 3, 4};
  ASSERT_TRUE(WriteFileBytes(path, garbage));
  FlightRecording recording;
  std::string error;
  EXPECT_FALSE(DecodeFlightRecording(path, &recording, &error));
  EXPECT_FALSE(error.empty());
}

TEST(EventLogTest, DisableIsPauseNotClear) {
  EventLogInstall();
  evt::Emit(evt::kArbiterWait, kTag | 31);
  EventLogSetEnabled(false);
  evt::Emit(evt::kArbiterWait, kTag | 32);
  EventLogSetEnabled(true);
  bool kept = false;
  bool dropped_recorded = false;
  for (const FlightEvent& event : TaggedTail()) {
    if (event.type == evt::kArbiterWait && event.arg1 == (kTag | 31)) {
      kept = true;
    }
    if (event.type == evt::kArbiterWait && event.arg1 == (kTag | 32)) {
      dropped_recorded = true;
    }
  }
  EXPECT_TRUE(kept);
  EXPECT_FALSE(dropped_recorded);
}

}  // namespace
}  // namespace obs
}  // namespace grapple
