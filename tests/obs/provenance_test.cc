// Provenance log round-trip: writer -> file -> reader, plus the
// GRAPPLE_WITNESS env-knob parsing the facade relies on.
#include "src/obs/provenance.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>

#include "src/support/byte_io.h"

namespace grapple {
namespace obs {
namespace {

std::vector<uint8_t> Payload(std::initializer_list<uint8_t> bytes) { return bytes; }

TEST(ProvenanceTest, RoundTripsAllRecordKinds) {
  TempDir dir("prov-test");
  std::string path = dir.path() + "/provenance.bin";
  MetricsRegistry metrics;
  {
    ProvenanceWriter writer(path, &metrics);
    ProvEdge base_edge{1, 2, 3};
    std::vector<uint8_t> base_payload = Payload({0xaa, 0xbb});
    writer.RecordBase(100, base_edge, base_payload.data(), base_payload.size());

    ProvEdge other_edge{2, 5, 4};
    writer.RecordBase(101, other_edge, nullptr, 0);

    ProvEdge join_edge{1, 5, 7};
    std::vector<uint8_t> join_payload = Payload({0xcc});
    writer.RecordJoin(200, join_edge, join_payload.data(), join_payload.size(),
                      /*parent_a=*/100, base_edge, /*parent_b=*/101, other_edge,
                      /*widened=*/true);

    ProvEdge mirror_edge{5, 1, 8};
    writer.RecordRewrite(300, mirror_edge, join_payload.data(), join_payload.size(),
                         /*parent=*/200, join_edge);
    EXPECT_EQ(writer.records_written(), 4u);
    EXPECT_TRUE(writer.Flush());
    // bytes_written counts what reached disk, so it moves at flush time.
    EXPECT_GT(writer.bytes_written(), 0u);
  }

  ProvenanceReader reader;
  ASSERT_TRUE(reader.Open(path));
  EXPECT_EQ(reader.NumRecords(), 4u);
  EXPECT_GT(reader.FileBytes(), 0u);

  const ProvRecord* base = reader.Lookup(100);
  ASSERT_NE(base, nullptr);
  EXPECT_EQ(base->kind, ProvKind::kBase);
  EXPECT_FALSE(base->widened);
  EXPECT_EQ(base->edge.src, 1u);
  EXPECT_EQ(base->edge.dst, 2u);
  EXPECT_EQ(base->edge.label, 3u);
  EXPECT_EQ(base->payload, Payload({0xaa, 0xbb}));

  const ProvRecord* join = reader.Lookup(200);
  ASSERT_NE(join, nullptr);
  EXPECT_EQ(join->kind, ProvKind::kJoin);
  EXPECT_TRUE(join->widened);
  EXPECT_EQ(join->parent_a, 100u);
  EXPECT_EQ(join->parent_b, 101u);
  EXPECT_EQ(join->a_edge.src, 1u);
  EXPECT_EQ(join->b_edge.dst, 5u);
  EXPECT_EQ(join->payload, Payload({0xcc}));

  const ProvRecord* rewrite = reader.Lookup(300);
  ASSERT_NE(rewrite, nullptr);
  EXPECT_EQ(rewrite->kind, ProvKind::kRewrite);
  EXPECT_EQ(rewrite->parent_a, 200u);
  EXPECT_EQ(rewrite->a_edge.src, 1u);
  EXPECT_EQ(rewrite->a_edge.dst, 5u);

  EXPECT_EQ(reader.Lookup(999), nullptr);

  // Counters track what the writer emitted.
  MetricsSnapshot snapshot = metrics.Snapshot();
  EXPECT_EQ(snapshot.CounterOr("provenance_records_total"), 4u);
  EXPECT_GT(snapshot.CounterOr("provenance_bytes"), 0u);
}

TEST(ProvenanceTest, FlushThresholdSpillsAndReaderSeesEverything) {
  TempDir dir("prov-spill");
  std::string path = dir.path() + "/provenance.bin";
  // ~2000 records * ~70 bytes of payload crosses the 1MB buffer at least once,
  // exercising the append path (WriteFileBytes then AppendFileBytes).
  constexpr size_t kRecords = 20000;
  std::vector<uint8_t> payload(70, 0x5e);
  {
    ProvenanceWriter writer(path, nullptr);
    for (size_t i = 0; i < kRecords; ++i) {
      ProvEdge edge{static_cast<uint32_t>(i), static_cast<uint32_t>(i + 1), 1};
      writer.RecordBase(/*hash=*/i + 1, edge, payload.data(), payload.size());
    }
    EXPECT_TRUE(writer.Flush());
    EXPECT_EQ(writer.records_written(), kRecords);
  }
  ProvenanceReader reader;
  ASSERT_TRUE(reader.Open(path));
  EXPECT_EQ(reader.NumRecords(), kRecords);
  const ProvRecord* mid = reader.Lookup(kRecords / 2);
  ASSERT_NE(mid, nullptr);
  EXPECT_EQ(mid->payload.size(), payload.size());
}

TEST(ProvenanceTest, TornTailKeepsReadablePrefix) {
  TempDir dir("prov-torn");
  std::string path = dir.path() + "/provenance.bin";
  {
    ProvenanceWriter writer(path, nullptr);
    ProvEdge edge{1, 2, 3};
    writer.RecordBase(1, edge, nullptr, 0);
    writer.RecordBase(2, edge, nullptr, 0);
    writer.Flush();
  }
  // Simulate a crash mid-append: a dangling length prefix with no body.
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out.put(static_cast<char>(0x40));  // claims a 64-byte record that is absent
  }
  ProvenanceReader reader;
  EXPECT_FALSE(reader.Open(path));
  EXPECT_EQ(reader.NumRecords(), 2u);
  EXPECT_NE(reader.Lookup(1), nullptr);
  EXPECT_NE(reader.Lookup(2), nullptr);
}

TEST(ProvenanceTest, MissingFileOpensFalse) {
  ProvenanceReader reader;
  EXPECT_FALSE(reader.Open("/nonexistent/provenance.bin"));
  EXPECT_EQ(reader.NumRecords(), 0u);
}

TEST(WitnessModeTest, NamesRoundTrip) {
  EXPECT_STREQ(WitnessModeName(WitnessMode::kOff), "off");
  EXPECT_STREQ(WitnessModeName(WitnessMode::kBugs), "bugs");
  EXPECT_STREQ(WitnessModeName(WitnessMode::kFull), "full");
}

TEST(WitnessModeTest, FromEnvParsesKnownValuesAndFallsBack) {
  struct Case {
    const char* value;
    WitnessMode expect;
  };
  const Case cases[] = {
      {"off", WitnessMode::kOff},   {"0", WitnessMode::kOff},
      {"none", WitnessMode::kOff},  {"bugs", WitnessMode::kBugs},
      {"full", WitnessMode::kFull},
  };
  for (const Case& c : cases) {
    ::setenv("GRAPPLE_WITNESS", c.value, 1);
    EXPECT_EQ(WitnessModeFromEnv(WitnessMode::kBugs), c.expect) << c.value;
  }
  // Unrecognized values keep the caller's fallback.
  ::setenv("GRAPPLE_WITNESS", "sideways", 1);
  EXPECT_EQ(WitnessModeFromEnv(WitnessMode::kFull), WitnessMode::kFull);
  // Unset: fallback wins.
  ::unsetenv("GRAPPLE_WITNESS");
  EXPECT_EQ(WitnessModeFromEnv(WitnessMode::kOff), WitnessMode::kOff);
  EXPECT_EQ(WitnessModeFromEnv(), WitnessMode::kBugs);
}

}  // namespace
}  // namespace obs
}  // namespace grapple
