// Background metrics sampler: start/stop idempotence, manual ticks, series
// extraction, and ring trimming. The sampler is a process-wide singleton;
// every test clears it first.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "src/obs/sampler.h"
#include "src/obs/statusz.h"

namespace grapple {
namespace obs {
namespace {

TEST(SamplerTest, StartStopIsIdempotent) {
  Sampler& sampler = Sampler::Get();
  sampler.Clear();
  EXPECT_FALSE(sampler.running());
  sampler.Stop();  // stop while stopped: no-op
  EXPECT_FALSE(sampler.running());

  sampler.Start(50);
  EXPECT_TRUE(sampler.running());
  EXPECT_EQ(sampler.interval_ms(), 50u);
  sampler.Start(500);  // start while running: keeps the first cadence
  EXPECT_TRUE(sampler.running());
  EXPECT_EQ(sampler.interval_ms(), 50u);

  sampler.Stop();
  EXPECT_FALSE(sampler.running());
  sampler.Stop();
  EXPECT_FALSE(sampler.running());
}

TEST(SamplerTest, SampleNowCapturesRegisteredGauges) {
  Sampler& sampler = Sampler::Get();
  sampler.Clear();
  Introspection::Handle gauge =
      Introspection::RegisterGaugeSource("sampler_test_gauge", [] { return 42.5; });
  sampler.SampleNow();
  ASSERT_GE(sampler.sample_count(), 1u);

  std::vector<Sampler::Point> series = sampler.Series("sampler_test_gauge");
  ASSERT_FALSE(series.empty());
  EXPECT_DOUBLE_EQ(series.back().value, 42.5);

  // Built-in process gauges ride along on every tick.
  EXPECT_FALSE(sampler.Series("rss_bytes").empty());

  std::vector<std::string> names = sampler.SeriesNames();
  EXPECT_NE(std::find(names.begin(), names.end(), "sampler_test_gauge"), names.end());
  gauge.Release();
  sampler.Clear();
}

TEST(SamplerTest, RingTrimsToCapacity) {
  Sampler& sampler = Sampler::Get();
  sampler.Clear();
  sampler.SetRingCapacity(4);
  for (int i = 0; i < 10; ++i) {
    sampler.SampleNow();
  }
  EXPECT_LE(sampler.sample_count(), 4u);
  sampler.SetRingCapacity(512);  // restore the default
  sampler.Clear();
}

TEST(SamplerTest, BackgroundThreadTicksOnItsOwn) {
  Sampler& sampler = Sampler::Get();
  sampler.Clear();
  sampler.Start(10);
  // The first tick happens promptly on the sampler thread; poll briefly.
  bool ticked = false;
  for (int i = 0; i < 200 && !ticked; ++i) {
    ticked = sampler.sample_count() > 0;
    if (!ticked) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  sampler.Stop();
  EXPECT_TRUE(ticked);
  sampler.Clear();
}

}  // namespace
}  // namespace obs
}  // namespace grapple
