// Live introspection endpoint: page routing/rendering, the Prometheus
// exposition, the registration hub, and a real HTTP scrape against a
// running analysis. Own test binary: it binds sockets and mutates the
// process-wide statusz/sampler singletons.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>

#include "src/checker/builtin_checkers.h"
#include "src/core/grapple.h"
#include "src/ir/parser.h"
#include "src/obs/json.h"
#include "src/obs/sampler.h"
#include "src/obs/statusz.h"

namespace grapple {
namespace obs {
namespace {

// Minimal HTTP/1.0 client: one request, reads to EOF.
std::string HttpGet(int port, const std::string& path_and_query, int* status_out = nullptr) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return "";
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  std::string request = "GET " + path_and_query + " HTTP/1.0\r\n\r\n";
  (void)!::write(fd, request.data(), request.size());
  std::string response;
  char buffer[4096];
  ssize_t n;
  while ((n = ::read(fd, buffer, sizeof(buffer))) > 0) {
    response.append(buffer, static_cast<size_t>(n));
  }
  ::close(fd);
  if (status_out != nullptr) {
    *status_out = 0;
    size_t space = response.find(' ');
    if (space != std::string::npos) {
      *status_out = std::atoi(response.c_str() + space + 1);
    }
  }
  size_t body = response.find("\r\n\r\n");
  return body == std::string::npos ? "" : response.substr(body + 4);
}

TEST(StatuszTest, PageRouting) {
  IntrospectionPage healthz = RenderIntrospectionPage("/healthz", "");
  EXPECT_EQ(healthz.status, 200);
  EXPECT_EQ(healthz.body, "ok\n");

  EXPECT_EQ(RenderIntrospectionPage("/statusz", "").status, 200);
  EXPECT_EQ(RenderIntrospectionPage("/metricsz", "").status, 200);
  EXPECT_EQ(RenderIntrospectionPage("/tracez", "").status, 200);
  EXPECT_EQ(RenderIntrospectionPage("/varz", "").status, 400);  // missing name
  IntrospectionPage missing = RenderIntrospectionPage("/nonsense", "");
  EXPECT_EQ(missing.status, 404);
  // The 404 page advertises every route, including the profiler's.
  EXPECT_NE(missing.body.find("/profilez"), std::string::npos);

  // /profilez always serves valid profile JSON, even with the profiler off.
  IntrospectionPage profilez = RenderIntrospectionPage("/profilez", "");
  EXPECT_EQ(profilez.status, 200);
  EXPECT_EQ(profilez.content_type, "application/json");
  std::string error;
  std::optional<JsonValue> doc = ParseJson(profilez.body, &error);
  ASSERT_TRUE(doc.has_value()) << error << "\n" << profilez.body;
  EXPECT_EQ(doc->StringOr("schema", ""), "grapple.profile.v1");
}

TEST(StatuszTest, GaugeSourcesSumAndUnregister) {
  {
    Introspection::Handle a =
        Introspection::RegisterGaugeSource("statusz_test_gauge", [] { return 2.0; });
    Introspection::Handle b =
        Introspection::RegisterGaugeSource("statusz_test_gauge", [] { return 3.0; });
    std::map<std::string, double> gauges = Introspection::RuntimeGauges();
    EXPECT_DOUBLE_EQ(gauges["statusz_test_gauge"], 5.0);
  }
  // Handles released: the name disappears.
  std::map<std::string, double> gauges = Introspection::RuntimeGauges();
  EXPECT_EQ(gauges.count("statusz_test_gauge"), 0u);
  // Built-in process gauge is always there (Linux).
  EXPECT_GT(gauges.count("rss_bytes"), 0u);
}

TEST(StatuszTest, StatusSourcesRenderAsJson) {
  Introspection::Handle status = Introspection::RegisterStatusSource(
      "statusz_test_source", [] { return std::string("{\"answer\":42}"); });
  std::string json = Introspection::StatusJson();
  std::string error;
  std::optional<JsonValue> doc = ParseJson(json, &error);
  ASSERT_TRUE(doc.has_value()) << error << "\n" << json;
  const JsonValue* sources = doc->Find("sources");
  ASSERT_NE(sources, nullptr);
  const JsonValue* mine = sources->Find("statusz_test_source");
  ASSERT_NE(mine, nullptr);
  EXPECT_EQ(mine->NumberOr("answer", -1), 42.0);
}

TEST(StatuszTest, PrometheusExposition) {
  MetricsSnapshot snapshot;
  snapshot.counters["engine_pair_loads_total"] = 7;
  snapshot.gauges["engine_num_partitions"] = 3.5;
  HistogramSnapshot hist;
  hist.count = 2;
  hist.sum = 10;
  snapshot.histograms["oracle_solve_ns"] = hist;
  std::map<std::string, double> runtime{{"rss_bytes", 1024.0}};

  std::string text = RenderPrometheus(snapshot, runtime);
  EXPECT_NE(text.find("# TYPE grapple_engine_pair_loads_total counter"), std::string::npos);
  EXPECT_NE(text.find("grapple_engine_pair_loads_total 7"), std::string::npos);
  EXPECT_NE(text.find("grapple_engine_num_partitions 3.5"), std::string::npos);
  EXPECT_NE(text.find("grapple_oracle_solve_ns_count 2"), std::string::npos);
  EXPECT_NE(text.find("grapple_oracle_solve_ns_sum 10"), std::string::npos);
  EXPECT_NE(text.find("grapple_rss_bytes 1024"), std::string::npos);

  // Every series carries a # HELP line immediately before its # TYPE line
  // (prometheus exposition format), whether hand-written or derived.
  EXPECT_NE(text.find("# HELP grapple_engine_pair_loads_total "), std::string::npos);
  EXPECT_NE(text.find("# HELP grapple_engine_num_partitions "), std::string::npos);
  EXPECT_NE(text.find("# HELP grapple_oracle_solve_ns "), std::string::npos);
  EXPECT_NE(text.find("# HELP grapple_rss_bytes Resident set size"), std::string::npos);
  size_t help_lines = 0;
  size_t type_lines = 0;
  for (size_t pos = 0; (pos = text.find("# HELP ", pos)) != std::string::npos; ++pos) {
    ++help_lines;
  }
  for (size_t pos = 0; (pos = text.find("# TYPE ", pos)) != std::string::npos; ++pos) {
    ++type_lines;
  }
  EXPECT_EQ(help_lines, type_lines);
  EXPECT_EQ(help_lines, 4u);
}

TEST(StatuszTest, ServerStartStopIdempotent) {
  std::string error;
  ASSERT_TRUE(StartStatusz(0, &error)) << error;
  EXPECT_TRUE(StatuszRunning());
  int port = StatuszPort();
  EXPECT_GT(port, 0);
  EXPECT_TRUE(StartStatusz(0, &error));  // second start: keeps the first
  EXPECT_EQ(StatuszPort(), port);

  int status = 0;
  EXPECT_EQ(HttpGet(port, "/healthz", &status), "ok\n");
  EXPECT_EQ(status, 200);

  StopStatusz();
  EXPECT_FALSE(StatuszRunning());
  StopStatusz();  // idempotent
  EXPECT_FALSE(StatuszRunning());
}

constexpr char kProgram[] = R"(
method main() {
  obj out : FileWriter
  int x
  x = ?
  if (x >= 0) {
    out = new FileWriter
    event out open
    event out write
  }
  return
}
)";

// The satellite e2e: a session with statusz on, scraped over real HTTP
// while (and after) checkers run. Payloads must stay well-formed at every
// point in the run.
TEST(StatuszTest, ScrapeDuringAnalysisRun) {
  ParseResult parsed = ParseProgram(kProgram);
  ASSERT_TRUE(parsed.ok) << parsed.error;
  GrappleOptions options;
  options.observability.statusz_port = 0;  // ephemeral
  options.observability.sample_interval_ms = 10;
  Grapple analyzer(std::move(parsed.program), options);
  ASSERT_TRUE(StatuszRunning());
  int port = StatuszPort();
  ASSERT_GT(port, 0);
  EXPECT_TRUE(Sampler::Get().running());

  std::atomic<bool> done{false};
  std::atomic<int> scrapes{0};
  std::thread scraper([&] {
    while (!done.load(std::memory_order_acquire)) {
      int status = 0;
      std::string body = HttpGet(port, "/statusz", &status);
      if (status == 200) {
        std::string error;
        EXPECT_TRUE(ParseJson(body, &error).has_value()) << error;
        scrapes.fetch_add(1, std::memory_order_relaxed);
      }
      std::string metrics = HttpGet(port, "/metricsz", &status);
      if (status == 200) {
        EXPECT_NE(metrics.find("grapple_"), std::string::npos);
      }
    }
  });
  GrappleResult result = analyzer.Check(AllBuiltinCheckers());
  done.store(true, std::memory_order_release);
  scraper.join();
  EXPECT_GT(scrapes.load(), 0);
  EXPECT_GE(result.TotalReports(), 1u);

  // After the run, /statusz names every checker with a terminal state.
  int status = 0;
  std::string body = HttpGet(port, "/statusz", &status);
  ASSERT_EQ(status, 200);
  std::string error;
  std::optional<JsonValue> doc = ParseJson(body, &error);
  ASSERT_TRUE(doc.has_value()) << error;
  const JsonValue* sources = doc->Find("sources");
  ASSERT_NE(sources, nullptr);
  const JsonValue* session = sources->Find("session");
  ASSERT_NE(session, nullptr);
  const JsonValue* checkers = session->Find("checkers");
  ASSERT_NE(checkers, nullptr);
  EXPECT_EQ(checkers->members.size(), AllBuiltinCheckers().size());
  for (const auto& [name, state] : checkers->members) {
    EXPECT_NE(state.string_value.find("done"), std::string::npos)
        << name << " = " << state.string_value;
  }

  // /tracez serves the flight-recorder tail as JSON.
  std::string tracez = HttpGet(port, "/tracez", &status);
  ASSERT_EQ(status, 200);
  EXPECT_TRUE(ParseJson(tracez, &error).has_value()) << error;

  // /varz serves a sampled series once the sampler has ticked.
  std::string varz = HttpGet(port, "/varz?name=rss_bytes", &status);
  ASSERT_EQ(status, 200);
  EXPECT_TRUE(ParseJson(varz, &error).has_value()) << error;
}

}  // namespace
}  // namespace obs
}  // namespace grapple
