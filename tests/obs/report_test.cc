// Run reports: JSON writer/parser round trips, golden-file parse checks of
// the run-report JSON, and — on a real engine run — the guarantee that the
// metrics snapshot the report is built from agrees with the legacy
// EngineStats fields (the snapshot is the source of truth; the named fields
// are a synced view).
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "src/cfg/call_graph.h"
#include "src/cfg/loop_unroll.h"
#include "src/graph/engine.h"
#include "src/ir/parser.h"
#include "src/obs/json.h"
#include "src/obs/report.h"
#include "src/symexec/cfet_builder.h"

namespace grapple {
namespace {

using obs::JsonValue;
using obs::JsonWriter;
using obs::MetricsSnapshot;
using obs::ParseJson;

TEST(JsonWriterTest, RoundTripsThroughParser) {
  JsonWriter w;
  w.BeginObject();
  w.Key("name").String("quote\" and \\ and \n newline");
  w.Key("count").UInt(12345678901234ull);
  w.Key("ratio").Double(0.25);
  w.Key("flag").Bool(true);
  w.Key("nothing").Null();
  w.Key("list").BeginArray().Int(-3).Int(0).Int(7).EndArray();
  w.Key("nested").BeginObject().Key("k").String("v").EndObject();
  w.EndObject();
  std::string error;
  std::optional<JsonValue> doc = ParseJson(w.Take(), &error);
  ASSERT_TRUE(doc.has_value()) << error;
  EXPECT_EQ(doc->StringOr("name", ""), "quote\" and \\ and \n newline");
  EXPECT_EQ(doc->NumberOr("count", 0), 12345678901234.0);
  EXPECT_EQ(doc->NumberOr("ratio", 0), 0.25);
  const JsonValue* list = doc->Find("list");
  ASSERT_NE(list, nullptr);
  ASSERT_EQ(list->items.size(), 3u);
  EXPECT_EQ(list->items[0].number_value, -3);
  const JsonValue* nested = doc->Find("nested");
  ASSERT_NE(nested, nullptr);
  EXPECT_EQ(nested->StringOr("k", ""), "v");
}

TEST(CostBreakdownTest, AccumulateSplitsJoinTime) {
  MetricsSnapshot snapshot;
  snapshot.counters["phase_io_ns"] = 2000000000;      // 2s
  snapshot.counters["phase_join_ns"] = 10000000000;   // 10s
  snapshot.counters["oracle_lookup_ns"] = 1000000000; // 1s
  snapshot.counters["oracle_solve_ns"] = 4000000000;  // 4s
  obs::CostBreakdown breakdown;
  breakdown.Accumulate(snapshot);
  EXPECT_DOUBLE_EQ(breakdown.io, 2.0);
  EXPECT_DOUBLE_EQ(breakdown.lookup, 1.0);
  EXPECT_DOUBLE_EQ(breakdown.solve, 4.0);
  EXPECT_DOUBLE_EQ(breakdown.edge, 5.0);  // join - lookup - solve
  EXPECT_DOUBLE_EQ(breakdown.Total(), 12.0);
  EXPECT_DOUBLE_EQ(breakdown.Pct(breakdown.io), 100.0 * 2.0 / 12.0);
}

// The real-engine fixture from the engine tests, reused so the report is
// validated against genuine instrumentation rather than hand-built numbers.
class ReportEngineTest : public ::testing::Test {
 protected:
  ReportEngineTest() {
    // Same two-branch method as the engine tests: interval [0,0,2] is the
    // x >= 0 branch, [0,0,1] the x < 0 branch, so composing them is unsat.
    ParseResult parsed = ParseProgram(R"(
      method m(int x) {
        int y
        y = x
        if (x >= 0) {
          y = x - 1
        } else {
          y = x + 1
        }
        if (y > 0) {
          y = 0
        }
        return
      }
    )");
    EXPECT_TRUE(parsed.ok) << parsed.error;
    program_ = std::move(parsed.program);
    UnrollLoops(&program_, 2);
    call_graph_ = std::make_unique<CallGraph>(program_);
    icfet_ = BuildIcfet(program_, *call_graph_);
    edge_ = grammar_.Intern("edge");
    path_ = grammar_.Intern("path");
    grammar_.AddUnary(edge_, path_);
    grammar_.AddBinary(path_, edge_, path_);
  }

  // Runs a small closure with one infeasible composition so engine and
  // oracle counters are all non-trivial.
  void RunEngine(GraphEngine* engine) {
    engine->AddBaseEdge(0, 1, edge_, PathEncoding::Interval(0, 0, 2));
    engine->AddBaseEdge(1, 2, edge_, PathEncoding::Interval(0, 0, 1));
    engine->AddBaseEdge(2, 3, edge_, PathEncoding::Empty());
    engine->Finalize(4);
    engine->Run();
  }

  Program program_;
  std::unique_ptr<CallGraph> call_graph_;
  Icfet icfet_;
  Grammar grammar_;
  Label edge_ = kNoLabel;
  Label path_ = kNoLabel;
};

// Acceptance check: the snapshot counter totals must equal the legacy
// EngineStats/OracleStats fields they replaced.
TEST_F(ReportEngineTest, SnapshotCountersMatchLegacyStats) {
  TempDir dir("report-legacy");
  IntervalOracle oracle(&icfet_);
  EngineOptions options;
  options.work_dir = dir.path();
  GraphEngine engine(&grammar_, &oracle, options);
  RunEngine(&engine);

  const EngineStats& stats = engine.stats();
  const MetricsSnapshot& m = stats.metrics;
  EXPECT_GT(stats.base_edges, 0u);
  EXPECT_EQ(m.CounterOr("engine_base_edges_total"), stats.base_edges);
  EXPECT_EQ(m.CounterOr("engine_final_edges_total"), stats.final_edges);
  EXPECT_EQ(m.CounterOr("engine_pair_loads_total"), stats.pair_loads);
  EXPECT_EQ(m.CounterOr("engine_join_rounds_total"), stats.join_rounds);
  EXPECT_EQ(m.CounterOr("engine_joins_attempted_total"), stats.joins_attempted);
  EXPECT_EQ(m.CounterOr("engine_edges_added_total"), stats.edges_added);
  EXPECT_EQ(m.CounterOr("engine_unsat_pruned_total"), stats.unsat_pruned);
  EXPECT_EQ(m.CounterOr("engine_widened_triples_total"), stats.widened_triples);
  EXPECT_EQ(m.CounterOr("engine_partition_splits_total"), stats.partition_splits);
  EXPECT_EQ(static_cast<size_t>(m.GaugeOr("engine_num_partitions")), stats.num_partitions);
  EXPECT_EQ(static_cast<size_t>(m.GaugeOr("engine_peak_partitions")), stats.peak_partitions);
  EXPECT_DOUBLE_EQ(m.SecondsOf("engine_preprocess_ns"), stats.preprocess_seconds);
  EXPECT_DOUBLE_EQ(m.SecondsOf("engine_compute_ns"), stats.compute_seconds);

  const OracleStats& o = stats.oracle;
  EXPECT_GT(o.merges, 0u);
  EXPECT_EQ(m.CounterOr("oracle_merges_total"), o.merges);
  EXPECT_EQ(m.CounterOr("oracle_constraints_checked_total"), o.constraints_checked);
  EXPECT_EQ(m.CounterOr("oracle_cache_hits_total"), o.cache_hits);
  EXPECT_EQ(m.CounterOr("oracle_unsat_total"), o.unsat);
  EXPECT_EQ(m.CounterOr("oracle_unknown_total"), o.unknown);
  EXPECT_DOUBLE_EQ(m.SecondsOf("oracle_lookup_ns"), o.lookup_seconds);
  EXPECT_DOUBLE_EQ(m.SecondsOf("oracle_solve_ns"), o.solve_seconds);

  // Phase timer buckets fold in as phase_<name>_ns and drive phase_seconds.
  for (const auto& [name, seconds] : stats.phase_seconds) {
    std::string counter = std::string(obs::kPhaseNsPrefix) + name + obs::kPhaseNsSuffix;
    EXPECT_NEAR(m.SecondsOf(counter), seconds, 1e-9) << counter;
  }
  EXPECT_GT(stats.phase_seconds.count("join"), 0u);

  // The live Metrics() accessor agrees with the stored snapshot.
  EXPECT_EQ(engine.Metrics().CounterOr("engine_pair_loads_total"), stats.pair_loads);

  // An unsat composition happened and was counted on one side or the other.
  EXPECT_GT(stats.unsat_pruned + o.unsat, 0u);
}

TEST_F(ReportEngineTest, RunReportJsonParsesAndMatchesSnapshot) {
  TempDir dir("report-json");
  IntervalOracle oracle(&icfet_);
  EngineOptions options;
  options.work_dir = dir.path();
  GraphEngine engine(&grammar_, &oracle, options);
  RunEngine(&engine);

  obs::RunReport report;
  report.subject = "unit";
  report.total_seconds = 1.5;
  report.total_reports = 2;
  obs::PhaseReport phase;
  phase.name = "closure";
  phase.num_vertices = 4;
  phase.edges_before = 3;
  phase.edges_after = engine.stats().final_edges;
  phase.metrics = engine.stats().metrics;
  report.phases.push_back(phase);

  std::string error;
  std::optional<JsonValue> doc = ParseJson(report.ToJson(), &error);
  ASSERT_TRUE(doc.has_value()) << error;
  EXPECT_EQ(doc->StringOr("schema", ""), "grapple.run_report.v1");
  EXPECT_EQ(doc->StringOr("subject", ""), "unit");
  EXPECT_EQ(doc->NumberOr("total_reports", -1), 2);
  const JsonValue* breakdown = doc->Find("breakdown");
  ASSERT_NE(breakdown, nullptr);
  EXPECT_GE(breakdown->NumberOr("io_seconds", -1), 0);
  const JsonValue* phases = doc->Find("phases");
  ASSERT_NE(phases, nullptr);
  ASSERT_EQ(phases->items.size(), 1u);
  const JsonValue& p0 = phases->items[0];
  EXPECT_EQ(p0.StringOr("name", ""), "closure");
  EXPECT_EQ(p0.NumberOr("edges_after", 0),
            static_cast<double>(engine.stats().final_edges));
  const JsonValue* metrics = p0.Find("metrics");
  ASSERT_NE(metrics, nullptr);
  const JsonValue* counters = metrics->Find("counters");
  ASSERT_NE(counters, nullptr);
  // Counter totals in the serialized report equal the legacy stats fields.
  EXPECT_EQ(counters->NumberOr("engine_pair_loads_total", -1),
            static_cast<double>(engine.stats().pair_loads));
  EXPECT_EQ(counters->NumberOr("engine_final_edges_total", -1),
            static_cast<double>(engine.stats().final_edges));
  EXPECT_EQ(counters->NumberOr("oracle_merges_total", -1),
            static_cast<double>(engine.stats().oracle.merges));
  const JsonValue* histograms = metrics->Find("histograms");
  ASSERT_NE(histograms, nullptr);
  const JsonValue* join_hist = histograms->Find("engine_join_round_joins");
  ASSERT_NE(join_hist, nullptr);
  EXPECT_EQ(join_hist->NumberOr("count", 0),
            static_cast<double>(engine.stats().join_rounds));

  // The text renderings are built from the same snapshot and must carry the
  // same headline numbers.
  std::string summary = engine.stats().ToString();
  EXPECT_NE(summary.find("-> " + std::to_string(engine.stats().final_edges)),
            std::string::npos);
  EXPECT_NE(report.ToText().find("closure"), std::string::npos);
}

TEST_F(ReportEngineTest, BenchReportJsonParses) {
  TempDir dir("report-bench");
  IntervalOracle oracle(&icfet_);
  EngineOptions options;
  options.work_dir = dir.path();
  GraphEngine engine(&grammar_, &oracle, options);
  RunEngine(&engine);

  obs::BenchReport bench("unit_bench");
  bench.AddSnapshot("subject_a", "closure", engine.stats().metrics);
  std::string error;
  std::optional<JsonValue> doc = ParseJson(bench.ToJson(), &error);
  ASSERT_TRUE(doc.has_value()) << error;
  EXPECT_EQ(doc->StringOr("schema", ""), "grapple.bench_report.v1");
  EXPECT_EQ(doc->StringOr("bench", ""), "unit_bench");
  const JsonValue* subjects = doc->Find("subjects");
  ASSERT_NE(subjects, nullptr);
  ASSERT_EQ(subjects->items.size(), 1u);
  EXPECT_EQ(subjects->items[0].StringOr("subject", ""), "subject_a");
}

// End-to-end: GRAPPLE_REPORT_DIR steers BenchReport::Write, and the file on
// disk parses back with the expected schema and content.
TEST_F(ReportEngineTest, ReportDirEnvSteersBenchWriteEndToEnd) {
  TempDir work("report-dir-work");
  TempDir report_dir("report-dir-out");
  ::setenv("GRAPPLE_REPORT_DIR", report_dir.path().c_str(), 1);

  IntervalOracle oracle(&icfet_);
  EngineOptions options;
  options.work_dir = work.path();
  GraphEngine engine(&grammar_, &oracle, options);
  RunEngine(&engine);

  obs::BenchReport bench("env_e2e");
  bench.AddSnapshot("subject_a", "closure", engine.stats().metrics);
  std::string path = bench.Path();
  EXPECT_EQ(path, report_dir.path() + "/BENCH_env_e2e.json");
  ASSERT_TRUE(bench.Write());
  ::unsetenv("GRAPPLE_REPORT_DIR");

  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  std::string text = buffer.str();
  ASSERT_FALSE(text.empty());
  std::string error;
  std::optional<JsonValue> doc = ParseJson(text, &error);
  ASSERT_TRUE(doc.has_value()) << error;
  EXPECT_EQ(doc->StringOr("schema", ""), "grapple.bench_report.v1");
  EXPECT_EQ(doc->StringOr("bench", ""), "env_e2e");
  const JsonValue* subjects = doc->Find("subjects");
  ASSERT_NE(subjects, nullptr);
  ASSERT_EQ(subjects->items.size(), 1u);
  // Each subject is a full RunReport; metrics hang off its phases.
  const JsonValue* phases = subjects->items[0].Find("phases");
  ASSERT_NE(phases, nullptr);
  ASSERT_EQ(phases->items.size(), 1u);
  const JsonValue* metrics = phases->items[0].Find("metrics");
  ASSERT_NE(metrics, nullptr);
  const JsonValue* counters = metrics->Find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_EQ(counters->NumberOr("engine_final_edges_total", -1),
            static_cast<double>(engine.stats().final_edges));
}

TEST(ReportFileTest, WriteTextFileRoundTrips) {
  std::string path = ::testing::TempDir() + "/grapple_report_test.json";
  ASSERT_TRUE(obs::WriteTextFile(path, "{\"ok\":true}"));
  std::FILE* file = std::fopen(path.c_str(), "rb");
  ASSERT_NE(file, nullptr);
  char buffer[64] = {};
  size_t n = std::fread(buffer, 1, sizeof(buffer) - 1, file);
  std::fclose(file);
  std::remove(path.c_str());
  EXPECT_EQ(std::string(buffer, n), "{\"ok\":true}");
}

}  // namespace
}  // namespace grapple
