// MetricsRegistry: concurrent counting, histogram semantics, gauge
// semantics, snapshot merging, and thread-local shard-cache safety across
// registry lifetimes.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "src/obs/metrics.h"
#include "src/support/task_runtime.h"

namespace grapple {
namespace obs {
namespace {

TEST(MetricsRegistryTest, CountersAccumulate) {
  MetricsRegistry registry;
  MetricId a = registry.Counter("a");
  MetricId b = registry.Counter("b");
  registry.Add(a);
  registry.Add(a, 4);
  registry.Add(b, 7);
  MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.CounterOr("a"), 5u);
  EXPECT_EQ(snapshot.CounterOr("b"), 7u);
  EXPECT_EQ(snapshot.CounterOr("missing", 42), 42u);
}

TEST(MetricsRegistryTest, CounterIdIsStableAcrossReRegistration) {
  MetricsRegistry registry;
  MetricId first = registry.Counter("same");
  MetricId second = registry.Counter("same");
  EXPECT_EQ(first, second);
}

TEST(MetricsRegistryTest, ConcurrentAddsFromTaskRuntime) {
  MetricsRegistry registry;
  MetricId counter = registry.Counter("hits");
  MetricId hist = registry.Histogram("latency");
  constexpr size_t kPerItem = 16;
  constexpr size_t kItems = 2048;
  constexpr size_t kShards = 8;
  TaskRuntimeOptions options;
  options.workers = kShards;
  TaskRuntime runtime(options);
  TaskGroup group(&runtime);
  constexpr size_t kChunk = (kItems + kShards - 1) / kShards;
  for (size_t shard = 0; shard < kShards; ++shard) {
    size_t begin = shard * kChunk;
    size_t end = std::min(kItems, begin + kChunk);
    group.Submit(TaskLane::kForeground, /*affinity=*/0, [&, begin, end] {
      for (size_t i = begin; i < end; ++i) {
        for (size_t k = 0; k < kPerItem; ++k) {
          registry.Add(counter);
        }
        registry.Observe(hist, i + 1);
      }
    });
  }
  group.Wait();
  MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.CounterOr("hits"), kItems * kPerItem);
  const HistogramSnapshot& h = snapshot.histograms.at("latency");
  EXPECT_EQ(h.count, kItems);
  EXPECT_EQ(h.min, 1u);
  EXPECT_EQ(h.max, kItems);
  EXPECT_EQ(h.sum, kItems * (kItems + 1) / 2);
}

TEST(MetricsRegistryTest, HistogramBucketsAndPercentiles) {
  MetricsRegistry registry;
  MetricId hist = registry.Histogram("h");
  // 10 observations of 1 (bucket 0) and one of 1024 (bucket 10).
  for (int i = 0; i < 10; ++i) {
    registry.Observe(hist, 1);
  }
  registry.Observe(hist, 1024);
  HistogramSnapshot h = registry.Snapshot().histograms.at("h");
  EXPECT_EQ(h.buckets[0], 10u);
  EXPECT_EQ(h.buckets[10], 1u);
  EXPECT_EQ(h.ApproxPercentile(50), 1u);       // median in bucket 0: upper bound 2^1-1
  EXPECT_EQ(h.ApproxPercentile(100), 2047u);   // last bucket's upper bound
  EXPECT_DOUBLE_EQ(h.Mean(), (10.0 + 1024.0) / 11.0);
}

TEST(MetricsRegistryTest, HistogramPercentileEdges) {
  // Empty histogram: every percentile is 0, including p0 and p100.
  HistogramSnapshot empty;
  EXPECT_EQ(empty.ApproxPercentile(0), 0u);
  EXPECT_EQ(empty.ApproxPercentile(50), 0u);
  EXPECT_EQ(empty.ApproxPercentile(100), 0u);

  MetricsRegistry registry;
  MetricId hist = registry.Histogram("h");

  // Single observation: every positive percentile collapses to its bucket's
  // upper bound. p0's rank of zero is satisfied by the (empty) first bucket,
  // so it degenerates to bucket 0's bound — not a useful query, but stable.
  registry.Observe(hist, 5);  // bucket 2 (values 4..7), upper bound 7
  HistogramSnapshot one = registry.Snapshot().histograms.at("h");
  EXPECT_EQ(one.ApproxPercentile(0), 1u);
  EXPECT_EQ(one.ApproxPercentile(50), 7u);
  EXPECT_EQ(one.ApproxPercentile(100), 7u);
  EXPECT_EQ(one.min, 5u);
  EXPECT_EQ(one.max, 5u);

  // Power-of-two boundaries land in the bucket they open: 2^k is the first
  // value of bucket k, and 2^k - 1 the last value of bucket k-1.
  MetricsRegistry reg2;
  MetricId h2 = reg2.Histogram("h2");
  reg2.Observe(h2, 0);     // bucket 0
  reg2.Observe(h2, 1);     // bucket 0
  reg2.Observe(h2, 2);     // bucket 1
  reg2.Observe(h2, 3);     // bucket 1
  reg2.Observe(h2, 4);     // bucket 2
  HistogramSnapshot two = reg2.Snapshot().histograms.at("h2");
  EXPECT_EQ(two.buckets[0], 2u);
  EXPECT_EQ(two.buckets[1], 2u);
  EXPECT_EQ(two.buckets[2], 1u);
  // Rank math at exact bucket edges: 40% of 5 = 2 observations, which bucket
  // 0 satisfies exactly; one observation more crosses into bucket 1.
  EXPECT_EQ(two.ApproxPercentile(40), 1u);  // bucket 0 upper bound 2^1-1
  EXPECT_EQ(two.ApproxPercentile(41), 3u);  // bucket 1 upper bound 2^2-1
  EXPECT_EQ(two.ApproxPercentile(80), 3u);
  EXPECT_EQ(two.ApproxPercentile(81), 7u);  // bucket 2 upper bound 2^3-1

  // The top bucket reports the saturating upper bound, not overflow.
  MetricsRegistry reg3;
  MetricId h3 = reg3.Histogram("h3");
  reg3.Observe(h3, UINT64_MAX);
  HistogramSnapshot top = reg3.Snapshot().histograms.at("h3");
  EXPECT_EQ(top.ApproxPercentile(100), UINT64_MAX);
  EXPECT_EQ(top.max, UINT64_MAX);
}

TEST(MetricsRegistryTest, GaugesSetAndMax) {
  MetricsRegistry registry;
  registry.SetGauge("level", 3);
  registry.SetGauge("level", 2);  // last write wins
  registry.MaxGauge("peak", 5);
  registry.MaxGauge("peak", 4);  // lower value ignored
  MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_DOUBLE_EQ(snapshot.GaugeOr("level"), 2);
  EXPECT_DOUBLE_EQ(snapshot.GaugeOr("peak"), 5);
}

TEST(MetricsRegistryTest, ResetZeroesEverything) {
  MetricsRegistry registry;
  MetricId counter = registry.Counter("c");
  MetricId hist = registry.Histogram("h");
  registry.Add(counter, 9);
  registry.Observe(hist, 100);
  registry.SetGauge("g", 1);
  registry.Reset();
  MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.CounterOr("c"), 0u);
  EXPECT_EQ(snapshot.histograms.at("h").count, 0u);
  EXPECT_DOUBLE_EQ(snapshot.GaugeOr("g", -1), -1);
  // Still usable after reset.
  registry.Add(counter, 2);
  EXPECT_EQ(registry.Snapshot().CounterOr("c"), 2u);
}

TEST(MetricsSnapshotTest, MergeSumsCountersAndMaxesGauges) {
  MetricsSnapshot a;
  a.counters["n"] = 3;
  a.gauges["peak"] = 4;
  MetricsSnapshot b;
  b.counters["n"] = 5;
  b.counters["only_b"] = 1;
  b.gauges["peak"] = 2;
  a.Merge(b);
  EXPECT_EQ(a.CounterOr("n"), 8u);
  EXPECT_EQ(a.CounterOr("only_b"), 1u);
  EXPECT_DOUBLE_EQ(a.GaugeOr("peak"), 4);
}

TEST(MetricsSnapshotTest, SecondsOfConvertsNanos) {
  MetricsSnapshot snapshot;
  snapshot.counters["t_ns"] = 1500000000;
  EXPECT_DOUBLE_EQ(snapshot.SecondsOf("t_ns"), 1.5);
}

// A thread's cached shard pointer must never be dereferenced after its
// registry died: destroy and recreate registries from the same thread (the
// allocator is likely to reuse the address) and keep counting.
TEST(MetricsRegistryTest, TlsCacheSurvivesRegistryChurn) {
  for (int round = 0; round < 64; ++round) {
    auto registry = std::make_unique<MetricsRegistry>();
    MetricId counter = registry->Counter("c");
    registry->Add(counter, 1 + static_cast<uint64_t>(round));
    EXPECT_EQ(registry->Snapshot().CounterOr("c"), 1u + static_cast<uint64_t>(round));
  }
}

TEST(MetricsRegistryTest, ManyRegistriesInterleaved) {
  // More live registries than TLS cache slots; each must still count
  // correctly (slow path re-registers evicted entries).
  constexpr size_t kRegistries = 12;
  std::vector<std::unique_ptr<MetricsRegistry>> registries;
  std::vector<MetricId> ids;
  for (size_t i = 0; i < kRegistries; ++i) {
    registries.push_back(std::make_unique<MetricsRegistry>());
    ids.push_back(registries.back()->Counter("c"));
  }
  for (int round = 0; round < 10; ++round) {
    for (size_t i = 0; i < kRegistries; ++i) {
      registries[i]->Add(ids[i]);
    }
  }
  for (size_t i = 0; i < kRegistries; ++i) {
    EXPECT_EQ(registries[i]->Snapshot().CounterOr("c"), 10u);
  }
}

TEST(MetricsSnapshotTest, ToJsonParses) {
  MetricsRegistry registry;
  registry.Add(registry.Counter("n"), 3);
  registry.Observe(registry.Histogram("h"), 7);
  registry.SetGauge("g", 1.5);
  std::string json = registry.Snapshot().ToJson();
  // Validated structurally in report_test; here just check it is non-empty
  // JSON-looking output with the three sections.
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
}

}  // namespace
}  // namespace obs
}  // namespace grapple
