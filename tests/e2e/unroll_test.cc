// Bounded loop unrolling (§3.1) and its effect on checking: bugs that need
// k loop iterations to manifest are found exactly when the unroll bound
// reaches k, and loop-independent results are stable across bounds.
#include <gtest/gtest.h>

#include "src/checker/builtin_checkers.h"
#include "src/core/grapple.h"
#include "src/ir/parser.h"

namespace grapple {
namespace {

Program MustParse(const std::string& text) {
  ParseResult result = ParseProgram(text);
  EXPECT_TRUE(result.ok) << result.error;
  return std::move(result.program);
}

size_t IoReportsAtUnroll(const std::string& text, size_t unroll) {
  GrappleOptions options;
  options.precision.loop_unroll = unroll;
  Grapple analyzer(MustParse(text), options);
  GrappleResult result = analyzer.Check({MakeIoCheckerSpec()});
  return result.checkers[0].reports.size();
}

// close() inside a loop body: the second iteration double-closes. One
// unrolled iteration cannot see the bug; two can.
constexpr char kLoopDoubleClose[] = R"(
  method main() {
    obj f : FileWriter
    int i
    i = ?
    f = new FileWriter
    event f open
    while (i > 0) {
      event f close
      i = i - 1
    }
    return
  }
)";

TEST(UnrollTest, LoopCarriedDoubleCloseNeedsTwoIterations) {
  // Bound 1: only the leak on the zero-iteration path is visible.
  EXPECT_EQ(IoReportsAtUnroll(kLoopDoubleClose, 1), 1u);
  // Bound >= 2: the double close (erroneous event) appears as well.
  EXPECT_EQ(IoReportsAtUnroll(kLoopDoubleClose, 2), 2u);
  EXPECT_EQ(IoReportsAtUnroll(kLoopDoubleClose, 3), 2u);
}

// A loop-independent leak: stable across unroll bounds.
constexpr char kPlainLeak[] = R"(
  method main() {
    obj f : FileWriter
    int i
    i = ?
    f = new FileWriter
    event f open
    while (i > 0) {
      event f write
      i = i - 1
    }
    if (i > 100) {
      event f close
    }
    return
  }
)";

class UnrollBoundTest : public ::testing::TestWithParam<size_t> {};

TEST_P(UnrollBoundTest, LoopIndependentResultStable) {
  EXPECT_EQ(IoReportsAtUnroll(kPlainLeak, GetParam()), 1u);
}

INSTANTIATE_TEST_SUITE_P(Bounds, UnrollBoundTest, ::testing::Values(1u, 2u, 3u, 4u));

// Loop-guarded close with a bounded counter: with i fixed to 1, the close
// executes exactly once; unrolling must not invent a double close.
constexpr char kExactOnce[] = R"(
  method main() {
    obj f : FileWriter
    int i
    i = 1
    f = new FileWriter
    event f open
    while (i > 0) {
      event f close
      i = i - 1
    }
    return
  }
)";

TEST(UnrollTest, ConstantBoundedLoopDoesNotInventBugs) {
  // The second unrolled iteration is guarded by i - 1 > 0 with i == 1:
  // infeasible, so the solver prunes the double-close path. The
  // zero-iteration path (skip the loop entirely, 1 > 0 false) is also
  // infeasible, so there is no leak either.
  EXPECT_EQ(IoReportsAtUnroll(kExactOnce, 3), 0u);
}

}  // namespace
}  // namespace grapple
