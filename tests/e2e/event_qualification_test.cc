// Path-qualified event edges (GrappleOptions::qualify_events_with_alias_paths).
//
// Recursive methods are analyzed context-insensitively through one shared
// instance, so the typestate walk reaches events inside them from *every*
// call site. Without qualification, an event then applies to an object even
// along walk paths through call sites that never passed that object —
// masking real bugs. Qualifying each event edge with the object-to-receiver
// flow encoding restores the guard: the event only fires where the aliasing
// is path-feasible.
#include <gtest/gtest.h>

#include "src/checker/builtin_checkers.h"
#include "src/core/grapple.h"
#include "src/ir/parser.h"

namespace grapple {
namespace {

// `shared` is recursive (context-insensitive shared instance). main routes
// f through it only when x >= 0 and dummy only when x < 0; each object
// leaks on the complementary path.
constexpr char kSharedCloser[] = R"(
  method shared(obj g : FileWriter, int n) {
    obj fresh : FileWriter
    if (n > 1000) {
      fresh = new FileWriter
      call shared(fresh, n)
    }
    event g close
    return
  }
  method main() {
    obj f : FileWriter
    obj dummy : FileWriter
    int x
    x = ?
    f = new FileWriter
    event f open
    dummy = new FileWriter
    event dummy open
    if (x >= 0) {
      call shared(f, x)
    }
    if (x < 0) {
      call shared(dummy, x)
    }
    return
  }
)";

size_t LeakReports(bool qualify) {
  ParseResult parsed = ParseProgram(kSharedCloser);
  EXPECT_TRUE(parsed.ok) << parsed.error;
  GrappleOptions options;
  options.precision.qualify_events_with_alias_paths = qualify;
  Grapple analyzer(std::move(parsed.program), options);
  GrappleResult result = analyzer.Check({MakeIoCheckerSpec()});
  size_t leaks = 0;
  for (const auto& report : result.checkers[0].reports) {
    if (report.kind == BugReport::Kind::kBadExitState && report.state == "Open") {
      ++leaks;
    }
  }
  return leaks;
}

TEST(EventQualificationTest, QualifiedEventsFindBothLeaks) {
  // f leaks when x < 0, dummy leaks when x >= 0.
  EXPECT_EQ(LeakReports(/*qualify=*/true), 2u);
}

TEST(EventQualificationTest, UnqualifiedEventsMaskTheLeaks) {
  // Without qualification the shared instance's close fires for both
  // objects on both branches, masking the leaks (false negatives). This
  // test documents the failure mode the option exists to fix; if the
  // unqualified configuration ever starts finding these leaks, the
  // qualification machinery may have become redundant — re-evaluate.
  EXPECT_LT(LeakReports(/*qualify=*/false), 2u);
}

// Qualification must never *suppress* true reports: on a program whose
// aliasing is unconditional, both configurations agree.
constexpr char kUnconditional[] = R"(
  method main() {
    obj f : FileWriter
    obj g : FileWriter
    int x
    x = ?
    f = new FileWriter
    event f open
    g = f
    if (x > 7) {
      event g close
    }
    return
  }
)";

TEST(EventQualificationTest, AgreesWhenAliasingUnconditional) {
  for (bool qualify : {false, true}) {
    ParseResult parsed = ParseProgram(kUnconditional);
    ASSERT_TRUE(parsed.ok);
    GrappleOptions options;
    options.precision.qualify_events_with_alias_paths = qualify;
    Grapple analyzer(std::move(parsed.program), options);
    GrappleResult result = analyzer.Check({MakeIoCheckerSpec()});
    ASSERT_EQ(result.checkers[0].reports.size(), 1u) << "qualify=" << qualify;
    EXPECT_EQ(result.checkers[0].reports[0].state, "Open");
  }
}

}  // namespace
}  // namespace grapple
