// Baseline comparisons: the explicit-constraint codec must agree with the
// interval codec on analysis results, and the traditional in-memory
// implementation must exhaust small memory budgets (§5.3).
#include <gtest/gtest.h>

#include <set>

#include "src/baseline/explicit_oracle.h"
#include "src/baseline/traditional.h"
#include "src/cfg/loop_unroll.h"
#include "src/core/grapple.h"
#include "src/ir/parser.h"
#include "src/workload/workload.h"

namespace grapple {
namespace {

Program MustParse(const std::string& text) {
  ParseResult result = ParseProgram(text);
  EXPECT_TRUE(result.ok) << result.error;
  return std::move(result.program);
}

constexpr char kBranchy[] = R"(
  method maybeClose(obj g : FileWriter, int c) {
    if (c > 0) {
      event g close
    }
    return
  }
  method main() {
    obj f : FileWriter
    int x
    x = ?
    if (x >= 0) {
      f = new FileWriter
      event f open
    }
    if (x >= 5) {
      call maybeClose(f, x)
    }
    return
  }
)";

// Runs phase 1 with a given oracle; returns the flowsTo pair set.
std::set<std::pair<VertexId, VertexId>> AliasPairsWith(const Program& input,
                                                       bool explicit_codec) {
  Program program = input;
  UnrollLoops(&program, 2);
  CallGraph call_graph(program);
  Icfet icfet = BuildIcfet(program, call_graph);
  Grammar grammar;
  PointsToLabels labels = BuildPointsToGrammar(&grammar, {});
  TempDir dir("baseline-test");
  EngineOptions options;
  options.work_dir = dir.path();
  std::unique_ptr<ConstraintOracle> oracle;
  if (explicit_codec) {
    oracle = std::make_unique<ExplicitOracle>(&icfet);
  } else {
    oracle = std::make_unique<IntervalOracle>(&icfet);
  }
  GraphEngine engine(&grammar, oracle.get(), options);
  AliasGraph alias_graph(program, call_graph, icfet, labels, &engine);
  engine.Finalize(alias_graph.num_vertices());
  engine.Run();
  std::set<std::pair<VertexId, VertexId>> pairs;
  engine.ForEachEdgeWithLabel(labels.flows_to, [&](const EdgeRecord& e) {
    pairs.insert({e.src, e.dst});
  });
  return pairs;
}

TEST(ExplicitOracleTest, AgreesWithIntervalCodecOnFlowsTo) {
  Program program = MustParse(kBranchy);
  auto interval_pairs = AliasPairsWith(program, /*explicit_codec=*/false);
  auto explicit_pairs = AliasPairsWith(program, /*explicit_codec=*/true);
  EXPECT_EQ(interval_pairs, explicit_pairs);
  EXPECT_FALSE(interval_pairs.empty());
}

TEST(ExplicitOracleTest, ConstraintSerializationRoundTrip) {
  VarPool pool;
  VarId x = pool.Fresh("x");
  VarId y = pool.Fresh("y");
  Constraint constraint;
  constraint.And(Atom::Compare(LinearExpr::Var(x), Cmp::kGe, LinearExpr::Constant(0)));
  constraint.And(Atom::Compare(LinearExpr::Term(y, 3).AddConstant(-7), Cmp::kLt,
                               LinearExpr::Var(x)));
  constraint.And(Atom::Opaque());
  std::vector<uint8_t> bytes;
  SerializeConstraint(constraint, &bytes);
  Constraint back = DeserializeConstraint(bytes.data(), bytes.size());
  ASSERT_EQ(back.size(), constraint.size());
  for (size_t i = 0; i < back.size(); ++i) {
    EXPECT_EQ(back.atoms()[i], constraint.atoms()[i]) << i;
  }
}

TEST(ExplicitOracleTest, PayloadsGrowWithPathLength) {
  Program program = MustParse(kBranchy);
  UnrollLoops(&program, 2);
  CallGraph call_graph(program);
  Icfet icfet = BuildIcfet(program, call_graph);
  ExplicitOracle oracle(&icfet);
  // Base payload for an interval with one branch condition.
  auto p1 = oracle.BasePayload(PathEncoding::Interval(*program.FindMethod("main"), 0, 2));
  auto merged = oracle.MergeAndCheck(p1.data(), p1.size(), p1.data(), p1.size());
  ASSERT_TRUE(merged.has_value());
  // Explicit representation: concatenation grows (no interval fusion).
  EXPECT_GT(merged->size(), p1.size());
}

TEST(TraditionalBaselineTest, SucceedsOnTinyProgramWithBigBudget) {
  Program program = MustParse(kBranchy);
  TraditionalOptions options;
  options.memory_budget_bytes = uint64_t{512} << 20;
  options.max_seconds = 60;
  TraditionalResult result = RunTraditionalAliasAnalysis(program, options);
  EXPECT_FALSE(result.out_of_memory);
  EXPECT_FALSE(result.timed_out);
  EXPECT_GT(result.edges, 0u);
  EXPECT_GT(result.constraints_solved, 0u);
}

TEST(TraditionalBaselineTest, RunsOutOfMemoryOnGeneratedWorkload) {
  WorkloadConfig cfg;
  cfg.name = "oom-probe";
  cfg.seed = 11;
  cfg.filler_statements = 400;
  cfg.modules = 2;
  cfg.io = {1, 0, 2};
  cfg.except = {2, 0, 2};
  Workload workload = GenerateWorkload(cfg);
  TraditionalOptions options;
  options.memory_budget_bytes = 64 << 10;  // tiny simulated RAM
  options.max_seconds = 60;
  TraditionalResult result = RunTraditionalAliasAnalysis(workload.program, options);
  EXPECT_TRUE(result.out_of_memory);
  EXPECT_GE(result.peak_bytes, options.memory_budget_bytes);
}

TEST(TraditionalBaselineTest, GrappleHandlesWhatTraditionalCannot) {
  // The same workload that OOMs the traditional implementation under the
  // small budget completes on the disk-based engine with the same budget.
  WorkloadConfig cfg;
  cfg.name = "oom-vs-grapple";
  cfg.seed = 11;
  cfg.filler_statements = 400;
  cfg.modules = 2;
  cfg.io = {1, 0, 2};
  cfg.except = {2, 0, 2};
  Workload workload = GenerateWorkload(cfg);

  TraditionalOptions trad_options;
  trad_options.memory_budget_bytes = 64 << 10;
  trad_options.max_seconds = 60;
  TraditionalResult trad = RunTraditionalAliasAnalysis(workload.program, trad_options);
  EXPECT_TRUE(trad.out_of_memory);

  GrappleOptions options;
  options.engine.memory_budget_bytes = 64 << 10;
  Grapple grapple(std::move(workload.program), options);
  GrappleResult result = grapple.Check({MakeIoCheckerSpec()});
  Classification cls = ClassifyReports(workload, "io", result.checkers[0].reports);
  EXPECT_EQ(cls.false_negatives, 0u);
}

}  // namespace
}  // namespace grapple
